// Adaptive buffer: Theorem 5 in practice.
//
// Sweeps the mobility axis and compares a fixed 10 m buffer against the
// theorem's adaptive width l = 2 * Delta'' * v. The adaptive buffer keeps
// connectivity flat across speeds at the cost of a speed-proportional
// transmission range — exactly the trade-off Section 4.3 describes.
//
//   ./adaptive_buffer [protocol]
#include <cstdio>
#include <string>

#include "runner/scenario.hpp"
#include "runner/sweep.hpp"

int main(int argc, char** argv) {
  using namespace mstc;
  const std::string protocol = argc > 1 ? argv[1] : "RNG";
  const std::size_t repeats = runner::sweep_repeats(3);

  std::printf("%s + view synchronization, fixed vs adaptive buffer zones\n\n",
              protocol.c_str());
  std::printf("%8s | %-24s | %-24s\n", "", "fixed 10 m", "adaptive 2*D''*v");
  std::printf("%8s | %12s %11s | %12s %11s\n", "speed", "connectivity",
              "range_m", "connectivity", "range_m");

  for (const double speed : {1.0, 10.0, 20.0, 40.0, 80.0}) {
    runner::ScenarioConfig cfg = runner::apply_env_overrides({});
    cfg.protocol = protocol;
    cfg.mode = core::ConsistencyMode::kViewSync;
    cfg.average_speed = speed;

    cfg.buffer_width = 10.0;
    cfg.adaptive_buffer = false;
    const auto fixed = runner::run_repeated(cfg, repeats);

    cfg.buffer_width = 0.0;
    cfg.adaptive_buffer = true;
    const auto adaptive = runner::run_repeated(cfg, repeats);

    std::printf("%6.0f   | %12.3f %11.1f | %12.3f %11.1f\n", speed,
                fixed.delivery().mean(), fixed.range().mean(),
                adaptive.delivery().mean(), adaptive.range().mean());
  }

  std::printf(
      "\nThe fixed buffer degrades once 2 * Delta'' * v outgrows it; the\n"
      "adaptive buffer tracks the bound and holds connectivity, paying with\n"
      "a larger transmission range (more energy, less spatial reuse).\n");
  return 0;
}
