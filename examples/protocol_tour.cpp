// Protocol tour: every topology-control protocol in the library on one
// static deployment, side by side.
//
// Shows the trade-off each protocol strikes between transmission range,
// node degree, and structural redundancy — the paper's Table 1 extended
// to the whole protocol family (Gabriel, Yao, CBTC, K-Neigh included).
//
//   ./protocol_tour [seed]
#include <cstdio>
#include <cstdlib>

#include "graph/algorithms.hpp"
#include "metrics/energy.hpp"
#include "topology/builder.hpp"
#include "topology/protocol.hpp"
#include "util/prng.hpp"

int main(int argc, char** argv) {
  using namespace mstc;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  constexpr double kNormalRange = 250.0;

  // One connected random deployment for all protocols.
  util::Xoshiro256 rng(seed);
  std::vector<geom::Vec2> positions;
  do {
    positions.clear();
    for (int i = 0; i < 100; ++i) {
      positions.push_back({rng.uniform(0.0, 900.0), rng.uniform(0.0, 900.0)});
    }
  } while (!graph::is_connected(
      topology::original_graph(positions, kNormalRange)));

  const auto original = topology::original_graph(positions, kNormalRange);
  std::printf(
      "100 nodes, 900x900 m, normal range %.0f m: %zu links, degree %.1f\n\n",
      kNormalRange, original.edge_count(), original.average_degree());
  std::printf("%-9s %9s %8s %7s %11s %9s %s\n", "protocol", "range_m",
              "degree", "links", "connected?", "lifetime", "notes");

  const struct {
    const char* name;
    const char* notes;
  } lineup[] = {
      {"MST", "minimal: near-tree, most fragile under mobility"},
      {"RNG", "lune test; moderate redundancy"},
      {"Gabriel", "disk test; superset of RNG"},
      {"SPT-4", "min-energy, two-ray ground (alpha=4)"},
      {"SPT-2", "min-energy, free space (alpha=2); densest baseline"},
      {"SPT-R", "min-energy with a dynamic search region"},
      {"Yao", "6 cones, cheapest neighbor per cone"},
      {"Yao2", "fault-tolerant: 2 neighbors per cone"},
      {"Yao3", "fault-tolerant: 3 neighbors per cone"},
      {"CBTC", "cone coverage 2*pi/3; direction info only"},
      {"CBTC2", "cone pi/3: 2-connectivity-oriented"},
      {"CBTC3", "cone 2*pi/9: 3-connectivity-oriented"},
      {"KNeigh", "9 nearest; probabilistic, no hard guarantee"},
      {"None", "no control: the original topology"},
  };
  const metrics::EnergyModel energy{.alpha = 2.0,
                                    .tx_fixed_power = 0.1,
                                    .amp_scale = 1e-3,
                                    .rx_power = 0.05};
  for (const auto& entry : lineup) {
    const auto suite = topology::make_protocol(entry.name);
    const auto topo = topology::build_topology(positions, kNormalRange,
                                               *suite.protocol, *suite.cost);
    const auto logical = topology::logical_graph(topo, positions);
    const auto lifetime =
        metrics::estimate_lifetime(energy, topo, kNormalRange);
    std::printf("%-9s %9.1f %8.2f %7zu %11s %8.1fx %s\n", entry.name,
                topo.average_range(), topo.average_logical_degree(),
                logical.edge_count(),
                graph::is_connected(logical) ? "yes" : "no",
                lifetime.first_death_ratio, entry.notes);
  }

  std::printf(
      "\nEvery protocol with a connectivity guarantee stays connected on\n"
      "consistent views (Theorem 1). The mobility-sensitive framework\n"
      "(see mobile_broadcast) wraps ALL of them without modification —\n"
      "that is the paper's central claim.\n");
  return 0;
}
