// Mobile broadcast: the full mobility-sensitive stack on a moving network.
//
// Runs the same random-waypoint scenario four ways — the mobility-
// insensitive baseline, buffer zone only, view synchronization + buffer,
// and physical neighbors + buffer — and reports the connectivity each
// configuration sustains.
//
//   ./mobile_broadcast [protocol] [avg_speed_mps]
//   e.g. ./mobile_broadcast RNG 40
#include <cstdio>
#include <cstdlib>
#include <string>

#include "runner/scenario.hpp"
#include "runner/sweep.hpp"

int main(int argc, char** argv) {
  using namespace mstc;
  const std::string protocol = argc > 1 ? argv[1] : "RNG";
  const double speed = argc > 2 ? std::strtod(argv[2], nullptr) : 40.0;

  runner::ScenarioConfig base = runner::apply_env_overrides({});
  base.protocol = protocol;
  base.average_speed = speed;

  struct Variant {
    const char* label;
    core::ConsistencyMode mode;
    double buffer;
    bool physical_neighbors;
  };
  const Variant variants[] = {
      {"baseline (no mobility mgmt)", core::ConsistencyMode::kLatest, 0.0,
       false},
      {"buffer zone 100 m", core::ConsistencyMode::kLatest, 100.0, false},
      {"view sync + 10 m buffer", core::ConsistencyMode::kViewSync, 10.0,
       false},
      {"physical neighbors + 10 m", core::ConsistencyMode::kLatest, 10.0,
       true},
      {"all three combined", core::ConsistencyMode::kViewSync, 100.0, true},
  };

  std::printf(
      "protocol %s, %zu nodes, average speed %.0f m/s, %.0f s simulated, "
      "%zu repeats\n\n",
      protocol.c_str(), base.node_count, speed, base.duration,
      runner::sweep_repeats(3));
  std::printf("%-30s %12s %10s %10s %8s\n", "configuration", "connectivity",
              "strict", "range_m", "degree");

  for (const Variant& variant : variants) {
    runner::ScenarioConfig cfg = base;
    cfg.mode = variant.mode;
    cfg.buffer_width = variant.buffer;
    cfg.physical_neighbors = variant.physical_neighbors;
    const auto agg = runner::run_repeated(cfg, runner::sweep_repeats(3));
    std::printf("%-30s %6.3f ±%.3f %10.3f %10.1f %8.2f\n", variant.label,
                agg.delivery().ci95().mean, agg.delivery().ci95().half_width,
                agg.strict().mean(), agg.range().mean(),
                agg.logical_degree().mean());
  }

  std::printf(
      "\nReading the table: 'connectivity' is the fraction of nodes reached\n"
      "by flooding (the paper's weak connectivity); 'strict' is snapshot\n"
      "pair-connectivity of the effective topology. The buffer zone repairs\n"
      "outdated ranges, view synchronization repairs inconsistent logical\n"
      "decisions, and physical neighbors add redundancy — the paper's three\n"
      "mechanisms (Sections 4.1-4.3).\n");
  return 0;
}
