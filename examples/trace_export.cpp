// Trace export: dump node positions and the three topologies (original /
// logical / effective) as CSV time series for offline plotting.
//
//   ./trace_export [out_dir] [protocol] [avg_speed]
//
// Writes out_dir/positions.csv  (t,node,x,y)
//        out_dir/links.csv      (t,kind,u,v)   kind in {original,logical,
//                                               effective}
// Feed them to any plotting tool to animate how mobility erodes the
// effective topology while the logical topology looks fine on paper.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "graph/algorithms.hpp"
#include "mobility/models.hpp"
#include "topology/builder.hpp"
#include "topology/protocol.hpp"
#include "util/prng.hpp"

int main(int argc, char** argv) {
  using namespace mstc;
  const std::string out_dir = argc > 1 ? argv[1] : ".";
  const std::string protocol_name = argc > 2 ? argv[2] : "RNG";
  const double speed = argc > 3 ? std::strtod(argv[3], nullptr) : 20.0;

  constexpr std::size_t kNodes = 100;
  constexpr double kRange = 250.0;
  constexpr double kDuration = 20.0;
  constexpr double kHelloInterval = 1.0;

  const auto model = mobility::make_paper_waypoint({900.0, 900.0}, speed);
  const auto traces =
      mobility::generate_traces(*model, kNodes, kDuration, 4242);
  const auto suite = topology::make_protocol(protocol_name);

  std::ofstream positions_csv(out_dir + "/positions.csv");
  std::ofstream links_csv(out_dir + "/links.csv");
  if (!positions_csv || !links_csv) {
    std::fprintf(stderr, "cannot write to %s\n", out_dir.c_str());
    return 1;
  }
  positions_csv << "t,node,x,y\n";
  links_csv << "t,kind,u,v\n";

  // Decisions are refreshed once per Hello interval from positions sampled
  // at the PREVIOUS interval — the staleness a real deployment would see.
  std::vector<geom::Vec2> advertised(kNodes);
  for (std::size_t i = 0; i < kNodes; ++i) {
    advertised[i] = traces[i].position(0.0);
  }
  topology::BuiltTopology topo = topology::build_topology(
      advertised, kRange, *suite.protocol, *suite.cost);

  for (double t = 0.0; t <= kDuration; t += 0.5) {
    std::vector<geom::Vec2> now(kNodes);
    for (std::size_t i = 0; i < kNodes; ++i) now[i] = traces[i].position(t);
    for (std::size_t i = 0; i < kNodes; ++i) {
      positions_csv << t << ',' << i << ',' << now[i].x << ',' << now[i].y
                    << '\n';
    }
    const auto original = topology::original_graph(now, kRange);
    const auto logical = topology::logical_graph(topo, advertised);
    const auto effective = topology::effective_graph(topo, now);
    const auto dump = [&](const graph::Graph& g, const char* kind) {
      for (const auto& e : g.edges()) {
        links_csv << t << ',' << kind << ',' << e.u << ',' << e.v << '\n';
      }
    };
    dump(original, "original");
    dump(logical, "logical");
    dump(effective, "effective");

    std::printf(
        "t=%5.1f  original %3zu links  logical %3zu  effective %3zu "
        "(pair connectivity %.2f)\n",
        t, original.edge_count(), logical.edge_count(),
        effective.edge_count(), graph::pair_connectivity_ratio(effective));

    // Refresh decisions once per Hello interval from the positions at the
    // refresh instant (they immediately begin to age again).
    if (t + 0.5 >= std::floor(t) + kHelloInterval) {
      for (std::size_t i = 0; i < kNodes; ++i) {
        advertised[i] = traces[i].position(t);
      }
      topo = topology::build_topology(advertised, kRange, *suite.protocol,
                                      *suite.cost);
    }
  }
  std::printf("\nwrote %s/positions.csv and %s/links.csv\n", out_dir.c_str(),
              out_dir.c_str());
  return 0;
}
