// Consistency demo: the paper's Fig. 2 three-node partition, step by step.
//
// A mobile node w advertises its position twice while moving; node u
// decides on the old Hello and node v on the new one. Under the MST-based
// protocol both remove their link to w — the logical topology partitions
// even though the physical network was connected the whole time. Strong
// (version-pinned) and weak (interval-cost) consistency both repair it.
//
//   ./consistency_demo
#include <cmath>
#include <cstdio>

#include "core/controller.hpp"

namespace {

using namespace mstc;
using core::ConsistencyMode;
using core::HelloRecord;
using core::NodeController;
using geom::Vec2;

// Fig. 2 geometry: d(u,v) = 5; w moves from W0 (6 from u, 4 from v) to
// W1 (4 from u, 6 from v).
const Vec2 kU{0.0, 0.0};
const Vec2 kV{5.0, 0.0};
const Vec2 kW0{4.5, std::sqrt(15.75)};
const Vec2 kW1{0.5, std::sqrt(15.75)};

HelloRecord hello(core::NodeId sender, Vec2 p, std::uint64_t version,
                  double time) {
  return HelloRecord{sender, {p, version, time}};
}

void feed_schedule(NodeController& u, NodeController& v, NodeController& w) {
  // u hears v and w's FIRST Hello, then decides (before w's second Hello).
  u.on_hello_receive(hello(1, kV, 1, 0.1), 0.1);
  u.on_hello_receive(hello(2, kW0, 1, 0.2), 0.2);
  u.on_hello_send(0.9, kU, 1);
  // v hears everything including w's SECOND Hello, then decides.
  v.on_hello_receive(hello(0, kU, 1, 0.1), 0.1);
  v.on_hello_receive(hello(2, kW0, 1, 0.2), 0.2);
  v.on_hello_receive(hello(2, kW1, 2, 1.0), 1.0);
  v.on_hello_send(1.1, kV, 1);
  // w keeps its own first advertisement in store and decides after moving.
  w.on_hello_receive(hello(0, kU, 1, 0.1), 0.1);
  w.on_hello_receive(hello(1, kV, 1, 0.1), 0.1);
  w.on_hello_receive(hello(2, kW0, 1, 0.2), 0.2);
  w.on_hello_send(1.0, kW1, 2);
}

void report(const char* title, const NodeController& u,
            const NodeController& v, const NodeController& w) {
  const auto fmt = [](const NodeController& node) {
    std::string out = "{";
    for (auto id : node.logical_neighbors()) {
      out += std::string(out.size() > 1 ? "," : "") + "uvw"[id];
    }
    return out + "}";
  };
  const auto mutual = [](const NodeController& a, const NodeController& b) {
    return a.is_logical(b.id()) && b.is_logical(a.id());
  };
  const bool connected = mutual(u, v) && (mutual(u, w) || mutual(v, w));
  std::printf("%-28s u->%-6s v->%-6s w->%-6s  logical topology %s\n", title,
              fmt(u).c_str(), fmt(v).c_str(), fmt(w).c_str(),
              connected ? "CONNECTED" : "PARTITIONED (w cut off)");
}

}  // namespace

int main() {
  const topology::DistanceCost cost;
  const topology::LmstProtocol mst;

  std::printf(
      "Fig. 2 scenario: u=(0,0), v=(5,0); w advertises W0 then moves to "
      "W1.\n"
      "Costs: c(u,v)=5; c(u,w)/c(v,w) are 6/4 at W0 and 4/6 at W1.\n\n");

  {  // 1. Mobility-insensitive baseline: latest Hello wins.
    core::ControllerConfig config;  // Latest mode
    NodeController u(0, mst, cost, config), v(1, mst, cost, config),
        w(2, mst, cost, config);
    feed_schedule(u, v, w);
    report("baseline (inconsistent):", u, v, w);
  }
  {  // 2. Strong consistency: all three pin their decision to version 1.
    core::ControllerConfig config;
    config.mode = ConsistencyMode::kProactive;
    config.history_limit = 3;
    NodeController u(0, mst, cost, config), v(1, mst, cost, config),
        w(2, mst, cost, config);
    feed_schedule(u, v, w);
    u.refresh_selection_versioned(1.5, 1);
    v.refresh_selection_versioned(1.5, 1);
    w.refresh_selection_versioned(1.5, 1);
    report("strong (version-pinned):", u, v, w);
  }
  {  // 3. Weak consistency: two stored Hellos, enhanced removal conditions.
    core::ControllerConfig config;
    config.mode = ConsistencyMode::kWeak;
    config.history_limit = 2;
    NodeController u(0, mst, cost, config), v(1, mst, cost, config),
        w(2, mst, cost, config);
    feed_schedule(u, v, w);
    report("weak (interval costs):", u, v, w);
  }

  std::printf(
      "\nThe baseline partitions because u and v used different versions of\n"
      "w's location (Section 3.2). Pinning one version (Theorem 1) or using\n"
      "interval costs over recent versions (Theorem 4) keeps the logical\n"
      "topology connected without touching the MST protocol itself.\n");
  return 0;
}
