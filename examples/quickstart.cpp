// Quickstart: topology control on a static network snapshot.
//
// Builds a random 100-node deployment, runs the local-MST protocol over
// every node's 1-hop view, and shows what topology control buys you:
// a much smaller transmission range and node degree with connectivity
// preserved (Theorem 1: consistent views => connected logical topology).
//
//   ./quickstart [seed]
#include <cstdio>
#include <cstdlib>

#include "graph/algorithms.hpp"
#include "topology/builder.hpp"
#include "topology/protocol.hpp"
#include "util/prng.hpp"

int main(int argc, char** argv) {
  using namespace mstc;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  // 1. Deploy 100 nodes uniformly at random in 900 x 900 m (the paper's
  //    setting); the normal transmission range of 250 m makes the network
  //    dense (average degree ~18).
  constexpr std::size_t kNodes = 100;
  constexpr double kNormalRange = 250.0;
  util::Xoshiro256 rng(seed);
  std::vector<geom::Vec2> positions;
  positions.reserve(kNodes);
  for (std::size_t i = 0; i < kNodes; ++i) {
    positions.push_back({rng.uniform(0.0, 900.0), rng.uniform(0.0, 900.0)});
  }

  const auto original = topology::original_graph(positions, kNormalRange);
  std::printf("original topology: %zu links, average degree %.1f, %s\n",
              original.edge_count(), original.average_degree(),
              graph::is_connected(original) ? "connected" : "NOT connected");

  // 2. Run a topology-control protocol. Each node sees only its 1-hop
  //    neighborhood and selects logical neighbors; its transmission range
  //    shrinks to the farthest one. Try "RNG", "SPT-2", "Yao", ...
  const topology::ProtocolSuite suite = topology::make_protocol("MST");
  const topology::BuiltTopology controlled = topology::build_topology(
      positions, kNormalRange, *suite.protocol, *suite.cost);

  const auto logical = topology::logical_graph(controlled, positions);
  std::printf(
      "after %s topology control: %zu links, average degree %.2f,\n"
      "  average transmission range %.1f m (was %.0f m), %s\n",
      suite.protocol->name().data(), logical.edge_count(),
      controlled.average_logical_degree(), controlled.average_range(),
      kNormalRange,
      graph::is_connected(logical) ? "still connected" : "DISCONNECTED?!");

  // 3. The point of the paper: if nodes move after the ranges were chosen,
  //    links can silently die. Simulate 2 seconds of drift at 20 m/s and
  //    check the effective topology with and without a buffer zone.
  std::vector<geom::Vec2> drifted = positions;
  for (auto& p : drifted) {
    const double heading = rng.uniform(0.0, 6.283185);
    const double distance = rng.uniform(0.0, 40.0);  // up to 2 s at 20 m/s
    p += geom::Vec2{distance * std::cos(heading), distance * std::sin(heading)};
  }
  for (const double buffer : {0.0, 80.0}) {
    const auto effective =
        topology::effective_graph(controlled, drifted, buffer);
    std::printf(
        "after nodes drift up to 40 m, buffer %3.0f m: %zu of %zu logical "
        "links survive, pair connectivity %.2f\n",
        buffer, effective.edge_count(), logical.edge_count(),
        graph::pair_connectivity_ratio(effective));
  }
  std::printf(
      "\n=> run the mobile_broadcast example to see the full mobility-"
      "sensitive machinery in action.\n");
  return 0;
}
