// Medium scaling benchmark: brute-force O(n^2) scans vs. the spatial
// index, at fixed density (the paper's 100 nodes per 900x900 m^2).
//
// Sweeps n in {100, 250, 500, 1000, 2500, 5000} (MSTC_SCALE_NODES
// overrides) over a beacon-round + snapshot workload — one receivers()
// query per node per simulated second plus a links_within() sweep every
// 5 s, the exact shape of the scenario runner's hot path — and reports
// wall-clock per simulated second, queries/sec (via the obs::Profiler),
// and the medium's candidate/rebuild counters for both paths. Writes
// machine-readable BENCH_medium.json (see docs/PERFORMANCE.md) so future
// PRs have a perf trajectory to compare against:
//
//   ./build/bench/bench_scale                 # full sweep -> BENCH_medium.json
//   ./build/bench/bench_scale --out <path>    # alternate output path
//   ./build/bench/bench_scale --smoke         # CI guard: tiny n, asserts
//                                             #   grid <= brute checks,
//                                             #   rebuilds > 0, identical
//                                             #   receiver sets, and that
//                                             #   the default config routes
//                                             #   tiny fleets to brute
//                                             #   (grid_min_nodes); no JSON
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "mobility/models.hpp"
#include "obs/manifest.hpp"
#include "obs/probe.hpp"
#include "obs/profile.hpp"
#include "sim/medium.hpp"
#include "util/options.hpp"
#include "util/prng.hpp"

namespace {

using mstc::sim::Medium;
using mstc::sim::NodeId;

constexpr double kRange = 250.0;          // the paper's normal range (m)
constexpr double kDensitySide = 900.0;    // 100 nodes per kDensitySide^2
constexpr double kDensityNodes = 100.0;
constexpr double kSpeed = 10.0;           // average waypoint speed (m/s)
constexpr double kDuration = 10.0;        // simulated seconds per mode
constexpr double kSnapshotEvery = 5.0;
constexpr std::uint64_t kSeed = 20040426;

struct ModeResult {
  double wall_seconds = 0.0;
  double wall_per_sim_second = 0.0;
  double queries_per_second = 0.0;
  std::uint64_t queries = 0;
  std::uint64_t distance_checks = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rebuilds = 0;
  std::uint64_t checksum = 0;  // order-sensitive hash of every result set
};

/// Runs the beacon+snapshot workload through one medium configuration.
ModeResult run_mode(const std::vector<mstc::mobility::Trace>& traces,
                    const Medium::Config& config) {
  ModeResult result;
  mstc::obs::RunObservation observation;
  const mstc::obs::Probe probe(&observation);
  Medium medium(traces, config);
  medium.set_probe(&probe);

  std::uint64_t hash = 1469598103934665603ull;
  const auto fold = [&hash](std::uint64_t value) {
    hash ^= value;
    hash *= 1099511628211ull;
  };

  std::vector<NodeId> out;
  std::vector<std::pair<NodeId, NodeId>> links;
  const std::uint64_t wall_start = mstc::obs::wall_now_ns();
  for (double t = 0.0; t <= kDuration; t += 1.0) {
    for (NodeId u = 0; u < medium.node_count(); ++u) {
      medium.receivers(u, kRange, t, out);
      ++result.queries;
      fold(out.size());
      for (const NodeId v : out) fold(v);
    }
  }
  for (double t = 0.0; t <= kDuration; t += kSnapshotEvery) {
    medium.links_within(kRange, t, links);
    ++result.queries;
    fold(links.size());
    for (const auto& [u, v] : links) fold(u * medium.node_count() + v);
  }
  const std::uint64_t wall_ns = mstc::obs::wall_now_ns() - wall_start;

  // PR 2 profiler: one "run" = this mode's sweep; events = queries served.
  mstc::obs::Profiler profiler;
  profiler.add_run(wall_ns, result.queries);
  result.wall_seconds = static_cast<double>(wall_ns) * 1e-9;
  result.wall_per_sim_second = result.wall_seconds / kDuration;
  result.queries_per_second = profiler.events_per_second();
  result.distance_checks =
      observation.counters.total(mstc::obs::Counter::kMediumCandidates);
  result.accepted = observation.counters.total(
      mstc::obs::Counter::kMediumCandidatesAccepted);
  result.rebuilds =
      observation.counters.total(mstc::obs::Counter::kMediumGridRebuilds);
  result.checksum = hash;
  return result;
}

struct ScalePoint {
  std::size_t nodes = 0;
  double side = 0.0;
  ModeResult brute;
  ModeResult grid;
  // Default config: Medium picks brute vs. grid via grid_min_nodes. The
  // crossover guard checks this auto choice tracks the faster path.
  ModeResult auto_mode;

  [[nodiscard]] bool identical() const {
    return brute.checksum == grid.checksum &&
           brute.checksum == auto_mode.checksum;
  }
};

ScalePoint run_point(std::size_t nodes) {
  ScalePoint point;
  point.nodes = nodes;
  // Fixed density: area grows with n so the neighborhood size stays the
  // paper's (~ pi * 250^2 * 100 / 900^2 ~ 24 neighbors).
  point.side =
      kDensitySide * std::sqrt(static_cast<double>(nodes) / kDensityNodes);
  const auto model = mstc::mobility::make_paper_waypoint(
      {point.side, point.side}, kSpeed);
  const auto traces = mstc::mobility::generate_traces(
      *model, nodes, kDuration, mstc::util::derive_seed(kSeed, nodes));
  point.brute = run_mode(traces, {.brute_force = true});
  point.grid = run_mode(traces, {.grid_min_nodes = 0});  // index forced on
  point.auto_mode = run_mode(traces, {});
  return point;
}

void print_point(const ScalePoint& p) {
  const double speedup = p.grid.wall_seconds > 0.0
                             ? p.brute.wall_seconds / p.grid.wall_seconds
                             : 0.0;
  const double check_ratio =
      p.grid.distance_checks > 0
          ? static_cast<double>(p.brute.distance_checks) /
                static_cast<double>(p.grid.distance_checks)
          : 0.0;
  std::printf(
      "n=%5zu  brute %8.1f ms (%12" PRIu64
      " checks)  grid %8.1f ms (%10" PRIu64 " checks, %3" PRIu64
      " rebuilds)  speedup %5.1fx  checks/ %5.1fx  auto=%s  %s\n",
      p.nodes, p.brute.wall_seconds * 1e3, p.brute.distance_checks,
      p.grid.wall_seconds * 1e3, p.grid.distance_checks, p.grid.rebuilds,
      speedup, check_ratio, p.auto_mode.rebuilds > 0 ? "grid" : "brute",
      p.identical() ? "identical" : "DIVERGED");
}

void append_mode_json(std::string& json, const char* name,
                      const ModeResult& mode) {
  char buffer[512];
  std::snprintf(buffer, sizeof(buffer),
                "      \"%s\": {\"wall_s\": %.6f, \"wall_per_sim_s\": %.6f, "
                "\"queries\": %" PRIu64 ", \"queries_per_s\": %.1f, "
                "\"distance_checks\": %" PRIu64 ", \"accepted\": %" PRIu64
                ", \"grid_rebuilds\": %" PRIu64 "}",
                name, mode.wall_seconds, mode.wall_per_sim_second,
                mode.queries, mode.queries_per_second, mode.distance_checks,
                mode.accepted, mode.rebuilds);
  json += buffer;
}

bool write_json(const std::string& path,
                const std::vector<ScalePoint>& points) {
  std::string json = "{\n";
  json += "  \"bench\": \"bench_scale\",\n";
  json += "  \"version\": \"" +
          mstc::obs::json_escape(mstc::obs::build_version()) + "\",\n";
  char buffer[512];
  std::snprintf(buffer, sizeof(buffer),
                "  \"config\": {\"range_m\": %.1f, \"density\": \"%.0f nodes "
                "per %.0fx%.0f m^2\", \"speed_mps\": %.1f, \"duration_s\": "
                "%.1f, \"hello_interval_s\": 1.0, \"snapshot_interval_s\": "
                "%.1f, \"seed\": %" PRIu64 "},\n",
                kRange, kDensityNodes, kDensitySide, kDensitySide, kSpeed,
                kDuration, kSnapshotEvery, kSeed);
  json += buffer;
  json += "  \"results\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const ScalePoint& p = points[i];
    const double speedup = p.grid.wall_seconds > 0.0
                               ? p.brute.wall_seconds / p.grid.wall_seconds
                               : 0.0;
    const double check_ratio =
        p.grid.distance_checks > 0
            ? static_cast<double>(p.brute.distance_checks) /
                  static_cast<double>(p.grid.distance_checks)
            : 0.0;
    std::snprintf(buffer, sizeof(buffer),
                  "    {\"nodes\": %zu, \"area_side_m\": %.1f,\n", p.nodes,
                  p.side);
    json += buffer;
    append_mode_json(json, "brute", p.brute);
    json += ",\n";
    append_mode_json(json, "grid", p.grid);
    json += ",\n";
    append_mode_json(json, "auto", p.auto_mode);
    json += ",\n";
    std::snprintf(buffer, sizeof(buffer),
                  "      \"wall_speedup\": %.2f, "
                  "\"distance_check_reduction\": %.2f, "
                  "\"auto_picked\": \"%s\", "
                  "\"results_identical\": %s}",
                  speedup, check_ratio,
                  p.auto_mode.rebuilds > 0 ? "grid" : "brute",
                  p.identical() ? "true" : "false");
    json += buffer;
    json += i + 1 < points.size() ? ",\n" : "\n";
  }
  json += "  ]\n}\n";

  std::ofstream file(path);
  if (!file) return false;
  file << json;
  return static_cast<bool>(file);
}

int run_smoke() {
  std::printf("bench_scale --smoke: grid-vs-brute guard at tiny n\n");
  int failures = 0;
  for (const std::size_t nodes : {64ul, 128ul}) {
    const ScalePoint p = run_point(nodes);
    print_point(p);
    if (!p.identical()) {
      std::fprintf(stderr, "FAIL n=%zu: result sets diverged across paths\n",
                   p.nodes);
      ++failures;
    }
    // Crossover guard: tiny fleets sit below grid_min_nodes, so the
    // default config must route them to the brute path.
    if (p.auto_mode.rebuilds != 0) {
      std::fprintf(stderr,
                   "FAIL n=%zu: default config built the grid below the "
                   "grid_min_nodes crossover\n",
                   p.nodes);
      ++failures;
    }
    if (p.grid.distance_checks > p.brute.distance_checks) {
      std::fprintf(stderr,
                   "FAIL n=%zu: grid examined more candidates than brute "
                   "force (%" PRIu64 " > %" PRIu64 ")\n",
                   p.nodes, p.grid.distance_checks, p.brute.distance_checks);
      ++failures;
    }
    if (p.grid.rebuilds == 0) {
      std::fprintf(stderr,
                   "FAIL n=%zu: rebuild counter is zero — the index "
                   "silently regressed to brute force\n",
                   p.nodes);
      ++failures;
    }
  }
  std::printf(failures == 0 ? "smoke OK\n" : "smoke FAILED\n");
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_medium.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_scale [--smoke] [--out <path>]\n");
      return 2;
    }
  }
  if (smoke) return run_smoke();

  const std::vector<double> axis = mstc::util::env_list(
      "MSTC_SCALE_NODES", {100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0});
  std::printf("=== medium scaling: brute-force vs. spatial index ===\n");
  std::printf("fixed density, %.0f m range, %.0f s simulated per mode\n\n",
              kRange, kDuration);
  std::vector<ScalePoint> points;
  points.reserve(axis.size());
  for (const double n : axis) {
    points.push_back(run_point(static_cast<std::size_t>(n)));
    print_point(points.back());
  }
  if (!write_json(out_path, points)) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
