// Ablation I: greedy geographic unicast over the controlled topology.
//
// The end-to-end purpose of topology control is to carry routes. Each hop
// acts on positions one Hello interval stale; the buffer zone repairs the
// broken-link failures exactly as Theorem 5 predicts, while greedy local
// minima (the "stuck" column) are a property of the thinned topology that
// no buffer can fix — motivating the denser protocols.
#include "common.hpp"
#include "mobility/models.hpp"
#include "routing/greedy.hpp"
#include "topology/protocol.hpp"

int main() {
  using namespace mstc;
  const auto speeds = bench::speed_axis();
  const auto buffers = util::env_list("MSTC_BUFFERS", {0.0, 10.0, 100.0});
  const std::size_t repeats = runner::sweep_repeats(3);
  bench::banner("Ablation: greedy unicast routing",
                2 * buffers.size() * speeds.size(), repeats);

  constexpr double kRange = 250.0;
  constexpr std::size_t kNodes = 100;
  constexpr double kStaleness = 1.0;  // one Hello interval

  util::Table table({"protocol", "buffer_m", "speed_mps", "delivered",
                     "link_broken", "stuck", "mean_hops"});
  table.set_title("Greedy routing over stale views (100 random pairs/snapshot)");

  for (const char* protocol_name : {"RNG", "SPT-2"}) {
    const auto suite = topology::make_protocol(protocol_name);
    for (const double buffer : buffers) {
      for (const double speed : speeds) {
        util::Summary delivered, broken, stuck, hops;
        for (std::size_t repeat = 0; repeat < repeats; ++repeat) {
          const auto model =
              mobility::make_paper_waypoint({900.0, 900.0}, speed);
          const auto traces = mobility::generate_traces(
              *model, kNodes, 30.0,
              util::derive_seed(bench::base_config().seed + repeat, 0x60));
          util::Xoshiro256 rng(
              util::derive_seed(bench::base_config().seed + repeat, 0x61));
          for (double t = 5.0; t <= 30.0; t += 5.0) {
            std::vector<geom::Vec2> believed(kNodes), actual(kNodes);
            for (std::size_t i = 0; i < kNodes; ++i) {
              believed[i] = traces[i].position(t - kStaleness);
              actual[i] = traces[i].position(t);
            }
            const auto topo = topology::build_topology(
                believed, kRange, *suite.protocol, *suite.cost);
            std::size_t ok = 0, dead_link = 0, minimum = 0, hop_total = 0,
                        ok_count = 0;
            constexpr int kPairs = 100;
            for (int pair = 0; pair < kPairs; ++pair) {
              const auto s = rng.uniform_below(kNodes);
              auto d = rng.uniform_below(kNodes);
              if (s == d) d = (d + 1) % kNodes;
              const auto outcome =
                  routing::greedy_route(topo, believed, actual, s, d, buffer);
              ok += outcome.delivered;
              dead_link += outcome.link_broken;
              minimum += outcome.stuck;
              if (outcome.delivered) {
                hop_total += outcome.hops;
                ++ok_count;
              }
            }
            delivered.add(static_cast<double>(ok) / kPairs);
            broken.add(static_cast<double>(dead_link) / kPairs);
            stuck.add(static_cast<double>(minimum) / kPairs);
            if (ok_count > 0) {
              hops.add(static_cast<double>(hop_total) /
                       static_cast<double>(ok_count));
            }
          }
        }
        table.add_row({protocol_name, buffer, speed,
                       bench::ci_cell(delivered), bench::ci_cell(broken),
                       bench::ci_cell(stuck), bench::ci_cell(hops, 1)});
      }
    }
  }
  bench::emit(table, "ablation_routing");
  return 0;
}
