// Event-kernel benchmark: end-to-end scenario throughput across n and
// Hello rate, with a debug allocation-counting hook.
//
// Each row runs the full scenario pipeline (mobility -> medium -> MAC ->
// controllers -> floods/snapshots) twice per cache mode — once at the base
// duration and once at double duration — so the *steady-state* allocation
// rate can be reported as the marginal (extra allocations) / (extra
// events), excluding one-time setup. Reported per mode:
//
//   events_per_s     simulator events processed per wall second (the
//                    obs::Profiler's event-loop measurement, setup excluded)
//   allocs_per_event marginal operator-new calls per simulator event
//   skip_rate        topology_recompute_skips / (recomputes + skips)
//
// Rows compare the recompute cache ON vs OFF and assert byte-identical
// RunStats between the two (results_identical), mirroring the determinism
// suite's guarantee. Writes BENCH_kernel.json (see docs/PERFORMANCE.md):
//
//   ./build/bench/bench_kernel                  # full sweep -> BENCH_kernel.json
//   ./build/bench/bench_kernel --out <path>     # alternate output path
//   ./build/bench/bench_kernel --ref <path>     # compare events_per_s against
//                                               #   a previous BENCH_kernel.json
//                                               #   (speedup_vs_pre_pr column)
//   ./build/bench/bench_kernel --smoke          # CI guard: tiny n, asserts
//                                               #   results_identical; no JSON
#include <atomic>
#include <bit>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <new>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "metrics/aggregate.hpp"
#include "obs/manifest.hpp"
#include "obs/probe.hpp"
#include "runner/config.hpp"
#include "runner/scenario.hpp"
#include "util/prng.hpp"

// ---------------------------------------------------------------------------
// Debug allocation-counting hook: replaces the global (unaligned) operator
// new/delete for this binary only. Counts every heap allocation made
// anywhere in the process — the point is to prove the simulation's steady
// state makes none.
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size > 0 ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

// ---------------------------------------------------------------------------

namespace {

using mstc::metrics::RunStats;
using mstc::runner::ScenarioConfig;

constexpr double kRange = 250.0;        // the paper's normal range (m)
constexpr double kDensitySide = 900.0;  // 100 nodes per kDensitySide^2
constexpr double kDensityNodes = 100.0;
constexpr double kDuration = 6.0;  // base simulated seconds per run
constexpr double kWarmup = 1.0;
constexpr std::uint64_t kSeed = 20040426;

struct RowSpec {
  const char* label;
  std::size_t nodes;
  double hello_interval;
  const char* mobility;
};

constexpr RowSpec kRows[] = {
    {"n500_waypoint_hello1.0", 500, 1.0, "waypoint"},
    {"n1000_waypoint_hello1.0", 1000, 1.0, "waypoint"},
    {"n2500_waypoint_hello1.0", 2500, 1.0, "waypoint"},
    {"n1000_waypoint_hello0.5", 1000, 0.5, "waypoint"},
    {"n1000_waypoint_hello2.0", 1000, 2.0, "waypoint"},
    {"n2500_static_hello1.0", 2500, 1.0, "static"},
};

constexpr RowSpec kSmokeRows[] = {
    {"smoke_n128_waypoint", 128, 1.0, "waypoint"},
    {"smoke_n128_static", 128, 1.0, "static"},
};

ScenarioConfig make_config(const RowSpec& row, std::uint64_t seed_stream) {
  ScenarioConfig cfg;
  cfg.node_count = row.nodes;
  // Fixed density: area grows with n so the neighborhood stays the
  // paper's (~24 neighbors), same convention as bench_scale.
  const double side = kDensitySide *
                      std::sqrt(static_cast<double>(row.nodes) / kDensityNodes);
  cfg.area = {side, side};
  cfg.normal_range = kRange;
  cfg.mobility_model = row.mobility;
  cfg.protocol = "RNG";
  // ViewSync refreshes the selection on every synchronization-flood
  // forward — the heaviest recompute pressure of the consistency modes.
  cfg.mode = mstc::core::ConsistencyMode::kViewSync;
  cfg.hello_interval = row.hello_interval;
  cfg.duration = kDuration;
  cfg.warmup = kWarmup;
  cfg.flood_rate = 2.0;
  // Snapshots are O(n^2) and measure the medium, not the kernel; keep
  // them rare so they do not dilute the event-loop measurement.
  cfg.snapshot_rate = 0.25;
  cfg.flood_settle = 0.5;
  cfg.seed = mstc::util::derive_seed(kSeed, seed_stream);
  return cfg;
}

std::vector<std::uint64_t> bit_snapshot(const RunStats& stats) {
  return {std::bit_cast<std::uint64_t>(stats.delivery_ratio),
          std::bit_cast<std::uint64_t>(stats.strict_connectivity),
          std::bit_cast<std::uint64_t>(stats.mean_range),
          std::bit_cast<std::uint64_t>(stats.mean_logical_degree),
          std::bit_cast<std::uint64_t>(stats.mean_physical_degree),
          std::bit_cast<std::uint64_t>(stats.control_tx_rate),
          std::bit_cast<std::uint64_t>(stats.mac_collision_fraction)};
}

// Kernel cost categories surfaced as ns/event (docs/OBSERVABILITY.md).
// They nest (medium_query inside the issuing phase, protocol_select inside
// view_assembly), so the columns deliberately do not sum to 1e9/events_per_s.
constexpr mstc::obs::Category kCostCategories[] = {
    mstc::obs::Category::kMediumQuery,
    mstc::obs::Category::kViewAssembly,
    mstc::obs::Category::kProtocolSelect,
    mstc::obs::Category::kDelivery,
};
constexpr std::size_t kCostCategoryCount = std::size(kCostCategories);

struct ModeResult {
  double events_per_s = 0.0;
  double wall_s = 0.0;            // event-loop wall of the long run
  std::uint64_t events = 0;       // events processed by the long run
  std::uint64_t allocations = 0;  // total operator-new calls, long run
  double allocs_per_event = 0.0;  // marginal: (long - base) allocations
                                  //           / (long - base) events
  double skip_rate = 0.0;
  double ns_per_event[kCostCategoryCount] = {};  // long run, per category
  std::vector<std::uint64_t> base_bits;  // RunStats of the base run
  std::vector<std::uint64_t> long_bits;  // RunStats of the double run
};

struct OneRun {
  std::uint64_t events = 0;
  std::uint64_t wall_ns = 0;
  std::uint64_t allocations = 0;
  std::uint64_t recomputes = 0;
  std::uint64_t skips = 0;
  std::uint64_t category_ns[kCostCategoryCount] = {};
  std::vector<std::uint64_t> bits;
};

OneRun run_once(ScenarioConfig cfg, bool cache_on) {
  cfg.recompute_cache = cache_on;
  mstc::obs::RunObservation observation;
  observation.profile_on = true;
  const std::uint64_t allocs_before =
      g_allocations.load(std::memory_order_relaxed);
  const RunStats stats = mstc::runner::run_scenario(cfg, &observation);
  OneRun run;
  run.allocations =
      g_allocations.load(std::memory_order_relaxed) - allocs_before;
  run.events = observation.profiler.events();
  run.wall_ns = observation.profiler.run_wall_ns();
  run.recomputes = observation.counters.total(
      mstc::obs::Counter::kTopologyRecomputes);
  run.skips = observation.counters.total(
      mstc::obs::Counter::kTopologyRecomputeSkips);
  for (std::size_t c = 0; c < kCostCategoryCount; ++c) {
    run.category_ns[c] = observation.profiler.nanos(kCostCategories[c]);
  }
  run.bits = bit_snapshot(stats);
  return run;
}

ModeResult run_mode(const RowSpec& row, std::uint64_t seed_stream,
                    bool cache_on) {
  const ScenarioConfig base_cfg = make_config(row, seed_stream);
  ScenarioConfig long_cfg = base_cfg;
  long_cfg.duration = base_cfg.duration * 2.0;

  const OneRun base = run_once(base_cfg, cache_on);
  const OneRun longer = run_once(long_cfg, cache_on);

  ModeResult mode;
  mode.events = longer.events;
  mode.wall_s = static_cast<double>(longer.wall_ns) * 1e-9;
  mode.events_per_s =
      longer.wall_ns > 0
          ? static_cast<double>(longer.events) * 1e9 /
                static_cast<double>(longer.wall_ns)
          : 0.0;
  mode.allocations = longer.allocations;
  if (longer.events > base.events) {
    mode.allocs_per_event =
        static_cast<double>(longer.allocations - base.allocations) /
        static_cast<double>(longer.events - base.events);
  }
  const std::uint64_t decisions = longer.recomputes + longer.skips;
  mode.skip_rate = decisions > 0 ? static_cast<double>(longer.skips) /
                                       static_cast<double>(decisions)
                                 : 0.0;
  if (longer.events > 0) {
    for (std::size_t c = 0; c < kCostCategoryCount; ++c) {
      mode.ns_per_event[c] = static_cast<double>(longer.category_ns[c]) /
                             static_cast<double>(longer.events);
    }
  }
  mode.base_bits = base.bits;
  mode.long_bits = longer.bits;
  return mode;
}

struct RowResult {
  RowSpec spec;
  ModeResult cache_off;
  ModeResult cache_on;
  bool results_identical = false;
  double pre_pr_events_per_s = 0.0;  // from --ref, 0 when absent
};

RowResult run_row(const RowSpec& row, std::uint64_t seed_stream) {
  RowResult result;
  result.spec = row;
  result.cache_off = run_mode(row, seed_stream, /*cache_on=*/false);
  result.cache_on = run_mode(row, seed_stream, /*cache_on=*/true);
  result.results_identical =
      result.cache_off.base_bits == result.cache_on.base_bits &&
      result.cache_off.long_bits == result.cache_on.long_bits;
  return result;
}

void print_cost_split(const ModeResult& mode) {
  std::printf("%-26s   cost split:", "");
  for (std::size_t c = 0; c < kCostCategoryCount; ++c) {
    std::printf(" %s %.0f ns/ev",
                mstc::obs::category_name(kCostCategories[c]),
                mode.ns_per_event[c]);
  }
  std::printf("\n");
}

void print_row(const RowResult& r) {
  std::printf(
      "%-26s off %10.0f ev/s (%5.2f allocs/ev)  on %10.0f ev/s "
      "(%5.2f allocs/ev, skip %4.1f%%)  %s%s\n",
      r.spec.label, r.cache_off.events_per_s, r.cache_off.allocs_per_event,
      r.cache_on.events_per_s, r.cache_on.allocs_per_event,
      r.cache_on.skip_rate * 100.0,
      r.results_identical ? "identical" : "DIVERGED",
      r.pre_pr_events_per_s > 0.0 ? "" : "");
  print_cost_split(r.cache_on);
  if (r.pre_pr_events_per_s > 0.0) {
    std::printf("%-26s   vs pre-PR %.0f ev/s -> %.2fx\n", "",
                r.pre_pr_events_per_s,
                r.cache_on.events_per_s / r.pre_pr_events_per_s);
  }
}

void append_mode_json(std::string& json, const char* name,
                      const ModeResult& mode) {
  char buffer[512];
  std::snprintf(buffer, sizeof(buffer),
                "      \"%s\": {\"events_per_s\": %.1f, \"wall_s\": %.6f, "
                "\"events\": %" PRIu64 ", \"allocs_total\": %" PRIu64
                ", \"allocs_per_event\": %.4f, \"skip_rate\": %.4f,\n"
                "        \"kernel_ns_per_event\": {",
                name, mode.events_per_s, mode.wall_s, mode.events,
                mode.allocations, mode.allocs_per_event, mode.skip_rate);
  json += buffer;
  for (std::size_t c = 0; c < kCostCategoryCount; ++c) {
    std::snprintf(buffer, sizeof(buffer), "%s\"%s\": %.1f",
                  c == 0 ? "" : ", ",
                  mstc::obs::category_name(kCostCategories[c]),
                  mode.ns_per_event[c]);
    json += buffer;
  }
  json += "}}";
}

bool write_json(const std::string& path, const std::vector<RowResult>& rows,
                bool have_ref) {
  std::string json = "{\n";
  json += "  \"bench\": \"bench_kernel\",\n";
  json += "  \"version\": \"" +
          mstc::obs::json_escape(mstc::obs::build_version()) + "\",\n";
  char buffer[512];
  std::snprintf(
      buffer, sizeof(buffer),
      "  \"config\": {\"range_m\": %.1f, \"density\": \"%.0f nodes per "
      "%.0fx%.0f m^2\", \"protocol\": \"RNG\", \"mode\": \"ViewSync\", "
      "\"duration_s\": %.1f, \"warmup_s\": %.1f, \"flood_rate\": 2.0, "
      "\"snapshot_rate\": 0.25, \"seed\": %" PRIu64 "},\n",
      kRange, kDensityNodes, kDensitySide, kDensitySide, kDuration, kWarmup,
      kSeed);
  json += buffer;
  json += "  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const RowResult& r = rows[i];
    std::snprintf(buffer, sizeof(buffer),
                  "    {\"label\": \"%s\", \"nodes\": %zu, "
                  "\"hello_interval_s\": %.1f, \"mobility\": \"%s\",\n",
                  r.spec.label, r.spec.nodes, r.spec.hello_interval,
                  r.spec.mobility);
    json += buffer;
    append_mode_json(json, "cache_off", r.cache_off);
    json += ",\n";
    append_mode_json(json, "cache_on", r.cache_on);
    json += ",\n";
    std::snprintf(buffer, sizeof(buffer), "      \"results_identical\": %s",
                  r.results_identical ? "true" : "false");
    json += buffer;
    if (have_ref && r.pre_pr_events_per_s > 0.0) {
      std::snprintf(buffer, sizeof(buffer),
                    ",\n      \"pre_pr_events_per_s\": %.1f, "
                    "\"speedup_vs_pre_pr\": %.2f",
                    r.pre_pr_events_per_s,
                    r.cache_on.events_per_s / r.pre_pr_events_per_s);
      json += buffer;
    }
    json += "}";
    json += i + 1 < rows.size() ? ",\n" : "\n";
  }
  json += "  ]\n}\n";

  std::ofstream file(path);
  if (!file) return false;
  file << json;
  return static_cast<bool>(file);
}

/// Pulls cache_on events_per_s for `label` out of a previous
/// BENCH_kernel.json (plain text scan — the bench's own output format).
double ref_events_per_s(const std::string& ref_text, const char* label) {
  const std::string needle = std::string("\"label\": \"") + label + "\"";
  const std::size_t row_at = ref_text.find(needle);
  if (row_at == std::string::npos) return 0.0;
  const std::size_t mode_at = ref_text.find("\"cache_on\"", row_at);
  if (mode_at == std::string::npos) return 0.0;
  const std::size_t key_at = ref_text.find("\"events_per_s\": ", mode_at);
  if (key_at == std::string::npos) return 0.0;
  return std::strtod(ref_text.c_str() + key_at + 16, nullptr);
}

// Baseline JSONs are only comparable when they come from a committed
// tree: a "-dirty" git describe means nobody can reproduce the build.
void warn_if_dirty_version() {
  const std::string version = mstc::obs::build_version();
  if (version.find("-dirty") != std::string::npos) {
    std::fprintf(stderr,
                 "WARNING: build version '%s' is -dirty; the written JSON "
                 "is not reproducible as a baseline. Commit first, then "
                 "regenerate.\n",
                 version.c_str());
  }
}

int run_smoke() {
  std::printf("bench_kernel --smoke: kernel/cache guard at tiny n\n");
  int failures = 0;
  std::uint64_t stream = 1;
  for (const RowSpec& spec : kSmokeRows) {
    RowSpec quick = spec;
    const RowResult r = run_row(quick, stream++);
    print_row(r);
    if (!r.results_identical) {
      std::fprintf(stderr,
                   "FAIL %s: cache-on run diverged from cache-off\n",
                   spec.label);
      ++failures;
    }
    // A static fleet's positions never change, so nearly every refresh
    // after warmup must hit the cache. Zero skips means the cache
    // silently stopped engaging.
    if (std::string_view(spec.mobility) == "static" &&
        r.cache_on.skip_rate <= 0.0) {
      std::fprintf(stderr,
                   "FAIL %s: recompute cache never skipped on a static "
                   "fleet\n",
                   spec.label);
      ++failures;
    }
  }
  std::printf(failures == 0 ? "smoke OK\n" : "smoke FAILED\n");
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_kernel.json";
  std::string ref_path;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--ref" && i + 1 < argc) {
      ref_path = argv[++i];
    } else {
      std::fprintf(
          stderr,
          "usage: bench_kernel [--smoke] [--out <path>] [--ref <path>]\n");
      return 2;
    }
  }
  if (smoke) return run_smoke();

  std::string ref_text;
  if (!ref_path.empty()) {
    std::ifstream ref_file(ref_path);
    if (!ref_file) {
      std::fprintf(stderr, "error: cannot read --ref %s\n", ref_path.c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << ref_file.rdbuf();
    ref_text = buffer.str();
  }

  std::printf("=== event kernel: throughput / allocations / skip rate ===\n");
  std::printf("RNG + ViewSync, fixed density, %.0f s + %.0f s per mode\n\n",
              kDuration, kDuration * 2.0);
  std::vector<RowResult> rows;
  std::uint64_t stream = 1;
  for (const RowSpec& spec : kRows) {
    rows.push_back(run_row(spec, stream++));
    if (!ref_text.empty()) {
      rows.back().pre_pr_events_per_s =
          ref_events_per_s(ref_text, spec.label);
    }
    print_row(rows.back());
  }
  if (!write_json(out_path, rows, !ref_text.empty())) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  warn_if_dirty_version();
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
