// Ablation C: the full consistency-mechanism lineup under the Theorem 5
// adaptive buffer (l = 2 * Delta'' * v). Latest is the mobility-
// insensitive baseline; ViewSync is the paper's simulated mechanism;
// Proactive/Reactive are the two strong-consistency schemes of Section
// 4.1; Weak is Section 4.2. Strong/weak consistency fixes the *logical*
// topology, the adaptive buffer the *effective* one — together they hold
// connectivity across the mobility axis.
#include "common.hpp"

int main() {
  using namespace mstc;
  using core::ConsistencyMode;
  const std::vector<double> speeds =
      util::env_list("MSTC_SPEEDS", {1.0, 20.0, 40.0});
  const std::vector<ConsistencyMode> modes = {
      ConsistencyMode::kLatest, ConsistencyMode::kViewSync,
      ConsistencyMode::kProactive, ConsistencyMode::kReactive,
      ConsistencyMode::kWeak};
  const std::size_t repeats = runner::sweep_repeats();
  bench::banner("Ablation: consistency mechanisms + adaptive buffer",
                modes.size() * speeds.size(), repeats);

  std::vector<runner::ScenarioConfig> grid;
  for (const auto mode : modes) {
    for (double speed : speeds) {
      auto cfg = bench::base_config();
      cfg.protocol = "RNG";
      cfg.mode = mode;
      cfg.adaptive_buffer = true;
      cfg.average_speed = speed;
      grid.push_back(cfg);
    }
  }
  const auto results = runner::run_batch(grid, repeats);

  util::Table table({"mode", "speed_mps", "connectivity", "strict",
                     "avg_range_m", "control_tx_per_node_s"});
  table.set_title("Consistency mechanisms (RNG, adaptive buffer)");
  for (std::size_t i = 0; i < grid.size(); ++i) {
    table.add_row({std::string(core::to_string(grid[i].mode)),
                   grid[i].average_speed,
                   bench::ci_cell(results[i].delivery()),
                   bench::ci_cell(results[i].strict()),
                   bench::ci_cell(results[i].range(), 1),
                   bench::ci_cell(results[i].control_tx(), 2)});
  }
  bench::emit(table, "ablation_consistency");
  return 0;
}
