// Ablation J: structural redundancy instead of mobility management.
//
// Section 2.2's claim about the fault-tolerant line of work ([1], [15],
// [18]): building a k-connected topology "can only reduce but not
// eliminate network partitioning" under mobility. We sweep the k-redundant
// Yao and CBTC variants as plain baselines (no view synchronization, no
// buffer) and compare them against the paper's actual fix (VS + buffer) on
// the 1-redundant protocol: redundancy helps, management wins.
#include "common.hpp"

int main() {
  using namespace mstc;
  const auto speeds = bench::speed_axis();
  const std::size_t repeats = runner::sweep_repeats();
  const std::vector<std::string> lineup = {"Yao",   "Yao2",  "Yao3",
                                           "CBTC", "CBTC2", "CBTC3"};
  bench::banner("Ablation: k-redundant topologies vs mobility management",
                (lineup.size() + 1) * speeds.size(), repeats);

  std::vector<runner::ScenarioConfig> grid;
  for (const auto& protocol : lineup) {
    for (double speed : speeds) {
      auto cfg = bench::base_config();
      cfg.protocol = protocol;
      cfg.average_speed = speed;
      grid.push_back(cfg);
    }
  }
  // The managed reference: plain Yao + VS + 10 m buffer.
  for (double speed : speeds) {
    auto cfg = bench::base_config();
    cfg.protocol = "Yao";
    cfg.mode = core::ConsistencyMode::kViewSync;
    cfg.buffer_width = 10.0;
    cfg.average_speed = speed;
    grid.push_back(cfg);
  }
  const auto results = runner::run_batch(grid, repeats);

  util::Table table({"config", "speed_mps", "connectivity", "avg_range_m",
                     "logical_degree"});
  table.set_title("Redundancy (k-Yao / CBTC-k baselines) vs management");
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const bool managed = grid[i].mode == core::ConsistencyMode::kViewSync;
    table.add_row({managed ? "Yao+VS+10m" : grid[i].protocol,
                   grid[i].average_speed,
                   bench::ci_cell(results[i].delivery()),
                   bench::ci_cell(results[i].range(), 1),
                   bench::ci_cell(results[i].logical_degree(), 2)});
  }
  bench::emit(table, "ablation_fault_tolerance");
  return 0;
}
