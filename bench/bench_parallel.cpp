// Event-kernel benchmark: queue backends and intra-replication sharding.
//
// Each row runs one replication of the full scenario pipeline three
// times at fixed density across n —
//
//   serial_heap   binary-heap queue, serial kernel (the reference)
//   serial        calendar queue, serial kernel
//   sharded       calendar queue, spatially sharded kernel
//
// — and asserts all three arms' RunStats are byte-identical (the
// pluggable queue's and the sharded kernel's core contracts; the
// determinism suite pins both). Reported per arm:
//
//   events_per_s   simulator events per wall second (obs::Profiler's
//                  event-loop measurement, setup excluded)
//   wall_s         event-loop wall seconds
//   queue/shards/threads   what the arm actually ran with
//
// and per row the sharded/serial speedup, the calendar/heap
// queue_speedup, plus the sharded arm's barrier count and cross-shard
// share. The shard speedup column is only meaningful on a multi-core
// runner: `cores` (std::thread::hardware_concurrency) and per-arm
// `threads` (the pool actually used) are recorded so
// tools/bench_check.py can gate the ratio on machines that can express
// parallelism and gate bit-identity (and the queue's scaling slope)
// everywhere. Writes BENCH_parallel.json:
//
//   ./build/bench/bench_parallel                # full sweep -> BENCH_parallel.json
//   ./build/bench/bench_parallel --out <path>   # alternate output path
//   ./build/bench/bench_parallel --smoke        # CI guard: tiny n, asserts
//                                               #   byte-identity across all
//                                               #   arms + engaged barriers;
//                                               #   no JSON
#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/manifest.hpp"
#include "obs/probe.hpp"
#include "runner/config.hpp"
#include "runner/scenario.hpp"
#include "util/prng.hpp"
#include "util/thread_pool.hpp"

namespace {

using mstc::metrics::RunStats;
using mstc::runner::ScenarioConfig;

constexpr double kRange = 250.0;        // the paper's normal range (m)
constexpr double kDensitySide = 900.0;  // 100 nodes per kDensitySide^2
constexpr double kDensityNodes = 100.0;
constexpr double kDuration = 4.0;  // simulated seconds per arm
constexpr double kWarmup = 1.0;
constexpr std::uint64_t kSeed = 20040815;
// Requested strip count; effective_shards clamps it to the fleet's
// grid-cell columns, so small fleets get fewer.
constexpr std::size_t kShardsRequested = 16;

struct RowSpec {
  const char* label;
  std::size_t nodes;
};

constexpr RowSpec kRows[] = {
    {"n2500_waypoint", 2500},
    {"n10000_waypoint", 10000},
    {"n50000_waypoint", 50000},
    {"n100000_waypoint", 100000},
};

constexpr RowSpec kSmokeRows[] = {
    {"smoke_n192_waypoint", 192},
    {"smoke_n384_waypoint", 384},
};

ScenarioConfig make_config(const RowSpec& row, std::uint64_t seed_stream) {
  ScenarioConfig cfg;
  cfg.node_count = row.nodes;
  // Fixed density: area grows with n so the neighborhood stays the
  // paper's (~24 neighbors), same convention as bench_scale/bench_kernel.
  const double side = kDensitySide *
                      std::sqrt(static_cast<double>(row.nodes) / kDensityNodes);
  cfg.area = {side, side};
  cfg.normal_range = kRange;
  cfg.mobility_model = "waypoint";
  cfg.protocol = "RNG";
  cfg.mode = mstc::core::ConsistencyMode::kViewSync;
  cfg.hello_interval = 1.0;
  cfg.duration = kDuration;
  cfg.warmup = kWarmup;
  // Floods and snapshots are unkeyed (full-barrier) events; keep them
  // rare so the measurement reflects the shardable beacon steady state.
  cfg.flood_rate = 0.5;
  cfg.snapshot_rate = 0.25;
  cfg.flood_settle = 0.5;
  cfg.seed = mstc::util::derive_seed(kSeed, seed_stream);
  return cfg;
}

std::vector<std::uint64_t> bit_snapshot(const RunStats& stats) {
  return {std::bit_cast<std::uint64_t>(stats.delivery_ratio),
          std::bit_cast<std::uint64_t>(stats.strict_connectivity),
          std::bit_cast<std::uint64_t>(stats.mean_range),
          std::bit_cast<std::uint64_t>(stats.mean_logical_degree),
          std::bit_cast<std::uint64_t>(stats.mean_physical_degree),
          std::bit_cast<std::uint64_t>(stats.control_tx_rate),
          std::bit_cast<std::uint64_t>(stats.mac_collision_fraction)};
}

struct ArmResult {
  double events_per_s = 0.0;
  double wall_s = 0.0;
  std::uint64_t events = 0;
  std::uint64_t kernel_barriers = 0;
  double cross_shard_share = 0.0;
  std::uint64_t queue_resizes = 0;
  const char* queue = "heap";
  std::size_t shards_requested = 1;  // what the arm asked for
  std::uint32_t shards = 1;    // effective (post-clamp) shard count
  std::size_t threads = 1;     // pool threads the arm can actually use
  std::vector<std::uint64_t> bits;
};

ArmResult run_arm(ScenarioConfig cfg, std::size_t shards,
                  const char* queue) {
  cfg.shards = shards;
  cfg.queue = queue;
  mstc::obs::RunObservation observation;
  observation.profile_on = true;
  const RunStats stats = mstc::runner::run_scenario(cfg, &observation);
  ArmResult arm;
  arm.queue = queue;
  arm.shards_requested = shards;
  arm.shards = mstc::runner::resolved_shard_count(cfg);
  arm.threads =
      arm.shards > 1 ? mstc::util::global_pool().thread_count() : 1;
  arm.events = observation.profiler.events();
  arm.wall_s =
      static_cast<double>(observation.profiler.run_wall_ns()) * 1e-9;
  arm.events_per_s =
      arm.wall_s > 0.0 ? static_cast<double>(arm.events) / arm.wall_s : 0.0;
  arm.kernel_barriers =
      observation.counters.total(mstc::obs::Counter::kKernelBarriers);
  const std::uint64_t deliveries =
      observation.counters.total(mstc::obs::Counter::kMediumDeliveries);
  const std::uint64_t cross = observation.counters.total(
      mstc::obs::Counter::kKernelCrossShardEvents);
  arm.cross_shard_share =
      deliveries > 0 ? static_cast<double>(cross) /
                           static_cast<double>(deliveries)
                     : 0.0;
  arm.queue_resizes =
      observation.counters.total(mstc::obs::Counter::kKernelQueueResizes);
  arm.bits = bit_snapshot(stats);
  return arm;
}

struct RowResult {
  RowSpec spec;
  ArmResult serial_heap;
  ArmResult serial;
  ArmResult sharded;
  double speedup = 0.0;        // sharded over serial (both calendar)
  double queue_speedup = 0.0;  // calendar over heap (both serial)
  bool results_identical = false;
};

RowResult run_row(const RowSpec& row, std::uint64_t seed_stream) {
  RowResult result;
  result.spec = row;
  result.serial_heap = run_arm(make_config(row, seed_stream), 1, "heap");
  result.serial = run_arm(make_config(row, seed_stream), 1, "calendar");
  result.sharded =
      run_arm(make_config(row, seed_stream), kShardsRequested, "calendar");
  result.speedup = result.sharded.wall_s > 0.0
                       ? result.serial.wall_s / result.sharded.wall_s
                       : 0.0;
  result.queue_speedup = result.serial.wall_s > 0.0
                             ? result.serial_heap.wall_s / result.serial.wall_s
                             : 0.0;
  // Byte-identity is on RunStats. Raw event counts legitimately differ
  // between serial and sharded (the sharded arm schedules one extra
  // node-local event per Hello — the deferred post-send refresh), so
  // both counts are reported instead; the two serial arms must match
  // exactly (the queue backend cannot change what gets scheduled).
  result.results_identical = result.serial.bits == result.sharded.bits &&
                             result.serial.bits == result.serial_heap.bits;
  return result;
}

void print_row(const RowResult& r) {
  std::printf(
      "%-22s heap %11.0f ev/s  calendar %11.0f ev/s (%.2fx)  "
      "sharded %11.0f ev/s (%.2fx)  (%" PRIu64 " barriers, cross %4.1f%%)  "
      "%s\n",
      r.spec.label, r.serial_heap.events_per_s, r.serial.events_per_s,
      r.queue_speedup, r.sharded.events_per_s, r.speedup,
      r.sharded.kernel_barriers, r.sharded.cross_shard_share * 100.0,
      r.results_identical ? "identical" : "DIVERGED");
}

void append_arm_json(std::string& json, const char* name,
                     const ArmResult& arm) {
  char buffer[512];
  std::snprintf(buffer, sizeof(buffer),
                "      \"%s\": {\"events_per_s\": %.1f, \"wall_s\": %.6f, "
                "\"events\": %" PRIu64 ", \"kernel_barriers\": %" PRIu64
                ", \"cross_shard_share\": %.4f, \"queue\": \"%s\", "
                "\"shards_requested\": %zu, \"shards\": %u, \"threads\": %zu, "
                "\"queue_resizes\": %" PRIu64 "}",
                name, arm.events_per_s, arm.wall_s, arm.events,
                arm.kernel_barriers, arm.cross_shard_share, arm.queue,
                arm.shards_requested, arm.shards, arm.threads,
                arm.queue_resizes);
  json += buffer;
}

bool write_json(const std::string& path, const std::vector<RowResult>& rows,
                std::size_t threads) {
  std::string json = "{\n";
  json += "  \"bench\": \"bench_parallel\",\n";
  json += "  \"version\": \"" +
          mstc::obs::json_escape(mstc::obs::build_version()) + "\",\n";
  char buffer[512];
  std::snprintf(
      buffer, sizeof(buffer),
      "  \"config\": {\"range_m\": %.1f, \"density\": \"%.0f nodes per "
      "%.0fx%.0f m^2\", \"protocol\": \"RNG\", \"mode\": \"ViewSync\", "
      "\"duration_s\": %.1f, \"warmup_s\": %.1f, \"flood_rate\": 0.5, "
      "\"snapshot_rate\": 0.25, \"shards_requested\": %zu, \"cores\": %u, "
      "\"threads\": %zu, \"seed\": %" PRIu64 "},\n",
      kRange, kDensityNodes, kDensitySide, kDensitySide, kDuration, kWarmup,
      kShardsRequested, std::thread::hardware_concurrency(), threads, kSeed);
  json += buffer;
  // Requested vs effective parallelism, surfaced at top level so
  // tools/bench_check.py can refuse to gate shard-speedup ratios on a
  // machine whose pool could not actually express parallelism.
  std::size_t max_effective = 1;
  for (const RowResult& r : rows) {
    max_effective = std::max(max_effective,
                             static_cast<std::size_t>(r.sharded.shards));
  }
  std::snprintf(buffer, sizeof(buffer),
                "  \"parallelism\": {\"shards_requested\": %zu, "
                "\"max_effective_shards\": %zu, \"cores\": %u, "
                "\"threads\": %zu},\n",
                kShardsRequested, max_effective,
                std::thread::hardware_concurrency(), threads);
  json += buffer;
  json += "  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const RowResult& r = rows[i];
    std::snprintf(buffer, sizeof(buffer),
                  "    {\"label\": \"%s\", \"nodes\": %zu,\n", r.spec.label,
                  r.spec.nodes);
    json += buffer;
    append_arm_json(json, "serial_heap", r.serial_heap);
    json += ",\n";
    append_arm_json(json, "serial", r.serial);
    json += ",\n";
    append_arm_json(json, "sharded", r.sharded);
    json += ",\n";
    std::snprintf(buffer, sizeof(buffer),
                  "      \"speedup\": %.2f, \"queue_speedup\": %.2f, "
                  "\"results_identical\": %s}",
                  r.speedup, r.queue_speedup,
                  r.results_identical ? "true" : "false");
    json += buffer;
    json += i + 1 < rows.size() ? ",\n" : "\n";
  }
  json += "  ]\n}\n";

  std::ofstream file(path);
  if (!file) return false;
  file << json;
  return static_cast<bool>(file);
}

// Baseline JSONs are only comparable when they come from a committed
// tree: a "-dirty" git describe means nobody can reproduce the build.
void warn_if_dirty_version() {
  const std::string version = mstc::obs::build_version();
  if (version.find("-dirty") != std::string::npos) {
    std::fprintf(stderr,
                 "WARNING: build version '%s' is -dirty; the written JSON "
                 "is not reproducible as a baseline. Commit first, then "
                 "regenerate.\n",
                 version.c_str());
  }
}

int run_smoke() {
  std::printf(
      "bench_parallel --smoke: queue + sharded-kernel guard at tiny n\n");
  int failures = 0;
  std::uint64_t stream = 1;
  for (const RowSpec& spec : kSmokeRows) {
    const RowResult r = run_row(spec, stream++);
    print_row(r);
    if (!r.results_identical) {
      std::fprintf(
          stderr,
          "FAIL %s: heap / calendar / sharded arms are not byte-identical\n",
          spec.label);
      ++failures;
    }
    // Zero barriers means the run silently fell back to the serial
    // kernel — the guard would then compare serial against serial.
    if (r.sharded.kernel_barriers == 0) {
      std::fprintf(stderr, "FAIL %s: sharded kernel never engaged\n",
                   spec.label);
      ++failures;
    }
  }
  std::printf(failures == 0 ? "smoke OK\n" : "smoke FAILED\n");
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_parallel.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_parallel [--smoke] [--out <path>]\n");
      return 2;
    }
  }
  if (smoke) return run_smoke();

  const std::size_t threads = mstc::util::global_pool().thread_count();
  std::printf(
      "=== event kernel: heap vs calendar queue, serial vs sharded ===\n");
  std::printf(
      "RNG + ViewSync, fixed density, %.0f s per arm, %zu-thread pool "
      "(%u cores)\n\n",
      kDuration, threads, std::thread::hardware_concurrency());
  std::vector<RowResult> rows;
  std::uint64_t stream = 1;
  for (const RowSpec& spec : kRows) {
    rows.push_back(run_row(spec, stream++));
    print_row(rows.back());
  }
  if (!write_json(out_path, rows, threads)) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  warn_if_dirty_version();
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
