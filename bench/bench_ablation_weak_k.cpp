// Ablation A: weak consistency vs the number of stored Hello records k.
// Theorem 3 / Corollary 1: k = 2 suffices with instantaneous updating and
// k = 3 with periodical updating; k = 1 degenerates to the inconsistent
// baseline, while large k makes decisions so conservative that topology
// control stops reducing the range (degree grows toward the original 18).
#include "common.hpp"

int main() {
  using namespace mstc;
  const std::vector<double> ks = util::env_list("MSTC_WEAK_K", {1, 2, 3, 4});
  const std::vector<double> speeds =
      util::env_list("MSTC_SPEEDS", {1.0, 20.0, 40.0});
  const std::size_t repeats = runner::sweep_repeats();
  bench::banner("Ablation: weak-consistency history depth k",
                2 * ks.size() * speeds.size(), repeats);

  std::vector<runner::ScenarioConfig> grid;
  for (const char* protocol : {"MST", "RNG"}) {
    for (double k : ks) {
      for (double speed : speeds) {
        auto cfg = bench::base_config();
        cfg.protocol = protocol;
        cfg.mode = core::ConsistencyMode::kWeak;
        cfg.history_limit = static_cast<std::size_t>(k);
        cfg.buffer_width = 10.0;
        cfg.average_speed = speed;
        grid.push_back(cfg);
      }
    }
  }
  const auto results = runner::run_batch(grid, repeats);

  util::Table table({"protocol", "k", "speed_mps", "connectivity",
                     "avg_range_m", "logical_degree"});
  table.set_title("Weak consistency: stored Hellos k (10 m buffer)");
  for (std::size_t i = 0; i < grid.size(); ++i) {
    table.add_row({grid[i].protocol,
                   static_cast<std::int64_t>(grid[i].history_limit),
                   grid[i].average_speed,
                   bench::ci_cell(results[i].delivery()),
                   bench::ci_cell(results[i].range(), 1),
                   bench::ci_cell(results[i].logical_degree(), 2)});
  }
  bench::emit(table, "ablation_weak_k");
  return 0;
}
