// Fig. 7 (a-d): connectivity ratio with buffer zones of width
// {0, 1, 10, 100} m for each baseline protocol. Expected shape (paper):
// a buffer zone alone does not fix most protocols — SPT-2 tolerates
// moderate mobility (<= 40 m/s) with a 10 m buffer; RNG and SPT-4 need
// 100 m; MST fails even with 100 m.
#include "common.hpp"

int main() {
  using namespace mstc;
  const auto speeds = bench::speed_axis();
  const auto buffers = bench::buffer_axis();
  const std::size_t repeats = runner::sweep_repeats();
  bench::banner("Fig. 7: buffer zones only",
                bench::kPaperProtocols.size() * buffers.size() * speeds.size(),
                repeats);

  std::vector<runner::ScenarioConfig> grid;
  for (const auto& protocol : bench::kPaperProtocols) {
    for (double buffer : buffers) {
      for (double speed : speeds) {
        auto cfg = bench::base_config();
        cfg.protocol = protocol;
        cfg.buffer_width = buffer;
        cfg.average_speed = speed;
        grid.push_back(cfg);
      }
    }
  }
  const auto results = runner::run_batch(grid, repeats);

  util::Table table({"protocol", "buffer_m", "speed_mps", "connectivity"});
  table.set_title("Fig. 7 (one sub-plot per protocol, one series per width)");
  for (std::size_t i = 0; i < grid.size(); ++i) {
    table.add_row({grid[i].protocol, grid[i].buffer_width,
                   grid[i].average_speed,
                   bench::ci_cell(results[i].delivery())});
  }
  bench::emit(table, "fig7");
  return 0;
}
