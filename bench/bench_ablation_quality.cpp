// Ablation F: static topology quality across the whole protocol family —
// the design-space table behind the paper's choice of baselines. For each
// protocol: range/degree (Table 1's axes) plus distance stretch,
// interference (Burkhart et al. [3]), and biconnectivity odds (fault-
// tolerance line [1]/[15]/[18]). Pure graph analysis on static
// placements: no DES involved.
#include "common.hpp"
#include "graph/algorithms.hpp"
#include "topology/analysis.hpp"
#include "topology/builder.hpp"
#include "topology/protocol.hpp"
#include "util/prng.hpp"

int main() {
  using namespace mstc;
  const std::size_t trials = static_cast<std::size_t>(
      util::env_or("MSTC_QUALITY_TRIALS", std::int64_t{10}));
  const auto protocols = topology::protocol_names();
  bench::banner("Ablation: static topology quality", protocols.size(), trials);

  constexpr double kRange = 250.0;
  util::Xoshiro256 placement_rng(bench::base_config().seed);

  // Shared placements so protocols are compared on identical inputs.
  std::vector<std::vector<geom::Vec2>> placements;
  while (placements.size() < trials) {
    std::vector<geom::Vec2> positions;
    for (int i = 0; i < 100; ++i) {
      positions.push_back({placement_rng.uniform(0.0, 900.0),
                           placement_rng.uniform(0.0, 900.0)});
    }
    if (graph::is_connected(topology::original_graph(positions, kRange))) {
      placements.push_back(std::move(positions));
    }
  }

  util::Table table({"protocol", "range_m", "degree", "mean_stretch",
                     "max_stretch", "max_interference", "biconnected_pct"});
  table.set_title("Static quality per protocol (identical placements)");
  for (const auto& name : protocols) {
    const auto suite = topology::make_protocol(name);
    util::Summary range, degree, mean_stretch, max_stretch, interference_max;
    std::size_t biconnected = 0;
    for (const auto& positions : placements) {
      const auto topo = topology::build_topology(positions, kRange,
                                                 *suite.protocol, *suite.cost);
      const auto logical = topology::logical_graph(topo, positions);
      const auto original = topology::original_graph(positions, kRange);
      const auto stretch = topology::stretch_ratio(original, logical);
      const auto rf = topology::interference(positions, logical);
      range.add(topo.average_range());
      degree.add(topo.average_logical_degree());
      mean_stretch.add(stretch.mean_stretch);
      max_stretch.add(stretch.max_stretch);
      interference_max.add(static_cast<double>(rf.max_interference));
      biconnected += graph::is_k_connected(logical, 2);
    }
    table.add_row({name, bench::ci_cell(range, 1), bench::ci_cell(degree, 2),
                   bench::ci_cell(mean_stretch, 2),
                   bench::ci_cell(max_stretch, 2),
                   bench::ci_cell(interference_max, 1),
                   100.0 * static_cast<double>(biconnected) /
                       static_cast<double>(trials)});
  }
  bench::emit(table, "ablation_quality");
  return 0;
}
