// Ablation B: Hello interval. Section 3.2's claim: view inconsistency
// "cannot be solved by reducing the Hello interval" — shrinking Delta
// reduces staleness (helping the effective topology) but inconsistent
// logical decisions persist, so the baseline never approaches the
// view-synchronized curve.
#include "common.hpp"

int main() {
  using namespace mstc;
  const std::vector<double> intervals =
      util::env_list("MSTC_HELLO_INTERVALS", {0.25, 0.5, 1.0, 2.0});
  const std::size_t repeats = runner::sweep_repeats();
  bench::banner("Ablation: Hello interval Delta", 2 * intervals.size(),
                repeats);

  std::vector<runner::ScenarioConfig> grid;
  for (const bool synced : {false, true}) {
    for (double interval : intervals) {
      auto cfg = bench::base_config();
      cfg.protocol = "RNG";
      cfg.hello_interval = interval;
      cfg.average_speed = 20.0;
      cfg.buffer_width = 10.0;
      cfg.mode = synced ? core::ConsistencyMode::kViewSync
                        : core::ConsistencyMode::kLatest;
      grid.push_back(cfg);
    }
  }
  const auto results = runner::run_batch(grid, repeats);

  util::Table table(
      {"view_sync", "hello_interval_s", "connectivity", "strict"});
  table.set_title("Hello interval (RNG, 20 m/s, 10 m buffer)");
  for (std::size_t i = 0; i < grid.size(); ++i) {
    table.add_row(
        {std::string(grid[i].mode == core::ConsistencyMode::kViewSync ? "yes"
                                                                      : "no"),
         grid[i].hello_interval, bench::ci_cell(results[i].delivery()),
         bench::ci_cell(results[i].strict())});
  }
  bench::emit(table, "ablation_hello");
  return 0;
}
