// Fig. 8: (a) average transmission range and (b) average number of
// physical neighbors versus buffer-zone width, per protocol. Expected
// shape (paper, at moderate mobility): with a 100 m buffer, RNG and SPT-4
// ranges exceed 160 m while SPT-2 stays near 120 m with a 10 m buffer;
// physical-neighbor counts that tolerate moderate mobility are ~3.8-5.4.
#include "common.hpp"

int main() {
  using namespace mstc;
  const auto buffers =
      util::env_list("MSTC_BUFFERS", {0.0, 1.0, 10.0, 30.0, 100.0});
  const std::size_t repeats = runner::sweep_repeats();
  bench::banner("Fig. 8: range and physical neighbors vs buffer width",
                bench::kPaperProtocols.size() * buffers.size(), repeats);

  std::vector<runner::ScenarioConfig> grid;
  for (const auto& protocol : bench::kPaperProtocols) {
    for (double buffer : buffers) {
      auto cfg = bench::base_config();
      cfg.protocol = protocol;
      cfg.buffer_width = buffer;
      cfg.average_speed = 40.0;  // the paper's moderate-mobility anchor
      grid.push_back(cfg);
    }
  }
  const auto results = runner::run_batch(grid, repeats);

  util::Table table({"protocol", "buffer_m", "avg_range_m",
                     "physical_neighbors", "logical_degree"});
  table.set_title("Fig. 8a/8b (at 40 m/s average speed)");
  for (std::size_t i = 0; i < grid.size(); ++i) {
    table.add_row({grid[i].protocol, grid[i].buffer_width,
                   bench::ci_cell(results[i].range(), 1),
                   bench::ci_cell(results[i].physical_degree(), 2),
                   bench::ci_cell(results[i].logical_degree(), 2)});
  }
  bench::emit(table, "fig8");
  return 0;
}
