// Micro-benchmarks of the per-node kernels (google-benchmark): protocol
// selection over a realistic 1-hop view, view assembly, effective-topology
// snapshots, and trace position queries. These bound the per-event cost of
// the simulator and of a real implementation's Hello handler.
#include <benchmark/benchmark.h>

#include "core/consistency.hpp"
#include "core/effective.hpp"
#include "metrics/snapshot.hpp"
#include "mobility/models.hpp"
#include "topology/builder.hpp"
#include "topology/protocol.hpp"
#include "util/prng.hpp"

namespace {

using namespace mstc;

constexpr double kRange = 250.0;

/// A dense random neighborhood around the origin (paper density: ~18
/// 1-hop neighbors).
std::vector<geom::Vec2> neighborhood(std::size_t total, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<geom::Vec2> positions{{0.0, 0.0}};
  while (positions.size() < total) {
    const geom::Vec2 p{rng.uniform(-kRange, kRange),
                       rng.uniform(-kRange, kRange)};
    if (p.norm() <= kRange) positions.push_back(p);
  }
  return positions;
}

void BM_ProtocolSelect(benchmark::State& state, const char* name) {
  const auto suite = topology::make_protocol(name);
  const auto positions =
      neighborhood(static_cast<std::size_t>(state.range(0)), 99);
  std::vector<topology::NodeId> ids(positions.size());
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = i;
  const auto view =
      topology::make_consistent_view(positions, ids, 0, kRange, *suite.cost);
  for (auto _ : state) {
    benchmark::DoNotOptimize(suite.protocol->select(view));
  }
}
BENCHMARK_CAPTURE(BM_ProtocolSelect, rng, "RNG")->Arg(19)->Arg(40);
BENCHMARK_CAPTURE(BM_ProtocolSelect, mst, "MST")->Arg(19)->Arg(40);
BENCHMARK_CAPTURE(BM_ProtocolSelect, spt2, "SPT-2")->Arg(19)->Arg(40);
BENCHMARK_CAPTURE(BM_ProtocolSelect, yao, "Yao")->Arg(19)->Arg(40);
BENCHMARK_CAPTURE(BM_ProtocolSelect, cbtc, "CBTC")->Arg(19)->Arg(40);

void BM_ConsistentViewAssembly(benchmark::State& state) {
  const auto positions =
      neighborhood(static_cast<std::size_t>(state.range(0)), 7);
  std::vector<topology::NodeId> ids(positions.size());
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = i;
  const topology::DistanceCost cost;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        topology::make_consistent_view(positions, ids, 0, kRange, cost));
  }
}
BENCHMARK(BM_ConsistentViewAssembly)->Arg(19)->Arg(40);

void BM_WeakViewAssembly(benchmark::State& state) {
  // Weak view with k = 3 records per sender.
  const auto positions =
      neighborhood(static_cast<std::size_t>(state.range(0)), 11);
  core::LocalViewStore store(0, 3, 1e9);
  util::Xoshiro256 rng(13);
  for (std::size_t i = 0; i < positions.size(); ++i) {
    for (std::uint64_t version = 1; version <= 3; ++version) {
      const geom::Vec2 drift{rng.uniform(-20.0, 20.0),
                             rng.uniform(-20.0, 20.0)};
      store.record({i, {positions[i] + drift, version,
                        static_cast<double>(version)}});
    }
  }
  const topology::DistanceCost cost;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::build_weak_view(store, kRange, cost));
  }
}
BENCHMARK(BM_WeakViewAssembly)->Arg(19)->Arg(40);

void BM_EffectiveSnapshot(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Xoshiro256 rng(3);
  std::vector<geom::Vec2> positions;
  positions.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    positions.push_back({rng.uniform(0.0, 900.0), rng.uniform(0.0, 900.0)});
  }
  const auto suite = topology::make_protocol("RNG");
  const topology::NoneProtocol keep_all;
  core::ControllerConfig config;
  std::vector<core::NodeController> nodes;
  nodes.reserve(n);
  for (std::size_t u = 0; u < n; ++u) {
    nodes.emplace_back(u, *suite.protocol, *suite.cost, config);
  }
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = 0; v < n; ++v) {
      if (u != v && geom::distance(positions[u], positions[v]) <= kRange) {
        nodes[u].on_hello_receive({v, {positions[v], 1, 0.0}}, 0.0);
      }
    }
    nodes[u].on_hello_send(0.1, positions[u], 1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(metrics::measure_snapshot(nodes, positions));
  }
}
BENCHMARK(BM_EffectiveSnapshot)->Arg(100)->Arg(200);

void BM_WholeTopologyBuild(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Xoshiro256 rng(5);
  std::vector<geom::Vec2> positions;
  positions.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    positions.push_back({rng.uniform(0.0, 900.0), rng.uniform(0.0, 900.0)});
  }
  const auto suite = topology::make_protocol("MST");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        topology::build_topology(positions, kRange, *suite.protocol,
                                 *suite.cost));
  }
}
BENCHMARK(BM_WholeTopologyBuild)->Arg(100)->Arg(200);

void BM_TracePositionQuery(benchmark::State& state) {
  const mobility::Area area{900.0, 900.0};
  const mobility::RandomWaypoint model(area, 10.0, 30.0);
  util::Xoshiro256 rng(17);
  const mobility::Trace trace = model.make_trace(rng, 1000.0);
  double t = 0.0;
  for (auto _ : state) {
    t += 0.37;
    if (t > 1000.0) t = 0.0;
    benchmark::DoNotOptimize(trace.position(t));
  }
}
BENCHMARK(BM_TracePositionQuery);

}  // namespace

BENCHMARK_MAIN();
