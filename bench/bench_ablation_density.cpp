// Ablation D: node density. The paper assumes a dense network (average
// degree 18 under the normal range); this sweep shows how the baseline and
// the VS + buffer combination behave as the deployment thins out or
// densifies.
#include "common.hpp"

int main() {
  using namespace mstc;
  const std::vector<double> counts =
      util::env_list("MSTC_DENSITY", {50, 100, 150, 200});
  const std::size_t repeats = runner::sweep_repeats();
  bench::banner("Ablation: node density", 2 * counts.size(), repeats);

  std::vector<runner::ScenarioConfig> grid;
  for (const bool enhanced : {false, true}) {
    for (double count : counts) {
      auto cfg = bench::base_config();
      cfg.protocol = "RNG";
      cfg.node_count = static_cast<std::size_t>(count);
      cfg.average_speed = 20.0;
      if (enhanced) {
        cfg.mode = core::ConsistencyMode::kViewSync;
        cfg.buffer_width = 10.0;
      }
      grid.push_back(cfg);
    }
  }
  const auto results = runner::run_batch(grid, repeats);

  util::Table table({"config", "nodes", "connectivity", "avg_range_m",
                     "logical_degree"});
  table.set_title("Node density (RNG, 20 m/s)");
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const bool enhanced = grid[i].mode == core::ConsistencyMode::kViewSync;
    table.add_row({std::string(enhanced ? "VS+10m" : "baseline"),
                   static_cast<std::int64_t>(grid[i].node_count),
                   bench::ci_cell(results[i].delivery()),
                   bench::ci_cell(results[i].range(), 1),
                   bench::ci_cell(results[i].logical_degree(), 2)});
  }
  bench::emit(table, "ablation_density");
  return 0;
}
