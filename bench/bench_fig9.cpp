// Fig. 9 (a-d): connectivity with and without view synchronization (VS),
// per protocol and buffer width. Expected shape (paper): VS gives every
// protocol a solid improvement — MST tolerates moderate mobility with a
// 100 m buffer, RNG with 10 m, SPT-4 with 10 m up to 20 m/s, SPT-2 with
// just 1 m.
#include "common.hpp"

int main() {
  using namespace mstc;
  const auto speeds = bench::speed_axis();
  const auto buffers = util::env_list("MSTC_BUFFERS", {1.0, 10.0, 100.0});
  const std::size_t repeats = runner::sweep_repeats();
  bench::banner(
      "Fig. 9: view synchronization",
      bench::kPaperProtocols.size() * buffers.size() * speeds.size() * 2,
      repeats);

  std::vector<runner::ScenarioConfig> grid;
  for (const auto& protocol : bench::kPaperProtocols) {
    for (double buffer : buffers) {
      for (const bool synced : {false, true}) {
        for (double speed : speeds) {
          auto cfg = bench::base_config();
          cfg.protocol = protocol;
          cfg.buffer_width = buffer;
          cfg.mode = synced ? core::ConsistencyMode::kViewSync
                            : core::ConsistencyMode::kLatest;
          cfg.average_speed = speed;
          grid.push_back(cfg);
        }
      }
    }
  }
  const auto results = runner::run_batch(grid, repeats);

  util::Table table({"protocol", "buffer_m", "view_sync", "speed_mps",
                     "connectivity"});
  table.set_title("Fig. 9 (VS = on-the-fly view synchronization)");
  for (std::size_t i = 0; i < grid.size(); ++i) {
    table.add_row(
        {grid[i].protocol, grid[i].buffer_width,
         std::string(grid[i].mode == core::ConsistencyMode::kViewSync ? "yes"
                                                                      : "no"),
         grid[i].average_speed, bench::ci_cell(results[i].delivery())});
  }
  bench::emit(table, "fig9");
  return 0;
}
