// Fig. 10 (a-d): connectivity before and after enabling the physical-
// neighbor (PN) mechanism. Expected shape (paper): with PN, SPT-2
// tolerates moderate mobility with a 1 m buffer, RNG and SPT-4 with 10 m,
// MST with 100 m (93 % already at 30 m); with 100 m buffers every protocol
// reaches ~100 % even at 160 m/s.
#include "common.hpp"

int main() {
  using namespace mstc;
  const auto speeds = bench::speed_axis();
  const auto buffers = util::env_list("MSTC_BUFFERS", {1.0, 10.0, 100.0});
  const std::size_t repeats = runner::sweep_repeats();
  bench::banner(
      "Fig. 10: physical neighbors",
      bench::kPaperProtocols.size() * buffers.size() * speeds.size() * 2,
      repeats);

  std::vector<runner::ScenarioConfig> grid;
  for (const auto& protocol : bench::kPaperProtocols) {
    for (double buffer : buffers) {
      for (const bool pn : {false, true}) {
        for (double speed : speeds) {
          auto cfg = bench::base_config();
          cfg.protocol = protocol;
          cfg.buffer_width = buffer;
          cfg.physical_neighbors = pn;
          cfg.average_speed = speed;
          grid.push_back(cfg);
        }
      }
    }
  }
  const auto results = runner::run_batch(grid, repeats);

  util::Table table({"protocol", "buffer_m", "physical_neighbors", "speed_mps",
                     "connectivity", "avg_node_degree"});
  table.set_title("Fig. 10 (PN = accept packets from non-logical neighbors)");
  for (std::size_t i = 0; i < grid.size(); ++i) {
    table.add_row({grid[i].protocol, grid[i].buffer_width,
                   std::string(grid[i].physical_neighbors ? "yes" : "no"),
                   grid[i].average_speed,
                   bench::ci_cell(results[i].delivery()),
                   bench::ci_cell(results[i].physical_degree(), 2)});
  }
  bench::emit(table, "fig10");
  return 0;
}
