// Fig. 6: connectivity ratio of the baseline protocols vs average moving
// speed. Expected shape (paper): all baselines are vulnerable to mobility;
// SPT-2 is the most resilient (only tolerates very slow mobility), then
// RNG (~50 % at 1 m/s), SPT-4 (~40 %), and MST worst (~10 % even at 1 m/s).
#include "common.hpp"

int main() {
  using namespace mstc;
  const auto speeds = bench::speed_axis();
  const std::size_t repeats = runner::sweep_repeats();
  bench::banner("Fig. 6: baseline connectivity ratio vs mobility",
                bench::kPaperProtocols.size() * speeds.size(), repeats);

  std::vector<runner::ScenarioConfig> grid;
  for (const auto& protocol : bench::kPaperProtocols) {
    for (double speed : speeds) {
      auto cfg = bench::base_config();
      cfg.protocol = protocol;
      cfg.average_speed = speed;
      grid.push_back(cfg);
    }
  }
  const auto results = bench::observed_run_batch(grid, repeats, "fig6");

  util::Table table({"protocol", "speed_mps", "connectivity",
                     "strict_connectivity"});
  table.set_title("Fig. 6 (weak connectivity = flood delivery ratio)");
  for (std::size_t i = 0; i < grid.size(); ++i) {
    table.add_row({grid[i].protocol, grid[i].average_speed,
                   bench::ci_cell(results[i].delivery()),
                   bench::ci_cell(results[i].strict())});
  }
  bench::emit(table, "fig6");
  return 0;
}
