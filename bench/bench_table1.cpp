// Table 1: average transmission range and node degree of the baseline
// protocols (paper: MST 65.1 m / 2.09, RNG 80.6 m / 2.41, SPT-4 82.4 m /
// 2.45, SPT-2 100 m / 3.46 — under low mobility, no enhancements).
#include "common.hpp"

int main() {
  using namespace mstc;
  const std::size_t repeats = runner::sweep_repeats();
  bench::banner("Table 1: baseline transmission range and node degree",
                bench::kPaperProtocols.size(), repeats);

  std::vector<runner::ScenarioConfig> grid;
  for (const auto& protocol : bench::kPaperProtocols) {
    auto cfg = bench::base_config();
    cfg.protocol = protocol;
    cfg.average_speed = 1.0;  // Table 1 is a property of the topology, not
                              // of mobility; use the lowest paper speed.
    grid.push_back(cfg);
  }
  const auto results = runner::run_batch(grid, repeats);

  // Paper's reported values: exact for MST and SPT-2; the text places RNG
  // and SPT-4 "between MST and SPT-2".
  const std::vector<std::pair<std::string, std::string>> paper = {
      {"65.1", "2.09"},
      {"between (≈80)", "between (≈2.4)"},
      {"between (≈80)", "between (≈2.4)"},
      {"100", "3.46"}};

  util::Table table({"protocol", "range_m", "degree", "paper_range_m",
                     "paper_degree"});
  table.set_title("Table 1 (means ±95% CI over repeats)");
  for (std::size_t i = 0; i < grid.size(); ++i) {
    table.add_row({grid[i].protocol, bench::ci_cell(results[i].range(), 1),
                   bench::ci_cell(results[i].logical_degree(), 2),
                   paper[i].first, paper[i].second});
  }
  bench::emit(table, "table1");
  return 0;
}
