// Ablation E (the paper's future-work experiment): mobility-TOLERANT vs
// mobility-ASSISTED management on a sparse network.
//
// Section 6 proposes combining the two regimes: when no snapshot of the
// effective topology is connected, instantaneous delivery (flooding over a
// topology-controlled network) fails, but store-carry-forward delivery
// still succeeds within a bounded delay. This bench quantifies that
// crossover: as density drops, the tolerant stack collapses while the
// assisted one keeps delivering — at the price of delay and copies.
#include "common.hpp"
#include "routing/epidemic.hpp"
#include "util/prng.hpp"

int main() {
  using namespace mstc;
  const std::vector<double> ranges =
      util::env_list("MSTC_HYBRID_RANGES", {100.0, 150.0, 200.0, 250.0});
  const std::size_t repeats = runner::sweep_repeats(3);
  bench::banner("Ablation: tolerant vs assisted management", ranges.size(),
                repeats);

  util::Table table({"normal_range_m", "substrate_connectivity",
                     "tolerant_delivery", "assisted_delivery",
                     "assisted_delay_s", "assisted_copies"});
  table.set_title(
      "Sparse network (50 nodes, 20 m/s): flooding over RNG+VS+buffer vs "
      "epidemic store-carry-forward");

  for (const double range : ranges) {
    // Mobility-tolerant: the paper's stack (RNG + VS + 10 m buffer),
    // instantaneous flooding delivery.
    metrics::RunAggregator tolerant;
    {
      auto cfg = bench::base_config();
      cfg.protocol = "RNG";
      cfg.mode = core::ConsistencyMode::kViewSync;
      cfg.buffer_width = 10.0;
      cfg.node_count = 50;
      cfg.normal_range = range;
      cfg.average_speed = 20.0;
      tolerant = runner::run_repeated(cfg, repeats);
    }
    // Mobility-assisted: epidemic routing over the same raw range.
    util::Summary assisted_delivery, assisted_delay, assisted_copies,
        substrate;
    for (std::size_t r = 0; r < repeats; ++r) {
      routing::EpidemicConfig cfg;
      cfg.node_count = 50;
      cfg.range = range;
      cfg.average_speed = 20.0;
      cfg.duration = util::env_or("MSTC_HYBRID_TIME", 90.0);
      cfg.message_count = 40;
      cfg.seed = util::derive_seed(bench::base_config().seed, r + 1);
      const auto result = routing::run_epidemic(cfg);
      assisted_delivery.add(result.delivery_ratio);
      assisted_delay.add(result.delay.count() > 0 ? result.delay.mean() : 0.0);
      assisted_copies.add(result.mean_copies_per_message);
      substrate.add(result.snapshot_connectivity);
    }
    table.add_row({range, bench::ci_cell(substrate),
                   bench::ci_cell(tolerant.delivery()),
                   bench::ci_cell(assisted_delivery),
                   bench::ci_cell(assisted_delay, 1),
                   bench::ci_cell(assisted_copies, 1)});
  }
  bench::emit(table, "ablation_hybrid");
  return 0;
}
