// Snapshot fast-path benchmark: grid-backed measurement vs the brute-force
// pair scan, plus the trace cache's sweep-setup amortization.
//
// Part A sweeps n x snapshot_rate and times the kSnapshot profiler
// category under both measurement paths (MSTC_SNAPSHOT_BRUTE semantics via
// snapshot_brute_force). Each row byte-compares the two runs' RunStats
// (results_identical) — the fast path's contract is *identity*, not
// approximation — and reports snapshot_links_examined for both, the exact
// pair-check count the grid prunes.
//
// Part B runs one 8-point single-seed sweep (protocols varying, mobility
// inputs fixed — the shape of every paper figure) twice: traces regenerated
// per replication vs shared through mobility::TraceCache. It reports the
// summed kSetup / kTraceGen wall time of both, their ratio
// (setup_amortization), the hit/miss counters, and a byte compare.
//
//   ./build/bench/bench_snapshot                # full run -> BENCH_snapshot.json
//   ./build/bench/bench_snapshot --out <path>   # alternate output path
//   ./build/bench/bench_snapshot --smoke        # CI guard: tiny n, asserts
//                                               #   identity + grid pruning +
//                                               #   cache hits; no JSON
#include <bit>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "metrics/aggregate.hpp"
#include "mobility/trace_cache.hpp"
#include "obs/manifest.hpp"
#include "obs/probe.hpp"
#include "runner/config.hpp"
#include "runner/scenario.hpp"
#include "runner/sweep.hpp"
#include "util/prng.hpp"
#include "util/thread_pool.hpp"

namespace {

using mstc::metrics::RunStats;
using mstc::runner::ScenarioConfig;

constexpr double kRange = 250.0;        // the paper's normal range (m)
constexpr double kDensitySide = 900.0;  // 100 nodes per kDensitySide^2
constexpr double kDensityNodes = 100.0;
constexpr std::uint64_t kSeed = 20040426;

std::vector<std::uint64_t> bit_snapshot(const RunStats& stats) {
  return {std::bit_cast<std::uint64_t>(stats.delivery_ratio),
          std::bit_cast<std::uint64_t>(stats.strict_connectivity),
          std::bit_cast<std::uint64_t>(stats.mean_range),
          std::bit_cast<std::uint64_t>(stats.mean_logical_degree),
          std::bit_cast<std::uint64_t>(stats.mean_physical_degree),
          std::bit_cast<std::uint64_t>(stats.control_tx_rate),
          std::bit_cast<std::uint64_t>(stats.mac_collision_fraction)};
}

// ---------------------------------------------------------------------------
// Part A: snapshot-phase wall time, brute pair scan vs grid.

struct RowSpec {
  const char* label;
  std::size_t nodes;
  double snapshot_rate;
};

constexpr RowSpec kRows[] = {
    {"n500_rate4", 500, 4.0},    {"n1000_rate1", 1000, 1.0},
    {"n1000_rate4", 1000, 4.0},  {"n1000_rate8", 1000, 8.0},
    {"n2500_rate4", 2500, 4.0},
};

ScenarioConfig make_snapshot_config(std::size_t nodes, double snapshot_rate,
                                    std::uint64_t seed_stream) {
  ScenarioConfig cfg;
  cfg.node_count = nodes;
  // Fixed density (the bench_kernel/bench_scale convention): area grows
  // with n so the neighborhood stays the paper's ~24 neighbors.
  const double side =
      kDensitySide * std::sqrt(static_cast<double>(nodes) / kDensityNodes);
  cfg.area = {side, side};
  cfg.normal_range = kRange;
  cfg.protocol = "RNG";
  // Measurement-heavy, event-loop-light: no floods, slow Hellos — the
  // kSnapshot category is what this bench times, the rest is carrier.
  cfg.flood_rate = 0.0;
  cfg.hello_interval = 2.0;
  cfg.snapshot_rate = snapshot_rate;
  cfg.duration = 3.0;
  cfg.warmup = 0.5;
  cfg.seed = mstc::util::derive_seed(kSeed, seed_stream);
  return cfg;
}

struct ModeResult {
  double snapshot_wall_s = 0.0;
  std::uint64_t snapshots = 0;
  std::uint64_t links_examined = 0;
  std::vector<std::uint64_t> bits;
};

ModeResult run_snapshot_mode(ScenarioConfig cfg, bool brute) {
  cfg.snapshot_brute_force = brute;
  mstc::obs::RunObservation observation;
  observation.profile_on = true;
  const RunStats stats = mstc::runner::run_scenario(cfg, &observation);
  ModeResult mode;
  mode.snapshot_wall_s =
      static_cast<double>(
          observation.profiler.nanos(mstc::obs::Category::kSnapshot)) *
      1e-9;
  mode.snapshots =
      observation.counters.total(mstc::obs::Counter::kSnapshots);
  mode.links_examined = observation.counters.total(
      mstc::obs::Counter::kSnapshotLinksExamined);
  mode.bits = bit_snapshot(stats);
  return mode;
}

struct RowResult {
  RowSpec spec;
  ModeResult brute;
  ModeResult grid;
  double speedup = 0.0;
  bool results_identical = false;
};

RowResult run_row(const RowSpec& spec, std::uint64_t seed_stream,
                  std::size_t grid_min_nodes) {
  ScenarioConfig cfg =
      make_snapshot_config(spec.nodes, spec.snapshot_rate, seed_stream);
  cfg.medium_grid_min_nodes = grid_min_nodes;
  RowResult row;
  row.spec = spec;
  row.brute = run_snapshot_mode(cfg, /*brute=*/true);
  row.grid = run_snapshot_mode(cfg, /*brute=*/false);
  row.speedup = row.grid.snapshot_wall_s > 0.0
                    ? row.brute.snapshot_wall_s / row.grid.snapshot_wall_s
                    : 0.0;
  row.results_identical = row.brute.bits == row.grid.bits;
  return row;
}

void print_row(const RowResult& r) {
  std::printf(
      "%-14s brute %8.2f ms (%9" PRIu64 " checks)  grid %8.2f ms (%9" PRIu64
      " checks)  %5.2fx  %s\n",
      r.spec.label, r.brute.snapshot_wall_s * 1e3, r.brute.links_examined,
      r.grid.snapshot_wall_s * 1e3, r.grid.links_examined, r.speedup,
      r.results_identical ? "identical" : "DIVERGED");
}

// ---------------------------------------------------------------------------
// Part B: sweep-setup amortization through the trace cache.

/// The shape of a paper figure: one protocol axis, everything the trace
/// key reads held fixed. 8 points, single seed, repeats = 1.
std::vector<ScenarioConfig> amortization_sweep() {
  // GaussMarkov emits one leg per second of trace, so trace generation
  // dominates setup — the regime the cache targets (waypoint fleets have
  // ~duration/pause legs and amortize less).
  ScenarioConfig base;
  base.node_count = 400;
  base.area = {1800.0, 1800.0};
  base.normal_range = kRange;
  base.mobility_model = "gauss";
  base.average_speed = 10.0;
  base.duration = 60.0;
  base.warmup = 2.0;
  // Keep the event loop thin: setup is the measurement here.
  base.hello_interval = 5.0;
  base.flood_rate = 0.0;
  base.snapshot_rate = 0.1;
  base.seed = mstc::util::derive_seed(kSeed, 0xB);
  std::vector<ScenarioConfig> sweep;
  for (const char* protocol : {"RNG", "MST", "SPT-2", "Gabriel", "Yao",
                               "KNeigh", "CBTC", "None"}) {
    sweep.push_back(base);
    sweep.back().protocol = protocol;
  }
  return sweep;
}

struct SweepResult {
  double setup_wall_s = 0.0;
  double trace_gen_wall_s = 0.0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::vector<std::uint64_t> bits;
};

SweepResult run_sweep(std::vector<ScenarioConfig> configs, bool cache_on,
                      mstc::util::ThreadPool& pool) {
  for (auto& cfg : configs) cfg.trace_cache = cache_on;
  // Fresh cache per measurement: hits/misses and generation time must
  // reflect this sweep alone, not a previous part's leftovers.
  mstc::mobility::TraceCache::global().clear();
  std::vector<mstc::obs::RunObservation> observations;
  mstc::runner::SweepHooks hooks;
  hooks.observations = &observations;
  hooks.profile = true;
  const std::vector<RunStats> stats =
      mstc::runner::run_batch_raw(configs, 1, pool, hooks);
  SweepResult result;
  for (const auto& observation : observations) {
    result.setup_wall_s +=
        static_cast<double>(
            observation.profiler.nanos(mstc::obs::Category::kSetup)) *
        1e-9;
    result.trace_gen_wall_s +=
        static_cast<double>(
            observation.profiler.nanos(mstc::obs::Category::kTraceGen)) *
        1e-9;
    result.cache_hits +=
        observation.counters.total(mstc::obs::Counter::kTraceCacheHits);
    result.cache_misses +=
        observation.counters.total(mstc::obs::Counter::kTraceCacheMisses);
  }
  for (const auto& run : stats) {
    const auto bits = bit_snapshot(run);
    result.bits.insert(result.bits.end(), bits.begin(), bits.end());
  }
  return result;
}

struct AmortizationResult {
  std::size_t points = 0;
  SweepResult regenerate;  // trace_cache = false: per-replication traces
  SweepResult shared;      // trace_cache = true: one set, shared
  double amortization = 0.0;
  bool results_identical = false;
};

AmortizationResult run_amortization(std::vector<ScenarioConfig> sweep) {
  // Serial pool: setup phases must not overlap, or summed wall time would
  // mix contention into the comparison.
  mstc::util::ThreadPool pool(1);
  AmortizationResult result;
  result.points = sweep.size();
  result.regenerate = run_sweep(sweep, /*cache_on=*/false, pool);
  result.shared = run_sweep(sweep, /*cache_on=*/true, pool);
  result.amortization = result.shared.setup_wall_s > 0.0
                            ? result.regenerate.setup_wall_s /
                                  result.shared.setup_wall_s
                            : 0.0;
  result.results_identical = result.regenerate.bits == result.shared.bits;
  return result;
}

void print_amortization(const AmortizationResult& r) {
  std::printf(
      "\n%zu-point sweep setup: regenerate %7.2f ms (trace gen %7.2f ms)  "
      "shared %7.2f ms (trace gen %7.2f ms, %" PRIu64 " hits)  %5.2fx  %s\n",
      r.points, r.regenerate.setup_wall_s * 1e3,
      r.regenerate.trace_gen_wall_s * 1e3, r.shared.setup_wall_s * 1e3,
      r.shared.trace_gen_wall_s * 1e3, r.shared.cache_hits, r.amortization,
      r.results_identical ? "identical" : "DIVERGED");
}

// ---------------------------------------------------------------------------

void append_mode_json(std::string& json, const char* name,
                      const ModeResult& mode) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "      \"%s\": {\"snapshot_wall_s\": %.6f, \"snapshots\": "
                "%" PRIu64 ", \"links_examined\": %" PRIu64 "}",
                name, mode.snapshot_wall_s, mode.snapshots,
                mode.links_examined);
  json += buffer;
}

bool write_json(const std::string& path, const std::vector<RowResult>& rows,
                const AmortizationResult& amortization) {
  std::string json = "{\n";
  json += "  \"bench\": \"bench_snapshot\",\n";
  json += "  \"version\": \"" +
          mstc::obs::json_escape(mstc::obs::build_version()) + "\",\n";
  char buffer[512];
  std::snprintf(
      buffer, sizeof(buffer),
      "  \"config\": {\"range_m\": %.1f, \"density\": \"%.0f nodes per "
      "%.0fx%.0f m^2\", \"protocol\": \"RNG\", \"duration_s\": 3.0, "
      "\"seed\": %" PRIu64 "},\n",
      kRange, kDensityNodes, kDensitySide, kDensitySide, kSeed);
  json += buffer;
  json += "  \"snapshot_rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const RowResult& r = rows[i];
    std::snprintf(buffer, sizeof(buffer),
                  "    {\"label\": \"%s\", \"nodes\": %zu, "
                  "\"snapshot_rate\": %.1f,\n",
                  r.spec.label, r.spec.nodes, r.spec.snapshot_rate);
    json += buffer;
    append_mode_json(json, "brute", r.brute);
    json += ",\n";
    append_mode_json(json, "grid", r.grid);
    json += ",\n";
    std::snprintf(buffer, sizeof(buffer),
                  "      \"speedup\": %.2f, \"results_identical\": %s}",
                  r.speedup, r.results_identical ? "true" : "false");
    json += buffer;
    json += i + 1 < rows.size() ? ",\n" : "\n";
  }
  json += "  ],\n";
  const AmortizationResult& a = amortization;
  std::snprintf(
      buffer, sizeof(buffer),
      "  \"trace_cache_sweep\": {\"points\": %zu, \"nodes\": 400, "
      "\"mobility\": \"gauss\", \"trace_duration_s\": 60.0,\n"
      "    \"regenerate\": {\"setup_wall_s\": %.6f, \"trace_gen_wall_s\": "
      "%.6f, \"cache_misses\": %" PRIu64 "},\n",
      a.points, a.regenerate.setup_wall_s, a.regenerate.trace_gen_wall_s,
      a.regenerate.cache_misses);
  json += buffer;
  std::snprintf(
      buffer, sizeof(buffer),
      "    \"shared\": {\"setup_wall_s\": %.6f, \"trace_gen_wall_s\": %.6f, "
      "\"cache_hits\": %" PRIu64 ", \"cache_misses\": %" PRIu64 "},\n"
      "    \"setup_amortization\": %.2f, \"results_identical\": %s}\n",
      a.shared.setup_wall_s, a.shared.trace_gen_wall_s, a.shared.cache_hits,
      a.shared.cache_misses, a.amortization,
      a.results_identical ? "true" : "false");
  json += buffer;
  json += "}\n";

  std::ofstream file(path);
  if (!file) return false;
  file << json;
  return static_cast<bool>(file);
}

int run_smoke() {
  std::printf("bench_snapshot --smoke: identity guards at tiny n\n");
  int failures = 0;

  // Snapshot path: n below the crossover, so force the grid on via
  // grid_min_nodes = 0 — the guard must compare genuinely different code.
  const RowSpec spec{"smoke_n160_rate4", 160, 4.0};
  const RowResult row = run_row(spec, 1, /*grid_min_nodes=*/0);
  print_row(row);
  if (!row.results_identical) {
    std::fprintf(stderr, "FAIL %s: grid diverged from brute force\n",
                 spec.label);
    ++failures;
  }
  if (row.grid.links_examined == 0 ||
      row.grid.links_examined > row.brute.links_examined) {
    std::fprintf(stderr,
                 "FAIL %s: grid examined %" PRIu64 " links vs brute %" PRIu64
                 " — the index is not pruning\n",
                 spec.label, row.grid.links_examined,
                 row.brute.links_examined);
    ++failures;
  }

  // Trace cache: a 3-point mini sweep must share one generation and stay
  // byte-identical to regeneration.
  auto sweep = amortization_sweep();
  sweep.resize(3);
  for (auto& cfg : sweep) {
    cfg.node_count = 100;
    cfg.duration = 8.0;
  }
  const AmortizationResult amortization = run_amortization(sweep);
  print_amortization(amortization);
  if (!amortization.results_identical) {
    std::fprintf(stderr, "FAIL trace cache: shared sweep diverged\n");
    ++failures;
  }
  if (amortization.shared.cache_hits != sweep.size() - 1 ||
      amortization.shared.cache_misses != 1) {
    std::fprintf(stderr,
                 "FAIL trace cache: expected %zu hits / 1 miss, got "
                 "%" PRIu64 " / %" PRIu64 "\n",
                 sweep.size() - 1, amortization.shared.cache_hits,
                 amortization.shared.cache_misses);
    ++failures;
  }
  if (amortization.regenerate.cache_hits != 0) {
    std::fprintf(stderr, "FAIL trace cache: escape hatch still hit\n");
    ++failures;
  }

  std::printf(failures == 0 ? "smoke OK\n" : "smoke FAILED\n");
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_snapshot.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_snapshot [--smoke] [--out <path>]\n");
      return 2;
    }
  }
  if (smoke) return run_smoke();

  std::printf("=== snapshot measurement: brute pair scan vs grid ===\n");
  std::printf("RNG, fixed density, measurement-heavy scenarios\n\n");
  std::vector<RowResult> rows;
  std::uint64_t stream = 1;
  for (const RowSpec& spec : kRows) {
    rows.push_back(run_row(spec, stream++,
                           /*grid_min_nodes=*/150));
    print_row(rows.back());
  }

  std::printf("\n=== trace cache: sweep-setup amortization ===\n");
  const AmortizationResult amortization =
      run_amortization(amortization_sweep());
  print_amortization(amortization);

  if (!write_json(out_path, rows, amortization)) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
