// Ablation G: broadcast cost — blind flooding vs CDS forward nodes ([34]),
// and what staleness does to a CDS ([35]).
//
// On each mobility snapshot we build the Wu-Li CDS twice: from the CURRENT
// positions (what a magically synchronized network would use) and from
// positions STALE by one Hello interval. Fresh CDSes cover everything with
// ~1/3 of the transmissions; stale CDSes lose coverage as speed grows —
// the same mobility sensitivity this library fixes for topology control.
#include "broadcast/cds.hpp"
#include "common.hpp"
#include "mobility/models.hpp"
#include "topology/builder.hpp"

int main() {
  using namespace mstc;
  const auto speeds = bench::speed_axis();
  const std::size_t repeats = runner::sweep_repeats(3);
  bench::banner("Ablation: flooding vs CDS broadcast", speeds.size(), repeats);

  constexpr double kRange = 250.0;
  constexpr std::size_t kNodes = 100;
  constexpr double kStaleness = 1.0;  // one Hello interval

  util::Table table({"speed_mps", "flood_tx", "cds_tx", "cds_coverage",
                     "stale_cds_tx", "stale_cds_coverage"});
  table.set_title("Broadcast from random sources (100-node snapshots)");

  for (const double speed : speeds) {
    util::Summary flood_tx, cds_tx, cds_cov, stale_tx, stale_cov;
    for (std::size_t repeat = 0; repeat < repeats; ++repeat) {
      const auto model = mobility::make_paper_waypoint({900.0, 900.0}, speed);
      const auto traces = mobility::generate_traces(
          *model, kNodes, 30.0,
          util::derive_seed(bench::base_config().seed + repeat, 0xB4));
      util::Xoshiro256 rng(
          util::derive_seed(bench::base_config().seed + repeat, 0x5C));
      for (double t = kStaleness; t <= 30.0; t += 2.0) {
        std::vector<geom::Vec2> now(kNodes), old(kNodes);
        for (std::size_t i = 0; i < kNodes; ++i) {
          now[i] = traces[i].position(t);
          old[i] = traces[i].position(t - kStaleness);
        }
        const auto current = topology::original_graph(now, kRange);
        const graph::NodeId source = rng.uniform_below(kNodes);
        const std::vector<bool> everyone(kNodes, true);
        flood_tx.add(static_cast<double>(
            broadcast::forward_count(current, everyone, source)));
        const auto fresh = broadcast::connected_dominating_set(current);
        cds_tx.add(static_cast<double>(
            broadcast::forward_count(current, fresh, source)));
        cds_cov.add(broadcast::broadcast_coverage(current, fresh, source));
        // Stale CDS: computed from positions one interval ago, used now.
        const auto stale = broadcast::connected_dominating_set(
            topology::original_graph(old, kRange));
        stale_tx.add(static_cast<double>(
            broadcast::forward_count(current, stale, source)));
        stale_cov.add(broadcast::broadcast_coverage(current, stale, source));
      }
    }
    table.add_row({speed, bench::ci_cell(flood_tx, 1),
                   bench::ci_cell(cds_tx, 1), bench::ci_cell(cds_cov),
                   bench::ci_cell(stale_tx, 1), bench::ci_cell(stale_cov)});
  }
  bench::emit(table, "ablation_broadcast");
  return 0;
}
