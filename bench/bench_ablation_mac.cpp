// Ablation H (the paper's other future-work item): ideal vs realistic MAC.
// The paper isolates mobility effects with a collision-free MAC and defers
// "more accurate results using a realistic power control MAC layer" to
// future work. This bench runs the recommended configuration (RNG + view
// synchronization + 10 m buffer) under both MACs: carrier sensing and
// collision loss shave a few points off connectivity — more at high
// mobility where Hello traffic matters most — without changing any
// qualitative conclusion.
#include "common.hpp"

int main() {
  using namespace mstc;
  const auto speeds = bench::speed_axis();
  const std::size_t repeats = runner::sweep_repeats();
  bench::banner("Ablation: ideal vs contention (CSMA) MAC",
                2 * speeds.size(), repeats);

  std::vector<runner::ScenarioConfig> grid;
  for (const char* mac : {"ideal", "csma"}) {
    for (double speed : speeds) {
      auto cfg = bench::base_config();
      cfg.protocol = "RNG";
      cfg.mode = core::ConsistencyMode::kViewSync;
      cfg.buffer_width = 10.0;
      cfg.average_speed = speed;
      cfg.mac = mac;
      grid.push_back(cfg);
    }
  }
  const auto results = runner::run_batch(grid, repeats);

  util::Table table({"mac", "speed_mps", "connectivity", "strict",
                     "collision_fraction"});
  table.set_title("MAC realism (RNG + VS + 10 m buffer)");
  for (std::size_t i = 0; i < grid.size(); ++i) {
    table.add_row({grid[i].mac, grid[i].average_speed,
                   bench::ci_cell(results[i].delivery()),
                   bench::ci_cell(results[i].strict()),
                   bench::ci_cell(results[i].mac_collisions())});
  }
  bench::emit(table, "ablation_mac");
  return 0;
}
