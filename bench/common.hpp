// Shared helpers for the figure/table reproduction benches.
//
// Every bench binary:
//   * builds a grid of ScenarioConfigs,
//   * runs them with run_batch (repeats from MSTC_REPEATS, default 5;
//     MSTC_PAPER_SCALE=1 restores the paper's 20 x 100 s setup),
//   * prints an aligned table whose rows mirror the paper's series, and
//   * optionally dumps CSV to $MSTC_CSV_DIR for offline plotting.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "obs/manifest.hpp"
#include "obs/probe.hpp"
#include "runner/scenario.hpp"
#include "runner/sweep.hpp"
#include "util/options.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace mstc::bench {

/// The paper's baseline lineup (Table 1 / Figs. 6-10 order).
inline const std::vector<std::string> kPaperProtocols = {"MST", "RNG", "SPT-4",
                                                         "SPT-2"};

/// The paper's mobility axis (m/s). Average moving speed of the random
/// waypoint model; 1 = walking ... 160 = the paper's stress level.
inline std::vector<double> speed_axis() {
  return util::env_list("MSTC_SPEEDS", {1.0, 20.0, 40.0, 80.0, 160.0});
}

/// The paper's buffer-zone widths (m) from Figs. 7/9/10.
inline std::vector<double> buffer_axis() {
  return util::env_list("MSTC_BUFFERS", {0.0, 1.0, 10.0, 100.0});
}

/// Base scenario with CI-scale defaults and env escalation applied.
inline runner::ScenarioConfig base_config() {
  runner::ScenarioConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(
      util::env_or("MSTC_SEED", std::int64_t{20040426}));  // IPDPS 2004
  return runner::apply_env_overrides(cfg);
}

/// "0.874 ±0.021" cell for a per-run summary.
inline std::string ci_cell(const util::Summary& summary, int precision = 3) {
  const auto ci = summary.ci95();
  return util::format_ci(ci.mean, ci.half_width, precision);
}

/// run_batch with bench-wide observability: MSTC_PROGRESS=1 reports
/// completed/total + ETA on stderr while the sweep runs, and when
/// $MSTC_CSV_DIR is set a machine-readable run manifest (config, seed,
/// counter totals, wall-clock profile) lands next to the CSVs as
/// <name>.manifest.json. Results are byte-identical to plain run_batch.
inline std::vector<metrics::RunAggregator> observed_run_batch(
    const std::vector<runner::ScenarioConfig>& grid, std::size_t repeats,
    const std::string& name) {
  const std::string csv_dir = util::env_or("MSTC_CSV_DIR", std::string{});
  const bool progress =
      util::env_or("MSTC_PROGRESS", std::int64_t{0}) != 0;
  const bool manifest = !csv_dir.empty();

  util::ThreadPool& pool = util::global_pool();
  std::vector<obs::RunObservation> observations;
  runner::SweepHooks hooks;
  if (manifest) {
    hooks.observations = &observations;
    hooks.profile = true;
  }
  if (progress) {
    hooks.on_progress = [](const runner::SweepProgress& p) {
      std::fprintf(stderr, "\r[%zu/%zu] %.1fs elapsed, eta %.1fs   ",
                   p.completed, p.total, p.elapsed_seconds, p.eta_seconds);
      if (p.completed == p.total) std::fputc('\n', stderr);
      std::fflush(stderr);
    };
  }

  const std::uint64_t sweep_start = obs::wall_now_ns();
  auto results = runner::run_batch(grid, repeats, pool, hooks);
  if (manifest) {
    obs::CounterRegistry counters;
    obs::Profiler profiler;
    for (const obs::RunObservation& observation : observations) {
      counters.merge(observation.counters);
      profiler.merge(observation.profiler);
    }
    obs::Manifest out;
    out.tool = "bench_" + name;
    out.seed = base_config().seed;
    out.configurations = grid.size();
    out.repeats = repeats;
    const auto cfg = base_config();
    out.config = {
        {"nodes", std::to_string(cfg.node_count)},
        {"duration", std::to_string(cfg.duration)},
        {"mobility", cfg.mobility_model},
    };
    out.counters = &counters;
    out.profiler = &profiler;
    out.sweep_wall_seconds =
        static_cast<double>(obs::wall_now_ns() - sweep_start) * 1e-9;
    out.pool_threads = pool.thread_count();
    const std::string path = csv_dir + "/" + name + ".manifest.json";
    if (!obs::write_manifest(path, out)) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    }
  }
  return results;
}

/// Prints the table and mirrors it to $MSTC_CSV_DIR/<name>.csv.
inline void emit(util::Table& table, const std::string& name) {
  table.print(std::cout);
  table.maybe_write_csv(util::env_or("MSTC_CSV_DIR", std::string{}), name);
  std::cout << '\n';
}

/// Banner with run-scale information, so bench logs are self-describing.
inline void banner(const std::string& title, std::size_t configs,
                   std::size_t repeats) {
  const auto cfg = base_config();
  std::printf(
      "=== %s ===\n"
      "%zu configurations x %zu repeats | %zu nodes, %.0f s sim, "
      "%.0f floods/s (MSTC_PAPER_SCALE=1 for the paper's 20 x 100 s)\n\n",
      title.c_str(), configs, repeats, cfg.node_count, cfg.duration,
      cfg.flood_rate);
}

}  // namespace mstc::bench
