// Shared helpers for the figure/table reproduction benches.
//
// Every bench binary:
//   * builds a grid of ScenarioConfigs,
//   * runs them with run_batch (repeats from MSTC_REPEATS, default 5;
//     MSTC_PAPER_SCALE=1 restores the paper's 20 x 100 s setup),
//   * prints an aligned table whose rows mirror the paper's series, and
//   * optionally dumps CSV to $MSTC_CSV_DIR for offline plotting.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "runner/scenario.hpp"
#include "runner/sweep.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

namespace mstc::bench {

/// The paper's baseline lineup (Table 1 / Figs. 6-10 order).
inline const std::vector<std::string> kPaperProtocols = {"MST", "RNG", "SPT-4",
                                                         "SPT-2"};

/// The paper's mobility axis (m/s). Average moving speed of the random
/// waypoint model; 1 = walking ... 160 = the paper's stress level.
inline std::vector<double> speed_axis() {
  return util::env_list("MSTC_SPEEDS", {1.0, 20.0, 40.0, 80.0, 160.0});
}

/// The paper's buffer-zone widths (m) from Figs. 7/9/10.
inline std::vector<double> buffer_axis() {
  return util::env_list("MSTC_BUFFERS", {0.0, 1.0, 10.0, 100.0});
}

/// Base scenario with CI-scale defaults and env escalation applied.
inline runner::ScenarioConfig base_config() {
  runner::ScenarioConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(
      util::env_or("MSTC_SEED", std::int64_t{20040426}));  // IPDPS 2004
  return runner::apply_env_overrides(cfg);
}

/// "0.874 ±0.021" cell for a per-run summary.
inline std::string ci_cell(const util::Summary& summary, int precision = 3) {
  const auto ci = summary.ci95();
  return util::format_ci(ci.mean, ci.half_width, precision);
}

/// Prints the table and mirrors it to $MSTC_CSV_DIR/<name>.csv.
inline void emit(util::Table& table, const std::string& name) {
  table.print(std::cout);
  table.maybe_write_csv(util::env_or("MSTC_CSV_DIR", std::string{}), name);
  std::cout << '\n';
}

/// Banner with run-scale information, so bench logs are self-describing.
inline void banner(const std::string& title, std::size_t configs,
                   std::size_t repeats) {
  const auto cfg = base_config();
  std::printf(
      "=== %s ===\n"
      "%zu configurations x %zu repeats | %zu nodes, %.0f s sim, "
      "%.0f floods/s (MSTC_PAPER_SCALE=1 for the paper's 20 x 100 s)\n\n",
      title.c_str(), configs, repeats, cfg.node_count, cfg.duration,
      cfg.flood_rate);
}

}  // namespace mstc::bench
