#!/usr/bin/env python3
"""Self-test for mstc_tidy.py: each known-bad fixture must be reported with
the expected rule id, each known-good fixture must pass, and the shipped
src/ tree must be clean. Fixtures are pinned against the bundled structural
frontend (always available); when libclang is present the fixture suite and
the src/ sweep run again under it, so both frontends are held to the same
verdicts. Run directly or via ctest (mstc_tidy_selftest)."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

TOOLS_DIR = Path(__file__).resolve().parent
TIDY = TOOLS_DIR / "mstc_tidy.py"
FIXTURES = TOOLS_DIR / "tidy_fixtures"
REPO_SRC = TOOLS_DIR.parent / "src"

# fixture path (relative to tidy_fixtures/) -> set of rule ids that must all
# appear in the output; empty set = fixture must come back clean.
EXPECTATIONS = {
    "src/bad_unordered_iter.cpp": {"unordered-iteration"},
    "src/good_ordered_iter.cpp": set(),
    "src/good_unordered_suppressed.cpp": set(),
    "bad_parallel_float.cpp": {"parallel-float-accumulation"},
    "good_parallel_slots.cpp": set(),
    "good_parallel_suppressed.cpp": set(),
    "src/bad_hot_alloc.cpp": {"hot-heap-allocation"},
    "src/good_hot_outparam.cpp": set(),
    "src/good_hot_suppressed.cpp": set(),
    "src/bad_hot_std_function.cpp": {"hot-std-function"},
    "src/sim/bad_std_function.cpp": {"hot-std-function"},
    "src/good_std_function_cold.cpp": set(),
    "src/core/good_std_function_waived.cpp": set(),
    "src/bad_missing_guard.cpp": {"missing-guarded-by"},
    "src/good_guarded.cpp": set(),
    "src/good_guard_suppressed.cpp": set(),
}

ALL_RULES = (
    "unordered-iteration",
    "parallel-float-accumulation",
    "hot-heap-allocation",
    "hot-std-function",
    "missing-guarded-by",
)


def run_tidy(*args: str) -> tuple[int, str]:
    result = subprocess.run(
        [sys.executable, str(TIDY), *args],
        capture_output=True, text=True, check=False)
    return result.returncode, result.stdout + result.stderr


def libclang_usable() -> bool:
    # Exit 0 with a skip banner means unavailable; findings (exit 1) or a
    # silent pass mean the frontend actually ran.
    code, output = run_tidy("--frontend", "libclang", str(FIXTURES))
    return code != 0 or "SKIPPED" not in output


def check_fixtures(frontend: str, failures: list[str]) -> None:
    for relative, expected_rules in EXPECTATIONS.items():
        fixture = FIXTURES / relative
        if not fixture.is_file():
            failures.append(f"missing fixture: {fixture}")
            continue
        code, output = run_tidy("--frontend", frontend, str(fixture))
        tag = f"{relative} [{frontend}]"
        if expected_rules:
            if code == 0:
                failures.append(f"{tag}: expected nonzero exit, got 0")
            for rule in expected_rules:
                if f"[{rule}]" not in output:
                    failures.append(
                        f"{tag}: rule '{rule}' not reported; output:\n"
                        f"{output}")
        else:
            if code != 0:
                failures.append(
                    f"{tag}: expected clean (exit 0), got {code}; "
                    f"output:\n{output}")


def main() -> int:
    failures: list[str] = []

    check_fixtures("builtin", failures)

    # The tree as shipped must be clean — the lint gate in CI relies on it.
    code, output = run_tidy("--frontend", "builtin", str(REPO_SRC))
    if code != 0:
        failures.append(
            f"src/ tree not tidy-clean [builtin] (exit {code}):\n{output}")

    # When libclang is actually usable here, hold it to the same verdicts.
    if libclang_usable():
        check_fixtures("libclang", failures)
        code, output = run_tidy("--frontend", "libclang", str(REPO_SRC))
        if code != 0:
            failures.append(
                f"src/ tree not tidy-clean [libclang] (exit {code}):\n"
                f"{output}")
    else:
        # Must degrade loudly but successfully: a skip, never a failure.
        code, output = run_tidy("--frontend", "libclang", str(REPO_SRC))
        if code != 0:
            failures.append(
                f"--frontend=libclang without libclang must exit 0 "
                f"(skip), got {code}:\n{output}")
        elif "SKIPPED" not in output:
            failures.append(
                "--frontend=libclang without libclang must print a skip "
                f"banner; output:\n{output}")

    # --list-rules must succeed and mention every rule id.
    result = subprocess.run(
        [sys.executable, str(TIDY), "--list-rules"],
        capture_output=True, text=True, check=False)
    if result.returncode != 0:
        failures.append("--list-rules exited nonzero")
    for rule in ALL_RULES:
        if rule not in result.stdout:
            failures.append(f"--list-rules missing '{rule}'")

    if failures:
        print("mstc_tidy self-test FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"mstc_tidy self-test: {len(EXPECTATIONS)} fixtures + src/ "
          f"sweep OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
