// Fixture: std::function outside the hot-path layers (src/ but neither
// sim/ nor core/) and outside any `// mstc:hot` function is fine —
// `hot-std-function` only polices the per-event layers.
#include <functional>

namespace mstc::fixture {

// A runner/tooling-layer callback: invoked once per sweep, not per event.
struct ColdHooks {
  std::function<void(int)> on_progress;
};

}  // namespace mstc::fixture
