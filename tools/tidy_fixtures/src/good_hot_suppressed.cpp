// Fixture: a justified allow() marker silences hot-heap-allocation (e.g. an
// amortized rebuild that allocates once per epoch, not per event — cf. the
// spatial grid's ensure_grid()).
#include <cstddef>
#include <vector>

namespace mstc::fixture {

// mstc:hot
std::size_t rebuild_epoch_index(std::size_t n) {
  // Amortized: runs once per mobility epoch; steady-state calls never
  // reach this branch.
  // mstc-tidy: allow(hot-heap-allocation)
  std::vector<int> cells(n);
  return cells.size();
}

}  // namespace mstc::fixture
