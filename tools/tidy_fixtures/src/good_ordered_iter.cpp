// Fixture: owning an unordered container is fine — only *iterating* one is
// flagged. Lookups by key and iteration over ordered companions stay clean.
#include <cstddef>
#include <unordered_map>
#include <vector>

namespace mstc::fixture {

struct Histogram {
  std::unordered_map<int, std::size_t> counts;
  std::vector<int> keys;  // maintained sorted by the owner

  std::size_t total() const {
    std::size_t sum = 0;
    for (int key : keys) {
      sum += counts.count(key);
    }
    return sum;
  }
};

}  // namespace mstc::fixture
