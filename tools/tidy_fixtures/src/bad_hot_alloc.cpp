// Fixture: heap allocation inside (or reachable from) a `// mstc:hot`
// function must trip hot-heap-allocation — new expressions, make_unique /
// make_shared, and local owning containers alike. helper_allocates() is not
// marked hot itself; it is flagged because the hot kernel calls it.
#include <cstddef>
#include <memory>
#include <vector>

namespace mstc::fixture {

int helper_allocates(std::size_t n) {
  std::vector<int> scratch(n);
  return static_cast<int>(scratch.size());
}

// mstc:hot
int hot_kernel(std::size_t n) {
  auto owned = std::make_unique<int>(static_cast<int>(n));
  int* raw = new int[n];
  delete[] raw;
  (void)owned;
  return helper_allocates(n);
}

}  // namespace mstc::fixture
