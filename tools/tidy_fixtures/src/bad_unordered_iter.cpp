// Fixture: range-for over unordered containers must trip
// unordered-iteration, including when the declared type hides behind a
// `using` alias (the file sits under a src/ path on purpose).
#include <cstddef>
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace mstc::fixture {

using NameMap = std::unordered_map<int, std::string>;

struct Registry {
  NameMap names;
  std::unordered_set<int> ids;

  std::size_t total() const {
    std::size_t sum = 0;
    for (const auto& entry : names) {
      sum += entry.second.size();
    }
    for (int id : ids) {
      sum += static_cast<std::size_t>(id);
    }
    return sum;
  }
};

}  // namespace mstc::fixture
