// Fixture: a class that owns a mutex must annotate every data member with
// MSTC_GUARDED_BY / MSTC_PT_GUARDED_BY or document the exception with
// MSTC_UNGUARDED(reason). items_ carries neither -> missing-guarded-by.
#include <mutex>
#include <vector>

namespace mstc::fixture {

class Queue {
 public:
  void push(int value);

 private:
  std::mutex mutex_;
  std::vector<int> items_;
};

}  // namespace mstc::fixture
