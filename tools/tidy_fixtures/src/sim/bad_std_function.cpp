// Fixture: std::function in src/sim/ (or src/core/) must be flagged by the
// `hot-std-function` rule — spilled closures heap-allocate per event; hot
// paths use sim::Handler (SBO) or a template parameter instead.
#include <functional>
#include <utility>

namespace mstc::fixture {

struct BadKernel {
  std::function<void()> stored;

  void bad_member(std::function<void()> handler) {
    stored = std::move(handler);
  }

  void bad_local() {
    std::function<int(int)> f = [](int x) { return x + 1; };
    stored = [f] { (void)f(1); };
  }
};

}  // namespace mstc::fixture
