// Fixture: a fully annotated mutex-owning class is clean. Exercises every
// exemption: MSTC_GUARDED_BY, MSTC_UNGUARDED(reason), condition variables,
// atomics, const and static constexpr members. The stub macro definitions
// stand in for src/util/annotations.hpp (fixtures are never compiled).
#define MSTC_GUARDED_BY(x)
#define MSTC_UNGUARDED(why)

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <vector>

namespace mstc::fixture {

class Guarded {
 public:
  void push(int value);

 private:
  std::mutex mutex_;
  std::vector<int> items_ MSTC_GUARDED_BY(mutex_);
  std::vector<int> boot_config_ MSTC_UNGUARDED("written before any worker");
  std::condition_variable ready_;
  std::atomic<int> pending_{0};
  const int capacity_ = 8;
  static constexpr int kMaxBatch = 16;
};

}  // namespace mstc::fixture
