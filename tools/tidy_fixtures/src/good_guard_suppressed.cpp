// Fixture: an allow() marker with a written reason silences
// missing-guarded-by for a field whose synchronization story predates the
// annotation macros.
#include <mutex>
#include <vector>

namespace mstc::fixture {

class Waived {
 public:
  void push(int value);

 private:
  std::mutex mutex_;
  // Written only by the construction thread before workers exist.
  // mstc-tidy: allow(missing-guarded-by)
  std::vector<int> boot_items_;
};

}  // namespace mstc::fixture
