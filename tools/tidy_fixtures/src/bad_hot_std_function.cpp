// Fixture: std::function inside a `// mstc:hot` function is flagged even
// outside the src/sim/ and src/core/ layers (hot-std-function; the local
// also trips hot-heap-allocation — std::function owns its heap spill).
#include <functional>

namespace mstc::fixture {

// mstc:hot
int apply_hot(int x) {
  std::function<int(int)> f = [](int v) { return v + 1; };
  return f(x);
}

}  // namespace mstc::fixture
