// Fixture: the sanctioned hot-path idiom — push_back into a caller-owned,
// pre-reserved out-parameter — is deliberately NOT flagged by
// hot-heap-allocation. Only locally *owned* containers and explicit heap
// allocations count.
#include <cstddef>
#include <vector>

namespace mstc::fixture {

// mstc:hot
void gather_positive(const std::vector<int>& values, std::vector<int>& out) {
  out.clear();
  for (int value : values) {
    if (value > 0) {
      out.push_back(value);
    }
  }
}

}  // namespace mstc::fixture
