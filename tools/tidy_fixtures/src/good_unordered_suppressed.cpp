// Fixture: the sanctioned collect-then-sort idiom — iterate the hash map
// once to gather, sort before anything order-sensitive consumes it — keeps
// a justification comment plus an allow() marker (cf. core/view_store.cpp).
#include <algorithm>
#include <unordered_map>
#include <vector>

namespace mstc::fixture {

struct Exporter {
  std::unordered_map<int, int> cells;

  std::vector<int> dump() const {
    std::vector<int> out;
    out.reserve(cells.size());
    // Deterministic: visit order never escapes — the collected keys are
    // sorted below before any consumer sees them.
    // mstc-tidy: allow(unordered-iteration)
    for (const auto& entry : cells) {
      out.push_back(entry.first);
    }
    std::sort(out.begin(), out.end());
    return out;
  }
};

}  // namespace mstc::fixture
