// Fixture: a deliberate std::function inside a hot-path layer stays clean
// when carrying an mstc-tidy allow() marker (cold setup code, not per-event).
#include <functional>

namespace mstc::fixture {

struct SetupOnly {
  // Invoked once at scenario construction, never inside the event loop.
  std::function<void()> on_configured;  // mstc-tidy: allow(hot-std-function)
};

}  // namespace mstc::fixture
