// Fixture: an allow() marker with a justification silences
// parallel-float-accumulation (e.g. a diagnostics-only estimate whose bit
// pattern never feeds simulation state).
#include <cstddef>
#include <vector>

namespace util {
template <typename Fn>
void parallel_for(std::size_t n, Fn&& fn);
}  // namespace util

namespace mstc::fixture {

double diagnostic_estimate(const std::vector<double>& values) {
  double total = 0.0;
  util::parallel_for(values.size(), [&](std::size_t i) {
    // Rough progress metric for logs only; never compared bit-for-bit.
    // mstc-tidy: allow(parallel-float-accumulation)
    total += values[i];
  });
  return total;
}

}  // namespace mstc::fixture
