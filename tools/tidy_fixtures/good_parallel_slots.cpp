// Fixture: the sanctioned parallel reduction — each iteration writes its own
// pre-sized slot; the serial reduction afterwards is order-fixed. Clean.
#include <cstddef>
#include <vector>

namespace util {
template <typename Fn>
void parallel_for(std::size_t n, Fn&& fn);
}  // namespace util

namespace mstc::fixture {

double stable_sum(const std::vector<double>& values,
                  std::vector<double>& slots) {
  util::parallel_for(values.size(), [&](std::size_t i) {
    slots[i] = values[i] * 0.5;
  });
  double total = 0.0;
  for (double slot : slots) {
    total += slot;
  }
  return total;
}

}  // namespace mstc::fixture
