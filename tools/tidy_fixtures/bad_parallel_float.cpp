// Fixture: compound floating-point accumulation inside a parallel_for body
// must trip parallel-float-accumulation — cross-iteration accumulation under
// dynamic scheduling reorders additions and is not bit-stable.
#include <cstddef>
#include <vector>

namespace util {
template <typename Fn>
void parallel_for(std::size_t n, Fn&& fn);
}  // namespace util

namespace mstc::fixture {

double unstable_sum(const std::vector<double>& values) {
  double total = 0.0;
  double shadow = 0.0;
  util::parallel_for(values.size(), [&](std::size_t i) {
    total += values[i];
    shadow = shadow + values[i];
  });
  return total + shadow;
}

}  // namespace mstc::fixture
