#!/usr/bin/env python3
"""mstc_tidy: AST-grade contract checker for the mstc repo.

Where tools/mstc_lint.py matches single lines by regex, this tool checks
contracts that need program *structure* — declared types resolved across
headers, function bodies and the calls between them, class member lists.
It supersedes the regex linter's weakest rules (see docs/STATIC_ANALYSIS.md
for the full catalogue and rationale):

  unordered-iteration     range-for over a std::unordered_{map,set,...}
                          (resolved through aliases and the TU's local
                          includes). Hash-table order is implementation-
                          defined; iteration feeding ordered output breaks
                          cross-platform reproducibility.
  parallel-float-accumulation
                          compound floating-point accumulation (x += ...)
                          inside a lambda passed to util::parallel_for /
                          parallel_for_chunked. Cross-iteration float
                          accumulation under dynamic scheduling reorders
                          additions and is not bit-stable; reduce into
                          per-index slots instead.
  hot-heap-allocation     heap allocation reachable from a function carrying
                          a `// mstc:hot` contract comment: new expressions,
                          std::make_unique / make_shared, or a local owning
                          container/string declaration. Hot kernels must use
                          caller-owned scratch or member buffers (push_back
                          into a caller-owned, pre-reserved out-parameter is
                          the sanctioned idiom and is deliberately not
                          flagged). Reachability is the call graph within
                          the translation unit, names collapsed across
                          overloads.
  hot-std-function        std::function declared in src/sim/ or src/core/
                          (the event-kernel and controller layers) or inside
                          any `// mstc:hot` function. Spilled closures
                          heap-allocate per event; use sim::Handler (SBO)
                          or a template parameter.
  missing-guarded-by      a class that owns a mutex (std::mutex or
                          util::Mutex) has a data member with no
                          MSTC_GUARDED_BY / MSTC_PT_GUARDED_BY /
                          MSTC_UNGUARDED(reason) annotation. Exempt: the
                          mutexes themselves, condition variables,
                          std::once_flag, std::atomic members, const /
                          static / constexpr members. Keeps the Clang
                          -Wthread-safety surface complete even on builds
                          that cannot run the analysis.

Frontends. With libclang (the `clang` Python package plus libclang.so)
available, translation units from the build tree's compile_commands.json
are parsed into real ASTs. Without it the bundled structural frontend —
a comment/string-stripping lexer plus a brace-matching scope scanner —
evaluates the same rules; the fixture suite under tools/tidy_fixtures/
pins both frontends to the same verdicts. `--frontend libclang` prints a
clear skip message (exit 0) instead of failing when libclang is missing,
so environments without it degrade loudly, never silently.

Suppression: the syntax is shared with mstc_lint.py — append
``// mstc-tidy: allow(<rule>)`` to the offending line or place it alone on
the line directly above, with a justification comment nearby.

Usage:
  mstc_tidy.py [--build-dir DIR] [--frontend auto|builtin|libclang]
               <file-or-dir> [more paths...]
  mstc_tidy.py --list-rules

Exit status: 0 when clean (or skipped), 1 when any finding is reported,
2 on usage error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from mstc_lint import (  # noqa: E402  (shared grammar — see module docstring)
    CXX_SUFFIXES,
    allowed_rules,
    is_library_code,
    strip_comments_and_strings,
)

RULES = {
    "unordered-iteration": (
        "range-for over an unordered container: hash-table order is "
        "implementation-defined and breaks run-to-run reproducibility "
        "when results feed metrics or event ordering; iterate a sorted "
        "copy or an ordered container"
    ),
    "parallel-float-accumulation": (
        "floating-point accumulation inside a parallel_for body: "
        "cross-iteration accumulation under dynamic scheduling reorders "
        "additions and is not bit-stable; write per-index slots and "
        "reduce serially"
    ),
    "hot-heap-allocation": (
        "heap allocation reachable from a `// mstc:hot` function: hot "
        "kernels must not allocate in steady state; use member scratch "
        "or a caller-owned out-parameter"
    ),
    "hot-std-function": (
        "std::function in src/sim/, src/core/ or a `// mstc:hot` "
        "function: spilled closures heap-allocate per event; use "
        "sim::Handler (SBO, static_assert(fits_inline)) or a template "
        "parameter"
    ),
    "missing-guarded-by": (
        "field of a mutex-owning class lacks MSTC_GUARDED_BY / "
        "MSTC_PT_GUARDED_BY / MSTC_UNGUARDED(reason): every field of a "
        "class with a mutex must state its synchronization (see "
        "src/util/annotations.hpp)"
    ),
}

HOT_MARK_RE = re.compile(r"//.*\bmstc:hot\b")
HOT_PATH_PARTS = ("sim", "core")  # src/ subtrees where std::function is hot

IDENT_RE = re.compile(r"[A-Za-z_]\w*")
INCLUDE_RE = re.compile(r"#\s*include\s*\"([^\"]+)\"")
UNORDERED_TYPE_RE = re.compile(
    r"\bstd\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<")
ALIAS_RE = re.compile(r"\busing\s+(\w+)\s*=\s*([^;]+);")
TYPEDEF_RE = re.compile(r"\btypedef\s+(.+?)\s+(\w+)\s*;")
RANGE_FOR_RE = re.compile(
    r"\bfor\s*\(.*?:\s*\*?(\w+(?:[.\->]\w+(?:\(\))?)*)\s*\)")
FLOAT_DECL_RE = re.compile(r"\b(?:double|float)\s+[&*]?\s*(\w+)\s*[;={,)[]")
PARALLEL_CALL_RE = re.compile(r"\bparallel_for(?:_chunked)?\s*\(")
LAMBDA_RE = re.compile(r"\[[^\[\]]*\]\s*(?:\([^)]*\))?\s*(?:mutable\s*)?"
                       r"(?:noexcept\s*)?(?:->\s*[\w:<>&*\s]+?)?\s*\{")
COMPOUND_FLOAT_RE = re.compile(r"(\w+)\s*[+\-*]=")
PLAIN_ACCUM_RE = re.compile(r"(\w+)\s*=\s*\1\s*[+\-]")
NEW_EXPR_RE = re.compile(r"(?<![\w.])new\b(?!\s*\()")  # placement new exempt
MAKE_SMART_RE = re.compile(r"\bstd\s*::\s*make_(?:unique|shared)\s*<")
OWNING_LOCAL_RE = re.compile(
    r"\bstd\s*::\s*(vector|deque|list|map|set|multimap|multiset|"
    r"unordered_map|unordered_set|unordered_multimap|unordered_multiset|"
    r"string|basic_string|function|queue|priority_queue|stack)\b")
STD_FUNCTION_RE = re.compile(r"\bstd\s*::\s*function\s*<")
CLASS_RE = re.compile(
    r"\b(class|struct)\s+((?:MSTC_\w+\s*(?:\([^)]*\))?\s*)*)(\w+)\s*"
    r"(?:final\s*)?(:[^;{]*)?\{")
MUTEX_TYPE_RE = re.compile(
    r"\b(?:std\s*::\s*(?:recursive_|shared_|timed_|recursive_timed_)?mutex"
    r"|util\s*::\s*Mutex|Mutex)\b")
GUARD_ANNOTATION_RE = re.compile(
    r"\bMSTC_(?:GUARDED_BY|PT_GUARDED_BY|UNGUARDED)\s*\(")
FIELD_EXEMPT_RE = re.compile(
    r"\b(?:condition_variable|once_flag|atomic|atomic_\w+)\b|"
    r"\bconst\b|\bstatic\b|\bconstexpr\b")
MACRO_CALL_RE = re.compile(r"\bMSTC_\w+\s*\([^()]*\)")
KEYWORDS = frozenset((
    "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof",
    "alignas", "decltype", "noexcept", "static_assert", "assert", "defined",
    "throw", "new", "delete", "co_await", "co_return", "co_yield", "case",
    "else", "do", "operator", "requires", "static_cast", "const_cast",
    "dynamic_cast", "reinterpret_cast", "using", "namespace", "template",
))


class Finding:
    def __init__(self, path: Path, line: int, rule: str, detail: str = ""):
        self.path = path
        self.line = line
        self.rule = rule
        self.detail = detail

    def key(self) -> tuple:
        return (str(self.path), self.line, self.rule)

    def __str__(self) -> str:
        message = RULES[self.rule]
        if self.detail:
            message = f"{message} [{self.detail}]"
        return f"{self.path}:{self.line}: [{self.rule}] {message}"


def match_balanced(text: str, start: int, open_ch: str, close_ch: str) -> int:
    """Index one past the balanced group opening at text[start] (which must
    be open_ch); len(text) when unbalanced."""
    depth = 0
    i = start
    while i < len(text):
        ch = text[i]
        if ch == open_ch:
            depth += 1
        elif ch == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return len(text)


def line_of(offsets: list[int], pos: int) -> int:
    """1-based line for character offset `pos`; offsets[i] is the offset of
    the first character of line i+1."""
    lo, hi = 0, len(offsets) - 1
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if offsets[mid] <= pos:
            lo = mid
        else:
            hi = mid - 1
    return lo + 1


def line_offsets(text: str) -> list[int]:
    offsets = [0]
    for i, ch in enumerate(text):
        if ch == "\n":
            offsets.append(i + 1)
    return offsets


# ---------------------------------------------------------------------------
# Builtin structural frontend
# ---------------------------------------------------------------------------


class FunctionDef:
    def __init__(self, name: str, name_pos: int, body_start: int,
                 body_end: int):
        self.name = name
        self.name_pos = name_pos        # offset of the function name token
        self.body_start = body_start    # offset of the opening '{'
        self.body_end = body_end        # one past the closing '}'
        self.hot = False


def resolve_local_includes(path: Path, text: str,
                           max_files: int = 24) -> list[tuple[Path, str]]:
    """Quoted includes of `path` that resolve against the file's directory
    or an ancestor (the repo's include root is src/, so "core/x.hpp" from
    src/sim/y.cpp resolves at the src/ ancestor). Used to see declarations
    (unordered members, aliases) that live in headers."""
    seen: set[Path] = set()
    out: list[tuple[Path, str]] = []
    roots = [path.parent, *list(path.parents)[1:6]]
    for include in INCLUDE_RE.findall(text):
        for root in roots:
            candidate = (root / include)
            if candidate.is_file():
                candidate = candidate.resolve()
                if candidate not in seen:
                    seen.add(candidate)
                    try:
                        out.append((candidate, candidate.read_text(
                            encoding="utf-8", errors="replace")))
                    except OSError:
                        pass
                break
        if len(out) >= max_files:
            break
    return out


def unordered_names(stripped_sources: list[str]) -> set[str]:
    """Names (variables, members, aliases) whose declared type is an
    unordered container, resolved through one fixpoint over using/typedef
    aliases across the given (already comment-stripped) sources."""
    aliases: dict[str, str] = {}
    for stripped in stripped_sources:
        for name, rhs in ALIAS_RE.findall(stripped):
            aliases[name] = rhs
        for rhs, name in TYPEDEF_RE.findall(stripped):
            aliases[name] = rhs
    unordered_aliases: set[str] = set()
    changed = True
    while changed:
        changed = False
        for name, rhs in aliases.items():
            if name in unordered_aliases:
                continue
            if UNORDERED_TYPE_RE.search(rhs) or any(
                    re.search(rf"\b{re.escape(a)}\b", rhs)
                    for a in unordered_aliases):
                unordered_aliases.add(name)
                changed = True

    names: set[str] = set(unordered_aliases)
    name_after = re.compile(r"\s*&?\s*(\w+)\s*(?:;|\{|=|,|\))")
    for stripped in stripped_sources:
        for match in UNORDERED_TYPE_RE.finditer(stripped):
            end = match_balanced(stripped, match.end() - 1, "<", ">")
            got = name_after.match(stripped, end)
            if got:
                names.add(got.group(1))
        for alias in unordered_aliases:
            for match in re.finditer(rf"\b{re.escape(alias)}\b\s+(\w+)\s*"
                                     r"(?:;|\{|=)", stripped):
                names.add(match.group(1))
    return names


def float_names(stripped_sources: list[str]) -> set[str]:
    names: set[str] = set()
    for stripped in stripped_sources:
        names.update(FLOAT_DECL_RE.findall(stripped))
    return names


def extract_functions(stripped: str, raw_lines: list[str],
                      offsets: list[int]) -> list[FunctionDef]:
    """Function definitions via identifier( ... ) [qualifiers] { matching.
    Collapses overloads by name; good enough for within-TU reachability."""
    functions: list[FunctionDef] = []
    for match in re.finditer(r"([A-Za-z_~]\w*)\s*\(", stripped):
        name = match.group(1)
        if name in KEYWORDS:
            continue
        close = match_balanced(stripped, match.end() - 1, "(", ")")
        if close >= len(stripped):
            continue
        i = close
        body_start = -1
        # Skip qualifiers / trailing return / constructor-initializer list.
        while i < len(stripped):
            while i < len(stripped) and stripped[i].isspace():
                i += 1
            if i >= len(stripped):
                break
            ch = stripped[i]
            if ch == "{":
                body_start = i
                break
            if ch == ";" or ch in ",)]=":
                break
            if stripped[i:i + 2] == "::":  # qualified trailing return type
                i += 2
                continue
            if ch == ":":
                # ctor-init list: skip `name(args)` / `name{args}` groups.
                i += 1
                while i < len(stripped):
                    while i < len(stripped) and stripped[i].isspace():
                        i += 1
                    word = IDENT_RE.match(stripped, i)
                    if not word:
                        break
                    i = word.end()
                    while i < len(stripped) and stripped[i].isspace():
                        i += 1
                    if i < len(stripped) and stripped[i] == "<":
                        i = match_balanced(stripped, i, "<", ">")
                        while i < len(stripped) and stripped[i].isspace():
                            i += 1
                    if i < len(stripped) and stripped[i] in "({":
                        closer = ")" if stripped[i] == "(" else "}"
                        i = match_balanced(stripped, i, stripped[i], closer)
                    while i < len(stripped) and stripped[i].isspace():
                        i += 1
                    if i < len(stripped) and stripped[i] == ",":
                        i += 1
                        continue
                    break
                continue
            if ch == "-" and stripped[i:i + 2] == "->":
                i += 2
                continue
            word = IDENT_RE.match(stripped, i)
            if word and word.group(0) in ("const", "noexcept", "override",
                                          "final", "mutable", "try",
                                          "requires"):
                i = word.end()
                continue
            if word:  # return-type identifiers after `->`, attr macros, ...
                i = word.end()
                continue
            if ch == "(":
                i = match_balanced(stripped, i, "(", ")")
                continue
            if ch == "<":
                i = match_balanced(stripped, i, "<", ">")
                continue
            break
        if body_start < 0:
            continue
        body_end = match_balanced(stripped, body_start, "{", "}")
        fn = FunctionDef(name, match.start(1), body_start, body_end)
        def_line = line_of(offsets, match.start(1))
        for probe in range(max(0, def_line - 4), def_line):
            if HOT_MARK_RE.search(raw_lines[probe]):
                fn.hot = True
        functions.append(fn)
    return functions


def innermost_function(functions: list[FunctionDef],
                       pos: int) -> FunctionDef | None:
    best = None
    for fn in functions:
        if fn.body_start <= pos < fn.body_end:
            if best is None or fn.body_start > best.body_start:
                best = fn
    return best


def hot_reachable(functions: list[FunctionDef],
                  stripped: str) -> set[FunctionDef]:
    """Hot-marked functions plus everything they (transitively) call within
    this translation unit, matched by name."""
    by_name: dict[str, list[FunctionDef]] = {}
    for fn in functions:
        by_name.setdefault(fn.name, []).append(fn)
    hot = [fn for fn in functions if fn.hot]
    reach: set[FunctionDef] = set(hot)
    queue = list(hot)
    while queue:
        fn = queue.pop()
        body = stripped[fn.body_start:fn.body_end]
        for call in re.finditer(r"(\w+)\s*\(", body):
            for callee in by_name.get(call.group(1), ()):
                if callee not in reach and callee is not fn:
                    reach.add(callee)
                    queue.append(callee)
    return reach


def builtin_check_file(path: Path) -> list[Finding]:
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as error:
        print(f"mstc_tidy: cannot read {path}: {error}", file=sys.stderr)
        return []
    raw_lines = text.splitlines()
    stripped = strip_comments_and_strings(text)
    stripped_lines = stripped.splitlines()
    offsets = line_offsets(stripped)
    findings: list[Finding] = []

    include_texts = [strip_comments_and_strings(t)
                     for _, t in resolve_local_includes(path, text)]
    sources = [stripped, *include_texts]

    # --- unordered-iteration -------------------------------------------
    if is_library_code(path):
        names = unordered_names(sources)
        if names:
            for index, line in enumerate(stripped_lines):
                for loop in RANGE_FOR_RE.finditer(line):
                    target = loop.group(1)
                    base = re.split(r"[.\->(]", target)[0]
                    if base in names or target in names:
                        findings.append(Finding(path, index + 1,
                                                "unordered-iteration",
                                                f"over '{target}'"))

    # --- parallel-float-accumulation -----------------------------------
    floats = float_names(sources)
    for call in PARALLEL_CALL_RE.finditer(stripped):
        call_end = match_balanced(stripped, stripped.index("(", call.start()),
                                  "(", ")")
        span = stripped[call.start():call_end]
        for lam in LAMBDA_RE.finditer(span):
            brace = call.start() + lam.end() - 1
            body_end = match_balanced(stripped, brace, "{", "}")
            body = stripped[brace:body_end]
            for acc in COMPOUND_FLOAT_RE.finditer(body):
                if acc.group(1) in floats:
                    pos = brace + acc.start()
                    findings.append(Finding(
                        path, line_of(offsets, pos),
                        "parallel-float-accumulation",
                        f"'{acc.group(1)}' accumulates across iterations"))
            for acc in PLAIN_ACCUM_RE.finditer(body):
                if acc.group(1) in floats:
                    pos = brace + acc.start()
                    findings.append(Finding(
                        path, line_of(offsets, pos),
                        "parallel-float-accumulation",
                        f"'{acc.group(1)}' accumulates across iterations"))

    # --- hot rules ------------------------------------------------------
    functions = extract_functions(stripped, raw_lines, offsets)
    hot_set = hot_reachable(functions, stripped)
    in_hot_tu = is_library_code(path) and any(
        part in HOT_PATH_PARTS for part in path.parts)

    for fn in hot_set:
        body = stripped[fn.body_start:fn.body_end]
        label = (f"in '{fn.name}'" if fn.hot
                 else f"in '{fn.name}', reachable from a hot function")
        for m in NEW_EXPR_RE.finditer(body):
            findings.append(Finding(
                path, line_of(offsets, fn.body_start + m.start()),
                "hot-heap-allocation", f"new expression {label}"))
        for m in MAKE_SMART_RE.finditer(body):
            findings.append(Finding(
                path, line_of(offsets, fn.body_start + m.start()),
                "hot-heap-allocation", f"make_unique/make_shared {label}"))
        for m in OWNING_LOCAL_RE.finditer(body):
            end = m.end()
            if end < len(body) and body[end:].lstrip().startswith("<"):
                end = match_balanced(body, body.index("<", end), "<", ">")
            rest = body[end:]
            decl = re.match(r"\s*(\w+)\s*[;={(]", rest)
            if decl and not re.match(r"\s*[&*]", rest):
                findings.append(Finding(
                    path, line_of(offsets, fn.body_start + m.start()),
                    "hot-heap-allocation",
                    f"local owning std::{m.group(1)} '{decl.group(1)}' "
                    f"{label}"))

    if in_hot_tu:
        for index, line in enumerate(stripped_lines):
            if STD_FUNCTION_RE.search(line):
                findings.append(Finding(path, index + 1, "hot-std-function"))
    else:
        for m in STD_FUNCTION_RE.finditer(stripped):
            fn = innermost_function(functions, m.start())
            if fn is not None and fn in hot_set:
                findings.append(Finding(
                    path, line_of(offsets, m.start()), "hot-std-function",
                    f"in hot '{fn.name}'"))

    # --- missing-guarded-by --------------------------------------------
    if is_library_code(path):
        findings.extend(check_guarded_by(path, stripped, offsets))

    return findings


def class_bodies(stripped: str) -> list[tuple[str, int, int]]:
    """(name, body_start, body_end) of every class/struct definition,
    including nested ones."""
    out = []
    for match in CLASS_RE.finditer(stripped):
        before = stripped[max(0, match.start() - 16):match.start()]
        if re.search(r"\benum\s*$", before):
            continue
        body_start = match.end() - 1
        body_end = match_balanced(stripped, body_start, "{", "}")
        out.append((match.group(3), body_start, body_end))
    return out


def class_statements(body: str) -> list[tuple[int, str]]:
    """Depth-1 statements of a class body (offset within body, text).
    Method bodies are flushed at their closing brace; access-specifier
    labels are stripped from the front of the following statement."""
    statements: list[tuple[int, str]] = []
    start = 1  # skip the opening '{'
    i = 1
    end = len(body) - 1  # the closing '}'
    while i < end:
        ch = body[i]
        if ch in "({":
            closer = ")" if ch == "(" else "}"
            group_end = match_balanced(body, i, ch, closer)
            if ch == "{":
                rest = body[group_end:group_end + 2].lstrip()
                if not rest.startswith(";") and not rest.startswith(",") \
                        and not rest.startswith("="):
                    statements.append((start, body[start:group_end]))
                    start = group_end
                    i = group_end
                    continue
            i = group_end
            continue
        if ch == ";":
            statements.append((start, body[start:i + 1]))
            start = i + 1
        i += 1
    cleaned: list[tuple[int, str]] = []
    for offset, stmt in statements:
        delta = 0
        label = re.match(r"\s*(?:public|private|protected)\s*:", stmt)
        if label:
            delta = label.end()
            stmt = stmt[label.end():]
        cleaned.append((offset + delta, stmt))
    return cleaned


def check_guarded_by(path: Path, stripped: str,
                     offsets: list[int]) -> list[Finding]:
    findings: list[Finding] = []
    classes = class_bodies(stripped)
    for name, body_start, body_end in classes:
        body = stripped[body_start:body_end]
        # Blank out nested class definitions: their members are judged in
        # their own pass, against their own mutexes.
        for other_name, other_start, other_end in classes:
            if other_start > body_start and other_end <= body_end:
                rel_start = other_start - body_start
                rel_end = other_end - body_start
                body = (body[:rel_start] +
                        "".join("\n" if c == "\n" else " "
                                for c in body[rel_start:rel_end]) +
                        body[rel_end:])
        statements = class_statements(body)
        members: list[tuple[int, str, str]] = []  # (offset, stmt, kind)
        owns_mutex = False
        for offset, stmt in statements:
            head = stmt.strip()
            if not head or head.startswith(("using ", "typedef ", "friend ",
                                            "template", "static_assert",
                                            "struct ", "class ", "enum ",
                                            "union ", "public", "private",
                                            "protected")):
                continue
            without_macros = MACRO_CALL_RE.sub("", stmt)
            if "(" in without_macros:
                continue  # method / constructor declaration
            if MUTEX_TYPE_RE.search(stmt):
                owns_mutex = True
                members.append((offset, stmt, "mutex"))
            else:
                members.append((offset, stmt, "data"))
        if not owns_mutex:
            continue
        for offset, stmt, kind in members:
            if kind == "mutex":
                continue
            if GUARD_ANNOTATION_RE.search(stmt):
                continue
            if FIELD_EXEMPT_RE.search(stmt):
                continue
            field = re.search(r"(\w+)\s*(?:=[^;]*|\{[^;]*\})?;", stmt)
            detail = (f"field '{field.group(1)}'" if field else "field")
            findings.append(Finding(
                path, line_of(offsets, body_start + offset +
                              (len(stmt) - len(stmt.lstrip()))),
                "missing-guarded-by", f"{detail} of mutex-owning '{name}'"))
    return findings


# ---------------------------------------------------------------------------
# libclang frontend
# ---------------------------------------------------------------------------


def probe_libclang():
    """Returns (cindex module, None) when libclang is usable, else
    (None, reason)."""
    try:
        from clang import cindex  # type: ignore
    except ImportError as error:
        return None, f"python 'clang' package not importable ({error})"
    try:
        cindex.Index.create()
    except Exception as error:  # noqa: BLE001 — any load failure means skip
        return None, f"libclang shared library not loadable ({error})"
    return cindex, None


def find_compile_commands(build_dir: Path | None, paths: list[Path])\
        -> Path | None:
    candidates: list[Path] = []
    if build_dir is not None:
        candidates.append(build_dir)
    here = Path.cwd()
    candidates.extend([here, *sorted(here.glob("build*"))])
    for path in paths:
        for ancestor in [path, *path.parents]:
            candidates.extend(sorted(ancestor.glob("build*")))
            if (ancestor / "CMakeLists.txt").is_file():
                break
    for candidate in candidates:
        if (candidate / "compile_commands.json").is_file():
            return candidate / "compile_commands.json"
    return None


class LibclangFrontend:
    """Parses TUs from compile_commands.json with libclang and evaluates
    the same rules as the builtin frontend on real ASTs. Any per-TU parse
    or rule failure falls back to the builtin frontend for that file, so a
    libclang regression can never hide findings."""

    def __init__(self, cindex, compdb_path: Path):
        self.ci = cindex
        self.index = cindex.Index.create()
        self.compdb = cindex.CompilationDatabase.fromDirectory(
            str(compdb_path.parent))

    def tu_args(self, source: Path) -> list[str] | None:
        commands = self.compdb.getCompileCommands(str(source))
        if not commands:
            return None
        arguments = list(commands[0].arguments)
        args: list[str] = []
        skip_next = False
        for arg in arguments[1:]:  # drop the compiler itself
            if skip_next:
                skip_next = False
                continue
            if arg in ("-c", str(source)):
                continue
            if arg == "-o":
                skip_next = True
                continue
            args.append(arg)
        return args

    def check_file(self, path: Path) -> list[Finding] | None:
        """Findings for `path`, or None when this frontend cannot handle it
        (headers, files outside the compile db, parse errors)."""
        if path.suffix not in (".cpp", ".cc", ".cxx"):
            return None
        args = self.tu_args(path)
        if args is None:
            return None
        try:
            tu = self.index.parse(str(path), args=args)
        except Exception:  # noqa: BLE001
            return None
        if any(d.severity >= d.Error for d in tu.diagnostics):
            return None
        try:
            return self.check_tu(path, tu)
        except Exception as error:  # noqa: BLE001
            print(f"mstc_tidy: libclang rule failure on {path}: {error}; "
                  f"falling back to builtin frontend", file=sys.stderr)
            return None

    def check_tu(self, path: Path, tu) -> list[Finding]:
        ci = self.ci
        text = path.read_text(encoding="utf-8", errors="replace")
        raw_lines = text.splitlines()
        findings: list[Finding] = []

        def in_main_file(cursor) -> bool:
            loc = cursor.location
            return (loc.file is not None and
                    Path(loc.file.name).resolve() == path.resolve())

        def canonical(cursor) -> str:
            try:
                return cursor.type.get_canonical().spelling
            except Exception:  # noqa: BLE001
                return ""

        functions: list = []
        calls: dict[str, set[str]] = {}

        def walk(cursor, enclosing_usr: str | None):
            for child in cursor.get_children():
                kind = child.kind
                usr = enclosing_usr
                if kind in (ci.CursorKind.FUNCTION_DECL,
                            ci.CursorKind.CXX_METHOD,
                            ci.CursorKind.CONSTRUCTOR,
                            ci.CursorKind.DESTRUCTOR,
                            ci.CursorKind.FUNCTION_TEMPLATE) \
                        and child.is_definition() and in_main_file(child):
                    functions.append(child)
                    usr = child.get_usr()
                elif kind == ci.CursorKind.CALL_EXPR and usr is not None:
                    ref = child.referenced
                    if ref is not None:
                        calls.setdefault(usr, set()).add(ref.get_usr())
                if in_main_file(child):
                    self.rule_unordered(ci, child, path, findings)
                    self.rule_parallel_float(ci, child, path, findings)
                    self.rule_guarded_by(ci, child, path, raw_lines, findings)
                    self.rule_std_function_decl(ci, child, path, findings)
                walk(child, usr)

        walk(tu.cursor, None)

        # Hot reachability over USRs.
        def is_hot(cursor) -> bool:
            line = cursor.extent.start.line
            for probe in range(max(0, line - 4), line):
                if probe < len(raw_lines) and \
                        HOT_MARK_RE.search(raw_lines[probe]):
                    return True
            return False

        by_usr = {fn.get_usr(): fn for fn in functions}
        hot_usrs = {usr for usr, fn in by_usr.items() if is_hot(fn)}
        queue = list(hot_usrs)
        while queue:
            usr = queue.pop()
            for callee in calls.get(usr, ()):
                if callee in by_usr and callee not in hot_usrs:
                    hot_usrs.add(callee)
                    queue.append(callee)

        for usr in hot_usrs:
            self.rule_hot_body(ci, by_usr[usr], path, findings)

        return findings

    def rule_unordered(self, ci, cursor, path, findings):
        if cursor.kind != ci.CursorKind.CXX_FOR_RANGE_STMT:
            return
        if not is_library_code(path):
            return
        children = list(cursor.get_children())
        for child in children:
            if child.kind in (ci.CursorKind.DECL_STMT, ci.CursorKind.VAR_DECL,
                              ci.CursorKind.COMPOUND_STMT):
                continue
            type_name = ""
            try:
                type_name = child.type.get_canonical().spelling
            except Exception:  # noqa: BLE001
                pass
            if "unordered_map" in type_name or "unordered_set" in type_name \
                    or "unordered_multi" in type_name:
                findings.append(Finding(path, cursor.location.line,
                                        "unordered-iteration",
                                        f"range type '{child.spelling}'"))
            break

    def rule_parallel_float(self, ci, cursor, path, findings):
        if cursor.kind != ci.CursorKind.CALL_EXPR:
            return
        if cursor.spelling not in ("parallel_for", "parallel_for_chunked"):
            return

        def scan(node):
            for child in node.get_children():
                if child.kind == ci.CursorKind.COMPOUND_ASSIGNMENT_OPERATOR:
                    type_name = ""
                    try:
                        type_name = child.type.get_canonical().spelling
                    except Exception:  # noqa: BLE001
                        pass
                    tokens = {t.spelling for t in child.get_tokens()}
                    if type_name in ("float", "double", "long double") and \
                            tokens & {"+=", "-=", "*="}:
                        findings.append(Finding(
                            path, child.location.line,
                            "parallel-float-accumulation"))
                scan(child)

        for child in cursor.get_children():
            if child.kind == ci.CursorKind.LAMBDA_EXPR:
                scan(child)
            else:
                for sub in child.walk_preorder():
                    if sub.kind == ci.CursorKind.LAMBDA_EXPR:
                        scan(sub)
                        break

    def rule_guarded_by(self, ci, cursor, path, raw_lines, findings):
        if cursor.kind not in (ci.CursorKind.CLASS_DECL,
                               ci.CursorKind.STRUCT_DECL):
            return
        if not cursor.is_definition() or not is_library_code(path):
            return
        fields = [c for c in cursor.get_children()
                  if c.kind == ci.CursorKind.FIELD_DECL]
        mutexes = [f for f in fields
                   if MUTEX_TYPE_RE.search(
                       f.type.get_canonical().spelling or "")
                   or "Mutex" in (f.type.spelling or "")]
        if not mutexes:
            return
        mutex_usrs = {f.get_usr() for f in mutexes}
        for field in fields:
            if field.get_usr() in mutex_usrs:
                continue
            type_name = field.type.get_canonical().spelling or ""
            if FIELD_EXEMPT_RE.search(type_name) or \
                    field.type.is_const_qualified():
                continue
            line_index = field.extent.start.line - 1
            window = " ".join(
                raw_lines[line_index:field.extent.end.line])
            if GUARD_ANNOTATION_RE.search(window):
                continue
            findings.append(Finding(
                path, field.location.line, "missing-guarded-by",
                f"field '{field.spelling}' of mutex-owning "
                f"'{cursor.spelling}'"))

    def rule_std_function_decl(self, ci, cursor, path, findings):
        if cursor.kind not in (ci.CursorKind.VAR_DECL,
                               ci.CursorKind.FIELD_DECL,
                               ci.CursorKind.PARM_DECL):
            return
        if not (is_library_code(path) and
                any(part in HOT_PATH_PARTS for part in path.parts)):
            return
        type_name = cursor.type.get_canonical().spelling or ""
        if type_name.startswith("std::function<") or \
                "std::function<" in type_name:
            findings.append(Finding(path, cursor.location.line,
                                    "hot-std-function",
                                    f"'{cursor.spelling}'"))

    def rule_hot_body(self, ci, fn, path, findings):
        for cursor in fn.walk_preorder():
            if cursor.location.file is None:
                continue
            if cursor.kind == ci.CursorKind.CXX_NEW_EXPR:
                findings.append(Finding(
                    path, cursor.location.line, "hot-heap-allocation",
                    f"new expression in hot '{fn.spelling}'"))
            elif cursor.kind == ci.CursorKind.CALL_EXPR and \
                    cursor.spelling in ("make_unique", "make_shared"):
                findings.append(Finding(
                    path, cursor.location.line, "hot-heap-allocation",
                    f"{cursor.spelling} in hot '{fn.spelling}'"))
            elif cursor.kind == ci.CursorKind.VAR_DECL:
                type_name = cursor.type.get_canonical().spelling or ""
                if re.search(r"\bstd::(vector|deque|list|map|set|basic_string"
                             r"|unordered_\w+|function|queue|priority_queue"
                             r"|stack)<", type_name) and \
                        not type_name.endswith(("&", "*")):
                    findings.append(Finding(
                        path, cursor.location.line, "hot-heap-allocation",
                        f"local owning '{cursor.spelling}' in hot "
                        f"'{fn.spelling}'"))
                if "std::function<" in type_name and \
                        not any(part in HOT_PATH_PARTS
                                for part in path.parts):
                    findings.append(Finding(
                        path, cursor.location.line, "hot-std-function",
                        f"in hot '{fn.spelling}'"))


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def collect_files(paths: list[str]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(p for p in sorted(path.rglob("*"))
                         if p.suffix in CXX_SUFFIXES and p.is_file())
        elif path.is_file():
            files.append(path)
        else:
            print(f"mstc_tidy: no such file or directory: {path}",
                  file=sys.stderr)
            sys.exit(2)
    return files


def filter_suppressed(path: Path, findings: list[Finding]) -> list[Finding]:
    if not findings:
        return findings
    try:
        raw_lines = path.read_text(encoding="utf-8",
                                   errors="replace").splitlines()
    except OSError:
        return findings
    kept = []
    for finding in findings:
        if finding.rule not in allowed_rules(raw_lines, finding.line - 1):
            kept.append(finding)
    return kept


def main() -> int:
    parser = argparse.ArgumentParser(
        prog="mstc_tidy.py",
        description="AST-grade contract checker for the mstc repo.")
    parser.add_argument("paths", nargs="*", help="files or directories")
    parser.add_argument("--build-dir", type=Path, default=None,
                        help="build tree containing compile_commands.json "
                             "(located automatically when omitted)")
    parser.add_argument("--frontend", choices=("auto", "builtin", "libclang"),
                        default="auto",
                        help="auto (default): libclang when available, "
                             "builtin structural frontend otherwise")
    parser.add_argument("--list-rules", action="store_true",
                        help="print rule ids and descriptions, then exit")
    args = parser.parse_args()

    if args.list_rules:
        for rule, description in RULES.items():
            print(f"{rule}: {description}")
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        return 2

    files = collect_files(args.paths)

    libclang = None
    if args.frontend in ("auto", "libclang"):
        cindex, reason = probe_libclang()
        compdb = None
        if cindex is not None:
            compdb = find_compile_commands(args.build_dir, files)
            if compdb is None:
                reason = ("no compile_commands.json found — configure a "
                          "build tree (CMAKE_EXPORT_COMPILE_COMMANDS is ON "
                          "in every preset) or pass --build-dir")
        if cindex is not None and compdb is not None:
            try:
                libclang = LibclangFrontend(cindex, compdb)
            except Exception as error:  # noqa: BLE001
                reason = f"compile database unusable ({error})"
        if libclang is None:
            if args.frontend == "libclang":
                print(f"mstc_tidy: SKIPPED (not failed): libclang frontend "
                      f"unavailable: {reason}", file=sys.stderr)
                return 0
            print(f"mstc_tidy: note: libclang unavailable ({reason}); "
                  f"using the bundled structural frontend",
                  file=sys.stderr)

    findings: list[Finding] = []
    for path in files:
        per_file: list[Finding] | None = None
        if libclang is not None:
            per_file = libclang.check_file(path)
        if per_file is None:
            per_file = builtin_check_file(path)
        findings.extend(filter_suppressed(path, per_file))

    unique: dict[tuple, Finding] = {}
    for finding in findings:
        unique.setdefault(finding.key(), finding)
    ordered = sorted(unique.values(), key=Finding.key)
    for finding in ordered:
        print(finding)
    if ordered:
        print(f"mstc_tidy: {len(ordered)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
