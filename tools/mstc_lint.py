#!/usr/bin/env python3
"""mstc_lint: repo-specific determinism / correctness linter.

Every simulation run in this repository must be a pure function of
(config, seed), and parallel sweeps must be bit-identical to serial
execution. This linter mechanically enforces the coding rules that protect
those invariants (see docs/DEVELOPMENT.md):

  raw-random            std::rand / srand / std::random_device /
                        std::mt19937 / time(nullptr)-style seeding anywhere
                        outside src/util/prng.* — all randomness must flow
                        through the seeded Xoshiro256 / derive_seed API.
  parallel-float-reduce std::reduce / std::transform_reduce with an
                        std::execution policy. Parallel reduction reorders
                        floating-point addition, so sums change bit patterns
                        from run to run.
  iostream-in-lib       #include <iostream> in library code (src/). Library
                        code must not talk to std::cout/cerr; report through
                        return values and let tools/ front ends print.
  wall-clock            direct wall-clock / resource-usage reads
                        (std::chrono ...::now(), clock_gettime,
                        gettimeofday, getrusage) in library code outside
                        the two sanctioned TUs: src/obs/profile.cpp (the
                        repo's single clock read, obs::wall_now_ns()) and
                        src/util/rusage.cpp (the single getrusage read,
                        util::peak_rss_bytes()). Simulation state must
                        depend on sim-time only; machine facts flow
                        through those two functions so profiling and
                        resource ledgers stay observability concerns.
  all-pairs-scan        nested index loops touching fleet positions /
                        controllers arrays in library code. O(n^2) scans
                        over the fleet belong behind graph::SpatialGrid
                        candidate sets (sim::Medium,
                        core::for_each_snapshot_candidates); deliberate
                        brute-force baselines carry a suppression with a
                        justification. The spatial-grid implementation
                        itself is exempt by path.

Two former rules — `unordered-iteration` and `hot-path-std-function` —
moved to tools/mstc_tidy.py, which matches them structurally (declared
types across headers, hot-function reachability) instead of by regex, so a
violation is reported by exactly one tool (see docs/STATIC_ANALYSIS.md).

Suppression: append ``// mstc-lint: allow(<rule>)`` to the offending line or
place it alone on the line directly above. Suppressions are deliberate,
reviewable markers — use them only with a justification comment nearby.
mstc_tidy.py shares the same syntax under the ``mstc-tidy:`` tag; either
tag suppresses either tool (rule ids are disjoint, so a marker only ever
names one tool's rule).

Usage:
  mstc_lint.py <file-or-dir> [more paths...]
  mstc_lint.py --list-rules

Exit status: 0 when clean, 1 when any finding is reported, 2 on usage error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

CXX_SUFFIXES = {".cpp", ".cc", ".cxx", ".hpp", ".hh", ".h", ".ipp"}

# Shared suppression grammar: mstc_tidy.py imports this (and
# allowed_rules) so both static-analysis tools honor one syntax.
ALLOW_RE = re.compile(
    r"//\s*mstc-(?:lint|tidy):\s*allow\(([a-z0-9-]+(?:\s*,\s*[a-z0-9-]+)*)\)")

RULES = {
    "raw-random": (
        "raw randomness outside src/util/prng.*: route all randomness "
        "through util::Xoshiro256 / derive_seed so runs stay a pure "
        "function of (config, seed)"
    ),
    "parallel-float-reduce": (
        "parallel std::reduce/transform_reduce: reordered floating-point "
        "accumulation is not bit-stable across runs"
    ),
    "iostream-in-lib": (
        "#include <iostream> in library code: report through return "
        "values; only tools/ front ends may print"
    ),
    "wall-clock": (
        "wall-clock / resource-usage read in library code outside "
        "src/obs/profile.cpp and src/util/rusage.cpp: simulation state "
        "must depend on sim-time only; use obs::wall_now_ns() / "
        "obs::ScopedTimer for timing and util::peak_rss_bytes() for RSS"
    ),
    "all-pairs-scan": (
        "nested index loops over fleet positions/controllers: O(n^2) "
        "scans belong behind graph::SpatialGrid candidate sets "
        "(sim::Medium, core::for_each_snapshot_candidates); suppress "
        "deliberate brute-force baselines with a justification"
    ),
    "per-receiver-schedule": (
        "loop over a receiver set scheduling one simulator event per "
        "receiver: broadcast deliveries belong in a single batched "
        "Simulator::schedule_fanout event; suppress deliberate "
        "per-receiver timing (randomized backoffs, differential "
        "baselines) with a justification"
    ),
}

RAW_RANDOM_RE = re.compile(
    r"(?<![:\w])(?:"
    r"std::rand\b|std::srand\b|\brand\s*\(\s*\)|\bsrand\s*\(|"
    r"std::random_device\b|\brandom_device\b|"
    r"std::mt19937(?:_64)?\b|\bmt19937(?:_64)?\b|"
    r"\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)"
    r")"
)

PARALLEL_REDUCE_RE = re.compile(
    r"std\s*::\s*(?:transform_reduce|reduce)\s*\(\s*std\s*::\s*execution\s*::"
)

IOSTREAM_RE = re.compile(r"#\s*include\s*<iostream>")

WALL_CLOCK_RE = re.compile(
    r"(?:steady_clock|system_clock|high_resolution_clock)\s*::\s*now\s*\(|"
    r"\bclock_gettime\s*\(|\bgettimeofday\s*\(|\bgetrusage\s*\("
)

# Classic index-based for (two semicolons); range-fors have none and are
# never all-pairs by themselves.
INDEX_FOR_RE = re.compile(r"\bfor\s*\([^;]*;[^;]*;")
# Subscript into a fleet-indexed array: positions[v], controllers[u],
# scratch_positions_[v], ...
FLEET_SUBSCRIPT_RE = re.compile(r"(?:positions|controllers)\w*\s*\[")
# Lines the inner loop may trail the enclosing one by, and the statement
# window scanned for a fleet subscript.
ALL_PAIRS_LOOKBACK = 4
ALL_PAIRS_LOOKAHEAD = 7

# per-receiver-schedule: a for-loop iterating a receiver/target set whose
# body (the lookahead window) pushes an event per iteration. schedule_fanout
# itself is deliberately absent from the call pattern — routing the loop
# through the batched API is the fix.
RECEIVER_LOOP_RE = re.compile(r"\bfor\s*\([^)]*(?:receiver|target)")
SCHEDULE_CALL_RE = re.compile(r"\bschedule_(?:serial|local|at|in)\s*\(")
PER_RECEIVER_LOOKAHEAD = 10


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string/char literals, preserving line
    structure so findings keep accurate line numbers."""
    out = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            end = text.find("\n", i)
            end = n if end == -1 else end
            out.append(" " * (end - i))
            i = end
        elif ch == "/" and nxt == "*":
            end = text.find("*/", i + 2)
            end = n if end == -1 else end + 2
            chunk = text[i:end]
            out.append("".join("\n" if c == "\n" else " " for c in chunk))
            i = end
        elif ch in ('"', "'"):
            quote = ch
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote or text[j] == "\n":
                    break
                j += 1
            j = min(j + 1, n)
            out.append(quote + " " * max(0, j - i - 2) + quote)
            i = j
        else:
            out.append(ch)
            i += 1
    return "".join(out)


class Finding:
    def __init__(self, path: Path, line: int, rule: str, detail: str = ""):
        self.path = path
        self.line = line
        self.rule = rule
        self.detail = detail

    def __str__(self) -> str:
        message = RULES[self.rule]
        if self.detail:
            message = f"{message} [{self.detail}]"
        return f"{self.path}:{self.line}: [{self.rule}] {message}"


def allowed_rules(raw_lines: list[str], index: int) -> set[str]:
    """Rules suppressed for raw_lines[index] (same line or the line above)."""
    rules: set[str] = set()
    for probe in (index, index - 1):
        if 0 <= probe < len(raw_lines):
            match = ALLOW_RE.search(raw_lines[probe])
            if match:
                rules.update(r.strip() for r in match.group(1).split(","))
    return rules


def is_library_code(path: Path) -> bool:
    return "src" in path.parts


def is_prng_unit(path: Path) -> bool:
    return path.name in ("prng.hpp", "prng.cpp") and "util" in path.parts


def is_clock_unit(path: Path) -> bool:
    """The two TUs allowed to read machine clocks/usage directly:
    src/obs/profile.cpp (wall_now_ns) and src/util/rusage.cpp
    (peak_rss_bytes). Everything else in src/ — including the rest of
    src/obs/ — must go through those functions."""
    return (path.name == "profile.cpp" and "obs" in path.parts) or (
        path.name == "rusage.cpp" and "util" in path.parts)


def is_spatial_index_unit(path: Path) -> bool:
    """The spatial grid is the sanctioned replacement for all-pairs scans;
    its own cell-walk loops are exempt from the all-pairs rule."""
    return path.name in ("spatial_grid.hpp", "spatial_grid.cpp")


def lint_file(path: Path) -> list[Finding]:
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as error:
        print(f"mstc_lint: cannot read {path}: {error}", file=sys.stderr)
        return []
    raw_lines = text.splitlines()
    stripped = strip_comments_and_strings(text)
    stripped_lines = stripped.splitlines()

    findings: list[Finding] = []

    def report(index: int, rule: str, detail: str = "") -> None:
        if rule not in allowed_rules(raw_lines, index):
            findings.append(Finding(path, index + 1, rule, detail))

    for index, line in enumerate(stripped_lines):
        if not is_prng_unit(path) and RAW_RANDOM_RE.search(line):
            report(index, "raw-random")

        if PARALLEL_REDUCE_RE.search(line):
            report(index, "parallel-float-reduce")

        if is_library_code(path) and IOSTREAM_RE.search(line):
            report(index, "iostream-in-lib")

        if (is_library_code(path) and not is_clock_unit(path)
                and WALL_CLOCK_RE.search(line)):
            report(index, "wall-clock")

        # all-pairs-scan: an index for-loop nested directly inside another
        # (the enclosing line must leave its block open, i.e. end with '{',
        # so a completed one-line loop a few lines up does not count) whose
        # body subscripts a fleet-indexed array.
        # per-receiver-schedule: a receiver-set loop whose body schedules a
        # simulator event per receiver instead of one batched fan-out.
        if is_library_code(path) and RECEIVER_LOOP_RE.search(line):
            window = stripped_lines[index:index + PER_RECEIVER_LOOKAHEAD]
            for offset, body_line in enumerate(window[1:], start=1):
                if SCHEDULE_CALL_RE.search(body_line):
                    report(index, "per-receiver-schedule")
                    break
                # A nested loop owns any schedule call after it; it is
                # scanned (and reported) on its own line.
                if re.search(r"\bfor\s*\(", body_line):
                    break

        if (is_library_code(path) and not is_spatial_index_unit(path)
                and INDEX_FOR_RE.search(line)):
            enclosing = any(
                INDEX_FOR_RE.search(stripped_lines[k])
                and stripped_lines[k].rstrip().endswith("{")
                for k in range(max(0, index - ALL_PAIRS_LOOKBACK), index))
            if enclosing:
                window = "\n".join(
                    stripped_lines[index:index + ALL_PAIRS_LOOKAHEAD])
                if FLEET_SUBSCRIPT_RE.search(window):
                    report(index, "all-pairs-scan")

    return findings


def collect_files(paths: list[str]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(
                p for p in sorted(path.rglob("*"))
                if p.suffix in CXX_SUFFIXES and p.is_file()
            )
        elif path.is_file():
            files.append(path)
        else:
            print(f"mstc_lint: no such file or directory: {path}",
                  file=sys.stderr)
            sys.exit(2)
    return files


def main() -> int:
    parser = argparse.ArgumentParser(
        prog="mstc_lint.py",
        description="Determinism / correctness linter for the mstc repo.")
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument("--list-rules", action="store_true",
                        help="print rule ids and descriptions, then exit")
    args = parser.parse_args()

    if args.list_rules:
        for rule, description in RULES.items():
            print(f"{rule}: {description}")
        return 0

    if not args.paths:
        parser.print_usage(sys.stderr)
        return 2

    findings: list[Finding] = []
    for path in collect_files(args.paths):
        findings.extend(lint_file(path))

    for finding in findings:
        print(finding)
    if findings:
        print(f"mstc_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
