#!/usr/bin/env python3
"""bench_check: benchmark regression gate.

Compares freshly produced bench JSON (BENCH_kernel.json /
BENCH_medium.json / BENCH_snapshot.json) against the checked-in baselines,
separating what must match exactly from what only a machine can change:

  deterministic columns   event / query / link counts, cache hit counts,
                          skip rates, auto-mode picks and the
                          results_identical flags are pure functions of
                          (config, seed) — any drift means the simulation
                          changed and the baselines need a deliberate
                          regeneration, so they are compared exactly.
  machine-normalized      wall-clock throughput differs per machine, so
  ratios                  raw wall columns are never gated. Ratios of two
                          measurements from the SAME file (grid-vs-brute
                          wall_speedup, snapshot speedup, cache-on vs
                          cache-off events/s, trace-cache amortization)
                          cancel the machine out; a fresh ratio may not
                          fall below baseline * (1 - tolerance). Ratios
                          whose slow side ran under --min-wall seconds in
                          the baseline are skipped as noise.
  allocation columns      allocs_per_event is deterministic for one
                          toolchain but shifts across stdlib versions; a
                          fresh value may not exceed
                          baseline + max(0.05, 25% of baseline).
  scaling slope           bench_parallel's serial (calendar-queue) arm
                          must keep large-fleet events/s at a healthy
                          fraction of small-fleet events/s; both sides
                          come from one file, so the guard runs on any
                          machine. Speedup gates that DO need real cores
                          announce their bypass instead of skipping
                          silently.

Also supports --self FILE: schema / internal-invariant checks on a single
bench JSON (used by the `bench_check_baselines` ctest to keep the
checked-in baselines well-formed).

Usage:
  bench_check.py --compare fresh/BENCH_kernel.json BENCH_kernel.json \
                 [--compare ...] [--tolerance 0.5] [--min-wall 0.05]
  bench_check.py --self BENCH_kernel.json [--self ...]

Exit status: 0 when every check passes, 1 on regression / invariant
failure, 2 on unreadable or unrecognized input.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

PROBLEMS: list[str] = []
CHECKS = 0


def problem(message: str) -> None:
    PROBLEMS.append(message)


def check(condition: bool, message: str) -> None:
    global CHECKS
    CHECKS += 1
    if not condition:
        problem(message)


def load(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"bench_check: cannot read {path}: {error}", file=sys.stderr)
        sys.exit(2)
    if not isinstance(data, dict) or "bench" not in data:
        print(f"bench_check: {path} has no 'bench' discriminator",
              file=sys.stderr)
        sys.exit(2)
    version = str(data.get("version", ""))
    if "-dirty" in version:
        # Loud: a -dirty baseline or fresh run is not reproducible from any
        # commit, so whatever it gates cannot be re-derived later.
        print(f"bench_check: WARNING: {path} was produced by a -dirty build "
              f"('{version}') — its numbers are not reproducible from a "
              "commit; regenerate from a clean tree before trusting gates",
              file=sys.stderr)
    return data


def check_ratio(name: str, fresh: float, base: float, tolerance: float,
                baseline_floor_wall: float, min_wall: float) -> None:
    """Gates a machine-normalized ratio: fresh may not fall below
    baseline * (1 - tolerance). Skipped when the baseline's slow side ran
    under min_wall seconds (too noisy to gate) or the baseline ratio is
    degenerate."""
    if baseline_floor_wall < min_wall or base <= 0.0:
        return
    check(fresh >= base * (1.0 - tolerance),
          f"{name}: ratio regressed {base:.2f} -> {fresh:.2f} "
          f"(floor {base * (1.0 - tolerance):.2f})")


def check_allocs(name: str, fresh: float, base: float) -> None:
    ceiling = base + max(0.05, 0.25 * base)
    check(fresh <= ceiling,
          f"{name}: allocs_per_event grew {base:.4f} -> {fresh:.4f} "
          f"(ceiling {ceiling:.4f})")


def index_rows(rows: list[dict], key: str) -> dict:
    return {row[key]: row for row in rows if key in row}


# --- bench_kernel ----------------------------------------------------------

def compare_kernel(fresh: dict, base: dict, args) -> None:
    fresh_rows = index_rows(fresh.get("results", []), "label")
    base_rows = index_rows(base.get("results", []), "label")
    shared = sorted(set(fresh_rows) & set(base_rows))
    check(bool(shared), "bench_kernel: no common row labels to compare")
    for label in shared:
        fr, br = fresh_rows[label], base_rows[label]
        check(fr.get("results_identical") is True,
              f"kernel[{label}]: cache-on run diverged from cache-off "
              "(results_identical false)")
        for mode in ("cache_off", "cache_on"):
            check(fr[mode]["events"] == br[mode]["events"],
                  f"kernel[{label}].{mode}: event count changed "
                  f"{br[mode]['events']} -> {fr[mode]['events']} — "
                  "simulation behavior drifted; regenerate baselines "
                  "deliberately if intended")
            check(abs(fr[mode]["skip_rate"] - br[mode]["skip_rate"]) <= 1e-3,
                  f"kernel[{label}].{mode}: skip_rate changed "
                  f"{br[mode]['skip_rate']:.4f} -> "
                  f"{fr[mode]['skip_rate']:.4f}")
            check_allocs(f"kernel[{label}].{mode}",
                         fr[mode]["allocs_per_event"],
                         br[mode]["allocs_per_event"])
        # Cache-on vs cache-off throughput from the same file cancels the
        # machine; gate the ratio-of-ratios.
        def cache_ratio(row: dict) -> float:
            off = row["cache_off"]["events_per_s"]
            return row["cache_on"]["events_per_s"] / off if off > 0 else 0.0
        check_ratio(f"kernel[{label}]: cache_on/cache_off events/s",
                    cache_ratio(fr), cache_ratio(br), args.tolerance,
                    min(br["cache_off"]["wall_s"], br["cache_on"]["wall_s"]),
                    args.min_wall)
        if "speedup_vs_pre_pr" in fr and "speedup_vs_pre_pr" in br:
            check_ratio(f"kernel[{label}]: speedup_vs_pre_pr",
                        fr["speedup_vs_pre_pr"], br["speedup_vs_pre_pr"],
                        args.tolerance, br["cache_on"]["wall_s"],
                        args.min_wall)


def self_kernel(data: dict) -> None:
    rows = data.get("results", [])
    check(bool(rows), "bench_kernel: empty results")
    for row in rows:
        label = row.get("label", "?")
        check(row.get("results_identical") is True,
              f"kernel[{label}]: results_identical is not true")
        for mode in ("cache_off", "cache_on"):
            check(mode in row, f"kernel[{label}]: missing '{mode}'")
            if mode in row:
                check(row[mode].get("events", 0) > 0,
                      f"kernel[{label}].{mode}: zero events")
        if "cache_off" in row and "cache_on" in row:
            check(row["cache_off"]["events"] == row["cache_on"]["events"],
                  f"kernel[{label}]: event counts differ across cache modes")


# --- bench_scale (BENCH_medium.json) ---------------------------------------

SCALE_EXACT = ("queries", "distance_checks", "accepted", "grid_rebuilds")


def compare_scale(fresh: dict, base: dict, args) -> None:
    fresh_rows = index_rows(fresh.get("results", []), "nodes")
    base_rows = index_rows(base.get("results", []), "nodes")
    shared = sorted(set(fresh_rows) & set(base_rows))
    check(bool(shared), "bench_scale: no common node counts to compare")
    for nodes in shared:
        fr, br = fresh_rows[nodes], base_rows[nodes]
        check(fr.get("results_identical") is True,
              f"scale[n={nodes}]: grid diverged from brute "
              "(results_identical false)")
        check(fr.get("auto_picked") == br.get("auto_picked"),
              f"scale[n={nodes}]: auto mode picked "
              f"'{fr.get('auto_picked')}' (baseline "
              f"'{br.get('auto_picked')}')")
        for mode in ("brute", "grid", "auto"):
            for column in SCALE_EXACT:
                check(fr[mode][column] == br[mode][column],
                      f"scale[n={nodes}].{mode}.{column}: "
                      f"{br[mode][column]} -> {fr[mode][column]} — "
                      "deterministic column drifted")
        check_ratio(f"scale[n={nodes}]: wall_speedup", fr["wall_speedup"],
                    br["wall_speedup"], args.tolerance, br["brute"]["wall_s"],
                    args.min_wall)


def self_scale(data: dict) -> None:
    rows = data.get("results", [])
    check(bool(rows), "bench_scale: empty results")
    for row in rows:
        nodes = row.get("nodes", "?")
        check(row.get("results_identical") is True,
              f"scale[n={nodes}]: results_identical is not true")
        modes = [m for m in ("brute", "grid", "auto") if m in row]
        check(len(modes) == 3, f"scale[n={nodes}]: missing a serving mode")
        accepted = {row[m]["accepted"] for m in modes}
        check(len(accepted) == 1,
              f"scale[n={nodes}]: accepted counts differ across modes "
              f"({sorted(accepted)})")


# --- bench_snapshot --------------------------------------------------------

def compare_snapshot(fresh: dict, base: dict, args) -> None:
    fresh_rows = index_rows(fresh.get("snapshot_rows", []), "label")
    base_rows = index_rows(base.get("snapshot_rows", []), "label")
    shared = sorted(set(fresh_rows) & set(base_rows))
    check(bool(shared), "bench_snapshot: no common row labels to compare")
    for label in shared:
        fr, br = fresh_rows[label], base_rows[label]
        check(fr.get("results_identical") is True,
              f"snapshot[{label}]: grid diverged from brute "
              "(results_identical false)")
        for mode in ("brute", "grid"):
            for column in ("snapshots", "links_examined"):
                check(fr[mode][column] == br[mode][column],
                      f"snapshot[{label}].{mode}.{column}: "
                      f"{br[mode][column]} -> {fr[mode][column]} — "
                      "deterministic column drifted")
        check_ratio(f"snapshot[{label}]: speedup", fr["speedup"],
                    br["speedup"], args.tolerance,
                    br["brute"]["snapshot_wall_s"], args.min_wall)

    fs, bs = fresh.get("trace_cache_sweep"), base.get("trace_cache_sweep")
    if fs and bs:
        check(fs.get("results_identical") is True,
              "snapshot.trace_cache_sweep: shared traces diverged from "
              "regenerated (results_identical false)")
        for section, column in (("regenerate", "cache_misses"),
                                ("shared", "cache_hits"),
                                ("shared", "cache_misses")):
            check(fs[section][column] == bs[section][column],
                  f"snapshot.trace_cache_sweep.{section}.{column}: "
                  f"{bs[section][column]} -> {fs[section][column]}")
        check_ratio("snapshot.trace_cache_sweep: setup_amortization",
                    fs["setup_amortization"], bs["setup_amortization"],
                    args.tolerance, bs["regenerate"]["setup_wall_s"],
                    # Setup runs are short; gate down to 10 ms.
                    min(args.min_wall, 0.01))


def self_snapshot(data: dict) -> None:
    rows = data.get("snapshot_rows", [])
    check(bool(rows), "bench_snapshot: empty snapshot_rows")
    for row in rows:
        label = row.get("label", "?")
        check(row.get("results_identical") is True,
              f"snapshot[{label}]: results_identical is not true")
        if "brute" in row and "grid" in row:
            check(row["brute"]["snapshots"] == row["grid"]["snapshots"],
                  f"snapshot[{label}]: snapshot counts differ across modes")
    sweep = data.get("trace_cache_sweep")
    check(sweep is not None, "bench_snapshot: missing trace_cache_sweep")
    if sweep:
        check(sweep.get("results_identical") is True,
              "snapshot.trace_cache_sweep: results_identical is not true")


# --- bench_parallel --------------------------------------------------------

# Minimum cores for speedup gating: below this the machine cannot express
# shard parallelism and the serial/sharded wall ratio is pure noise.
PARALLEL_MIN_CORES = 4
# Absolute speedup floor on capable machines for large fleets.
PARALLEL_SPEEDUP_FLOOR = 2.5
PARALLEL_SPEEDUP_FLOOR_NODES = 10000
# Scaling-slope guard: serial (calendar-queue) events/s at the largest
# fleet may not fall below this fraction of the small-fleet rate. The
# heap queue's log-factor put the measured ratio near 0.24; the calendar
# queue holds it well above this floor, so a slide back under it means
# the O(1) scheduler stopped doing its job. Single-machine ratio, so it
# gates on any core count.
PARALLEL_SCALING_FLOOR = 0.40
PARALLEL_SCALING_SMALL_NODES = 2500
PARALLEL_SCALING_LARGE_NODES = 100000


def parallel_scaling_guard(data: dict, path: str) -> None:
    """events/s-vs-n slope: large-fleet serial throughput must stay a
    healthy fraction of small-fleet throughput (flat-ish scaling is the
    calendar queue's whole point)."""
    by_nodes = index_rows(data.get("results", []), "nodes")
    small = by_nodes.get(PARALLEL_SCALING_SMALL_NODES)
    large = by_nodes.get(PARALLEL_SCALING_LARGE_NODES)
    if small is None or large is None:
        return  # smoke-sized file; nothing to gate
    small_rate = small["serial"]["events_per_s"]
    large_rate = large["serial"]["events_per_s"]
    if small_rate <= 0.0:
        problem(f"parallel({path}): zero small-fleet events/s")
        return
    ratio = large_rate / small_rate
    check(ratio >= PARALLEL_SCALING_FLOOR,
          f"parallel({path}): serial events/s scaling slope "
          f"n={PARALLEL_SCALING_LARGE_NODES} / "
          f"n={PARALLEL_SCALING_SMALL_NODES} = {ratio:.2f}, below the "
          f"{PARALLEL_SCALING_FLOOR} floor — large-fleet scheduling "
          "degraded")


def compare_parallel(fresh: dict, base: dict, args) -> None:
    fresh_rows = index_rows(fresh.get("results", []), "label")
    base_rows = index_rows(base.get("results", []), "label")
    shared = sorted(set(fresh_rows) & set(base_rows))
    check(bool(shared), "bench_parallel: no common row labels to compare")
    fresh_cores = fresh.get("config", {}).get("cores", 0)
    base_cores = base.get("config", {}).get("cores", 0)
    gate_speedup = (fresh_cores >= PARALLEL_MIN_CORES
                    and base_cores >= PARALLEL_MIN_CORES)
    if not gate_speedup:
        # Loud bypass, not a silent skip: a laptop-class runner should say
        # so instead of green-lighting a parallelism regression.
        print(f"bench_parallel: speedup gates BYPASSED — fresh machine has "
              f"{fresh_cores} cores, baseline had {base_cores} "
              f"(both must have >= {PARALLEL_MIN_CORES} to gate the "
              "serial/sharded wall ratio)")
    for label in shared:
        fr, br = fresh_rows[label], base_rows[label]
        check(fr.get("results_identical") is True,
              f"parallel[{label}]: queue / sharded arms diverged from the "
              "heap reference (results_identical false)")
        # Event counts are pure functions of (config, seed) — per arm.
        # (The sharded arm legitimately differs from the serial ones: the
        # sharded kernel adds one deferred-refresh event per Hello.)
        for arm in ("serial_heap", "serial", "sharded"):
            if arm not in fr or arm not in br:
                continue  # pre-queue baseline without serial_heap
            check(fr[arm]["events"] == br[arm]["events"],
                  f"parallel[{label}].{arm}: event count changed "
                  f"{br[arm]['events']} -> {fr[arm]['events']} — "
                  "simulation behavior drifted; regenerate baselines "
                  "deliberately if intended")
        # The queue backend reorders nothing: the calendar arm must pop
        # the exact event stream the heap arm does.
        if "serial_heap" in fr:
            check(fr["serial"]["events"] == fr["serial_heap"]["events"],
                  f"parallel[{label}]: calendar queue processed "
                  f"{fr['serial']['events']} events vs heap's "
                  f"{fr['serial_heap']['events']} — queue backend changed "
                  "the schedule")
        # Barrier schedule and cross-shard traffic are deterministic too
        # (shard resolution depends on geometry, never on the machine).
        check(fr["sharded"]["kernel_barriers"] ==
              br["sharded"]["kernel_barriers"],
              f"parallel[{label}]: kernel_barriers changed "
              f"{br['sharded']['kernel_barriers']} -> "
              f"{fr['sharded']['kernel_barriers']}")
        check(abs(fr["sharded"]["cross_shard_share"] -
                  br["sharded"]["cross_shard_share"]) <= 1e-3,
              f"parallel[{label}]: cross_shard_share changed "
              f"{br['sharded']['cross_shard_share']:.4f} -> "
              f"{fr['sharded']['cross_shard_share']:.4f}")
        # Calendar-vs-heap wall ratio cancels the machine (both arms run
        # serial on the same box), so it gates on any core count.
        if "queue_speedup" in fr and "queue_speedup" in br:
            check_ratio(f"parallel[{label}]: queue_speedup",
                        fr["queue_speedup"], br["queue_speedup"],
                        args.tolerance, br["serial_heap"]["wall_s"],
                        args.min_wall)
        # Sharded speedup is machine-bound: regression-gate it only when
        # both machines could express parallelism at all, AND the arm's
        # recorded worker threads show it actually ran in parallel — a
        # row measured at threads == 1 is a serial run wearing a sharded
        # label, and its speedup is noise whatever the core count says.
        fresh_threads = fr.get("sharded", {}).get("threads", 0)
        if gate_speedup and fresh_threads <= 1:
            print(f"bench_parallel[{label}]: speedup gate REFUSED — the "
                  f"sharded arm recorded {fresh_threads} worker thread(s); "
                  "the run never expressed parallelism, so its speedup "
                  "cannot be gated")
        if gate_speedup and fresh_threads > 1:
            check_ratio(f"parallel[{label}]: speedup", fr["speedup"],
                        br["speedup"], args.tolerance,
                        br["serial"]["wall_s"], args.min_wall)
        # Absolute floor on capable machines: large fleets must show the
        # sharded kernel actually paying off.
        if (fresh_cores >= PARALLEL_MIN_CORES
                and fresh_threads > 1
                and fr.get("nodes", 0) >= PARALLEL_SPEEDUP_FLOOR_NODES
                and fr["serial"]["wall_s"] >= args.min_wall):
            check(fr["speedup"] >= PARALLEL_SPEEDUP_FLOOR,
                  f"parallel[{label}]: speedup {fr['speedup']:.2f} below "
                  f"the {PARALLEL_SPEEDUP_FLOOR}x floor on a "
                  f"{fresh_cores}-core machine")
    parallel_scaling_guard(fresh, "fresh")


def self_parallel(data: dict) -> None:
    rows = data.get("results", [])
    check(bool(rows), "bench_parallel: empty results")
    config = data.get("config", {})
    check(config.get("cores", 0) > 0, "bench_parallel: config lacks cores")
    check(config.get("threads", 0) > 0, "bench_parallel: config lacks threads")
    for row in rows:
        label = row.get("label", "?")
        check(row.get("results_identical") is True,
              f"parallel[{label}]: results_identical is not true")
        for arm in ("serial_heap", "serial", "sharded"):
            check(arm in row, f"parallel[{label}]: missing '{arm}'")
            if arm in row:
                check(row[arm].get("events", 0) > 0,
                      f"parallel[{label}].{arm}: zero events")
                check(row[arm].get("threads", 0) > 0,
                      f"parallel[{label}].{arm}: zero threads recorded")
                check(row[arm].get("shards", 0) > 0,
                      f"parallel[{label}].{arm}: zero shards recorded")
        check(row.get("serial_heap", {}).get("queue") == "heap",
              f"parallel[{label}]: serial_heap arm not on the heap queue")
        check(row.get("serial", {}).get("queue") == "calendar",
              f"parallel[{label}]: serial arm not on the calendar queue")
        if "sharded" in row:
            check(row["sharded"].get("kernel_barriers", 0) > 0,
                  f"parallel[{label}]: sharded arm never engaged "
                  "(zero kernel_barriers)")
        if "serial" in row and "sharded" in row:
            check(row["sharded"]["events"] >= row["serial"]["events"],
                  f"parallel[{label}]: sharded arm processed fewer events "
                  "than serial (deferred refreshes missing)")
        if "serial" in row and "serial_heap" in row:
            check(row["serial"]["events"] == row["serial_heap"]["events"],
                  f"parallel[{label}]: heap and calendar arms processed "
                  "different event counts")
    parallel_scaling_guard(data, "self")


HANDLERS = {
    "bench_kernel": (compare_kernel, self_kernel),
    "bench_scale": (compare_scale, self_scale),
    "bench_snapshot": (compare_snapshot, self_snapshot),
    "bench_parallel": (compare_parallel, self_parallel),
}


def main() -> int:
    parser = argparse.ArgumentParser(
        prog="bench_check.py",
        description="Benchmark regression gate (see module docstring).")
    parser.add_argument("--compare", nargs=2, action="append", default=[],
                        metavar=("FRESH", "BASELINE"),
                        help="compare a fresh bench JSON against a baseline")
    parser.add_argument("--self", dest="self_checks", action="append",
                        default=[], metavar="FILE",
                        help="schema / invariant check on one bench JSON")
    parser.add_argument("--tolerance", type=float, default=0.5,
                        help="allowed relative drop in machine-normalized "
                             "ratios (default: 0.5)")
    parser.add_argument("--min-wall", type=float, default=0.05,
                        help="skip ratio gates whose baseline slow side ran "
                             "under this many seconds (default: 0.05)")
    args = parser.parse_args()

    if not args.compare and not args.self_checks:
        parser.print_usage(sys.stderr)
        return 2

    for path in args.self_checks:
        data = load(path)
        handler = HANDLERS.get(data["bench"])
        if handler is None:
            print(f"bench_check: unknown bench '{data['bench']}' in {path}",
                  file=sys.stderr)
            return 2
        handler[1](data)

    for fresh_path, base_path in args.compare:
        fresh, base = load(fresh_path), load(base_path)
        if fresh["bench"] != base["bench"]:
            print(f"bench_check: bench mismatch {fresh['bench']} vs "
                  f"{base['bench']} ({fresh_path} vs {base_path})",
                  file=sys.stderr)
            return 2
        handler = HANDLERS.get(fresh["bench"])
        if handler is None:
            print(f"bench_check: unknown bench '{fresh['bench']}'",
                  file=sys.stderr)
            return 2
        handler[0](fresh, base, args)

    for entry in PROBLEMS:
        print(entry)
    if PROBLEMS:
        print(f"bench_check: {len(PROBLEMS)} of {CHECKS} checks FAILED",
              file=sys.stderr)
        return 1
    print(f"bench_check: {CHECKS} checks OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
