// mstc_dtn — command-line front end for the mobility-assisted (epidemic /
// store-carry-forward) routing simulator.
//
//   mstc_dtn --nodes 40 --range 100 --speed 15 --messages 50
//   mstc_dtn --trace dtn.trace.json --metrics-out dtn.json
#include <cstdio>
#include <string>
#include <vector>

#include "obs/manifest.hpp"
#include "obs/metrics_export.hpp"
#include "obs/probe.hpp"
#include "routing/epidemic.hpp"
#include "util/args.hpp"
#include "util/options.hpp"
#include "util/rusage.hpp"

namespace {

constexpr const char* kHelp = R"(mstc_dtn — mobility-assisted routing simulator

options (defaults in brackets):
  --nodes N        node count                                     [40]
  --range R        transmission range, m                          [100]
  --speed V        average node speed, m/s                        [10]
  --mobility NAME  waypoint | static | walk | gauss               [waypoint]
  --relay-hops H   max relay hops (0 = direct-only, 1 = two-hop)  [64]
  --buffer N       per-node buffer capacity (0 = unlimited)       [0]
  --messages M     messages to inject                             [50]
  --duration T     simulated seconds                              [120]
  --seed S         RNG seed                                       [1]

observability (all off by default; see docs/OBSERVABILITY.md):
  --trace FILE        write a Chrome trace_event JSON (Perfetto)
  --trace-jsonl FILE  write the event trace as JSON Lines
  --metrics-out FILE  write a run manifest (config, counters, profile)
  --metrics-stream FILE  write the run's counters + ledger as a JSON Lines
                      metrics snapshot (env: MSTC_METRICS_STREAM)
  --metrics-prom FILE Prometheus text-exposition snapshot
                      (env: MSTC_METRICS_PROM)
)";

std::string format_double(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%g", value);
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mstc;
  const util::ArgParser args(argc, argv);
  if (args.get_flag("help")) {
    std::fputs(kHelp, stdout);
    return 0;
  }

  routing::EpidemicConfig cfg;
  cfg.node_count = static_cast<std::size_t>(args.get("nodes", 40L));
  cfg.range = args.get("range", 100.0);
  cfg.average_speed = args.get("speed", 10.0);
  cfg.mobility_model = args.get("mobility", std::string("waypoint"));
  cfg.max_relay_hops = static_cast<std::size_t>(args.get("relay-hops", 64L));
  cfg.buffer_limit = static_cast<std::size_t>(args.get("buffer", 0L));
  cfg.message_count = static_cast<std::size_t>(args.get("messages", 50L));
  cfg.duration = args.get("duration", 120.0);
  cfg.seed = static_cast<std::uint64_t>(args.get("seed", 1L));
  const std::string trace_path = args.get("trace", std::string());
  const std::string trace_jsonl_path = args.get("trace-jsonl", std::string());
  const std::string metrics_path = args.get("metrics-out", std::string());
  const std::string stream_path = args.get(
      "metrics-stream", util::env_or("MSTC_METRICS_STREAM", std::string()));
  const std::string prom_path = args.get(
      "metrics-prom", util::env_or("MSTC_METRICS_PROM", std::string()));
  for (const auto& name : args.unknown()) {
    std::fprintf(stderr, "error: unknown option --%s (try --help)\n",
                 name.c_str());
    return 2;
  }

  const bool want_trace = !trace_path.empty() || !trace_jsonl_path.empty();
  const bool streaming = !stream_path.empty() || !prom_path.empty();
  const bool observing = want_trace || !metrics_path.empty() || streaming;

  try {
    obs::RunObservation observation;
    observation.trace_on = want_trace;
    // The ledger's phase split (streamed + manifested) needs the profiler.
    observation.profile_on = !metrics_path.empty() || streaming;
    const std::uint64_t run_start = observing ? obs::wall_now_ns() : 0;
    const std::uint64_t allocations_before =
        observing ? obs::allocation_count() : 0;
    const auto result =
        routing::run_epidemic(cfg, observing ? &observation : nullptr);
    if (observing) {
      observation.ledger.capture(observation, obs::wall_now_ns() - run_start,
                                 util::peak_rss_bytes(), allocations_before);
    }
    std::printf(
        "substrate snapshot connectivity  %.3f (how partitioned the raw "
        "graph was)\n"
        "delivery ratio                   %.3f\n"
        "mean delay of delivered msgs     %.1f s (max %.1f)\n"
        "mean copies per message          %.1f\n",
        result.snapshot_connectivity, result.delivery_ratio,
        result.delay.count() > 0 ? result.delay.mean() : 0.0,
        result.delay.count() > 0 ? result.delay.max() : 0.0,
        result.mean_copies_per_message);

    if (observing) {
      if (streaming) {
        obs::MetricsExporter exporter;
        obs::MetricsExporter::Options options;
        options.jsonl_path = stream_path;
        options.prom_path = prom_path;
        options.job = "mstc_dtn";
        if (!exporter.open(options)) {
          std::fprintf(stderr, "error: cannot open metrics stream (%s)\n",
                       (stream_path.empty() ? prom_path : stream_path).c_str());
          return 1;
        }
        exporter.record(observation);
        exporter.close();
      }
      const std::vector<const obs::MemoryTraceSink*> sinks{
          &observation.trace};
      if (!trace_path.empty() &&
          !obs::write_chrome_trace(trace_path, sinks)) {
        std::fprintf(stderr, "error: cannot write %s\n", trace_path.c_str());
        return 1;
      }
      if (!trace_jsonl_path.empty() &&
          !obs::write_jsonl(trace_jsonl_path, sinks)) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     trace_jsonl_path.c_str());
        return 1;
      }
      if (!metrics_path.empty()) {
        obs::Manifest manifest;
        manifest.tool = "mstc_dtn";
        manifest.seed = cfg.seed;
        manifest.configurations = 1;
        manifest.repeats = 1;
        manifest.config = {
            {"mobility", cfg.mobility_model},
            {"speed", format_double(cfg.average_speed)},
            {"nodes", std::to_string(cfg.node_count)},
            {"range", format_double(cfg.range)},
            {"relay_hops", std::to_string(cfg.max_relay_hops)},
            {"buffer_limit", std::to_string(cfg.buffer_limit)},
            {"messages", std::to_string(cfg.message_count)},
            {"duration", format_double(cfg.duration)},
        };
        manifest.counters = &observation.counters;
        manifest.profiler = &observation.profiler;
        manifest.peak_rss_bytes = util::peak_rss_bytes();
        obs::LedgerSummary ledger_summary;
        ledger_summary.add(observation.ledger);
        manifest.ledger = &ledger_summary;
        if (!obs::write_manifest(metrics_path, manifest)) {
          std::fprintf(stderr, "error: cannot write %s\n",
                       metrics_path.c_str());
          return 1;
        }
      }
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  return 0;
}
