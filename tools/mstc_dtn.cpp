// mstc_dtn — command-line front end for the mobility-assisted (epidemic /
// store-carry-forward) routing simulator.
//
//   mstc_dtn --nodes 40 --range 100 --speed 15 --messages 50
#include <cstdio>

#include "routing/epidemic.hpp"
#include "util/args.hpp"

namespace {

constexpr const char* kHelp = R"(mstc_dtn — mobility-assisted routing simulator

options (defaults in brackets):
  --nodes N        node count                                     [40]
  --range R        transmission range, m                          [100]
  --speed V        average node speed, m/s                        [10]
  --mobility NAME  waypoint | static | walk | gauss               [waypoint]
  --relay-hops H   max relay hops (0 = direct-only, 1 = two-hop)  [64]
  --buffer N       per-node buffer capacity (0 = unlimited)       [0]
  --messages M     messages to inject                             [50]
  --duration T     simulated seconds                              [120]
  --seed S         RNG seed                                       [1]
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace mstc;
  const util::ArgParser args(argc, argv);
  if (args.get_flag("help")) {
    std::fputs(kHelp, stdout);
    return 0;
  }

  routing::EpidemicConfig cfg;
  cfg.node_count = static_cast<std::size_t>(args.get("nodes", 40L));
  cfg.range = args.get("range", 100.0);
  cfg.average_speed = args.get("speed", 10.0);
  cfg.mobility_model = args.get("mobility", std::string("waypoint"));
  cfg.max_relay_hops = static_cast<std::size_t>(args.get("relay-hops", 64L));
  cfg.buffer_limit = static_cast<std::size_t>(args.get("buffer", 0L));
  cfg.message_count = static_cast<std::size_t>(args.get("messages", 50L));
  cfg.duration = args.get("duration", 120.0);
  cfg.seed = static_cast<std::uint64_t>(args.get("seed", 1L));
  for (const auto& name : args.unknown()) {
    std::fprintf(stderr, "error: unknown option --%s (try --help)\n",
                 name.c_str());
    return 2;
  }

  try {
    const auto result = routing::run_epidemic(cfg);
    std::printf(
        "substrate snapshot connectivity  %.3f (how partitioned the raw "
        "graph was)\n"
        "delivery ratio                   %.3f\n"
        "mean delay of delivered msgs     %.1f s (max %.1f)\n"
        "mean copies per message          %.1f\n",
        result.snapshot_connectivity, result.delivery_ratio,
        result.delay.count() > 0 ? result.delay.mean() : 0.0,
        result.delay.count() > 0 ? result.delay.max() : 0.0,
        result.mean_copies_per_message);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  return 0;
}
