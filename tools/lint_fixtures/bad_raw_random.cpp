// Fixture: every line here must trip the raw-random rule.
#include <cstdlib>
#include <ctime>
#include <random>

int bad_sources() {
  std::srand(static_cast<unsigned>(time(nullptr)));
  int a = std::rand();
  std::random_device entropy;
  std::mt19937 twister(entropy());
  std::mt19937_64 twister64(12345);
  return a + static_cast<int>(twister() + twister64());
}
