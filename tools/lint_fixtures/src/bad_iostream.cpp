// Fixture: <iostream> in library code must trip iostream-in-lib.
#include <iostream>

void chatty() { std::cout << "library code must not print\n"; }
