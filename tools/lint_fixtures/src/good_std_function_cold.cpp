// Fixture: std::function outside the hot-path layers (src/ but neither
// sim/ nor core/) is fine — `hot-path-std-function` only polices the
// per-event layers, and an explicit allow() marker silences it even there.
#include <functional>

namespace mstc::fixture {

// A runner/tooling-layer callback: invoked once per sweep, not per event.
struct ColdHooks {
  std::function<void(int)> on_progress;
};

}  // namespace mstc::fixture
