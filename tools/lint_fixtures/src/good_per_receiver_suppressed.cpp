// Fixture: deliberate per-receiver scheduling (randomized backoff means
// distinct delivery times), suppressed with a justification.
#include <cstddef>
#include <vector>

struct Sim {
  template <typename F>
  void schedule_serial(double at, std::size_t key, F&& handler);
  template <typename F>
  void schedule_fanout(double at, const std::vector<std::size_t>& receivers,
                       F&& handler);
};

double backoff(std::size_t v);

void forward(Sim& simulator, double now,
             const std::vector<std::size_t>& forward_targets) {
  // Each forward draws its own backoff: per-receiver times differ.
  // mstc-lint: allow(per-receiver-schedule)
  for (std::size_t v : forward_targets) {
    simulator.schedule_serial(now + backoff(v), v, [v] { (void)v; });
  }
}

void broadcast(Sim& simulator, double at,
               const std::vector<std::size_t>& receiver_buffer) {
  // The batched fan-out path must NOT trip the rule: schedule_fanout is
  // the sanctioned API even though the receiver buffer is named here.
  simulator.schedule_fanout(at, receiver_buffer, [] {});
}
