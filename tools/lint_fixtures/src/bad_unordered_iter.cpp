// Fixture: range-for over unordered containers must trip
// unordered-iteration (the file sits under a src/ path on purpose).
#include <cstddef>
#include <string>
#include <unordered_map>
#include <unordered_set>

struct Registry {
  std::unordered_map<int, std::string> names;
  std::unordered_set<int> ids;

  std::size_t total() const {
    std::size_t sum = 0;
    for (const auto& [id, name] : names) {
      sum += name.size() + static_cast<std::size_t>(id);
    }
    for (int id : ids) {
      sum += static_cast<std::size_t>(id);
    }
    return sum;
  }
};
