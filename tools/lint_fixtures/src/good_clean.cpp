// Fixture: clean library code — comments and strings that merely mention
// std::rand, std::mt19937 or random_device must NOT be reported, and
// ordered-container iteration is fine.
#include <map>
#include <string>
#include <vector>

// We deliberately avoid std::mt19937; see src/util/prng.hpp.
int sum_ordered(const std::map<int, int>& values) {
  int total = 0;
  for (const auto& [key, value] : values) total += value;
  const std::string note = "std::rand() is banned; time(nullptr) too";
  return total + static_cast<int>(note.size());
}
