// Fixture: wall-clock / resource-usage reads in library code outside the
// sanctioned TUs (src/obs/profile.cpp, src/util/rusage.cpp) must be
// flagged by the `wall-clock` rule — simulation state may depend on
// sim-time only.
#include <chrono>
#include <ctime>
#include <sys/resource.h>
#include <sys/time.h>

namespace mstc::fixture {

long bad_steady() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

long bad_system() {
  using clock = std::chrono::system_clock;
  return clock::now().time_since_epoch().count();
}

long bad_high_resolution() {
  return std::chrono::high_resolution_clock::now().time_since_epoch().count();
}

long bad_posix() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  timeval tv{};
  gettimeofday(&tv, nullptr);
  return ts.tv_nsec + tv.tv_usec;
}

long bad_rusage() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;
}

}  // namespace mstc::fixture
