// Fixture: nested index loops over a fleet positions array — the O(n^2)
// scan the all-pairs-scan rule exists to catch.
#include <cstddef>
#include <vector>

struct Vec2 {
  double x = 0.0;
  double y = 0.0;
};

std::size_t count_close_pairs(const std::vector<Vec2>& positions,
                              double range_sq) {
  std::size_t close = 0;
  for (std::size_t u = 0; u < positions.size(); ++u) {
    for (std::size_t v = u + 1; v < positions.size(); ++v) {
      const double dx = positions[u].x - positions[v].x;
      const double dy = positions[u].y - positions[v].y;
      if (dx * dx + dy * dy <= range_sq) ++close;
    }
  }
  return close;
}
