// Fixture: per-receiver loop pushing one simulator event per delivery.
// The batched Simulator::schedule_fanout API exists for exactly this.
#include <cstddef>
#include <vector>

struct Sim {
  template <typename F>
  void schedule_local(double at, std::size_t key, F&& handler);
};

void broadcast(Sim& simulator, double at,
               const std::vector<std::size_t>& receiver_buffer) {
  for (std::size_t v : receiver_buffer) {
    simulator.schedule_local(at, v, [v] { (void)v; });
  }
}
