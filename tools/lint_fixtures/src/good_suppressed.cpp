// Fixture: findings silenced with mstc-lint allow() markers must not be
// reported — same-line and previous-line placements both count.
#include <string>
#include <unordered_map>

struct Cache {
  std::unordered_map<int, std::string> entries;

  // Order-independent: clear() touches every entry regardless of order.
  void wipe() {
    // mstc-lint: allow(unordered-iteration)
    for (auto& [key, value] : entries) value.clear();
  }

  std::size_t bytes() const {
    std::size_t total = 0;
    for (const auto& [key, value] : entries) total += value.size();  // mstc-lint: allow(unordered-iteration)
    return total;
  }
};
