// Fixture: the same all-pairs scan as bad_all_pairs.cpp, but a deliberate
// brute-force baseline carrying the suppression escape hatch — and loops
// the rule must NOT flag (a completed one-line loop above an index loop,
// and a range-for pair).
#include <cstddef>
#include <vector>

struct Vec2 {
  double x = 0.0;
  double y = 0.0;
};

std::size_t brute_baseline(const std::vector<Vec2>& positions,
                           double range_sq) {
  std::size_t close = 0;
  // Differential-test oracle: the grid path is byte-compared against this.
  for (std::size_t u = 0; u < positions.size(); ++u) {
    // mstc-lint: allow(all-pairs-scan)
    for (std::size_t v = u + 1; v < positions.size(); ++v) {
      const double dx = positions[u].x - positions[v].x;
      const double dy = positions[u].y - positions[v].y;
      if (dx * dx + dy * dy <= range_sq) ++close;
    }
  }
  return close;
}

double sequential_loops_are_fine(const std::vector<Vec2>& positions) {
  std::vector<double> prefix(positions.size() + 1, 0.0);
  // A completed one-line loop directly above an index loop is NOT an
  // enclosing loop; the rule must stay quiet here.
  for (std::size_t i = 0; i < positions.size(); ++i) prefix[i + 1] = 1.0;
  double total = 0.0;
  for (std::size_t u = 0; u < positions.size(); ++u) {
    total += positions[u].x + prefix[u];
  }
  // Range-fors carry no index pair and are exempt even when nested.
  for (const Vec2& a : positions) {
    for (const Vec2& b : positions) {
      total += a.x * b.y;
    }
  }
  return total;
}
