// Fixture: parallel floating-point reduction must trip
// parallel-float-reduce.
#include <execution>
#include <numeric>
#include <vector>

double unstable_sum(const std::vector<double>& values) {
  return std::reduce(std::execution::par, values.begin(), values.end(), 0.0);
}

double unstable_transform(const std::vector<double>& values) {
  return std::transform_reduce(std::execution::par_unseq, values.begin(),
                               values.end(), 0.0, std::plus<>{},
                               [](double v) { return v * v; });
}
