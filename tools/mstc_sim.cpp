// mstc_sim — command-line front end for the full simulation stack.
//
// Runs a repeated mobility-sensitive topology-control scenario and prints
// the aggregated metrics, so users can explore the parameter space without
// writing C++.
//
//   mstc_sim --protocol RNG --speed 40 --mode viewsync --buffer 10
//            --repeats 5 --duration 30 --nodes 100
//   mstc_sim --help
#include <cstdio>
#include <cstdlib>

#include "runner/scenario.hpp"
#include "runner/sweep.hpp"
#include "util/args.hpp"

namespace {

constexpr const char* kHelp = R"(mstc_sim — mobility-sensitive topology control simulator

options (defaults in brackets):
  --protocol NAME     MST | RNG | SPT-2 | SPT-4 | Gabriel | Yao | Yao2 |
                      Yao3 | CBTC | CBTC2 | CBTC3 | KNeigh | None   [RNG]
  --mode NAME         latest | viewsync | proactive | reactive | weak [latest]
  --speed V           average node speed, m/s                       [10]
  --mobility NAME     waypoint | static | walk | gauss              [waypoint]
  --buffer L          buffer-zone width, m                          [0]
  --adaptive-buffer   use Theorem 5's l = 2*Delta''*v instead
  --pn                accept packets from non-logical (physical) neighbors
  --history K         stored Hellos per neighbor (0 = mode default) [0]
  --nodes N           node count                                    [100]
  --range R           normal transmission range, m                  [250]
  --duration T        simulated seconds                             [30]
  --hello-interval D  mean Hello period, s                          [1]
  --hello-loss P      per-reception Hello loss probability          [0]
  --repeats R         replications (95% CI over runs)               [5]
  --seed S            base RNG seed                                 [1]
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace mstc;
  const util::ArgParser args(argc, argv);
  if (args.get_flag("help")) {
    std::fputs(kHelp, stdout);
    return 0;
  }

  runner::ScenarioConfig cfg = runner::apply_env_overrides({});
  cfg.protocol = args.get("protocol", std::string("RNG"));
  cfg.average_speed = args.get("speed", 10.0);
  cfg.mobility_model = args.get("mobility", std::string("waypoint"));
  cfg.buffer_width = args.get("buffer", 0.0);
  cfg.adaptive_buffer = args.get_flag("adaptive-buffer");
  cfg.physical_neighbors = args.get_flag("pn");
  cfg.history_limit = static_cast<std::size_t>(args.get("history", 0L));
  cfg.node_count = static_cast<std::size_t>(
      args.get("nodes", static_cast<long>(cfg.node_count)));
  cfg.normal_range = args.get("range", cfg.normal_range);
  cfg.duration = args.get("duration", cfg.duration);
  cfg.hello_interval = args.get("hello-interval", cfg.hello_interval);
  cfg.hello_loss = args.get("hello-loss", 0.0);
  cfg.seed = static_cast<std::uint64_t>(args.get("seed", 1L));
  const auto repeats = static_cast<std::size_t>(args.get("repeats", 5L));

  std::string mode_name = args.get("mode", std::string("latest"));
  try {
    cfg.mode = core::consistency_mode_from(mode_name);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
  for (const auto& name : args.unknown()) {
    std::fprintf(stderr, "error: unknown option --%s (try --help)\n",
                 name.c_str());
    return 2;
  }

  std::printf(
      "%s | mode=%s speed=%.0f m/s buffer=%s pn=%s | %zu nodes, %.0f s x "
      "%zu repeats\n",
      cfg.protocol.c_str(), mode_name.c_str(), cfg.average_speed,
      cfg.adaptive_buffer
          ? "adaptive"
          : (std::to_string(static_cast<int>(cfg.buffer_width)) + " m").c_str(),
      cfg.physical_neighbors ? "yes" : "no", cfg.node_count, cfg.duration,
      repeats);

  try {
    const auto agg = runner::run_repeated(cfg, repeats);
    const auto delivery = agg.delivery().ci95();
    std::printf(
        "connectivity (flood delivery)  %.3f ±%.3f\n"
        "strict snapshot connectivity   %.3f ±%.3f\n"
        "avg transmission range         %.1f m\n"
        "avg logical degree             %.2f\n"
        "avg physical degree            %.2f\n",
        delivery.mean, delivery.half_width, agg.strict().ci95().mean,
        agg.strict().ci95().half_width, agg.range().mean(),
        agg.logical_degree().mean(), agg.physical_degree().mean());
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  return 0;
}
