// mstc_sim — command-line front end for the full simulation stack.
//
// Runs a repeated mobility-sensitive topology-control scenario and prints
// the aggregated metrics, so users can explore the parameter space without
// writing C++.
//
//   mstc_sim --protocol RNG --speed 40 --mode viewsync --buffer 10
//            --repeats 5 --duration 30 --nodes 100
//   mstc_sim --trace run.trace.json --metrics-out manifest.json --progress
//   mstc_sim --help
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/manifest.hpp"
#include "obs/probe.hpp"
#include "runner/scenario.hpp"
#include "runner/sweep.hpp"
#include "util/args.hpp"
#include "util/options.hpp"
#include "util/rusage.hpp"
#include "util/thread_pool.hpp"

namespace {

constexpr const char* kHelp = R"(mstc_sim — mobility-sensitive topology control simulator

options (defaults in brackets):
  --protocol NAME     MST | RNG | SPT-2 | SPT-4 | Gabriel | Yao | Yao2 |
                      Yao3 | CBTC | CBTC2 | CBTC3 | KNeigh | None   [RNG]
  --mode NAME         latest | viewsync | proactive | reactive | weak [latest]
  --speed V           average node speed, m/s                       [10]
  --mobility NAME     waypoint | static | walk | gauss              [waypoint]
  --buffer L          buffer-zone width, m                          [0]
  --adaptive-buffer   use Theorem 5's l = 2*Delta''*v instead
  --pn                accept packets from non-logical (physical) neighbors
  --history K         stored Hellos per neighbor (0 = mode default) [0]
  --nodes N           node count                                    [100]
  --range R           normal transmission range, m                  [250]
  --duration T        simulated seconds                             [30]
  --hello-interval D  mean Hello period, s                          [1]
  --hello-loss P      per-reception Hello loss probability          [0]
  --repeats R         replications (95% CI over runs)               [5]
  --seed S            base RNG seed                                 [1]

observability (all off by default; see docs/OBSERVABILITY.md):
  --trace FILE        write a Chrome trace_event JSON (Perfetto /
                      chrome://tracing; pid = replication, tid = node)
  --trace-jsonl FILE  write the event trace as JSON Lines
  --metrics-out FILE  write a run manifest (config, seed, build version,
                      counter totals, histograms, ledger, wall profile)
  --metrics-stream FILE  stream aggregated counters + ledger statistics as
                      JSON Lines while the sweep runs
                      (env: MSTC_METRICS_STREAM)
  --metrics-prom FILE Prometheus text-exposition snapshot, rewritten as
                      replications complete (env: MSTC_METRICS_PROM)
  --flight N          keep a ring of each replication's last N trace
                      events for post-mortems (0 = off)            [0]
  --postmortem FILE   dump straggler / crash diagnoses (identity, ledger,
                      counters, flight ring) to a JSONL file
  --soft-deadline S   flag replications slower than S wall seconds into
                      the post-mortem file (needs --postmortem)    [0]
  --progress          report sweep progress + ETA on stderr
)";

void print_progress(const mstc::runner::SweepProgress& progress) {
  if (progress.eta_known) {
    std::fprintf(stderr, "\r[%zu/%zu] %.1fs elapsed, eta %.1fs   ",
                 progress.completed, progress.total, progress.elapsed_seconds,
                 progress.eta_seconds);
  } else {
    std::fprintf(stderr, "\r[%zu/%zu] %.1fs elapsed, eta unknown   ",
                 progress.completed, progress.total, progress.elapsed_seconds);
  }
  if (progress.completed == progress.total) std::fputc('\n', stderr);
  std::fflush(stderr);
}

std::string format_double(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%g", value);
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mstc;
  const util::ArgParser args(argc, argv);
  if (args.get_flag("help")) {
    std::fputs(kHelp, stdout);
    return 0;
  }

  runner::ScenarioConfig cfg = runner::apply_env_overrides({});
  cfg.protocol = args.get("protocol", std::string("RNG"));
  cfg.average_speed = args.get("speed", 10.0);
  cfg.mobility_model = args.get("mobility", std::string("waypoint"));
  cfg.buffer_width = args.get("buffer", 0.0);
  cfg.adaptive_buffer = args.get_flag("adaptive-buffer");
  cfg.physical_neighbors = args.get_flag("pn");
  cfg.history_limit = static_cast<std::size_t>(args.get("history", 0L));
  cfg.node_count = static_cast<std::size_t>(
      args.get("nodes", static_cast<long>(cfg.node_count)));
  cfg.normal_range = args.get("range", cfg.normal_range);
  cfg.duration = args.get("duration", cfg.duration);
  cfg.hello_interval = args.get("hello-interval", cfg.hello_interval);
  cfg.hello_loss = args.get("hello-loss", 0.0);
  cfg.seed = static_cast<std::uint64_t>(args.get("seed", 1L));
  const auto repeats = static_cast<std::size_t>(args.get("repeats", 5L));

  const std::string trace_path = args.get("trace", std::string());
  const std::string trace_jsonl_path = args.get("trace-jsonl", std::string());
  const std::string metrics_path = args.get("metrics-out", std::string());
  const std::string stream_path = args.get(
      "metrics-stream", util::env_or("MSTC_METRICS_STREAM", std::string()));
  const std::string prom_path = args.get(
      "metrics-prom", util::env_or("MSTC_METRICS_PROM", std::string()));
  const auto flight_capacity =
      static_cast<std::size_t>(args.get("flight", 0L));
  const std::string postmortem_path = args.get("postmortem", std::string());
  const double soft_deadline = args.get("soft-deadline", 0.0);
  const bool progress = args.get_flag("progress");

  std::string mode_name = args.get("mode", std::string("latest"));
  try {
    cfg.mode = core::consistency_mode_from(mode_name);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
  for (const auto& name : args.unknown()) {
    std::fprintf(stderr, "error: unknown option --%s (try --help)\n",
                 name.c_str());
    return 2;
  }

  std::printf(
      "%s | mode=%s speed=%.0f m/s buffer=%s pn=%s | %zu nodes, %.0f s x "
      "%zu repeats\n",
      cfg.protocol.c_str(), mode_name.c_str(), cfg.average_speed,
      cfg.adaptive_buffer
          ? "adaptive"
          : (std::to_string(static_cast<int>(cfg.buffer_width)) + " m").c_str(),
      cfg.physical_neighbors ? "yes" : "no", cfg.node_count, cfg.duration,
      repeats);

  if (soft_deadline > 0.0 && postmortem_path.empty()) {
    std::fprintf(stderr, "error: --soft-deadline needs --postmortem FILE\n");
    return 2;
  }

  const bool want_trace = !trace_path.empty() || !trace_jsonl_path.empty();
  const bool streaming = !stream_path.empty() || !prom_path.empty();
  const bool observing = want_trace || !metrics_path.empty() || progress ||
                         streaming || flight_capacity > 0 ||
                         !postmortem_path.empty();

  try {
    util::ThreadPool& pool = util::global_pool();
    std::vector<obs::RunObservation> observations;
    obs::MetricsExporter exporter;
    obs::PostMortemWriter postmortem;
    runner::SweepHooks hooks;
    if (observing) {
      hooks.observations = &observations;
      hooks.trace = want_trace;
      hooks.profile = !metrics_path.empty();
      hooks.ledger = !metrics_path.empty() || streaming;
      hooks.flight = flight_capacity > 0;
      hooks.flight_capacity = flight_capacity;
      if (progress) hooks.on_progress = print_progress;
      if (streaming) {
        obs::MetricsExporter::Options options;
        options.jsonl_path = stream_path;
        options.prom_path = prom_path;
        options.job = "mstc_sim";
        if (!exporter.open(options)) {
          std::fprintf(stderr, "error: cannot open metrics stream (%s)\n",
                       (stream_path.empty() ? prom_path : stream_path).c_str());
          return 1;
        }
        hooks.exporter = &exporter;
      }
      if (!postmortem_path.empty()) {
        if (!postmortem.open(postmortem_path)) {
          std::fprintf(stderr, "error: cannot write %s\n",
                       postmortem_path.c_str());
          return 1;
        }
        hooks.postmortem = &postmortem;
        hooks.soft_deadline_seconds = soft_deadline;
      }
    }

    const std::uint64_t sweep_start = obs::wall_now_ns();
    const std::vector<metrics::RunStats> raw =
        runner::run_batch_raw({cfg}, repeats, pool, hooks);
    const double sweep_wall_seconds =
        static_cast<double>(obs::wall_now_ns() - sweep_start) * 1e-9;
    metrics::RunAggregator agg;
    for (const metrics::RunStats& stats : raw) agg.add(stats);

    const auto delivery = agg.delivery().ci95();
    std::printf(
        "connectivity (flood delivery)  %.3f ±%.3f\n"
        "strict snapshot connectivity   %.3f ±%.3f\n"
        "avg transmission range         %.1f m\n"
        "avg logical degree             %.2f\n"
        "avg physical degree            %.2f\n",
        delivery.mean, delivery.half_width, agg.strict().ci95().mean,
        agg.strict().ci95().half_width, agg.range().mean(),
        agg.logical_degree().mean(), agg.physical_degree().mean());

    if (observing) {
      exporter.close();  // final snapshot with every replication folded in
      obs::CounterRegistry counters;
      obs::Profiler profiler;
      obs::LedgerSummary ledger_summary;
      std::vector<const obs::MemoryTraceSink*> sinks;
      sinks.reserve(observations.size());
      for (const obs::RunObservation& observation : observations) {
        counters.merge(observation.counters);
        profiler.merge(observation.profiler);
        ledger_summary.add(observation.ledger);
        sinks.push_back(&observation.trace);
      }
      if (!trace_path.empty() &&
          !obs::write_chrome_trace(trace_path, sinks)) {
        std::fprintf(stderr, "error: cannot write %s\n", trace_path.c_str());
        return 1;
      }
      if (!trace_jsonl_path.empty() &&
          !obs::write_jsonl(trace_jsonl_path, sinks)) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     trace_jsonl_path.c_str());
        return 1;
      }
      if (!metrics_path.empty()) {
        obs::Manifest manifest;
        manifest.tool = "mstc_sim";
        manifest.seed = cfg.seed;
        manifest.configurations = 1;
        manifest.repeats = repeats;
        manifest.config = {
            {"protocol", cfg.protocol},
            {"mode", mode_name},
            {"mobility", cfg.mobility_model},
            {"speed", format_double(cfg.average_speed)},
            {"nodes", std::to_string(cfg.node_count)},
            {"range", format_double(cfg.normal_range)},
            {"duration", format_double(cfg.duration)},
            {"hello_interval", format_double(cfg.hello_interval)},
            {"hello_loss", format_double(cfg.hello_loss)},
            {"buffer_width", format_double(cfg.buffer_width)},
            {"adaptive_buffer", cfg.adaptive_buffer ? "true" : "false"},
            {"physical_neighbors",
             cfg.physical_neighbors ? "true" : "false"},
        };
        manifest.counters = &counters;
        manifest.profiler = &profiler;
        manifest.sweep_wall_seconds = sweep_wall_seconds;
        manifest.pool_threads = pool.thread_count();
        manifest.peak_rss_bytes = util::peak_rss_bytes();
        manifest.ledger = &ledger_summary;
        if (!obs::write_manifest(metrics_path, manifest)) {
          std::fprintf(stderr, "error: cannot write %s\n",
                       metrics_path.c_str());
          return 1;
        }
      }
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  return 0;
}
