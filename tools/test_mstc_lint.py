#!/usr/bin/env python3
"""Self-test for mstc_lint.py: each known-bad fixture must be reported with
the expected rule id, each known-good fixture must pass, and the shipped
src/ tree must be clean. Run directly or via ctest (mstc_lint_selftest)."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

TOOLS_DIR = Path(__file__).resolve().parent
LINTER = TOOLS_DIR / "mstc_lint.py"
FIXTURES = TOOLS_DIR / "lint_fixtures"
REPO_SRC = TOOLS_DIR.parent / "src"

# fixture path (relative to lint_fixtures/) -> set of rule ids that must all
# appear in the output; empty set = fixture must lint clean.
EXPECTATIONS = {
    "bad_raw_random.cpp": {"raw-random"},
    "bad_parallel_reduce.cpp": {"parallel-float-reduce"},
    "src/bad_iostream.cpp": {"iostream-in-lib"},
    "src/bad_wall_clock.cpp": {"wall-clock"},
    "src/bad_all_pairs.cpp": {"all-pairs-scan"},
    "src/bad_per_receiver_schedule.cpp": {"per-receiver-schedule"},
    "src/good_per_receiver_suppressed.cpp": set(),
    "src/good_all_pairs_suppressed.cpp": set(),
    "src/good_clean.cpp": set(),
    "src/good_suppressed.cpp": set(),
}


def run_linter(*paths: Path) -> tuple[int, str]:
    result = subprocess.run(
        [sys.executable, str(LINTER), *map(str, paths)],
        capture_output=True, text=True, check=False)
    return result.returncode, result.stdout + result.stderr


def main() -> int:
    failures: list[str] = []

    for relative, expected_rules in EXPECTATIONS.items():
        fixture = FIXTURES / relative
        if not fixture.is_file():
            failures.append(f"missing fixture: {fixture}")
            continue
        code, output = run_linter(fixture)
        if expected_rules:
            if code == 0:
                failures.append(f"{relative}: expected nonzero exit, got 0")
            for rule in expected_rules:
                if f"[{rule}]" not in output:
                    failures.append(
                        f"{relative}: rule '{rule}' not reported; output:\n"
                        f"{output}")
        else:
            if code != 0:
                failures.append(
                    f"{relative}: expected clean (exit 0), got {code}; "
                    f"output:\n{output}")

    # The tree as shipped must be clean — the lint gate in CI relies on it.
    code, output = run_linter(REPO_SRC)
    if code != 0:
        failures.append(f"src/ tree not lint-clean (exit {code}):\n{output}")

    # --list-rules must succeed and mention every rule id.
    result = subprocess.run(
        [sys.executable, str(LINTER), "--list-rules"],
        capture_output=True, text=True, check=False)
    if result.returncode != 0:
        failures.append("--list-rules exited nonzero")
    for rule in ("raw-random", "parallel-float-reduce", "iostream-in-lib",
                 "wall-clock", "all-pairs-scan", "per-receiver-schedule"):
        if rule not in result.stdout:
            failures.append(f"--list-rules missing '{rule}'")

    if failures:
        print("mstc_lint self-test FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"mstc_lint self-test: {len(EXPECTATIONS)} fixtures + src/ sweep OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
