// One end-to-end simulation run.
//
// Wires the substrates together exactly as the paper's Section 5.1
// describes: mobility traces drive an ideal-MAC medium; every node beacons
// asynchronous (or synchronized, per consistency mode) Hellos at the normal
// range and runs its NodeController; a flooding application measures weak
// connectivity; periodic snapshots measure strict connectivity, ranges and
// degrees.
#pragma once

#include "metrics/aggregate.hpp"
#include "obs/probe.hpp"
#include "runner/config.hpp"

namespace mstc::runner {

/// Runs one scenario to completion; deterministic in (config, config.seed).
[[nodiscard]] metrics::RunStats run_scenario(const ScenarioConfig& config);

/// Same, recording counters, trace events, histograms and wall-clock
/// profiling into `observation` (see docs/OBSERVABILITY.md for the
/// catalogue). Passing null behaves exactly like the plain overload; the
/// returned stats are byte-identical either way — observation never feeds
/// back into simulation state.
[[nodiscard]] metrics::RunStats run_scenario(const ScenarioConfig& config,
                                             obs::RunObservation* observation);

/// The shard count a replication of `config` would actually run with:
/// config.shards after the MSTC_KERNEL_SERIAL / csma serial fallbacks and
/// the fleet-size / grid-column clamps (see effective_shards in
/// scenario.cpp). Tracing and flight recording force serial separately —
/// this resolution assumes both are off, as in benchmarks.
[[nodiscard]] std::uint32_t resolved_shard_count(const ScenarioConfig& config);

}  // namespace mstc::runner
