// Scenario configuration.
//
// Defaults mirror the paper's Section 5.1 setup (100 nodes, 900x900 m^2,
// 250 m normal range, random waypoint with zero pause, ~1 s jittered Hello
// interval) with CI-scale duration/rates; see paper_scale() for the exact
// paper parameters and env_scenario_overrides() for MSTC_* escalation.
#pragma once

#include <cstdint>
#include <string>

#include "core/consistency.hpp"
#include "mobility/trace.hpp"

namespace mstc::runner {

struct ScenarioConfig {
  // --- network ---
  std::size_t node_count = 100;
  mobility::Area area{900.0, 900.0};
  double normal_range = 250.0;

  // --- mobility ---
  /// "static", "waypoint" (paper), "walk", or "gauss".
  std::string mobility_model = "waypoint";
  double average_speed = 10.0;  ///< m/s

  // --- protocol under test ---
  std::string protocol = "RNG";  ///< see topology::make_protocol
  core::ConsistencyMode mode = core::ConsistencyMode::kLatest;
  /// Stored Hello records per sender; 0 = mode default (1 for baselines,
  /// 3 for weak/proactive).
  std::size_t history_limit = 0;
  double buffer_width = 0.0;   ///< buffer zone l (m)
  bool adaptive_buffer = false;  ///< l = 2 * Delta'' * v (Theorem 5)
  bool physical_neighbors = false;

  // --- beaconing & MAC ---
  double hello_interval = 1.0;  ///< mean Hello period (s)
  double hello_jitter = 0.25;   ///< per-node interval in [1-j, 1+j] * mean
  double hello_loss = 0.0;      ///< per-reception loss probability
  /// "ideal" (the paper's collision-free MAC) or "csma" (carrier sensing
  /// + collision loss; the paper's future-work realistic MAC).
  std::string mac = "ideal";
  /// Serve medium neighbor queries with the brute-force O(n) scan instead
  /// of the spatial index. Results are bit-identical either way (the
  /// determinism suite asserts it); kept for differential testing and as
  /// the bench_scale baseline. Env: MSTC_MEDIUM_BRUTE=1.
  bool medium_brute_force = false;
  /// Fleets below this size serve medium queries with the brute scan even
  /// when the index is enabled — the index only breaks even above ~150
  /// nodes (see docs/PERFORMANCE.md). 0 forces the index for any fleet.
  std::size_t medium_grid_min_nodes = 150;
  /// Skip Protocol::select when a node's assembled view is bit-identical
  /// to its previous refresh (the protocol is a pure function of the view,
  /// so the selection is provably unchanged; the determinism suite
  /// byte-compares cache-on vs cache-off sweeps). Kept as an escape hatch
  /// mirroring medium_brute_force. Env: MSTC_NO_RECOMPUTE_CACHE=1.
  bool recompute_cache = true;
  /// Recompute-cache self-bypass threshold (see
  /// core::ControllerConfig::recompute_cache_min_skip_rate): when the
  /// observed skip rate after the warmup window stays below this floor the
  /// cache stops probing for the rest of the run. The default engages on
  /// mobile fleets (waypoint skip rates are ~1%, below 2%) and leaves
  /// static fleets (~90% skips) fully cached. 0 disables the bypass;
  /// byte-identical either way. Env: MSTC_RECOMPUTE_MIN_SKIP_RATE.
  double recompute_cache_min_skip_rate = 0.02;
  /// Measure snapshots with the brute-force O(n^2) pair scan instead of
  /// the grid-backed fast path. Byte-identical either way (differential
  /// suite tests/metrics/snapshot_grid_test.cpp); kept for A/B
  /// benchmarking (bench_snapshot baseline). Env: MSTC_SNAPSHOT_BRUTE=1.
  bool snapshot_brute_force = false;
  /// Serve the mobility trace set from the process-wide
  /// mobility::TraceCache (sweep points differing only in protocol / mode
  /// / buffer share one immutable set). Generation is pure in the cache
  /// key, so a hit is bit-identical to a regeneration — pinned by
  /// Determinism.TraceCacheSharedMatchesPerReplication. Env escape hatch:
  /// MSTC_NO_TRACE_CACHE=1.
  bool trace_cache = true;
  /// Deliver Hello broadcasts through the kernel's batched fan-out (one
  /// queue entry + one shared closure per transmission) instead of one
  /// schedule_local per receiver. Sequence numbers are pre-assigned so the
  /// event stream is byte-identical either way — pinned by
  /// Determinism.BatchedDeliveryMatchesUnbatched (serial and sharded);
  /// the per-receiver loop is kept as the differential baseline. Env
  /// escape hatch: MSTC_NO_BATCH_DELIVERY=1.
  bool batch_delivery = true;
  /// Serve the medium/snapshot candidate re-check with the portable
  /// scalar loop instead of the SIMD block filter (see geom/filter.hpp).
  /// The wide kernel evaluates the identical predicate with
  /// IEEE-754-identical arithmetic, so results are byte-identical —
  /// pinned by Determinism.ScalarFilterMatchesWide. Env escape hatch:
  /// MSTC_FILTER_SCALAR=1.
  bool scalar_filter = false;
  /// Intra-replication parallelism: shard the event kernel spatially and
  /// run shards concurrently within this one replication. 1 (default) is
  /// the serial kernel, exactly; >= 2 requests that many x-axis strips
  /// (clamped by fleet size and grid-cell width). Byte-identical to serial
  /// for any value — pinned by
  /// Determinism.ShardedKernelMatchesSerialByteForByte. The scenario falls
  /// back to serial when a feature needs a global event order (csma MAC,
  /// event tracing / flight recorder). Env: MSTC_SHARDS (count) and
  /// MSTC_KERNEL_SERIAL=1 (force-serial escape hatch).
  std::size_t shards = 1;
  /// Event-queue backend: "calendar" (default — the O(1) bucketed
  /// scheduler, see sim/event_queue.hpp) or "heap" (the binary-heap
  /// reference). Pop order is a strict (time, sequence) total order, so
  /// both backends produce byte-identical results — pinned by
  /// Determinism.CalendarQueueMatchesHeapByteForByte; the heap is kept as
  /// the differential baseline and escape hatch. Env: MSTC_EVENT_QUEUE.
  std::string queue = "calendar";

  // --- workload & measurement ---
  double duration = 30.0;       ///< simulated seconds
  double warmup = 3.0;          ///< no measurements before this time
  double flood_rate = 4.0;      ///< broadcast floods per second
  double snapshot_rate = 4.0;   ///< strict-connectivity samples per second
  double flood_settle = 0.5;    ///< seconds before a flood is scored

  std::uint64_t seed = 1;

  /// Effective per-sender history: explicit value or the mode default
  /// (weak: k = 2 per Corollary 1's instantaneous-updating bound;
  /// proactive: 3 so version pinning always finds its record).
  [[nodiscard]] std::size_t effective_history() const {
    if (history_limit > 0) return history_limit;
    switch (mode) {
      case core::ConsistencyMode::kWeak:
        return 2;
      case core::ConsistencyMode::kProactive:
        return 3;
      default:
        return 1;
    }
  }
};

/// The paper's full-scale parameters: 100 s runs, 10 floods/s and
/// 10 samples/s (Section 5.1). Heavier: ~10x the default runtime.
[[nodiscard]] ScenarioConfig paper_scale(ScenarioConfig base);

/// Applies MSTC_SIM_TIME / MSTC_NODES / MSTC_FLOOD_RATE /
/// MSTC_SNAPSHOT_RATE / MSTC_WARMUP env overrides; MSTC_PAPER_SCALE=1
/// applies paper_scale first.
[[nodiscard]] ScenarioConfig apply_env_overrides(ScenarioConfig base);

/// Repetition count for sweeps: MSTC_REPEATS env or `fallback`.
[[nodiscard]] std::size_t sweep_repeats(std::size_t fallback = 5);

}  // namespace mstc::runner
