#include "runner/scenario.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <numbers>
#include <optional>
#include <stdexcept>

#include "core/effective.hpp"
#include "mac/channel.hpp"
#include "metrics/snapshot.hpp"
#include "mobility/models.hpp"
#include "mobility/trace_cache.hpp"
#include "sim/medium.hpp"
#include "sim/simulator.hpp"
#include "topology/protocol.hpp"
#include "util/options.hpp"
#include "util/prng.hpp"
#include "util/thread_pool.hpp"

namespace mstc::runner {

namespace {

using core::NodeId;

constexpr double kPropagationDelay = 1e-5;   // seconds
constexpr double kMinForwardBackoff = 5e-4;  // seconds
constexpr double kMaxForwardBackoff = 2e-3;  // seconds
constexpr double kReactiveDecisionWait = 0.1;  // seconds after sync flood
constexpr double kProactiveSkewFraction = 0.1;
constexpr std::size_t kHelloBits = 512;   // ~64-byte beacon
constexpr std::size_t kDataBits = 2048;   // ~256-byte data packet
constexpr std::size_t kSyncBits = 320;    // ~40-byte initiation frame

std::unique_ptr<mobility::MobilityModel> make_mobility(
    const ScenarioConfig& cfg) {
  if (cfg.mobility_model == "static") {
    return std::make_unique<mobility::StaticModel>(cfg.area);
  }
  if (cfg.mobility_model == "waypoint") {
    return mobility::make_paper_waypoint(cfg.area, cfg.average_speed);
  }
  if (cfg.mobility_model == "walk") {
    return std::make_unique<mobility::RandomWalk>(cfg.area, cfg.average_speed,
                                                  5.0);
  }
  if (cfg.mobility_model == "gauss") {
    return std::make_unique<mobility::GaussMarkov>(cfg.area,
                                                   cfg.average_speed, 0.8);
  }
  throw std::invalid_argument("unknown mobility model: " + cfg.mobility_model);
}

/// Obtains the replication's immutable trace set — from the process-wide
/// TraceCache when enabled (sweep points differing only in protocol /
/// mode / buffer share one set), generated privately otherwise.
/// Generation is pure in (mobility inputs, derived seed), so the two
/// sources are bit-identical and MSTC_NO_TRACE_CACHE=1 / trace_cache =
/// false is a pure wall-clock escape hatch.
std::shared_ptr<const mobility::TraceSet> acquire_traces(
    const ScenarioConfig& cfg, const obs::Probe& probe) {
  const obs::ScopedTimer timer(probe.profiler(), obs::Category::kTraceGen);
  const std::uint64_t seed = util::derive_seed(cfg.seed, 0xA11CE);
  const auto generate = [&cfg, seed] {
    return mobility::generate_traces(*make_mobility(cfg), cfg.node_count,
                                     cfg.duration, seed);
  };
  if (!cfg.trace_cache || util::env_flag("MSTC_NO_TRACE_CACHE")) {
    probe.count(obs::Counter::kTraceCacheMisses);
    return std::make_shared<const mobility::TraceSet>(generate());
  }
  const mobility::TraceKey key{cfg.mobility_model, cfg.area.width,
                               cfg.area.height,    cfg.average_speed,
                               cfg.node_count,     cfg.duration,
                               seed};
  bool generated = false;
  auto traces = mobility::TraceCache::global().get(key, generate, &generated);
  probe.count(generated ? obs::Counter::kTraceCacheMisses
                        : obs::Counter::kTraceCacheHits);
  return traces;
}

/// Narrows a NodeId to the kernel's 31-bit event-key domain; fleet sizes
/// are bounded far below it.
std::uint32_t key_of(NodeId u) { return static_cast<std::uint32_t>(u); }

/// Width of one spatial-grid cell column; shard strips align to these so a
/// shard boundary is always a grid-cell boundary.
double shard_cell_width(const ScenarioConfig& cfg) { return cfg.normal_range; }

std::size_t shard_columns(const ScenarioConfig& cfg) {
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(cfg.area.width / shard_cell_width(cfg))));
}

/// Resolves the shard count actually used for this replication. Serial
/// fallbacks: the MSTC_KERNEL_SERIAL=1 escape hatch; the csma MAC (its
/// channel draws RNG per delivery, so deliveries must stay in the global
/// serial order); event tracing / flight recording (their sinks record the
/// global order). The count is clamped to the fleet size and to the number
/// of grid-cell columns (a strip narrower than one cell cannot be cut).
std::uint32_t effective_shards(const ScenarioConfig& cfg,
                               const obs::RunObservation* observation) {
  if (cfg.shards <= 1) return 1;
  if (util::env_flag("MSTC_KERNEL_SERIAL")) return 1;
  if (cfg.mac == "csma") return 1;
  if (observation != nullptr &&
      (observation->trace_on || observation->flight_on)) {
    return 1;
  }
  const std::size_t clamped = std::max<std::size_t>(
      1, std::min({cfg.shards, cfg.node_count, shard_columns(cfg)}));
  return static_cast<std::uint32_t>(clamped);
}

/// Resolves the event-queue backend and its bucket-width hint. The
/// MSTC_EVENT_QUEUE escape hatch wins over cfg.queue; unknown names are a
/// configuration error.
sim::QueueConfig resolve_queue(const ScenarioConfig& cfg,
                               bool batch_delivery) {
  const std::string name = util::env_or("MSTC_EVENT_QUEUE", cfg.queue);
  const std::optional<sim::QueueBackend> backend =
      sim::parse_queue_backend(name);
  if (!backend.has_value()) {
    throw std::invalid_argument("unknown event queue backend: " + name);
  }
  sim::QueueConfig queue;
  queue.backend = *backend;
  if (queue.backend == sim::QueueBackend::kCalendar) {
    // Bucket-width hint from the scenario's timing shape: the event stream
    // is dominated by the Hello fan-out. Batched delivery pushes one
    // fan-out entry per broadcast (one send + one fan-out per node per
    // interval); the unbatched hatch pushes ~degree per-receiver
    // deliveries instead, so the mean spacing is hello / (n * (1 +
    // degree)). Width targets kTargetOccupancy events per bucket; the
    // queue's occupancy self-resize corrects any drift (floods, MAC
    // retries, expiry sweeps). The hint shapes wall clock only — event
    // order is identical whatever the width.
    const double area = cfg.area.width * cfg.area.height;
    const double fleet = static_cast<double>(cfg.node_count);
    const double degree = std::min(
        std::max(fleet - 1.0, 0.0),
        area > 0.0 ? std::numbers::pi * cfg.normal_range * cfg.normal_range *
                         fleet / area
                   : 0.0);
    const double per_interval =
        batch_delivery ? fleet * 2.0 : fleet * (1.0 + degree);
    if (per_interval > 0.0 && cfg.hello_interval > 0.0) {
      const double cap = std::max(1e-6, cfg.hello_interval / 16.0);
      queue.bucket_width = std::clamp(
          cfg.hello_interval * sim::EventQueue::kTargetOccupancy /
              per_interval,
          1e-6, cap);
    }
  }
  return queue;
}

class Scenario {
 public:
  Scenario(const ScenarioConfig& cfg, obs::RunObservation* observation)
      : cfg_(cfg),
        observation_(observation),
        probe_(observation),
        traces_(acquire_traces(cfg, probe_)),
        medium_(*traces_,
                {.propagation_delay = kPropagationDelay,
                 .brute_force = cfg.medium_brute_force,
                 .grid_min_nodes = cfg.medium_grid_min_nodes,
                 .scalar_filter = cfg.scalar_filter ||
                                  util::env_flag("MSTC_FILTER_SCALAR")}),
        suite_(topology::make_protocol(cfg.protocol)),
        beacon_rng_(util::derive_seed(cfg.seed, 0xBEAC0)),
        traffic_rng_(util::derive_seed(cfg.seed, 0x7AFF1C)),
        loss_rng_(util::derive_seed(cfg.seed, 0x105535)),
        backoff_rng_(util::derive_seed(cfg.seed, 0xBACC0FF)) {
    core::ControllerConfig controller_config;
    controller_config.normal_range = cfg.normal_range;
    controller_config.mode = cfg.mode;
    controller_config.history_limit = cfg.effective_history();
    controller_config.view_expiry = 2.5 * cfg.hello_interval;
    controller_config.buffer.width = cfg.buffer_width;
    if (cfg.adaptive_buffer) {
      controller_config.buffer.adaptive = true;
      // Speed bound of the paper's waypoint config: 1.5 * average speed.
      controller_config.buffer.max_speed = 1.5 * cfg.average_speed;
      controller_config.buffer.delay_bound = core::delay_bound(
          cfg.mode, 1.25 * cfg.hello_interval, controller_config.history_limit);
    }
    controller_config.accept_physical_neighbors = cfg.physical_neighbors;
    controller_config.recompute_cache = cfg.recompute_cache;
    controller_config.recompute_cache_min_skip_rate =
        cfg.recompute_cache_min_skip_rate;

    nodes_.reserve(cfg.node_count);
    for (NodeId u = 0; u < cfg.node_count; ++u) {
      nodes_.emplace_back(u, *suite_.protocol, *suite_.cost,
                          controller_config);
    }
    for (auto& node : nodes_) node.attach_probe(&probe_);
    medium_.set_probe(&probe_);
    simulator_.set_probe(&probe_);
    batch_delivery_ =
        cfg.batch_delivery && !util::env_flag("MSTC_NO_BATCH_DELIVERY");
    scalar_filter_ = cfg.scalar_filter || util::env_flag("MSTC_FILTER_SCALAR");
    configure_sharding(cfg, observation);
    simulator_.configure_queue(resolve_queue(cfg, batch_delivery_));
    // Size the event kernel for the whole run up front: per-node beacon
    // chains plus the pre-scheduled flood and snapshot events (x2 covers
    // per-hop forwarding churn and MAC retries).
    simulator_.reserve_events(
        2 * cfg.node_count +
        2 * static_cast<std::size_t>(
                cfg.duration * (2.0 * cfg.flood_rate + cfg.snapshot_rate)) +
        64);
    last_hello_version_.assign(cfg.node_count, 0);

    if (cfg.mac == "csma") {
      channel_ = std::make_unique<mac::ContentionChannel>(
          simulator_, medium_, mac::ContentionChannel::Config{},
          util::derive_seed(cfg.seed, 0x3AC));
    } else if (cfg.mac != "ideal") {
      throw std::invalid_argument("unknown MAC: " + cfg.mac);
    }
  }

  metrics::RunStats run() {
    schedule_beaconing();
    schedule_floods();
    schedule_snapshots();
    const std::uint64_t wall_start =
        probe_.profiler() != nullptr ? obs::wall_now_ns() : 0;
    simulator_.run_until(cfg_.duration);
    if (obs::Profiler* profiler = probe_.profiler()) {
      profiler->add_run(obs::wall_now_ns() - wall_start,
                        simulator_.processed_events());
    }
    // Fold the per-shard counter registries back into the run's registry
    // (fixed shard order; merge is additive, so the totals are identical
    // to what a serial run counts directly).
    if (observation_ != nullptr) {
      for (const obs::RunObservation& shard : shard_obs_) {
        observation_->counters.merge(shard.counters);
      }
    }
    metrics::RunStats stats;
    stats.delivery_ratio = delivery_.mean();
    stats.strict_connectivity = strict_.mean();
    stats.mean_range = range_.mean();
    stats.mean_logical_degree = logical_degree_.mean();
    stats.mean_physical_degree = physical_degree_.mean();
    stats.control_tx_rate =
        static_cast<double>(control_transmissions_) /
        (static_cast<double>(nodes_.size()) * cfg_.duration);
    if (channel_) {
      const double total = static_cast<double>(channel_->receptions() +
                                               channel_->collisions());
      stats.mac_collision_fraction =
          total > 0.0 ? static_cast<double>(channel_->collisions()) / total
                      : 0.0;
    }
    return stats;
  }

 private:
  // --- sharded kernel --------------------------------------------------

  /// Resolves the shard count and, when parallel, builds the per-shard
  /// protocol suites / counter registries and installs the kernel's
  /// ShardPlan. Serial resolutions leave the kernel untouched.
  void configure_sharding(const ScenarioConfig& cfg,
                          obs::RunObservation* observation) {
    shards_ = effective_shards(cfg, observation);
    sharded_ = shards_ > 1;
    if (!sharded_) return;
    // Each shard gets its own protocol/cost instances because
    // Protocol::select uses per-instance mutable scratch; remap_shards
    // rebinds every controller to its owner shard's instances.
    shard_suites_.reserve(shards_);
    for (std::uint32_t s = 0; s < shards_; ++s) {
      shard_suites_.push_back(topology::make_protocol(cfg.protocol));
    }
    shard_probes_.assign(shards_, obs::Probe{});
    if (observation != nullptr) {
      // Sized once; never resized afterwards (probes point into it).
      shard_obs_ = std::vector<obs::RunObservation>(shards_);
      for (std::uint32_t s = 0; s < shards_; ++s) {
        shard_probes_[s] = obs::Probe(&shard_obs_[s]);
      }
    }
    sim::Simulator::ShardPlan plan;
    plan.shards = shards_;
    // One propagation delay plus a fraction of the Hello period: long
    // enough to batch a full beacon fan-out, short enough that shards
    // rejoin several times per Hello interval. Purely a batching bound —
    // conflicting serial events force their own exact barriers.
    plan.lookahead = kPropagationDelay + 0.25 * cfg.hello_interval;
    // Remap ownership before a border node can cross a whole strip:
    // strip_width / (2 * vmax) seconds, floored at one Hello interval so
    // static-ish fleets do not remap pointlessly. Zero top speed means
    // ownership never goes stale — no epochs at all.
    const double vmax =
        cfg.mobility_model == "static" ? 0.0 : 1.5 * cfg.average_speed;
    plan.epoch_interval =
        vmax > 0.0 ? std::max(cfg.hello_interval,
                              cfg.area.width /
                                  (2.0 * vmax * static_cast<double>(shards_)))
                   : 0.0;
    plan.pool = &util::global_pool();
    plan.remap = [this](double t, std::vector<std::uint32_t>& owner) {
      remap_shards(t, owner);
    };
    simulator_.configure_sharding(std::move(plan));
  }

  /// Ownership map: x-axis strips aligned to spatial-grid cell columns,
  /// balanced over shards. Also rebinds each controller to its shard's
  /// protocol suite and counter registry (pure aliasing — see
  /// NodeController::rebind).
  void remap_shards(double now, std::vector<std::uint32_t>& owner) {
    medium_.positions(now, position_buffer_);
    owner.resize(nodes_.size());
    const std::size_t columns = shard_columns(cfg_);
    const double cell = shard_cell_width(cfg_);
    for (NodeId u = 0; u < nodes_.size(); ++u) {
      const double column = std::clamp(
          std::floor(position_buffer_[u].x / cell), 0.0,
          static_cast<double>(columns - 1));
      const auto shard = static_cast<std::uint32_t>(
          static_cast<std::size_t>(column) * shards_ / columns);
      owner[u] = shard;
      nodes_[u].rebind(*shard_suites_[shard].protocol,
                       *shard_suites_[shard].cost);
      nodes_[u].attach_probe(&shard_probes_[shard]);
    }
  }

  // --- beaconing -----------------------------------------------------

  void schedule_beaconing() {
    switch (cfg_.mode) {
      case core::ConsistencyMode::kLatest:
      case core::ConsistencyMode::kViewSync:
      case core::ConsistencyMode::kWeak:
        for (NodeId u = 0; u < nodes_.size(); ++u) {
          const double interval =
              cfg_.hello_interval *
              (1.0 + cfg_.hello_jitter * beacon_rng_.uniform(-1.0, 1.0));
          async_interval_.push_back(interval);
          simulator_.schedule_serial(beacon_rng_.uniform(0.0, interval), key_of(u),
                                     [this, u] { async_hello(u); });
        }
        break;
      case core::ConsistencyMode::kProactive:
        for (NodeId u = 0; u < nodes_.size(); ++u) {
          proactive_skew_.push_back(beacon_rng_.uniform(
              0.0, kProactiveSkewFraction * cfg_.hello_interval));
        }
        schedule_proactive_round(0);
        break;
      case core::ConsistencyMode::kReactive:
        sync_round_seen_.assign(nodes_.size(), 0);
        schedule_reactive_round(1);  // round numbers start at 1 (0 = unseen)
        break;
    }
  }

  void async_hello(NodeId u) {
    const obs::ScopedTimer timer(probe_.profiler(), obs::Category::kBeaconing);
    const double now = simulator_.now();
    const std::uint64_t version = ++last_hello_version_[u];
    broadcast_hello(u, version, now);
    if (now + async_interval_[u] <= cfg_.duration) {
      simulator_.schedule_serial(now + async_interval_[u], key_of(u),
                                 [this, u] { async_hello(u); });
    }
  }

  void schedule_proactive_round(std::uint64_t round) {
    const double base = static_cast<double>(round) * cfg_.hello_interval;
    if (base > cfg_.duration) return;
    for (NodeId u = 0; u < nodes_.size(); ++u) {
      simulator_.schedule_serial(base + proactive_skew_[u], key_of(u),
                                 [this, u, round] {
        const obs::ScopedTimer timer(probe_.profiler(),
                                     obs::Category::kBeaconing);
        last_hello_version_[u] = round;
        broadcast_hello(u, round, simulator_.now());
      });
    }
    simulator_.schedule_at(base, [this, round] {
      schedule_proactive_round(round + 1);
    });
  }

  void schedule_reactive_round(std::uint64_t round) {
    const double start = static_cast<double>(round - 1) * cfg_.hello_interval;
    if (start > cfg_.duration) return;
    // The initiator (node 0) starts the synchronization flood; every node
    // sends its Hello on first contact with the round, then decides after
    // a bounded wait.
    simulator_.schedule_serial(start, 0, [this, round] {
      sync_contact(0, round);
    });
    simulator_.schedule_at(start + kReactiveDecisionWait, [this, round] {
      const obs::ScopedTimer timer(probe_.profiler(),
                                   obs::Category::kSyncFlood);
      for (auto& node : nodes_) {
        node.refresh_selection_versioned(simulator_.now(), round);
      }
    });
    simulator_.schedule_at(start, [this, round] {
      schedule_reactive_round(round + 1);
    });
  }

  void sync_contact(NodeId u, std::uint64_t round) {
    if (sync_round_seen_[u] >= round) return;
    const obs::ScopedTimer timer(probe_.profiler(),
                                 obs::Category::kSyncFlood);
    sync_round_seen_[u] = round;
    const double now = simulator_.now();
    last_hello_version_[u] = round;
    broadcast_hello(u, round, now);
    ++control_transmissions_;  // the separate initiation forward
    probe_.count_node(obs::Counter::kSyncFloodForwards, u);
    probe_.trace(obs::EventKind::kSyncContact, now, u, 0.0, round);
    // Forward the initiation (flooding: every node forwards once).
    if (channel_) {
      channel_->transmit(u, cfg_.normal_range, kSyncBits,
                         [this, round](NodeId v) { sync_contact(v, round); });
      return;
    }
    medium_.receivers(u, cfg_.normal_range, now, receiver_buffer_);
    // Each forward draws its own randomized backoff, so the per-receiver
    // delivery times genuinely differ — a shared fan-out event cannot
    // carry per-receiver timestamps.
    // mstc-lint: allow(per-receiver-schedule)
    for (NodeId v : receiver_buffer_) {
      const double delay = kPropagationDelay +
                           backoff_rng_.uniform(kMinForwardBackoff,
                                                kMaxForwardBackoff);
      simulator_.schedule_serial(now + delay, key_of(v), [this, v, round] {
        sync_contact(v, round);
      });
    }
  }

  // mstc:hot — one call per Hello; under sharding its deliveries and the
  // sender's refresh become node-local (deferred, shard-parallel) events
  void broadcast_hello(NodeId u, std::uint64_t version, double now) {
    ++control_transmissions_;
    // Sharded: send with the record-only half and defer the (expensive)
    // selection refresh to a node-local event at the same instant — the
    // Hello payload never depends on the refresh, and a same-time local
    // event keyed to u runs before anything that can observe u again, so
    // the outcome is byte-identical to the fused on_hello_send.
    const core::HelloRecord hello =
        sharded_
            ? nodes_[u].on_hello_send_record(now, medium_.position(u, now),
                                             version)
            : nodes_[u].on_hello_send(now, medium_.position(u, now), version);
    if (sharded_ && cfg_.mode != core::ConsistencyMode::kReactive) {
      simulator_.schedule_local(now, key_of(u), [this, u, version, now] {
        nodes_[u].post_send_refresh(now, version);
      });
    }
    if (channel_) {
      channel_->transmit(u, cfg_.normal_range, kHelloBits,
                         [this, hello](NodeId v) {
                           if (drop_by_loss_injection(v)) return;
                           nodes_[v].on_hello_receive(hello,
                                                      simulator_.now());
                         });
      return;
    }
    medium_.receivers(u, cfg_.normal_range, now, receiver_buffer_);
    // Capturing the delivery time at schedule time is bit-identical to
    // reading now() at execution (schedule_in computes the same sum), and
    // lets the handler run off the driving thread.
    const double at = now + kPropagationDelay;
    if (batch_delivery_) {
      // Loss injection is applied here, in ascending receiver order, so
      // the loss_rng_ stream is drawn exactly as the per-receiver loop
      // below draws it; the surviving set then schedules as ONE fan-out
      // event whose pre-assigned sequence span reproduces the per-receiver
      // loop's (time, sequence) keys byte-for-byte.
      fanout_receivers_.clear();
      for (NodeId v : receiver_buffer_) {
        if (drop_by_loss_injection(v)) continue;
        fanout_receivers_.push_back(key_of(v));
      }
      auto deliver = [this, hello, at](std::uint32_t v) {
        nodes_[v].on_hello_receive(hello, at);
      };
      // The hot-path closure: ONE per Hello (not per receiver). It is
      // shared across deliveries — and across shards under the parallel
      // drain — so it must not mutate its captures; on_hello_receive
      // touches only the receiving node's state.
      static_assert(sim::FanoutHandler::fits_inline<decltype(deliver)>);
      simulator_.schedule_fanout(at, fanout_receivers_, std::move(deliver));
      return;
    }
    // Unbatched escape hatch (MSTC_NO_BATCH_DELIVERY): the differential
    // baseline the batched fan-out is byte-compared against.
    // mstc-lint: allow(per-receiver-schedule)
    for (NodeId v : receiver_buffer_) {
      if (drop_by_loss_injection(v)) continue;
      auto deliver = [this, v, hello, at] {
        nodes_[v].on_hello_receive(hello, at);
      };
      // The hot-path handler: per receiver, per Hello. It must stay inside
      // the event kernel's inline storage or every delivery allocates.
      static_assert(sim::Handler::fits_inline<decltype(deliver)>);
      simulator_.schedule_local(at, key_of(v), std::move(deliver));
    }
  }

  /// Independent per-reception Hello loss (failure injection).
  [[nodiscard]] bool drop_by_loss_injection(NodeId receiver) {
    const bool dropped =
        cfg_.hello_loss > 0.0 && loss_rng_.bernoulli(cfg_.hello_loss);
    if (dropped) {
      probe_.count_node(obs::Counter::kHelloLossDrops, receiver);
    }
    return dropped;
  }

  // --- flooding workload ----------------------------------------------

  struct Flood {
    std::vector<char> received;
    std::size_t count = 0;
    std::uint64_t pinned_version = 0;  // proactive routing timestamp
  };

  void schedule_floods() {
    if (cfg_.flood_rate <= 0.0) return;
    const double last_start = cfg_.duration - cfg_.flood_settle;
    double t = cfg_.warmup;
    std::size_t index = 0;
    while (t <= last_start) {
      simulator_.schedule_at(t, [this, index] { start_flood(index); });
      simulator_.schedule_at(t + cfg_.flood_settle,
                             [this, index] { finish_flood(index); });
      t += 1.0 / cfg_.flood_rate;
      ++index;
    }
    floods_.resize(index);
  }

  void start_flood(std::size_t index) {
    const obs::ScopedTimer timer(probe_.profiler(), obs::Category::kDataFlood);
    Flood& flood = floods_[index];
    // Reuse a retired membership vector (finish_flood's free list) so the
    // overlapping-flood steady state allocates nothing.
    if (!flood_pool_.empty()) {
      flood.received = std::move(flood_pool_.back());
      flood_pool_.pop_back();
    }
    flood.received.assign(nodes_.size(), 0);
    const NodeId source = traffic_rng_.uniform_below(nodes_.size());
    flood.received[source] = 1;
    flood.count = 1;
    probe_.trace(obs::EventKind::kFloodStart, simulator_.now(), source, 0.0,
                 index);
    if (cfg_.mode == core::ConsistencyMode::kProactive) {
      // Packets carry the source's latest decidable timestamp.
      flood.pinned_version =
          last_hello_version_[source] > 0 ? last_hello_version_[source] - 1 : 0;
    }
    forward_flood(index, source);
  }

  /// Marks v as having the packet (deduplicated) and lets it forward.
  void deliver_flood(std::size_t index, NodeId sender, NodeId v) {
    const obs::ScopedTimer timer(probe_.profiler(), obs::Category::kDataFlood);
    Flood& flood = floods_[index];
    // Empty => already scored and released; also dedupe deliveries.
    if (flood.received.empty() || flood.received[v]) return;
    // The sender's logical-neighbor list travels in the packet header; a
    // receiver not in it drops the packet (unless PN-enhanced).
    if (!nodes_[v].config().accept_physical_neighbors &&
        !nodes_[sender].is_logical(v)) {
      return;
    }
    flood.received[v] = 1;
    ++flood.count;
    probe_.count_node(obs::Counter::kFloodDeliveries, v);
    probe_.trace(obs::EventKind::kFloodDelivery, simulator_.now(), v, 0.0,
                 index);
    forward_flood(index, v);
  }

  void forward_flood(std::size_t index, NodeId u) {
    const double now = simulator_.now();
    probe_.count_node(obs::Counter::kBroadcastForwards, u);
    Flood& flood = floods_[index];
    // On-the-fly selection updates at every packet transmission:
    if (cfg_.mode == core::ConsistencyMode::kViewSync) {
      nodes_[u].refresh_selection(now);
    } else if (cfg_.mode == core::ConsistencyMode::kProactive) {
      nodes_[u].refresh_selection_versioned(now, flood.pinned_version);
    }
    if (channel_) {
      channel_->transmit(u, nodes_[u].extended_range(), kDataBits,
                         [this, index, u](NodeId v) {
                           deliver_flood(index, u, v);
                         });
      return;
    }
    medium_.receivers(u, nodes_[u].extended_range(), now, receiver_buffer_);
    forward_targets_.clear();
    for (NodeId v : receiver_buffer_) {
      if (!flood.received[v]) forward_targets_.push_back(v);
    }
    // Flood forwards carry per-receiver randomized backoffs (distinct
    // delivery times), so they cannot share one fan-out event.
    // mstc-lint: allow(per-receiver-schedule)
    for (NodeId v : forward_targets_) {
      const double delay = kPropagationDelay +
                           backoff_rng_.uniform(kMinForwardBackoff,
                                                kMaxForwardBackoff);
      simulator_.schedule_in(
          delay, [this, index, u, v] { deliver_flood(index, u, v); });
    }
  }

  void finish_flood(std::size_t index) {
    if (nodes_.size() < 2) return;
    const obs::ScopedTimer timer(probe_.profiler(), obs::Category::kDataFlood);
    const double others = static_cast<double>(nodes_.size() - 1);
    const double ratio =
        static_cast<double>(floods_[index].count - 1) / others;
    delivery_.add(ratio);
    probe_.observe(obs::Hist::kFloodDeliveryRatio, ratio);
    probe_.trace(obs::EventKind::kFloodScored, simulator_.now(), 0, ratio,
                 index);
    // Park the membership vector on the free list for the next flood;
    // clear() (not shrink_to_fit) leaves this slot in the empty state
    // deliver_flood reads as "already scored and released".
    flood_pool_.push_back(std::move(floods_[index].received));
    floods_[index].received.clear();
  }

  // --- snapshots -------------------------------------------------------

  void schedule_snapshots() {
    if (cfg_.snapshot_rate <= 0.0) return;
    for (double t = cfg_.warmup; t <= cfg_.duration;
         t += 1.0 / cfg_.snapshot_rate) {
      simulator_.schedule_at(t, [this] { take_snapshot(); });
    }
  }

  void take_snapshot() {
    const obs::ScopedTimer timer(probe_.profiler(), obs::Category::kSnapshot);
    medium_.positions(simulator_.now(), position_buffer_);
    // Grid-backed, scratch-reusing measurement; shares the medium's
    // crossover threshold so medium_grid_min_nodes = 0 forces both grids
    // on in the differential suites.
    const auto stats = metrics::measure_snapshot(
        nodes_, position_buffer_, snapshot_scratch_,
        {.brute_force = cfg_.snapshot_brute_force,
         .grid_min_nodes = cfg_.medium_grid_min_nodes,
         .scalar_filter = scalar_filter_},
        &probe_);
    strict_.add(stats.strict_connectivity);
    range_.add(stats.mean_range);
    logical_degree_.add(stats.mean_logical_degree);
    physical_degree_.add(stats.mean_physical_degree);
    probe_.count(obs::Counter::kSnapshots);
    probe_.observe(obs::Hist::kSnapshotConnectivity,
                   stats.strict_connectivity);
    probe_.trace(obs::EventKind::kSnapshot, simulator_.now(), 0,
                 stats.strict_connectivity, 0);
  }

  // --- state -----------------------------------------------------------

  ScenarioConfig cfg_;
  obs::RunObservation* observation_ = nullptr;
  obs::Probe probe_;
  // Immutable, possibly shared with concurrent replications (TraceCache);
  // must be declared before medium_, which aliases it.
  std::shared_ptr<const mobility::TraceSet> traces_;
  sim::Medium medium_;
  sim::Simulator simulator_;
  topology::ProtocolSuite suite_;
  std::vector<core::NodeController> nodes_;
  std::unique_ptr<mac::ContentionChannel> channel_;  // null under ideal MAC

  // Sharded-kernel state; empty when the replication resolved to serial.
  std::uint32_t shards_ = 1;
  bool sharded_ = false;
  /// Batched Hello fan-out (config flag + MSTC_NO_BATCH_DELIVERY hatch),
  /// resolved once per replication.
  bool batch_delivery_ = true;
  /// Scalar candidate-filter hatch (config flag + MSTC_FILTER_SCALAR),
  /// resolved once and fed to the medium and the snapshot path.
  bool scalar_filter_ = false;
  std::vector<topology::ProtocolSuite> shard_suites_;
  std::vector<obs::RunObservation> shard_obs_;  // merged into probe_'s after
  std::vector<obs::Probe> shard_probes_;

  std::vector<double> async_interval_;
  std::vector<double> proactive_skew_;
  std::vector<std::uint64_t> sync_round_seen_;
  std::vector<std::uint64_t> last_hello_version_;
  std::uint64_t control_transmissions_ = 0;

  util::Xoshiro256 beacon_rng_;
  util::Xoshiro256 traffic_rng_;
  util::Xoshiro256 loss_rng_;
  util::Xoshiro256 backoff_rng_;

  std::vector<Flood> floods_;
  std::vector<std::vector<char>> flood_pool_;  // retired `received` vectors
  std::vector<NodeId> receiver_buffer_;
  std::vector<std::uint32_t> fanout_receivers_;  // narrowed Hello fan-out set
  std::vector<NodeId> forward_targets_;
  std::vector<geom::Vec2> position_buffer_;
  metrics::SnapshotScratch snapshot_scratch_;

  util::Summary delivery_;
  util::Summary strict_;
  util::Summary range_;
  util::Summary logical_degree_;
  util::Summary physical_degree_;
};

}  // namespace

metrics::RunStats run_scenario(const ScenarioConfig& config) {
  return run_scenario(config, nullptr);
}

metrics::RunStats run_scenario(const ScenarioConfig& config,
                               obs::RunObservation* observation) {
  const obs::Probe probe(observation);
  std::optional<Scenario> scenario;
  {
    // Trace generation + controller construction dominate startup cost;
    // attribute them separately from the event loop.
    const obs::ScopedTimer timer(probe.profiler(), obs::Category::kSetup);
    scenario.emplace(config, observation);
  }
  return scenario->run();
}

std::uint32_t resolved_shard_count(const ScenarioConfig& config) {
  return effective_shards(config, nullptr);
}

}  // namespace mstc::runner
