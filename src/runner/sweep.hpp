// Repeated runs and parameter sweeps.
//
// Each configuration is repeated with derived seeds (the paper: 20 repeats,
// 95 % CIs) across the global thread pool; results are bit-identical to a
// serial execution because replication r always writes slot r.
#pragma once

#include <functional>
#include <vector>

#include "metrics/aggregate.hpp"
#include "runner/config.hpp"

namespace mstc::runner {

/// Runs `repeats` replications of `base` (seeds derived from base.seed) in
/// parallel and aggregates the per-run means.
[[nodiscard]] metrics::RunAggregator run_repeated(const ScenarioConfig& base,
                                                  std::size_t repeats);

/// Runs a whole batch of independent configurations, each repeated
/// `repeats` times, parallelizing over (configuration x replication).
/// Result i aggregates configs[i]'s replications.
[[nodiscard]] std::vector<metrics::RunAggregator> run_batch(
    const std::vector<ScenarioConfig>& configs, std::size_t repeats);

}  // namespace mstc::runner
