// Repeated runs and parameter sweeps.
//
// Each configuration is repeated with derived seeds (the paper: 20 repeats,
// 95 % CIs) across the global thread pool; results are bit-identical to a
// serial execution because replication r always writes slot r. The
// determinism suite (tests/determinism/) executes that claim against 1-, 2-
// and N-thread pools on every run.
#pragma once

#include <functional>
#include <vector>

#include "metrics/aggregate.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics_export.hpp"
#include "obs/probe.hpp"
#include "runner/config.hpp"
#include "util/thread_pool.hpp"

namespace mstc::runner {

/// Progress of a sweep, passed to SweepHooks::on_progress after every
/// completed replication.
struct SweepProgress {
  std::size_t completed = 0;  ///< replications finished so far
  std::size_t total = 0;      ///< configs x repeats
  double elapsed_seconds = 0.0;
  /// Naive remaining-time estimate (elapsed / completed * remaining).
  /// Meaningless unless eta_known — consumers must print "unknown", not 0,
  /// when it is false.
  double eta_seconds = 0.0;
  /// False until at least one replication has finished AND measurable wall
  /// time has elapsed; guards the division above.
  bool eta_known = false;
};

/// Optional observability for a sweep. Default-constructed hooks are
/// complete no-ops: the sweep runs exactly the un-hooked code path.
struct SweepHooks {
  /// Called after every completed replication. Invocations are serialized
  /// (an annotated util::Mutex inside run_batch_raw — see
  /// docs/STATIC_ANALYSIS.md), but arrive from worker threads in
  /// completion order — do not touch sweep results from inside.
  /// Wall-clock fields make this callback's *timing* non-deterministic;
  /// the sweep results stay a pure function of (configs, repeats).
  std::function<void(const SweepProgress&)> on_progress;
  /// When non-null, resized to configs.size() x repeats; replication r of
  /// configs[i] records into slot i * repeats + r (same layout as
  /// run_batch_raw results). Slot-per-task writes keep the sweep
  /// race-free and deterministic without any locking: a slot has exactly
  /// one writer, and readers run after the pool joins.
  std::vector<obs::RunObservation>* observations = nullptr;
  bool trace = false;    ///< record per-event traces into the slots
  bool profile = false;  ///< record wall-clock profiling into the slots
  /// Capture a per-replication resource ledger into each slot after its
  /// run completes (implies profile: the ledger's phase split needs the
  /// profiler). Requires `observations`.
  bool ledger = false;
  /// Keep a bounded ring of each replication's most recent trace events
  /// (obs::FlightRecorder) for post-mortems. O(1) memory per slot,
  /// independent of `trace`. Requires `observations`.
  bool flight = false;
  std::size_t flight_capacity = obs::FlightRecorder::kDefaultCapacity;
  /// Soft per-replication wall-clock deadline (seconds; 0 disables).
  /// Checked when the replication finishes — it cannot interrupt a run,
  /// only flag it — and exceeding it dumps a post-mortem. Requires
  /// `postmortem`.
  double soft_deadline_seconds = 0.0;
  /// Post-mortem sink for stragglers and exceptions. When set, a
  /// replication that throws dumps its identity, counters and flight ring
  /// before the exception continues to the pool (which still terminates —
  /// see util::ThreadPool — but the diagnosis survives on disk).
  obs::PostMortemWriter* postmortem = nullptr;
  /// Streaming metrics sink, fed each finished replication's slot in
  /// completion order (the exporter locks internally). Requires
  /// `observations`.
  obs::MetricsExporter* exporter = nullptr;
};

/// Runs `repeats` replications of `base` (seeds derived from base.seed) in
/// parallel and aggregates the per-run means.
[[nodiscard]] metrics::RunAggregator run_repeated(const ScenarioConfig& base,
                                                  std::size_t repeats);

/// Same, with sweep observability (progress callback and/or per-run
/// counter, trace and profiling slots). Results are byte-identical to the
/// un-hooked overload.
[[nodiscard]] metrics::RunAggregator run_repeated(const ScenarioConfig& base,
                                                  std::size_t repeats,
                                                  const SweepHooks& hooks);

/// Runs a whole batch of independent configurations, each repeated
/// `repeats` times, parallelizing over (configuration x replication).
/// Result i aggregates configs[i]'s replications.
[[nodiscard]] std::vector<metrics::RunAggregator> run_batch(
    const std::vector<ScenarioConfig>& configs, std::size_t repeats);

/// Same, but on an explicit pool. Results are a pure function of
/// (configs, repeats) — independent of the pool's thread count — which the
/// determinism tests assert byte-for-byte.
[[nodiscard]] std::vector<metrics::RunAggregator> run_batch(
    const std::vector<ScenarioConfig>& configs, std::size_t repeats,
    util::ThreadPool& pool);

/// Same, with sweep observability; results are byte-identical to the
/// un-hooked overload (asserted by the determinism suite).
[[nodiscard]] std::vector<metrics::RunAggregator> run_batch(
    const std::vector<ScenarioConfig>& configs, std::size_t repeats,
    util::ThreadPool& pool, const SweepHooks& hooks);

/// Per-replication raw results for configs[i], replication r at index
/// i * repeats + r; the building block of run_batch exposed so tests can
/// byte-compare unaggregated outputs across pool sizes.
[[nodiscard]] std::vector<metrics::RunStats> run_batch_raw(
    const std::vector<ScenarioConfig>& configs, std::size_t repeats,
    util::ThreadPool& pool);

/// Same, with sweep observability; the returned stats are byte-identical
/// with hooks on or off.
[[nodiscard]] std::vector<metrics::RunStats> run_batch_raw(
    const std::vector<ScenarioConfig>& configs, std::size_t repeats,
    util::ThreadPool& pool, const SweepHooks& hooks);

}  // namespace mstc::runner
