// Repeated runs and parameter sweeps.
//
// Each configuration is repeated with derived seeds (the paper: 20 repeats,
// 95 % CIs) across the global thread pool; results are bit-identical to a
// serial execution because replication r always writes slot r. The
// determinism suite (tests/determinism/) executes that claim against 1-, 2-
// and N-thread pools on every run.
#pragma once

#include <functional>
#include <vector>

#include "metrics/aggregate.hpp"
#include "runner/config.hpp"
#include "util/thread_pool.hpp"

namespace mstc::runner {

/// Runs `repeats` replications of `base` (seeds derived from base.seed) in
/// parallel and aggregates the per-run means.
[[nodiscard]] metrics::RunAggregator run_repeated(const ScenarioConfig& base,
                                                  std::size_t repeats);

/// Runs a whole batch of independent configurations, each repeated
/// `repeats` times, parallelizing over (configuration x replication).
/// Result i aggregates configs[i]'s replications.
[[nodiscard]] std::vector<metrics::RunAggregator> run_batch(
    const std::vector<ScenarioConfig>& configs, std::size_t repeats);

/// Same, but on an explicit pool. Results are a pure function of
/// (configs, repeats) — independent of the pool's thread count — which the
/// determinism tests assert byte-for-byte.
[[nodiscard]] std::vector<metrics::RunAggregator> run_batch(
    const std::vector<ScenarioConfig>& configs, std::size_t repeats,
    util::ThreadPool& pool);

/// Per-replication raw results for configs[i], replication r at index
/// i * repeats + r; the building block of run_batch exposed so tests can
/// byte-compare unaggregated outputs across pool sizes.
[[nodiscard]] std::vector<metrics::RunStats> run_batch_raw(
    const std::vector<ScenarioConfig>& configs, std::size_t repeats,
    util::ThreadPool& pool);

}  // namespace mstc::runner
