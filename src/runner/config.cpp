#include "runner/config.hpp"

#include "util/options.hpp"

namespace mstc::runner {

ScenarioConfig paper_scale(ScenarioConfig base) {
  base.duration = 100.0;
  base.flood_rate = 10.0;
  base.snapshot_rate = 10.0;
  return base;
}

ScenarioConfig apply_env_overrides(ScenarioConfig base) {
  if (util::env_flag("MSTC_PAPER_SCALE")) base = paper_scale(base);
  base.duration = util::env_or("MSTC_SIM_TIME", base.duration);
  base.node_count = static_cast<std::size_t>(util::env_or(
      "MSTC_NODES", static_cast<std::int64_t>(base.node_count)));
  base.flood_rate = util::env_or("MSTC_FLOOD_RATE", base.flood_rate);
  base.snapshot_rate = util::env_or("MSTC_SNAPSHOT_RATE", base.snapshot_rate);
  base.warmup = util::env_or("MSTC_WARMUP", base.warmup);
  if (util::env_flag("MSTC_MEDIUM_BRUTE")) base.medium_brute_force = true;
  if (util::env_flag("MSTC_NO_RECOMPUTE_CACHE")) base.recompute_cache = false;
  base.recompute_cache_min_skip_rate = util::env_or(
      "MSTC_RECOMPUTE_MIN_SKIP_RATE", base.recompute_cache_min_skip_rate);
  if (util::env_flag("MSTC_SNAPSHOT_BRUTE")) base.snapshot_brute_force = true;
  if (util::env_flag("MSTC_NO_TRACE_CACHE")) base.trace_cache = false;
  if (util::env_flag("MSTC_NO_BATCH_DELIVERY")) base.batch_delivery = false;
  if (util::env_flag("MSTC_FILTER_SCALAR")) base.scalar_filter = true;
  base.shards = static_cast<std::size_t>(
      util::env_or("MSTC_SHARDS", static_cast<std::int64_t>(base.shards)));
  base.queue = util::env_or("MSTC_EVENT_QUEUE", base.queue);
  return base;
}

std::size_t sweep_repeats(std::size_t fallback) {
  if (util::env_flag("MSTC_PAPER_SCALE")) fallback = 20;
  return static_cast<std::size_t>(util::env_or(
      "MSTC_REPEATS", static_cast<std::int64_t>(fallback)));
}

}  // namespace mstc::runner
