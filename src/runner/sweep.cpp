#include "runner/sweep.hpp"

#include <atomic>
#include <cstdio>
#include <exception>

#include "obs/profile.hpp"
#include "runner/scenario.hpp"
#include "util/mutex.hpp"
#include "util/prng.hpp"
#include "util/rusage.hpp"
#include "util/thread_pool.hpp"

namespace mstc::runner {

namespace {

/// One-line config description for post-mortems (obs stays independent of
/// ScenarioConfig, so the runner renders it).
std::string config_summary(const ScenarioConfig& cfg) {
  char buffer[256];
  std::snprintf(buffer, sizeof buffer,
                "protocol=%s mode=%s nodes=%zu mobility=%s speed=%.3g "
                "buffer=%.3g duration=%.3g",
                cfg.protocol.c_str(),
                std::string(core::to_string(cfg.mode)).c_str(), cfg.node_count,
                cfg.mobility_model.c_str(), cfg.average_speed,
                cfg.buffer_width, cfg.duration);
  return buffer;
}

/// Assembles and writes one incident from whatever the slot holds.
void dump_postmortem(obs::PostMortemWriter& writer, const SweepHooks& hooks,
                     const ScenarioConfig& cfg, std::size_t config_index,
                     std::size_t replication, const char* reason,
                     std::string detail, double wall_seconds,
                     const obs::RunObservation* slot) {
  obs::PostMortem incident;
  incident.config_index = config_index;
  incident.replication = replication;
  incident.seed = cfg.seed;
  incident.reason = reason;
  incident.detail = std::move(detail);
  incident.wall_seconds = wall_seconds;
  incident.soft_deadline_seconds = hooks.soft_deadline_seconds;
  incident.config_summary = config_summary(cfg);
  if (slot != nullptr) {
    incident.counters = &slot->counters;
    if (slot->ledger.captured) incident.ledger = &slot->ledger;
    if (slot->flight_on) incident.flight = &slot->flight;
  }
  writer.write(incident);
}

}  // namespace

std::vector<metrics::RunStats> run_batch_raw(
    const std::vector<ScenarioConfig>& configs, std::size_t repeats,
    util::ThreadPool& pool, const SweepHooks& hooks) {
  const std::size_t total = configs.size() * repeats;
  std::vector<metrics::RunStats> results(total);

  obs::RunObservation* slots = nullptr;
  if (hooks.observations != nullptr) {
    hooks.observations->assign(total, obs::RunObservation{});
    for (obs::RunObservation& slot : *hooks.observations) {
      slot.trace_on = hooks.trace;
      // The ledger's phase split reads the profiler, so ledger implies
      // profile.
      slot.profile_on = hooks.profile || hooks.ledger;
      slot.flight_on = hooks.flight;
      if (hooks.flight) slot.flight.set_capacity(hooks.flight_capacity);
    }
    slots = hooks.observations->data();
  }

  // Ledger capture, the straggler watchdog and the exporter all need the
  // replication's wall time; everything else skips the clock reads.
  const bool ledger_on = hooks.ledger && slots != nullptr;
  const bool watchdog_on =
      hooks.postmortem != nullptr && hooks.soft_deadline_seconds > 0.0;
  const bool time_tasks = ledger_on || watchdog_on ||
                          hooks.postmortem != nullptr ||
                          (hooks.exporter != nullptr && slots != nullptr);

  // Progress plumbing. The counter is the only cross-task shared state;
  // the callback itself is serialized (progress_mutex) so user code needs
  // no locking. Result and observation slots need neither: replication r
  // writes slot r and nothing else, so tasks never share a slot.
  std::atomic<std::size_t> completed{0};
  util::Mutex progress_mutex;
  const bool report = static_cast<bool>(hooks.on_progress);
  const std::uint64_t wall_start = report ? obs::wall_now_ns() : 0;

  util::parallel_for(pool, total, [&](std::size_t task) {
    const std::size_t config_index = task / repeats;
    const std::size_t replication = task % repeats;
    ScenarioConfig cfg = configs[config_index];
    cfg.seed = util::derive_seed(cfg.seed, replication + 1);
    obs::RunObservation* slot = slots != nullptr ? &slots[task] : nullptr;
    const std::uint64_t task_start = time_tasks ? obs::wall_now_ns() : 0;
    const std::uint64_t allocations_before =
        ledger_on ? obs::allocation_count() : 0;
    if (hooks.postmortem != nullptr) {
      try {
        results[task] = run_scenario(cfg, slot);
      } catch (const std::exception& error) {
        // Pool tasks must not throw (util::ThreadPool terminates on
        // escape); dump the diagnosis to disk first, then let it escape —
        // behavior is unchanged, but the crash is diagnosable.
        const double wall_seconds =
            static_cast<double>(obs::wall_now_ns() - task_start) * 1e-9;
        dump_postmortem(*hooks.postmortem, hooks, cfg, config_index,
                        replication, "exception", error.what(), wall_seconds,
                        slot);
        throw;
      }
    } else {
      results[task] = run_scenario(cfg, slot);
    }
    const std::uint64_t task_wall_ns =
        time_tasks ? obs::wall_now_ns() - task_start : 0;
    if (ledger_on) {
      slot->ledger.capture(*slot, task_wall_ns, util::peak_rss_bytes(),
                           allocations_before);
    }
    if (watchdog_on) {
      const double wall_seconds = static_cast<double>(task_wall_ns) * 1e-9;
      if (wall_seconds > hooks.soft_deadline_seconds) {
        char detail[96];
        std::snprintf(detail, sizeof detail,
                      "replication took %.3fs against a %.3fs soft deadline",
                      wall_seconds, hooks.soft_deadline_seconds);
        dump_postmortem(*hooks.postmortem, hooks, cfg, config_index,
                        replication, "soft_deadline_exceeded", detail,
                        wall_seconds, slot);
      }
    }
    if (hooks.exporter != nullptr && slot != nullptr) {
      // The slot belongs to a finished replication, so reading it here is
      // race-free; the exporter serializes its own aggregates.
      hooks.exporter->record(*slot);
    }
    if (report) {
      const std::size_t done = completed.fetch_add(1) + 1;
      SweepProgress progress;
      progress.completed = done;
      progress.total = total;
      progress.elapsed_seconds =
          static_cast<double>(obs::wall_now_ns() - wall_start) * 1e-9;
      progress.eta_known = done > 0 && progress.elapsed_seconds > 0.0;
      progress.eta_seconds =
          progress.eta_known
              ? progress.elapsed_seconds / static_cast<double>(done) *
                    static_cast<double>(total - done)
              : 0.0;
      const util::MutexLock lock(progress_mutex);
      hooks.on_progress(progress);
    }
  });
  return results;
}

std::vector<metrics::RunStats> run_batch_raw(
    const std::vector<ScenarioConfig>& configs, std::size_t repeats,
    util::ThreadPool& pool) {
  return run_batch_raw(configs, repeats, pool, SweepHooks{});
}

std::vector<metrics::RunAggregator> run_batch(
    const std::vector<ScenarioConfig>& configs, std::size_t repeats,
    util::ThreadPool& pool, const SweepHooks& hooks) {
  const std::vector<metrics::RunStats> results =
      run_batch_raw(configs, repeats, pool, hooks);
  std::vector<metrics::RunAggregator> aggregated(configs.size());
  for (std::size_t task = 0; task < results.size(); ++task) {
    aggregated[task / repeats].add(results[task]);
  }
  return aggregated;
}

std::vector<metrics::RunAggregator> run_batch(
    const std::vector<ScenarioConfig>& configs, std::size_t repeats,
    util::ThreadPool& pool) {
  return run_batch(configs, repeats, pool, SweepHooks{});
}

std::vector<metrics::RunAggregator> run_batch(
    const std::vector<ScenarioConfig>& configs, std::size_t repeats) {
  return run_batch(configs, repeats, util::global_pool());
}

metrics::RunAggregator run_repeated(const ScenarioConfig& base,
                                    std::size_t repeats) {
  return run_batch({base}, repeats).front();
}

metrics::RunAggregator run_repeated(const ScenarioConfig& base,
                                    std::size_t repeats,
                                    const SweepHooks& hooks) {
  return run_batch({base}, repeats, util::global_pool(), hooks).front();
}

}  // namespace mstc::runner
