#include "runner/sweep.hpp"

#include <atomic>

#include "obs/profile.hpp"
#include "runner/scenario.hpp"
#include "util/mutex.hpp"
#include "util/prng.hpp"
#include "util/thread_pool.hpp"

namespace mstc::runner {

std::vector<metrics::RunStats> run_batch_raw(
    const std::vector<ScenarioConfig>& configs, std::size_t repeats,
    util::ThreadPool& pool, const SweepHooks& hooks) {
  const std::size_t total = configs.size() * repeats;
  std::vector<metrics::RunStats> results(total);

  obs::RunObservation* slots = nullptr;
  if (hooks.observations != nullptr) {
    hooks.observations->assign(total, obs::RunObservation{});
    for (obs::RunObservation& slot : *hooks.observations) {
      slot.trace_on = hooks.trace;
      slot.profile_on = hooks.profile;
    }
    slots = hooks.observations->data();
  }

  // Progress plumbing. The counter is the only cross-task shared state;
  // the callback itself is serialized (progress_mutex) so user code needs
  // no locking. Result and observation slots need neither: replication r
  // writes slot r and nothing else, so tasks never share a slot.
  std::atomic<std::size_t> completed{0};
  util::Mutex progress_mutex;
  const bool report = static_cast<bool>(hooks.on_progress);
  const std::uint64_t wall_start = report ? obs::wall_now_ns() : 0;

  util::parallel_for(pool, total, [&](std::size_t task) {
    const std::size_t config_index = task / repeats;
    const std::size_t replication = task % repeats;
    ScenarioConfig cfg = configs[config_index];
    cfg.seed = util::derive_seed(cfg.seed, replication + 1);
    results[task] =
        run_scenario(cfg, slots != nullptr ? &slots[task] : nullptr);
    if (report) {
      const std::size_t done = completed.fetch_add(1) + 1;
      SweepProgress progress;
      progress.completed = done;
      progress.total = total;
      progress.elapsed_seconds =
          static_cast<double>(obs::wall_now_ns() - wall_start) * 1e-9;
      progress.eta_seconds =
          progress.elapsed_seconds / static_cast<double>(done) *
          static_cast<double>(total - done);
      const util::MutexLock lock(progress_mutex);
      hooks.on_progress(progress);
    }
  });
  return results;
}

std::vector<metrics::RunStats> run_batch_raw(
    const std::vector<ScenarioConfig>& configs, std::size_t repeats,
    util::ThreadPool& pool) {
  return run_batch_raw(configs, repeats, pool, SweepHooks{});
}

std::vector<metrics::RunAggregator> run_batch(
    const std::vector<ScenarioConfig>& configs, std::size_t repeats,
    util::ThreadPool& pool, const SweepHooks& hooks) {
  const std::vector<metrics::RunStats> results =
      run_batch_raw(configs, repeats, pool, hooks);
  std::vector<metrics::RunAggregator> aggregated(configs.size());
  for (std::size_t task = 0; task < results.size(); ++task) {
    aggregated[task / repeats].add(results[task]);
  }
  return aggregated;
}

std::vector<metrics::RunAggregator> run_batch(
    const std::vector<ScenarioConfig>& configs, std::size_t repeats,
    util::ThreadPool& pool) {
  return run_batch(configs, repeats, pool, SweepHooks{});
}

std::vector<metrics::RunAggregator> run_batch(
    const std::vector<ScenarioConfig>& configs, std::size_t repeats) {
  return run_batch(configs, repeats, util::global_pool());
}

metrics::RunAggregator run_repeated(const ScenarioConfig& base,
                                    std::size_t repeats) {
  return run_batch({base}, repeats).front();
}

metrics::RunAggregator run_repeated(const ScenarioConfig& base,
                                    std::size_t repeats,
                                    const SweepHooks& hooks) {
  return run_batch({base}, repeats, util::global_pool(), hooks).front();
}

}  // namespace mstc::runner
