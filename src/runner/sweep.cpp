#include "runner/sweep.hpp"

#include "runner/scenario.hpp"
#include "util/prng.hpp"
#include "util/thread_pool.hpp"

namespace mstc::runner {

std::vector<metrics::RunStats> run_batch_raw(
    const std::vector<ScenarioConfig>& configs, std::size_t repeats,
    util::ThreadPool& pool) {
  const std::size_t total = configs.size() * repeats;
  std::vector<metrics::RunStats> results(total);
  util::parallel_for(pool, total, [&](std::size_t task) {
    const std::size_t config_index = task / repeats;
    const std::size_t replication = task % repeats;
    ScenarioConfig cfg = configs[config_index];
    cfg.seed = util::derive_seed(cfg.seed, replication + 1);
    results[task] = run_scenario(cfg);
  });
  return results;
}

std::vector<metrics::RunAggregator> run_batch(
    const std::vector<ScenarioConfig>& configs, std::size_t repeats,
    util::ThreadPool& pool) {
  const std::vector<metrics::RunStats> results =
      run_batch_raw(configs, repeats, pool);
  std::vector<metrics::RunAggregator> aggregated(configs.size());
  for (std::size_t task = 0; task < results.size(); ++task) {
    aggregated[task / repeats].add(results[task]);
  }
  return aggregated;
}

std::vector<metrics::RunAggregator> run_batch(
    const std::vector<ScenarioConfig>& configs, std::size_t repeats) {
  return run_batch(configs, repeats, util::global_pool());
}

metrics::RunAggregator run_repeated(const ScenarioConfig& base,
                                    std::size_t repeats) {
  return run_batch({base}, repeats).front();
}

}  // namespace mstc::runner
