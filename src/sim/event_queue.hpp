// Pluggable event-queue backends for the simulation kernel.
//
// The kernel orders events by (time, sequence) — a strict total order
// (sequence numbers are unique), so ANY correct priority queue pops the
// exact same stream. That makes the queue a swappable implementation
// detail with a byte-identity contract: the binary heap stays as the
// reference backend, and the calendar queue below is the fast path for
// the kernel's real workload — near-periodic timers (Hello beacons,
// expiry sweeps, snapshot ticks) plus dense same-instant fan-outs
// (delivery bursts one propagation delay ahead).
//
// Calendar backend in one paragraph: events hash into an array of time
// buckets of width `w` (bucket = floor(time / w)); a power-of-two window
// of buckets starting at the bucket of the last popped event is directly
// addressable, and everything scheduled past the window waits unsorted in
// an overflow ladder whose minimum bucket is tracked. Pops drain the
// current bucket in exact (time, sequence) order — each bucket is sorted
// once when first read, and events appended to a partially-consumed
// bucket are sorted and merged into its unconsumed suffix — then scan
// forward to the next non-empty bucket. When the window drains, the
// overflow rebases it (O(overflow) per window span, a vanishing
// per-event cost). Push and pop touch O(1) contiguous memory instead of
// an O(log E) pointer-free but cache-hostile heap sift, which is what
// keeps events/s flat from n=500 to n=100k (see docs/PERFORMANCE.md,
// "The calendar event queue").
//
// Sizing is self-correcting: the width starts from a scenario hint (or is
// estimated from the first batch of staged events) and the queue
// periodically re-derives it from observed bucket occupancy and scan
// lengths, rebuilding in place when the estimate was off (counted as
// kernel_queue_resizes). All sizing decisions read only event data —
// never wall clocks or machine facts — so runs stay deterministic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "obs/probe.hpp"

namespace mstc::sim {

using Time = double;

/// Queue entry: ordering data plus the index of the kernel's Handler
/// slot, so reordering moves 24 trivially-copyable bytes instead of
/// closures. `key` carries the simulator's node id / local flag and never
/// participates in ordering.
struct EventKey {
  Time time;
  std::uint64_t sequence;
  std::uint32_t slot;
  std::uint32_t key;
};

/// Strict (time, sequence) order — FIFO among simultaneous events.
/// Sequences are unique, so this is a total order: sorting with it is
/// deterministic regardless of the sort algorithm's stability.
struct EarlierEvent {
  bool operator()(const EventKey& a, const EventKey& b) const noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.sequence < b.sequence;
  }
};

enum class QueueBackend : std::uint8_t {
  kHeap,      ///< std::push_heap/pop_heap reference implementation
  kCalendar,  ///< bucketed calendar queue with overflow ladder
};

/// Parses a backend name ("heap" / "calendar"); nullopt when unknown.
[[nodiscard]] std::optional<QueueBackend> parse_queue_backend(
    std::string_view name) noexcept;
[[nodiscard]] const char* queue_backend_name(QueueBackend backend) noexcept;

struct QueueConfig {
  QueueBackend backend = QueueBackend::kHeap;
  /// Calendar bucket width in sim-seconds. 0 (default) stages the first
  /// events and derives a width from their spacing at the first pop; the
  /// occupancy-driven self-resize corrects either starting point.
  double bucket_width = 0.0;
};

class EventQueue {
 public:
  /// Selects the backend and its sizing hints. Must be called while the
  /// queue is empty (the kernel configures before scheduling anything).
  void configure(const QueueConfig& config);

  [[nodiscard]] QueueBackend backend() const noexcept {
    return config_.backend;
  }

  /// Attaches the kernel's probe (nullable): kernel_queue_resizes counts
  /// and the kernel_bucket_scan_len histogram. Observation never feeds
  /// back — sizing decisions are taken from unconditionally-kept stats.
  void set_probe(const obs::Probe* probe) noexcept { probe_ = probe; }

  /// Pre-sizes for `expected` simultaneously-pending events; also picks
  /// the calendar window's bucket count (a power of two targeting
  /// kTargetOccupancy events per bucket).
  void reserve(std::size_t expected);

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  void push(const EventKey& event);

  /// Earliest event under (time, sequence) order. The reference stays
  /// valid until the next push/pop. Requires !empty().
  [[nodiscard]] const EventKey& peek();

  /// Removes and returns the earliest event. Requires !empty().
  EventKey pop();

  /// Calendar rebuilds triggered by the occupancy self-resize (0 for the
  /// heap backend); mirrors the kernel_queue_resizes counter.
  [[nodiscard]] std::uint64_t resizes() const noexcept { return resizes_; }

  /// Current calendar bucket width (0 until derived); exposed for tests.
  [[nodiscard]] double bucket_width() const noexcept { return width_; }

  // Self-sizing constants, public so tests can pin behavior against them.
  static constexpr double kTargetOccupancy = 8.0;   ///< events per bucket
  static constexpr std::uint64_t kResizeCheckInterval = 4096;  ///< pops
  static constexpr double kMinBucketWidth = 1e-7;   ///< seconds
  static constexpr double kMaxBucketWidth = 10.0;   ///< seconds

 private:
  /// One calendar bucket. [0, cursor) is consumed, [cursor, sorted) is
  /// the sorted unconsumed suffix, [sorted, size) is the unsorted append
  /// tail (events pushed since the last sort). cursor <= sorted always.
  struct Bucket {
    std::vector<EventKey> events;
    std::uint32_t cursor = 0;
    std::uint32_t sorted = 0;
  };

  [[nodiscard]] std::uint64_t bucket_of(Time t) const noexcept {
    // Sim time is never negative, so truncation is floor.
    return static_cast<std::uint64_t>(t / width_);
  }

  void push_calendar(const EventKey& event);
  /// Locates the earliest event (cached between peek and pop): scans
  /// forward from the base bucket, sorting/merging the first non-empty
  /// bucket, rebasing from the overflow ladder when the window drains.
  const EventKey* find_min_calendar();
  void ensure_sorted(Bucket& bucket);
  /// Derives the initial width from the staged events' spacing.
  void init_width();
  /// Allocates the bucket window (idempotent; width must be set).
  void ensure_buckets();
  /// Moves every overflow event whose bucket fits the window in; rebases
  /// the window to the overflow minimum when the window is empty.
  void redistribute_overflow();
  /// Re-derives the width from occupancy/scan stats; rebuilds on change.
  void maybe_resize();
  /// Collects every pending event and re-inserts it under `new_width`.
  void rebuild(double new_width);

  QueueConfig config_;
  const obs::Probe* probe_ = nullptr;
  std::size_t size_ = 0;
  std::size_t expected_ = 0;  // reserve() hint

  // Heap backend: min-heap via std::push_heap/pop_heap.
  std::vector<EventKey> heap_;

  // Calendar backend. The window covers absolute buckets
  // [base_bucket_, base_bucket_ + buckets_.size()); slot = bucket & mask_.
  std::vector<Bucket> buckets_;
  std::size_t mask_ = 0;
  double width_ = 0.0;  // 0 until configured/derived (staging mode)
  std::uint64_t base_bucket_ = 0;
  std::vector<EventKey> overflow_;  // unsorted, beyond the window
  static constexpr std::uint64_t kNoBucket = ~std::uint64_t{0};
  std::uint64_t overflow_min_bucket_ = kNoBucket;
  Time staged_min_time_ = 0.0;  // min staged time while width_ == 0
  bool have_staged_min_ = false;
  std::vector<EventKey> scratch_;  // merge/rebuild buffer (capacity reused)

  // peek()/pop() share one located minimum; pushes that sort earlier
  // invalidate it.
  bool peeked_ = false;
  std::uint64_t peek_bucket_ = 0;

  // Self-resize statistics (reset every check interval).
  std::uint64_t pops_since_check_ = 0;
  std::uint64_t stat_sorted_events_ = 0;   // occupancy at first sort
  std::uint64_t stat_sorted_buckets_ = 0;  // buckets first-sorted
  std::uint64_t stat_scanned_ = 0;         // empty buckets skipped
  std::uint64_t stat_finds_ = 0;           // find_min cache misses
  std::uint64_t resizes_ = 0;
};

}  // namespace mstc::sim
