// Small-buffer-optimized event handler: the kernel's replacement for
// std::function<void()>.
//
// Scheduling an event used to heap-allocate a std::function closure; at
// n x d deliveries per simulated second that allocation dominated the
// event loop. BasicHandler stores the callable inline in kInlineSize
// bytes of embedded storage (an ops-table dispatches
// invoke/relocate/destroy), so every closure in src/ schedules without
// touching the heap. Oversized or over-aligned callables still work —
// they fall back to a single heap-allocated copy behind a pointer in the
// same storage — but the hot paths static_assert `fits_inline` at their
// scheduling sites so growth past the buffer is a compile error, not a
// silent perf cliff.
//
// Two instantiations are used by the kernel:
//   Handler       = BasicHandler<void()>               — one event, one call.
//   FanoutHandler = BasicHandler<void(std::uint32_t)>  — one batched
//     broadcast: the kernel invokes the same stored callable once per
//     receiver id, so a d-receiver Hello costs one closure instead of d.
//
// BasicHandler is move-only (like the closures it carries) and its
// moved-from state is empty; invoking an empty handler is undefined
// (asserted).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace mstc::sim {

template <typename Signature>
class BasicHandler;

template <typename... Args>
class BasicHandler<void(Args...)> {
 public:
  /// Inline storage, sized for the largest closure scheduled anywhere in
  /// src/ — mac::Channel's backoff-retry lambda (this + sender + range +
  /// bits + tries_left + two std::function callbacks, ~104 bytes on
  /// LP64). The scheduling sites static_assert fits_inline, so growing a
  /// capture past this is caught at compile time.
  static constexpr std::size_t kInlineSize = 120;

  /// True when F is stored inline (no allocation): it fits, is no more
  /// aligned than max_align_t, and can be relocated noexcept (the kernel
  /// moves handlers while growing and draining its queue).
  template <typename F>
  static constexpr bool fits_inline =
      sizeof(F) <= kInlineSize && alignof(F) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<F>;

  BasicHandler() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, BasicHandler> &&
                std::is_invocable_r_v<void, std::decay_t<F>&, Args...>>>
  // NOLINTNEXTLINE(google-explicit-constructor): converts like std::function
  BasicHandler(F&& callable) {  // NOLINT(bugprone-forwarding-reference-overload)
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(callable));
      ops_ = &kInlineOps<Fn>;
    } else {
      // Documented fallback: one allocation, pointer parked inline.
      ::new (static_cast<void*>(storage_))
          Fn*(new Fn(std::forward<F>(callable)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  BasicHandler(BasicHandler&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) ops_->relocate(storage_, other.storage_);
    other.ops_ = nullptr;
  }

  BasicHandler& operator=(BasicHandler&& other) noexcept {
    if (this != &other) {
      if (ops_ != nullptr) ops_->destroy(storage_);
      ops_ = other.ops_;
      if (ops_ != nullptr) ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
    return *this;
  }

  BasicHandler(const BasicHandler&) = delete;
  BasicHandler& operator=(const BasicHandler&) = delete;

  ~BasicHandler() {
    if (ops_ != nullptr) ops_->destroy(storage_);
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  void operator()(Args... args) {
    assert(ops_ != nullptr && "invoking an empty handler");
    ops_->invoke(storage_, args...);
  }

 private:
  struct Ops {
    void (*invoke)(void* storage, Args... args);
    /// Move-constructs into `dst` and destroys the source — the two are
    /// fused so moved-from handlers hold nothing.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <typename Fn>
  static constexpr Ops kInlineOps{
      [](void* storage, Args... args) {
        (*static_cast<Fn*>(storage))(args...);
      },
      [](void* dst, void* src) noexcept {
        Fn* from = static_cast<Fn*>(src);
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* storage) noexcept { static_cast<Fn*>(storage)->~Fn(); }};

  template <typename Fn>
  static constexpr Ops kHeapOps{
      [](void* storage, Args... args) {
        (**static_cast<Fn**>(storage))(args...);
      },
      [](void* dst, void* src) noexcept {
        ::new (dst) Fn*(*static_cast<Fn**>(src));
      },
      [](void* storage) noexcept { delete *static_cast<Fn**>(storage); }};

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
};

/// One event, one call — the carrier behind every schedule_* entry point.
using Handler = BasicHandler<void()>;

/// One batched broadcast: invoked once per receiver id by the kernel's
/// fan-out dispatch (see Simulator::schedule_fanout).
using FanoutHandler = BasicHandler<void(std::uint32_t)>;

}  // namespace mstc::sim
