#include "sim/simulator.hpp"

#include <cassert>
#include <utility>

#include "util/thread_pool.hpp"

namespace mstc::sim {

void Simulator::reserve_events(std::size_t expected_events) {
  queue_.reserve(expected_events);
  slots_.reserve(expected_events);
  free_slots_.reserve(expected_events);
}

// mstc:hot — runs once per scheduled event; slot reuse keeps it allocation-free
void Simulator::push_event(Time at, std::uint32_t key, Handler handler) {
  assert(at >= now_ && "cannot schedule in the past");
  assert(!in_flush_ && "deferred node-local handlers must not schedule");
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = std::move(handler);
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(std::move(handler));
  }
  queue_.push(EventKey{at, next_sequence_++, slot, key});
  if (probe_ != nullptr) probe_->count(obs::Counter::kSimEventsScheduled);
}

void Simulator::schedule_at(Time at, Handler handler) {
  push_event(at, kNoKey, std::move(handler));
}

void Simulator::schedule_serial(Time at, std::uint32_t node, Handler handler) {
  assert(node < kNoKey);
  assert(plan_.shards <= 1 || node < owner_.size());
  push_event(at, node, std::move(handler));
}

// mstc:hot — the shard-queue entry: one push per Hello delivery
void Simulator::schedule_local(Time at, std::uint32_t node, Handler handler) {
  assert(node < kNoKey);
  if (plan_.shards > 1) {
    assert(node < owner_.size());
    if (probe_ != nullptr && current_key_ != kNoKey &&
        owner_[node] != owner_[current_key_]) {
      probe_->count(obs::Counter::kKernelCrossShardEvents);
    }
    push_event(at, node | kLocalFlag, std::move(handler));
    return;
  }
  push_event(at, kNoKey, std::move(handler));
}

void Simulator::configure_sharding(ShardPlan plan) {
  assert(!in_flush_);
  assert(deferred_total_ == 0 && "cannot reconfigure with a batch pending");
  plan_ = std::move(plan);
  if (plan_.shards <= 1) {
    plan_.shards = 1;
    next_epoch_ = std::numeric_limits<Time>::infinity();
    return;
  }
  assert(plan_.remap && "sharded execution requires an ownership map");
  plan_.remap(now_, owner_);
  assert(!owner_.empty() && "remap must produce a node -> shard map");
  pending_per_node_.assign(owner_.size(), 0u);
  batches_.assign(plan_.shards, {});
  for (auto& batch : batches_) batch.reserve(64);
  if (plan_.lookahead <= 0.0) {
    plan_.lookahead = std::numeric_limits<Time>::infinity();
  }
  next_epoch_ = plan_.epoch_interval > 0.0
                    ? now_ + plan_.epoch_interval
                    : std::numeric_limits<Time>::infinity();
}

// mstc:hot — runs once per dispatched event
Simulator::Handler Simulator::take_next() {
  const EventKey key = queue_.pop();
  Handler handler = std::move(slots_[key.slot]);
  free_slots_.push_back(key.slot);
  now_ = key.time;
  current_sequence_ = key.sequence;
  ++processed_;
  return handler;
}

void Simulator::run_until(Time end) {
  if (plan_.shards > 1) {
    run_until_sharded(end);
    return;
  }
  while (!queue_.empty() && queue_.peek().time <= end) {
    Handler handler = take_next();
    handler();
  }
  now_ = end;
}

// mstc:hot — the sharded dispatch loop; pops and deferrals reuse pre-grown
// per-shard run lists, so the steady state stays allocation-free
void Simulator::run_until_sharded(Time end) {
  while (!queue_.empty() && queue_.peek().time <= end) {
    const EventKey top = queue_.peek();
    if (top.time >= next_epoch_) {
      // Epoch barrier: drain, then let the scenario re-balance ownership
      // from current positions. Batches are always empty across a remap,
      // so no deferred event ever changes hands.
      flush_batches();
      plan_.remap(top.time, owner_);
      do {
        next_epoch_ += plan_.epoch_interval;
      } while (next_epoch_ <= top.time);
    }
    if (deferred_total_ != 0 && top.time - batch_start_ > plan_.lookahead) {
      flush_batches();
    }
    if ((top.key & kLocalFlag) != 0u) {
      // Node-local: pop without executing; runs at the next barrier. The
      // clock and counters advance exactly as if it ran here, so serial
      // events interleaved with deferrals observe identical sequencing.
      const std::uint32_t node = top.key & ~kLocalFlag;
      queue_.pop();
      now_ = top.time;
      current_sequence_ = top.sequence;
      ++processed_;
      if (deferred_total_ == 0) batch_start_ = top.time;
      batch_end_ = top.time;
      batches_[owner_[node]].push_back(Deferred{top.slot, node});
      ++pending_per_node_[node];
      ++deferred_total_;
    } else {
      // Serial: drain first if this event could observe deferred state —
      // keyed events conflict only with their own node's pending work,
      // unkeyed events with any.
      if (deferred_total_ != 0 &&
          (top.key == kNoKey || pending_per_node_[top.key] != 0)) {
        flush_batches();
      }
      Handler handler = take_next();
      current_key_ = top.key;
      handler();
      current_key_ = kNoKey;
    }
  }
  flush_batches();
  now_ = end;
}

// mstc:hot — barrier drain: executes deferred node-local handlers in heap
// pop order per shard, shard-parallel when more than one shard has work
void Simulator::flush_batches() {
  if (deferred_total_ == 0) return;
  if (probe_ != nullptr) {
    probe_->count(obs::Counter::kKernelBarriers);
    probe_->observe(obs::Hist::kKernelBatchSpan, batch_end_ - batch_start_);
  }
  std::size_t busy = 0;
  for (const auto& batch : batches_) busy += batch.empty() ? 0u : 1u;
  in_flush_ = true;
  if (busy <= 1 || plan_.pool == nullptr || plan_.pool->thread_count() == 1) {
    for (const auto& batch : batches_) {
      for (const Deferred& deferred : batch) slots_[deferred.slot]();
    }
  } else {
    util::parallel_for_chunked(
        *plan_.pool, batches_.size(), 1, [this](std::size_t shard) {
          for (const Deferred& deferred : batches_[shard]) {
            slots_[deferred.slot]();
          }
        });
  }
  in_flush_ = false;
  for (auto& batch : batches_) {
    for (const Deferred& deferred : batch) {
      free_slots_.push_back(deferred.slot);
      --pending_per_node_[deferred.node];
    }
    batch.clear();
  }
  deferred_total_ = 0;
}

void Simulator::run_all() {
  // Serial-only convenience (no callers drive an open-ended sharded run;
  // sharded scenarios always know their horizon and use run_until).
  assert(plan_.shards <= 1 && "run_all is serial-only; use run_until");
  while (!queue_.empty()) {
    Handler handler = take_next();
    handler();
  }
}

}  // namespace mstc::sim
