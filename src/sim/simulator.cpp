#include "sim/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace mstc::sim {

void Simulator::reserve_events(std::size_t expected_events) {
  heap_.reserve(expected_events);
  slots_.reserve(expected_events);
  free_slots_.reserve(expected_events);
}

// mstc:hot — runs once per scheduled event; slot reuse keeps it allocation-free
void Simulator::schedule_at(Time at, Handler handler) {
  assert(at >= now_ && "cannot schedule in the past");
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = std::move(handler);
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(std::move(handler));
  }
  heap_.push_back(HeapKey{at, next_sequence_++, slot});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  if (probe_ != nullptr) probe_->count(obs::Counter::kSimEventsScheduled);
}

// mstc:hot — runs once per dispatched event
Simulator::Handler Simulator::take_next() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  const HeapKey key = heap_.back();
  heap_.pop_back();
  Handler handler = std::move(slots_[key.slot]);
  free_slots_.push_back(key.slot);
  now_ = key.time;
  current_sequence_ = key.sequence;
  ++processed_;
  return handler;
}

void Simulator::run_until(Time end) {
  while (!heap_.empty() && heap_.front().time <= end) {
    Handler handler = take_next();
    handler();
  }
  now_ = end;
}

void Simulator::run_all() {
  while (!heap_.empty()) {
    Handler handler = take_next();
    handler();
  }
}

}  // namespace mstc::sim
