#include "sim/simulator.hpp"

#include <cassert>
#include <utility>

namespace mstc::sim {

void Simulator::schedule_at(Time at, Handler handler) {
  assert(at >= now_ && "cannot schedule in the past");
  queue_.push(Event{at, next_sequence_++, std::move(handler)});
}

void Simulator::run_until(Time end) {
  while (!queue_.empty() && queue_.top().time <= end) {
    // priority_queue::top() is const; the handler must be moved out before
    // pop, and executing after pop keeps reentrant scheduling safe.
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.time;
    current_sequence_ = event.sequence;
    ++processed_;
    event.handler();
  }
  now_ = end;
}

void Simulator::run_all() {
  while (!queue_.empty()) {
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.time;
    current_sequence_ = event.sequence;
    ++processed_;
    event.handler();
  }
}

}  // namespace mstc::sim
