#include "sim/simulator.hpp"

#include <cassert>
#include <utility>

#include "util/thread_pool.hpp"

namespace mstc::sim {

void Simulator::reserve_events(std::size_t expected_events) {
  queue_.reserve(expected_events);
  slots_.reserve(expected_events);
  free_slots_.reserve(expected_events);
}

// mstc:hot — runs once per scheduled event; slot reuse keeps it allocation-free
void Simulator::push_event(Time at, std::uint32_t key, Handler handler) {
  assert(at >= now_ && "cannot schedule in the past");
  assert(!in_flush_ && "deferred node-local handlers must not schedule");
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = std::move(handler);
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(std::move(handler));
  }
  queue_.push(EventKey{at, next_sequence_++, slot, key});
  if (probe_ != nullptr) probe_->count(obs::Counter::kSimEventsScheduled);
}

void Simulator::schedule_at(Time at, Handler handler) {
  push_event(at, kNoKey, std::move(handler));
}

void Simulator::schedule_serial(Time at, std::uint32_t node, Handler handler) {
  assert(node < kNoKey);
  assert(plan_.shards <= 1 || node < owner_.size());
  push_event(at, node, std::move(handler));
}

// mstc:hot — the shard-queue entry: one push per Hello delivery
void Simulator::schedule_local(Time at, std::uint32_t node, Handler handler) {
  assert(node < kNoKey);
  if (plan_.shards > 1) {
    assert(node < owner_.size());
    if (probe_ != nullptr && current_key_ != kNoKey &&
        owner_[node] != owner_[current_key_]) {
      probe_->count(obs::Counter::kKernelCrossShardEvents);
    }
    push_event(at, node | kLocalFlag, std::move(handler));
    return;
  }
  push_event(at, kNoKey, std::move(handler));
}

// mstc:hot — runs once per Hello broadcast; one queue push stands in for
// ~degree per-receiver pushes, and slot reuse keeps it allocation-free in
// steady state (the receiver vector keeps its capacity across recycles)
void Simulator::schedule_fanout(Time at,
                                std::span<const std::uint32_t> receivers,
                                FanoutHandler fn) {
  assert(at >= now_ && "cannot schedule in the past");
  assert(!in_flush_ && "deferred node-local handlers must not schedule");
  // The equivalent per-receiver loop pushes nothing for an empty set, so
  // neither does the batched path (no event, no sequence numbers).
  if (receivers.empty()) return;
#ifndef NDEBUG
  for (std::size_t i = 0; i + 1 < receivers.size(); ++i) {
    assert(receivers[i] < receivers[i + 1] &&
           "fan-out receivers must be unique and ascending");
  }
#endif
  if (plan_.shards > 1) {
    // Preserve schedule_local's cross-shard accounting: each delivery
    // whose owner differs from the scheduling serial event's counts once.
    if (probe_ != nullptr && current_key_ != kNoKey) {
      std::uint64_t crossing = 0;
      for (const std::uint32_t node : receivers) {
        assert(node < owner_.size());
        crossing += owner_[node] != owner_[current_key_] ? 1u : 0u;
      }
      if (crossing != 0) {
        probe_->count(obs::Counter::kKernelCrossShardEvents, crossing);
      }
    }
  }
  std::uint32_t slot;
  if (!free_fanout_slots_.empty()) {
    slot = free_fanout_slots_.back();
    free_fanout_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(fanout_slots_.size());
    fanout_slots_.emplace_back();
  }
  FanoutSlot& entry = fanout_slots_[slot];
  entry.receivers.assign(receivers.begin(), receivers.end());
  entry.fn = std::move(fn);
  entry.remaining = 0;
  // Reserve the exact consecutive sequence span the unbatched loop would
  // have drawn; dispatch replays it one delivery at a time.
  const std::uint64_t first = next_sequence_;
  next_sequence_ += receivers.size();
  queue_.push(EventKey{at, first, slot, kFanoutKey});
  if (probe_ != nullptr) {
    probe_->count(obs::Counter::kSimEventsScheduled, receivers.size());
  }
}

void Simulator::configure_sharding(ShardPlan plan) {
  assert(!in_flush_);
  assert(deferred_total_ == 0 && "cannot reconfigure with a batch pending");
  plan_ = std::move(plan);
  if (plan_.shards <= 1) {
    plan_.shards = 1;
    next_epoch_ = std::numeric_limits<Time>::infinity();
    return;
  }
  assert(plan_.remap && "sharded execution requires an ownership map");
  plan_.remap(now_, owner_);
  assert(!owner_.empty() && "remap must produce a node -> shard map");
  pending_per_node_.assign(owner_.size(), 0u);
  batches_.assign(plan_.shards, {});
  for (auto& batch : batches_) batch.reserve(64);
  if (plan_.lookahead <= 0.0) {
    plan_.lookahead = std::numeric_limits<Time>::infinity();
  }
  next_epoch_ = plan_.epoch_interval > 0.0
                    ? now_ + plan_.epoch_interval
                    : std::numeric_limits<Time>::infinity();
}

// mstc:hot — runs once per dispatched event
Simulator::Handler Simulator::take_next() {
  const EventKey key = queue_.pop();
  Handler handler = std::move(slots_[key.slot]);
  free_slots_.push_back(key.slot);
  now_ = key.time;
  current_sequence_ = key.sequence;
  ++processed_;
  return handler;
}

// mstc:hot — one pop per broadcast, replayed as per-receiver deliveries
// with the pre-assigned (time, sequence) keys of the unbatched stream
void Simulator::run_fanout_serial(const EventKey& top) {
  const Time at = top.time;
  const std::uint32_t slot = top.slot;
  std::uint64_t sequence = top.sequence;
  queue_.pop();  // invalidates `top`
  now_ = at;
  // One timed scope per broadcast (not per delivery), so attribution costs
  // two clock reads per ~degree deliveries.
  const obs::ScopedTimer timer(
      probe_ != nullptr ? probe_->profiler() : nullptr,
      obs::Category::kDelivery);
  const std::size_t count = fanout_slots_[slot].receivers.size();
  for (std::size_t i = 0; i < count; ++i) {
    // Re-index every round: a delivery may legally schedule, and a
    // reentrant schedule_fanout can grow fanout_slots_.
    FanoutSlot& entry = fanout_slots_[slot];
    current_sequence_ = sequence++;
    ++processed_;
    entry.fn(entry.receivers[i]);
  }
  release_fanout_slot(slot);
}

void Simulator::release_fanout_slot(std::uint32_t slot) {
  FanoutSlot& entry = fanout_slots_[slot];
  entry.receivers.clear();
  entry.fn = FanoutHandler{};  // drop the closure; keep vector capacity
  free_fanout_slots_.push_back(slot);
}

void Simulator::run_until(Time end) {
  if (plan_.shards > 1) {
    run_until_sharded(end);
    return;
  }
  while (!queue_.empty()) {
    const EventKey& top = queue_.peek();
    if (top.time > end) break;
    if (top.key == kFanoutKey) {
      run_fanout_serial(top);
      continue;
    }
    Handler handler = take_next();
    handler();
  }
  now_ = end;
}

// mstc:hot — the sharded dispatch loop; pops and deferrals reuse pre-grown
// per-shard run lists, so the steady state stays allocation-free
void Simulator::run_until_sharded(Time end) {
  while (!queue_.empty() && queue_.peek().time <= end) {
    const EventKey top = queue_.peek();
    if (top.time >= next_epoch_) {
      // Epoch barrier: drain, then let the scenario re-balance ownership
      // from current positions. Batches are always empty across a remap,
      // so no deferred event ever changes hands.
      flush_batches();
      plan_.remap(top.time, owner_);
      do {
        next_epoch_ += plan_.epoch_interval;
      } while (next_epoch_ <= top.time);
    }
    if (deferred_total_ != 0 && top.time - batch_start_ > plan_.lookahead) {
      flush_batches();
    }
    if (top.key == kFanoutKey) {
      defer_fanout(top);
      continue;
    }
    if ((top.key & kLocalFlag) != 0u) {
      // Node-local: pop without executing; runs at the next barrier. The
      // clock and counters advance exactly as if it ran here, so serial
      // events interleaved with deferrals observe identical sequencing.
      const std::uint32_t node = top.key & ~kLocalFlag;
      queue_.pop();
      now_ = top.time;
      current_sequence_ = top.sequence;
      ++processed_;
      if (deferred_total_ == 0) batch_start_ = top.time;
      batch_end_ = top.time;
      batches_[owner_[node]].push_back(Deferred{top.slot, node});
      ++pending_per_node_[node];
      ++deferred_total_;
    } else {
      // Serial: drain first if this event could observe deferred state —
      // keyed events conflict only with their own node's pending work,
      // unkeyed events with any.
      if (deferred_total_ != 0 &&
          (top.key == kNoKey || pending_per_node_[top.key] != 0)) {
        flush_batches();
      }
      Handler handler = take_next();
      current_key_ = top.key;
      handler();
      current_key_ = kNoKey;
    }
  }
  flush_batches();
  now_ = end;
}

// mstc:hot — one pop per broadcast on the sharded kernel: the clock and
// counters advance as if every delivery ran here, then each receiver is
// deferred into its owner shard's batch
void Simulator::defer_fanout(const EventKey& top) {
  const Time at = top.time;
  const std::uint32_t slot = top.slot;
  const std::uint64_t first = top.sequence;
  queue_.pop();  // invalidates `top`
  FanoutSlot& entry = fanout_slots_[slot];
  const std::uint64_t count = entry.receivers.size();
  now_ = at;
  current_sequence_ = first + count - 1;
  processed_ += count;
  if (deferred_total_ == 0) batch_start_ = at;
  batch_end_ = at;
  entry.remaining = static_cast<std::uint32_t>(count);
  for (const std::uint32_t node : entry.receivers) {
    batches_[owner_[node]].push_back(Deferred{slot, node, true});
    ++pending_per_node_[node];
  }
  deferred_total_ += count;
}

// mstc:hot — barrier drain: executes deferred node-local handlers in heap
// pop order per shard, shard-parallel when more than one shard has work.
// Fan-out deliveries of one broadcast may span shards: the shared callable
// is invoked concurrently for distinct nodes, which the schedule_fanout
// contract (no mutation of captured state) makes race-free.
void Simulator::flush_batches() {
  if (deferred_total_ == 0) return;
  if (probe_ != nullptr) {
    probe_->count(obs::Counter::kKernelBarriers);
    probe_->observe(obs::Hist::kKernelBatchSpan, batch_end_ - batch_start_);
  }
  std::size_t busy = 0;
  for (const auto& batch : batches_) busy += batch.empty() ? 0u : 1u;
  in_flush_ = true;
  if (busy <= 1 || plan_.pool == nullptr || plan_.pool->thread_count() == 1) {
    for (const auto& batch : batches_) {
      for (const Deferred& deferred : batch) {
        if (deferred.fanout) {
          fanout_slots_[deferred.slot].fn(deferred.node);
        } else {
          slots_[deferred.slot]();
        }
      }
    }
  } else {
    util::parallel_for_chunked(
        *plan_.pool, batches_.size(), 1, [this](std::size_t shard) {
          for (const Deferred& deferred : batches_[shard]) {
            if (deferred.fanout) {
              fanout_slots_[deferred.slot].fn(deferred.node);
            } else {
              slots_[deferred.slot]();
            }
          }
        });
  }
  in_flush_ = false;
  for (auto& batch : batches_) {
    for (const Deferred& deferred : batch) {
      --pending_per_node_[deferred.node];
      if (deferred.fanout) {
        if (--fanout_slots_[deferred.slot].remaining == 0) {
          release_fanout_slot(deferred.slot);
        }
      } else {
        free_slots_.push_back(deferred.slot);
      }
    }
    batch.clear();
  }
  deferred_total_ = 0;
}

void Simulator::run_all() {
  // Serial-only convenience (no callers drive an open-ended sharded run;
  // sharded scenarios always know their horizon and use run_until).
  assert(plan_.shards <= 1 && "run_all is serial-only; use run_until");
  while (!queue_.empty()) {
    const EventKey& top = queue_.peek();
    if (top.key == kFanoutKey) {
      run_fanout_serial(top);
      continue;
    }
    Handler handler = take_next();
    handler();
  }
}

}  // namespace mstc::sim
