#include "sim/event_queue.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <iterator>

namespace mstc::sim {

namespace {

/// Reverse of EarlierEvent, for the std::push_heap/pop_heap min-heap.
struct LaterEvent {
  bool operator()(const EventKey& a, const EventKey& b) const noexcept {
    return EarlierEvent{}(b, a);
  }
};

}  // namespace

std::optional<QueueBackend> parse_queue_backend(
    std::string_view name) noexcept {
  if (name == "heap") return QueueBackend::kHeap;
  if (name == "calendar") return QueueBackend::kCalendar;
  return std::nullopt;
}

const char* queue_backend_name(QueueBackend backend) noexcept {
  switch (backend) {
    case QueueBackend::kHeap:
      return "heap";
    case QueueBackend::kCalendar:
      return "calendar";
  }
  return "unknown";
}

void EventQueue::configure(const QueueConfig& config) {
  assert(size_ == 0 && "configure the queue before scheduling events");
  config_ = config;
  heap_.clear();
  buckets_.clear();
  mask_ = 0;
  base_bucket_ = 0;
  overflow_.clear();
  overflow_min_bucket_ = kNoBucket;
  have_staged_min_ = false;
  peeked_ = false;
  width_ = config.bucket_width > 0.0
               ? std::clamp(config.bucket_width, kMinBucketWidth,
                            kMaxBucketWidth)
               : 0.0;
}

void EventQueue::reserve(std::size_t expected) {
  expected_ = expected;
  if (config_.backend == QueueBackend::kHeap) {
    heap_.reserve(expected);
    return;
  }
  // The ladder holds every far-future timer (≈ one per node in the beacon
  // steady state) plus, before the width is known, every staged event.
  overflow_.reserve(expected);
  ensure_buckets();
}

// mstc:hot — one call per scheduled event
void EventQueue::push(const EventKey& event) {
  if (config_.backend == QueueBackend::kHeap) {
    heap_.push_back(event);
    std::push_heap(heap_.begin(), heap_.end(), LaterEvent{});
    ++size_;
    return;
  }
  if (width_ == 0.0) {
    // Staging mode: no width yet; park everything in the ladder and let
    // the first pop derive a width from the observed spacing.
    overflow_.push_back(event);
    if (!have_staged_min_ || event.time < staged_min_time_) {
      staged_min_time_ = event.time;
      have_staged_min_ = true;
    }
    ++size_;
    return;
  }
  push_calendar(event);
  ++size_;
}

// mstc:hot — calendar insert: O(1) bucket append in steady state
void EventQueue::push_calendar(const EventKey& event) {
  if (buckets_.empty()) ensure_buckets();
  const std::uint64_t b = bucket_of(event.time);
  if (size_ == overflow_.size()) {
    // The window holds nothing, so it is free to move: anchor it at the
    // earliest known bucket (this event or the ladder minimum) so the
    // next pops address their buckets directly.
    const std::uint64_t anchor = std::min(b, overflow_min_bucket_);
    if (anchor < base_bucket_ || anchor >= base_bucket_ + buckets_.size()) {
      base_bucket_ = anchor;
    }
  }
  if (b < base_bucket_ || b >= base_bucket_ + buckets_.size()) {
    // Outside the window: the overflow ladder. b < base_bucket_ is only
    // reachable by scheduling after a run_until boundary moved the clock
    // short of the window; find_min rebuilds when the ladder minimum
    // undercuts the base, so ordering stays exact.
    overflow_.push_back(event);
    if (b < overflow_min_bucket_) overflow_min_bucket_ = b;
    if (peeked_ && b <= peek_bucket_) peeked_ = false;
    return;
  }
  Bucket& bucket = buckets_[b & mask_];
  bucket.events.push_back(event);
  if (peeked_ &&
      (b < peek_bucket_ ||
       (b == peek_bucket_ &&
        EarlierEvent{}(event, bucket.events[bucket.cursor])))) {
    peeked_ = false;
  }
}

// mstc:hot — once per dispatched event (pop reuses the peeked location)
const EventKey& EventQueue::peek() {
  assert(size_ > 0);
  if (config_.backend == QueueBackend::kHeap) return heap_.front();
  return *find_min_calendar();
}

// mstc:hot — once per dispatched event
EventKey EventQueue::pop() {
  assert(size_ > 0);
  if (config_.backend == QueueBackend::kHeap) {
    std::pop_heap(heap_.begin(), heap_.end(), LaterEvent{});
    const EventKey out = heap_.back();
    heap_.pop_back();
    --size_;
    return out;
  }
  const EventKey out = *find_min_calendar();
  // Commit the window advance: every bucket the scan skipped is empty and
  // already reset, so the base lands on the popped bucket. From here on
  // the kernel clock is inside this bucket, and pushes are never earlier
  // than the clock, so nothing can land below the new base.
  base_bucket_ = peek_bucket_;
  Bucket& bucket = buckets_[base_bucket_ & mask_];
  ++bucket.cursor;
  if (bucket.cursor == bucket.events.size()) {
    bucket.events.clear();
    bucket.cursor = 0;
    bucket.sorted = 0;
  }
  --size_;
  peeked_ = false;
  if (++pops_since_check_ >= kResizeCheckInterval) maybe_resize();
  return out;
}

// mstc:hot — the calendar's search core; amortized O(1) per event
const EventKey* EventQueue::find_min_calendar() {
  if (peeked_) {
    Bucket& bucket = buckets_[peek_bucket_ & mask_];
    return &bucket.events[bucket.cursor];
  }
  if (width_ == 0.0) init_width();
  for (;;) {
    if (size_ == overflow_.size()) {
      // Window drained: rebase it at the ladder minimum and pull the
      // in-range slice in. O(ladder) once per window span.
      redistribute_overflow();
      continue;
    }
    std::uint64_t b = base_bucket_;
    std::size_t scanned = 0;
    for (;;) {
      const Bucket& bucket = buckets_[b & mask_];
      if (bucket.cursor < bucket.events.size()) break;
      ++b;
      ++scanned;
      assert(scanned <= buckets_.size() && "window lost an event");
    }
    if (overflow_min_bucket_ <= b) {
      // The ladder owns a bucket at or before the candidate (its slice
      // entered the window, or an idle-time push undercut the base):
      // merge it in before popping anything at or past it.
      redistribute_overflow();
      continue;
    }
    stat_scanned_ += scanned;
    ++stat_finds_;
    if (probe_ != nullptr) {
      probe_->observe(obs::Hist::kKernelBucketScanLen,
                      static_cast<double>(scanned + 1));
    }
    Bucket& bucket = buckets_[b & mask_];
    ensure_sorted(bucket);
    peek_bucket_ = b;
    peeked_ = true;
    return &bucket.events[bucket.cursor];
  }
}

// mstc:hot — sorts a bucket's append tail and merges it into the
// unconsumed suffix; scratch_ reuses its capacity, so steady state is
// allocation-free
void EventQueue::ensure_sorted(Bucket& bucket) {
  const std::size_t size = bucket.events.size();
  if (bucket.sorted == size) return;
  if (bucket.sorted == 0) {
    ++stat_sorted_buckets_;
    stat_sorted_events_ += size;
  }
  const auto begin = bucket.events.begin();
  std::sort(begin + bucket.sorted, bucket.events.end(), EarlierEvent{});
  // Merge only when the tail actually interleaves with the sorted
  // unconsumed suffix [cursor, sorted); appends usually sort after it.
  if (bucket.cursor < bucket.sorted &&
      EarlierEvent{}(bucket.events[bucket.sorted],
                     bucket.events[bucket.sorted - 1])) {
    scratch_.clear();
    std::merge(begin + bucket.cursor, begin + bucket.sorted,
               begin + bucket.sorted, bucket.events.end(),
               std::back_inserter(scratch_), EarlierEvent{});
    std::copy(scratch_.begin(), scratch_.end(), begin + bucket.cursor);
  }
  bucket.sorted = static_cast<std::uint32_t>(size);
}

void EventQueue::init_width() {
  // Everything pushed so far is staged in the ladder. Aim the width at
  // kTargetOccupancy events per bucket assuming the staged spacing is
  // representative; the periodic self-resize corrects a bad estimate.
  assert(!overflow_.empty());
  Time min_time = overflow_.front().time;
  Time max_time = min_time;
  for (const EventKey& event : overflow_) {
    min_time = std::min(min_time, event.time);
    max_time = std::max(max_time, event.time);
  }
  const double span = max_time - min_time;
  const double width =
      span > 0.0
          ? span * kTargetOccupancy / static_cast<double>(overflow_.size())
          : 1e-3;
  width_ = std::clamp(width, kMinBucketWidth, kMaxBucketWidth);
  ensure_buckets();
  overflow_min_bucket_ = bucket_of(min_time);
  base_bucket_ = overflow_min_bucket_;
}

void EventQueue::ensure_buckets() {
  if (!buckets_.empty()) return;
  const std::size_t target =
      expected_ > 0 ? expected_ / static_cast<std::size_t>(kTargetOccupancy)
                    : std::size_t{1024};
  const std::size_t count =
      std::bit_ceil(std::clamp<std::size_t>(target, 64, std::size_t{1} << 17));
  buckets_.resize(count);
  mask_ = count - 1;
}

void EventQueue::redistribute_overflow() {
  assert(!overflow_.empty() && "window and ladder cannot both be empty");
  if (size_ == overflow_.size()) {
    base_bucket_ = overflow_min_bucket_;
  } else if (overflow_min_bucket_ < base_bucket_) {
    // Idle-time push below the window while it still held events (see
    // push_calendar): re-anchor everything in one pass.
    rebuild(width_);
    return;
  }
  const std::uint64_t limit = base_bucket_ + buckets_.size();
  std::uint64_t new_min = kNoBucket;
  std::size_t write = 0;
  for (std::size_t read = 0; read < overflow_.size(); ++read) {
    const EventKey event = overflow_[read];
    const std::uint64_t b = bucket_of(event.time);
    if (b < limit) {
      buckets_[b & mask_].events.push_back(event);
    } else {
      overflow_[write++] = event;
      new_min = std::min(new_min, b);
    }
  }
  overflow_.resize(write);
  overflow_min_bucket_ = new_min;
}

void EventQueue::maybe_resize() {
  pops_since_check_ = 0;
  double target = width_;
  if (stat_sorted_buckets_ > 0) {
    const double occupancy = static_cast<double>(stat_sorted_events_) /
                             static_cast<double>(stat_sorted_buckets_);
    const double scan =
        stat_finds_ > 0 ? static_cast<double>(stat_scanned_) /
                              static_cast<double>(stat_finds_)
                        : 0.0;
    if (occupancy > 4.0 * kTargetOccupancy) {
      // Buckets far too full: jump straight to the occupancy target
      // instead of halving repeatedly.
      target = width_ * kTargetOccupancy / occupancy;
    } else if (occupancy < 0.5 * kTargetOccupancy && scan > 4.0) {
      // Buckets nearly empty and pops spend their time skipping them.
      target = width_ * 2.0;
    }
  }
  stat_sorted_events_ = 0;
  stat_sorted_buckets_ = 0;
  stat_scanned_ = 0;
  stat_finds_ = 0;
  target = std::clamp(target, kMinBucketWidth, kMaxBucketWidth);
  if (target == width_) return;
  ++resizes_;
  if (probe_ != nullptr) probe_->count(obs::Counter::kKernelQueueResizes);
  rebuild(target);
}

void EventQueue::rebuild(double new_width) {
  // Collect every pending event, adopt the new width, then re-stage
  // through the ladder: redistribute rebases the (now empty) window at
  // the true minimum and pulls the in-range slice back in.
  scratch_.clear();
  for (Bucket& bucket : buckets_) {
    scratch_.insert(scratch_.end(), bucket.events.begin() + bucket.cursor,
                    bucket.events.end());
    bucket.events.clear();
    bucket.cursor = 0;
    bucket.sorted = 0;
  }
  scratch_.insert(scratch_.end(), overflow_.begin(), overflow_.end());
  overflow_.clear();
  overflow_.swap(scratch_);
  width_ = new_width;
  peeked_ = false;
  overflow_min_bucket_ = kNoBucket;
  for (const EventKey& event : overflow_) {
    overflow_min_bucket_ =
        std::min(overflow_min_bucket_, bucket_of(event.time));
  }
  if (!overflow_.empty()) redistribute_overflow();
}

}  // namespace mstc::sim
