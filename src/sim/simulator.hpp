// Discrete-event simulation kernel.
//
// A minimal, deterministic engine: events are (time, sequence, closure)
// triples ordered by time with FIFO tie-breaking, so runs are exactly
// reproducible. This is the ns-2 substitute described in DESIGN.md.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace mstc::sim {

using Time = double;

class Simulator {
 public:
  using Handler = std::function<void()>;

  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedules `handler` at absolute time `at` (must be >= now()).
  void schedule_at(Time at, Handler handler);

  /// Schedules `handler` after `delay` seconds (must be >= 0).
  void schedule_in(Time delay, Handler handler) {
    schedule_at(now_ + delay, std::move(handler));
  }

  /// Runs events until the queue empties or the next event is later than
  /// `end`; the clock finishes at exactly `end`.
  void run_until(Time end);

  /// Runs until the queue is empty.
  void run_all();

  [[nodiscard]] std::size_t pending_events() const noexcept {
    return queue_.size();
  }
  /// Number of handlers that have STARTED executing, including the one
  /// currently running. Note this is a count, not an identity: from inside
  /// a handler it cannot distinguish simultaneous events (several handlers
  /// at the same sim-time each see a different count, but the count says
  /// nothing about schedule order). Use current_sequence() for that.
  [[nodiscard]] std::uint64_t processed_events() const noexcept {
    return processed_;
  }

  /// Sequence number of the event whose handler is currently executing
  /// (meaningful only from inside a handler; 0 before the first event).
  ///
  /// Tie-break contract: events are ordered by (time, sequence), where
  /// sequence is the global schedule_at/schedule_in call order — FIFO among
  /// simultaneous events. Within one sim-time instant current_sequence()
  /// is therefore strictly increasing across handlers, giving observers
  /// (e.g. the obs trace sink) a stable total order over records that
  /// share a timestamp.
  [[nodiscard]] std::uint64_t current_sequence() const noexcept {
    return current_sequence_;
  }

 private:
  struct Event {
    Time time;
    std::uint64_t sequence;
    Handler handler;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;  // FIFO among simultaneous events
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Time now_ = 0.0;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t current_sequence_ = 0;
};

}  // namespace mstc::sim
