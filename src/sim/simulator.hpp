// Discrete-event simulation kernel.
//
// A minimal, deterministic engine: events are (time, sequence, closure)
// triples ordered by time with FIFO tie-breaking, so runs are exactly
// reproducible. This is the ns-2 substitute described in DESIGN.md.
//
// Steady state makes no heap allocations: closures live in SBO Handler
// slots (see handler.hpp) recycled through a free list, and the priority
// queue orders lightweight (time, sequence, slot) keys. reserve_events()
// pre-sizes everything from scenario parameters so even warmup growth is
// a handful of vector doublings at most.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/probe.hpp"
#include "sim/handler.hpp"

namespace mstc::sim {

using Time = double;

class Simulator {
 public:
  using Handler = sim::Handler;

  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Attaches an observability probe (nullable). The only instrumentation
  /// is the kSimEventsScheduled counter; as everywhere, observation never
  /// feeds back into simulation state.
  void set_probe(const obs::Probe* probe) noexcept { probe_ = probe; }

  /// Pre-sizes the queue, the handler slots and the free list for
  /// `expected_events` simultaneously-pending events (scenario setup knows
  /// the schedule shape; growing past it stays correct, just reallocates).
  void reserve_events(std::size_t expected_events);

  /// Schedules `handler` at absolute time `at` (must be >= now()).
  void schedule_at(Time at, Handler handler);

  /// Schedules `handler` after `delay` seconds (must be >= 0).
  void schedule_in(Time delay, Handler handler) {
    schedule_at(now_ + delay, std::move(handler));
  }

  /// Runs events until the queue empties or the next event is later than
  /// `end`; the clock finishes at exactly `end`.
  void run_until(Time end);

  /// Runs until the queue is empty.
  void run_all();

  [[nodiscard]] std::size_t pending_events() const noexcept {
    return heap_.size();
  }
  /// Number of handlers that have STARTED executing, including the one
  /// currently running. Note this is a count, not an identity: from inside
  /// a handler it cannot distinguish simultaneous events (several handlers
  /// at the same sim-time each see a different count, but the count says
  /// nothing about schedule order). Use current_sequence() for that.
  [[nodiscard]] std::uint64_t processed_events() const noexcept {
    return processed_;
  }

  /// Sequence number of the event whose handler is currently executing
  /// (meaningful only from inside a handler; 0 before the first event).
  ///
  /// Tie-break contract: events are ordered by (time, sequence), where
  /// sequence is the global schedule_at/schedule_in call order — FIFO among
  /// simultaneous events. Within one sim-time instant current_sequence()
  /// is therefore strictly increasing across handlers, giving observers
  /// (e.g. the obs trace sink) a stable total order over records that
  /// share a timestamp.
  [[nodiscard]] std::uint64_t current_sequence() const noexcept {
    return current_sequence_;
  }

 private:
  /// Heap entry: ordering data plus the index of the Handler slot, so
  /// sift-up/down moves 24 trivially-copyable bytes instead of closures.
  struct HeapKey {
    Time time;
    std::uint64_t sequence;
    std::uint32_t slot;
  };
  struct Later {
    bool operator()(const HeapKey& a, const HeapKey& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;  // FIFO among simultaneous events
    }
  };

  /// Pops the earliest event, releases its slot (the handler is already
  /// moved out, so a reentrant schedule_at may reuse it immediately) and
  /// advances the clock/sequence/processed counters; returns the handler.
  Handler take_next();

  std::vector<HeapKey> heap_;  // min-heap via std::push_heap/pop_heap
  std::vector<Handler> slots_;
  std::vector<std::uint32_t> free_slots_;
  const obs::Probe* probe_ = nullptr;
  Time now_ = 0.0;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t current_sequence_ = 0;
};

}  // namespace mstc::sim
