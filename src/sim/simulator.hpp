// Discrete-event simulation kernel.
//
// A minimal, deterministic engine: events are (time, sequence, closure)
// triples ordered by time with FIFO tie-breaking, so runs are exactly
// reproducible. This is the ns-2 substitute described in DESIGN.md.
//
// Steady state makes no heap allocations: closures live in SBO Handler
// slots (see handler.hpp) recycled through a free list, and the event
// queue orders lightweight (time, sequence, slot, key) keys through a
// pluggable backend (binary-heap reference or the O(1) calendar queue —
// see event_queue.hpp; both pop the identical stream).
// reserve_events() pre-sizes everything from scenario parameters so even
// warmup growth is a handful of vector doublings at most.
//
// Sharded execution (configure_sharding): scenarios may tag events with
// the node they touch — schedule_serial() for events that read or write
// shared state (medium, RNG streams, scheduling), schedule_local() for
// events that only mutate their own node and schedule nothing. The kernel
// still pops every event from the single global queue in exact
// (time, sequence) order on the driving thread, but node-local events are
// *deferred* into per-shard run lists instead of executing immediately;
// they drain — shard-parallel — at the next barrier. A barrier fires
// before any serial event that could observe deferred state (an event
// keyed to a node with deferred work, or an unkeyed global event), when a
// batch's sim-time span exceeds the configured lookahead, at ownership
// remap epochs, and at the end of the run. Because deferred handlers of
// distinct nodes commute and per-node order is preserved, the sharded
// schedule is byte-identical to the serial kernel; a differential
// determinism test asserts it. docs/PERFORMANCE.md has the full argument.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <span>
#include <vector>

#include "obs/probe.hpp"
#include "sim/event_queue.hpp"
#include "sim/handler.hpp"

namespace mstc::util {
class ThreadPool;
}  // namespace mstc::util

namespace mstc::sim {

class Simulator {
 public:
  using Handler = sim::Handler;

  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Attaches an observability probe (nullable). Kernel instrumentation
  /// is the kSimEventsScheduled counter plus the event queue's resize /
  /// scan-length metrics; as everywhere, observation never feeds back
  /// into simulation state.
  void set_probe(const obs::Probe* probe) noexcept {
    probe_ = probe;
    queue_.set_probe(probe);
  }

  /// Selects the event-queue backend (heap reference or calendar) and its
  /// sizing hints. Call before the first event is scheduled; the default
  /// is the heap. Pop order — and therefore every result byte — is
  /// identical across backends (see event_queue.hpp).
  void configure_queue(const QueueConfig& config) { queue_.configure(config); }

  /// The live event queue, exposed for tests and benchmarks (resize
  /// count, current bucket width, backend).
  [[nodiscard]] const EventQueue& event_queue() const noexcept {
    return queue_;
  }

  /// Pre-sizes the queue, the handler slots and the free list for
  /// `expected_events` simultaneously-pending events (scenario setup knows
  /// the schedule shape; growing past it stays correct, just reallocates).
  void reserve_events(std::size_t expected_events);

  /// Schedules `handler` at absolute time `at` (must be >= now()).
  /// Unkeyed events are serial: under sharded execution they act as full
  /// barriers (every deferred node-local handler drains first).
  void schedule_at(Time at, Handler handler);

  /// Schedules `handler` after `delay` seconds (must be >= 0).
  void schedule_in(Time delay, Handler handler) {
    schedule_at(now_ + delay, std::move(handler));
  }

  /// Schedules a *serial* event keyed to `node`: the handler may touch
  /// shared state (medium, RNG streams, probes, scheduling) but the only
  /// node whose controller state it reads or writes is `node`. Under
  /// sharded execution it drains deferred work for `node` alone — other
  /// shards keep batching. With shards <= 1 this is exactly schedule_at.
  void schedule_serial(Time at, std::uint32_t node, Handler handler);

  /// Schedules a *node-local* event: the handler mutates only `node`'s
  /// state, draws no RNG, touches no shared structure and schedules
  /// nothing. Under sharded execution such events are deferred and run
  /// shard-parallel at the next barrier; handlers of distinct nodes must
  /// therefore commute (per-node order is preserved). With shards <= 1
  /// this is exactly schedule_at.
  void schedule_local(Time at, std::uint32_t node, Handler handler);

  /// Schedules a batched broadcast fan-out: one queue entry standing in
  /// for `receivers.size()` node-local deliveries at time `at`, all
  /// sharing the single callable `fn` (invoked as fn(node), ascending
  /// receiver order). The call reserves `receivers.size()` consecutive
  /// sequence numbers up front — exactly the numbers an equivalent
  /// per-receiver schedule_local loop would have drawn — and dispatch
  /// replays them one delivery at a time, so now()/current_sequence()/
  /// processed_events() observed by each delivery (and the ordering of
  /// anything scheduled afterwards) are byte-identical to the unbatched
  /// stream. Each delivery carries the schedule_local contract: mutate
  /// only its node, no RNG, no shared structure, schedule nothing.
  /// Receiver ids must be unique; an empty span schedules nothing.
  void schedule_fanout(Time at, std::span<const std::uint32_t> receivers,
                       FanoutHandler fn);

  /// Sharded-execution plan. shards <= 1 keeps the serial kernel
  /// (the default); anything larger requires a remap callback.
  struct ShardPlan {
    std::uint32_t shards = 1;
    /// Maximum sim-time span one deferred batch may cover before a forced
    /// barrier. Correctness never depends on it (conflicting serial
    /// events force exact barriers); it bounds batch skew so shards stay
    /// load-balanced. <= 0 means unbounded.
    Time lookahead = 0.0;
    /// Period between ownership-remap epochs; <= 0 disables remapping
    /// (static fleets never need one).
    Time epoch_interval = 0.0;
    /// Pool the barrier drain fans out on; nullptr drains on the driving
    /// thread (still byte-identical, no speedup).
    util::ThreadPool* pool = nullptr;
    /// Fills `owner` with a node -> shard id (< shards) map valid at sim
    /// time `t`, resizing it to the node count. Called at configure time
    /// and again at every epoch barrier, always from the driving thread
    /// with no batch in flight — ownership is purely a load-balancing
    /// choice, never a correctness input. Cold path: a handful of calls
    /// per run, so std::function's possible spill never hits the event
    /// loop.
    // mstc-tidy: allow(hot-std-function)
    std::function<void(Time t, std::vector<std::uint32_t>& owner)> remap;
  };

  /// Installs the sharded-execution plan. Call before the first run;
  /// events already scheduled keep their keys.
  void configure_sharding(ShardPlan plan);

  [[nodiscard]] std::uint32_t shard_count() const noexcept {
    return plan_.shards;
  }

  /// Runs events until the queue empties or the next event is later than
  /// `end`; the clock finishes at exactly `end`.
  void run_until(Time end);

  /// Runs until the queue is empty.
  void run_all();

  [[nodiscard]] std::size_t pending_events() const noexcept {
    return queue_.size();
  }
  /// Number of handlers that have STARTED executing, including the one
  /// currently running. Note this is a count, not an identity: from inside
  /// a handler it cannot distinguish simultaneous events (several handlers
  /// at the same sim-time each see a different count, but the count says
  /// nothing about schedule order). Use current_sequence() for that.
  [[nodiscard]] std::uint64_t processed_events() const noexcept {
    return processed_;
  }

  /// Sequence number of the event whose handler is currently executing
  /// (meaningful only from inside a handler; 0 before the first event).
  ///
  /// Tie-break contract: events are ordered by (time, sequence), where
  /// sequence is the global schedule_at/schedule_in call order — FIFO among
  /// simultaneous events. Within one sim-time instant current_sequence()
  /// is therefore strictly increasing across handlers, giving observers
  /// (e.g. the obs trace sink) a stable total order over records that
  /// share a timestamp.
  [[nodiscard]] std::uint64_t current_sequence() const noexcept {
    return current_sequence_;
  }

 private:
  /// Key of an event keyed to no node (unkeyed serial / barrier events).
  static constexpr std::uint32_t kNoKey = 0x7fffffffu;
  /// High bit of EventKey::key marks node-local (deferrable) events.
  static constexpr std::uint32_t kLocalFlag = 0x80000000u;
  /// Key of a batched fan-out entry (its slot indexes fanout_slots_, not
  /// slots_). Unambiguous: schedule_serial/schedule_local assert
  /// node < kNoKey, so no node-keyed event ever carries this value.
  static constexpr std::uint32_t kFanoutKey = kLocalFlag | kNoKey;

  /// A popped-but-deferred node-local event awaiting the next barrier.
  /// Its handler stays in the slot (slots_ for ordinary events,
  /// fanout_slots_ when `fanout` is set); the slot is released after the
  /// drain (fan-out slots once their last receiver has drained).
  struct Deferred {
    std::uint32_t slot;
    std::uint32_t node;
    bool fanout = false;
  };

  /// One in-flight batched broadcast: the receiver list, the shared
  /// per-receiver callable, and (sharded only) how many deliveries are
  /// still deferred before the slot can be recycled.
  struct FanoutSlot {
    std::vector<std::uint32_t> receivers;
    FanoutHandler fn;
    std::uint32_t remaining = 0;
  };

  /// Common scheduling core behind the three schedule_* entry points.
  void push_event(Time at, std::uint32_t key, Handler handler);

  /// Pops + executes a fan-out entry on the serial kernel: replays the
  /// reserved sequence span one delivery at a time.
  void run_fanout_serial(const EventKey& top);

  /// Pops a fan-out entry on the sharded kernel: advances the clock and
  /// counters as if every delivery ran, then defers each receiver into
  /// its owner shard's batch.
  void defer_fanout(const EventKey& top);

  /// Returns a fan-out slot to the free list, keeping its receiver
  /// vector's capacity.
  void release_fanout_slot(std::uint32_t slot);

  /// Pops the earliest event, releases its slot (the handler is already
  /// moved out, so a reentrant schedule_at may reuse it immediately) and
  /// advances the clock/sequence/processed counters; returns the handler.
  Handler take_next();

  /// The sharded dispatch loop (run_until with plan_.shards > 1).
  void run_until_sharded(Time end);

  /// Barrier: drains every deferred batch (shard-parallel when more than
  /// one shard has work), then releases their slots.
  void flush_batches();

  EventQueue queue_;  // pluggable backend; heap by default
  std::vector<Handler> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<FanoutSlot> fanout_slots_;  // recycled; vectors keep capacity
  std::vector<std::uint32_t> free_fanout_slots_;
  const obs::Probe* probe_ = nullptr;
  Time now_ = 0.0;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t current_sequence_ = 0;

  // Sharded-execution state; untouched (and heap-free) when shards <= 1.
  ShardPlan plan_;
  std::vector<std::uint32_t> owner_;  // node -> shard id, remapped at epochs
  std::vector<std::uint32_t> pending_per_node_;  // deferred events per node
  std::vector<std::vector<Deferred>> batches_;   // per-shard run lists
  std::size_t deferred_total_ = 0;
  Time batch_start_ = 0.0;  // time of the current batch's first event
  Time batch_end_ = 0.0;    // time of the current batch's latest event
  Time next_epoch_ = std::numeric_limits<Time>::infinity();
  std::uint32_t current_key_ = kNoKey;  // key of the executing serial event
  bool in_flush_ = false;
};

}  // namespace mstc::sim
