// Ideal wireless medium.
//
// The paper's simulations "use an ideal MAC layer without collision and
// contention": a transmission from u with range r at time t is received by
// exactly the nodes within Euclidean distance r of u's position at t, after
// a fixed propagation delay. Loss injection, when wanted, is applied by the
// caller (it owns the RNG streams); the medium itself is deterministic.
//
// Neighbor queries are served by a lazily maintained spatial index (a
// graph::SpatialGrid over node positions at an epoch time t0). A query at
// time t filters candidates with the conservative radius
// r + 2 * v_max * |t - t0| over the epoch positions and then applies the
// exact distance check at the true query time, so the results are
// bit-identical to the brute-force O(n) scan — same receiver sets, same
// ascending-NodeId order — with ~an order of magnitude fewer distance
// evaluations on dense networks (see docs/PERFORMANCE.md, bench_scale and
// the differential suite in tests/sim/medium_grid_test.cpp).
//
// Threading: a Medium is strictly per-replication. Queries are logically
// const but mutate internal caches (the spatial index, position scratch,
// and the per-node trace-leg cursors), so a Medium — even a const one —
// must never be shared across threads; debug builds assert the invariant
// by pinning the medium to the first querying thread. The *traces* behind
// it, in contrast, are immutable and safely shared: parallel sweeps hand
// one mobility::TraceCache set to many per-replication Mediums, each
// keeping its own cursor array.
#pragma once

#include <cstdint>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "geom/vec2.hpp"
#include "graph/spatial_grid.hpp"
#include "mobility/trace.hpp"
#include "obs/probe.hpp"

namespace mstc::sim {

using NodeId = std::size_t;

class Medium {
 public:
  struct Config {
    double propagation_delay = 1e-6;  ///< seconds; >= 0

    /// Escape hatch: serve every query with the brute-force O(n) scan
    /// instead of the spatial index. Results are bit-identical either way
    /// (the determinism suite compares whole sweeps byte-for-byte); brute
    /// force exists for differential testing and as a baseline for
    /// bench_scale.
    bool brute_force = false;

    /// Fleets smaller than this use the brute scan automatically: below
    /// ~150 nodes the index roughly breaks even (rebuild cost dominates —
    /// see docs/PERFORMANCE.md and the BENCH_medium.json n=100 row), so
    /// the crossover is built in. 0 forces the index for any non-empty
    /// fleet (differential tests pin the grid path this way). Results are
    /// bit-identical on both sides of the threshold.
    std::size_t grid_min_nodes = 150;

    /// The index is rebuilt when the mobility slack 2 * v_max * |t - t0|
    /// exceeds this fraction of the query radius. Smaller values rebuild
    /// more often but keep the candidate radius tight; 0 disables slack
    /// entirely (every moving-fleet query rebuilds). Must be >= 0.
    double rebuild_slack_fraction = 0.5;

    /// Escape hatch: re-check grid candidates with the portable scalar
    /// loop instead of the SIMD block filter (geom/filter.hpp). The wide
    /// kernel is IEEE-754-identical to the scalar predicate, so results
    /// are byte-identical either way; kept for differential testing.
    bool scalar_filter = false;
  };

  /// The medium aliases `traces`; the owner must outlive it.
  Medium(std::span<const mobility::Trace> traces, Config config);

  [[nodiscard]] std::size_t node_count() const noexcept {
    return traces_.size();
  }
  [[nodiscard]] double propagation_delay() const noexcept {
    return config_.propagation_delay;
  }
  /// Fleet-wide speed bound (max over traces), fixed at construction; the
  /// conservative candidate radius is derived from it.
  [[nodiscard]] double max_speed() const noexcept { return max_speed_; }

  /// Ground-truth position of a node at time t. Served through this
  /// medium's leg-cursor array (amortized O(1) for the loosely increasing
  /// times the event loop produces) — the cursors are a per-Medium cache,
  /// never part of the shared Trace.
  [[nodiscard]] geom::Vec2 position(NodeId node, double t) const noexcept {
    return traces_[node].position(t, trace_cursors_[node]);
  }

  /// Ground-truth distance between two nodes at time t.
  [[nodiscard]] double distance(NodeId a, NodeId b, double t) const noexcept {
    return geom::distance(position(a, t), position(b, t));
  }

  /// Attaches an observability probe (counts receiver-set deliveries,
  /// index rebuilds and candidate filtering; see docs/OBSERVABILITY.md).
  /// The probe must outlive the medium; null detaches.
  void set_probe(const obs::Probe* probe) noexcept { probe_ = probe; }

  /// Nodes other than `sender` within `range` (inclusive) of the sender's
  /// position at time `t`, written into `out` (cleared first) in ascending
  /// NodeId order.
  void receivers(NodeId sender, double range, double t,
                 std::vector<NodeId>& out) const;

  /// All positions at time t (for snapshot metrics).
  void positions(double t, std::vector<geom::Vec2>& out) const;

  /// Ground-truth graph of links with length <= range at time t: the
  /// paper's "original topology" under the normal transmission range when
  /// range = normal range. Pairs satisfy u < v and are emitted in
  /// lexicographically ascending order; `out` is cleared first.
  void links_within(double range, double t,
                    std::vector<std::pair<NodeId, NodeId>>& out) const;

  /// Convenience overload returning a fresh vector.
  [[nodiscard]] std::vector<std::pair<NodeId, NodeId>> links_within(
      double range, double t) const;

 private:
  /// Rebuilds the spatial index at epoch t when absent, when the mobility
  /// slack outgrew `rebuild_slack_fraction * build_range_`, or when the
  /// requested range exceeds the range the cells were sized for (the
  /// ratchet: a grid built for a small radius must never serve a much
  /// larger one through a storm of tiny cells).
  void ensure_grid(double range, double t) const;
  /// Debug-only: pins the medium to the first thread that queries it
  /// (per-replication invariant; see the class comment).
  void assert_single_thread() const noexcept;

  std::span<const mobility::Trace> traces_;
  Config config_;
  const obs::Probe* probe_ = nullptr;
  double max_speed_ = 0.0;

  // Query-side caches; mutable because queries are logically const. All of
  // this is why a Medium is per-replication (see class comment).
  mutable graph::SpatialGrid grid_;
  mutable std::vector<geom::Vec2> epoch_positions_;  ///< SoA, at epoch_time_
  mutable double epoch_time_ = 0.0;
  mutable double build_range_ = 0.0;  ///< radius the current cells serve
  mutable bool grid_valid_ = false;
  mutable std::vector<std::size_t> candidate_buffer_;
  mutable std::vector<geom::Vec2> scratch_positions_;  ///< links_within scratch
  mutable std::vector<double> filter_xs_;  ///< SoA candidate coordinates
  mutable std::vector<double> filter_ys_;  ///< for the block filter
  mutable std::vector<std::size_t> accepted_buffer_;  ///< links_within accepts
  mutable std::vector<std::size_t> trace_cursors_;     ///< per-node leg hints
  mutable bool query_thread_set_ = false;
  mutable std::thread::id query_thread_;
};

}  // namespace mstc::sim
