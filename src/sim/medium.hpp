// Ideal wireless medium.
//
// The paper's simulations "use an ideal MAC layer without collision and
// contention": a transmission from u with range r at time t is received by
// exactly the nodes within Euclidean distance r of u's position at t, after
// a fixed propagation delay. Loss injection, when wanted, is applied by the
// caller (it owns the RNG streams); the medium itself is deterministic.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geom/vec2.hpp"
#include "mobility/trace.hpp"
#include "obs/probe.hpp"

namespace mstc::sim {

using NodeId = std::size_t;

class Medium {
 public:
  struct Config {
    double propagation_delay = 1e-6;  ///< seconds; >= 0
  };

  /// The medium aliases `traces`; the owner must outlive it.
  Medium(std::span<const mobility::Trace> traces, Config config);

  [[nodiscard]] std::size_t node_count() const noexcept {
    return traces_.size();
  }
  [[nodiscard]] double propagation_delay() const noexcept {
    return config_.propagation_delay;
  }

  /// Ground-truth position of a node at time t.
  [[nodiscard]] geom::Vec2 position(NodeId node, double t) const noexcept {
    return traces_[node].position(t);
  }

  /// Ground-truth distance between two nodes at time t.
  [[nodiscard]] double distance(NodeId a, NodeId b, double t) const noexcept {
    return geom::distance(position(a, t), position(b, t));
  }

  /// Attaches an observability probe (counts receiver-set deliveries).
  /// The probe must outlive the medium; null detaches.
  void set_probe(const obs::Probe* probe) noexcept { probe_ = probe; }

  /// Nodes other than `sender` within `range` (inclusive) of the sender's
  /// position at time `t`, written into `out` (cleared first).
  void receivers(NodeId sender, double range, double t,
                 std::vector<NodeId>& out) const;

  /// All positions at time t (for snapshot metrics).
  void positions(double t, std::vector<geom::Vec2>& out) const;

  /// Ground-truth graph of links with length <= range at time t: the
  /// paper's "original topology" under the normal transmission range when
  /// range = normal range.
  [[nodiscard]] std::vector<std::pair<NodeId, NodeId>> links_within(
      double range, double t) const;

 private:
  std::span<const mobility::Trace> traces_;
  Config config_;
  const obs::Probe* probe_ = nullptr;
};

}  // namespace mstc::sim
