#include "sim/medium.hpp"

#include <cassert>

namespace mstc::sim {

Medium::Medium(std::span<const mobility::Trace> traces, Config config)
    : traces_(traces), config_(config) {
  assert(config_.propagation_delay >= 0.0);
}

void Medium::receivers(NodeId sender, double range, double t,
                       std::vector<NodeId>& out) const {
  out.clear();
  const geom::Vec2 origin = position(sender, t);
  const double range_sq = range * range;
  for (NodeId node = 0; node < traces_.size(); ++node) {
    if (node == sender) continue;
    if (geom::distance_sq(origin, position(node, t)) <= range_sq) {
      out.push_back(node);
    }
  }
  if (probe_ != nullptr) {
    probe_->count_node(obs::Counter::kMediumDeliveries, sender, out.size());
  }
}

void Medium::positions(double t, std::vector<geom::Vec2>& out) const {
  out.resize(traces_.size());
  for (NodeId node = 0; node < traces_.size(); ++node) {
    out[node] = position(node, t);
  }
}

std::vector<std::pair<NodeId, NodeId>> Medium::links_within(double range,
                                                            double t) const {
  std::vector<std::pair<NodeId, NodeId>> links;
  std::vector<geom::Vec2> pos;
  positions(t, pos);
  const double range_sq = range * range;
  for (NodeId u = 0; u < pos.size(); ++u) {
    for (NodeId v = u + 1; v < pos.size(); ++v) {
      if (geom::distance_sq(pos[u], pos[v]) <= range_sq) {
        links.emplace_back(u, v);
      }
    }
  }
  return links;
}

}  // namespace mstc::sim
