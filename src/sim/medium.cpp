#include "sim/medium.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "geom/filter.hpp"

namespace mstc::sim {

Medium::Medium(std::span<const mobility::Trace> traces, Config config)
    : traces_(traces), config_(config) {
  assert(config_.propagation_delay >= 0.0);
  assert(config_.rebuild_slack_fraction >= 0.0);
  for (const mobility::Trace& trace : traces_) {
    max_speed_ = std::max(max_speed_, trace.max_speed());
  }
  trace_cursors_.assign(traces_.size(), 0);
}

void Medium::assert_single_thread() const noexcept {
#ifndef NDEBUG
  if (!query_thread_set_) {
    query_thread_ = std::this_thread::get_id();
    query_thread_set_ = true;
  }
  assert(query_thread_ == std::this_thread::get_id() &&
         "sim::Medium is per-replication: queries mutate internal caches "
         "(spatial index, trace cursors), so each thread needs its own "
         "traces + Medium");
#endif
}

void Medium::ensure_grid(double range, double t) const {
  const double slack = 2.0 * max_speed_ * std::abs(t - epoch_time_);
  if (grid_valid_ && range <= build_range_ &&
      slack <= config_.rebuild_slack_fraction * build_range_) {
    return;
  }
  positions(t, epoch_positions_);
  // Cell size covers the worst conservative radius before the next
  // rebuild, so queries stay within the 3x3 neighborhood. The grid serves
  // any radius <= build_range_; a larger request re-ratchets the cells
  // (callers pass per-node actual/extended ranges, which vary), and each
  // fresh epoch resets the ratchet to the triggering range so cell size
  // decays again when the big spenders shrink.
  build_range_ = range;
  grid_.rebuild(epoch_positions_,
                range * (1.0 + config_.rebuild_slack_fraction));
  epoch_time_ = t;
  grid_valid_ = true;
  if (probe_ != nullptr) probe_->count(obs::Counter::kMediumGridRebuilds);
}

// mstc:hot — runs once per Hello broadcast; fills the caller-owned out buffer
void Medium::receivers(NodeId sender, double range, double t,
                       std::vector<NodeId>& out) const {
  assert_single_thread();
  const obs::ScopedTimer timer(
      probe_ != nullptr ? probe_->profiler() : nullptr,
      obs::Category::kMediumQuery);
  out.clear();
  const double range_sq = range * range;
  std::uint64_t checks = 0;
  // range <= 0 (a sender with an empty selection and no buffer) stays on
  // the brute scan: sizing grid cells for a degenerate radius would poison
  // the index for every later full-range query in the epoch.
  if (config_.brute_force || traces_.empty() ||
      traces_.size() < config_.grid_min_nodes || range <= 0.0) {
    const geom::Vec2 origin = position(sender, t);
    for (NodeId node = 0; node < traces_.size(); ++node) {
      if (node == sender) continue;
      ++checks;
      if (geom::distance_sq(origin, position(node, t)) <= range_sq) {
        out.push_back(node);
      }
    }
  } else {
    ensure_grid(range, t);
    // Conservative filter: every node moved at most v_max * |t - t0| since
    // the epoch, so any node within `range` of the sender at t lies within
    // range + 2 * v_max * |t - t0| of the sender's position in the epoch
    // snapshot. The exact re-check (the block filter below) reproduces the
    // brute-force predicate bit-for-bit; SpatialGrid::query's
    // ascending-index order keeps the output order identical too.
    const bool at_epoch = t == epoch_time_;
    const geom::Vec2 origin =
        at_epoch ? epoch_positions_[sender] : position(sender, t);
    const double slack = 2.0 * max_speed_ * std::abs(t - epoch_time_);
    grid_.query(origin, range + slack, candidate_buffer_);
    const std::size_t m = candidate_buffer_.size();
    filter_xs_.resize(m);
    filter_ys_.resize(m);
    for (std::size_t i = 0; i < m; ++i) {
      const geom::Vec2 p = at_epoch ? epoch_positions_[candidate_buffer_[i]]
                                    : position(candidate_buffer_[i], t);
      filter_xs_[i] = p.x;
      filter_ys_[i] = p.y;
    }
    // The sender is always its own candidate (distance 0, and the grid
    // path only runs for range > 0), and the counter's contract is "every
    // non-sender candidate examined, accepted or not".
    assert(std::binary_search(candidate_buffer_.begin(),
                              candidate_buffer_.end(),
                              static_cast<std::size_t>(sender)));
    checks = m > 0 ? m - 1 : 0;
    if (config_.scalar_filter) {
      geom::filter_within_range_scalar(filter_xs_.data(), filter_ys_.data(),
                                       candidate_buffer_.data(), m, origin,
                                       range_sq, sender, out);
    } else {
      geom::filter_within_range(filter_xs_.data(), filter_ys_.data(),
                                candidate_buffer_.data(), m, origin, range_sq,
                                sender, out);
    }
  }
  if (probe_ != nullptr) {
    probe_->count(obs::Counter::kMediumCandidates, checks);
    probe_->count(obs::Counter::kMediumCandidatesAccepted, out.size());
    probe_->count_node(obs::Counter::kMediumDeliveries, sender, out.size());
  }
}

void Medium::positions(double t, std::vector<geom::Vec2>& out) const {
  out.resize(traces_.size());
  for (NodeId node = 0; node < traces_.size(); ++node) {
    out[node] = position(node, t);
  }
}

// mstc:hot — runs once per measurement snapshot; fills the caller-owned buffer
void Medium::links_within(double range, double t,
                          std::vector<std::pair<NodeId, NodeId>>& out) const {
  assert_single_thread();
  const obs::ScopedTimer timer(
      probe_ != nullptr ? probe_->profiler() : nullptr,
      obs::Category::kMediumQuery);
  out.clear();
  const double range_sq = range * range;
  std::uint64_t checks = 0;
  if (config_.brute_force || traces_.empty() ||
      traces_.size() < config_.grid_min_nodes) {
    positions(t, scratch_positions_);
    // The deliberate brute-force baseline behind MSTC_MEDIUM_BRUTE and the
    // small-fleet crossover; the differential suites compare the grid
    // against exactly this loop.
    for (NodeId u = 0; u < scratch_positions_.size(); ++u) {
      // mstc-lint: allow(all-pairs-scan)
      for (NodeId v = u + 1; v < scratch_positions_.size(); ++v) {
        ++checks;
        if (geom::distance_sq(scratch_positions_[u], scratch_positions_[v]) <=
            range_sq) {
          out.emplace_back(u, v);
        }
      }
    }
  } else {
    ensure_grid(range, t);
    // Amortize the piecewise-linear trace evaluation: one SoA pass per
    // call (free when t is the epoch itself — snapshot times that trigger
    // a rebuild reuse the epoch buffer) instead of one per candidate pair.
    if (t == epoch_time_) {
      scratch_positions_ = epoch_positions_;
    } else {
      positions(t, scratch_positions_);
    }
    const double slack = 2.0 * max_speed_ * std::abs(t - epoch_time_);
    const double query_radius = range + slack;
    // Single sweep: node u scans its grid neighborhood and emits u < v
    // pairs. Ascending u plus the grid's ascending candidate order yields
    // exactly the brute-force double loop's lexicographic emission order;
    // the block filter preserves input order, so feeding it the v > u
    // suffix of each candidate list keeps the emission order identical.
    for (NodeId u = 0; u < scratch_positions_.size(); ++u) {
      grid_.query(scratch_positions_[u], query_radius, candidate_buffer_);
      const auto begin =
          std::upper_bound(candidate_buffer_.begin(), candidate_buffer_.end(),
                           static_cast<std::size_t>(u));
      const auto offset =
          static_cast<std::size_t>(begin - candidate_buffer_.begin());
      const std::size_t m = candidate_buffer_.size() - offset;
      filter_xs_.resize(m);
      filter_ys_.resize(m);
      for (std::size_t i = 0; i < m; ++i) {
        const geom::Vec2 p = scratch_positions_[candidate_buffer_[offset + i]];
        filter_xs_[i] = p.x;
        filter_ys_[i] = p.y;
      }
      checks += m;
      accepted_buffer_.clear();
      if (config_.scalar_filter) {
        geom::filter_within_range_scalar(
            filter_xs_.data(), filter_ys_.data(),
            candidate_buffer_.data() + offset, m, scratch_positions_[u],
            range_sq, geom::kFilterNoSkip, accepted_buffer_);
      } else {
        geom::filter_within_range(filter_xs_.data(), filter_ys_.data(),
                                  candidate_buffer_.data() + offset, m,
                                  scratch_positions_[u], range_sq,
                                  geom::kFilterNoSkip, accepted_buffer_);
      }
      for (const std::size_t v : accepted_buffer_) out.emplace_back(u, v);
    }
  }
  if (probe_ != nullptr) {
    probe_->count(obs::Counter::kMediumCandidates, checks);
    probe_->count(obs::Counter::kMediumCandidatesAccepted, out.size());
  }
}

std::vector<std::pair<NodeId, NodeId>> Medium::links_within(double range,
                                                            double t) const {
  std::vector<std::pair<NodeId, NodeId>> links;
  links_within(range, t, links);
  return links;
}

}  // namespace mstc::sim
