// Mobility models.
//
// The paper's evaluation uses the random waypoint model (Camp et al. [5])
// with zero pause time and average moving speed 1-160 m/s. RandomWalk and
// GaussMarkov are provided for robustness studies beyond the paper.
#pragma once

#include <memory>
#include <vector>

#include "mobility/trace.hpp"
#include "util/prng.hpp"

namespace mstc::mobility {

class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  /// Generates one node's trace covering [0, duration].
  [[nodiscard]] virtual Trace make_trace(util::Xoshiro256& rng,
                                         double duration) const = 0;
};

/// Nodes placed uniformly at random and never moving.
class StaticModel final : public MobilityModel {
 public:
  explicit StaticModel(Area area) : area_(area) {}
  [[nodiscard]] Trace make_trace(util::Xoshiro256& rng,
                                 double duration) const override;

 private:
  Area area_;
};

/// Random waypoint: travel to a uniform destination at a uniform speed,
/// optionally pause, repeat. With `pause_time == 0` this is the paper's
/// configuration. Speeds are drawn from [min_speed, max_speed]; for an
/// average speed v use [0.5v, 1.5v] (see make_paper_waypoint).
class RandomWaypoint final : public MobilityModel {
 public:
  RandomWaypoint(Area area, double min_speed, double max_speed,
                 double pause_time = 0.0);
  [[nodiscard]] Trace make_trace(util::Xoshiro256& rng,
                                 double duration) const override;

 private:
  Area area_;
  double min_speed_;
  double max_speed_;
  double pause_time_;
};

/// Random direction walk with boundary reflection: pick a uniform heading,
/// walk at constant speed for `leg_time`, reflect off area walls.
class RandomWalk final : public MobilityModel {
 public:
  RandomWalk(Area area, double speed, double leg_time);
  [[nodiscard]] Trace make_trace(util::Xoshiro256& rng,
                                 double duration) const override;

 private:
  Area area_;
  double speed_;
  double leg_time_;
};

/// Gauss-Markov: velocity evolves as an AR(1) process with memory `alpha`
/// in [0, 1] (1 = straight line, 0 = memoryless), discretized at `step`.
/// Positions reflect off area walls.
class GaussMarkov final : public MobilityModel {
 public:
  GaussMarkov(Area area, double mean_speed, double alpha, double step = 1.0);
  [[nodiscard]] Trace make_trace(util::Xoshiro256& rng,
                                 double duration) const override;

 private:
  Area area_;
  double mean_speed_;
  double alpha_;
  double step_;
};

/// The paper's mobility configuration: random waypoint, zero pause, speed
/// uniform in [0.5v, 1.5v] so the configured average is v.
[[nodiscard]] std::unique_ptr<MobilityModel> make_paper_waypoint(
    Area area, double average_speed);

/// Generates `count` independent traces with per-node derived seeds, so a
/// scenario is reproducible from (seed) alone and trace i never depends on
/// how many other traces exist.
[[nodiscard]] std::vector<Trace> generate_traces(const MobilityModel& model,
                                                 std::size_t count,
                                                 double duration,
                                                 std::uint64_t seed);

}  // namespace mstc::mobility
