#include "mobility/trace_cache.hpp"

#include <utility>

namespace mstc::mobility {

std::shared_ptr<const TraceSet> TraceCache::get(
    const TraceKey& key, const std::function<TraceSet()>& generate,
    bool* generated) {
  std::shared_ptr<Entry> entry;
  {
    const util::MutexLock lock(mutex_);
    auto [it, inserted] = entries_.try_emplace(key);
    if (inserted) {
      it->second = std::make_shared<Entry>();
      insertion_order_.push_back(key);
      // FIFO eviction keeps the map bounded across long sweep campaigns.
      // Evicted sets survive in any Scenario that still holds them; a
      // re-request simply regenerates the identical set (generation is
      // pure in the key), so eviction policy cannot change results.
      while (insertion_order_.size() > max_entries_) {
        entries_.erase(insertion_order_.front());
        insertion_order_.pop_front();
      }
    }
    entry = it->second;
  }
  // Single-flight generation outside the map lock: same-key callers block
  // here until the elected generator finishes; other keys proceed freely.
  bool ran_generator = false;
  std::call_once(entry->once, [&] {
    entry->traces = std::make_shared<const TraceSet>(generate());
    ran_generator = true;
  });
  if (generated != nullptr) *generated = ran_generator;
  return entry->traces;
}

std::size_t TraceCache::size() const {
  const util::MutexLock lock(mutex_);
  return entries_.size();
}

void TraceCache::clear() {
  const util::MutexLock lock(mutex_);
  entries_.clear();
  insertion_order_.clear();
}

TraceCache& TraceCache::global() {
  static TraceCache cache;
  return cache;
}

}  // namespace mstc::mobility
