#include "mobility/trace.hpp"

#include <algorithm>
#include <cassert>

namespace mstc::mobility {

Trace::Trace(std::vector<Leg> legs, double duration)
    : legs_(std::move(legs)), duration_(duration) {
  assert(!legs_.empty());
  assert(legs_.front().start_time == 0.0);
  for (const Leg& leg : legs_) {
    max_speed_ = std::max(max_speed_, leg.velocity.norm());
  }
}

geom::Vec2 Trace::position(double t) const noexcept {
  if (legs_.empty()) return {};
  t = std::clamp(t, 0.0, duration_);
  const auto it = std::upper_bound(
      legs_.begin(), legs_.end(), t,
      [](double value, const Leg& leg) { return value < leg.start_time; });
  const Leg& leg = legs_[static_cast<std::size_t>(it - legs_.begin()) - 1];
  return leg.origin + leg.velocity * (t - leg.start_time);
}

geom::Vec2 Trace::position(double t, std::size_t& cursor) const noexcept {
  if (legs_.empty()) return {};
  t = std::clamp(t, 0.0, duration_);
  // Fast path: reuse or advance the caller's cursor; queries arrive in
  // loosely increasing time order, so the last leg index is usually right.
  std::size_t i = std::min(cursor, legs_.size() - 1);
  if (legs_[i].start_time > t) {
    // Fall back to binary search for out-of-order queries.
    const auto it = std::upper_bound(
        legs_.begin(), legs_.end(), t,
        [](double value, const Leg& leg) { return value < leg.start_time; });
    i = static_cast<std::size_t>(it - legs_.begin()) - 1;
  } else {
    while (i + 1 < legs_.size() && legs_[i + 1].start_time <= t) ++i;
  }
  cursor = i;
  const Leg& leg = legs_[i];
  return leg.origin + leg.velocity * (t - leg.start_time);
}

}  // namespace mstc::mobility
