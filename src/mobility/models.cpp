#include "mobility/models.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>

namespace mstc::mobility {

namespace {

geom::Vec2 uniform_point(util::Xoshiro256& rng, const Area& area) {
  return {rng.uniform(0.0, area.width), rng.uniform(0.0, area.height)};
}

/// Advances (pos, velocity) by dt inside `area`, emitting constant-velocity
/// legs into `legs` and reflecting the velocity at wall hits, so that every
/// emitted leg lies entirely inside the area. `t` is advanced by dt.
void advance_with_reflection(std::vector<Leg>& legs, geom::Vec2& pos,
                             geom::Vec2& velocity, double& t, double dt,
                             const Area& area) {
  double remaining = dt;
  while (remaining > 1e-12) {
    double time_to_wall = remaining;
    if (velocity.x > 0.0) {
      time_to_wall = std::min(time_to_wall, (area.width - pos.x) / velocity.x);
    } else if (velocity.x < 0.0) {
      time_to_wall = std::min(time_to_wall, pos.x / -velocity.x);
    }
    if (velocity.y > 0.0) {
      time_to_wall = std::min(time_to_wall, (area.height - pos.y) / velocity.y);
    } else if (velocity.y < 0.0) {
      time_to_wall = std::min(time_to_wall, pos.y / -velocity.y);
    }
    time_to_wall = std::max(time_to_wall, 0.0);
    const double step = std::min(time_to_wall, remaining);
    legs.push_back({t, pos, velocity});
    pos += velocity * step;
    t += step;
    remaining -= step;
    if (remaining > 1e-12) {
      // A wall was hit before the step ended: flip the offending component.
      constexpr double kEps = 1e-9;
      if (pos.x <= kEps || pos.x >= area.width - kEps) velocity.x = -velocity.x;
      if (pos.y <= kEps || pos.y >= area.height - kEps) velocity.y = -velocity.y;
      if (step <= 1e-12 && time_to_wall <= 1e-12 &&
          velocity.norm_sq() < 1e-18) {
        break;  // zero velocity pinned at a wall: nothing more to do
      }
      if (step <= 1e-12) {
        // Guard against a pathological corner where reflection makes no
        // progress; nudge time forward by consuming the remainder in place.
        legs.push_back({t, pos, {0.0, 0.0}});
        t += remaining;
        break;
      }
    }
  }
}

}  // namespace

Trace StaticModel::make_trace(util::Xoshiro256& rng, double duration) const {
  return Trace({Leg{0.0, uniform_point(rng, area_), {0.0, 0.0}}}, duration);
}

RandomWaypoint::RandomWaypoint(Area area, double min_speed, double max_speed,
                               double pause_time)
    : area_(area),
      min_speed_(min_speed),
      max_speed_(max_speed),
      pause_time_(pause_time) {
  assert(min_speed_ > 0.0 && max_speed_ >= min_speed_);
  assert(pause_time_ >= 0.0);
}

Trace RandomWaypoint::make_trace(util::Xoshiro256& rng,
                                 double duration) const {
  std::vector<Leg> legs;
  geom::Vec2 pos = uniform_point(rng, area_);
  double t = 0.0;
  while (t < duration) {
    const geom::Vec2 dest = uniform_point(rng, area_);
    const double leg_length = geom::distance(pos, dest);
    if (leg_length < 1e-9) continue;  // degenerate waypoint, redraw
    const double speed = rng.uniform(min_speed_, max_speed_);
    legs.push_back({t, pos, (dest - pos).normalized() * speed});
    t += leg_length / speed;
    pos = dest;
    if (pause_time_ > 0.0 && t < duration) {
      legs.push_back({t, pos, {0.0, 0.0}});
      t += pause_time_;
    }
  }
  return Trace(std::move(legs), duration);
}

RandomWalk::RandomWalk(Area area, double speed, double leg_time)
    : area_(area), speed_(speed), leg_time_(leg_time) {
  assert(speed_ > 0.0 && leg_time_ > 0.0);
}

Trace RandomWalk::make_trace(util::Xoshiro256& rng, double duration) const {
  std::vector<Leg> legs;
  geom::Vec2 pos = uniform_point(rng, area_);
  double t = 0.0;
  while (t < duration) {
    const double heading = rng.uniform(0.0, 2.0 * std::numbers::pi);
    geom::Vec2 velocity{speed_ * std::cos(heading), speed_ * std::sin(heading)};
    advance_with_reflection(legs, pos, velocity, t, leg_time_, area_);
  }
  if (legs.empty()) legs.push_back({0.0, pos, {0.0, 0.0}});
  return Trace(std::move(legs), duration);
}

GaussMarkov::GaussMarkov(Area area, double mean_speed, double alpha,
                         double step)
    : area_(area), mean_speed_(mean_speed), alpha_(alpha), step_(step) {
  assert(mean_speed_ > 0.0);
  assert(alpha_ >= 0.0 && alpha_ <= 1.0);
  assert(step_ > 0.0);
}

Trace GaussMarkov::make_trace(util::Xoshiro256& rng, double duration) const {
  std::vector<Leg> legs;
  geom::Vec2 pos = uniform_point(rng, area_);
  // Start at the mean speed in a random direction.
  const double heading = rng.uniform(0.0, 2.0 * std::numbers::pi);
  geom::Vec2 velocity{mean_speed_ * std::cos(heading),
                      mean_speed_ * std::sin(heading)};
  const double sigma = mean_speed_ * 0.5;
  const double noise_scale = std::sqrt(1.0 - alpha_ * alpha_) * sigma;
  double t = 0.0;
  while (t < duration) {
    advance_with_reflection(legs, pos, velocity, t, step_, area_);
    // AR(1) update toward a mean velocity whose direction follows the
    // current heading (keeps average speed near mean_speed_).
    const geom::Vec2 mean_velocity = velocity.normalized() * mean_speed_;
    velocity = alpha_ * velocity + (1.0 - alpha_) * mean_velocity +
               geom::Vec2{noise_scale * rng.normal(), noise_scale * rng.normal()};
  }
  return Trace(std::move(legs), duration);
}

std::unique_ptr<MobilityModel> make_paper_waypoint(Area area,
                                                   double average_speed) {
  return std::make_unique<RandomWaypoint>(area, 0.5 * average_speed,
                                          1.5 * average_speed,
                                          /*pause_time=*/0.0);
}

std::vector<Trace> generate_traces(const MobilityModel& model,
                                   std::size_t count, double duration,
                                   std::uint64_t seed) {
  std::vector<Trace> traces;
  traces.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    util::Xoshiro256 rng(util::derive_seed(seed, i));
    traces.push_back(model.make_trace(rng, duration));
  }
  return traces;
}

}  // namespace mstc::mobility
