// Piecewise-linear mobility traces.
//
// A Trace answers position(t) *exactly* for any t in [0, duration]; all
// simulator components (Hello transmissions, packet receptions, topology
// snapshots) therefore observe physically consistent node positions. The
// location staleness the paper studies arises purely from *when* a position
// was advertised, never from simulator interpolation error.
//
// A Trace is immutable after construction and safe to share across threads
// (mobility::TraceCache hands one generated set to every sweep point with
// identical mobility inputs). The leg-cursor fast path lives in
// caller-owned state — sim::Medium keeps one cursor per node — so sharing
// involves no mutation at all.
#pragma once

#include <cstddef>
#include <vector>

#include "geom/vec2.hpp"

namespace mstc::mobility {

/// One constant-velocity leg starting at `start_time` from `origin`.
struct Leg {
  double start_time = 0.0;
  geom::Vec2 origin;
  geom::Vec2 velocity;
};

class Trace {
 public:
  Trace() = default;

  /// Legs must be sorted by start_time with legs.front().start_time == 0.
  Trace(std::vector<Leg> legs, double duration);

  /// Exact position at time t; t is clamped to [0, duration]. Binary
  /// search over the legs, O(log legs).
  [[nodiscard]] geom::Vec2 position(double t) const noexcept;

  /// Same result, amortized O(1) for loosely increasing t: `cursor` is a
  /// caller-owned leg-index hint, advanced in place (start it at 0). The
  /// hint only seeds the search — any cursor value yields the same
  /// position — so per-caller cursors keep shared traces immutable.
  [[nodiscard]] geom::Vec2 position(double t,
                                    std::size_t& cursor) const noexcept;

  /// Largest leg speed; the adaptive buffer zone uses this bound.
  [[nodiscard]] double max_speed() const noexcept { return max_speed_; }

  [[nodiscard]] double duration() const noexcept { return duration_; }
  [[nodiscard]] const std::vector<Leg>& legs() const noexcept { return legs_; }

  /// Upper bound on |position(t1) - position(t0)| for t0 <= t1, from the
  /// max-speed bound (used by Theorem 5 style reasoning in tests).
  [[nodiscard]] double displacement_bound(double t0, double t1) const noexcept {
    return max_speed_ * (t1 - t0);
  }

 private:
  std::vector<Leg> legs_;
  double duration_ = 0.0;
  double max_speed_ = 0.0;
};

/// Rectangular deployment area [0, width] x [0, height].
struct Area {
  double width = 900.0;
  double height = 900.0;

  [[nodiscard]] bool contains(geom::Vec2 p) const noexcept {
    return p.x >= 0.0 && p.x <= width && p.y >= 0.0 && p.y <= height;
  }
};

}  // namespace mstc::mobility
