// Piecewise-linear mobility traces.
//
// A Trace answers position(t) *exactly* for any t in [0, duration]; all
// simulator components (Hello transmissions, packet receptions, topology
// snapshots) therefore observe physically consistent node positions. The
// location staleness the paper studies arises purely from *when* a position
// was advertised, never from simulator interpolation error.
#pragma once

#include <vector>

#include "geom/vec2.hpp"

namespace mstc::mobility {

/// One constant-velocity leg starting at `start_time` from `origin`.
struct Leg {
  double start_time = 0.0;
  geom::Vec2 origin;
  geom::Vec2 velocity;
};

class Trace {
 public:
  Trace() = default;

  /// Legs must be sorted by start_time with legs.front().start_time == 0.
  Trace(std::vector<Leg> legs, double duration);

  /// Exact position at time t; t is clamped to [0, duration].
  [[nodiscard]] geom::Vec2 position(double t) const noexcept;

  /// Largest leg speed; the adaptive buffer zone uses this bound.
  [[nodiscard]] double max_speed() const noexcept { return max_speed_; }

  [[nodiscard]] double duration() const noexcept { return duration_; }
  [[nodiscard]] const std::vector<Leg>& legs() const noexcept { return legs_; }

  /// Upper bound on |position(t1) - position(t0)| for t0 <= t1, from the
  /// max-speed bound (used by Theorem 5 style reasoning in tests).
  [[nodiscard]] double displacement_bound(double t0, double t1) const noexcept {
    return max_speed_ * (t1 - t0);
  }

 private:
  std::vector<Leg> legs_;
  double duration_ = 0.0;
  double max_speed_ = 0.0;
  // Hot-path cache: queries arrive in loosely increasing time order, so the
  // last leg index is usually right. mutable + benign data race is avoided
  // by copying traces per thread; sweeps never share a Trace across threads.
  mutable std::size_t cursor_ = 0;
};

/// Rectangular deployment area [0, width] x [0, height].
struct Area {
  double width = 900.0;
  double height = 900.0;

  [[nodiscard]] bool contains(geom::Vec2 p) const noexcept {
    return p.x >= 0.0 && p.x <= width && p.y >= 0.0 && p.y <= height;
  }
};

}  // namespace mstc::mobility
