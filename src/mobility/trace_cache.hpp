// Process-wide cache of generated mobility trace sets.
//
// A sweep point's traces are a pure function of (mobility model, area,
// average speed, node count, duration, derived seed) — none of which vary
// across the protocol / consistency-mode / buffer-width axes of a paper
// sweep — so every replication that shares those inputs can share one
// immutable TraceSet instead of regenerating it. The cache hands out
// std::shared_ptr<const TraceSet>; Trace itself is immutable after
// construction (leg cursors live in per-Medium state), so concurrent
// readers need no synchronization.
//
// Caching is a pure wall-clock optimization: generation is deterministic
// in the key, so a hit returns bit-identical traces to a regeneration and
// cache policy (capacity, eviction, even disabling via
// MSTC_NO_TRACE_CACHE=1) can never change simulation results — pinned by
// Determinism.TraceCacheSharedMatchesPerReplication.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "mobility/trace.hpp"
#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace mstc::mobility {

/// One generated fleet: trace i belongs to node i.
using TraceSet = std::vector<Trace>;

/// Everything trace generation reads. Model-specific constants that are
/// not configurable (RandomWalk's leg time, GaussMarkov's alpha/step) are
/// fixed per model name, so the name covers them.
struct TraceKey {
  std::string model;
  double area_width = 0.0;
  double area_height = 0.0;
  double average_speed = 0.0;
  std::size_t node_count = 0;
  double duration = 0.0;
  /// The seed handed to generate_traces (already derived, not the raw
  /// scenario seed).
  std::uint64_t seed = 0;

  friend bool operator==(const TraceKey&, const TraceKey&) = default;
  friend bool operator<(const TraceKey& a, const TraceKey& b) {
    if (a.model != b.model) return a.model < b.model;
    if (a.area_width != b.area_width) return a.area_width < b.area_width;
    if (a.area_height != b.area_height) return a.area_height < b.area_height;
    if (a.average_speed != b.average_speed) {
      return a.average_speed < b.average_speed;
    }
    if (a.node_count != b.node_count) return a.node_count < b.node_count;
    if (a.duration != b.duration) return a.duration < b.duration;
    return a.seed < b.seed;
  }
};

/// Content-keyed cache with per-key single-flight generation: concurrent
/// get() calls for the same key block until the one elected generator
/// finishes; different keys never contend beyond the map lookup. Bounded
/// FIFO retention (oldest insertion evicted first); evicted sets stay
/// alive for as long as any Scenario still holds the shared_ptr.
/// Locking model (machine-checked on Clang — see docs/STATIC_ANALYSIS.md):
/// mutex_ guards the key map and its FIFO companion only. Entry contents
/// are deliberately outside the lock: the single-flight std::call_once on
/// Entry::once is what synchronizes the one write of Entry::traces with
/// every later read, so generation never blocks unrelated keys.
class TraceCache {
 public:
  explicit TraceCache(std::size_t max_entries = 32)
      : max_entries_(max_entries) {}

  /// Returns the trace set for `key`, invoking `generate` exactly once per
  /// cached key (single-flight). `generated` (may be null) reports whether
  /// this call ran the generator — the hit/miss signal behind the
  /// trace_cache_hits / trace_cache_misses counters.
  std::shared_ptr<const TraceSet> get(const TraceKey& key,
                                      const std::function<TraceSet()>& generate,
                                      bool* generated = nullptr)
      MSTC_EXCLUDES(mutex_);

  [[nodiscard]] std::size_t size() const MSTC_EXCLUDES(mutex_);
  void clear() MSTC_EXCLUDES(mutex_);

  /// The process-wide instance every Scenario shares.
  static TraceCache& global();

 private:
  struct Entry {
    std::once_flag once;
    std::shared_ptr<const TraceSet> traces MSTC_UNGUARDED(
        "written exactly once inside std::call_once(once) and only read "
        "afterwards; call_once provides the synchronization");
  };

  mutable util::Mutex mutex_;
  const std::size_t max_entries_;
  std::map<TraceKey, std::shared_ptr<Entry>> entries_ MSTC_GUARDED_BY(mutex_);
  std::deque<TraceKey> insertion_order_ MSTC_GUARDED_BY(mutex_);
};

}  // namespace mstc::mobility
