#include "util/rusage.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace mstc::util {

std::uint64_t peak_rss_bytes() noexcept {
#if defined(__unix__) || defined(__APPLE__)
  rusage usage{};
  // The one sanctioned resource-usage read (see file comment in rusage.hpp).
  if (getrusage(RUSAGE_SELF, &usage) != 0) {  // mstc-lint: allow(wall-clock)
    return 0;
  }
#if defined(__APPLE__)
  // macOS reports ru_maxrss in bytes.
  return static_cast<std::uint64_t>(usage.ru_maxrss);
#else
  // Linux (and the BSDs) report kilobytes.
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024u;
#endif
#else
  return 0;
#endif
}

}  // namespace mstc::util
