#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdlib>

#include "util/options.hpp"

namespace mstc::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mutex_);
    stopping_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const MutexLock lock(mutex_);
    // Submitting to a pool whose destructor has started would silently drop
    // the task once workers drain and exit — and then wedge wait_idle()
    // forever on the never-decremented in_flight_ count. Fail loudly instead.
    assert(!stopping_ && "ThreadPool::submit after shutdown began");
    if (stopping_) return;
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  MutexLock lock(mutex_);
  // Explicit wait loop (not the predicate-lambda overload) so the guarded
  // read of in_flight_ stays inside this analyzed function body.
  while (in_flight_ != 0) all_done_.wait(lock.native());
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && tasks_.empty()) task_available_.wait(lock.native());
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      const MutexLock lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

std::size_t default_parallel_chunk(std::size_t n, std::size_t workers) {
  const auto env_chunk = env_or("MSTC_PARALLEL_CHUNK", std::int64_t{0});
  if (env_chunk > 0) return static_cast<std::size_t>(env_chunk);
  if (workers == 0) return 1;
  // ~8 grabs per worker: enough dynamic slack to absorb skewed per-index
  // costs (sweep replications vary widely), few enough counter grabs to
  // stay cheap when n is large and bodies are tiny.
  return std::max<std::size_t>(1, n / (8 * workers));
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  parallel_for_chunked(pool, n,
                       default_parallel_chunk(n, pool.thread_count()), body);
}

void parallel_for_chunked(ThreadPool& pool, std::size_t n, std::size_t chunk,
                          const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (chunk == 0) chunk = default_parallel_chunk(n, pool.thread_count());
  if (pool.thread_count() == 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  // Dynamic scheduling over contiguous chunks: each grab of the shared
  // counter claims indices [c * chunk, min(n, (c+1) * chunk)), so the only
  // per-chunk cost is one fetch_add. One task per participating worker —
  // parallel_for itself performs O(workers) queue operations regardless of
  // n. The counter lives on this frame: wait_idle() below guarantees every
  // worker task has returned before the frame unwinds.
  const std::size_t chunk_count = (n + chunk - 1) / chunk;
  std::atomic<std::size_t> next_chunk{0};
  const std::size_t workers = std::min(pool.thread_count(), chunk_count);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.submit([&next_chunk, chunk_count, chunk, n, &body] {
      for (;;) {
        const std::size_t c =
            next_chunk.fetch_add(1, std::memory_order_relaxed);
        if (c >= chunk_count) return;
        const std::size_t end = std::min(n, (c + 1) * chunk);
        for (std::size_t i = c * chunk; i < end; ++i) body(i);
      }
    });
  }
  pool.wait_idle();
}

ThreadPool& global_pool() {
  static ThreadPool pool(static_cast<std::size_t>(
      env_or("MSTC_THREADS", std::int64_t{0})));
  return pool;
}

}  // namespace mstc::util
