#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdlib>
#include <memory>

#include "util/options.hpp"

namespace mstc::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mutex_);
    stopping_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const MutexLock lock(mutex_);
    // Submitting to a pool whose destructor has started would silently drop
    // the task once workers drain and exit — and then wedge wait_idle()
    // forever on the never-decremented in_flight_ count. Fail loudly instead.
    assert(!stopping_ && "ThreadPool::submit after shutdown began");
    if (stopping_) return;
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  MutexLock lock(mutex_);
  // Explicit wait loop (not the predicate-lambda overload) so the guarded
  // read of in_flight_ stays inside this analyzed function body.
  while (in_flight_ != 0) all_done_.wait(lock.native());
}

bool ThreadPool::try_run_one() {
  std::function<void()> task;
  {
    const MutexLock lock(mutex_);
    if (tasks_.empty()) return false;
    task = std::move(tasks_.front());
    tasks_.pop();
  }
  task();
  {
    const MutexLock lock(mutex_);
    --in_flight_;
    if (in_flight_ == 0) all_done_.notify_all();
  }
  return true;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && tasks_.empty()) task_available_.wait(lock.native());
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      const MutexLock lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

std::size_t default_parallel_chunk(std::size_t n, std::size_t workers) {
  const auto env_chunk = env_or("MSTC_PARALLEL_CHUNK", std::int64_t{0});
  if (env_chunk > 0) return static_cast<std::size_t>(env_chunk);
  if (workers == 0) return 1;
  // ~8 grabs per worker: enough dynamic slack to absorb skewed per-index
  // costs (sweep replications vary widely), few enough counter grabs to
  // stay cheap when n is large and bodies are tiny.
  return std::max<std::size_t>(1, n / (8 * workers));
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  parallel_for_chunked(pool, n,
                       default_parallel_chunk(n, pool.thread_count()), body);
}

namespace {

// Completion state for one parallel_for_chunked call. Heap-allocated and
// shared with the submitted helper tasks so a helper that wakes up after
// every chunk has already been claimed and finished touches only this block,
// never the unwound caller frame. `body` stays a pointer into the caller:
// chunks are claimed before the body runs and completion is recorded after
// it returns, so the caller cannot leave while a claimed chunk still
// dereferences it, and unclaimed late wakeups never touch it.
struct ParallelCall {
  std::atomic<std::size_t> next_chunk{0};
  std::size_t n MSTC_UNGUARDED(
      "set once before any task is submitted; immutable afterwards") = 0;
  std::size_t chunk MSTC_UNGUARDED(
      "set once before any task is submitted; immutable afterwards") = 0;
  std::size_t chunk_count MSTC_UNGUARDED(
      "set once before any task is submitted; immutable afterwards") = 0;
  const std::function<void(std::size_t)>* body MSTC_UNGUARDED(
      "set once before any task is submitted; immutable afterwards") =
      nullptr;
  Mutex mutex;
  std::condition_variable done_cv MSTC_UNGUARDED(
      "std::condition_variable is internally synchronized; every notify "
      "follows a critical section on mutex");
  std::size_t done MSTC_GUARDED_BY(mutex) = 0;
};

// Claims and runs chunks until the shared counter is exhausted, then folds
// this participant's completions into the call's done count.
void run_parallel_chunks(ParallelCall& call) MSTC_EXCLUDES(call.mutex) {
  std::size_t completed = 0;
  for (;;) {
    const std::size_t c =
        call.next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (c >= call.chunk_count) break;
    const std::size_t end = std::min(call.n, (c + 1) * call.chunk);
    for (std::size_t i = c * call.chunk; i < end; ++i) (*call.body)(i);
    ++completed;
  }
  if (completed == 0) return;
  bool all_done = false;
  {
    const MutexLock lock(call.mutex);
    call.done += completed;
    all_done = (call.done == call.chunk_count);
  }
  if (all_done) call.done_cv.notify_all();
}

}  // namespace

void parallel_for_chunked(ThreadPool& pool, std::size_t n, std::size_t chunk,
                          const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (chunk == 0) chunk = default_parallel_chunk(n, pool.thread_count());
  const std::size_t chunk_count = (n + chunk - 1) / chunk;
  if (pool.thread_count() == 1 || chunk_count == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  // Dynamic scheduling over contiguous chunks: each grab of the shared
  // counter claims indices [c * chunk, min(n, (c+1) * chunk)), so the only
  // per-chunk cost is one fetch_add. One helper task per additional
  // participant beyond the caller — O(workers) queue operations regardless
  // of n. The caller runs the same chunk loop itself and then waits on the
  // call's own completion count (NOT wait_idle, which counts unrelated
  // tasks and deadlocks when the caller is itself a pool worker): even if
  // every helper is stuck behind other queued work, the calling thread
  // drains all chunks alone and nested parallel_for always terminates.
  auto call = std::make_shared<ParallelCall>();
  call->n = n;
  call->chunk = chunk;
  call->chunk_count = chunk_count;
  call->body = &body;
  const std::size_t helpers = std::min(pool.thread_count(), chunk_count - 1);
  for (std::size_t w = 0; w < helpers; ++w) {
    pool.submit([call] { run_parallel_chunks(*call); });
  }
  run_parallel_chunks(*call);
  MutexLock lock(call->mutex);
  // Explicit wait loop (not the predicate-lambda overload) so the guarded
  // read of done stays inside this analyzed function body.
  while (call->done != call->chunk_count) call->done_cv.wait(lock.native());
}

ThreadPool& global_pool() {
  static ThreadPool pool(static_cast<std::size_t>(
      env_or("MSTC_THREADS", std::int64_t{0})));
  return pool;
}

}  // namespace mstc::util
