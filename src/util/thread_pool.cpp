#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdlib>

#include "util/options.hpp"

namespace mstc::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard lock(mutex_);
    // Submitting to a pool whose destructor has started would silently drop
    // the task once workers drain and exit — and then wedge wait_idle()
    // forever on the never-decremented in_flight_ count. Fail loudly instead.
    assert(!stopping_ && "ThreadPool::submit after shutdown began");
    if (stopping_) return;
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_available_.wait(
          lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      const std::lock_guard lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (pool.thread_count() == 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  // Dynamic chunking via a shared counter: threads grab one index at a time,
  // which balances the (often skewed) per-run costs of a sweep.
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  const std::size_t workers = std::min(pool.thread_count(), n);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.submit([next, n, &body] {
      for (;;) {
        const std::size_t i = next->fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        body(i);
      }
    });
  }
  pool.wait_idle();
}

ThreadPool& global_pool() {
  static ThreadPool pool(static_cast<std::size_t>(
      env_or("MSTC_THREADS", std::int64_t{0})));
  return pool;
}

}  // namespace mstc::util
