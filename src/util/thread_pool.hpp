// Fixed-size thread pool and deterministic parallel_for.
//
// Parameter sweeps run many independent (config, seed) simulations; the pool
// spreads them over hardware threads. Work is partitioned statically by
// index so results land in pre-sized slots — parallel execution is therefore
// bit-identical to serial execution, which the reproducibility tests assert.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace mstc::util {

/// Locking model (machine-checked on Clang — see docs/STATIC_ANALYSIS.md):
/// one mutex guards the queue and the shutdown/complete-count state; both
/// condition variables are signalled only by threads that just held it.
/// Public entry points take the lock themselves, so they carry
/// MSTC_EXCLUDES(mutex_) — calling them from code that already holds the
/// pool's lock would self-deadlock, and the analysis rejects it.
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool() MSTC_EXCLUDES(mutex_);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// Enqueues a task. Tasks must not throw; exceptions escaping a task
  /// terminate the program (simulation code reports errors via results).
  /// Calling submit() after the destructor has begun is a programming error:
  /// it asserts in debug builds and drops the task in release builds.
  void submit(std::function<void()> task) MSTC_EXCLUDES(mutex_);

  /// Blocks until every task submitted so far has finished. Safe to call
  /// concurrently from several threads; tasks submitted concurrently with
  /// the call may or may not be waited for.
  ///
  /// Deadlock hazard: a pool *worker* must never call wait_idle() — its own
  /// task is counted in the in-flight total, so the wait can never be
  /// satisfied. Code that needs to wait for sub-tasks from inside a worker
  /// should use per-call completion state plus try_run_one() (the pattern
  /// parallel_for_chunked implements) instead.
  void wait_idle() MSTC_EXCLUDES(mutex_);

  /// Pops one queued task, if any, and runs it on the calling thread.
  /// Returns false without blocking when the queue is empty. This is the
  /// cooperative-scheduling primitive for nested submission: a thread that
  /// must wait for pool work can drain the queue itself instead of parking
  /// a thread the queued work may need to make progress.
  bool try_run_one() MSTC_EXCLUDES(mutex_);

 private:
  void worker_loop() MSTC_EXCLUDES(mutex_);

  std::vector<std::thread> workers_ MSTC_UNGUARDED(
      "filled in the constructor before any worker can observe the pool, "
      "then immutable until the destructor joins; thread_count() reads it "
      "lock-free on that basis");
  std::queue<std::function<void()>> tasks_ MSTC_GUARDED_BY(mutex_);
  Mutex mutex_;
  std::condition_variable task_available_ MSTC_UNGUARDED(
      "std::condition_variable is internally synchronized; every notify "
      "follows a critical section on mutex_");
  std::condition_variable all_done_ MSTC_UNGUARDED(
      "std::condition_variable is internally synchronized; every notify "
      "follows a critical section on mutex_");
  std::size_t in_flight_ MSTC_GUARDED_BY(mutex_) = 0;
  bool stopping_ MSTC_GUARDED_BY(mutex_) = false;
};

/// Runs body(i) for i in [0, n) across the pool and waits for completion.
/// body must be safe to invoke concurrently for distinct indices.
///
/// Work is handed out as contiguous index chunks through a shared atomic
/// chunk counter, with one submitted pool task per participating worker —
/// scheduling never allocates per index. Which worker runs which chunk is
/// nondeterministic, but every index runs exactly once and results land in
/// caller-owned pre-sized slots, so outputs are bit-identical to a serial
/// loop for any chunk size (the determinism suite asserts it).
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body);

/// parallel_for with an explicit chunk size (indices per counter grab).
/// chunk == 0 picks the default heuristic; chunk == 1 is the maximally
/// balanced escape hatch (one index per grab, the pre-chunking behavior).
/// Larger chunks amortize counter traffic for cheap bodies at the price of
/// coarser load balancing.
///
/// Nested-submission safe: the caller participates in its own chunk loop
/// and waits on per-call completion state rather than wait_idle(), so a
/// pool worker may issue a parallel_for over the same pool (replication
/// task fanning out shard tasks). Even with every other worker busy the
/// calling thread runs all chunks itself — helping run the call's queued
/// work instead of deadlocking on its own in-flight task.
void parallel_for_chunked(ThreadPool& pool, std::size_t n, std::size_t chunk,
                          const std::function<void(std::size_t)>& body);

/// Chunk size parallel_for uses for `n` indices on `workers` threads when
/// none is given: keeps ~8 grabs per worker for load balancing while
/// bounding counter traffic, so small sweeps (n <= 8 * workers) stay at
/// chunk 1 and huge index spaces scale. Env override: MSTC_PARALLEL_CHUNK.
[[nodiscard]] std::size_t default_parallel_chunk(std::size_t n,
                                                 std::size_t workers);

/// Process-wide pool sized from MSTC_THREADS (default: hardware threads).
[[nodiscard]] ThreadPool& global_pool();

}  // namespace mstc::util
