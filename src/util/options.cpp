#include "util/options.hpp"

#include <charconv>
#include <cstdlib>

namespace mstc::util {

std::optional<std::string> env(std::string_view name) {
  const std::string key(name);
  const char* value = std::getenv(key.c_str());
  if (value == nullptr || *value == '\0') return std::nullopt;
  return std::string(value);
}

double env_or(std::string_view name, double fallback) {
  const auto raw = env(name);
  if (!raw) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(raw->c_str(), &end);
  return (end == raw->c_str() || *end != '\0') ? fallback : parsed;
}

std::int64_t env_or(std::string_view name, std::int64_t fallback) {
  const auto raw = env(name);
  if (!raw) return fallback;
  std::int64_t parsed = 0;
  const auto [ptr, ec] =
      std::from_chars(raw->data(), raw->data() + raw->size(), parsed);
  return (ec != std::errc{} || ptr != raw->data() + raw->size()) ? fallback
                                                                 : parsed;
}

std::string env_or(std::string_view name, std::string fallback) {
  return env(name).value_or(std::move(fallback));
}

bool env_flag(std::string_view name, bool fallback) {
  const auto raw = env(name);
  if (!raw) return fallback;
  return *raw == "1" || *raw == "true" || *raw == "on" || *raw == "yes";
}

std::vector<double> env_list(std::string_view name,
                             std::vector<double> fallback) {
  const auto raw = env(name);
  if (!raw) return fallback;
  std::vector<double> values;
  std::size_t start = 0;
  while (start <= raw->size()) {
    std::size_t comma = raw->find(',', start);
    if (comma == std::string::npos) comma = raw->size();
    const std::string item = raw->substr(start, comma - start);
    if (!item.empty()) {
      char* end = nullptr;
      const double parsed = std::strtod(item.c_str(), &end);
      if (end == item.c_str() || *end != '\0') return fallback;
      values.push_back(parsed);
    }
    start = comma + 1;
  }
  return values.empty() ? fallback : values;
}

}  // namespace mstc::util
