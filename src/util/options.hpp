// Environment-variable and command-line option helpers.
//
// Benchmarks default to CI-scale parameters and are promoted to the paper's
// full parameters through MSTC_* environment variables; env_or centralizes
// that lookup with type-safe parsing.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mstc::util {

/// Raw environment lookup; nullopt when unset or empty.
[[nodiscard]] std::optional<std::string> env(std::string_view name);

/// Typed environment lookup with a default. Malformed values fall back to
/// the default (benchmarks should never crash on a typo'd env var, they
/// should run the documented default).
[[nodiscard]] double env_or(std::string_view name, double fallback);
[[nodiscard]] std::int64_t env_or(std::string_view name, std::int64_t fallback);
[[nodiscard]] std::string env_or(std::string_view name, std::string fallback);
[[nodiscard]] bool env_flag(std::string_view name, bool fallback = false);

/// Parses "a,b,c" into doubles; returns fallback when unset/malformed.
[[nodiscard]] std::vector<double> env_list(std::string_view name,
                                           std::vector<double> fallback);

}  // namespace mstc::util
