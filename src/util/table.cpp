#include "util/table.hpp"

#include <cassert>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace mstc::util {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  assert(!columns_.empty());
}

void Table::add_row(std::vector<Cell> row) {
  assert(row.size() == columns_.size());
  rows_.push_back(std::move(row));
}

std::string Table::format_cell(const Cell& cell) const {
  if (const auto* text = std::get_if<std::string>(&cell)) return *text;
  if (const auto* integer = std::get_if<std::int64_t>(&cell)) {
    return std::to_string(*integer);
  }
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision_) << std::get<double>(cell);
  return out.str();
}

void Table::print(std::ostream& out) const {
  if (!title_.empty()) out << title_ << '\n';
  std::vector<std::size_t> widths(columns_.size());
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(format_cell(row[c]));
      widths[c] = std::max(widths[c], cells.back().size());
    }
    rendered.push_back(std::move(cells));
  }
  const auto print_line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << std::left << std::setw(static_cast<int>(widths[c]) + 2) << cells[c];
    }
    out << '\n';
  };
  print_line(columns_);
  std::string rule;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    rule += std::string(widths[c], '-') + "  ";
  }
  out << rule << '\n';
  for (const auto& row : rendered) print_line(row);
  out.flush();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    out << columns_[c] << (c + 1 < columns_.size() ? "," : "\n");
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << format_cell(row[c]) << (c + 1 < row.size() ? "," : "\n");
    }
  }
  return out.str();
}

void Table::maybe_write_csv(const std::string& dir,
                            const std::string& name) const {
  if (dir.empty()) return;
  std::ofstream file(dir + "/" + name + ".csv");
  if (file) file << to_csv();
}

std::string format_ci(double mean, double half_width, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << mean << " ±"
      << half_width;
  return out.str();
}

}  // namespace mstc::util
