// Process resource-usage helpers (getrusage).
//
// Like wall-clock time, resource usage describes the machine, not the
// simulation: these readings feed the observability ledger and manifests
// only, never simulation state. The `wall-clock` rule of tools/mstc_lint.py
// confines the raw getrusage(2) call to rusage.cpp, mirroring how clock
// reads are confined to src/obs/profile.cpp.
#pragma once

#include <cstdint>

namespace mstc::util {

/// Peak resident set size of the process in bytes (ru_maxrss), 0 when the
/// platform cannot report it. Monotonic over the process lifetime: the
/// kernel reports the high-water mark, so per-replication readings record
/// "the process had grown this large by the time this replication
/// finished", not a per-replication footprint.
[[nodiscard]] std::uint64_t peak_rss_bytes() noexcept;

}  // namespace mstc::util
