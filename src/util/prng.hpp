// Deterministic pseudo-random number generation.
//
// Every simulation run in this library is a pure function of (config, seed).
// We use xoshiro256** as the workhorse generator and splitmix64 both to seed
// it and to derive independent per-replication / per-node streams, following
// the recommendation of the xoshiro authors. std::mt19937 is avoided because
// its seeding is easy to get wrong and its state is needlessly large for the
// millions of short-lived streams a parameter sweep creates.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace mstc::util {

/// One step of the splitmix64 sequence starting at `x`. Useful as a seed
/// scrambler: consecutive integers map to well-distributed 64-bit values.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Derives an independent stream seed from a base seed and a stream index.
/// derive_seed(s, i) != derive_seed(s, j) for i != j with overwhelming
/// probability; used to give each replication / node its own generator.
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t base,
                                                  std::uint64_t stream) noexcept {
  std::uint64_t x = base ^ (0x9e3779b97f4a7c15ULL * (stream + 1));
  (void)splitmix64(x);
  return splitmix64(x);
}

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference
/// implementation, adapted). Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    // splitmix64-expand the seed as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : state_) word = splitmix64(x);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  constexpr double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Unbiased via rejection sampling.
  constexpr std::uint64_t uniform_below(std::uint64_t n) noexcept {
    if (n == 0) return 0;
    const std::uint64_t threshold = (0 - n) % n;  // 2^64 mod n
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    uniform_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with success probability p.
  constexpr bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Exponential variate with rate lambda (mean 1/lambda).
  double exponential(double lambda) noexcept;

  /// Standard normal variate (Box-Muller, one value per call; the twin
  /// value is cached).
  double normal() noexcept;

  /// Normal variate with given mean and standard deviation.
  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace mstc::util
