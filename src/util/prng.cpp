#include "util/prng.hpp"

#include <cmath>

namespace mstc::util {

double Xoshiro256::exponential(double lambda) noexcept {
  // Inverse CDF; 1 - uniform() is in (0, 1] so the log argument is nonzero.
  return -std::log(1.0 - uniform()) / lambda;
}

double Xoshiro256::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller on the open unit square.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

}  // namespace mstc::util
