// Streaming summary statistics and confidence intervals.
//
// The paper reports every data point with a 95 % confidence interval over
// 20 simulation repetitions; Summary/ConfidenceInterval provide exactly
// that (Welford's online algorithm + Student-t quantiles).
#pragma once

#include <algorithm>
#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace mstc::util {

/// Two-sided confidence interval [mean - half_width, mean + half_width].
struct ConfidenceInterval {
  double mean = 0.0;
  double half_width = 0.0;

  [[nodiscard]] double lower() const noexcept { return mean - half_width; }
  [[nodiscard]] double upper() const noexcept { return mean + half_width; }
  [[nodiscard]] bool contains(double x) const noexcept {
    return x >= lower() && x <= upper();
  }
};

/// Streaming mean/variance/min/max accumulator (Welford's algorithm,
/// numerically stable for long streams).
class Summary {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  void merge(const Summary& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double total() const noexcept {
    return mean_ * static_cast<double>(n_);
  }

  /// 95 % Student-t confidence interval on the mean. With fewer than two
  /// samples the half-width is infinite (nothing is known about spread).
  [[nodiscard]] ConfidenceInterval ci95() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Two-sided 97.5 % Student-t quantile for `dof` degrees of freedom
/// (i.e. the multiplier for a 95 % CI). Exact table for small dof,
/// asymptotic 1.96 beyond.
[[nodiscard]] double t_quantile_975(std::size_t dof) noexcept;

/// Convenience: summary over an existing sample.
[[nodiscard]] Summary summarize(std::span<const double> sample) noexcept;

/// Sample median (copies and partially sorts). Returns 0 for empty input.
[[nodiscard]] double median(std::vector<double> sample) noexcept;

}  // namespace mstc::util
