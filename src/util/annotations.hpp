// Clang thread-safety capability annotations (no-ops elsewhere).
//
// The repo's locking discipline is machine-checked at compile time on Clang
// builds: the `mstc_thread_safety` interface target turns on
// `-Wthread-safety -Werror=thread-safety` so an unguarded access to a
// `MSTC_GUARDED_BY` field, a missing `MSTC_REQUIRES` caller lock, or an
// unbalanced `MSTC_ACQUIRE`/`MSTC_RELEASE` pair fails the build instead of
// becoming a data race for TSan to find at runtime (see
// docs/STATIC_ANALYSIS.md). GCC and MSVC compile the macros away, so
// annotated headers stay portable.
//
// libstdc++'s std::mutex carries no capability attributes, so the analysis
// cannot see through std::lock_guard / std::unique_lock. Lock through the
// annotated wrappers in util/mutex.hpp (util::Mutex + util::MutexLock)
// instead; they are the repo's only sanctioned mutex types.
//
// Macro catalogue (mirroring Clang's attribute names):
//   MSTC_CAPABILITY(x)        class declares a capability named x ("mutex")
//   MSTC_SCOPED_CAPABILITY    RAII class that acquires in its constructor
//                             and releases in its destructor
//   MSTC_GUARDED_BY(m)        field may only be touched while holding m
//   MSTC_PT_GUARDED_BY(m)     pointee of the field is guarded by m
//   MSTC_REQUIRES(m...)       function must be called with m held
//   MSTC_ACQUIRE(m...)        function acquires m and holds it on return
//   MSTC_RELEASE(m...)        function releases m
//   MSTC_TRY_ACQUIRE(b, m...) function acquires m iff it returns b
//   MSTC_EXCLUDES(m...)       function must NOT be called with m held
//                             (documents public entry points of a class
//                             with a private lock, and catches re-entrant
//                             self-deadlock at compile time)
//   MSTC_ASSERT_CAPABILITY(m) function asserts (runtime-checks) m is held
//   MSTC_RETURN_CAPABILITY(m) function returns a reference to capability m
//   MSTC_NO_THREAD_SAFETY_ANALYSIS
//                             escape hatch: function body is not analyzed.
//                             Requires a justification comment; the tidy
//                             rule `missing-guarded-by` still applies to
//                             the fields it touches.
//
// One macro is ours, not Clang's:
//   MSTC_UNGUARDED(why)       documentation-only marker for a field of a
//                             mutex-owning class that is deliberately NOT
//                             lock-protected (immutable after construction,
//                             synchronized by std::call_once, ...). Expands
//                             to nothing on every compiler; its presence —
//                             with the written reason — is what satisfies
//                             tools/mstc_tidy.py's `missing-guarded-by`
//                             rule, so unguarded fields are a reviewed
//                             decision rather than an omission.
#pragma once

#if defined(__clang__) && !defined(MSTC_NO_THREAD_SAFETY_ATTRIBUTES)
#define MSTC_TSA_ATTRIBUTE(x) __attribute__((x))
#else
#define MSTC_TSA_ATTRIBUTE(x)  // no-op outside Clang
#endif

#define MSTC_CAPABILITY(x) MSTC_TSA_ATTRIBUTE(capability(x))
#define MSTC_SCOPED_CAPABILITY MSTC_TSA_ATTRIBUTE(scoped_lockable)
#define MSTC_GUARDED_BY(x) MSTC_TSA_ATTRIBUTE(guarded_by(x))
#define MSTC_PT_GUARDED_BY(x) MSTC_TSA_ATTRIBUTE(pt_guarded_by(x))
#define MSTC_REQUIRES(...) \
  MSTC_TSA_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define MSTC_REQUIRES_SHARED(...) \
  MSTC_TSA_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))
#define MSTC_ACQUIRE(...) MSTC_TSA_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define MSTC_RELEASE(...) MSTC_TSA_ATTRIBUTE(release_capability(__VA_ARGS__))
#define MSTC_TRY_ACQUIRE(...) \
  MSTC_TSA_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))
#define MSTC_EXCLUDES(...) MSTC_TSA_ATTRIBUTE(locks_excluded(__VA_ARGS__))
#define MSTC_ASSERT_CAPABILITY(x) MSTC_TSA_ATTRIBUTE(assert_capability(x))
#define MSTC_RETURN_CAPABILITY(x) MSTC_TSA_ATTRIBUTE(lock_returned(x))
#define MSTC_NO_THREAD_SAFETY_ANALYSIS \
  MSTC_TSA_ATTRIBUTE(no_thread_safety_analysis)

// Documentation-only (see header comment). The reason string is required.
#define MSTC_UNGUARDED(why)
