// Capability-annotated mutex wrappers.
//
// libstdc++ ships std::mutex without Clang thread-safety attributes, so the
// static analysis (-Wthread-safety, see util/annotations.hpp and
// docs/STATIC_ANALYSIS.md) cannot follow std::lock_guard / std::unique_lock
// acquisitions. These zero-overhead wrappers restore visibility: a
// util::Mutex is a declared capability, and a util::MutexLock is a scoped
// acquisition the analysis tracks, so `MSTC_GUARDED_BY(mutex_)` fields are
// enforced at compile time on Clang. All mutex-protected classes in src/
// lock through these types — tools/mstc_tidy.py's `missing-guarded-by`
// rule treats a bare std::mutex member the same as a util::Mutex, so
// switching back does not dodge the check.
//
// Condition variables: std::condition_variable needs the underlying
// std::unique_lock, exposed as MutexLock::native(). A wait returns with the
// lock re-held, so from the analysis's perspective the capability state is
// unchanged across the call — use the
//     while (!predicate()) cv.wait(lock.native());
// form rather than the predicate-lambda overload: lambdas are analyzed as
// separate functions and would warn on guarded reads inside the predicate.
#pragma once

#include <mutex>

#include "util/annotations.hpp"

namespace mstc::util {

/// Annotated exclusive mutex (a Clang "capability"). Same cost and
/// semantics as the std::mutex it wraps.
class MSTC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MSTC_ACQUIRE() { mutex_.lock(); }
  void unlock() MSTC_RELEASE() { mutex_.unlock(); }
  [[nodiscard]] bool try_lock() MSTC_TRY_ACQUIRE(true) {
    return mutex_.try_lock();
  }

  /// The wrapped mutex, for std::condition_variable interop only (via
  /// MutexLock::native()); locking it directly bypasses the analysis.
  [[nodiscard]] std::mutex& native() noexcept { return mutex_; }

 private:
  std::mutex mutex_;
};

/// RAII lock for util::Mutex; the annotated replacement for
/// std::lock_guard / std::unique_lock in this repo.
class MSTC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) MSTC_ACQUIRE(mutex)
      : lock_(mutex.native()) {}
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() MSTC_RELEASE() {}  // NOLINT(modernize-use-equals-default):
  // a defaulted destructor could not carry the release annotation on every
  // supported compiler; the empty body keeps the attribute portable.

  /// Underlying lock for std::condition_variable::wait (see file comment).
  [[nodiscard]] std::unique_lock<std::mutex>& native() noexcept {
    return lock_;
  }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace mstc::util
