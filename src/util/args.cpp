#include "util/args.hpp"

#include <cstdlib>

namespace mstc::util {

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const std::size_t equals = body.find('=');
    if (equals != std::string::npos) {
      options_[body.substr(0, equals)] = body.substr(equals + 1);
      continue;
    }
    // "--key value" when the next token is not itself an option;
    // otherwise a bare switch.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      options_[body] = argv[++i];
    } else {
      options_[body] = "";
    }
  }
}

bool ArgParser::has(const std::string& name) const {
  queried_[name] = true;
  return options_.contains(name);
}

std::optional<std::string> ArgParser::value(const std::string& name) const {
  queried_[name] = true;
  const auto it = options_.find(name);
  if (it == options_.end() || it->second.empty()) return std::nullopt;
  return it->second;
}

std::string ArgParser::get(const std::string& name,
                           std::string fallback) const {
  return value(name).value_or(std::move(fallback));
}

double ArgParser::get(const std::string& name, double fallback) const {
  const auto raw = value(name);
  if (!raw) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(raw->c_str(), &end);
  return (end == raw->c_str() || *end != '\0') ? fallback : parsed;
}

long ArgParser::get(const std::string& name, long fallback) const {
  const auto raw = value(name);
  if (!raw) return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(raw->c_str(), &end, 10);
  return (end == raw->c_str() || *end != '\0') ? fallback : parsed;
}

std::vector<std::string> ArgParser::unknown() const {
  std::vector<std::string> names;
  for (const auto& [name, value] : options_) {
    if (!queried_.contains(name)) names.push_back(name);
  }
  return names;
}

}  // namespace mstc::util
