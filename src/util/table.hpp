// Column-formatted result tables.
//
// Every benchmark prints its table/figure data through Table so the output
// is simultaneously human-readable (aligned ASCII) and machine-readable
// (CSV via to_csv / MSTC_CSV_DIR dumps).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace mstc::util {

class Table {
 public:
  using Cell = std::variant<std::string, double, std::int64_t>;

  explicit Table(std::vector<std::string> columns);

  /// Optional caption printed above the table.
  void set_title(std::string title) { title_ = std::move(title); }

  /// Number of digits after the decimal point for double cells (default 3).
  void set_precision(int digits) { precision_ = digits; }

  /// Appends a row; must contain exactly one cell per column.
  void add_row(std::vector<Cell> row);

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& columns() const noexcept {
    return columns_;
  }

  /// Aligned ASCII rendering.
  void print(std::ostream& out) const;

  /// RFC-4180-ish CSV rendering (no quoting needed for our cell contents).
  [[nodiscard]] std::string to_csv() const;

  /// Writes CSV to `<dir>/<name>.csv` when dir is nonempty; used with
  /// MSTC_CSV_DIR so plots can be regenerated offline.
  void maybe_write_csv(const std::string& dir, const std::string& name) const;

 private:
  [[nodiscard]] std::string format_cell(const Cell& cell) const;

  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 3;
};

/// Formats "mean ± half_width" for confidence-interval cells.
[[nodiscard]] std::string format_ci(double mean, double half_width,
                                    int precision = 3);

}  // namespace mstc::util
