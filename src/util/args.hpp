// Minimal command-line argument parser for the tools/ binaries.
//
// Supports --key value and --key=value pairs plus bare boolean switches
// (--flag). Unknown options are collected so callers can reject typos with
// a helpful message instead of silently ignoring them.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mstc::util {

class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  /// True when --name was present (with or without a value).
  [[nodiscard]] bool has(const std::string& name) const;

  /// Raw value of --name; nullopt when absent or valueless.
  [[nodiscard]] std::optional<std::string> value(const std::string& name) const;

  [[nodiscard]] std::string get(const std::string& name,
                                std::string fallback) const;
  [[nodiscard]] double get(const std::string& name, double fallback) const;
  [[nodiscard]] long get(const std::string& name, long fallback) const;
  [[nodiscard]] bool get_flag(const std::string& name) const { return has(name); }

  /// Positional (non --option) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// Option names the caller never queried — call after all get()s to
  /// reject typos. (Querying marks a name as known.)
  [[nodiscard]] std::vector<std::string> unknown() const;

 private:
  std::map<std::string, std::string> options_;  // name -> value ("" if none)
  mutable std::map<std::string, bool> queried_;
  std::vector<std::string> positional_;
};

}  // namespace mstc::util
