#include "util/stats.hpp"

#include <array>
#include <cmath>

namespace mstc::util {

void Summary::merge(const Summary& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double combined = na + nb;
  mean_ += delta * nb / combined;
  m2_ += other.m2_ + delta * delta * na * nb / combined;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Summary::stddev() const noexcept { return std::sqrt(variance()); }

double t_quantile_975(std::size_t dof) noexcept {
  // Two-tailed 95 % critical values of the Student-t distribution.
  static constexpr std::array<double, 31> kTable = {
      0.0,    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
      2.228,  2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
      2.086,  2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045,
      2.042};
  if (dof == 0) return std::numeric_limits<double>::infinity();
  if (dof < kTable.size()) return kTable[dof];
  if (dof < 40) return 2.03;
  if (dof < 60) return 2.01;
  if (dof < 120) return 1.99;
  return 1.96;
}

ConfidenceInterval Summary::ci95() const noexcept {
  ConfidenceInterval ci;
  ci.mean = mean_;
  if (n_ < 2) {
    ci.half_width = std::numeric_limits<double>::infinity();
    return ci;
  }
  const double standard_error = stddev() / std::sqrt(static_cast<double>(n_));
  ci.half_width = t_quantile_975(n_ - 1) * standard_error;
  return ci;
}

Summary summarize(std::span<const double> sample) noexcept {
  Summary s;
  for (double x : sample) s.add(x);
  return s;
}

double median(std::vector<double> sample) noexcept {
  if (sample.empty()) return 0.0;
  const auto mid = sample.begin() + static_cast<std::ptrdiff_t>(sample.size() / 2);
  std::nth_element(sample.begin(), mid, sample.end());
  if (sample.size() % 2 == 1) return *mid;
  const double hi = *mid;
  const double lo = *std::max_element(sample.begin(), mid);
  return 0.5 * (lo + hi);
}

}  // namespace mstc::util
