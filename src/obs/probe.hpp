// The hot-path handle of the observability layer.
//
// A RunObservation bundles everything one simulation run may record
// (counters, trace, wall-clock profile) plus the enable flags; a Probe is
// the cheap value handle instrumentation points hold. A default-constructed
// Probe is permanently disabled: every count()/trace() call reduces to a
// branch on a null pointer, which is the "zero overhead when off" contract
// the determinism suite leans on (observation on vs off must yield
// byte-identical RunStats).
//
// Threading: a RunObservation belongs to exactly one run; nothing here
// locks. Parallel sweeps allocate one RunObservation per replication slot
// and merge afterwards in deterministic task order (runner::SweepHooks).
#pragma once

#include <cstddef>
#include <cstdint>

#include "obs/counters.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/ledger.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"

namespace mstc::obs {

/// Everything one simulation run records. Counters are on whenever an
/// observation is attached; tracing, profiling and flight recording are
/// opt-in because they cost memory / clock reads respectively. The ledger
/// is filled in by the sweep runner after the run completes (see
/// runner::SweepHooks::ledger), never during it.
struct RunObservation {
  CounterRegistry counters;
  MemoryTraceSink trace;
  Profiler profiler;
  FlightRecorder flight;
  RunLedger ledger;
  bool trace_on = false;
  bool profile_on = false;
  bool flight_on = false;
};

class Probe {
 public:
  /// Disabled probe: all recording calls are no-ops.
  Probe() = default;
  explicit Probe(RunObservation* observation) noexcept
      : observation_(observation) {}

  [[nodiscard]] bool counting() const noexcept {
    return observation_ != nullptr;
  }
  [[nodiscard]] bool tracing() const noexcept {
    return observation_ != nullptr &&
           (observation_->trace_on || observation_->flight_on);
  }
  /// Null when profiling is off — feed it straight to ScopedTimer.
  [[nodiscard]] Profiler* profiler() const noexcept {
    return observation_ != nullptr && observation_->profile_on
               ? &observation_->profiler
               : nullptr;
  }

  void count(Counter counter, std::uint64_t delta = 1) const {
    if (observation_ != nullptr) observation_->counters.add(counter, delta);
  }
  void count_node(Counter counter, std::size_t node,
                  std::uint64_t delta = 1) const {
    if (observation_ != nullptr) {
      observation_->counters.add_node(counter, node, delta);
    }
  }
  void observe(Hist hist, double value) const {
    if (observation_ != nullptr) {
      observation_->counters.histogram(hist).add(value);
    }
  }

  /// Records a trace event at sim-time `time` (every instrumentation point
  /// already has the simulation clock in hand, so no time source is
  /// threaded through the probe). The same record feeds the full trace
  /// sink and/or the bounded flight-recorder ring, per the enable flags.
  void trace(EventKind kind, double time, std::size_t node,
             double value = 0.0, std::uint64_t aux = 0) const {
    if (!tracing()) return;
    const TraceEvent event{time, static_cast<std::uint32_t>(node), kind,
                           value, aux};
    if (observation_->trace_on) observation_->trace.record(event);
    if (observation_->flight_on) observation_->flight.record(event);
  }

 private:
  RunObservation* observation_ = nullptr;
};

}  // namespace mstc::obs
