#include "obs/profile.hpp"

// The one sanctioned wall-clock read in the library tree; everything else
// must go through wall_now_ns() (enforced by the `wall-clock` lint rule).
#include <chrono>

namespace mstc::obs {

const char* category_name(Category category) noexcept {
  switch (category) {
    case Category::kSetup:
      return "setup";
    case Category::kTraceGen:
      return "trace_gen";
    case Category::kBeaconing:
      return "beaconing";
    case Category::kSyncFlood:
      return "sync_flood";
    case Category::kDataFlood:
      return "data_flood";
    case Category::kSnapshot:
      return "snapshot";
    case Category::kContact:
      return "contact";
    case Category::kMediumQuery:
      return "medium_query";
    case Category::kViewAssembly:
      return "view_assembly";
    case Category::kProtocolSelect:
      return "protocol_select";
    case Category::kDelivery:
      return "delivery";
    case Category::kCount:
      break;
  }
  return "unknown";
}

std::uint64_t wall_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace mstc::obs
