#include "obs/manifest.hpp"

#include <cinttypes>
#include <cstdio>
#include <memory>

namespace mstc::obs {

const char* build_version() noexcept {
#ifdef MSTC_GIT_DESCRIBE
  return MSTC_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

std::string json_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f != nullptr) std::fclose(f);
  }
};

}  // namespace

bool write_manifest(const std::string& path, const Manifest& manifest) {
  std::unique_ptr<std::FILE, FileCloser> file(
      std::fopen(path.c_str(), "w"));
  if (!file) return false;
  std::FILE* f = file.get();

  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"tool\": \"%s\",\n",
               json_escape(manifest.tool).c_str());
  std::fprintf(f, "  \"version\": \"%s\",\n",
               json_escape(build_version()).c_str());
  std::fprintf(f, "  \"seed\": %" PRIu64 ",\n", manifest.seed);
  std::fprintf(f, "  \"configurations\": %zu,\n", manifest.configurations);
  std::fprintf(f, "  \"repeats\": %zu,\n", manifest.repeats);
  std::fprintf(f, "  \"peak_rss_bytes\": %" PRIu64 ",\n",
               manifest.peak_rss_bytes);

  std::fprintf(f, "  \"config\": {");
  for (std::size_t i = 0; i < manifest.config.size(); ++i) {
    std::fprintf(f, "%s\n    \"%s\": \"%s\"", i == 0 ? "" : ",",
                 json_escape(manifest.config[i].first).c_str(),
                 json_escape(manifest.config[i].second).c_str());
  }
  std::fprintf(f, "%s},\n", manifest.config.empty() ? "" : "\n  ");

  std::fprintf(f, "  \"counters\": {");
  if (manifest.counters != nullptr) {
    for (std::size_t c = 0; c < kCounterCount; ++c) {
      std::fprintf(f, "%s\n    \"%s\": %" PRIu64, c == 0 ? "" : ",",
                   counter_name(static_cast<Counter>(c)),
                   manifest.counters->total(static_cast<Counter>(c)));
    }
    std::fprintf(f, "\n  ");
  }
  std::fprintf(f, "},\n");

  std::fprintf(f, "  \"histograms\": {");
  if (manifest.counters != nullptr) {
    for (std::size_t h = 0; h < kHistCount; ++h) {
      const Histogram& hist =
          manifest.counters->histogram(static_cast<Hist>(h));
      std::fprintf(f, "%s\n    \"%s\": {\"count\": %" PRIu64
                      ", \"mean\": %.9g, \"buckets\": [",
                   h == 0 ? "" : ",", hist_name(static_cast<Hist>(h)),
                   hist.count(), hist.mean());
      for (std::size_t b = 0; b < hist.bucket_count(); ++b) {
        std::fprintf(f, "%s%" PRIu64, b == 0 ? "" : ", ", hist.bucket(b));
      }
      std::fprintf(f, "]}");
    }
    std::fprintf(f, "\n  ");
  }
  std::fprintf(f, "},\n");

  std::fprintf(f, "  \"ledger\": {");
  if (manifest.ledger != nullptr && !manifest.ledger->empty()) {
    std::fprintf(f, "\n    \"replications\": %zu,",
                 manifest.ledger->count());
    for (std::size_t l = 0; l < kLedgerFieldCount; ++l) {
      const auto field = static_cast<LedgerField>(l);
      const LedgerStat stat = manifest.ledger->stat(field);
      std::fprintf(f,
                   "%s\n    \"%s\": {\"mean\": %.9g, \"p50\": %.9g, "
                   "\"p95\": %.9g, \"max\": %.9g}",
                   l == 0 ? "" : ",", ledger_field_name(field), stat.mean,
                   stat.p50, stat.p95, stat.max);
    }
    std::fprintf(f, "\n  ");
  }
  std::fprintf(f, "},\n");

  std::fprintf(f, "  \"wall\": {");
  if (manifest.profiler != nullptr) {
    const Profiler& prof = *manifest.profiler;
    std::fprintf(f, "\n    \"runs\": %" PRIu64 ",\n", prof.runs());
    std::fprintf(f, "    \"events\": %" PRIu64 ",\n", prof.events());
    std::fprintf(f, "    \"event_loop_seconds\": %.6f,\n",
                 static_cast<double>(prof.run_wall_ns()) * 1e-9);
    std::fprintf(f, "    \"events_per_second\": %.1f,\n",
                 prof.events_per_second());
    std::fprintf(f, "    \"sweep_wall_seconds\": %.6f,\n",
                 manifest.sweep_wall_seconds);
    std::fprintf(f, "    \"pool_threads\": %zu,\n", manifest.pool_threads);
    // Busy fraction of the pool over the sweep: per-run event-loop time
    // summed, divided by wall * width. > 1 cannot happen; ~0 means the
    // sweep was setup-bound or the pool oversized.
    const double denom = manifest.sweep_wall_seconds *
                         static_cast<double>(manifest.pool_threads);
    std::fprintf(f, "    \"pool_utilization\": %.4f,\n",
                 denom > 0.0
                     ? (static_cast<double>(prof.run_wall_ns()) * 1e-9) / denom
                     : 0.0);
    std::fprintf(f, "    \"categories\": {");
    for (std::size_t c = 0; c < kCategoryCount; ++c) {
      std::fprintf(f,
                   "%s\n      \"%s\": {\"seconds\": %.6f, \"calls\": %" PRIu64
                   "}",
                   c == 0 ? "" : ",", category_name(static_cast<Category>(c)),
                   static_cast<double>(
                       prof.nanos(static_cast<Category>(c))) * 1e-9,
                   prof.calls(static_cast<Category>(c)));
    }
    std::fprintf(f, "\n    }\n  ");
  }
  std::fprintf(f, "}\n");

  std::fprintf(f, "}\n");
  return std::ferror(f) == 0;
}

}  // namespace mstc::obs
