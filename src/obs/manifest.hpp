// Machine-readable run manifest (manifest.json).
//
// A sweep's self-description: what ran (tool, build version, config),
// how it was randomized (seed, repeats), what happened (counter totals,
// histograms) and how fast (wall-clock profile, events/sec, pool
// utilization). Wall-clock fields describe the machine, not the
// simulation — they are excluded from the determinism byte-compare
// surface, like all observability output.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/counters.hpp"
#include "obs/ledger.hpp"
#include "obs/profile.hpp"

namespace mstc::obs {

/// Build identifier baked in by CMake (`git describe --always --dirty`),
/// or "unknown" outside a git checkout.
[[nodiscard]] const char* build_version() noexcept;

struct Manifest {
  std::string tool;     ///< producing binary, e.g. "mstc_sim"
  std::uint64_t seed = 0;
  std::size_t configurations = 0;
  std::size_t repeats = 0;
  /// Free-form config key/values (protocol, mode, speed, ...). Values are
  /// emitted as JSON strings verbatim-escaped.
  std::vector<std::pair<std::string, std::string>> config;
  /// Merged counter totals + histograms across the sweep; optional.
  const CounterRegistry* counters = nullptr;
  /// Merged wall-clock profile across the sweep; optional.
  const Profiler* profiler = nullptr;
  /// Sweep wall time and pool width, for utilization = busy / (wall * n).
  double sweep_wall_seconds = 0.0;
  std::size_t pool_threads = 0;
  /// Process peak RSS at manifest time (util::peak_rss_bytes()); 0 when
  /// the producer did not record it.
  std::uint64_t peak_rss_bytes = 0;
  /// Per-replication resource-ledger statistics across the sweep; optional
  /// (emitted as an empty "ledger" object when null or empty).
  const LedgerSummary* ledger = nullptr;
};

/// Minimal JSON string escaping (quotes, backslashes, control chars).
[[nodiscard]] std::string json_escape(const std::string& raw);

/// Writes the manifest as pretty-printed JSON; false on I/O failure.
[[nodiscard]] bool write_manifest(const std::string& path,
                                  const Manifest& manifest);

}  // namespace mstc::obs
