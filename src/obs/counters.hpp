// Named monotonic counters and sim-time histograms.
//
// The observability layer's accounting substrate: a fixed catalogue of
// protocol-level counters (Hello exchanges, view synchronizations, link
// removals, ...) kept at per-node and global scope, plus a small set of
// sim-time histograms. One CounterRegistry belongs to exactly one
// simulation run, so counting needs no synchronization; parallel sweeps
// give every replication its own registry and merge the slots afterwards
// in deterministic task order (see runner::SweepHooks).
//
// Counting never feeds back into simulation state, so enabling it cannot
// change results — the determinism suite byte-compares runs with
// observation on and off.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace mstc::obs {

/// Catalogue of monotonic event counters (see docs/OBSERVABILITY.md).
enum class Counter : std::size_t {
  kHelloTx,               ///< Hello beacons sent
  kHelloRx,               ///< Hello beacons received (after loss injection)
  kHelloLossDrops,        ///< Hello receptions destroyed by loss injection
  kViewSyncs,             ///< logical-selection refreshes requested
  kTopologyRecomputes,    ///< protocol selections actually applied
  kTopologyRecomputeSkips,  ///< refreshes skipped by the recompute cache
  kLinkRemovals,          ///< logical neighbors dropped by a recompute
  kBufferZoneExpansions,  ///< recomputes that grew the extended range
  kSyncFloodForwards,     ///< reactive synchronization-flood forwards
  kBroadcastForwards,     ///< data-flood / CDS broadcast transmissions
  kFloodDeliveries,       ///< data-flood packets accepted by a receiver
  kMediumDeliveries,      ///< receiver-set entries produced by the medium
  kMediumGridRebuilds,    ///< spatial-index rebuilds in the medium
  kMediumCandidates,      ///< exact distance checks performed by the medium
  kMediumCandidatesAccepted,  ///< medium distance checks that passed
  kCdsMarked,             ///< nodes marked by the Wu-Li process
  kCdsPruned,             ///< marked nodes removed by pruning rules 1/2
  kEpidemicTransfers,     ///< epidemic copies handed to a new carrier
  kEpidemicDeliveries,    ///< epidemic messages reaching their destination
  kSnapshots,             ///< strict-connectivity snapshots taken
  kSnapshotLinksExamined,  ///< exact link checks performed by snapshots
  kSimEventsScheduled,    ///< events pushed into the simulator's queue
  kTraceCacheHits,        ///< scenario trace sets served from the cache
  kTraceCacheMisses,      ///< scenario trace sets generated on demand
  kKernelBarriers,        ///< sharded-kernel batch drains (barrier epochs)
  kKernelCrossShardEvents,  ///< node-local events scheduled across shards
  kKernelQueueResizes,    ///< calendar-queue bucket-width rebuilds
  kCount                  // sentinel
};

inline constexpr std::size_t kCounterCount =
    static_cast<std::size_t>(Counter::kCount);

/// Stable snake_case identifier (the JSON/trace key) of a counter.
[[nodiscard]] const char* counter_name(Counter counter) noexcept;

/// Catalogue of sim-time histograms.
enum class Hist : std::size_t {
  kFloodDeliveryRatio,    ///< per-flood delivery ratio in [0, 1]
  kSnapshotConnectivity,  ///< per-snapshot strict pair connectivity
  kEpidemicDelay,         ///< end-to-end delay of delivered DTN messages (s)
  kKernelBatchSpan,       ///< sim-time span of each sharded-kernel batch (s)
  kKernelBucketScanLen,   ///< calendar buckets inspected per queue search
  kCount                  // sentinel
};

inline constexpr std::size_t kHistCount = static_cast<std::size_t>(Hist::kCount);

[[nodiscard]] const char* hist_name(Hist hist) noexcept;

/// Fixed-bucket histogram: bucket i counts samples < upper_edges[i] (first
/// match wins); one implicit overflow bucket catches the rest.
class Histogram {
 public:
  Histogram() = default;
  explicit Histogram(std::vector<double> upper_edges);

  void add(double value) noexcept;
  void merge(const Histogram& other) noexcept;

  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return counts_.size();
  }
  /// Count of bucket i; i == bucket_count() - 1 is the overflow bucket.
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept {
    return counts_[i];
  }
  /// Upper edge of bucket i (infinity for the overflow bucket).
  [[nodiscard]] double upper_edge(std::size_t i) const noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return total_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return total_ == 0 ? 0.0 : sum_ / static_cast<double>(total_);
  }

 private:
  std::vector<double> edges_;          // ascending upper edges
  std::vector<std::uint64_t> counts_;  // edges_.size() + 1 (overflow last)
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
};

/// Per-run registry of every counter (global + per-node) and histogram.
///
/// Thread model: deliberately lock-free because it is thread-confined, not
/// shared — exactly one replication (one sweep task) owns a registry, and
/// merge() runs after the pool has joined. It therefore owns no mutex and
/// carries no MSTC_GUARDED_BY annotations (the capability-annotation layer
/// in util/annotations.hpp applies to shared state only; see
/// docs/STATIC_ANALYSIS.md). Sharing one registry across replications is a
/// bug the TSan `concurrency` suite would surface as a data race.
class CounterRegistry {
 public:
  CounterRegistry();

  /// Bumps the global total only.
  void add(Counter counter, std::uint64_t delta = 1) noexcept {
    totals_[static_cast<std::size_t>(counter)] += delta;
  }

  /// Bumps the global total and the per-node scope (grown on demand).
  void add_node(Counter counter, std::size_t node, std::uint64_t delta = 1) {
    totals_[static_cast<std::size_t>(counter)] += delta;
    if (node >= per_node_.size()) per_node_.resize(node + 1);
    per_node_[node][static_cast<std::size_t>(counter)] += delta;
  }

  [[nodiscard]] std::uint64_t total(Counter counter) const noexcept {
    return totals_[static_cast<std::size_t>(counter)];
  }
  /// Number of node slots touched so far (highest node id + 1).
  [[nodiscard]] std::size_t node_count() const noexcept {
    return per_node_.size();
  }
  /// Per-node total; 0 for nodes never counted.
  [[nodiscard]] std::uint64_t node_total(Counter counter,
                                         std::size_t node) const noexcept {
    if (node >= per_node_.size()) return 0;
    return per_node_[node][static_cast<std::size_t>(counter)];
  }

  [[nodiscard]] Histogram& histogram(Hist hist) noexcept {
    return histograms_[static_cast<std::size_t>(hist)];
  }
  [[nodiscard]] const Histogram& histogram(Hist hist) const noexcept {
    return histograms_[static_cast<std::size_t>(hist)];
  }

  /// Adds every total, per-node slot and histogram of `other` into this
  /// registry (used to fold per-replication registries into sweep totals).
  void merge(const CounterRegistry& other);

 private:
  std::array<std::uint64_t, kCounterCount> totals_{};
  std::vector<std::array<std::uint64_t, kCounterCount>> per_node_;
  std::array<Histogram, kHistCount> histograms_;
};

}  // namespace mstc::obs
