// Wall-clock profiling: per-handler-category timing and run throughput.
//
// This header (with profile.cpp) is the ONLY place in the library tree that
// may read a wall clock — tools/mstc_lint.py's `wall-clock` rule enforces
// it mechanically. Wall time is reported next to results, never fed into
// them: simulation state depends exclusively on sim-time, so profiling a
// run cannot change its outputs.
//
// Usage: a ScopedTimer at the top of an event handler attributes that
// handler's wall time to a category; a null profiler makes the scope a
// no-op without reading the clock (zero overhead when off).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace mstc::obs {

/// Handler categories timed by the simulation runner. The last four split
/// the event loop's per-event cost for the Amdahl accounting in
/// docs/PERFORMANCE.md: kMediumQuery nests inside the phase that issued
/// the query (like kTraceGen inside kSetup), kProtocolSelect nests inside
/// the refresh that kViewAssembly times, and kDelivery is attributed by
/// the serial kernel's batched fan-out dispatch (one timed scope per
/// broadcast; deferred sharded drains and the unbatched escape hatch stay
/// unattributed, like every deferred handler).
enum class Category : std::size_t {
  kSetup,      ///< scenario construction (traces, controllers, wiring)
  kTraceGen,   ///< mobility trace acquisition (subset of kSetup's span)
  kBeaconing,  ///< Hello send handlers (async / proactive rounds)
  kSyncFlood,  ///< reactive synchronization-flood handlers
  kDataFlood,  ///< data-flood start/forward/deliver/score handlers
  kSnapshot,   ///< strict-connectivity snapshot handlers
  kContact,    ///< DTN contact/beacon handlers (epidemic routing)
  kMediumQuery,     ///< medium receiver/link queries (nested subset)
  kViewAssembly,    ///< selection refresh: expire + view build + select
  kProtocolSelect,  ///< Protocol::select proper (subset of kViewAssembly)
  kDelivery,        ///< Hello delivery fan-out (serial batched dispatch)
  kCount       // sentinel
};

inline constexpr std::size_t kCategoryCount =
    static_cast<std::size_t>(Category::kCount);

[[nodiscard]] const char* category_name(Category category) noexcept;

/// Monotonic wall clock in nanoseconds — the repo's single clock read.
[[nodiscard]] std::uint64_t wall_now_ns() noexcept;

/// Per-category accumulated wall time plus whole-run totals (event count
/// and event-loop wall time, for events/sec).
class Profiler {
 public:
  void add(Category category, std::uint64_t nanos) noexcept {
    auto& slot = slots_[static_cast<std::size_t>(category)];
    slot.nanos += nanos;
    ++slot.calls;
  }

  /// Records the event-loop wall time and the number of simulator events
  /// it processed (accumulates across runs when merged).
  void add_run(std::uint64_t wall_nanos, std::uint64_t events) noexcept {
    run_wall_ns_ += wall_nanos;
    events_ += events;
    ++runs_;
  }

  [[nodiscard]] std::uint64_t nanos(Category category) const noexcept {
    return slots_[static_cast<std::size_t>(category)].nanos;
  }
  [[nodiscard]] std::uint64_t calls(Category category) const noexcept {
    return slots_[static_cast<std::size_t>(category)].calls;
  }
  [[nodiscard]] std::uint64_t run_wall_ns() const noexcept {
    return run_wall_ns_;
  }
  [[nodiscard]] std::uint64_t events() const noexcept { return events_; }
  [[nodiscard]] std::uint64_t runs() const noexcept { return runs_; }

  /// Simulator events processed per wall second (0 when nothing timed).
  [[nodiscard]] double events_per_second() const noexcept {
    if (run_wall_ns_ == 0) return 0.0;
    return static_cast<double>(events_) * 1e9 /
           static_cast<double>(run_wall_ns_);
  }

  void merge(const Profiler& other) noexcept {
    for (std::size_t c = 0; c < kCategoryCount; ++c) {
      slots_[c].nanos += other.slots_[c].nanos;
      slots_[c].calls += other.slots_[c].calls;
    }
    run_wall_ns_ += other.run_wall_ns_;
    events_ += other.events_;
    runs_ += other.runs_;
  }

 private:
  struct Slot {
    std::uint64_t nanos = 0;
    std::uint64_t calls = 0;
  };
  std::array<Slot, kCategoryCount> slots_{};
  std::uint64_t run_wall_ns_ = 0;
  std::uint64_t events_ = 0;
  std::uint64_t runs_ = 0;
};

/// RAII handler-category scope. A null profiler skips the clock entirely,
/// so the disabled path is a single branch.
class ScopedTimer {
 public:
  ScopedTimer(Profiler* profiler, Category category) noexcept
      : profiler_(profiler), category_(category) {
    if (profiler_ != nullptr) start_ = wall_now_ns();
  }
  ~ScopedTimer() {
    if (profiler_ != nullptr) {
      profiler_->add(category_, wall_now_ns() - start_);
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Profiler* profiler_;
  Category category_;
  std::uint64_t start_ = 0;
};

}  // namespace mstc::obs
