// Streaming metrics exposition: periodic JSONL + Prometheus text format.
//
// A MetricsExporter is the campaign-scale view of a sweep in flight: as
// replications complete, the runner feeds their observation slots in and
// the exporter maintains merged counter totals, a merged wall-clock
// profile, and the ledger summary (mean/p50/p95/max per field). Every
// `flush_every` records — and once at destruction — it appends one JSON
// line to the JSONL stream and rewrites the Prometheus text-exposition
// file, so `tail -f` and a Prometheus file-based scrape both work while
// the sweep runs.
//
// Determinism: the exporter only ever reads observation slots of FINISHED
// replications (the sweep runner calls record() after run_scenario
// returns) and writes to its own files — it cannot perturb results, and
// the determinism suite byte-compares exporter-on vs off sweeps.
//
// Thread model: shared across sweep workers, so all aggregate state is
// MSTC_GUARDED_BY an annotated util::Mutex (see docs/STATIC_ANALYSIS.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>

#include "obs/counters.hpp"
#include "obs/ledger.hpp"
#include "obs/profile.hpp"
#include "util/mutex.hpp"

namespace mstc::obs {

struct RunObservation;

class MetricsExporter {
 public:
  struct Options {
    /// JSONL stream path; empty disables the JSONL output.
    std::string jsonl_path;
    /// Prometheus text-exposition path; empty disables it.
    std::string prom_path;
    /// Emit every N record() calls (>= 1); the destructor always emits a
    /// final snapshot so short sweeps still produce output.
    std::size_t flush_every = 1;
    /// Job label stamped on every JSONL line / Prometheus series.
    std::string job = "mstc";
  };

  MetricsExporter() = default;
  ~MetricsExporter();
  MetricsExporter(const MetricsExporter&) = delete;
  MetricsExporter& operator=(const MetricsExporter&) = delete;

  /// Opens the configured outputs (JSONL truncated, Prometheus rewritten
  /// per flush); false when any configured path cannot be opened.
  [[nodiscard]] bool open(const Options& options);
  /// Final flush + close; safe to call repeatedly.
  void close();

  /// Folds one finished replication's observation into the aggregates and
  /// emits a snapshot when the flush cadence says so.
  void record(const RunObservation& observation);

  /// Forces a snapshot of the current aggregates to both outputs.
  void flush();

  /// Replications recorded so far.
  [[nodiscard]] std::size_t completed() const;

 private:
  void emit() MSTC_REQUIRES(mutex_);
  void emit_jsonl() MSTC_REQUIRES(mutex_);
  void emit_prometheus() MSTC_REQUIRES(mutex_);

  mutable util::Mutex mutex_;
  Options options_ MSTC_GUARDED_BY(mutex_);
  std::FILE* jsonl_ MSTC_GUARDED_BY(mutex_) = nullptr;
  CounterRegistry totals_ MSTC_GUARDED_BY(mutex_);
  Profiler profiler_ MSTC_GUARDED_BY(mutex_);
  LedgerSummary ledger_ MSTC_GUARDED_BY(mutex_);
  std::size_t completed_ MSTC_GUARDED_BY(mutex_) = 0;
  std::size_t since_flush_ MSTC_GUARDED_BY(mutex_) = 0;
  std::uint64_t started_ns_ MSTC_GUARDED_BY(mutex_) = 0;
};

}  // namespace mstc::obs
