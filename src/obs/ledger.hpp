// Per-replication resource ledger and sweep-level aggregation.
//
// A RunLedger answers "where did this replication's resources go": wall
// time split by the profiler's phases (setup / trace_gen / event loop /
// snapshot), event and allocation counts, cache hit rates, and the
// process's peak RSS at completion. Ledgers are derived from an existing
// RunObservation after the run finishes — capturing one reads simulation
// outputs and machine facts, never feeds anything back, so ledger-on runs
// stay byte-identical to ledger-off runs (the determinism suite asserts
// it). Like all wall-clock observability data, ledger fields are excluded
// from the determinism byte-compare surface.
//
// LedgerSummary folds per-replication ledgers into sweep-level statistics
// (mean / p50 / p95 / max per field) for manifests and the streaming
// metrics exporter. Aggregation order does not matter for any reported
// statistic (percentiles sort), so sweeps may fold in completion order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace mstc::obs {

struct RunObservation;

/// Optional process-wide allocation counter hook. Binaries that replace
/// global operator new with a counting hook (e.g. bench_kernel) register a
/// reader here so ledgers can report allocation deltas; everything else
/// reports 0. The counter is process-wide, so under parallel sweeps the
/// delta attributes concurrent replications' allocations to each other —
/// useful as a steady-state health signal, not an exact per-run figure.
using AllocationCounterFn = std::uint64_t (*)();
void set_allocation_counter(AllocationCounterFn counter) noexcept;
/// Current process-wide allocation count; 0 when no hook is installed.
[[nodiscard]] std::uint64_t allocation_count() noexcept;

/// Scalar ledger fields, enumerable for export (JSONL / Prometheus) and
/// aggregation. Names are stable snake_case identifiers (see
/// docs/OBSERVABILITY.md); tests pin them.
enum class LedgerField : std::size_t {
  kTotalSeconds,     ///< whole-replication wall time (setup + event loop)
  kSetupSeconds,     ///< scenario construction (kSetup profiler phase)
  kTraceGenSeconds,  ///< mobility trace acquisition (subset of setup)
  kSimSeconds,       ///< event-loop wall time
  kSnapshotSeconds,  ///< snapshot-handler wall time (kSnapshot phase)
  kEvents,           ///< simulator events processed
  kAllocations,      ///< allocation-hook delta over the replication
  kPeakRssBytes,     ///< process peak RSS at completion (monotonic)
  kRecomputeHitRate,   ///< recompute-cache skips / refresh decisions
  kTraceCacheHitRate,  ///< trace-cache hits / acquisitions
  kGridHitRate,        ///< medium candidates accepted / examined
  kKernelBarriers,     ///< sharded-kernel batch drains (0 when serial)
  kKernelCrossShardShare,  ///< cross-shard fraction of node-local events
  kKernelQueueResizes,  ///< calendar-queue rebuilds (0 under the heap)
  // Per-event cost split (docs/PERFORMANCE.md Amdahl accounting). These
  // nest: medium_query inside the issuing phase, protocol_select inside
  // view_assembly, so they do not sum to sim_seconds.
  kMediumQuerySeconds,     ///< medium receiver/link query wall
  kViewAssemblySeconds,    ///< selection refresh wall (expire+view+select)
  kProtocolSelectSeconds,  ///< Protocol::select wall (subset of the above)
  kDeliverySeconds,        ///< serial batched Hello fan-out dispatch wall
  kCount               // sentinel
};

inline constexpr std::size_t kLedgerFieldCount =
    static_cast<std::size_t>(LedgerField::kCount);

/// Stable snake_case identifier (the JSON / Prometheus key) of a field.
[[nodiscard]] const char* ledger_field_name(LedgerField field) noexcept;

/// Resource accounting for one completed replication.
struct RunLedger {
  std::uint64_t total_wall_ns = 0;  ///< task start to task end
  std::uint64_t setup_ns = 0;
  std::uint64_t trace_gen_ns = 0;
  std::uint64_t sim_ns = 0;       ///< event-loop wall (Profiler::run_wall_ns)
  std::uint64_t snapshot_ns = 0;  ///< kSnapshot handler-category wall
  std::uint64_t events = 0;
  std::uint64_t allocations = 0;  ///< 0 unless an allocation hook is set
  std::uint64_t peak_rss_bytes = 0;
  double recompute_hit_rate = 0.0;
  double trace_cache_hit_rate = 0.0;
  double grid_hit_rate = 0.0;
  std::uint64_t kernel_barriers = 0;  ///< 0 under the serial kernel
  double kernel_cross_shard_share = 0.0;  ///< cross-shard / medium deliveries
  std::uint64_t kernel_queue_resizes = 0;  ///< 0 under the heap backend
  std::uint64_t medium_query_ns = 0;     ///< kMediumQuery category wall
  std::uint64_t view_assembly_ns = 0;    ///< kViewAssembly category wall
  std::uint64_t protocol_select_ns = 0;  ///< kProtocolSelect category wall
  std::uint64_t delivery_ns = 0;         ///< kDelivery category wall
  bool captured = false;  ///< capture() ran (distinguishes empty slots)

  /// Derives every field from a finished run's observation. Phase splits
  /// come from the observation's profiler (zero when profiling was off);
  /// hit rates come from its counter registry. `total_wall_ns` is the
  /// caller-measured replication wall time and `peak_rss` the caller's
  /// util::peak_rss_bytes() reading (passed in so this TU reads no clocks
  /// or machine state itself). `allocations_before` is the caller's
  /// allocation_count() snapshot at replication start.
  void capture(const RunObservation& observation, std::uint64_t wall_ns,
               std::uint64_t peak_rss, std::uint64_t allocations_before);

  /// Field value in export units (seconds for the *_ns fields).
  [[nodiscard]] double value(LedgerField field) const noexcept;
};

/// One aggregated statistic of a ledger field across replications.
struct LedgerStat {
  std::size_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

/// Nearest-rank percentile (p in [0, 100]) over unsorted samples; the exact
/// convention LedgerSummary reports: ceil(p/100 * n)-th smallest sample,
/// clamped to the extremes. Empty input yields 0.
[[nodiscard]] double percentile(std::span<const double> samples, double p);

/// Sweep-level ledger aggregation: keeps every sample per field so exact
/// percentiles can be reported at export time. Thread-confined like
/// CounterRegistry — sweeps fold per-replication ledgers in after the pool
/// joins, or behind the MetricsExporter's lock.
class LedgerSummary {
 public:
  /// Folds one replication's ledger in (ignores never-captured ledgers).
  void add(const RunLedger& ledger);
  /// Folds another summary's samples in.
  void merge(const LedgerSummary& other);

  [[nodiscard]] std::size_t count() const noexcept {
    return samples_[0].size();
  }
  [[nodiscard]] bool empty() const noexcept { return samples_[0].empty(); }

  /// mean / p50 / p95 / max of `field` over every added ledger.
  [[nodiscard]] LedgerStat stat(LedgerField field) const;

 private:
  std::vector<double> samples_[kLedgerFieldCount];
};

}  // namespace mstc::obs
