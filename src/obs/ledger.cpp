#include "obs/ledger.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "obs/probe.hpp"

namespace mstc::obs {

namespace {

std::atomic<AllocationCounterFn> g_allocation_counter{nullptr};

double rate(std::uint64_t hits, std::uint64_t total) noexcept {
  if (total == 0) return 0.0;
  return static_cast<double>(hits) / static_cast<double>(total);
}

constexpr double seconds(std::uint64_t nanos) noexcept {
  return static_cast<double>(nanos) * 1e-9;
}

}  // namespace

void set_allocation_counter(AllocationCounterFn counter) noexcept {
  g_allocation_counter.store(counter, std::memory_order_relaxed);
}

std::uint64_t allocation_count() noexcept {
  AllocationCounterFn counter =
      g_allocation_counter.load(std::memory_order_relaxed);
  return counter == nullptr ? 0 : counter();
}

const char* ledger_field_name(LedgerField field) noexcept {
  switch (field) {
    case LedgerField::kTotalSeconds:
      return "total_seconds";
    case LedgerField::kSetupSeconds:
      return "setup_seconds";
    case LedgerField::kTraceGenSeconds:
      return "trace_gen_seconds";
    case LedgerField::kSimSeconds:
      return "sim_seconds";
    case LedgerField::kSnapshotSeconds:
      return "snapshot_seconds";
    case LedgerField::kEvents:
      return "events";
    case LedgerField::kAllocations:
      return "allocations";
    case LedgerField::kPeakRssBytes:
      return "peak_rss_bytes";
    case LedgerField::kRecomputeHitRate:
      return "recompute_hit_rate";
    case LedgerField::kTraceCacheHitRate:
      return "trace_cache_hit_rate";
    case LedgerField::kGridHitRate:
      return "grid_hit_rate";
    case LedgerField::kKernelBarriers:
      return "kernel_barriers";
    case LedgerField::kKernelCrossShardShare:
      return "kernel_cross_shard_share";
    case LedgerField::kKernelQueueResizes:
      return "kernel_queue_resizes";
    case LedgerField::kMediumQuerySeconds:
      return "medium_query_seconds";
    case LedgerField::kViewAssemblySeconds:
      return "view_assembly_seconds";
    case LedgerField::kProtocolSelectSeconds:
      return "protocol_select_seconds";
    case LedgerField::kDeliverySeconds:
      return "delivery_seconds";
    case LedgerField::kCount:
      break;
  }
  return "unknown";
}

void RunLedger::capture(const RunObservation& observation,
                        std::uint64_t wall_ns, std::uint64_t peak_rss,
                        std::uint64_t allocations_before) {
  const Profiler& prof = observation.profiler;
  const CounterRegistry& counters = observation.counters;

  total_wall_ns = wall_ns;
  setup_ns = prof.nanos(Category::kSetup);
  trace_gen_ns = prof.nanos(Category::kTraceGen);
  sim_ns = prof.run_wall_ns();
  snapshot_ns = prof.nanos(Category::kSnapshot);
  events = counters.total(Counter::kSimEventsScheduled);
  const std::uint64_t allocations_now = allocation_count();
  allocations = allocations_now >= allocations_before
                    ? allocations_now - allocations_before
                    : 0;
  peak_rss_bytes = peak_rss;

  const std::uint64_t recompute_skips =
      counters.total(Counter::kTopologyRecomputeSkips);
  recompute_hit_rate =
      rate(recompute_skips,
           counters.total(Counter::kTopologyRecomputes) + recompute_skips);
  const std::uint64_t trace_hits = counters.total(Counter::kTraceCacheHits);
  trace_cache_hit_rate =
      rate(trace_hits, trace_hits + counters.total(Counter::kTraceCacheMisses));
  grid_hit_rate = rate(counters.total(Counter::kMediumCandidatesAccepted),
                       counters.total(Counter::kMediumCandidates));
  kernel_barriers = counters.total(Counter::kKernelBarriers);
  kernel_cross_shard_share =
      rate(counters.total(Counter::kKernelCrossShardEvents),
           counters.total(Counter::kMediumDeliveries));
  kernel_queue_resizes = counters.total(Counter::kKernelQueueResizes);
  medium_query_ns = prof.nanos(Category::kMediumQuery);
  view_assembly_ns = prof.nanos(Category::kViewAssembly);
  protocol_select_ns = prof.nanos(Category::kProtocolSelect);
  delivery_ns = prof.nanos(Category::kDelivery);
  captured = true;
}

double RunLedger::value(LedgerField field) const noexcept {
  switch (field) {
    case LedgerField::kTotalSeconds:
      return seconds(total_wall_ns);
    case LedgerField::kSetupSeconds:
      return seconds(setup_ns);
    case LedgerField::kTraceGenSeconds:
      return seconds(trace_gen_ns);
    case LedgerField::kSimSeconds:
      return seconds(sim_ns);
    case LedgerField::kSnapshotSeconds:
      return seconds(snapshot_ns);
    case LedgerField::kEvents:
      return static_cast<double>(events);
    case LedgerField::kAllocations:
      return static_cast<double>(allocations);
    case LedgerField::kPeakRssBytes:
      return static_cast<double>(peak_rss_bytes);
    case LedgerField::kRecomputeHitRate:
      return recompute_hit_rate;
    case LedgerField::kTraceCacheHitRate:
      return trace_cache_hit_rate;
    case LedgerField::kGridHitRate:
      return grid_hit_rate;
    case LedgerField::kKernelBarriers:
      return static_cast<double>(kernel_barriers);
    case LedgerField::kKernelCrossShardShare:
      return kernel_cross_shard_share;
    case LedgerField::kKernelQueueResizes:
      return static_cast<double>(kernel_queue_resizes);
    case LedgerField::kMediumQuerySeconds:
      return seconds(medium_query_ns);
    case LedgerField::kViewAssemblySeconds:
      return seconds(view_assembly_ns);
    case LedgerField::kProtocolSelectSeconds:
      return seconds(protocol_select_ns);
    case LedgerField::kDeliverySeconds:
      return seconds(delivery_ns);
    case LedgerField::kCount:
      break;
  }
  return 0.0;
}

double percentile(std::span<const double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  // Nearest rank: the ceil(p/100 * n)-th smallest, 1-based, clamped.
  const double raw = std::ceil(p / 100.0 * static_cast<double>(sorted.size()));
  const std::size_t rank = static_cast<std::size_t>(
      std::clamp(raw, 1.0, static_cast<double>(sorted.size())));
  return sorted[rank - 1];
}

void LedgerSummary::add(const RunLedger& ledger) {
  if (!ledger.captured) return;
  for (std::size_t f = 0; f < kLedgerFieldCount; ++f) {
    samples_[f].push_back(ledger.value(static_cast<LedgerField>(f)));
  }
}

void LedgerSummary::merge(const LedgerSummary& other) {
  for (std::size_t f = 0; f < kLedgerFieldCount; ++f) {
    samples_[f].insert(samples_[f].end(), other.samples_[f].begin(),
                       other.samples_[f].end());
  }
}

LedgerStat LedgerSummary::stat(LedgerField field) const {
  const std::vector<double>& samples =
      samples_[static_cast<std::size_t>(field)];
  LedgerStat out;
  out.count = samples.size();
  if (samples.empty()) return out;
  double sum = 0.0;
  double max = samples.front();
  for (double sample : samples) {
    sum += sample;
    max = std::max(max, sample);
  }
  out.mean = sum / static_cast<double>(samples.size());
  out.p50 = percentile(samples, 50.0);
  out.p95 = percentile(samples, 95.0);
  out.max = max;
  return out;
}

}  // namespace mstc::obs
