// Structured event tracing: in-memory sink + JSONL and Chrome exporters.
//
// A trace record is (sim-time, node, event kind, value, aux). Records are
// appended in event-execution order, which the simulator makes
// deterministic ((time, sequence) with FIFO tie-break — see
// sim::Simulator::current_sequence()); the sink's record index is therefore
// a stable global ordering and is exported as "seq".
//
// Exporters:
//   write_jsonl        one JSON object per line — the schema consumed by
//                      scripts/plot_results.py --counters
//   write_chrome_trace Chrome trace_event JSON, loadable directly in
//                      Perfetto / chrome://tracing (each run is a process,
//                      each node a thread, sim-seconds mapped to trace
//                      microseconds)
//
// Trace output is NOT part of the determinism byte-compare surface (see
// docs/OBSERVABILITY.md); the RunStats a traced run produces are.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mstc::obs {

enum class EventKind : std::uint8_t {
  kHelloTx,
  kHelloRx,
  kViewSync,
  kTopologyRecompute,
  kLinkRemoval,
  kBufferZoneExpansion,
  kSyncContact,
  kFloodStart,
  kBroadcastForward,
  kFloodDelivery,
  kFloodScored,
  kSnapshot,
  kEpidemicInject,
  kEpidemicDelivery,
  kCount  // sentinel
};

/// Stable snake_case identifier (the JSONL "kind" / Chrome "name" field).
[[nodiscard]] const char* event_kind_name(EventKind kind) noexcept;

struct TraceEvent {
  double time = 0.0;        ///< sim-time (seconds)
  std::uint32_t node = 0;   ///< acting node id
  EventKind kind = EventKind::kHelloTx;
  double value = 0.0;       ///< kind-specific payload (ratio, range, ...)
  std::uint64_t aux = 0;    ///< kind-specific payload (peer id, version, ...)
};

/// Append-only in-memory sink; one per simulation run (no locking — runs
/// never share a sink; sweeps merge sinks deterministically afterwards).
///
/// Thread model: thread-confined like obs::CounterRegistry — the owning
/// replication is the only writer, and readers (exporters, sweep merges)
/// run after the pool has joined, so the class owns no mutex and carries
/// no capability annotations (see docs/STATIC_ANALYSIS.md).
class MemoryTraceSink {
 public:
  void record(const TraceEvent& event) { events_.push_back(event); }

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  void clear() noexcept { events_.clear(); }

 private:
  std::vector<TraceEvent> events_;
};

/// Writes one JSON object per line:
///   {"run":R,"seq":N,"t":S,"node":N,"kind":"hello_tx","value":V,"aux":A}
/// `runs[i]` is exported with run id i; seq restarts per run. Returns false
/// when the file cannot be written.
[[nodiscard]] bool write_jsonl(const std::string& path,
                               const std::vector<const MemoryTraceSink*>& runs);

/// Writes {"traceEvents":[...]} in Chrome trace_event format: run i becomes
/// pid i (named "replication i"), node n becomes tid n, and every record an
/// instant event at ts = sim-seconds * 1e6. Returns false on I/O failure.
[[nodiscard]] bool write_chrome_trace(
    const std::string& path, const std::vector<const MemoryTraceSink*>& runs);

}  // namespace mstc::obs
