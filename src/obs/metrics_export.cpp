#include "obs/metrics_export.hpp"

#include <cinttypes>
#include <iterator>

#include "obs/manifest.hpp"
#include "obs/probe.hpp"

namespace mstc::obs {

namespace {

/// Ledger statistics every snapshot reports, in emission order.
struct StatColumn {
  const char* label;
  double LedgerStat::* value;
};
constexpr StatColumn kStatColumns[] = {
    {"mean", &LedgerStat::mean},
    {"p50", &LedgerStat::p50},
    {"p95", &LedgerStat::p95},
    {"max", &LedgerStat::max},
};

}  // namespace

MetricsExporter::~MetricsExporter() { close(); }

bool MetricsExporter::open(const Options& options) {
  util::MutexLock lock(mutex_);
  options_ = options;
  if (options_.flush_every == 0) options_.flush_every = 1;
  started_ns_ = wall_now_ns();
  if (jsonl_ != nullptr) {
    std::fclose(jsonl_);
    jsonl_ = nullptr;
  }
  if (!options_.jsonl_path.empty()) {
    jsonl_ = std::fopen(options_.jsonl_path.c_str(), "w");
    if (jsonl_ == nullptr) return false;
  }
  if (!options_.prom_path.empty()) {
    // Probe writability up front so a bad path fails at open, not at the
    // first flush deep inside a sweep.
    std::FILE* prom = std::fopen(options_.prom_path.c_str(), "w");
    if (prom == nullptr) return false;
    std::fclose(prom);
  }
  return true;
}

void MetricsExporter::close() {
  util::MutexLock lock(mutex_);
  if (jsonl_ == nullptr && options_.prom_path.empty()) return;
  if (completed_ > 0) emit();
  if (jsonl_ != nullptr) {
    std::fclose(jsonl_);
    jsonl_ = nullptr;
  }
  options_.prom_path.clear();
}

void MetricsExporter::record(const RunObservation& observation) {
  util::MutexLock lock(mutex_);
  totals_.merge(observation.counters);
  profiler_.merge(observation.profiler);
  ledger_.add(observation.ledger);
  ++completed_;
  if (++since_flush_ >= options_.flush_every) {
    since_flush_ = 0;
    emit();
  }
}

void MetricsExporter::flush() {
  util::MutexLock lock(mutex_);
  since_flush_ = 0;
  emit();
}

std::size_t MetricsExporter::completed() const {
  util::MutexLock lock(mutex_);
  return completed_;
}

void MetricsExporter::emit() {
  emit_jsonl();
  emit_prometheus();
}

void MetricsExporter::emit_jsonl() {
  if (jsonl_ == nullptr) return;
  const double wall_seconds =
      static_cast<double>(wall_now_ns() - started_ns_) * 1e-9;
  std::fprintf(jsonl_,
               "{\"type\":\"metrics\",\"job\":\"%s\",\"completed\":%zu,"
               "\"wall_seconds\":%.6f,\"events_per_second\":%.1f",
               json_escape(options_.job).c_str(), completed_, wall_seconds,
               profiler_.events_per_second());
  std::fprintf(jsonl_, ",\"counters\":{");
  for (std::size_t c = 0; c < kCounterCount; ++c) {
    const auto counter = static_cast<Counter>(c);
    std::fprintf(jsonl_, "%s\"%s\":%" PRIu64, c == 0 ? "" : ",",
                 counter_name(counter), totals_.total(counter));
  }
  std::fprintf(jsonl_, "},\"ledger\":{");
  for (std::size_t f = 0; f < kLedgerFieldCount; ++f) {
    const auto field = static_cast<LedgerField>(f);
    const LedgerStat stat = ledger_.stat(field);
    std::fprintf(jsonl_, "%s\"%s\":{", f == 0 ? "" : ",",
                 ledger_field_name(field));
    for (std::size_t s = 0; s < std::size(kStatColumns); ++s) {
      std::fprintf(jsonl_, "%s\"%s\":%.9g", s == 0 ? "" : ",",
                   kStatColumns[s].label, stat.*kStatColumns[s].value);
    }
    std::fprintf(jsonl_, "}");
  }
  std::fprintf(jsonl_, "}}\n");
  std::fflush(jsonl_);
}

void MetricsExporter::emit_prometheus() {
  if (options_.prom_path.empty()) return;
  // The exposition format is a point-in-time scrape target, so each flush
  // rewrites the whole file rather than appending.
  std::FILE* f = std::fopen(options_.prom_path.c_str(), "w");
  if (f == nullptr) return;
  const std::string job = json_escape(options_.job);
  std::fprintf(f,
               "# TYPE mstc_replications_completed counter\n"
               "mstc_replications_completed{job=\"%s\"} %zu\n",
               job.c_str(), completed_);
  std::fprintf(f,
               "# TYPE mstc_events_per_second gauge\n"
               "mstc_events_per_second{job=\"%s\"} %.1f\n",
               job.c_str(), profiler_.events_per_second());
  for (std::size_t c = 0; c < kCounterCount; ++c) {
    const auto counter = static_cast<Counter>(c);
    std::fprintf(f,
                 "# TYPE mstc_%s_total counter\n"
                 "mstc_%s_total{job=\"%s\"} %" PRIu64 "\n",
                 counter_name(counter), counter_name(counter), job.c_str(),
                 totals_.total(counter));
  }
  for (std::size_t l = 0; l < kLedgerFieldCount; ++l) {
    const auto field = static_cast<LedgerField>(l);
    const LedgerStat stat = ledger_.stat(field);
    std::fprintf(f, "# TYPE mstc_ledger_%s gauge\n", ledger_field_name(field));
    for (const StatColumn& column : kStatColumns) {
      std::fprintf(f, "mstc_ledger_%s{job=\"%s\",stat=\"%s\"} %.9g\n",
                   ledger_field_name(field), job.c_str(), column.label,
                   stat.*column.value);
    }
  }
  std::fclose(f);
}

}  // namespace mstc::obs
