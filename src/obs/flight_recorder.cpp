#include "obs/flight_recorder.hpp"

#include <cinttypes>

#include "obs/counters.hpp"
#include "obs/ledger.hpp"
#include "obs/manifest.hpp"

namespace mstc::obs {

void FlightRecorder::set_capacity(std::size_t capacity) {
  ring_.assign(capacity, TraceEvent{});
  next_ = 0;
  total_recorded_ = 0;
}

void FlightRecorder::snapshot(std::vector<TraceEvent>& out) const {
  const std::size_t held = size();
  out.reserve(out.size() + held);
  // Before the ring wraps, slots [0, held) are in record order; after, the
  // oldest surviving event sits at next_ (the slot about to be overwritten).
  const std::size_t start = total_recorded_ > ring_.size() ? next_ : 0;
  for (std::size_t i = 0; i < held; ++i) {
    std::size_t slot = start + i;
    if (slot >= ring_.size()) slot -= ring_.size();
    out.push_back(ring_[slot]);
  }
}

PostMortemWriter::~PostMortemWriter() { close(); }

bool PostMortemWriter::open(const std::string& path) {
  util::MutexLock lock(mutex_);
  if (file_ != nullptr) std::fclose(file_);
  file_ = std::fopen(path.c_str(), "w");
  incidents_ = 0;
  return file_ != nullptr;
}

void PostMortemWriter::close() {
  util::MutexLock lock(mutex_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

void PostMortemWriter::write(const PostMortem& incident) {
  util::MutexLock lock(mutex_);
  if (file_ == nullptr) return;
  std::fprintf(file_,
               "{\"config_index\":%zu,\"replication\":%zu,\"seed\":%" PRIu64
               ",\"reason\":\"%s\",\"detail\":\"%s\"",
               incident.config_index, incident.replication, incident.seed,
               json_escape(incident.reason).c_str(),
               json_escape(incident.detail).c_str());
  std::fprintf(file_,
               ",\"wall_seconds\":%.6f,\"soft_deadline_seconds\":%.6f",
               incident.wall_seconds, incident.soft_deadline_seconds);
  if (!incident.config_summary.empty()) {
    std::fprintf(file_, ",\"config\":\"%s\"",
                 json_escape(incident.config_summary).c_str());
  }
  if (incident.ledger != nullptr && incident.ledger->captured) {
    std::fprintf(file_, ",\"ledger\":{");
    for (std::size_t f = 0; f < kLedgerFieldCount; ++f) {
      const auto field = static_cast<LedgerField>(f);
      std::fprintf(file_, "%s\"%s\":%.9g", f == 0 ? "" : ",",
                   ledger_field_name(field), incident.ledger->value(field));
    }
    std::fprintf(file_, "}");
  }
  if (incident.counters != nullptr) {
    std::fprintf(file_, ",\"counters\":{");
    for (std::size_t c = 0; c < kCounterCount; ++c) {
      const auto counter = static_cast<Counter>(c);
      std::fprintf(file_, "%s\"%s\":%" PRIu64, c == 0 ? "" : ",",
                   counter_name(counter), incident.counters->total(counter));
    }
    std::fprintf(file_, "}");
  }
  if (incident.flight != nullptr && incident.flight->capacity() > 0) {
    std::vector<TraceEvent> ring;
    incident.flight->snapshot(ring);
    std::fprintf(file_,
                 ",\"flight_total_recorded\":%" PRIu64 ",\"flight\":[",
                 incident.flight->total_recorded());
    for (std::size_t i = 0; i < ring.size(); ++i) {
      const TraceEvent& event = ring[i];
      std::fprintf(file_,
                   "%s{\"t\":%.9g,\"node\":%" PRIu32
                   ",\"kind\":\"%s\",\"value\":%.9g,\"aux\":%" PRIu64 "}",
                   i == 0 ? "" : ",", event.time, event.node,
                   event_kind_name(event.kind), event.value, event.aux);
    }
    std::fprintf(file_, "]");
  }
  std::fprintf(file_, "}\n");
  std::fflush(file_);
  ++incidents_;
}

std::uint64_t PostMortemWriter::incidents() const {
  util::MutexLock lock(mutex_);
  return incidents_;
}

}  // namespace mstc::obs
