// Flight recorder and post-mortem dumps.
//
// A FlightRecorder is a bounded ring of the most recent trace events of one
// replication: O(1) memory however long the run, O(1) record cost, and the
// same TraceEvent records the full trace sink stores — so when a
// replication hangs past its soft deadline or dies in an exception, its
// last moments are reconstructable without having paid for full tracing.
// Like every obs surface, recording never feeds back into simulation
// state; flight-recorder-on runs are byte-identical to off (the
// determinism suite asserts it).
//
// PostMortemWriter appends one JSON object per incident to a JSONL file:
// the replication's identity (config index / replication / seed), the
// reason, its resource ledger, counter totals, and the flight-recorder
// ring in oldest-to-newest order. It is the one obs class that IS shared
// across sweep threads (any worker may hit a deadline), so it locks — a
// util::Mutex with MSTC_GUARDED_BY state, per docs/STATIC_ANALYSIS.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "util/mutex.hpp"

namespace mstc::obs {

struct RunLedger;
class CounterRegistry;

/// Bounded ring of recent trace events; one per replication (thread-
/// confined like MemoryTraceSink, so no locking).
class FlightRecorder {
 public:
  /// Default ring depth when a sweep enables flight recording.
  static constexpr std::size_t kDefaultCapacity = 256;

  /// Sizes the ring (allocating its full capacity up front) and clears any
  /// recorded history. Capacity 0 disables recording.
  void set_capacity(std::size_t capacity);

  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }
  /// Events currently held (== capacity once the ring has wrapped).
  [[nodiscard]] std::size_t size() const noexcept {
    return total_recorded_ < ring_.size()
               ? static_cast<std::size_t>(total_recorded_)
               : ring_.size();
  }
  /// Every record() since set_capacity, including overwritten ones.
  [[nodiscard]] std::uint64_t total_recorded() const noexcept {
    return total_recorded_;
  }

  /// O(1): overwrites the oldest slot once the ring is full.
  void record(const TraceEvent& event) noexcept {
    if (ring_.empty()) return;
    ring_[next_] = event;
    next_ = next_ + 1 == ring_.size() ? 0 : next_ + 1;
    ++total_recorded_;
  }

  /// Appends the held events to `out` in oldest-to-newest order.
  void snapshot(std::vector<TraceEvent>& out) const;

 private:
  std::vector<TraceEvent> ring_;
  std::size_t next_ = 0;  // slot the next record lands in
  std::uint64_t total_recorded_ = 0;
};

/// One diagnosed incident, assembled by the sweep runner. Pointer fields
/// are optional; null sections are omitted from the dump.
struct PostMortem {
  std::size_t config_index = 0;
  std::size_t replication = 0;
  std::uint64_t seed = 0;
  /// Stable incident tag: "soft_deadline_exceeded" or "exception".
  std::string reason;
  /// Free-form detail (exception message, deadline figure, ...).
  std::string detail;
  double wall_seconds = 0.0;
  double soft_deadline_seconds = 0.0;
  /// One-line config description (the runner renders it; obs stays
  /// independent of the config type).
  std::string config_summary;
  const RunLedger* ledger = nullptr;
  const CounterRegistry* counters = nullptr;
  const FlightRecorder* flight = nullptr;
};

/// Shared JSONL sink for post-mortems; thread-safe (see file comment).
class PostMortemWriter {
 public:
  PostMortemWriter() = default;
  ~PostMortemWriter();
  PostMortemWriter(const PostMortemWriter&) = delete;
  PostMortemWriter& operator=(const PostMortemWriter&) = delete;

  /// Opens (truncating) the JSONL output file; false on I/O failure.
  [[nodiscard]] bool open(const std::string& path);
  void close();

  /// Appends one incident as a single JSON line and flushes immediately —
  /// a post-mortem must survive the process dying right after.
  void write(const PostMortem& incident);

  /// Incidents written since open().
  [[nodiscard]] std::uint64_t incidents() const;

 private:
  mutable util::Mutex mutex_;
  std::FILE* file_ MSTC_GUARDED_BY(mutex_) = nullptr;
  std::uint64_t incidents_ MSTC_GUARDED_BY(mutex_) = 0;
};

}  // namespace mstc::obs
