#include "obs/trace.hpp"

#include <cinttypes>
#include <cstdio>
#include <memory>

namespace mstc::obs {

const char* event_kind_name(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kHelloTx:
      return "hello_tx";
    case EventKind::kHelloRx:
      return "hello_rx";
    case EventKind::kViewSync:
      return "view_sync";
    case EventKind::kTopologyRecompute:
      return "topology_recompute";
    case EventKind::kLinkRemoval:
      return "link_removal";
    case EventKind::kBufferZoneExpansion:
      return "buffer_zone_expansion";
    case EventKind::kSyncContact:
      return "sync_contact";
    case EventKind::kFloodStart:
      return "flood_start";
    case EventKind::kBroadcastForward:
      return "broadcast_forward";
    case EventKind::kFloodDelivery:
      return "flood_delivery";
    case EventKind::kFloodScored:
      return "flood_scored";
    case EventKind::kSnapshot:
      return "snapshot";
    case EventKind::kEpidemicInject:
      return "epidemic_inject";
    case EventKind::kEpidemicDelivery:
      return "epidemic_delivery";
    case EventKind::kCount:
      break;
  }
  return "unknown";
}

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

FilePtr open_for_write(const std::string& path) {
  return FilePtr(std::fopen(path.c_str(), "w"));
}

}  // namespace

bool write_jsonl(const std::string& path,
                 const std::vector<const MemoryTraceSink*>& runs) {
  FilePtr file = open_for_write(path);
  if (!file) return false;
  for (std::size_t run = 0; run < runs.size(); ++run) {
    if (runs[run] == nullptr) continue;
    std::uint64_t seq = 0;
    for (const TraceEvent& event : runs[run]->events()) {
      std::fprintf(file.get(),
                   "{\"run\":%zu,\"seq\":%" PRIu64
                   ",\"t\":%.9g,\"node\":%" PRIu32
                   ",\"kind\":\"%s\",\"value\":%.9g,\"aux\":%" PRIu64 "}\n",
                   run, seq++, event.time, event.node,
                   event_kind_name(event.kind), event.value, event.aux);
    }
  }
  return std::ferror(file.get()) == 0;
}

bool write_chrome_trace(const std::string& path,
                        const std::vector<const MemoryTraceSink*>& runs) {
  FilePtr file = open_for_write(path);
  if (!file) return false;
  std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n", file.get());
  bool first = true;
  const auto comma = [&] {
    if (!first) std::fputs(",\n", file.get());
    first = false;
  };
  for (std::size_t run = 0; run < runs.size(); ++run) {
    if (runs[run] == nullptr) continue;
    comma();
    std::fprintf(file.get(),
                 "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%zu,"
                 "\"tid\":0,\"args\":{\"name\":\"replication %zu\"}}",
                 run, run);
    for (const TraceEvent& event : runs[run]->events()) {
      comma();
      // Instant events ("ph":"i", thread scope); sim seconds -> trace us.
      std::fprintf(file.get(),
                   "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":%zu,"
                   "\"tid\":%" PRIu32
                   ",\"ts\":%.3f,\"args\":{\"value\":%.9g,\"aux\":%" PRIu64
                   "}}",
                   event_kind_name(event.kind), run, event.node,
                   event.time * 1e6, event.value, event.aux);
    }
  }
  std::fputs("\n]}\n", file.get());
  return std::ferror(file.get()) == 0;
}

}  // namespace mstc::obs
