#include "obs/counters.hpp"

#include <limits>

namespace mstc::obs {

const char* counter_name(Counter counter) noexcept {
  switch (counter) {
    case Counter::kHelloTx:
      return "hello_tx";
    case Counter::kHelloRx:
      return "hello_rx";
    case Counter::kHelloLossDrops:
      return "hello_loss_drops";
    case Counter::kViewSyncs:
      return "view_syncs";
    case Counter::kTopologyRecomputes:
      return "topology_recomputes";
    case Counter::kTopologyRecomputeSkips:
      return "topology_recompute_skips";
    case Counter::kLinkRemovals:
      return "link_removals";
    case Counter::kBufferZoneExpansions:
      return "buffer_zone_expansions";
    case Counter::kSyncFloodForwards:
      return "sync_flood_forwards";
    case Counter::kBroadcastForwards:
      return "broadcast_forwards";
    case Counter::kFloodDeliveries:
      return "flood_deliveries";
    case Counter::kMediumDeliveries:
      return "medium_deliveries";
    case Counter::kMediumGridRebuilds:
      return "medium_grid_rebuilds";
    case Counter::kMediumCandidates:
      return "medium_candidates_examined";
    case Counter::kMediumCandidatesAccepted:
      return "medium_candidates_accepted";
    case Counter::kCdsMarked:
      return "cds_marked";
    case Counter::kCdsPruned:
      return "cds_pruned";
    case Counter::kEpidemicTransfers:
      return "epidemic_transfers";
    case Counter::kEpidemicDeliveries:
      return "epidemic_deliveries";
    case Counter::kSnapshots:
      return "snapshots";
    case Counter::kSnapshotLinksExamined:
      return "snapshot_links_examined";
    case Counter::kSimEventsScheduled:
      return "sim_events_scheduled";
    case Counter::kTraceCacheHits:
      return "trace_cache_hits";
    case Counter::kTraceCacheMisses:
      return "trace_cache_misses";
    case Counter::kKernelBarriers:
      return "kernel_barriers";
    case Counter::kKernelCrossShardEvents:
      return "kernel_cross_shard_events";
    case Counter::kKernelQueueResizes:
      return "kernel_queue_resizes";
    case Counter::kCount:
      break;
  }
  return "unknown";
}

const char* hist_name(Hist hist) noexcept {
  switch (hist) {
    case Hist::kFloodDeliveryRatio:
      return "flood_delivery_ratio";
    case Hist::kSnapshotConnectivity:
      return "snapshot_connectivity";
    case Hist::kEpidemicDelay:
      return "epidemic_delay_s";
    case Hist::kKernelBatchSpan:
      return "kernel_batch_span_s";
    case Hist::kKernelBucketScanLen:
      return "kernel_bucket_scan_len";
    case Hist::kCount:
      break;
  }
  return "unknown";
}

namespace {

std::vector<double> default_edges(Hist hist) {
  switch (hist) {
    case Hist::kFloodDeliveryRatio:
    case Hist::kSnapshotConnectivity: {
      // 20 uniform buckets over [0, 1]; overflow catches exactly-1.0 and
      // anything pathological above it.
      std::vector<double> edges;
      edges.reserve(20);
      for (int i = 1; i <= 20; ++i) edges.push_back(0.05 * i);
      return edges;
    }
    case Hist::kEpidemicDelay:
      return {0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0};
    case Hist::kKernelBatchSpan:
      // From single-instant batches (propagation-delay scale) up to the
      // lookahead window (a Hello-interval fraction, typically <= 0.25 s).
      return {1e-5, 1e-4, 1e-3, 0.01, 0.05, 0.1, 0.25, 1.0};
    case Hist::kKernelBucketScanLen:
      // 1 = the base bucket held the minimum (the O(1) fast path); the
      // tail diagnoses a bucket width too small for the event spacing.
      return {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 256.0};
    case Hist::kCount:
      break;
  }
  return {};
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_edges)
    : edges_(std::move(upper_edges)), counts_(edges_.size() + 1, 0) {}

void Histogram::add(double value) noexcept {
  if (counts_.empty()) return;  // default-constructed: no buckets
  std::size_t bucket = edges_.size();  // overflow by default
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (value < edges_[i]) {
      bucket = i;
      break;
    }
  }
  ++counts_[bucket];
  ++total_;
  sum_ += value;
}

void Histogram::merge(const Histogram& other) noexcept {
  if (other.total_ == 0) return;
  if (counts_.empty()) {
    *this = other;
    return;
  }
  // Same catalogue entry => same edges; merging mismatched histograms is a
  // programming error we degrade gracefully on by folding into overflow.
  if (counts_.size() == other.counts_.size()) {
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      counts_[i] += other.counts_[i];
    }
  } else {
    counts_.back() += other.total_;
  }
  total_ += other.total_;
  sum_ += other.sum_;
}

double Histogram::upper_edge(std::size_t i) const noexcept {
  if (i < edges_.size()) return edges_[i];
  return std::numeric_limits<double>::infinity();
}

CounterRegistry::CounterRegistry() {
  for (std::size_t h = 0; h < kHistCount; ++h) {
    histograms_[h] = Histogram(default_edges(static_cast<Hist>(h)));
  }
}

void CounterRegistry::merge(const CounterRegistry& other) {
  for (std::size_t c = 0; c < kCounterCount; ++c) {
    totals_[c] += other.totals_[c];
  }
  if (other.per_node_.size() > per_node_.size()) {
    per_node_.resize(other.per_node_.size());
  }
  for (std::size_t node = 0; node < other.per_node_.size(); ++node) {
    for (std::size_t c = 0; c < kCounterCount; ++c) {
      per_node_[node][c] += other.per_node_[node][c];
    }
  }
  for (std::size_t h = 0; h < kHistCount; ++h) {
    histograms_[h].merge(other.histograms_[h]);
  }
}

}  // namespace mstc::obs
