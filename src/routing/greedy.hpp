// Greedy geographic unicast over a controlled topology.
//
// Topology control exists to serve routing ("a normal routing protocol can
// be used" under mobility-tolerant management, Section 2.2). This module
// provides the classic position-based router: each hop forwards to the
// logical neighbor believed closest to the destination. Both failure modes
// the paper studies surface here too — a *stale* belief picks a neighbor
// that is no longer reachable, and a thinned topology can leave greedy
// stuck in a local minimum. Evaluated in bench_ablation_routing.
#pragma once

#include <span>

#include "topology/builder.hpp"

namespace mstc::routing {

struct GreedyOutcome {
  bool delivered = false;
  /// Hops taken (counts successful transmissions; 0 when source == dest).
  std::size_t hops = 0;
  /// True when the route failed because no logical neighbor was believed
  /// closer to the destination (a greedy local minimum).
  bool stuck = false;
  /// True when the route failed because the chosen next hop was no longer
  /// within transmission range (mobility broke the link).
  bool link_broken = false;
};

/// Routes greedily from `source` to `destination`.
///  * `believed`  — the positions nodes act on (possibly stale),
///  * `actual`    — ground-truth positions governing reachability,
///  * `buffer`    — buffer-zone width added to each sender's range,
///  * `ttl`       — hop budget (loop/pathology guard).
/// Forwarding rule: among the sender's logical neighbors, pick the one
/// whose believed position is closest to the destination's believed
/// position; only hops that strictly reduce believed distance are taken.
[[nodiscard]] GreedyOutcome greedy_route(
    const topology::BuiltTopology& topo,
    std::span<const geom::Vec2> believed, std::span<const geom::Vec2> actual,
    topology::NodeId source, topology::NodeId destination,
    double buffer = 0.0, std::size_t ttl = 256);

}  // namespace mstc::routing
