// Mobility-assisted management: epidemic (store-carry-forward) routing.
//
// The paper contrasts two ways of dealing with mobility (Section 2.2):
// mobility-TOLERANT management — this library's core, which keeps the
// effective topology connected at every instant — and mobility-ASSISTED
// management, which tolerates partitions and exploits node movement for
// eventual delivery (epidemic routing [30], one-relay forwarding [11]).
// This module implements the latter so the future-work hybrid experiment
// ("deliver within bounded time even when no snapshot is connected") can
// be run: see bench_ablation_hybrid.
#pragma once

#include <cstdint>
#include <string>

#include "mobility/trace.hpp"
#include "obs/probe.hpp"
#include "util/stats.hpp"

namespace mstc::routing {

struct EpidemicConfig {
  // --- network (deliberately sparse by default: partitions expected) ---
  std::size_t node_count = 40;
  mobility::Area area{900.0, 900.0};
  double range = 100.0;  ///< transmission range (m)

  // --- mobility ---
  std::string mobility_model = "waypoint";  ///< as runner::ScenarioConfig
  double average_speed = 10.0;

  // --- protocol ---
  /// Contact-detection beacon period (s); message exchange is assumed to
  /// complete within a contact (ideal link, as in the paper's MAC model).
  double beacon_interval = 1.0;
  /// Maximum relay hops a copy may take: 0 = direct delivery only (the
  /// source must meet the destination), 1 = two-hop relay (Grossglauser-
  /// Tse [11]), larger = full epidemic [30].
  std::size_t max_relay_hops = 64;
  /// Per-node message buffer capacity; 0 = unlimited. When full, the
  /// oldest foreign copy is evicted (FIFO).
  std::size_t buffer_limit = 0;

  // --- workload ---
  std::size_t message_count = 50;
  double inject_window = 10.0;  ///< messages injected uniformly in [0, w]
  double duration = 120.0;      ///< total simulated time (s)

  std::uint64_t seed = 1;
};

struct EpidemicResult {
  double delivery_ratio = 0.0;       ///< delivered / injected
  util::Summary delay;               ///< end-to-end delay of delivered msgs
  double mean_copies_per_message = 0.0;  ///< replication overhead
  /// Average instantaneous pair connectivity of the raw range graph —
  /// shows how partitioned the substrate actually was.
  double snapshot_connectivity = 0.0;
};

/// Runs one epidemic-routing simulation; deterministic in (config, seed).
[[nodiscard]] EpidemicResult run_epidemic(const EpidemicConfig& config);

/// Same, recording counters (hello_tx beacons, epidemic_transfers,
/// epidemic_deliveries), trace events and the end-to-end delay histogram
/// into `observation` (null behaves exactly like the plain overload; the
/// result is byte-identical either way).
[[nodiscard]] EpidemicResult run_epidemic(const EpidemicConfig& config,
                                          obs::RunObservation* observation);

}  // namespace mstc::routing
