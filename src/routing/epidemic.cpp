#include "routing/epidemic.hpp"

#include <algorithm>
#include <deque>
#include <memory>
#include <stdexcept>
#include <vector>

#include "graph/algorithms.hpp"
#include "mobility/models.hpp"
#include "sim/medium.hpp"
#include "sim/simulator.hpp"
#include "util/prng.hpp"

namespace mstc::routing {

namespace {

using sim::NodeId;

std::unique_ptr<mobility::MobilityModel> make_mobility(
    const EpidemicConfig& cfg) {
  if (cfg.mobility_model == "static") {
    return std::make_unique<mobility::StaticModel>(cfg.area);
  }
  if (cfg.mobility_model == "waypoint") {
    return mobility::make_paper_waypoint(cfg.area, cfg.average_speed);
  }
  if (cfg.mobility_model == "walk") {
    return std::make_unique<mobility::RandomWalk>(cfg.area, cfg.average_speed,
                                                  5.0);
  }
  if (cfg.mobility_model == "gauss") {
    return std::make_unique<mobility::GaussMarkov>(cfg.area,
                                                   cfg.average_speed, 0.8);
  }
  throw std::invalid_argument("unknown mobility model: " + cfg.mobility_model);
}

struct Message {
  NodeId source = 0;
  NodeId destination = 0;
  double injected_at = 0.0;
  double delivered_at = -1.0;  // < 0: still in flight
  std::size_t copies = 1;      // replicas in existence (incl. source's)
};

/// One node's buffer: (message id, hops taken by this copy), FIFO order
/// for eviction of foreign copies.
struct Carried {
  std::size_t message = 0;
  std::size_t hops = 0;
};

class EpidemicSim {
 public:
  EpidemicSim(const EpidemicConfig& cfg, obs::RunObservation* observation)
      : cfg_(cfg),
        probe_(observation),
        traces_(mobility::generate_traces(
            *make_mobility(cfg), cfg.node_count, cfg.duration,
            util::derive_seed(cfg.seed, 0xE81D))),
        medium_(traces_, {}),
        rng_(util::derive_seed(cfg.seed, 0xC0FFEE)),
        buffers_(cfg.node_count) {
    medium_.set_probe(&probe_);
  }

  EpidemicResult run() {
    schedule_beacons();
    inject_messages();
    schedule_snapshots();
    const std::uint64_t wall_start =
        probe_.profiler() != nullptr ? obs::wall_now_ns() : 0;
    simulator_.run_until(cfg_.duration);
    if (obs::Profiler* profiler = probe_.profiler()) {
      profiler->add_run(obs::wall_now_ns() - wall_start,
                        simulator_.processed_events());
    }

    EpidemicResult result;
    std::size_t delivered = 0;
    double copies_total = 0.0;
    for (const Message& m : messages_) {
      copies_total += static_cast<double>(m.copies);
      if (m.delivered_at >= 0.0) {
        ++delivered;
        result.delay.add(m.delivered_at - m.injected_at);
      }
    }
    result.delivery_ratio =
        messages_.empty()
            ? 0.0
            : static_cast<double>(delivered) /
                  static_cast<double>(messages_.size());
    result.mean_copies_per_message =
        messages_.empty() ? 0.0
                          : copies_total /
                                static_cast<double>(messages_.size());
    result.snapshot_connectivity = connectivity_.mean();
    return result;
  }

 private:
  void schedule_beacons() {
    for (NodeId u = 0; u < cfg_.node_count; ++u) {
      const double jittered =
          cfg_.beacon_interval * rng_.uniform(0.9, 1.1);
      beacon_interval_.push_back(jittered);
      simulator_.schedule_at(rng_.uniform(0.0, jittered),
                             [this, u] { beacon(u); });
    }
  }

  void beacon(NodeId u) {
    const obs::ScopedTimer timer(probe_.profiler(), obs::Category::kContact);
    const double now = simulator_.now();
    probe_.count_node(obs::Counter::kHelloTx, u);
    // A beacon == a contact opportunity: every node in range pulls the
    // copies it lacks from u (ideal anti-entropy; the reverse direction
    // happens on the receiver's own beacon).
    medium_.receivers(u, cfg_.range, now, contact_buffer_);
    for (NodeId v : contact_buffer_) transfer(u, v, now);
    if (now + beacon_interval_[u] <= cfg_.duration) {
      simulator_.schedule_in(beacon_interval_[u], [this, u] { beacon(u); });
    }
  }

  void transfer(NodeId from, NodeId to, double now) {
    for (const Carried& carried : buffers_[from]) {
      Message& m = messages_[carried.message];
      if (m.delivered_at >= 0.0) continue;  // already done: stop spreading
      if (carried.hops >= cfg_.max_relay_hops &&
          m.destination != to) {
        continue;  // relay budget exhausted; only the destination may pull
      }
      if (seen_[carried.message][to]) continue;
      seen_[carried.message][to] = 1;
      ++m.copies;
      probe_.count_node(obs::Counter::kEpidemicTransfers, to);
      if (m.destination == to) {
        m.delivered_at = now;
        probe_.count_node(obs::Counter::kEpidemicDeliveries, to);
        probe_.observe(obs::Hist::kEpidemicDelay, now - m.injected_at);
        probe_.trace(obs::EventKind::kEpidemicDelivery, now, to,
                     now - m.injected_at, carried.message);
        continue;
      }
      store(to, {carried.message, carried.hops + 1});
    }
  }

  void store(NodeId node, Carried copy) {
    auto& buffer = buffers_[node];
    if (cfg_.buffer_limit > 0 && buffer.size() >= cfg_.buffer_limit) {
      buffer.pop_front();  // evict the oldest copy
    }
    buffer.push_back(copy);
  }

  void inject_messages() {
    for (std::size_t i = 0; i < cfg_.message_count; ++i) {
      const double at = rng_.uniform(0.0, cfg_.inject_window);
      const NodeId source = rng_.uniform_below(cfg_.node_count);
      NodeId destination = rng_.uniform_below(cfg_.node_count);
      while (destination == source) {
        destination = rng_.uniform_below(cfg_.node_count);
      }
      simulator_.schedule_at(at, [this, source, destination] {
        const std::size_t id = messages_.size();
        messages_.push_back({source, destination, simulator_.now(), -1.0, 1});
        seen_.emplace_back(cfg_.node_count, 0);
        seen_[id][source] = 1;
        store(source, {id, 0});
        probe_.trace(obs::EventKind::kEpidemicInject, simulator_.now(),
                     source, 0.0, destination);
      });
    }
  }

  void schedule_snapshots() {
    for (double t = 0.0; t <= cfg_.duration; t += 5.0) {
      simulator_.schedule_at(t, [this] {
        // Union-find over the enumerated links — same double as building a
        // Graph and BFS-labeling it (the snapshot fast path's contract),
        // without the per-snapshot Graph allocation.
        medium_.links_within(cfg_.range, simulator_.now(), links_buffer_);
        connectivity_.add(graph::pair_connectivity_ratio(
            cfg_.node_count, links_buffer_, components_scratch_));
      });
    }
  }

  EpidemicConfig cfg_;
  obs::Probe probe_;
  std::vector<mobility::Trace> traces_;
  sim::Medium medium_;
  sim::Simulator simulator_;
  util::Xoshiro256 rng_;

  std::vector<double> beacon_interval_;
  std::vector<std::deque<Carried>> buffers_;
  std::vector<Message> messages_;
  std::vector<std::vector<char>> seen_;  // per message: node has a copy
  std::vector<NodeId> contact_buffer_;
  std::vector<std::pair<NodeId, NodeId>> links_buffer_;
  graph::UnionFind components_scratch_;
  util::Summary connectivity_;
};

}  // namespace

EpidemicResult run_epidemic(const EpidemicConfig& config) {
  return run_epidemic(config, nullptr);
}

EpidemicResult run_epidemic(const EpidemicConfig& config,
                            obs::RunObservation* observation) {
  EpidemicSim sim(config, observation);
  return sim.run();
}

}  // namespace mstc::routing
