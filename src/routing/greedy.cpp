#include "routing/greedy.hpp"

#include <cassert>
#include <limits>

namespace mstc::routing {

GreedyOutcome greedy_route(const topology::BuiltTopology& topo,
                           std::span<const geom::Vec2> believed,
                           std::span<const geom::Vec2> actual,
                           topology::NodeId source,
                           topology::NodeId destination, double buffer,
                           std::size_t ttl) {
  assert(believed.size() == actual.size());
  assert(believed.size() == topo.logical_neighbors.size());
  GreedyOutcome outcome;
  if (source == destination) {
    outcome.delivered = true;
    return outcome;
  }
  const geom::Vec2 target = believed[destination];
  topology::NodeId current = source;
  for (std::size_t step = 0; step < ttl; ++step) {
    const double current_metric = geom::distance(believed[current], target);
    // Closest-to-destination logical neighbor (believed positions).
    topology::NodeId next = current;
    double best_metric = current_metric;
    for (topology::NodeId candidate : topo.logical_neighbors[current]) {
      const double metric = geom::distance(believed[candidate], target);
      if (metric < best_metric) {
        best_metric = metric;
        next = candidate;
      }
    }
    if (next == current) {
      outcome.stuck = true;
      return outcome;
    }
    // The transmission succeeds only if the chosen neighbor is actually
    // still within the (buffered) range right now.
    const double actual_distance =
        geom::distance(actual[current], actual[next]);
    if (actual_distance > topo.range[current] + buffer) {
      outcome.link_broken = true;
      return outcome;
    }
    ++outcome.hops;
    if (next == destination) {
      outcome.delivered = true;
      return outcome;
    }
    current = next;
  }
  return outcome;  // TTL exhausted
}

}  // namespace mstc::routing
