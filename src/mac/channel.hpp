// Contention-based broadcast channel (simplified CSMA with collisions).
//
// The paper's evaluation deliberately uses an ideal MAC ("without collision
// and contention") and names a realistic MAC as future work. This module
// provides that MAC: carrier sensing with random backoff at the sender, and
// collision-based loss at the receivers — a frame is decoded only if no
// other audible transmission overlaps it. Plugged into the scenario runner
// via ScenarioConfig::mac = "csma" and evaluated in bench_ablation_mac.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "sim/medium.hpp"
#include "sim/simulator.hpp"
#include "util/prng.hpp"

namespace mstc::mac {

using sim::NodeId;

class ContentionChannel {
 public:
  struct Config {
    double bitrate = 2e6;        ///< bits per second (802.11 basic rate)
    double slot_time = 20e-6;    ///< backoff slot (s)
    int contention_window = 32;  ///< backoff drawn from [0, cw) slots
    int max_attempts = 5;        ///< carrier-sense retries before dropping
    /// Interference reach relative to the transmission range (nodes that
    /// cannot decode a frame can still destroy a weaker one).
    double interference_factor = 1.0;
  };

  ContentionChannel(sim::Simulator& simulator, const sim::Medium& medium,
                    Config config, std::uint64_t seed);

  /// Attempts a CSMA broadcast of `bits` from `sender` with the given
  /// transmission range. `on_receive(v)` fires at frame end for every
  /// receiver that decoded it; `on_drop()` (optional) fires if carrier
  /// sensing gave up. Delivery/drop callbacks run via simulator events.
  void transmit(NodeId sender, double range, std::size_t bits,
                std::function<void(NodeId)> on_receive,
                std::function<void()> on_drop = {});

  // --- statistics -----------------------------------------------------
  [[nodiscard]] std::uint64_t frames_sent() const noexcept {
    return frames_sent_;
  }
  [[nodiscard]] std::uint64_t frames_dropped() const noexcept {
    return frames_dropped_;
  }
  [[nodiscard]] std::uint64_t receptions() const noexcept {
    return receptions_;
  }
  [[nodiscard]] std::uint64_t collisions() const noexcept {
    return collisions_;
  }

 private:
  struct Transmission {
    NodeId sender;
    geom::Vec2 origin;     ///< sender position at start (frames are short)
    double range;          ///< decode range
    double interference_range;
    double start;
    double end;
  };

  void attempt(NodeId sender, double range, std::size_t bits, int tries_left,
               std::function<void(NodeId)> on_receive,
               std::function<void()> on_drop);
  [[nodiscard]] bool channel_busy(geom::Vec2 where, double t) const;
  void prune(double now);

  sim::Simulator& simulator_;
  const sim::Medium& medium_;
  Config config_;
  util::Xoshiro256 rng_;
  std::deque<Transmission> active_;  // pruned lazily; sorted by start
  std::vector<NodeId> receiver_buffer_;  // frame-end scoring scratch
  std::uint64_t frames_sent_ = 0;
  std::uint64_t frames_dropped_ = 0;
  std::uint64_t receptions_ = 0;
  std::uint64_t collisions_ = 0;
};

}  // namespace mstc::mac
