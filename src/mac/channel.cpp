#include "mac/channel.hpp"

#include <cassert>

namespace mstc::mac {

ContentionChannel::ContentionChannel(sim::Simulator& simulator,
                                     const sim::Medium& medium, Config config,
                                     std::uint64_t seed)
    : simulator_(simulator), medium_(medium), config_(config), rng_(seed) {
  assert(config_.bitrate > 0.0);
  assert(config_.max_attempts >= 1);
  assert(config_.interference_factor >= 1.0);
}

void ContentionChannel::transmit(NodeId sender, double range,
                                 std::size_t bits,
                                 std::function<void(NodeId)> on_receive,
                                 std::function<void()> on_drop) {
  attempt(sender, range, bits, config_.max_attempts, std::move(on_receive),
          std::move(on_drop));
}

bool ContentionChannel::channel_busy(geom::Vec2 where, double t) const {
  for (const Transmission& tx : active_) {
    if (tx.end <= t) continue;
    if (tx.start > t) continue;
    if (geom::distance(where, tx.origin) <= tx.interference_range) {
      return true;
    }
  }
  return false;
}

void ContentionChannel::prune(double now) {
  // Retain records briefly past their end: frame-end scoring events need
  // to see every transmission that overlapped theirs, including ones that
  // finished earlier.
  constexpr double kRetention = 0.05;
  while (!active_.empty() && active_.front().end + kRetention <= now) {
    active_.pop_front();
  }
}

void ContentionChannel::attempt(NodeId sender, double range, std::size_t bits,
                                int tries_left,
                                std::function<void(NodeId)> on_receive,
                                std::function<void()> on_drop) {
  const double now = simulator_.now();
  prune(now);
  const geom::Vec2 origin = medium_.position(sender, now);

  if (channel_busy(origin, now)) {
    if (tries_left <= 1) {
      ++frames_dropped_;
      if (on_drop) simulator_.schedule_in(0.0, std::move(on_drop));
      return;
    }
    // Carrier busy: back off a random number of slots and retry.
    const double backoff =
        config_.slot_time *
        static_cast<double>(1 + rng_.uniform_below(static_cast<std::uint64_t>(
                                    config_.contention_window)));
    auto retry = [this, sender, range, bits, tries_left,
                  receive = std::move(on_receive),
                  drop = std::move(on_drop)]() mutable {
      attempt(sender, range, bits, tries_left - 1, std::move(receive),
              std::move(drop));
    };
    // The largest closure scheduled anywhere in src/ — it sizes
    // Handler::kInlineSize. Growing the capture past the buffer must be a
    // conscious decision, not a silent heap fallback on the MAC hot path.
    static_assert(sim::Handler::fits_inline<decltype(retry)>,
                  "backoff-retry closure no longer fits Handler's inline "
                  "buffer; grow sim::Handler::kInlineSize");
    simulator_.schedule_in(backoff, std::move(retry));
    return;
  }

  ++frames_sent_;
  const double duration = static_cast<double>(bits) / config_.bitrate;
  const Transmission tx{sender,
                        origin,
                        range,
                        range * config_.interference_factor,
                        now,
                        now + duration};
  active_.push_back(tx);

  // Score receptions at frame end: v decodes iff it is in decode range and
  // no OTHER transmission audible at v overlaps [start, end].
  auto score = [this, tx, receive = std::move(on_receive)] {
    // Scoring runs inside simulator events (single-threaded), so the
    // receiver set can live in a reused member buffer.
    medium_.receivers(tx.sender, tx.range, tx.start, receiver_buffer_);
    for (NodeId v : receiver_buffer_) {
      const geom::Vec2 where = medium_.position(v, tx.start);
      bool collided = false;
      for (const Transmission& other : active_) {
        if (other.sender == tx.sender && other.start == tx.start) continue;
        if (other.end <= tx.start || other.start >= tx.end) continue;
        if (geom::distance(where, other.origin) <= other.interference_range) {
          collided = true;
          break;
        }
      }
      if (collided) {
        ++collisions_;
      } else {
        ++receptions_;
        receive(v);
      }
    }
  };
  static_assert(sim::Handler::fits_inline<decltype(score)>,
                "frame-end scoring closure no longer fits Handler's inline "
                "buffer; grow sim::Handler::kInlineSize");
  simulator_.schedule_in(duration, std::move(score));
}

}  // namespace mstc::mac
