// Geometric predicates used by topology-control protocols.
//
// These encode the proximity-graph membership tests: the RNG "lune", the
// Gabriel disk, and the cone coverage used by Yao/CBTC protocols.
#pragma once

#include "geom/vec2.hpp"

namespace mstc::geom {

/// True when `w` lies strictly inside the RNG lune of (u, v): the
/// intersection of the open disks of radius |uv| centered at u and at v.
/// An edge (u, v) belongs to the relative neighborhood graph iff no witness
/// node lies in its lune (Toussaint 1980).
[[nodiscard]] inline bool in_rng_lune(Vec2 u, Vec2 v, Vec2 w) noexcept {
  const double uv = distance_sq(u, v);
  return distance_sq(u, w) < uv && distance_sq(v, w) < uv;
}

/// True when `w` lies strictly inside the Gabriel disk of (u, v): the open
/// disk with diameter uv. The Gabriel graph is the subgraph of edges with
/// empty disks; it is a supergraph of the RNG.
[[nodiscard]] inline bool in_gabriel_disk(Vec2 u, Vec2 v, Vec2 w) noexcept {
  const Vec2 center = midpoint(u, v);
  return distance_sq(center, w) < 0.25 * distance_sq(u, v);
}

/// Smallest absolute angular difference between two angles, in [0, pi].
[[nodiscard]] double angle_difference(double a, double b) noexcept;

/// Angle of the cone at apex `apex` spanned from direction to `a` to
/// direction to `b`, in [0, pi].
[[nodiscard]] double cone_angle(Vec2 apex, Vec2 a, Vec2 b) noexcept;

/// Yao-graph sector index of point `p` around `center` when the plane is
/// divided into `sectors` equal cones starting at angle 0.
[[nodiscard]] int yao_sector(Vec2 center, Vec2 p, int sectors) noexcept;

/// True if the directions from `apex` to the given neighbor points leave no
/// angular gap larger than `max_gap` radians (the CBTC termination test:
/// every cone of angle max_gap contains a neighbor). With zero or one
/// neighbor the gap is the full circle.
[[nodiscard]] bool cone_coverage_complete(Vec2 apex,
                                          const Vec2* neighbors,
                                          int count,
                                          double max_gap) noexcept;

/// Largest angular gap (radians, in [0, 2*pi]) between consecutive neighbor
/// directions around `apex`; 2*pi when fewer than one neighbor.
[[nodiscard]] double max_angular_gap(Vec2 apex, const Vec2* neighbors,
                                     int count) noexcept;

}  // namespace mstc::geom
