#include "geom/filter.hpp"

#if !defined(MSTC_FILTER_FORCE_SCALAR) && defined(__AVX2__)
#define MSTC_FILTER_AVX2 1
#include <immintrin.h>
#elif !defined(MSTC_FILTER_FORCE_SCALAR) && defined(__SSE2__)
#define MSTC_FILTER_SSE2 1
#include <emmintrin.h>
#endif

namespace mstc::geom {

const char* filter_backend_name() noexcept {
#if defined(MSTC_FILTER_AVX2)
  return "avx2";
#elif defined(MSTC_FILTER_SSE2)
  return "sse2";
#else
  return "scalar";
#endif
}

// mstc:hot — the portable reference half of the filter differential; also
// the block remainder of the wide kernels below
void filter_within_range_scalar(const double* xs, const double* ys,
                                const std::size_t* ids, std::size_t count,
                                Vec2 origin, double range_sq, std::size_t skip,
                                std::vector<std::size_t>& out) {
  for (std::size_t i = 0; i < count; ++i) {
    if (ids[i] == skip) continue;
    if (distance_sq(origin, Vec2{xs[i], ys[i]}) <= range_sq) {
      out.push_back(ids[i]);
    }
  }
}

std::size_t count_within_range_scalar(const double* xs, const double* ys,
                                      std::size_t count, Vec2 origin,
                                      double range_sq) {
  std::size_t accepted = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (distance_sq(origin, Vec2{xs[i], ys[i]}) <= range_sq) ++accepted;
  }
  return accepted;
}

#if defined(MSTC_FILTER_AVX2)

// mstc:hot — one call per medium query / snapshot node; 4-wide blocks
void filter_within_range(const double* xs, const double* ys,
                         const std::size_t* ids, std::size_t count,
                         Vec2 origin, double range_sq, std::size_t skip,
                         std::vector<std::size_t>& out) {
  const __m256d ox = _mm256_set1_pd(origin.x);
  const __m256d oy = _mm256_set1_pd(origin.y);
  const __m256d r2 = _mm256_set1_pd(range_sq);
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256d dx = _mm256_sub_pd(ox, _mm256_loadu_pd(xs + i));
    const __m256d dy = _mm256_sub_pd(oy, _mm256_loadu_pd(ys + i));
    // Explicit mul then add — never FMA-contracted — so each lane is the
    // scalar predicate's exact sub, mul, mul, add, <= sequence. _CMP_LE_OQ
    // orders like scalar <= (NaN compares false).
    const __m256d d2 =
        _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
    unsigned mask = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_cmp_pd(d2, r2, _CMP_LE_OQ)));
    while (mask != 0) {
      const auto lane = static_cast<unsigned>(__builtin_ctz(mask));
      mask &= mask - 1;
      const std::size_t id = ids[i + lane];
      if (id != skip) out.push_back(id);
    }
  }
  filter_within_range_scalar(xs + i, ys + i, ids + i, count - i, origin,
                             range_sq, skip, out);
}

// mstc:hot — the snapshot physical-degree count; 4-wide blocks
std::size_t count_within_range(const double* xs, const double* ys,
                               std::size_t count, Vec2 origin,
                               double range_sq) {
  const __m256d ox = _mm256_set1_pd(origin.x);
  const __m256d oy = _mm256_set1_pd(origin.y);
  const __m256d r2 = _mm256_set1_pd(range_sq);
  std::size_t accepted = 0;
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256d dx = _mm256_sub_pd(ox, _mm256_loadu_pd(xs + i));
    const __m256d dy = _mm256_sub_pd(oy, _mm256_loadu_pd(ys + i));
    const __m256d d2 =
        _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
    const auto mask = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_cmp_pd(d2, r2, _CMP_LE_OQ)));
    accepted += static_cast<std::size_t>(__builtin_popcount(mask));
  }
  return accepted +
         count_within_range_scalar(xs + i, ys + i, count - i, origin, range_sq);
}

#elif defined(MSTC_FILTER_SSE2)

// mstc:hot — one call per medium query / snapshot node; 2-wide blocks
void filter_within_range(const double* xs, const double* ys,
                         const std::size_t* ids, std::size_t count,
                         Vec2 origin, double range_sq, std::size_t skip,
                         std::vector<std::size_t>& out) {
  const __m128d ox = _mm_set1_pd(origin.x);
  const __m128d oy = _mm_set1_pd(origin.y);
  const __m128d r2 = _mm_set1_pd(range_sq);
  std::size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const __m128d dx = _mm_sub_pd(ox, _mm_loadu_pd(xs + i));
    const __m128d dy = _mm_sub_pd(oy, _mm_loadu_pd(ys + i));
    // Explicit mul then add — never FMA-contracted — so each lane is the
    // scalar predicate's exact sub, mul, mul, add, <= sequence (cmple is
    // ordered: NaN compares false, like scalar <=).
    const __m128d d2 = _mm_add_pd(_mm_mul_pd(dx, dx), _mm_mul_pd(dy, dy));
    unsigned mask = static_cast<unsigned>(_mm_movemask_pd(_mm_cmple_pd(d2, r2)));
    while (mask != 0) {
      const auto lane = static_cast<unsigned>(__builtin_ctz(mask));
      mask &= mask - 1;
      const std::size_t id = ids[i + lane];
      if (id != skip) out.push_back(id);
    }
  }
  filter_within_range_scalar(xs + i, ys + i, ids + i, count - i, origin,
                             range_sq, skip, out);
}

// mstc:hot — the snapshot physical-degree count; 2-wide blocks
std::size_t count_within_range(const double* xs, const double* ys,
                               std::size_t count, Vec2 origin,
                               double range_sq) {
  const __m128d ox = _mm_set1_pd(origin.x);
  const __m128d oy = _mm_set1_pd(origin.y);
  const __m128d r2 = _mm_set1_pd(range_sq);
  std::size_t accepted = 0;
  std::size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const __m128d dx = _mm_sub_pd(ox, _mm_loadu_pd(xs + i));
    const __m128d dy = _mm_sub_pd(oy, _mm_loadu_pd(ys + i));
    const __m128d d2 = _mm_add_pd(_mm_mul_pd(dx, dx), _mm_mul_pd(dy, dy));
    const auto mask =
        static_cast<unsigned>(_mm_movemask_pd(_mm_cmple_pd(d2, r2)));
    accepted += static_cast<std::size_t>(__builtin_popcount(mask));
  }
  return accepted +
         count_within_range_scalar(xs + i, ys + i, count - i, origin, range_sq);
}

#else  // portable build (MSTC_FILTER_SCALAR or no SSE2)

void filter_within_range(const double* xs, const double* ys,
                         const std::size_t* ids, std::size_t count,
                         Vec2 origin, double range_sq, std::size_t skip,
                         std::vector<std::size_t>& out) {
  filter_within_range_scalar(xs, ys, ids, count, origin, range_sq, skip, out);
}

std::size_t count_within_range(const double* xs, const double* ys,
                               std::size_t count, Vec2 origin,
                               double range_sq) {
  return count_within_range_scalar(xs, ys, count, origin, range_sq);
}

#endif

}  // namespace mstc::geom
