// 2-D vector type used for node positions and velocities.
#pragma once

#include <cmath>

namespace mstc::geom {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2& operator+=(Vec2 other) noexcept {
    x += other.x;
    y += other.y;
    return *this;
  }
  constexpr Vec2& operator-=(Vec2 other) noexcept {
    x -= other.x;
    y -= other.y;
    return *this;
  }
  constexpr Vec2& operator*=(double scale) noexcept {
    x *= scale;
    y *= scale;
    return *this;
  }

  friend constexpr Vec2 operator+(Vec2 a, Vec2 b) noexcept { return a += b; }
  friend constexpr Vec2 operator-(Vec2 a, Vec2 b) noexcept { return a -= b; }
  friend constexpr Vec2 operator*(Vec2 v, double s) noexcept { return v *= s; }
  friend constexpr Vec2 operator*(double s, Vec2 v) noexcept { return v *= s; }
  friend constexpr bool operator==(Vec2 a, Vec2 b) noexcept {
    return a.x == b.x && a.y == b.y;
  }

  [[nodiscard]] constexpr double dot(Vec2 other) const noexcept {
    return x * other.x + y * other.y;
  }
  /// z-component of the 3-D cross product; sign gives orientation.
  [[nodiscard]] constexpr double cross(Vec2 other) const noexcept {
    return x * other.y - y * other.x;
  }
  [[nodiscard]] constexpr double norm_sq() const noexcept { return dot(*this); }
  [[nodiscard]] double norm() const noexcept { return std::hypot(x, y); }

  /// Unit vector in the same direction; zero vector maps to (0, 0).
  [[nodiscard]] Vec2 normalized() const noexcept {
    const double n = norm();
    return n > 0.0 ? Vec2{x / n, y / n} : Vec2{};
  }
};

[[nodiscard]] inline double distance(Vec2 a, Vec2 b) noexcept {
  return (a - b).norm();
}

[[nodiscard]] constexpr double distance_sq(Vec2 a, Vec2 b) noexcept {
  return (a - b).norm_sq();
}

/// Midpoint of segment ab.
[[nodiscard]] constexpr Vec2 midpoint(Vec2 a, Vec2 b) noexcept {
  return {(a.x + b.x) * 0.5, (a.y + b.y) * 0.5};
}

/// Linear interpolation: a at t = 0, b at t = 1.
[[nodiscard]] constexpr Vec2 lerp(Vec2 a, Vec2 b, double t) noexcept {
  return a + (b - a) * t;
}

/// Polar angle of v in (-pi, pi]; angle of the zero vector is 0.
[[nodiscard]] inline double polar_angle(Vec2 v) noexcept {
  return (v.x == 0.0 && v.y == 0.0) ? 0.0 : std::atan2(v.y, v.x);
}

}  // namespace mstc::geom
