// Batched SoA range filtering for conservative-radius candidate sets.
//
// The medium's receiver queries and the snapshot sweep both end in the
// same inner loop: re-check every grid candidate against the *exact*
// range with scalar distance_sq. At paper density that loop touches ~2x
// the accepted set per broadcast; this kernel evaluates the predicate
//
//     (origin.x - xs[i])^2 + (origin.y - ys[i])^2 <= range_sq
//
// in explicit 4-wide (AVX2) or 2-wide (SSE2) blocks over caller-filled
// SoA coordinate arrays, emitting accepted ids in the input (ascending)
// order.
//
// Bit-identity contract: every lane performs the IEEE-754 double sequence
// sub, mul, mul, add, compare — operation-for-operation the scalar
// geom::distance_sq(origin, p) <= range_sq predicate — and the block
// remainder falls through to literally that scalar expression. The wide
// path uses explicit mul+add intrinsics, never FMA contraction, so a
// build with -mavx2 (and without -mfma) accepts exactly the same
// candidates as the portable loop; Determinism.ScalarFilterMatchesWide
// and tests/geom/filter_test.cpp byte-compare the two.
//
// Backend selection is at configure time: AVX2 when the TU is compiled
// with -mavx2, else SSE2 (x86-64 baseline), else the portable scalar
// loop; -DMSTC_FILTER_SCALAR=ON forces the scalar build. The *_scalar
// entry points are always the portable loop, so one binary carries both
// sides of the differential.
#pragma once

#include <cstddef>
#include <vector>

#include "geom/vec2.hpp"

namespace mstc::geom {

/// `skip` value meaning "exclude no id" (no candidate carries it).
inline constexpr std::size_t kFilterNoSkip = static_cast<std::size_t>(-1);

/// Name of the compiled-in wide backend: "avx2", "sse2", or "scalar".
[[nodiscard]] const char* filter_backend_name() noexcept;

/// Portable reference: appends ids[i] (in input order) for every i with
/// distance_sq(origin, {xs[i], ys[i]}) <= range_sq, except ids[i] == skip.
void filter_within_range_scalar(const double* xs, const double* ys,
                                const std::size_t* ids, std::size_t count,
                                Vec2 origin, double range_sq, std::size_t skip,
                                std::vector<std::size_t>& out);

/// Wide kernel: same contract as the scalar reference, byte-identical
/// output (see file header for the arithmetic argument).
void filter_within_range(const double* xs, const double* ys,
                         const std::size_t* ids, std::size_t count,
                         Vec2 origin, double range_sq, std::size_t skip,
                         std::vector<std::size_t>& out);

/// Portable reference: number of i with
/// distance_sq(origin, {xs[i], ys[i]}) <= range_sq (no id emission, no
/// skip — callers subtract self-matches themselves).
[[nodiscard]] std::size_t count_within_range_scalar(const double* xs,
                                                    const double* ys,
                                                    std::size_t count,
                                                    Vec2 origin,
                                                    double range_sq);

/// Wide kernel: same count as the scalar reference.
[[nodiscard]] std::size_t count_within_range(const double* xs,
                                             const double* ys,
                                             std::size_t count, Vec2 origin,
                                             double range_sq);

}  // namespace mstc::geom
