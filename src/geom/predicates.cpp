#include "geom/predicates.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

namespace mstc::geom {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;
}

double angle_difference(double a, double b) noexcept {
  double diff = std::fmod(std::abs(a - b), kTwoPi);
  if (diff > std::numbers::pi) diff = kTwoPi - diff;
  return diff;
}

double cone_angle(Vec2 apex, Vec2 a, Vec2 b) noexcept {
  return angle_difference(polar_angle(a - apex), polar_angle(b - apex));
}

int yao_sector(Vec2 center, Vec2 p, int sectors) noexcept {
  double angle = polar_angle(p - center);
  if (angle < 0.0) angle += kTwoPi;
  const double width = kTwoPi / sectors;
  int sector = static_cast<int>(angle / width);
  return std::min(sector, sectors - 1);  // guard angle == 2*pi edge case
}

double max_angular_gap(Vec2 apex, const Vec2* neighbors, int count) noexcept {
  if (count < 1) return kTwoPi;
  std::vector<double> angles;
  angles.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    angles.push_back(polar_angle(neighbors[i] - apex));
  }
  std::sort(angles.begin(), angles.end());
  double max_gap = angles.front() + kTwoPi - angles.back();
  for (std::size_t i = 1; i < angles.size(); ++i) {
    max_gap = std::max(max_gap, angles[i] - angles[i - 1]);
  }
  return max_gap;
}

bool cone_coverage_complete(Vec2 apex, const Vec2* neighbors, int count,
                            double max_gap) noexcept {
  return max_angular_gap(apex, neighbors, count) <= max_gap;
}

}  // namespace mstc::geom
