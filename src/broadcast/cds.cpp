#include "broadcast/cds.hpp"

#include <algorithm>

namespace mstc::broadcast {

namespace {

using graph::NodeId;

/// Sorted neighbor id list (closed when include_self).
std::vector<NodeId> neighbor_ids(const graph::Graph& g, NodeId u,
                                 bool include_self) {
  std::vector<NodeId> ids;
  ids.reserve(g.degree(u) + 1);
  for (const auto& e : g.neighbors(u)) ids.push_back(e.to);
  if (include_self) ids.push_back(u);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

bool subset(const std::vector<NodeId>& inner,
            const std::vector<NodeId>& outer) {
  return std::includes(outer.begin(), outer.end(), inner.begin(),
                       inner.end());
}

std::vector<NodeId> set_union(const std::vector<NodeId>& a,
                              const std::vector<NodeId>& b) {
  std::vector<NodeId> result;
  result.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(result));
  return result;
}

}  // namespace

std::vector<bool> wu_li_marking(const graph::Graph& g,
                                const obs::Probe* probe) {
  const std::size_t n = g.node_count();
  std::vector<bool> marked(n, false);
  for (NodeId u = 0; u < n; ++u) {
    const auto neighbors = g.neighbors(u);
    for (std::size_t i = 0; i < neighbors.size() && !marked[u]; ++i) {
      for (std::size_t j = i + 1; j < neighbors.size(); ++j) {
        if (!g.has_edge(neighbors[i].to, neighbors[j].to)) {
          marked[u] = true;
          break;
        }
      }
    }
    if (marked[u] && probe != nullptr) {
      probe->count_node(obs::Counter::kCdsMarked, u);
    }
  }
  return marked;
}

std::vector<bool> prune(const graph::Graph& g, std::vector<bool> marked,
                        const obs::Probe* probe) {
  const std::size_t n = g.node_count();
  std::vector<std::vector<NodeId>> open(n), closed(n);
  for (NodeId u = 0; u < n; ++u) {
    open[u] = neighbor_ids(g, u, /*include_self=*/false);
    closed[u] = neighbor_ids(g, u, /*include_self=*/true);
  }
  // Rule 1: coverage by a single higher-id marked neighbor.
  for (NodeId u = 0; u < n; ++u) {
    if (!marked[u]) continue;
    for (const auto& e : g.neighbors(u)) {
      const NodeId v = e.to;
      if (marked[v] && v > u && subset(closed[u], closed[v])) {
        marked[u] = false;
        if (probe != nullptr) probe->count_node(obs::Counter::kCdsPruned, u);
        break;
      }
    }
  }
  // Rule 2: joint coverage by two adjacent higher-id marked neighbors.
  for (NodeId u = 0; u < n; ++u) {
    if (!marked[u]) continue;
    const auto& candidates = g.neighbors(u);
    bool pruned = false;
    for (std::size_t i = 0; i < candidates.size() && !pruned; ++i) {
      const NodeId v = candidates[i].to;
      if (!marked[v] || v <= u) continue;
      for (std::size_t j = 0; j < candidates.size(); ++j) {
        const NodeId w = candidates[j].to;
        if (w == v || !marked[w] || w <= u || !g.has_edge(v, w)) continue;
        if (subset(open[u], set_union(closed[v], closed[w]))) {
          marked[u] = false;
          if (probe != nullptr) {
            probe->count_node(obs::Counter::kCdsPruned, u);
          }
          pruned = true;
          break;
        }
      }
    }
  }
  return marked;
}

std::vector<bool> connected_dominating_set(const graph::Graph& g,
                                           const obs::Probe* probe) {
  return prune(g, wu_li_marking(g, probe), probe);
}

bool is_connected_dominating_set(const graph::Graph& g,
                                 const std::vector<bool>& in_set) {
  const std::size_t n = g.node_count();
  // Domination.
  for (NodeId u = 0; u < n; ++u) {
    if (in_set[u]) continue;
    bool dominated = false;
    for (const auto& e : g.neighbors(u)) {
      if (in_set[e.to]) {
        dominated = true;
        break;
      }
    }
    if (!dominated && g.degree(u) > 0) return false;
  }
  // Connectivity of the induced subgraph.
  NodeId start = n;
  std::size_t members = 0;
  for (NodeId u = 0; u < n; ++u) {
    if (in_set[u]) {
      ++members;
      if (start == n) start = u;
    }
  }
  if (members <= 1) return true;
  std::vector<bool> seen(n, false);
  std::vector<NodeId> stack{start};
  seen[start] = true;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    for (const auto& e : g.neighbors(u)) {
      if (in_set[e.to] && !seen[e.to]) {
        seen[e.to] = true;
        ++visited;
        stack.push_back(e.to);
      }
    }
  }
  return visited == members;
}

namespace {

/// BFS where only the source and set members forward; returns (receivers
/// including source, transmissions).
std::pair<std::size_t, std::size_t> simulate_broadcast(
    const graph::Graph& g, const std::vector<bool>& in_set, NodeId source) {
  const std::size_t n = g.node_count();
  if (source >= n) return {0, 0};
  std::vector<bool> received(n, false);
  std::vector<NodeId> frontier{source};
  received[source] = true;
  std::size_t receivers = 1;
  std::size_t transmissions = 0;
  while (!frontier.empty()) {
    const NodeId u = frontier.back();
    frontier.pop_back();
    if (u != source && !in_set[u]) continue;  // non-members do not forward
    ++transmissions;
    for (const auto& e : g.neighbors(u)) {
      if (!received[e.to]) {
        received[e.to] = true;
        ++receivers;
        frontier.push_back(e.to);
      }
    }
  }
  return {receivers, transmissions};
}

}  // namespace

std::size_t forward_count(const graph::Graph& g,
                          const std::vector<bool>& in_set, NodeId source,
                          const obs::Probe* probe) {
  const std::size_t transmissions =
      simulate_broadcast(g, in_set, source).second;
  if (probe != nullptr) {
    probe->count_node(obs::Counter::kBroadcastForwards, source, transmissions);
  }
  return transmissions;
}

double broadcast_coverage(const graph::Graph& g,
                          const std::vector<bool>& in_set, NodeId source) {
  if (g.node_count() == 0) return 0.0;
  const auto [receivers, transmissions] =
      simulate_broadcast(g, in_set, source);
  (void)transmissions;
  return static_cast<double>(receivers) /
         static_cast<double>(g.node_count());
}

}  // namespace mstc::broadcast
