// Connected dominating sets for efficient broadcast (Wu & Li's marking
// process with pruning rules 1 and 2).
//
// The paper leans on this companion line of work twice: the reactive
// synchronization flood "can be efficiently implemented by selecting a
// small forward node set [34]", and the CDS mobility-management scheme
// [35] inspired the buffer-zone idea. This module provides the classic
// localized CDS construction so broadcast cost can be compared against
// blind flooding (see bench_ablation_broadcast).
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "obs/probe.hpp"

namespace mstc::broadcast {

/// Wu-Li marking process: node u is marked iff it has two neighbors that
/// are not adjacent to each other. On a connected graph the marked set is
/// a connected dominating set (possibly large). A probe, when given, counts
/// every marked node (cds_marked, per-node scope).
[[nodiscard]] std::vector<bool> wu_li_marking(
    const graph::Graph& g, const obs::Probe* probe = nullptr);

/// Pruning Rule 1: unmark u when some marked neighbor v with higher id
/// covers it (N[u] ⊆ N[v]). Rule 2: unmark u when two adjacent... marked
/// neighbors v, w (both with higher ids) jointly cover it
/// (N(u) ⊆ N(v) ∪ N(w)). Preserves the CDS property. A probe counts every
/// unmarked node (cds_pruned).
[[nodiscard]] std::vector<bool> prune(const graph::Graph& g,
                                      std::vector<bool> marked,
                                      const obs::Probe* probe = nullptr);

/// Convenience: marking + pruning.
[[nodiscard]] std::vector<bool> connected_dominating_set(
    const graph::Graph& g, const obs::Probe* probe = nullptr);

/// True when every unmarked node has a marked neighbor and the marked
/// nodes induce a connected subgraph (trivially true when <= 1 marked).
[[nodiscard]] bool is_connected_dominating_set(const graph::Graph& g,
                                               const std::vector<bool>& in_set);

/// Number of transmissions a broadcast needs when only set members forward
/// (the source always transmits): 1 + |set \ {source}| reachable members.
/// Returns the count of nodes that would transmit for a flood from
/// `source`, or 0 when the source id is out of range. A probe accumulates
/// the transmissions into broadcast_forwards (source-node scope).
[[nodiscard]] std::size_t forward_count(const graph::Graph& g,
                                        const std::vector<bool>& in_set,
                                        graph::NodeId source,
                                        const obs::Probe* probe = nullptr);

/// Fraction of nodes that receive a broadcast from `source` when only set
/// members forward.
[[nodiscard]] double broadcast_coverage(const graph::Graph& g,
                                        const std::vector<bool>& in_set,
                                        graph::NodeId source);

}  // namespace mstc::broadcast
