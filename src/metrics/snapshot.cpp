#include "metrics/snapshot.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>

#include "core/effective.hpp"
#include "geom/filter.hpp"
#include "obs/counters.hpp"

namespace mstc::metrics {
namespace {

// Mutual (both-ends) logical link count: the number of ordered pairs
// (u, v) with v in L(u) and u in L(v) — exactly what the old per-neighbor
// is_logical() scan counted. Builds the reverse adjacency R(v) = {u : v in
// L(u)} as CSR rows (ascending, because rows fill in ascending-u order),
// then two-pointer-merges L(u) against R(u) per node. Sortedness of
// logical_neighbors() is a documented contract (controller.hpp), pinned by
// SnapshotGridTest.MutualMergeRequiresSortedLogicalNeighbors.
std::size_t mutual_logical_links(
    std::span<const core::NodeController> controllers,
    std::vector<std::size_t>& start, std::vector<std::size_t>& cursor,
    std::vector<core::NodeId>& list) {
  const std::size_t n = controllers.size();
  start.assign(n + 1, 0);
  for (std::size_t u = 0; u < n; ++u) {
    for (const core::NodeId v : controllers[u].logical_neighbors()) {
      assert(v < n);
      ++start[v + 1];
    }
  }
  for (std::size_t v = 0; v < n; ++v) start[v + 1] += start[v];
  cursor.assign(start.begin(), start.begin() + static_cast<std::ptrdiff_t>(n));
  list.resize(start[n]);
  for (std::size_t u = 0; u < n; ++u) {
    for (const core::NodeId v : controllers[u].logical_neighbors()) {
      list[cursor[v]++] = u;
    }
  }
  std::size_t mutual = 0;
  for (std::size_t u = 0; u < n; ++u) {
    const std::vector<core::NodeId>& forward =
        controllers[u].logical_neighbors();
    std::size_t f = 0;
    std::size_t r = start[u];
    const std::size_t r_end = start[u + 1];
    while (f < forward.size() && r < r_end) {
      if (forward[f] < list[r]) {
        ++f;
      } else if (list[r] < forward[f]) {
        ++r;
      } else {
        ++mutual;
        ++f;
        ++r;
      }
    }
  }
  return mutual;
}

}  // namespace

SnapshotStats measure_snapshot(std::span<const core::NodeController> controllers,
                               std::span<const geom::Vec2> positions) {
  SnapshotScratch scratch;
  return measure_snapshot(controllers, positions, scratch);
}

SnapshotStats measure_snapshot(std::span<const core::NodeController> controllers,
                               std::span<const geom::Vec2> positions,
                               SnapshotScratch& scratch,
                               const SnapshotConfig& config,
                               const obs::Probe* probe) {
  assert(controllers.size() == positions.size());
  const std::size_t n = controllers.size();
  SnapshotStats stats;
  if (n == 0) return stats;

  // One pass over the candidate sets covers both range-based metrics: the
  // physical-degree count re-applies the exact distance_sq predicate, and
  // the link checks re-apply the exact can_deliver predicate (both-ends)
  // feeding the union-find. Candidate sets are ascending supersets of
  // everything either predicate can accept (core/effective.hpp), so both
  // integers — and the evaluation order of every double — match the
  // brute-force scan exactly.
  scratch.components_.reset(n);
  graph::SpatialGrid* grid =
      (!config.brute_force && n >= config.grid_min_nodes) ? &scratch.grid_
                                                          : nullptr;
  double range_total = 0.0;
  std::size_t physical_total = 0;
  std::uint64_t links_examined = 0;
  core::for_each_snapshot_candidates(
      controllers, positions, grid, scratch.candidates_,
      [&](std::size_t u, const std::vector<std::size_t>& candidates) {
        const double range = controllers[u].extended_range();
        range_total += range;
        const double range_sq = range * range;
        // Physical degree through the block filter: the wide kernel
        // evaluates exactly the scalar distance_sq predicate, and the count
        // feeds an integer total, so the result is trivially identical.
        // u is always its own candidate (distance 0, and every candidate
        // set is a superset of the exact acceptances), so the count
        // includes u; subtract it to match the v != u loop.
        const std::size_t m = candidates.size();
        scratch.xs_.resize(m);
        scratch.ys_.resize(m);
        for (std::size_t i = 0; i < m; ++i) {
          scratch.xs_[i] = positions[candidates[i]].x;
          scratch.ys_[i] = positions[candidates[i]].y;
        }
        assert(std::binary_search(candidates.begin(), candidates.end(), u));
        const std::size_t within =
            config.scalar_filter
                ? geom::count_within_range_scalar(scratch.xs_.data(),
                                                  scratch.ys_.data(), m,
                                                  positions[u], range_sq)
                : geom::count_within_range(scratch.xs_.data(),
                                           scratch.ys_.data(), m, positions[u],
                                           range_sq);
        physical_total += within - 1;
        for (const std::size_t v : candidates) {
          if (v <= u) continue;
          ++links_examined;
          const double d = geom::distance(positions[u], positions[v]);
          if (core::can_deliver(controllers[u], controllers[v], d) &&
              core::can_deliver(controllers[v], controllers[u], d)) {
            scratch.components_.unite(u, v);
          }
        }
      });

  // Pair connectivity is a pure function of the component partition
  // (sum of s*(s-1) over component sizes), so the union-find reproduces
  // graph::pair_connectivity_ratio(effective_snapshot(...)) bit for bit,
  // including the n < 2 convention.
  if (n < 2) {
    stats.strict_connectivity = 1.0;
  } else {
    std::size_t connected_pairs = 0;
    for (std::size_t u = 0; u < n; ++u) {
      if (scratch.components_.find(u) == u) {  // component root
        const std::size_t s = scratch.components_.component_size(u);
        connected_pairs += s * (s - 1);
      }
    }
    stats.strict_connectivity = static_cast<double>(connected_pairs) /
                                static_cast<double>(n * (n - 1));
  }

  const std::size_t logical_total =
      mutual_logical_links(controllers, scratch.reverse_start_,
                           scratch.reverse_cursor_, scratch.reverse_list_);

  stats.mean_range = range_total / static_cast<double>(n);
  stats.mean_logical_degree =
      static_cast<double>(logical_total) / static_cast<double>(n);
  stats.mean_physical_degree =
      static_cast<double>(physical_total) / static_cast<double>(n);
  if (probe != nullptr) {
    probe->count(obs::Counter::kSnapshotLinksExamined, links_examined);
  }
  return stats;
}

}  // namespace mstc::metrics
