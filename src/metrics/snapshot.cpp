#include "metrics/snapshot.hpp"

#include <cassert>

#include "core/effective.hpp"
#include "graph/algorithms.hpp"

namespace mstc::metrics {

SnapshotStats measure_snapshot(
    std::span<const core::NodeController> controllers,
    std::span<const geom::Vec2> positions) {
  assert(controllers.size() == positions.size());
  const std::size_t n = controllers.size();
  SnapshotStats stats;
  if (n == 0) return stats;

  stats.strict_connectivity = graph::pair_connectivity_ratio(
      core::effective_snapshot(controllers, positions));

  double range_total = 0.0;
  std::size_t logical_total = 0;
  std::size_t physical_total = 0;
  for (std::size_t u = 0; u < n; ++u) {
    const double range = controllers[u].extended_range();
    range_total += range;
    for (core::NodeId v : controllers[u].logical_neighbors()) {
      if (controllers[v].is_logical(controllers[u].id())) ++logical_total;
    }
    const double range_sq = range * range;
    for (std::size_t v = 0; v < n; ++v) {
      if (v != u &&
          geom::distance_sq(positions[u], positions[v]) <= range_sq) {
        ++physical_total;
      }
    }
  }
  stats.mean_range = range_total / static_cast<double>(n);
  stats.mean_logical_degree =
      static_cast<double>(logical_total) / static_cast<double>(n);
  stats.mean_physical_degree =
      static_cast<double>(physical_total) / static_cast<double>(n);
  return stats;
}

}  // namespace mstc::metrics
