#include "metrics/energy.hpp"

#include <algorithm>
#include <cmath>

namespace mstc::metrics {

double transmission_power(const EnergyModel& model, double range) {
  return model.tx_fixed_power + model.amp_scale * std::pow(range, model.alpha);
}

LifetimeReport estimate_lifetime(const EnergyModel& model,
                                 const topology::BuiltTopology& topo,
                                 double normal_range) {
  LifetimeReport report;
  const std::size_t n = topo.range.size();
  if (n == 0) return report;

  // In-degree under the both-ends rule: frames a node must receive.
  std::vector<std::size_t> in_degree(n, 0);
  for (topology::NodeId u = 0; u < n; ++u) {
    for (topology::NodeId v : topo.logical_neighbors[u]) {
      if (topo.selects(v, u)) ++in_degree[v];
    }
  }

  const double baseline_tx = transmission_power(model, normal_range);
  double drain_ratio_sum = 0.0;
  double worst_ratio = 0.0;
  for (topology::NodeId u = 0; u < n; ++u) {
    // Without control every neighbor within the normal range receives; a
    // dense network (paper: degree ~18) makes rx costs comparable in both
    // configurations, so the dominant difference is the tx amplifier term.
    const double controlled =
        transmission_power(model, topo.range[u]) +
        model.rx_power * static_cast<double>(in_degree[u]);
    const double uncontrolled =
        baseline_tx + model.rx_power * static_cast<double>(in_degree[u]);
    const double ratio = controlled / uncontrolled;
    drain_ratio_sum += ratio;
    worst_ratio = std::max(worst_ratio, ratio);
  }
  report.mean_drain_ratio = drain_ratio_sum / static_cast<double>(n);
  // First death is governed by the fastest-draining node; lifetime scales
  // inversely with drain.
  report.first_death_ratio = worst_ratio > 0.0 ? 1.0 / worst_ratio : 1.0;
  return report;
}

}  // namespace mstc::metrics
