// Cross-run aggregation with confidence intervals.
//
// The paper repeats every simulation 20 times and reports each data point
// with a 95 % confidence interval; RunAggregator collects one RunStats per
// repetition and yields the per-metric CIs.
#pragma once

#include "util/stats.hpp"

namespace mstc::metrics {

/// Scalar outcome of one simulation run (means over the run).
struct RunStats {
  double delivery_ratio = 0.0;       ///< weak connectivity (flood delivery)
  double strict_connectivity = 0.0;  ///< snapshot pair connectivity
  double mean_range = 0.0;
  double mean_logical_degree = 0.0;
  double mean_physical_degree = 0.0;
  /// Control-plane transmissions (Hellos + synchronization forwards) per
  /// node per simulated second — quantifies Section 4.1's remark that the
  /// reactive approach "will generate significant traffic".
  double control_tx_rate = 0.0;
  /// Fraction of frame receptions destroyed by collisions (0 under the
  /// ideal MAC).
  double mac_collision_fraction = 0.0;
};

class RunAggregator {
 public:
  void add(const RunStats& run) {
    delivery_.add(run.delivery_ratio);
    strict_.add(run.strict_connectivity);
    range_.add(run.mean_range);
    logical_degree_.add(run.mean_logical_degree);
    physical_degree_.add(run.mean_physical_degree);
    control_tx_.add(run.control_tx_rate);
    mac_collisions_.add(run.mac_collision_fraction);
  }

  [[nodiscard]] std::size_t runs() const noexcept {
    return delivery_.count();
  }
  [[nodiscard]] const util::Summary& delivery() const noexcept {
    return delivery_;
  }
  [[nodiscard]] const util::Summary& strict() const noexcept {
    return strict_;
  }
  [[nodiscard]] const util::Summary& range() const noexcept { return range_; }
  [[nodiscard]] const util::Summary& logical_degree() const noexcept {
    return logical_degree_;
  }
  [[nodiscard]] const util::Summary& physical_degree() const noexcept {
    return physical_degree_;
  }
  [[nodiscard]] const util::Summary& control_tx() const noexcept {
    return control_tx_;
  }
  [[nodiscard]] const util::Summary& mac_collisions() const noexcept {
    return mac_collisions_;
  }

 private:
  util::Summary delivery_;
  util::Summary strict_;
  util::Summary range_;
  util::Summary logical_degree_;
  util::Summary physical_degree_;
  util::Summary control_tx_;
  util::Summary mac_collisions_;
};

}  // namespace mstc::metrics
