// Instantaneous ("god's-eye") measurements over a running network.
//
// The paper samples its metrics 10 times per simulated second: strict
// connectivity of the effective topology, average transmission range,
// logical node degree, and (for the physical-neighbor study, Fig. 8b)
// the average number of physical neighbors.
//
// Measurement is the grid-backed fast path of the snapshot layer: link
// enumeration and the physical-degree count run over SpatialGrid candidate
// sets with exact predicate confirmation, connectivity comes from a
// union-find over the enumerated links (no per-tick Graph build), and the
// mutual-logical count is a two-pointer merge over the sorted
// logical_neighbors() spans. Every shortcut is bit-identical to the
// brute-force scan — the differential suite tests/metrics/
// snapshot_grid_test.cpp byte-compares the two paths, and
// docs/PERFORMANCE.md works the identity argument.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/controller.hpp"
#include "geom/vec2.hpp"
#include "graph/spatial_grid.hpp"
#include "graph/union_find.hpp"
#include "obs/probe.hpp"

namespace mstc::metrics {

struct SnapshotStats {
  /// Pair-connectivity ratio of the effective topology (strict model).
  double strict_connectivity = 0.0;
  /// Mean extended transmission range over nodes (m).
  double mean_range = 0.0;
  /// Mean logical degree under the both-ends rule.
  double mean_logical_degree = 0.0;
  /// Mean number of nodes inside each node's extended range.
  double mean_physical_degree = 0.0;
};

/// Tuning and escape hatch for the grid-backed measurement path. Both
/// paths produce byte-identical SnapshotStats; brute_force exists for A/B
/// benchmarking and incident triage (MSTC_SNAPSHOT_BRUTE=1 at the
/// scenario level).
struct SnapshotConfig {
  bool brute_force = false;
  /// Fleets below this size stay on the brute-force scan (grid build
  /// overhead dominates under the crossover, mirroring the medium's
  /// grid_min_nodes threshold).
  std::size_t grid_min_nodes = 150;
  /// Escape hatch: run the physical-degree count through the portable
  /// scalar filter loop instead of the SIMD block kernel (geom/filter.hpp).
  /// Byte-identical either way; mirrors sim::Medium::Config::scalar_filter.
  bool scalar_filter = false;
};

/// Reusable measurement buffers: spatial grid, candidate list, union-find
/// components, reverse-adjacency CSR rows for the mutual-logical merge.
/// Owned by the caller (runner::Scenario keeps one per replication) so the
/// per-tick measurement is allocation-free at steady state. Contents are
/// meaningful only inside measure_snapshot; treat as opaque. One scratch
/// serves one thread at a time — share per replication, never across.
class SnapshotScratch {
 public:
  SnapshotScratch() = default;

 private:
  friend SnapshotStats measure_snapshot(
      std::span<const core::NodeController> controllers,
      std::span<const geom::Vec2> positions, SnapshotScratch& scratch,
      const SnapshotConfig& config, const obs::Probe* probe);

  graph::SpatialGrid grid_;
  std::vector<std::size_t> candidates_;
  std::vector<double> xs_;  ///< SoA candidate coordinates for the
  std::vector<double> ys_;  ///< physical-degree block filter
  graph::UnionFind components_;
  // Reverse logical adjacency in CSR form: row v holds {u : v in L(u)},
  // ascending because rows fill in ascending-u order.
  std::vector<std::size_t> reverse_start_;
  std::vector<std::size_t> reverse_cursor_;
  std::vector<core::NodeId> reverse_list_;
};

/// Convenience overload with temporary scratch and default config; same
/// results as the scratch-backed overload, just not allocation-free.
[[nodiscard]] SnapshotStats measure_snapshot(
    std::span<const core::NodeController> controllers,
    std::span<const geom::Vec2> positions);

/// Measures one snapshot. `probe` (may be null) receives the
/// snapshot_links_examined count — the number of exact link checks the
/// chosen path performed, the grid's headline saving over brute force.
[[nodiscard]] SnapshotStats measure_snapshot(
    std::span<const core::NodeController> controllers,
    std::span<const geom::Vec2> positions, SnapshotScratch& scratch,
    const SnapshotConfig& config = {}, const obs::Probe* probe = nullptr);

}  // namespace mstc::metrics
