// Instantaneous ("god's-eye") measurements over a running network.
//
// The paper samples its metrics 10 times per simulated second: strict
// connectivity of the effective topology, average transmission range,
// logical node degree, and (for the physical-neighbor study, Fig. 8b)
// the average number of physical neighbors.
#pragma once

#include <span>

#include "core/controller.hpp"
#include "geom/vec2.hpp"

namespace mstc::metrics {

struct SnapshotStats {
  /// Pair-connectivity ratio of the effective topology (strict model).
  double strict_connectivity = 0.0;
  /// Mean extended transmission range over nodes (m).
  double mean_range = 0.0;
  /// Mean logical degree under the both-ends rule.
  double mean_logical_degree = 0.0;
  /// Mean number of nodes inside each node's extended range.
  double mean_physical_degree = 0.0;
};

[[nodiscard]] SnapshotStats measure_snapshot(
    std::span<const core::NodeController> controllers,
    std::span<const geom::Vec2> positions);

}  // namespace mstc::metrics
