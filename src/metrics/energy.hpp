// Transmission-energy accounting and network-lifetime estimation.
//
// The paper's motivation: "transmission range reduction conserves energy
// and bandwidth". This module turns a BuiltTopology into the numbers that
// claim rests on — per-node radio power under a d^alpha path-loss model
// and the resulting network lifetime relative to no topology control.
#pragma once

#include <cstddef>

#include "topology/builder.hpp"

namespace mstc::metrics {

struct EnergyModel {
  double alpha = 2.0;            ///< path-loss exponent
  double tx_fixed_power = 1.0;   ///< electronics overhead per transmission
                                 ///  (normalized units)
  double amp_scale = 1e-4;       ///< amplifier scale: P_amp = scale * r^alpha
  double rx_power = 0.5;         ///< cost of receiving a frame
};

/// Radiated + electronics power for one transmission at range r
/// (normalized units; only ratios are meaningful).
[[nodiscard]] double transmission_power(const EnergyModel& model, double range);

struct LifetimeReport {
  /// Time until the first node exhausts its battery, normalized so the
  /// no-topology-control network scores 1.0.
  double first_death_ratio = 1.0;
  /// Mean per-node energy drain rate ratio vs no control (< 1 is better).
  double mean_drain_ratio = 1.0;
};

/// Compares the energy drain of `topo` against transmitting every data
/// frame at `normal_range`. Workload: every node sends `tx_per_second`
/// data frames with its own range and receives from its logical in-degree.
/// Hellos cost the same in both configurations and are excluded.
[[nodiscard]] LifetimeReport estimate_lifetime(const EnergyModel& model,
                                               const topology::BuiltTopology& topo,
                                               double normal_range);

}  // namespace mstc::metrics
