// Effective-topology snapshots (strict connectivity).
//
// Given every node's current controller state and ground-truth positions,
// builds the graph a "god's-eye" snapshot would see:
//  - without physical neighbors: effective links are mutual logical links
//    covered by both extended ranges (the paper's E'');
//  - with physical neighbors: any pair covered by both extended ranges
//    communicates bidirectionally, logical or not.
//
// Link enumeration is routed through graph::SpatialGrid above a crossover
// fleet size under a bit-identity contract: grid queries with a
// conservatively padded radius produce a guaranteed superset of every node
// the exact range predicates can accept, in ascending index order, and the
// caller re-applies the exact predicates — so both paths evaluate identical
// predicates on identical values in identical order (identity argument in
// docs/PERFORMANCE.md, differential suite in tests/metrics/).
#pragma once

#include <algorithm>
#include <limits>
#include <numeric>
#include <span>
#include <vector>

#include "core/controller.hpp"
#include "graph/graph.hpp"
#include "graph/spatial_grid.hpp"

namespace mstc::core {

/// Snapshot of the effective topology. `positions[i]` is the ground-truth
/// position of controllers[i]'s node at the snapshot time.
[[nodiscard]] graph::Graph effective_snapshot(
    std::span<const NodeController> controllers,
    std::span<const geom::Vec2> positions);

/// Directed usability test for one transmission: can `from` deliver a data
/// packet to `to` right now? Requires `to` within `from`'s extended range
/// and either `to` logical at `from` or the physical-neighbor enhancement
/// active at the *receiver* side (the receiver decides whether to drop).
[[nodiscard]] bool can_deliver(const NodeController& from,
                               const NodeController& to, double distance);

/// Fleets below this size stay on the brute-force scan in
/// effective_snapshot (grid build overhead dominates under the crossover;
/// mirrors sim::Medium::Config::grid_min_nodes).
inline constexpr std::size_t kSnapshotGridMinNodes = 150;

/// Grid query radius that conservatively covers `range` against the
/// floating-point rounding of both exact predicates the snapshot layer
/// re-applies afterwards: distance_sq(u, v) <= range * range (physical
/// degree) and hypot-based distance(u, v) <= range (can_deliver). Each
/// predicate's accepted set is contained in
///   { v : fl(distance_sq) <= range^2 * (1 + 7eps) }
/// while the grid accepts everything with fl(distance_sq) <= fl(rp^2),
/// rp = range * (1 + 8eps), and fl(rp^2) >= range^2 * (1 + 12eps) — a
/// strict superset either way (docs/PERFORMANCE.md works the bound).
[[nodiscard]] constexpr double conservative_query_radius(
    double range) noexcept {
  return range * (1.0 + 8.0 * std::numeric_limits<double>::epsilon());
}

/// Candidate-enumeration harness shared by effective_snapshot and
/// metrics::measure_snapshot: for each node u = 0..n-1 in ascending order,
/// produces an ascending candidate index set that is a guaranteed superset
/// of every node the exact range predicates can accept for u, then invokes
/// visit(u, candidates). Candidates may include u itself; callers filter.
///
/// With `grid` null every candidate set is 0..n-1 — the brute-force scan,
/// byte-identical to the pre-grid nested loop. Otherwise `grid` is rebuilt
/// over `positions` (cell size = largest padded range) and queried with
/// conservative_query_radius(extended_range(u)); the grid's sorted-output
/// contract keeps the visit order identical to the brute path, so exact
/// predicate re-application yields bit-identical results.
template <typename Visit>
void for_each_snapshot_candidates(std::span<const NodeController> controllers,
                                  std::span<const geom::Vec2> positions,
                                  graph::SpatialGrid* grid,
                                  std::vector<std::size_t>& candidates,
                                  Visit&& visit) {
  const std::size_t n = controllers.size();
  if (grid == nullptr) {
    candidates.resize(n);
    std::iota(candidates.begin(), candidates.end(), std::size_t{0});
    for (std::size_t u = 0; u < n; ++u) visit(u, candidates);
    return;
  }
  double cell = 0.0;
  for (const NodeController& c : controllers) {
    cell = std::max(cell, conservative_query_radius(c.extended_range()));
  }
  grid->rebuild(positions, cell);  // cell == 0 is clamped by rebuild()
  for (std::size_t u = 0; u < n; ++u) {
    grid->query(positions[u],
                conservative_query_radius(controllers[u].extended_range()),
                candidates);
    visit(u, candidates);
  }
}

}  // namespace mstc::core
