// Effective-topology snapshots (strict connectivity).
//
// Given every node's current controller state and ground-truth positions,
// builds the graph a "god's-eye" snapshot would see:
//  - without physical neighbors: effective links are mutual logical links
//    covered by both extended ranges (the paper's E'');
//  - with physical neighbors: any pair covered by both extended ranges
//    communicates bidirectionally, logical or not.
#pragma once

#include <span>

#include "core/controller.hpp"
#include "graph/graph.hpp"

namespace mstc::core {

/// Snapshot of the effective topology. `positions[i]` is the ground-truth
/// position of controllers[i]'s node at the snapshot time.
[[nodiscard]] graph::Graph effective_snapshot(
    std::span<const NodeController> controllers,
    std::span<const geom::Vec2> positions);

/// Directed usability test for one transmission: can `from` deliver a data
/// packet to `to` right now? Requires `to` within `from`'s extended range
/// and either `to` logical at `from` or the physical-neighbor enhancement
/// active at the *receiver* side (the receiver decides whether to drop).
[[nodiscard]] bool can_deliver(const NodeController& from,
                               const NodeController& to, double distance);

}  // namespace mstc::core
