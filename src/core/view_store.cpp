#include "core/view_store.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace mstc::core {

LocalViewStore::LocalViewStore(NodeId owner, std::size_t history_limit,
                               double expiry)
    : owner_(owner), history_limit_(history_limit), expiry_(expiry) {
  assert(history_limit_ >= 1);
  assert(expiry_ > 0.0);
}

// mstc:hot — runs once per Hello reception
void LocalViewStore::record(const HelloRecord& hello) {
  auto& history = entries_[hello.sender];
  // Insert keeping newest-first order by version (receptions can reorder
  // only marginally; handle it anyway for robustness).
  const auto insert_at = std::find_if(
      history.begin(), history.end(),
      [&](const topology::VersionedPosition& existing) {
        return existing.version <= hello.advertised.version;
      });
  if (insert_at != history.end() &&
      insert_at->version == hello.advertised.version) {
    *insert_at = hello.advertised;  // duplicate delivery: refresh in place
  } else {
    history.insert(insert_at, hello.advertised);
  }
  if (history.size() > history_limit_) history.resize(history_limit_);
  if (hello.sender != owner_) {
    oldest_front_ = std::min(oldest_front_, history.front().send_time);
  }
}

// mstc:hot — runs on every reception and every selection refresh
void LocalViewStore::expire(double now) {
  const double cutoff = now - expiry_;
  // Fast path: every non-owner front is certainly newer than the cutoff,
  // so the scan below would erase nothing. This check carries the hot
  // path — expire() runs on every Hello reception and every selection
  // refresh, and in steady state nothing is stale.
  if (cutoff <= oldest_front_) return;
  double oldest = std::numeric_limits<double>::infinity();
  for (auto it = entries_.begin(); it != entries_.end();) {
    const bool stale =
        it->first != owner_ &&
        (it->second.empty() || it->second.front().send_time < cutoff);
    if (stale) {
      it = entries_.erase(it);
    } else {
      if (it->first != owner_) {
        oldest = std::min(oldest, it->second.front().send_time);
      }
      ++it;
    }
  }
  oldest_front_ = oldest;
}

std::vector<topology::VersionedPosition> LocalViewStore::history(
    NodeId sender) const {
  const auto it = entries_.find(sender);
  return it == entries_.end() ? std::vector<topology::VersionedPosition>{}
                              : it->second;
}

std::span<const topology::VersionedPosition> LocalViewStore::records(
    NodeId sender) const {
  const auto it = entries_.find(sender);
  if (it == entries_.end()) return {};
  return {it->second.data(), it->second.size()};
}

std::span<const topology::VersionedPosition> LocalViewStore::record_at(
    NodeId sender, std::uint64_t version) const {
  const auto it = entries_.find(sender);
  if (it == entries_.end()) return {};
  for (const auto& record : it->second) {
    if (record.version == version) return {&record, 1};
  }
  return {};
}

std::optional<topology::VersionedPosition> LocalViewStore::latest(
    NodeId sender) const {
  const auto it = entries_.find(sender);
  if (it == entries_.end() || it->second.empty()) return std::nullopt;
  return it->second.front();
}

std::optional<topology::VersionedPosition> LocalViewStore::at_version(
    NodeId sender, std::uint64_t version) const {
  const auto it = entries_.find(sender);
  if (it == entries_.end()) return std::nullopt;
  for (const auto& record : it->second) {
    if (record.version == version) return record;
  }
  return std::nullopt;
}

std::vector<NodeId> LocalViewStore::neighbors() const {
  std::vector<NodeId> ids;
  neighbors(ids);
  return ids;
}

// mstc:hot — runs once per selection refresh; fills the caller-owned buffer
void LocalViewStore::neighbors(std::vector<NodeId>& out) const {
  out.clear();
  out.reserve(entries_.size());
  // Sorted below, so the hash map's implementation-defined order is safe.
  // mstc-tidy: allow(unordered-iteration)
  for (const auto& [sender, history] : entries_) {
    if (sender != owner_ && !history.empty()) out.push_back(sender);
  }
  // Canonical order: entries_ is a hash map, and neighbor order flows into
  // ViewGraph node indices and therefore into tie-breaking everywhere
  // downstream. Sorting keeps runs identical across standard libraries.
  std::sort(out.begin(), out.end());
}

}  // namespace mstc::core
