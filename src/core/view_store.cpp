#include "core/view_store.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace mstc::core {

namespace {

bool sender_less(const LocalViewStore::Entry& entry, NodeId sender) {
  return entry.sender < sender;
}

}  // namespace

LocalViewStore::LocalViewStore(NodeId owner, std::size_t history_limit,
                               double expiry)
    : owner_(owner), history_limit_(history_limit), expiry_(expiry) {
  assert(history_limit_ >= 1);
  assert(expiry_ > 0.0);
}

const LocalViewStore::Entry* LocalViewStore::find(
    NodeId sender) const noexcept {
  const auto it = std::lower_bound(entries_.begin(), entries_.end(), sender,
                                   sender_less);
  if (it == entries_.end() || it->sender != sender) return nullptr;
  return &*it;
}

// mstc:hot — runs once per Hello reception
void LocalViewStore::record(const HelloRecord& hello) {
  auto slot = std::lower_bound(entries_.begin(), entries_.end(), hello.sender,
                               sender_less);
  if (slot == entries_.end() || slot->sender != hello.sender) {
    slot = entries_.insert(slot, Entry{.sender = hello.sender, .history = {}});
    // Steady state never reallocates the history: one reserve per sender.
    slot->history.reserve(history_limit_ + 1);
  }
  auto& history = slot->history;
  // Insert keeping newest-first order by version (receptions can reorder
  // only marginally; handle it anyway for robustness).
  const auto insert_at = std::find_if(
      history.begin(), history.end(),
      [&](const topology::VersionedPosition& existing) {
        return existing.version <= hello.advertised.version;
      });
  if (insert_at != history.end() &&
      insert_at->version == hello.advertised.version) {
    *insert_at = hello.advertised;  // duplicate delivery: refresh in place
  } else {
    history.insert(insert_at, hello.advertised);
  }
  if (history.size() > history_limit_) history.resize(history_limit_);
  if (hello.sender != owner_) {
    oldest_front_ = std::min(oldest_front_, history.front().send_time);
  }
}

// mstc:hot — runs on every reception and every selection refresh
void LocalViewStore::expire(double now) {
  const double cutoff = now - expiry_;
  // Fast path: every non-owner front is certainly newer than the cutoff,
  // so the scan below would erase nothing. This check carries the hot
  // path — expire() runs on every Hello reception and every selection
  // refresh, and in steady state nothing is stale.
  if (cutoff <= oldest_front_) return;
  double oldest = std::numeric_limits<double>::infinity();
  std::erase_if(entries_, [&](const Entry& entry) {
    const bool stale =
        entry.sender != owner_ &&
        (entry.history.empty() || entry.history.front().send_time < cutoff);
    if (!stale && entry.sender != owner_) {
      oldest = std::min(oldest, entry.history.front().send_time);
    }
    return stale;
  });
  oldest_front_ = oldest;
}

std::vector<topology::VersionedPosition> LocalViewStore::history(
    NodeId sender) const {
  const Entry* entry = find(sender);
  return entry == nullptr ? std::vector<topology::VersionedPosition>{}
                          : entry->history;
}

std::span<const topology::VersionedPosition> LocalViewStore::records(
    NodeId sender) const {
  const Entry* entry = find(sender);
  if (entry == nullptr) return {};
  return {entry->history.data(), entry->history.size()};
}

std::span<const topology::VersionedPosition> LocalViewStore::record_at(
    NodeId sender, std::uint64_t version) const {
  const Entry* entry = find(sender);
  if (entry == nullptr) return {};
  for (const auto& record : entry->history) {
    if (record.version == version) return {&record, 1};
  }
  return {};
}

std::optional<topology::VersionedPosition> LocalViewStore::latest(
    NodeId sender) const {
  const Entry* entry = find(sender);
  if (entry == nullptr || entry->history.empty()) return std::nullopt;
  return entry->history.front();
}

std::optional<topology::VersionedPosition> LocalViewStore::at_version(
    NodeId sender, std::uint64_t version) const {
  const Entry* entry = find(sender);
  if (entry == nullptr) return std::nullopt;
  for (const auto& record : entry->history) {
    if (record.version == version) return record;
  }
  return std::nullopt;
}

std::vector<NodeId> LocalViewStore::neighbors() const {
  std::vector<NodeId> ids;
  neighbors(ids);
  return ids;
}

// mstc:hot — runs once per selection refresh; fills the caller-owned buffer
void LocalViewStore::neighbors(std::vector<NodeId>& out) const {
  out.clear();
  out.reserve(entries_.size());
  // entries_ is already ascending by sender — the canonical order that
  // flows into ViewGraph node indices and tie-breaking downstream.
  for (const Entry& entry : entries_) {
    if (entry.sender != owner_ && !entry.history.empty()) {
      out.push_back(entry.sender);
    }
  }
}

}  // namespace mstc::core
