// "Hello" beacon payload.
//
// Each node advertises (id, position, version, send time) with the normal
// transmission range. Every consistency mechanism in this library is
// defined purely in terms of which Hello versions a decision uses.
#pragma once

#include "sim/medium.hpp"
#include "topology/view_graph.hpp"

namespace mstc::core {

using sim::NodeId;

struct HelloRecord {
  NodeId sender = 0;
  topology::VersionedPosition advertised;

  [[nodiscard]] geom::Vec2 position() const noexcept {
    return advertised.position;
  }
  [[nodiscard]] std::uint64_t version() const noexcept {
    return advertised.version;
  }
  [[nodiscard]] double send_time() const noexcept {
    return advertised.send_time;
  }
};

}  // namespace mstc::core
