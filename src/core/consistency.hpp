// View-consistency mechanisms (Sections 4.1 and 4.2 of the paper).
//
// A consistency mode determines which stored Hello versions a node's
// decision uses, i.e. how the ViewGraph is assembled from the
// LocalViewStore:
//
//  - Latest    : newest record per neighbor (the mobility-insensitive
//                baseline; views of different nodes can be inconsistent).
//  - ViewSync  : same view assembly as Latest, but the *runner* recomputes
//                the selection on every packet transmission using the
//                node's previously advertised own position (the paper's
//                simplified on-the-fly synchronization of Section 5.1).
//  - Proactive : strong consistency via timestamped Hellos: decisions use
//                exactly the records of a given version; packets pin the
//                version along the route.
//  - Reactive  : strong consistency via flood-synchronized Hello rounds;
//                the view assembly is the same versioned lookup.
//  - Weak      : interval views over the k most recent records per node,
//                feeding the enhanced link-removal conditions.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/view_store.hpp"
#include "topology/cost.hpp"
#include "topology/view_graph.hpp"

namespace mstc::core {

enum class ConsistencyMode { kLatest, kViewSync, kProactive, kReactive, kWeak };

/// Reusable buffers for the out-param view builders below. The spans
/// borrow the store's internal record vectors, so a ViewScratch is only
/// meaningful during one build; after the warmup neighborhood has been
/// seen, rebuilding a view through the same scratch allocates nothing.
struct ViewScratch {
  std::vector<NodeId> ids;
  std::vector<std::span<const topology::VersionedPosition>> versions;
};

[[nodiscard]] std::string_view to_string(ConsistencyMode mode);
[[nodiscard]] ConsistencyMode consistency_mode_from(std::string_view name);

/// Single-version view from each node's newest record. Neighbors without
/// any record are skipped. Used by Latest and ViewSync.
[[nodiscard]] topology::ViewGraph build_latest_view(
    const LocalViewStore& store, double normal_range,
    const topology::CostModel& cost);

/// Allocation-free overload: assembles into `out` via `scratch`.
void build_latest_view(const LocalViewStore& store, double normal_range,
                       const topology::CostModel& cost, ViewScratch& scratch,
                       topology::ViewGraph& out);

/// Single-version view pinned to `version`: only nodes with a stored
/// record of exactly that version participate (Theorem 2's |M(t, v)| = 1).
/// Returns nullopt when the owner itself has no record of that version.
[[nodiscard]] std::optional<topology::ViewGraph> build_versioned_view(
    const LocalViewStore& store, std::uint64_t version, double normal_range,
    const topology::CostModel& cost);

/// Allocation-free overload: returns false (leaving `out` untouched) when
/// the owner has no record of `version`.
[[nodiscard]] bool build_versioned_view(const LocalViewStore& store,
                                        std::uint64_t version,
                                        double normal_range,
                                        const topology::CostModel& cost,
                                        ViewScratch& scratch,
                                        topology::ViewGraph& out);

/// Interval view over every stored record (weak consistency): per link,
/// the distance/cost interval spans all version combinations of the two
/// endpoints' stored positions. Representative positions are the newest.
/// Neighbor-neighbor links require max distance <= normal_range so that
/// enhanced removals rely only on certainly-existing paths.
[[nodiscard]] topology::ViewGraph build_weak_view(
    const LocalViewStore& store, double normal_range,
    const topology::CostModel& cost);

/// Allocation-free overload: assembles into `out` via `scratch`.
void build_weak_view(const LocalViewStore& store, double normal_range,
                     const topology::CostModel& cost, ViewScratch& scratch,
                     topology::ViewGraph& out);

/// The paper's maximal time delay Delta'' (Section 4.3): the age bound of
/// the oldest Hello a current local view can depend on, per mode.
///  - Proactive: 2 * Delta' (taken ~ hello interval incl. skew)
///  - Reactive : Delta + bounded flood delay
///  - Weak     : (k + 1) * Delta with k stored Hellos
///  - Latest/ViewSync: 2 * Delta (newest record can be ~Delta old and is
///    used for up to another Delta until the next selection update).
[[nodiscard]] double delay_bound(ConsistencyMode mode, double hello_interval,
                                 std::size_t history_limit,
                                 double flood_delay_bound = 0.05);

}  // namespace mstc::core
