// Delay and mobility management: the buffer zone (Section 4.3).
//
// Each node transmits with the *extended* range r + l, where r is the
// actual range chosen by the topology-control protocol and l the buffer
// zone width. Theorem 5: l = 2 * Delta'' * v (max delay times max speed)
// guarantees every logical link stays an effective link.
#pragma once

#include <algorithm>

namespace mstc::core {

struct BufferZoneConfig {
  /// Fixed buffer width in meters (the paper's 1 m / 10 m / 100 m sweep).
  double width = 0.0;
  /// When true, width is computed as 2 * delay_bound * max_speed
  /// (Theorem 5) and `width` acts as a lower bound.
  bool adaptive = false;
  double max_speed = 0.0;    ///< v: maximum node speed (m/s)
  double delay_bound = 0.0;  ///< Delta'': maximal Hello age (s)
};

/// Effective buffer width under `config`.
[[nodiscard]] constexpr double buffer_width(
    const BufferZoneConfig& config) noexcept {
  if (!config.adaptive) return config.width;
  return std::max(config.width,
                  2.0 * config.delay_bound * config.max_speed);
}

/// Theorem 5's guaranteed-safe width for a given delay bound and speed.
[[nodiscard]] constexpr double safe_buffer_width(double delay_bound,
                                                 double max_speed) noexcept {
  return 2.0 * delay_bound * max_speed;
}

}  // namespace mstc::core
