// Per-node storage of recent Hello records.
//
// Keeps up to `history_limit` recent records per sender (newest first) and
// expires senders not heard from within the expiry window — the paper's
// rule that a link (u, v) exists at t only if a Hello was received during
// [t - Delta_expire, t]. The node's own advertised positions are stored
// under its own id, because every consistency scheme requires decisions to
// use the *advertised* self-position, not the true current one.
//
// Entries live in a flat vector sorted by sender id. Neighborhoods are
// small (~density), so a binary search beats hashing, and the selection
// refresh — the hot consumer — walks entries() once in ascending-id order
// instead of iterating a hash map, sorting, and re-finding each sender.
#pragma once

#include <limits>
#include <optional>
#include <span>
#include <vector>

#include "core/hello.hpp"

namespace mstc::core {

class LocalViewStore {
 public:
  /// One sender's stored history, newest first. `history` is never empty
  /// for an entry reachable through entries().
  struct Entry {
    NodeId sender = 0;
    std::vector<topology::VersionedPosition> history;
  };

  /// `history_limit` >= 1; `expiry` in seconds (records from senders whose
  /// newest record is older than expiry are dropped wholesale).
  LocalViewStore(NodeId owner, std::size_t history_limit, double expiry);

  [[nodiscard]] NodeId owner() const noexcept { return owner_; }
  [[nodiscard]] std::size_t history_limit() const noexcept {
    return history_limit_;
  }

  /// Records a Hello (own or neighbor's). Newer versions push older ones
  /// out once the history limit is reached.
  void record(const HelloRecord& hello);

  /// Drops every sender (except the owner) whose newest record is older
  /// than now - expiry.
  void expire(double now);

  /// All stored entries (owner included), ascending by sender id — the
  /// canonical neighbor order. Borrowed view: invalidated by
  /// record()/expire().
  [[nodiscard]] std::span<const Entry> entries() const noexcept {
    return entries_;
  }

  /// Newest-first version history of `sender`; empty when unknown.
  [[nodiscard]] std::vector<topology::VersionedPosition> history(
      NodeId sender) const;

  /// Newest-first version history of `sender` as a borrowed span (empty
  /// when unknown). The allocation-free sibling of history(): the span
  /// aliases the store and is invalidated by record()/expire().
  [[nodiscard]] std::span<const topology::VersionedPosition> records(
      NodeId sender) const;

  /// The record of `sender` with exactly `version` as a 0- or 1-element
  /// borrowed span (same aliasing caveat as records()).
  [[nodiscard]] std::span<const topology::VersionedPosition> record_at(
      NodeId sender, std::uint64_t version) const;

  /// Newest record of `sender`, if any.
  [[nodiscard]] std::optional<topology::VersionedPosition> latest(
      NodeId sender) const;

  /// Record of `sender` with exactly the given version, if stored.
  [[nodiscard]] std::optional<topology::VersionedPosition> at_version(
      NodeId sender, std::uint64_t version) const;

  /// Ids of known 1-hop neighbors (excludes the owner), sorted ascending so
  /// view assembly is independent of storage order.
  [[nodiscard]] std::vector<NodeId> neighbors() const;

  /// Allocation-free sibling of neighbors(): fills `out` (cleared first)
  /// with the same sorted ids.
  void neighbors(std::vector<NodeId>& out) const;

  [[nodiscard]] std::size_t neighbor_count() const noexcept {
    return entries_.size() - (find(owner_) != nullptr ? 1 : 0);
  }

 private:
  [[nodiscard]] const Entry* find(NodeId sender) const noexcept;

  NodeId owner_;
  std::size_t history_limit_;
  double expiry_;
  // Sorted ascending by sender; histories newest-first and non-empty.
  std::vector<Entry> entries_;
  // Lower bound on the oldest non-owner front send_time: expire() returns
  // immediately while the cutoff sits below it (nothing can be stale), so
  // the full scan runs only when something might actually expire.
  // Maintained as min() on record, recomputed exactly on each full scan.
  double oldest_front_ = std::numeric_limits<double>::infinity();
};

}  // namespace mstc::core
