#include "core/effective.hpp"

#include <cassert>

namespace mstc::core {

bool can_deliver(const NodeController& from, const NodeController& to,
                 double distance) {
  if (distance > from.extended_range()) return false;
  return to.config().accept_physical_neighbors || from.is_logical(to.id());
}

graph::Graph effective_snapshot(std::span<const NodeController> controllers,
                                std::span<const geom::Vec2> positions) {
  assert(controllers.size() == positions.size());
  const std::size_t n = controllers.size();
  graph::Graph g(n);
  // Cold path (tests, one-off analysis): local scratch is fine here. The
  // per-tick measurement loop goes through metrics::measure_snapshot's
  // reusable SnapshotScratch instead of building a Graph at all.
  graph::SpatialGrid grid;
  std::vector<std::size_t> candidates;
  graph::SpatialGrid* grid_ptr = n >= kSnapshotGridMinNodes ? &grid : nullptr;
  for_each_snapshot_candidates(
      controllers, positions, grid_ptr, candidates,
      [&](std::size_t u, const std::vector<std::size_t>& cand) {
        for (const std::size_t v : cand) {
          if (v <= u) continue;
          const double d = geom::distance(positions[u], positions[v]);
          if (can_deliver(controllers[u], controllers[v], d) &&
              can_deliver(controllers[v], controllers[u], d)) {
            g.add_edge(u, v, d);
          }
        }
      });
  return g;
}

}  // namespace mstc::core
