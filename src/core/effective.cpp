#include "core/effective.hpp"

#include <cassert>

namespace mstc::core {

bool can_deliver(const NodeController& from, const NodeController& to,
                 double distance) {
  if (distance > from.extended_range()) return false;
  return to.config().accept_physical_neighbors || from.is_logical(to.id());
}

graph::Graph effective_snapshot(std::span<const NodeController> controllers,
                                std::span<const geom::Vec2> positions) {
  assert(controllers.size() == positions.size());
  graph::Graph g(controllers.size());
  for (std::size_t u = 0; u < controllers.size(); ++u) {
    for (std::size_t v = u + 1; v < controllers.size(); ++v) {
      const double d = geom::distance(positions[u], positions[v]);
      if (can_deliver(controllers[u], controllers[v], d) &&
          can_deliver(controllers[v], controllers[u], d)) {
        g.add_edge(u, v, d);
      }
    }
  }
  return g;
}

}  // namespace mstc::core
