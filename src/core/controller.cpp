#include "core/controller.hpp"

#include <algorithm>

namespace mstc::core {

NodeController::NodeController(NodeId id, const topology::Protocol& protocol,
                               const topology::CostModel& cost,
                               ControllerConfig config)
    : id_(id),
      protocol_(protocol),
      cost_(cost),
      config_(config),
      store_(id, config.history_limit, config.view_expiry) {}

HelloRecord NodeController::on_hello_send(double now, geom::Vec2 true_position,
                                          std::uint64_t version) {
  const HelloRecord hello{id_, {true_position, version, now}};
  store_.record(hello);
  ++hellos_sent_;
  if (probe_ != nullptr) {
    probe_->count_node(obs::Counter::kHelloTx, id_);
    probe_->trace(obs::EventKind::kHelloTx, now, id_, 0.0, version);
  }
  switch (config_.mode) {
    case ConsistencyMode::kLatest:
    case ConsistencyMode::kViewSync:
    case ConsistencyMode::kWeak:
      refresh_selection(now);
      break;
    case ConsistencyMode::kProactive:
      // Decide one version back: by now every neighbor's previous-version
      // Hello has certainly arrived (Section 4.1, proactive approach).
      if (version > 0) refresh_selection_versioned(now, version - 1);
      break;
    case ConsistencyMode::kReactive:
      // The runner triggers the versioned refresh after the bounded wait
      // that follows the synchronization flood.
      break;
  }
  return hello;
}

void NodeController::on_hello_receive(const HelloRecord& hello, double now) {
  store_.record(hello);
  store_.expire(now);
  if (probe_ != nullptr) {
    probe_->count_node(obs::Counter::kHelloRx, id_);
    probe_->trace(obs::EventKind::kHelloRx, now, id_, 0.0, hello.sender);
  }
}

void NodeController::refresh_selection(double now) {
  if (probe_ != nullptr) probe_->count_node(obs::Counter::kViewSyncs, id_);
  store_.expire(now);
  if (!store_.latest(id_)) return;  // nothing advertised yet
  if (config_.mode == ConsistencyMode::kWeak) {
    apply_selection(build_weak_view(store_, config_.normal_range, cost_), now);
  } else {
    apply_selection(build_latest_view(store_, config_.normal_range, cost_),
                    now);
  }
}

void NodeController::refresh_selection_versioned(double now,
                                                 std::uint64_t version) {
  if (probe_ != nullptr) probe_->count_node(obs::Counter::kViewSyncs, id_);
  store_.expire(now);
  const auto view =
      build_versioned_view(store_, version, config_.normal_range, cost_);
  if (view) apply_selection(*view, now);
}

void NodeController::apply_selection(const topology::ViewGraph& view,
                                     double now) {
  const bool observing = probe_ != nullptr && probe_->counting();
  double previous_extended = 0.0;
  if (observing) {
    previous_logical_ = logical_;
    previous_extended = extended_range();
  }

  const auto chosen = protocol_.select(view);
  logical_.clear();
  logical_.reserve(chosen.size());
  actual_range_ = 0.0;
  for (std::size_t index : chosen) {
    logical_.push_back(view.id(index));
    // Cover every stored position of the neighbor (conservative under
    // interval views; equals the viewed distance for point views). The
    // relative pad rounds the power *up* so the farthest neighbor is never
    // lost to sqrt round-off when ranges are compared against squared
    // distances.
    actual_range_ =
        std::max(actual_range_, view.distance_max(0, index) * (1.0 + 1e-9));
  }
  std::sort(logical_.begin(), logical_.end());

  if (observing) {
    probe_->count_node(obs::Counter::kTopologyRecomputes, id_);
    probe_->trace(obs::EventKind::kTopologyRecompute, now, id_, actual_range_,
                  logical_.size());
    // Logical neighbors present before the recompute but absent after:
    // the link-removal churn weak consistency is designed to suppress.
    for (NodeId neighbor : previous_logical_) {
      if (!std::binary_search(logical_.begin(), logical_.end(), neighbor)) {
        probe_->count_node(obs::Counter::kLinkRemovals, id_);
        probe_->trace(obs::EventKind::kLinkRemoval, now, id_, 0.0, neighbor);
      }
    }
    const double extended = extended_range();
    if (extended > previous_extended) {
      probe_->count_node(obs::Counter::kBufferZoneExpansions, id_);
      probe_->trace(obs::EventKind::kBufferZoneExpansion, now, id_, extended,
                    0);
    }
  }
}

bool NodeController::is_logical(NodeId neighbor) const {
  return std::binary_search(logical_.begin(), logical_.end(), neighbor);
}

double NodeController::extended_range() const noexcept {
  // Theorem 5 requires the full r + l; the buffer may push a node's power
  // past the normal range (the paper does not cap it either).
  if (logical_.empty()) return 0.0;
  return actual_range_ + buffer_width(config_.buffer);
}

}  // namespace mstc::core
