#include "core/controller.hpp"

#include <algorithm>
#include <bit>
#include <span>

namespace mstc::core {

namespace {

// View-kind tags for build_cache_key. Mode is fixed per controller, but
// tagging keeps versioned and unversioned keys from ever colliding.
constexpr std::uint64_t kKeyLatest = 1;
constexpr std::uint64_t kKeyWeak = 2;
constexpr std::uint64_t kKeyVersioned = 3;

void fold_position(const topology::VersionedPosition& record,
                   std::vector<std::uint64_t>& key) {
  key.push_back(std::bit_cast<std::uint64_t>(record.position.x));
  key.push_back(std::bit_cast<std::uint64_t>(record.position.y));
}

}  // namespace

NodeController::NodeController(NodeId id, const topology::Protocol& protocol,
                               const topology::CostModel& cost,
                               ControllerConfig config)
    : id_(id),
      protocol_(&protocol),
      cost_(&cost),
      config_(config),
      store_(id, config.history_limit, config.view_expiry) {}

void NodeController::rebind(const topology::Protocol& protocol,
                            const topology::CostModel& cost) noexcept {
  protocol_ = &protocol;
  cost_ = &cost;
}

HelloRecord NodeController::on_hello_send(double now, geom::Vec2 true_position,
                                          std::uint64_t version) {
  HelloRecord hello = on_hello_send_record(now, true_position, version);
  post_send_refresh(now, version);
  return hello;
}

HelloRecord NodeController::on_hello_send_record(double now,
                                                 geom::Vec2 true_position,
                                                 std::uint64_t version) {
  const HelloRecord hello{id_, {true_position, version, now}};
  store_.record(hello);
  ++hellos_sent_;
  if (probe_ != nullptr) {
    probe_->count_node(obs::Counter::kHelloTx, id_);
    probe_->trace(obs::EventKind::kHelloTx, now, id_, 0.0, version);
  }
  return hello;
}

void NodeController::post_send_refresh(double now, std::uint64_t version) {
  switch (config_.mode) {
    case ConsistencyMode::kLatest:
    case ConsistencyMode::kViewSync:
    case ConsistencyMode::kWeak:
      refresh_selection(now);
      break;
    case ConsistencyMode::kProactive:
      // Decide one version back: by now every neighbor's previous-version
      // Hello has certainly arrived (Section 4.1, proactive approach).
      if (version > 0) refresh_selection_versioned(now, version - 1);
      break;
    case ConsistencyMode::kReactive:
      // The runner triggers the versioned refresh after the bounded wait
      // that follows the synchronization flood.
      break;
  }
}

// mstc:hot — runs once per delivered Hello (fan-out x fleet size)
void NodeController::on_hello_receive(const HelloRecord& hello, double now) {
  store_.record(hello);
  store_.expire(now);
  if (probe_ != nullptr) {
    probe_->count_node(obs::Counter::kHelloRx, id_);
    probe_->trace(obs::EventKind::kHelloRx, now, id_, 0.0, hello.sender);
  }
}

// mstc:hot — runs once per selection refresh; all view state lives in
// member scratch (view_scratch_, cache_key_scratch_)
void NodeController::refresh_selection(double now) {
  const obs::ScopedTimer timer(
      probe_ != nullptr ? probe_->profiler() : nullptr,
      obs::Category::kViewAssembly);
  if (probe_ != nullptr) probe_->count_node(obs::Counter::kViewSyncs, id_);
  store_.expire(now);
  if (!store_.latest(id_)) return;  // nothing advertised yet
  const bool weak = config_.mode == ConsistencyMode::kWeak;
  const bool cached = cache_enabled();
  if (cached) {
    build_cache_key(weak ? kKeyWeak : kKeyLatest, 0, cache_key_scratch_);
    if (cache_valid_ && cache_key_scratch_ == cache_key_) {
      if (probe_ != nullptr) {
        probe_->count_node(obs::Counter::kTopologyRecomputeSkips, id_);
      }
      note_cache_probe(true);
      return;  // same inputs => same selection; keep it as-is
    }
    note_cache_probe(false);
  }
  if (weak) {
    build_weak_view(store_, config_.normal_range, *cost_, view_scratch_, view_);
  } else {
    build_latest_view(store_, config_.normal_range, *cost_, view_scratch_,
                      view_);
  }
  apply_selection(view_, now);
  if (cached) {
    cache_key_.swap(cache_key_scratch_);
    cache_valid_ = true;
  }
}

// mstc:hot — the proactive/reactive counterpart of refresh_selection
void NodeController::refresh_selection_versioned(double now,
                                                 std::uint64_t version) {
  const obs::ScopedTimer timer(
      probe_ != nullptr ? probe_->profiler() : nullptr,
      obs::Category::kViewAssembly);
  if (probe_ != nullptr) probe_->count_node(obs::Counter::kViewSyncs, id_);
  store_.expire(now);
  // Owner lacking the pinned version keeps the prior selection (the
  // paper's "wait before migrating to the next local view") and must
  // leave the cache untouched: nothing was recomputed.
  if (store_.record_at(id_, version).empty()) return;
  const bool cached = cache_enabled();
  if (cached) {
    build_cache_key(kKeyVersioned, version, cache_key_scratch_);
    if (cache_valid_ && cache_key_scratch_ == cache_key_) {
      if (probe_ != nullptr) {
        probe_->count_node(obs::Counter::kTopologyRecomputeSkips, id_);
      }
      note_cache_probe(true);
      return;
    }
    note_cache_probe(false);
  }
  if (!build_versioned_view(store_, version, config_.normal_range, *cost_,
                            view_scratch_, view_)) {
    return;  // unreachable: the owner check above already passed
  }
  apply_selection(view_, now);
  if (cached) {
    cache_key_.swap(cache_key_scratch_);
    cache_valid_ = true;
  }
}

void NodeController::note_cache_probe(bool hit) noexcept {
  if (hit) ++cache_skips_;
  if (++cache_probes_ < kRecomputeCacheWarmup) return;
  // Checked at every probe past the warmup floor (not only when the count
  // hits it exactly — short runs would otherwise never decide): a skip
  // rate below the configured floor means fingerprints almost never match
  // (mobile positions fold into the key), so probing is pure overhead.
  // One-shot in effect: bypassing stops the probing that feeds this.
  const double skip_rate = static_cast<double>(cache_skips_) /
                           static_cast<double>(cache_probes_);
  cache_bypassed_ = config_.recompute_cache_min_skip_rate > 0.0 &&
                    skip_rate < config_.recompute_cache_min_skip_rate;
}

void NodeController::build_cache_key(std::uint64_t tag, std::uint64_t version,
                                     std::vector<std::uint64_t>& key) {
  key.clear();
  key.push_back(tag);
  const auto fold_member = [&](NodeId member,
                               std::span<const topology::VersionedPosition>
                                   records) {
    key.push_back(member);
    key.push_back(records.size());
    for (const auto& record : records) fold_position(record, key);
  };
  // One pass over the store: entries() is ascending by sender — the same
  // order the old sorted-neighbors walk produced, so key bytes are
  // unchanged.
  const auto fold_neighbors =
      [&](auto&& project) {
        for (const core::LocalViewStore::Entry& entry : store_.entries()) {
          if (entry.sender == id_ || entry.history.empty()) continue;
          const auto records = project(entry);
          if (!records.empty()) fold_member(entry.sender, records);
        }
      };
  const auto full = [](const core::LocalViewStore::Entry& entry) {
    return std::span<const topology::VersionedPosition>(entry.history.data(),
                                                        entry.history.size());
  };
  switch (tag) {
    case kKeyLatest:
      fold_member(id_, store_.records(id_).first(1));
      fold_neighbors([&](const core::LocalViewStore::Entry& entry) {
        return full(entry).first(1);
      });
      return;
    case kKeyWeak:
      fold_member(id_, store_.records(id_));
      fold_neighbors(full);
      return;
    case kKeyVersioned:
      key.push_back(version);
      fold_member(id_, store_.record_at(id_, version));
      fold_neighbors([&](const core::LocalViewStore::Entry& entry)
                         -> std::span<const topology::VersionedPosition> {
        for (const auto& record : entry.history) {
          if (record.version == version) return {&record, 1};
        }
        return {};
      });
      return;
  }
}

void NodeController::apply_selection(const topology::ViewGraph& view,
                                     double now) {
  const bool observing = probe_ != nullptr && probe_->counting();
  double previous_extended = 0.0;
  if (observing) {
    previous_logical_ = logical_;
    previous_extended = extended_range();
  }

  {
    const obs::ScopedTimer timer(
        probe_ != nullptr ? probe_->profiler() : nullptr,
        obs::Category::kProtocolSelect);
    protocol_->select(view, chosen_);
  }
  logical_.clear();
  logical_.reserve(chosen_.size());
  actual_range_ = 0.0;
  for (std::size_t index : chosen_) {
    logical_.push_back(view.id(index));
    // Cover every stored position of the neighbor (conservative under
    // interval views; equals the viewed distance for point views). The
    // relative pad rounds the power *up* so the farthest neighbor is never
    // lost to sqrt round-off when ranges are compared against squared
    // distances.
    actual_range_ =
        std::max(actual_range_, view.distance_max(0, index) * (1.0 + 1e-9));
  }
  std::sort(logical_.begin(), logical_.end());

  if (observing) {
    probe_->count_node(obs::Counter::kTopologyRecomputes, id_);
    probe_->trace(obs::EventKind::kTopologyRecompute, now, id_, actual_range_,
                  logical_.size());
    // Logical neighbors present before the recompute but absent after:
    // the link-removal churn weak consistency is designed to suppress.
    for (NodeId neighbor : previous_logical_) {
      if (!std::binary_search(logical_.begin(), logical_.end(), neighbor)) {
        probe_->count_node(obs::Counter::kLinkRemovals, id_);
        probe_->trace(obs::EventKind::kLinkRemoval, now, id_, 0.0, neighbor);
      }
    }
    const double extended = extended_range();
    if (extended > previous_extended) {
      probe_->count_node(obs::Counter::kBufferZoneExpansions, id_);
      probe_->trace(obs::EventKind::kBufferZoneExpansion, now, id_, extended,
                    0);
    }
  }
}

bool NodeController::is_logical(NodeId neighbor) const {
  return std::binary_search(logical_.begin(), logical_.end(), neighbor);
}

double NodeController::extended_range() const noexcept {
  // Theorem 5 requires the full r + l; the buffer may push a node's power
  // past the normal range (the paper does not cap it either).
  if (logical_.empty()) return 0.0;
  return actual_range_ + buffer_width(config_.buffer);
}

}  // namespace mstc::core
