#include "core/consistency.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

namespace mstc::core {

namespace {

/// Assembles a ViewGraph from one chosen position list per view member
/// (owner first). Owner-neighbor links always exist (the neighbor was
/// heard); neighbor-neighbor links exist only when their viewed distance
/// can be certified <= normal_range (max over version combinations).
///
/// Reads only the `.position` of each record — together with the member
/// ids this makes the assembled view (and, by protocol purity, the
/// selection) an exact function of (ids, position bits, normal_range,
/// cost), which is what the controller's recompute cache fingerprints.
/// Conservative squared-distance rejection threshold for the pre-filter
/// below. fl(dx*dx + dy*dy) carries at most ~3 ulp (~7e-16) relative error
/// and std::hypot at most a few ulps, so the 1e-12 relative margin exceeds
/// the combined rounding error by three orders of magnitude: any pair with
/// fl(d^2) > normal_range^2 * (1 + 1e-12) certainly has
/// hypot(dx, dy) > normal_range, i.e. the exact predicate below would have
/// rejected it too (proof sketch in docs/PERFORMANCE.md). Pairs inside the
/// margin fall through to the exact check, so results are byte-identical.
constexpr double kRejectMargin = 1.0 + 1e-12;

// mstc:hot — runs once per selection refresh over ~density members
void assemble(
    NodeId owner, std::span<const NodeId> ids,
    std::span<const std::span<const topology::VersionedPosition>> versions,
    double normal_range, const topology::CostModel& cost,
    topology::ViewGraph& out) {
  assert(!ids.empty() && ids[0] == owner);
  out.reset(owner, ids.size() - 1);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    out.set_id(i, ids[i]);
    // Representative: the newest stored position (front).
    out.set_representative(i, versions[i].front().position);
  }
  const double reject_sq = normal_range * normal_range * kRejectMargin;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const bool single_i = versions[i].size() == 1;
    for (std::size_t j = i + 1; j < ids.size(); ++j) {
      if (single_i && versions[j].size() == 1) {
        // Point-view fast path (latest / versioned views): one version per
        // member means d_min == d_max, so the distance, the cost-model call
        // and the CostKey are each computed once — bit-identical to the
        // general loop, which would evaluate them twice on equal inputs.
        const geom::Vec2 a = versions[i].front().position;
        const geom::Vec2 b = versions[j].front().position;
        // Squared-distance pre-filter: skips the libm hypot for the
        // ~40% of neighbor-neighbor pairs that are certainly out of
        // range (see kRejectMargin). Never applied to the owner row —
        // owner-neighbor links exist regardless of distance.
        if (i != 0 && geom::distance_sq(a, b) > reject_sq) continue;
        const double d = geom::distance(a, b);
        if (i != 0 && d > normal_range) continue;
        const topology::CostKey key =
            topology::CostKey::make(cost.cost(d), ids[i], ids[j]);
        out.set_link(i, j, d, d, key, key);
        continue;
      }
      // Interval views (weak consistency): pre-filter on the cheap
      // squared distances first; only combinations that might be in
      // range pay for the exact hypot sweep.
      if (i != 0) {
        double max_sq = 0.0;
        for (const auto& a : versions[i]) {
          for (const auto& b : versions[j]) {
            max_sq =
                std::max(max_sq, geom::distance_sq(a.position, b.position));
          }
        }
        if (max_sq > reject_sq) continue;
      }
      double d_min = std::numeric_limits<double>::infinity();
      double d_max = 0.0;
      for (const auto& a : versions[i]) {
        for (const auto& b : versions[j]) {
          const double d = geom::distance(a.position, b.position);
          d_min = std::min(d_min, d);
          d_max = std::max(d_max, d);
        }
      }
      // Owner-neighbor links exist by virtue of the received Hello;
      // neighbor-neighbor links must certainly be within range.
      if (i != 0 && d_max > normal_range) continue;
      out.set_link(i, j, d_min, d_max,
                   topology::CostKey::make(cost.cost(d_min), ids[i], ids[j]),
                   topology::CostKey::make(cost.cost(d_max), ids[i], ids[j]));
    }
  }
}

}  // namespace

std::string_view to_string(ConsistencyMode mode) {
  switch (mode) {
    case ConsistencyMode::kLatest:
      return "latest";
    case ConsistencyMode::kViewSync:
      return "viewsync";
    case ConsistencyMode::kProactive:
      return "proactive";
    case ConsistencyMode::kReactive:
      return "reactive";
    case ConsistencyMode::kWeak:
      return "weak";
  }
  return "unknown";
}

ConsistencyMode consistency_mode_from(std::string_view name) {
  if (name == "latest") return ConsistencyMode::kLatest;
  if (name == "viewsync") return ConsistencyMode::kViewSync;
  if (name == "proactive") return ConsistencyMode::kProactive;
  if (name == "reactive") return ConsistencyMode::kReactive;
  if (name == "weak") return ConsistencyMode::kWeak;
  throw std::invalid_argument("unknown consistency mode: " + std::string(name));
}

// mstc:hot — per-refresh builder; the caller owns scratch and out
void build_latest_view(const LocalViewStore& store, double normal_range,
                       const topology::CostModel& cost, ViewScratch& scratch,
                       topology::ViewGraph& out) {
  scratch.ids.clear();
  scratch.versions.clear();
  const auto own = store.records(store.owner());
  assert(!own.empty() && "owner must have advertised at least once");
  scratch.ids.push_back(store.owner());
  scratch.versions.push_back(own.first(1));  // newest record only
  // One pass over the store: entries() is already ascending by sender, the
  // canonical neighbor order, so no per-neighbor lookup is needed.
  for (const LocalViewStore::Entry& entry : store.entries()) {
    if (entry.sender == store.owner() || entry.history.empty()) continue;
    scratch.ids.push_back(entry.sender);
    scratch.versions.push_back(
        std::span<const topology::VersionedPosition>(entry.history.data(), 1));
  }
  assemble(store.owner(), scratch.ids, scratch.versions, normal_range, cost,
           out);
}

topology::ViewGraph build_latest_view(const LocalViewStore& store,
                                      double normal_range,
                                      const topology::CostModel& cost) {
  ViewScratch scratch;
  topology::ViewGraph view;
  build_latest_view(store, normal_range, cost, scratch, view);
  return view;
}

// mstc:hot — per-refresh builder; the caller owns scratch and out
bool build_versioned_view(const LocalViewStore& store, std::uint64_t version,
                          double normal_range, const topology::CostModel& cost,
                          ViewScratch& scratch, topology::ViewGraph& out) {
  const auto own = store.record_at(store.owner(), version);
  if (own.empty()) return false;
  scratch.ids.clear();
  scratch.versions.clear();
  scratch.ids.push_back(store.owner());
  scratch.versions.push_back(own);
  // One pass over the store (ascending by sender); members are the entries
  // that pin the requested version.
  for (const LocalViewStore::Entry& entry : store.entries()) {
    if (entry.sender == store.owner()) continue;
    for (const auto& record : entry.history) {
      if (record.version == version) {
        scratch.ids.push_back(entry.sender);
        scratch.versions.push_back(
            std::span<const topology::VersionedPosition>(&record, 1));
        break;
      }
    }
  }
  assemble(store.owner(), scratch.ids, scratch.versions, normal_range, cost,
           out);
  return true;
}

std::optional<topology::ViewGraph> build_versioned_view(
    const LocalViewStore& store, std::uint64_t version, double normal_range,
    const topology::CostModel& cost) {
  ViewScratch scratch;
  topology::ViewGraph view;
  if (!build_versioned_view(store, version, normal_range, cost, scratch,
                            view)) {
    return std::nullopt;
  }
  return view;
}

// mstc:hot — per-refresh builder; the caller owns scratch and out
void build_weak_view(const LocalViewStore& store, double normal_range,
                     const topology::CostModel& cost, ViewScratch& scratch,
                     topology::ViewGraph& out) {
  scratch.ids.clear();
  scratch.versions.clear();
  const auto own = store.records(store.owner());
  assert(!own.empty() && "owner must have advertised at least once");
  scratch.ids.push_back(store.owner());
  scratch.versions.push_back(own);  // full history: the interval view
  // One pass over the store (ascending by sender), full histories.
  for (const LocalViewStore::Entry& entry : store.entries()) {
    if (entry.sender == store.owner() || entry.history.empty()) continue;
    scratch.ids.push_back(entry.sender);
    scratch.versions.push_back(std::span<const topology::VersionedPosition>(
        entry.history.data(), entry.history.size()));
  }
  assemble(store.owner(), scratch.ids, scratch.versions, normal_range, cost,
           out);
}

topology::ViewGraph build_weak_view(const LocalViewStore& store,
                                    double normal_range,
                                    const topology::CostModel& cost) {
  ViewScratch scratch;
  topology::ViewGraph view;
  build_weak_view(store, normal_range, cost, scratch, view);
  return view;
}

double delay_bound(ConsistencyMode mode, double hello_interval,
                   std::size_t history_limit, double flood_delay_bound) {
  switch (mode) {
    case ConsistencyMode::kProactive:
      return 2.0 * hello_interval;
    case ConsistencyMode::kReactive:
      return hello_interval + flood_delay_bound;
    case ConsistencyMode::kWeak:
      return (static_cast<double>(history_limit) + 1.0) * hello_interval;
    case ConsistencyMode::kLatest:
    case ConsistencyMode::kViewSync:
      return 2.0 * hello_interval;
  }
  return 2.0 * hello_interval;
}

}  // namespace mstc::core
