#include "core/consistency.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

namespace mstc::core {

namespace {

/// Assembles a ViewGraph from one chosen position list per view member
/// (owner first). Owner-neighbor links always exist (the neighbor was
/// heard); neighbor-neighbor links exist only when their viewed distance
/// can be certified <= normal_range (max over version combinations).
///
/// Reads only the `.position` of each record — together with the member
/// ids this makes the assembled view (and, by protocol purity, the
/// selection) an exact function of (ids, position bits, normal_range,
/// cost), which is what the controller's recompute cache fingerprints.
// mstc:hot — runs once per selection refresh over ~density members
void assemble(
    NodeId owner, std::span<const NodeId> ids,
    std::span<const std::span<const topology::VersionedPosition>> versions,
    double normal_range, const topology::CostModel& cost,
    topology::ViewGraph& out) {
  assert(!ids.empty() && ids[0] == owner);
  out.reset(owner, ids.size() - 1);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    out.set_id(i, ids[i]);
    // Representative: the newest stored position (front).
    out.set_representative(i, versions[i].front().position);
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    for (std::size_t j = i + 1; j < ids.size(); ++j) {
      double d_min = std::numeric_limits<double>::infinity();
      double d_max = 0.0;
      for (const auto& a : versions[i]) {
        for (const auto& b : versions[j]) {
          const double d = geom::distance(a.position, b.position);
          d_min = std::min(d_min, d);
          d_max = std::max(d_max, d);
        }
      }
      // Owner-neighbor links exist by virtue of the received Hello;
      // neighbor-neighbor links must certainly be within range.
      if (i != 0 && d_max > normal_range) continue;
      out.set_link(i, j, d_min, d_max,
                   topology::CostKey::make(cost.cost(d_min), ids[i], ids[j]),
                   topology::CostKey::make(cost.cost(d_max), ids[i], ids[j]));
    }
  }
}

}  // namespace

std::string_view to_string(ConsistencyMode mode) {
  switch (mode) {
    case ConsistencyMode::kLatest:
      return "latest";
    case ConsistencyMode::kViewSync:
      return "viewsync";
    case ConsistencyMode::kProactive:
      return "proactive";
    case ConsistencyMode::kReactive:
      return "reactive";
    case ConsistencyMode::kWeak:
      return "weak";
  }
  return "unknown";
}

ConsistencyMode consistency_mode_from(std::string_view name) {
  if (name == "latest") return ConsistencyMode::kLatest;
  if (name == "viewsync") return ConsistencyMode::kViewSync;
  if (name == "proactive") return ConsistencyMode::kProactive;
  if (name == "reactive") return ConsistencyMode::kReactive;
  if (name == "weak") return ConsistencyMode::kWeak;
  throw std::invalid_argument("unknown consistency mode: " + std::string(name));
}

// mstc:hot — per-refresh builder; the caller owns scratch and out
void build_latest_view(const LocalViewStore& store, double normal_range,
                       const topology::CostModel& cost, ViewScratch& scratch,
                       topology::ViewGraph& out) {
  scratch.ids.clear();
  scratch.versions.clear();
  const auto own = store.records(store.owner());
  assert(!own.empty() && "owner must have advertised at least once");
  scratch.ids.push_back(store.owner());
  scratch.versions.push_back(own.first(1));  // newest record only
  store.neighbors(scratch.neighbors);
  for (NodeId neighbor : scratch.neighbors) {
    const auto records = store.records(neighbor);
    if (records.empty()) continue;
    scratch.ids.push_back(neighbor);
    scratch.versions.push_back(records.first(1));
  }
  assemble(store.owner(), scratch.ids, scratch.versions, normal_range, cost,
           out);
}

topology::ViewGraph build_latest_view(const LocalViewStore& store,
                                      double normal_range,
                                      const topology::CostModel& cost) {
  ViewScratch scratch;
  topology::ViewGraph view;
  build_latest_view(store, normal_range, cost, scratch, view);
  return view;
}

// mstc:hot — per-refresh builder; the caller owns scratch and out
bool build_versioned_view(const LocalViewStore& store, std::uint64_t version,
                          double normal_range, const topology::CostModel& cost,
                          ViewScratch& scratch, topology::ViewGraph& out) {
  const auto own = store.record_at(store.owner(), version);
  if (own.empty()) return false;
  scratch.ids.clear();
  scratch.versions.clear();
  scratch.ids.push_back(store.owner());
  scratch.versions.push_back(own);
  store.neighbors(scratch.neighbors);
  for (NodeId neighbor : scratch.neighbors) {
    const auto record = store.record_at(neighbor, version);
    if (record.empty()) continue;
    scratch.ids.push_back(neighbor);
    scratch.versions.push_back(record);
  }
  assemble(store.owner(), scratch.ids, scratch.versions, normal_range, cost,
           out);
  return true;
}

std::optional<topology::ViewGraph> build_versioned_view(
    const LocalViewStore& store, std::uint64_t version, double normal_range,
    const topology::CostModel& cost) {
  ViewScratch scratch;
  topology::ViewGraph view;
  if (!build_versioned_view(store, version, normal_range, cost, scratch,
                            view)) {
    return std::nullopt;
  }
  return view;
}

// mstc:hot — per-refresh builder; the caller owns scratch and out
void build_weak_view(const LocalViewStore& store, double normal_range,
                     const topology::CostModel& cost, ViewScratch& scratch,
                     topology::ViewGraph& out) {
  scratch.ids.clear();
  scratch.versions.clear();
  const auto own = store.records(store.owner());
  assert(!own.empty() && "owner must have advertised at least once");
  scratch.ids.push_back(store.owner());
  scratch.versions.push_back(own);  // full history: the interval view
  store.neighbors(scratch.neighbors);
  for (NodeId neighbor : scratch.neighbors) {
    const auto records = store.records(neighbor);
    if (records.empty()) continue;
    scratch.ids.push_back(neighbor);
    scratch.versions.push_back(records);
  }
  assemble(store.owner(), scratch.ids, scratch.versions, normal_range, cost,
           out);
}

topology::ViewGraph build_weak_view(const LocalViewStore& store,
                                    double normal_range,
                                    const topology::CostModel& cost) {
  ViewScratch scratch;
  topology::ViewGraph view;
  build_weak_view(store, normal_range, cost, scratch, view);
  return view;
}

double delay_bound(ConsistencyMode mode, double hello_interval,
                   std::size_t history_limit, double flood_delay_bound) {
  switch (mode) {
    case ConsistencyMode::kProactive:
      return 2.0 * hello_interval;
    case ConsistencyMode::kReactive:
      return hello_interval + flood_delay_bound;
    case ConsistencyMode::kWeak:
      return (static_cast<double>(history_limit) + 1.0) * hello_interval;
    case ConsistencyMode::kLatest:
    case ConsistencyMode::kViewSync:
      return 2.0 * hello_interval;
  }
  return 2.0 * hello_interval;
}

}  // namespace mstc::core
