#include "core/consistency.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

namespace mstc::core {

namespace {

/// Assembles a ViewGraph from one chosen position list per view member
/// (owner first). Owner-neighbor links always exist (the neighbor was
/// heard); neighbor-neighbor links exist only when their viewed distance
/// can be certified <= normal_range (max over version combinations).
topology::ViewGraph assemble(
    NodeId owner, const std::vector<NodeId>& ids,
    const std::vector<std::vector<topology::VersionedPosition>>& versions,
    double normal_range, const topology::CostModel& cost) {
  assert(!ids.empty() && ids[0] == owner);
  topology::ViewGraph view(owner, ids.size() - 1);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    view.set_id(i, ids[i]);
    // Representative: the newest stored position (front).
    view.set_representative(i, versions[i].front().position);
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    for (std::size_t j = i + 1; j < ids.size(); ++j) {
      double d_min = std::numeric_limits<double>::infinity();
      double d_max = 0.0;
      for (const auto& a : versions[i]) {
        for (const auto& b : versions[j]) {
          const double d = geom::distance(a.position, b.position);
          d_min = std::min(d_min, d);
          d_max = std::max(d_max, d);
        }
      }
      // Owner-neighbor links exist by virtue of the received Hello;
      // neighbor-neighbor links must certainly be within range.
      if (i != 0 && d_max > normal_range) continue;
      view.set_link(i, j, d_min, d_max,
                    topology::CostKey::make(cost.cost(d_min), ids[i], ids[j]),
                    topology::CostKey::make(cost.cost(d_max), ids[i], ids[j]));
    }
  }
  return view;
}

}  // namespace

std::string_view to_string(ConsistencyMode mode) {
  switch (mode) {
    case ConsistencyMode::kLatest:
      return "latest";
    case ConsistencyMode::kViewSync:
      return "viewsync";
    case ConsistencyMode::kProactive:
      return "proactive";
    case ConsistencyMode::kReactive:
      return "reactive";
    case ConsistencyMode::kWeak:
      return "weak";
  }
  return "unknown";
}

ConsistencyMode consistency_mode_from(std::string_view name) {
  if (name == "latest") return ConsistencyMode::kLatest;
  if (name == "viewsync") return ConsistencyMode::kViewSync;
  if (name == "proactive") return ConsistencyMode::kProactive;
  if (name == "reactive") return ConsistencyMode::kReactive;
  if (name == "weak") return ConsistencyMode::kWeak;
  throw std::invalid_argument("unknown consistency mode: " + std::string(name));
}

topology::ViewGraph build_latest_view(const LocalViewStore& store,
                                      double normal_range,
                                      const topology::CostModel& cost) {
  std::vector<NodeId> ids{store.owner()};
  std::vector<std::vector<topology::VersionedPosition>> versions;
  const auto own = store.latest(store.owner());
  assert(own.has_value() && "owner must have advertised at least once");
  versions.push_back({*own});
  for (NodeId neighbor : store.neighbors()) {
    const auto record = store.latest(neighbor);
    if (!record) continue;
    ids.push_back(neighbor);
    versions.push_back({*record});
  }
  return assemble(store.owner(), ids, versions, normal_range, cost);
}

std::optional<topology::ViewGraph> build_versioned_view(
    const LocalViewStore& store, std::uint64_t version, double normal_range,
    const topology::CostModel& cost) {
  const auto own = store.at_version(store.owner(), version);
  if (!own) return std::nullopt;
  std::vector<NodeId> ids{store.owner()};
  std::vector<std::vector<topology::VersionedPosition>> versions;
  versions.push_back({*own});
  for (NodeId neighbor : store.neighbors()) {
    const auto record = store.at_version(neighbor, version);
    if (!record) continue;
    ids.push_back(neighbor);
    versions.push_back({*record});
  }
  return assemble(store.owner(), ids, versions, normal_range, cost);
}

topology::ViewGraph build_weak_view(const LocalViewStore& store,
                                    double normal_range,
                                    const topology::CostModel& cost) {
  std::vector<NodeId> ids{store.owner()};
  std::vector<std::vector<topology::VersionedPosition>> versions;
  versions.push_back(store.history(store.owner()));
  assert(!versions.front().empty() &&
         "owner must have advertised at least once");
  for (NodeId neighbor : store.neighbors()) {
    auto history = store.history(neighbor);
    if (history.empty()) continue;
    ids.push_back(neighbor);
    versions.push_back(std::move(history));
  }
  return assemble(store.owner(), ids, versions, normal_range, cost);
}

double delay_bound(ConsistencyMode mode, double hello_interval,
                   std::size_t history_limit, double flood_delay_bound) {
  switch (mode) {
    case ConsistencyMode::kProactive:
      return 2.0 * hello_interval;
    case ConsistencyMode::kReactive:
      return hello_interval + flood_delay_bound;
    case ConsistencyMode::kWeak:
      return (static_cast<double>(history_limit) + 1.0) * hello_interval;
    case ConsistencyMode::kLatest:
    case ConsistencyMode::kViewSync:
      return 2.0 * hello_interval;
  }
  return 2.0 * hello_interval;
}

}  // namespace mstc::core
