// Per-node topology-control state machine.
//
// A NodeController owns one node's LocalViewStore, runs the configured
// protocol over the view assembled by the configured consistency mode, and
// exposes the resulting logical neighbor set and (extended) transmission
// range. It is driven by the simulation runner:
//   on_hello_send    -> record own advertised position, then (for periodic
//                       updating modes) refresh the selection
//   on_hello_receive -> record a neighbor's Hello
//   refresh_selection / refresh_selection_versioned -> recompute logical set
#pragma once

#include <vector>

#include "core/buffer_zone.hpp"
#include "core/consistency.hpp"
#include "obs/probe.hpp"
#include "topology/protocol.hpp"

namespace mstc::core {

struct ControllerConfig {
  double normal_range = 250.0;
  ConsistencyMode mode = ConsistencyMode::kLatest;
  /// Stored Hello records per sender (k of Section 4.2; 1 for baselines,
  /// 2-3 for weak consistency, >= 2 for proactive version pinning).
  std::size_t history_limit = 1;
  /// Neighbor expiry: drop nodes not heard from for this long (seconds).
  double view_expiry = 3.0;
  BufferZoneConfig buffer;
  /// Accept data packets from non-logical physical neighbors (the paper's
  /// "physical neighbor" enhancement). Queried by the runner.
  bool accept_physical_neighbors = false;
  /// Skip the protocol run when the selection's exact inputs (member ids
  /// and position bits, post-expiry) match the previous refresh. Sound
  /// because view assembly reads only those inputs and protocols are pure;
  /// skips are counted as topology_recompute_skips. Disable to measure the
  /// uncached path (MSTC_NO_RECOMPUTE_CACHE=1 at the scenario level).
  bool recompute_cache = true;
  /// Cache self-bypass for workloads fingerprinting cannot help (mobile
  /// fleets change some position bits on almost every refresh): once a
  /// node has seen kRecomputeCacheWarmup cache probes, every further probe
  /// re-checks the cumulative skip rate, and the first time it sits below
  /// this threshold the controller stops building and comparing
  /// fingerprints for the rest of the run, saving the key-build cost on
  /// guaranteed misses. The decision is one-shot (a bypassed cache stops
  /// probing, so the rate can never recover) but no longer tied to hitting
  /// the warmup count exactly — short runs whose refresh count lands past
  /// the window still disengage. 0 disables the bypass (the cache always
  /// probes). Never changes selections — only whether the shortcut is
  /// attempted.
  double recompute_cache_min_skip_rate = 0.0;
};

/// Minimum cache probes observed before any recompute-cache bypass
/// decision. Hello-paced workloads probe roughly once per simulated
/// second per node, so bench-scale runs (~18 s) only accumulate ~18
/// probes — the floor must sit well inside that budget for the bypass to
/// cover most of the measured window, while still averaging over enough
/// probes that one early skip cannot flip the decision.
inline constexpr std::uint32_t kRecomputeCacheWarmup = 8;

class NodeController {
 public:
  NodeController(NodeId id, const topology::Protocol& protocol,
                 const topology::CostModel& cost, ControllerConfig config);

  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] const ControllerConfig& config() const noexcept {
    return config_;
  }

  /// Attaches an observability probe (hello_tx/rx, view_syncs,
  /// topology_recomputes, link_removals, buffer_zone_expansions). The probe
  /// must outlive the controller; null detaches. Counting never feeds back
  /// into decisions, so attaching a probe cannot change the selection.
  void attach_probe(const obs::Probe* probe) noexcept { probe_ = probe; }

  /// Records the position this node is about to advertise and returns the
  /// Hello to broadcast. Also refreshes the logical selection (the paper:
  /// "each node updates its logical neighbor set whenever it sends a
  /// 'Hello' message"). Equivalent to on_hello_send_record followed by
  /// post_send_refresh.
  HelloRecord on_hello_send(double now, geom::Vec2 true_position,
                            std::uint64_t version);

  /// The record-only half of on_hello_send: stores the advertised
  /// position and returns the Hello, without refreshing the selection.
  /// The returned Hello never depends on the refresh, so the sharded
  /// runner sends with this and defers post_send_refresh to a node-local
  /// event at the same instant — byte-identical outcome, off the serial
  /// path.
  HelloRecord on_hello_send_record(double now, geom::Vec2 true_position,
                                   std::uint64_t version);

  /// The refresh half of on_hello_send (mode-dependent; a no-op for
  /// reactive consistency). Touches only this node's state.
  void post_send_refresh(double now, std::uint64_t version);

  /// Records a received neighbor Hello.
  void on_hello_receive(const HelloRecord& hello, double now);

  /// Swaps in an equivalent protocol/cost pair (same algorithm and
  /// parameters). Sharded runs give each shard its own instances because
  /// Protocol::select uses per-instance mutable scratch; rebinding at
  /// ownership remaps keeps every controller on its shard's instances.
  /// Purely an aliasing change: selections are identical under any
  /// equivalent binding.
  void rebind(const topology::Protocol& protocol,
              const topology::CostModel& cost) noexcept;

  /// Recomputes the logical selection from the current store per the
  /// configured mode (ViewSync calls this on every packet transmission).
  void refresh_selection(double now);

  /// Proactive/Reactive: recompute pinned to a Hello version. No-op when
  /// the owner has no record of that version (keeps the prior selection,
  /// the paper's "wait before migrating to the next local view").
  void refresh_selection_versioned(double now, std::uint64_t version);

  /// Global ids of current logical neighbors, sorted ascending. Sortedness
  /// is a documented contract, not an accident of construction: is_logical()
  /// binary-searches this vector, and callers may merge/intersect
  /// selections from several nodes without re-sorting. Pinned by
  /// ControllerTest.LogicalNeighborsAreSortedAscending.
  [[nodiscard]] const std::vector<NodeId>& logical_neighbors() const noexcept {
    return logical_;
  }
  /// Membership test over logical_neighbors(), O(log degree).
  [[nodiscard]] bool is_logical(NodeId neighbor) const;

  /// Actual range: distance to the farthest logical neighbor as certified
  /// by the view used for the last selection.
  [[nodiscard]] double actual_range() const noexcept { return actual_range_; }

  /// Extended range = actual range + buffer width (0 with no logical
  /// neighbors). Not capped: Theorem 5's guarantee needs the full r + l.
  [[nodiscard]] double extended_range() const noexcept;

  /// Number of Hello versions this node has sent.
  [[nodiscard]] std::uint64_t hello_count() const noexcept {
    return hellos_sent_;
  }

  [[nodiscard]] const LocalViewStore& store() const noexcept { return store_; }

 private:
  void apply_selection(const topology::ViewGraph& view, double now);

  /// Fingerprints the selection's exact inputs: a tag for the view kind,
  /// the pinned version (versioned views), and per member the id and raw
  /// position bits of every record the assembly would read. Equal keys
  /// imply bit-identical views and therefore identical selections.
  void build_cache_key(std::uint64_t tag, std::uint64_t version,
                       std::vector<std::uint64_t>& key);

  NodeId id_;
  // Pointers (never null) rather than references so rebind() can retarget
  // them at shard-ownership remaps.
  const topology::Protocol* protocol_;
  const topology::CostModel* cost_;
  ControllerConfig config_;
  LocalViewStore store_;
  std::vector<NodeId> logical_;
  double actual_range_ = 0.0;
  std::uint64_t hellos_sent_ = 0;
  const obs::Probe* probe_ = nullptr;
  // Scratch for link-removal diffs; allocated only while a probe counts.
  std::vector<NodeId> previous_logical_;
  // Steady-state refreshes run allocation-free through these reusable
  // buffers (view assembly scratch, assembled view, protocol output).
  ViewScratch view_scratch_;
  topology::ViewGraph view_;
  std::vector<std::size_t> chosen_;
  // Recompute cache: fingerprint of the last applied selection's inputs
  // (see build_cache_key). The scratch key is built first and swapped in
  // only after a recompute actually runs.
  std::vector<std::uint64_t> cache_key_;
  std::vector<std::uint64_t> cache_key_scratch_;
  bool cache_valid_ = false;
  // Bypass bookkeeping (see ControllerConfig::recompute_cache_min_skip_rate):
  // probes/skips observed during warmup, and the one-shot decision.
  std::uint32_t cache_probes_ = 0;
  std::uint32_t cache_skips_ = 0;
  bool cache_bypassed_ = false;

  [[nodiscard]] bool cache_enabled() const noexcept {
    return config_.recompute_cache && !cache_bypassed_;
  }
  void note_cache_probe(bool hit) noexcept;
};

}  // namespace mstc::core
