// The per-node view graph a topology-control protocol operates on.
//
// A ViewGraph is the owner node plus its 1-hop neighbors, with, for every
// node pair, a link-existence flag and an *interval* cost [cost_min,
// cost_max]. With a single position version per node the interval collapses
// to a point and the protocols implement the paper's original link-removal
// conditions 1-3; with multiple versions (weak consistency, Section 4.2)
// the same code implements the enhanced conditions 1-3.
#pragma once

#include <span>
#include <vector>

#include "geom/vec2.hpp"
#include "topology/cost.hpp"

namespace mstc::topology {

/// A position a node advertised in one "Hello" message.
struct VersionedPosition {
  geom::Vec2 position;
  std::uint64_t version = 0;
  double send_time = 0.0;
};

class ViewGraph {
 public:
  /// Empty graph; reset() must run before any other member.
  ViewGraph() = default;

  /// Node index 0 is the owner; indices 1..neighbor_count are neighbors.
  ViewGraph(NodeId owner_id, std::size_t neighbor_count);

  /// Re-targets the graph to a new owner/size without shrinking capacity:
  /// repeated reset/assemble cycles on one instance stop allocating once
  /// the largest neighborhood has been seen. Only the link-existence flags
  /// are cleared — every cost/distance read is either on the owner row
  /// (always rewritten by view assembly) or guarded by has_link(), so
  /// stale entries are unreachable.
  void reset(NodeId owner_id, std::size_t neighbor_count);

  [[nodiscard]] std::size_t node_count() const noexcept { return ids_.size(); }
  [[nodiscard]] std::size_t neighbor_count() const noexcept {
    return ids_.size() - 1;
  }
  [[nodiscard]] NodeId owner() const noexcept { return ids_[0]; }
  [[nodiscard]] NodeId id(std::size_t index) const noexcept {
    return ids_[index];
  }

  void set_id(std::size_t index, NodeId node_id) noexcept {
    ids_[index] = node_id;
  }
  void set_representative(std::size_t index, geom::Vec2 position) noexcept {
    representatives_[index] = position;
  }
  /// Representative position: the version a geometric rule (Gabriel cone,
  /// Yao sector, CBTC direction) should use.
  [[nodiscard]] geom::Vec2 representative(std::size_t index) const noexcept {
    return representatives_[index];
  }

  /// Declares a link between view indices i and j with distance interval
  /// [d_min, d_max] and cost interval [c_min, c_max].
  void set_link(std::size_t i, std::size_t j, double distance_min,
                double distance_max, CostKey cost_min, CostKey cost_max);

  [[nodiscard]] bool has_link(std::size_t i, std::size_t j) const noexcept {
    return exists_[flat(i, j)];
  }
  [[nodiscard]] CostKey cost_min(std::size_t i, std::size_t j) const noexcept {
    return cost_min_[flat(i, j)];
  }
  [[nodiscard]] CostKey cost_max(std::size_t i, std::size_t j) const noexcept {
    return cost_max_[flat(i, j)];
  }
  [[nodiscard]] double distance_min(std::size_t i,
                                    std::size_t j) const noexcept {
    return distance_min_[flat(i, j)];
  }
  [[nodiscard]] double distance_max(std::size_t i,
                                    std::size_t j) const noexcept {
    return distance_max_[flat(i, j)];
  }

 private:
  [[nodiscard]] std::size_t flat(std::size_t i, std::size_t j) const noexcept {
    return i * ids_.size() + j;
  }

  std::vector<NodeId> ids_;
  std::vector<geom::Vec2> representatives_;
  std::vector<char> exists_;
  std::vector<CostKey> cost_min_;
  std::vector<CostKey> cost_max_;
  std::vector<double> distance_min_;
  std::vector<double> distance_max_;
};

/// Builds a consistent (single-version) view for `owner`: neighbors are the
/// nodes within `normal_range` of it, links exist between any two view
/// nodes within `normal_range`, and every cost interval is a point. This is
/// what every node sees in a static network — and, per Theorem 1, what
/// strong view consistency restores in a mobile one.
///
/// `ids[i]` is the global id for `positions[i]`; `owner_index` indexes into
/// those arrays.
[[nodiscard]] ViewGraph make_consistent_view(
    std::span<const geom::Vec2> positions, std::span<const NodeId> ids,
    std::size_t owner_index, double normal_range, const CostModel& cost);

}  // namespace mstc::topology
