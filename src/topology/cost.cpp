#include "topology/cost.hpp"

#include <cmath>
#include <sstream>

namespace mstc::topology {

double EnergyCost::cost(double distance) const {
  return std::pow(distance, alpha_) + overhead_;
}

std::string EnergyCost::name() const {
  std::ostringstream out;
  out << "energy(alpha=" << alpha_ << ")";
  return out.str();
}

}  // namespace mstc::topology
