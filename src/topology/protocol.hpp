// Topology-control protocol interface and registry.
//
// A protocol is a pure function from the owner's ViewGraph to the owner's
// logical-neighbor choice. All state (what the node knows, and from which
// Hello versions) lives in the view; this is what lets one mobility
// framework wrap every protocol without modification — the paper's
// central design point.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "topology/view_graph.hpp"

namespace mstc::topology {

class Protocol {
 public:
  virtual ~Protocol() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Writes the view indices (1..neighbor_count) of the owner's logical
  /// neighbors into `out` (cleared first). With point cost intervals this
  /// implements the protocol's original link-removal condition; with
  /// interval costs it implements the enhanced (weakly consistent)
  /// condition.
  ///
  /// Threading: implementations reuse per-instance mutable scratch, so a
  /// Protocol instance must only be driven by one thread at a time. The
  /// sanctioned pattern gives each replication its own ProtocolSuite,
  /// mirroring sim::Medium's per-replication contract.
  virtual void select(const ViewGraph& view,
                      std::vector<std::size_t>& out) const = 0;

  /// Returning convenience overload (tests and one-shot callers). Derived
  /// classes re-expose it via `using Protocol::select;`.
  [[nodiscard]] std::vector<std::size_t> select(const ViewGraph& view) const {
    std::vector<std::size_t> chosen;
    select(view, chosen);
    return chosen;
  }
};

/// Relative neighborhood graph (link-removal condition 1): remove (u, v)
/// when a witness w sees both c(u, w) and c(w, v) below c(u, v).
class RngProtocol final : public Protocol {
 public:
  [[nodiscard]] std::string_view name() const override { return "RNG"; }
  using Protocol::select;
  void select(const ViewGraph& view,
              std::vector<std::size_t>& out) const override;
};

/// Gabriel graph: remove (u, v) when a witness lies in the disk with
/// diameter uv. A special case of RNG (smaller witness region → keeps more
/// links than RNG removes... i.e. Gabriel keeps a superset of RNG's links).
/// Under interval views the witness test is applied conservatively: the
/// witness must lie in the disk for every stored position combination.
class GabrielProtocol final : public Protocol {
 public:
  [[nodiscard]] std::string_view name() const override { return "Gabriel"; }
  using Protocol::select;
  void select(const ViewGraph& view,
              std::vector<std::size_t>& out) const override;
};

/// Local MST (Li, Hou & Sha; link-removal condition 3): remove (u, v) when
/// a u-v path exists whose every link is cheaper than (u, v). Equivalent to
/// keeping exactly the local-MST edges at u by the cycle property.
class LmstProtocol final : public Protocol {
 public:
  [[nodiscard]] std::string_view name() const override { return "MST"; }
  using Protocol::select;
  void select(const ViewGraph& view,
              std::vector<std::size_t>& out) const override;

 private:
  // Per-instance scratch (see Protocol::select's threading contract).
  mutable std::vector<char> reachable_;
  mutable std::vector<std::size_t> stack_;
};

/// Minimum-energy / shortest-path-tree protocol (condition 2): remove
/// (u, v) when a multi-hop u-v path costs less than the direct link.
class SptProtocol final : public Protocol {
 public:
  /// `display_name` distinguishes parameterizations, e.g. "SPT-2"/"SPT-4".
  explicit SptProtocol(std::string display_name)
      : display_name_(std::move(display_name)) {}
  [[nodiscard]] std::string_view name() const override { return display_name_; }
  using Protocol::select;
  void select(const ViewGraph& view,
              std::vector<std::size_t>& out) const override;

 private:
  std::string display_name_;
  // Per-instance scratch (see Protocol::select's threading contract).
  mutable std::vector<double> dist_;
  mutable std::vector<std::pair<double, std::size_t>> heap_;
};

/// Minimum-energy protocol with a dynamic search region (Rodoplu-Meng /
/// Li-Halpern, the paper's future-work Section 6 target): the owner only
/// *uses* neighbors inside a search radius that starts small and doubles
/// until every neighbor beyond it has a certainly-cheaper 2-hop relay
/// through the region. Logical neighbors are the SPT children within the
/// final region — so the protocol reaches the same kind of decision as
/// SptProtocol while needing position data only for nearby nodes (less
/// control overhead in a real deployment).
class SearchRegionSptProtocol final : public Protocol {
 public:
  SearchRegionSptProtocol(std::string display_name,
                          double initial_fraction = 0.25);
  [[nodiscard]] std::string_view name() const override { return display_name_; }
  using Protocol::select;
  void select(const ViewGraph& view,
              std::vector<std::size_t>& out) const override;

 private:
  std::string display_name_;
  double initial_fraction_;
  // Per-instance scratch (see Protocol::select's threading contract).
  mutable std::vector<char> inside_;
  mutable std::vector<double> dist_;
  mutable std::vector<std::pair<double, std::size_t>> heap_;
};

/// Yao graph: divide the plane around the owner into k equal cones and keep
/// the cheapest neighbor in each. Connected for k >= 6. Under interval
/// views, every neighbor that could be its sector's cheapest is kept.
class YaoProtocol final : public Protocol {
 public:
  explicit YaoProtocol(int sectors = 6);
  [[nodiscard]] std::string_view name() const override { return display_name_; }
  using Protocol::select;
  void select(const ViewGraph& view,
              std::vector<std::size_t>& out) const override;

 private:
  int sectors_;
  std::string display_name_;
  // Per-instance scratch (see Protocol::select's threading contract).
  mutable std::vector<CostKey> sector_best_;
  mutable std::vector<std::size_t> sector_of_;
};

/// Cone-based topology control (Li, Halpern et al.): grow the neighbor set
/// nearest-first until every cone of angle `rho` contains a neighbor (or
/// neighbors are exhausted); the kept set is the minimal nearest prefix
/// achieving coverage. rho <= 5*pi/6 preserves connectivity with
/// unidirectional links; rho <= 2*pi/3 keeps the symmetric subgraph
/// (this library's logical-link rule) connected.
class CbtcProtocol final : public Protocol {
 public:
  explicit CbtcProtocol(double rho);
  [[nodiscard]] std::string_view name() const override { return "CBTC"; }
  using Protocol::select;
  void select(const ViewGraph& view,
              std::vector<std::size_t>& out) const override;

 private:
  double rho_;
  // Per-instance scratch (see Protocol::select's threading contract).
  mutable std::vector<std::size_t> order_;
  mutable std::vector<geom::Vec2> directions_;
};

/// Fault-tolerant Yao variant: keep the k cheapest neighbors in each of
/// `sectors` cones (k = 1 is the classic Yao graph). Analogous to the
/// k-redundant structures of the fault-tolerant topology-control line of
/// work ([1], [15], [18] in the paper): extra per-sector neighbors buy
/// resilience to node failures and — relevant here — to mobility.
class KYaoProtocol final : public Protocol {
 public:
  KYaoProtocol(int sectors, int per_sector);
  [[nodiscard]] std::string_view name() const override { return display_name_; }
  using Protocol::select;
  void select(const ViewGraph& view,
              std::vector<std::size_t>& out) const override;

 private:
  int sectors_;
  int per_sector_;
  std::string display_name_;
  // Per-instance scratch (see Protocol::select's threading contract).
  mutable std::vector<std::vector<std::size_t>> sector_;
  mutable std::vector<CostKey> costs_;
};

/// K-Neigh probabilistic baseline (Blough et al.): keep the k nearest
/// neighbors; no hard connectivity guarantee.
class KNeighProtocol final : public Protocol {
 public:
  explicit KNeighProtocol(int k);
  [[nodiscard]] std::string_view name() const override { return display_name_; }
  using Protocol::select;
  void select(const ViewGraph& view,
              std::vector<std::size_t>& out) const override;

 private:
  int k_;
  std::string display_name_;
};

/// No topology control: every 1-hop neighbor is logical (normal range).
class NoneProtocol final : public Protocol {
 public:
  [[nodiscard]] std::string_view name() const override { return "None"; }
  using Protocol::select;
  void select(const ViewGraph& view,
              std::vector<std::size_t>& out) const override;
};

/// Protocol + its cost model, bundled because the removal conditions only
/// make sense against the cost model the view was built with.
struct ProtocolSuite {
  std::unique_ptr<Protocol> protocol;
  std::unique_ptr<CostModel> cost;
};

/// Factory for the paper's protocol lineup: "RNG", "MST", "SPT-2", "SPT-4",
/// plus extensions "Gabriel", "Yao", "CBTC", "KNeigh", "None".
/// Throws std::invalid_argument for unknown names.
[[nodiscard]] ProtocolSuite make_protocol(std::string_view name);

/// Names usable with make_protocol, paper lineup first.
[[nodiscard]] std::vector<std::string> protocol_names();

}  // namespace mstc::topology
