// Search-region minimum-energy protocol.
//
// Every removal this protocol performs satisfies link-removal condition 2
// (a strictly cheaper multi-hop path exists in the view), so Theorem 1's
// connectivity guarantee — and the whole mobility-sensitive machinery —
// applies unchanged. That is precisely what the paper's Section 6 asks
// for: extending the framework to partial-information protocols.
#include <algorithm>
#include <cassert>
#include <functional>
#include <limits>

#include "topology/protocol.hpp"

namespace mstc::topology {

SearchRegionSptProtocol::SearchRegionSptProtocol(std::string display_name,
                                                 double initial_fraction)
    : display_name_(std::move(display_name)),
      initial_fraction_(initial_fraction) {
  assert(initial_fraction_ > 0.0 && initial_fraction_ <= 1.0);
}

void SearchRegionSptProtocol::select(const ViewGraph& view,
                                     std::vector<std::size_t>& out) const {
  out.clear();
  const std::size_t n = view.node_count();
  if (n <= 1) return;

  double max_distance = 0.0;
  for (std::size_t v = 1; v < n; ++v) {
    max_distance = std::max(max_distance, view.distance_max(0, v));
  }

  // Grow the search radius until every outside neighbor has a certainly
  // cheaper 2-hop relay through an inside neighbor.
  double radius = initial_fraction_ * max_distance;
  inside_.assign(n, 0);
  for (int growth = 0; growth < 16; ++growth) {
    for (std::size_t v = 1; v < n; ++v) {
      inside_[v] = view.distance_max(0, v) <= radius;
    }
    bool covered = true;
    for (std::size_t v = 1; v < n && covered; ++v) {
      if (inside_[v]) continue;
      bool relayed = false;
      for (std::size_t w = 1; w < n && !relayed; ++w) {
        if (!inside_[w] || !view.has_link(w, v)) continue;
        relayed = view.cost_max(0, w).value + view.cost_max(w, v).value <
                  view.cost_min(0, v).value;
      }
      covered = relayed;
    }
    if (covered || radius >= max_distance) break;
    radius = std::min(2.0 * radius, max_distance);
  }

  // SPT children of the owner within the region (Dijkstra over inside
  // nodes only, pessimistic costs; direct link masked per target as in
  // SptProtocol). Same push_heap/pop_heap min-heap as SptProtocol: the
  // exact algorithm std::priority_queue specifies, so pop order — and
  // thus determinism — is unchanged.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  dist_.resize(n);
  for (std::size_t v = 1; v < n; ++v) {
    if (!inside_[v]) continue;
    const double direct = view.cost_min(0, v).value;
    std::fill(dist_.begin(), dist_.end(), kInf);
    dist_[0] = 0.0;
    heap_.clear();
    heap_.emplace_back(0.0, std::size_t{0});
    while (!heap_.empty()) {
      std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
      const auto [d, a] = heap_.back();
      heap_.pop_back();
      if (d > dist_[a] || d >= direct) continue;
      for (std::size_t b = 1; b < n; ++b) {
        if (b == a || !inside_[b] || !view.has_link(a, b)) continue;
        if (a == 0 && b == v) continue;
        const double candidate = d + view.cost_max(a, b).value;
        if (candidate < dist_[b]) {
          dist_[b] = candidate;
          heap_.emplace_back(candidate, b);
          std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
        }
      }
    }
    if (!(direct > dist_[v])) out.push_back(v);
  }
}

}  // namespace mstc::topology
