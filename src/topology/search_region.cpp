// Search-region minimum-energy protocol.
//
// Every removal this protocol performs satisfies link-removal condition 2
// (a strictly cheaper multi-hop path exists in the view), so Theorem 1's
// connectivity guarantee — and the whole mobility-sensitive machinery —
// applies unchanged. That is precisely what the paper's Section 6 asks
// for: extending the framework to partial-information protocols.
#include <cassert>
#include <limits>
#include <queue>

#include "topology/protocol.hpp"

namespace mstc::topology {

SearchRegionSptProtocol::SearchRegionSptProtocol(std::string display_name,
                                                 double initial_fraction)
    : display_name_(std::move(display_name)),
      initial_fraction_(initial_fraction) {
  assert(initial_fraction_ > 0.0 && initial_fraction_ <= 1.0);
}

std::vector<std::size_t> SearchRegionSptProtocol::select(
    const ViewGraph& view) const {
  const std::size_t n = view.node_count();
  if (n <= 1) return {};

  double max_distance = 0.0;
  for (std::size_t v = 1; v < n; ++v) {
    max_distance = std::max(max_distance, view.distance_max(0, v));
  }

  // Grow the search radius until every outside neighbor has a certainly
  // cheaper 2-hop relay through an inside neighbor.
  double radius = initial_fraction_ * max_distance;
  std::vector<char> inside(n, 0);
  for (int growth = 0; growth < 16; ++growth) {
    for (std::size_t v = 1; v < n; ++v) {
      inside[v] = view.distance_max(0, v) <= radius;
    }
    bool covered = true;
    for (std::size_t v = 1; v < n && covered; ++v) {
      if (inside[v]) continue;
      bool relayed = false;
      for (std::size_t w = 1; w < n && !relayed; ++w) {
        if (!inside[w] || !view.has_link(w, v)) continue;
        relayed = view.cost_max(0, w).value + view.cost_max(w, v).value <
                  view.cost_min(0, v).value;
      }
      covered = relayed;
    }
    if (covered || radius >= max_distance) break;
    radius = std::min(2.0 * radius, max_distance);
  }

  // SPT children of the owner within the region (Dijkstra over inside
  // nodes only, pessimistic costs; direct link masked per target as in
  // SptProtocol).
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> logical;
  std::vector<double> dist(n);
  using Item = std::pair<double, std::size_t>;
  for (std::size_t v = 1; v < n; ++v) {
    if (!inside[v]) continue;
    const double direct = view.cost_min(0, v).value;
    std::fill(dist.begin(), dist.end(), kInf);
    dist[0] = 0.0;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
    heap.emplace(0.0, 0);
    while (!heap.empty()) {
      const auto [d, a] = heap.top();
      heap.pop();
      if (d > dist[a] || d >= direct) continue;
      for (std::size_t b = 1; b < n; ++b) {
        if (b == a || !inside[b] || !view.has_link(a, b)) continue;
        if (a == 0 && b == v) continue;
        const double candidate = d + view.cost_max(a, b).value;
        if (candidate < dist[b]) {
          dist[b] = candidate;
          heap.emplace(candidate, b);
        }
      }
    }
    if (!(direct > dist[v])) logical.push_back(v);
  }
  return logical;
}

}  // namespace mstc::topology
