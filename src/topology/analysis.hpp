// Topology quality analysis.
//
// Beyond connectivity, the literature the paper builds on evaluates
// topologies by their *stretch* (spanner quality, [28]/[31]) and
// *interference* (Burkhart et al. [3]). These analyses quantify what a
// protocol trades away when it thins the graph — used by the quality
// ablation bench and the protocol_tour example.
#pragma once

#include <span>

#include "graph/graph.hpp"
#include "topology/builder.hpp"

namespace mstc::topology {

struct StretchReport {
  /// max over connected pairs of d_logical(u,v) / d_original(u,v).
  double max_stretch = 1.0;
  /// mean of the same ratio over connected pairs.
  double mean_stretch = 1.0;
  /// Pairs connected in the original but not the logical topology (a
  /// nonzero count means the logical graph is not a spanner at all).
  std::size_t broken_pairs = 0;
};

/// Distance (or, with pre-weighted graphs, energy) stretch of `logical`
/// relative to `original`. O(n * (E log n)) — fine for n <= a few hundred.
[[nodiscard]] StretchReport stretch_ratio(const graph::Graph& original,
                                          const graph::Graph& logical);

/// Coverage-based interference of one link (u, v): the number of nodes
/// within distance |uv| of u or of v (they are disturbed whenever the link
/// is used). The interference of a topology is the maximum over its links
/// (Burkhart et al.).
[[nodiscard]] std::size_t link_interference(std::span<const geom::Vec2> positions,
                                            graph::NodeId u, graph::NodeId v);

struct InterferenceReport {
  std::size_t max_interference = 0;
  double mean_interference = 0.0;
};

[[nodiscard]] InterferenceReport interference(
    std::span<const geom::Vec2> positions, const graph::Graph& topology);

}  // namespace mstc::topology
