// Link cost models and totally-ordered cost keys.
//
// Section 3.1 of the paper: each link (u, v) gets a cost computed from the
// distance d(u, v) — c = d for RNG/MST-based protocols, c = d^alpha + c0
// for the SPT-based (minimum-energy) protocol — and ties are broken by the
// IDs of the end nodes so that link costs form a total order.
#pragma once

#include <compare>
#include <cstdint>
#include <memory>
#include <string>

namespace mstc::topology {

using NodeId = std::size_t;

/// Strictly increasing map from link length to link cost.
class CostModel {
 public:
  virtual ~CostModel() = default;
  [[nodiscard]] virtual double cost(double distance) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// c = d (RNG-based and MST-based protocols).
class DistanceCost final : public CostModel {
 public:
  [[nodiscard]] double cost(double distance) const override { return distance; }
  [[nodiscard]] std::string name() const override { return "distance"; }
};

/// c = d^alpha + c0 (SPT-based minimum-energy protocol). alpha = 2 models
/// free space, alpha = 4 two-ray ground reflection; c0 is the constant
/// per-hop overhead that penalizes long multi-hop detours.
class EnergyCost final : public CostModel {
 public:
  explicit EnergyCost(double alpha, double overhead = 0.0)
      : alpha_(alpha), overhead_(overhead) {}
  [[nodiscard]] double cost(double distance) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double alpha() const noexcept { return alpha_; }

 private:
  double alpha_;
  double overhead_;
};

/// Totally ordered link cost: cost value with end-node-ID tie-breaking,
/// compared lexicographically as (value, lo, hi). Two distinct links never
/// compare equal, which Theorem 1's proof requires.
struct CostKey {
  double value = 0.0;
  NodeId lo = 0;
  NodeId hi = 0;

  [[nodiscard]] static CostKey make(double value, NodeId u, NodeId v) noexcept {
    return (u < v) ? CostKey{value, u, v} : CostKey{value, v, u};
  }

  friend constexpr auto operator<=>(const CostKey&, const CostKey&) = default;
};

}  // namespace mstc::topology
