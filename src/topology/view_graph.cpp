#include "topology/view_graph.hpp"

#include <cassert>

namespace mstc::topology {

ViewGraph::ViewGraph(NodeId owner_id, std::size_t neighbor_count) {
  reset(owner_id, neighbor_count);
}

// mstc:hot — runs once per view assembly; resize/assign reuse member capacity
void ViewGraph::reset(NodeId owner_id, std::size_t neighbor_count) {
  const std::size_t nodes = neighbor_count + 1;
  ids_.resize(nodes);
  representatives_.resize(nodes);
  exists_.assign(nodes * nodes, 0);
  cost_min_.resize(nodes * nodes);
  cost_max_.resize(nodes * nodes);
  distance_min_.resize(nodes * nodes);
  distance_max_.resize(nodes * nodes);
  ids_[0] = owner_id;
}

// mstc:hot — runs once per certified link per refresh
void ViewGraph::set_link(std::size_t i, std::size_t j, double dist_min,
                         double dist_max, CostKey c_min, CostKey c_max) {
  assert(i != j);
  assert(dist_min <= dist_max);
  assert(c_min <= c_max);
  for (const auto& [a, b] : {std::pair{i, j}, std::pair{j, i}}) {
    const std::size_t k = flat(a, b);
    exists_[k] = 1;
    distance_min_[k] = dist_min;
    distance_max_[k] = dist_max;
    cost_min_[k] = c_min;
    cost_max_[k] = c_max;
  }
}

ViewGraph make_consistent_view(std::span<const geom::Vec2> positions,
                               std::span<const NodeId> ids,
                               std::size_t owner_index, double normal_range,
                               const CostModel& cost) {
  assert(positions.size() == ids.size());
  assert(owner_index < positions.size());
  const geom::Vec2 origin = positions[owner_index];
  const double range_sq = normal_range * normal_range;

  std::vector<std::size_t> members;  // indices into positions/ids
  members.push_back(owner_index);
  for (std::size_t i = 0; i < positions.size(); ++i) {
    if (i == owner_index) continue;
    if (geom::distance_sq(origin, positions[i]) <= range_sq) {
      members.push_back(i);
    }
  }

  ViewGraph view(ids[owner_index], members.size() - 1);
  for (std::size_t v = 0; v < members.size(); ++v) {
    view.set_id(v, ids[members[v]]);
    view.set_representative(v, positions[members[v]]);
  }
  // Pairs over one node's *local view* (~density members), not the fleet —
  // quadratic in neighborhood size by design, like the protocols that
  // consume the view. The trailing marker also covers the inner loop.
  for (std::size_t a = 0; a < members.size(); ++a) {  // mstc-lint: allow(all-pairs-scan)
    for (std::size_t b = a + 1; b < members.size(); ++b) {
      const double d =
          geom::distance(positions[members[a]], positions[members[b]]);
      if (d <= normal_range) {
        const CostKey key =
            CostKey::make(cost.cost(d), ids[members[a]], ids[members[b]]);
        view.set_link(a, b, d, d, key, key);
      }
    }
  }
  return view;
}

}  // namespace mstc::topology
