// K-Neigh baseline and the no-control protocol, plus the factory.
#include <algorithm>
#include <cassert>
#include <numbers>
#include <sstream>
#include <stdexcept>

#include "topology/protocol.hpp"

namespace mstc::topology {

KNeighProtocol::KNeighProtocol(int k) : k_(k) {
  assert(k_ >= 1);
  std::ostringstream name;
  name << "KNeigh-" << k_;
  display_name_ = name.str();
}

void KNeighProtocol::select(const ViewGraph& view,
                            std::vector<std::size_t>& out) const {
  out.clear();
  for (std::size_t v = 1; v < view.node_count(); ++v) out.push_back(v);
  std::sort(out.begin(), out.end(), [&](std::size_t a, std::size_t b) {
    return view.cost_min(0, a) < view.cost_min(0, b);
  });
  if (out.size() > static_cast<std::size_t>(k_)) {
    out.resize(static_cast<std::size_t>(k_));
  }
  std::sort(out.begin(), out.end());
}

void NoneProtocol::select(const ViewGraph& view,
                          std::vector<std::size_t>& out) const {
  out.clear();
  for (std::size_t v = 1; v < view.node_count(); ++v) out.push_back(v);
}

ProtocolSuite make_protocol(std::string_view name) {
  if (name == "RNG") {
    return {std::make_unique<RngProtocol>(), std::make_unique<DistanceCost>()};
  }
  if (name == "MST") {
    return {std::make_unique<LmstProtocol>(), std::make_unique<DistanceCost>()};
  }
  if (name == "SPT-2") {
    return {std::make_unique<SptProtocol>("SPT-2"),
            std::make_unique<EnergyCost>(2.0)};
  }
  if (name == "SPT-4") {
    return {std::make_unique<SptProtocol>("SPT-4"),
            std::make_unique<EnergyCost>(4.0)};
  }
  if (name == "Gabriel") {
    return {std::make_unique<GabrielProtocol>(),
            std::make_unique<DistanceCost>()};
  }
  if (name == "Yao") {
    return {std::make_unique<YaoProtocol>(6), std::make_unique<DistanceCost>()};
  }
  if (name == "CBTC") {
    // rho = 2*pi/3: the threshold under which the *symmetric* subgraph of
    // the cone-based construction stays connected (Li-Halpern et al.),
    // matching this library's both-ends logical-link rule.
    return {std::make_unique<CbtcProtocol>(2.0 * std::numbers::pi / 3.0),
            std::make_unique<DistanceCost>()};
  }
  if (name == "KNeigh") {
    return {std::make_unique<KNeighProtocol>(9),
            std::make_unique<DistanceCost>()};
  }
  if (name == "SPT-R") {
    // Search-region minimum energy, free-space exponent (Section 6's
    // partial-information extension target).
    return {std::make_unique<SearchRegionSptProtocol>("SPT-R"),
            std::make_unique<EnergyCost>(2.0)};
  }
  if (name == "Yao2") {
    // Fault-tolerant: two neighbors per cone (2-connectivity-oriented).
    return {std::make_unique<KYaoProtocol>(6, 2),
            std::make_unique<DistanceCost>()};
  }
  if (name == "Yao3") {
    return {std::make_unique<KYaoProtocol>(6, 3),
            std::make_unique<DistanceCost>()};
  }
  if (name == "CBTC2") {
    // Bahramgiri et al.: rho <= 2*pi/(3k) gives k-connectivity; k = 2.
    return {std::make_unique<CbtcProtocol>(std::numbers::pi / 3.0),
            std::make_unique<DistanceCost>()};
  }
  if (name == "CBTC3") {
    return {std::make_unique<CbtcProtocol>(2.0 * std::numbers::pi / 9.0),
            std::make_unique<DistanceCost>()};
  }
  if (name == "None") {
    return {std::make_unique<NoneProtocol>(), std::make_unique<DistanceCost>()};
  }
  throw std::invalid_argument("unknown protocol: " + std::string(name));
}

std::vector<std::string> protocol_names() {
  return {"MST",    "RNG",  "SPT-4", "SPT-2", "SPT-R", "Gabriel", "Yao",
          "CBTC", "KNeigh", "Yao2",  "Yao3",  "CBTC2", "CBTC3",   "None"};
}

}  // namespace mstc::topology
