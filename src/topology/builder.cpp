#include "topology/builder.hpp"

#include <algorithm>
#include <cassert>

namespace mstc::topology {

bool BuiltTopology::selects(NodeId u, NodeId v) const {
  const auto& list = logical_neighbors[u];
  return std::binary_search(list.begin(), list.end(), v);
}

double BuiltTopology::average_range() const {
  if (range.empty()) return 0.0;
  double total = 0.0;
  for (double r : range) total += r;
  return total / static_cast<double>(range.size());
}

double BuiltTopology::average_logical_degree() const {
  const std::size_t n = logical_neighbors.size();
  if (n == 0) return 0.0;
  std::size_t degree_total = 0;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : logical_neighbors[u]) {
      if (selects(v, u)) ++degree_total;  // counted once per direction
    }
  }
  return static_cast<double>(degree_total) / static_cast<double>(n);
}

BuiltTopology build_topology(std::span<const geom::Vec2> positions,
                             double normal_range, const Protocol& protocol,
                             const CostModel& cost) {
  const std::size_t n = positions.size();
  std::vector<NodeId> ids(n);
  for (NodeId u = 0; u < n; ++u) ids[u] = u;

  BuiltTopology result;
  result.logical_neighbors.resize(n);
  result.range.resize(n, 0.0);
  for (NodeId u = 0; u < n; ++u) {
    const ViewGraph view =
        make_consistent_view(positions, ids, u, normal_range, cost);
    const auto chosen = protocol.select(view);
    auto& neighbors = result.logical_neighbors[u];
    neighbors.reserve(chosen.size());
    for (std::size_t index : chosen) {
      neighbors.push_back(view.id(index));
      result.range[u] =
          std::max(result.range[u], view.distance_max(0, index));
    }
    std::sort(neighbors.begin(), neighbors.end());
  }
  return result;
}

graph::Graph original_graph(std::span<const geom::Vec2> positions,
                            double normal_range) {
  graph::Graph g(positions.size());
  const double range_sq = normal_range * normal_range;
  // Cold analysis path (property tests / one-off topology studies), never
  // inside the per-tick loop; keeping the plain scan makes it the oracle
  // other paths are compared against.
  for (NodeId u = 0; u < positions.size(); ++u) {
    // mstc-lint: allow(all-pairs-scan)
    for (NodeId v = u + 1; v < positions.size(); ++v) {
      const double d_sq = geom::distance_sq(positions[u], positions[v]);
      if (d_sq <= range_sq) g.add_edge(u, v, std::sqrt(d_sq));
    }
  }
  return g;
}

graph::Graph logical_graph(const BuiltTopology& topo,
                           std::span<const geom::Vec2> positions) {
  const std::size_t n = topo.logical_neighbors.size();
  assert(positions.size() == n);
  graph::Graph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : topo.logical_neighbors[u]) {
      if (u < v && topo.selects(v, u)) {
        g.add_edge(u, v, geom::distance(positions[u], positions[v]));
      }
    }
  }
  return g;
}

graph::Graph effective_graph(const BuiltTopology& topo,
                             std::span<const geom::Vec2> current_positions,
                             double buffer) {
  const std::size_t n = topo.logical_neighbors.size();
  assert(current_positions.size() == n);
  graph::Graph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : topo.logical_neighbors[u]) {
      if (u >= v || !topo.selects(v, u)) continue;
      const double d =
          geom::distance(current_positions[u], current_positions[v]);
      if (d <= topo.range[u] + buffer && d <= topo.range[v] + buffer) {
        g.add_edge(u, v, d);
      }
    }
  }
  return g;
}

}  // namespace mstc::topology
