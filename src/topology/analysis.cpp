#include "topology/analysis.hpp"

#include <algorithm>

#include "graph/algorithms.hpp"

namespace mstc::topology {

StretchReport stretch_ratio(const graph::Graph& original,
                            const graph::Graph& logical) {
  StretchReport report;
  const std::size_t n = original.node_count();
  if (n != logical.node_count() || n < 2) return report;
  double stretch_sum = 0.0;
  std::size_t pair_count = 0;
  for (graph::NodeId source = 0; source < n; ++source) {
    const auto base = graph::dijkstra(original, source);
    const auto thin = graph::dijkstra(logical, source);
    for (graph::NodeId target = source + 1; target < n; ++target) {
      if (base.distance[target] == graph::kUnreachable) continue;
      if (thin.distance[target] == graph::kUnreachable) {
        ++report.broken_pairs;
        continue;
      }
      const double ratio = base.distance[target] > 0.0
                               ? thin.distance[target] / base.distance[target]
                               : 1.0;
      report.max_stretch = std::max(report.max_stretch, ratio);
      stretch_sum += ratio;
      ++pair_count;
    }
  }
  if (pair_count > 0) {
    report.mean_stretch = stretch_sum / static_cast<double>(pair_count);
  }
  return report;
}

std::size_t link_interference(std::span<const geom::Vec2> positions,
                              graph::NodeId u, graph::NodeId v) {
  const double radius_sq = geom::distance_sq(positions[u], positions[v]);
  std::size_t disturbed = 0;
  for (graph::NodeId w = 0; w < positions.size(); ++w) {
    if (w == u || w == v) continue;
    if (geom::distance_sq(positions[u], positions[w]) <= radius_sq ||
        geom::distance_sq(positions[v], positions[w]) <= radius_sq) {
      ++disturbed;
    }
  }
  return disturbed;
}

InterferenceReport interference(std::span<const geom::Vec2> positions,
                                const graph::Graph& topology) {
  InterferenceReport report;
  double total = 0.0;
  std::size_t links = 0;
  for (const auto& edge : topology.edges()) {
    const std::size_t value = link_interference(positions, edge.u, edge.v);
    report.max_interference = std::max(report.max_interference, value);
    total += static_cast<double>(value);
    ++links;
  }
  if (links > 0) report.mean_interference = total / static_cast<double>(links);
  return report;
}

}  // namespace mstc::topology
