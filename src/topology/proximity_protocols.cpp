// RNG-based and Gabriel-graph protocols (link-removal condition 1).
#include "geom/predicates.hpp"
#include "topology/protocol.hpp"

namespace mstc::topology {

std::vector<std::size_t> RngProtocol::select(const ViewGraph& view) const {
  std::vector<std::size_t> logical;
  const std::size_t n = view.node_count();
  for (std::size_t v = 1; v < n; ++v) {
    const CostKey direct = view.cost_min(0, v);
    bool removed = false;
    for (std::size_t w = 1; w < n && !removed; ++w) {
      if (w == v) continue;
      if (!view.has_link(0, w) || !view.has_link(w, v)) continue;
      removed = direct > view.cost_max(0, w) && direct > view.cost_max(w, v);
    }
    if (!removed) logical.push_back(v);
  }
  return logical;
}

std::vector<std::size_t> GabrielProtocol::select(const ViewGraph& view) const {
  // Geometric witness test on representative positions, guarded by the
  // cost-interval condition so that interval views remove conservatively:
  // a removal needs the witness inside the Gabriel disk *and* both witness
  // links certainly cheaper than the direct link.
  std::vector<std::size_t> logical;
  const std::size_t n = view.node_count();
  const geom::Vec2 u = view.representative(0);
  for (std::size_t v = 1; v < n; ++v) {
    const geom::Vec2 pv = view.representative(v);
    const CostKey direct = view.cost_min(0, v);
    bool removed = false;
    for (std::size_t w = 1; w < n && !removed; ++w) {
      if (w == v) continue;
      if (!view.has_link(0, w) || !view.has_link(w, v)) continue;
      removed = geom::in_gabriel_disk(u, pv, view.representative(w)) &&
                direct > view.cost_max(0, w) && direct > view.cost_max(w, v);
    }
    if (!removed) logical.push_back(v);
  }
  return logical;
}

}  // namespace mstc::topology
