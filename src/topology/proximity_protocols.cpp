// RNG-based and Gabriel-graph protocols (link-removal condition 1).
#include "geom/predicates.hpp"
#include "topology/protocol.hpp"

namespace mstc::topology {

void RngProtocol::select(const ViewGraph& view,
                         std::vector<std::size_t>& out) const {
  out.clear();
  const std::size_t n = view.node_count();
  for (std::size_t v = 1; v < n; ++v) {
    const CostKey direct = view.cost_min(0, v);
    bool removed = false;
    for (std::size_t w = 1; w < n && !removed; ++w) {
      if (w == v) continue;
      if (!view.has_link(0, w) || !view.has_link(w, v)) continue;
      removed = direct > view.cost_max(0, w) && direct > view.cost_max(w, v);
    }
    if (!removed) out.push_back(v);
  }
}

void GabrielProtocol::select(const ViewGraph& view,
                             std::vector<std::size_t>& out) const {
  // Geometric witness test on representative positions, guarded by the
  // cost-interval condition so that interval views remove conservatively:
  // a removal needs the witness inside the Gabriel disk *and* both witness
  // links certainly cheaper than the direct link.
  out.clear();
  const std::size_t n = view.node_count();
  const geom::Vec2 u = view.representative(0);
  for (std::size_t v = 1; v < n; ++v) {
    const geom::Vec2 pv = view.representative(v);
    const CostKey direct = view.cost_min(0, v);
    bool removed = false;
    for (std::size_t w = 1; w < n && !removed; ++w) {
      if (w == v) continue;
      if (!view.has_link(0, w) || !view.has_link(w, v)) continue;
      removed = geom::in_gabriel_disk(u, pv, view.representative(w)) &&
                direct > view.cost_max(0, w) && direct > view.cost_max(w, v);
    }
    if (!removed) out.push_back(v);
  }
}

}  // namespace mstc::topology
