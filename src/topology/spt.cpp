// Minimum-energy / SPT protocol (link-removal condition 2).
//
// Remove (u, v) when a multi-hop path (u, w1, ..., wk, v) exists with
// c(u,v) > c(u,w1) + ... + c(wk,v). With energy cost d^alpha this is
// Rodoplu-Meng / Li-Halpern minimum-energy neighbor selection restricted
// to 1-hop information: keeping exactly the root's children in the local
// shortest-path tree. Interval views use cost_max on path links and
// cost_min on the direct link (enhanced condition 2).
#include <limits>
#include <queue>

#include "topology/protocol.hpp"

namespace mstc::topology {

std::vector<std::size_t> SptProtocol::select(const ViewGraph& view) const {
  std::vector<std::size_t> logical;
  const std::size_t n = view.node_count();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(n);
  using Item = std::pair<double, std::size_t>;

  for (std::size_t v = 1; v < n; ++v) {
    const double direct = view.cost_min(0, v).value;
    // Dijkstra from the owner with the direct link (0, v) masked, so any
    // path found to v has at least one intermediate hop.
    std::fill(dist.begin(), dist.end(), kInf);
    dist[0] = 0.0;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
    heap.emplace(0.0, 0);
    while (!heap.empty()) {
      const auto [d, a] = heap.top();
      heap.pop();
      if (d > dist[a] || d >= direct) continue;  // can't beat direct anymore
      for (std::size_t b = 1; b < n; ++b) {
        if (b == a || !view.has_link(a, b)) continue;
        if (a == 0 && b == v) continue;  // masked direct link
        const double candidate = d + view.cost_max(a, b).value;
        if (candidate < dist[b]) {
          dist[b] = candidate;
          heap.emplace(candidate, b);
        }
      }
    }
    // Strict inequality: equal-cost detours keep the link (conservative).
    if (!(direct > dist[v])) logical.push_back(v);
  }
  return logical;
}

}  // namespace mstc::topology
