// Minimum-energy / SPT protocol (link-removal condition 2).
//
// Remove (u, v) when a multi-hop path (u, w1, ..., wk, v) exists with
// c(u,v) > c(u,w1) + ... + c(wk,v). With energy cost d^alpha this is
// Rodoplu-Meng / Li-Halpern minimum-energy neighbor selection restricted
// to 1-hop information: keeping exactly the root's children in the local
// shortest-path tree. Interval views use cost_max on path links and
// cost_min on the direct link (enhanced condition 2).
#include <algorithm>
#include <functional>
#include <limits>

#include "topology/protocol.hpp"

namespace mstc::topology {

void SptProtocol::select(const ViewGraph& view,
                         std::vector<std::size_t>& out) const {
  out.clear();
  const std::size_t n = view.node_count();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  dist_.resize(n);

  for (std::size_t v = 1; v < n; ++v) {
    const double direct = view.cost_min(0, v).value;
    // Dijkstra from the owner with the direct link (0, v) masked, so any
    // path found to v has at least one intermediate hop. The scratch heap
    // is driven with push_heap/pop_heap (min-heap via std::greater), the
    // exact algorithm std::priority_queue specifies — pop order, and thus
    // determinism, is unchanged.
    std::fill(dist_.begin(), dist_.end(), kInf);
    dist_[0] = 0.0;
    heap_.clear();
    heap_.emplace_back(0.0, std::size_t{0});
    while (!heap_.empty()) {
      std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
      const auto [d, a] = heap_.back();
      heap_.pop_back();
      if (d > dist_[a] || d >= direct) continue;  // can't beat direct anymore
      for (std::size_t b = 1; b < n; ++b) {
        if (b == a || !view.has_link(a, b)) continue;
        if (a == 0 && b == v) continue;  // masked direct link
        const double candidate = d + view.cost_max(a, b).value;
        if (candidate < dist_[b]) {
          dist_[b] = candidate;
          heap_.emplace_back(candidate, b);
          std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
        }
      }
    }
    // Strict inequality: equal-cost detours keep the link (conservative).
    if (!(direct > dist_[v])) out.push_back(v);
  }
}

}  // namespace mstc::topology
