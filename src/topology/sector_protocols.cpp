// Yao-graph and cone-based (CBTC) protocols.
#include <algorithm>
#include <cassert>
#include <numbers>
#include <sstream>

#include "geom/predicates.hpp"
#include "topology/protocol.hpp"

namespace mstc::topology {

YaoProtocol::YaoProtocol(int sectors) : sectors_(sectors) {
  assert(sectors_ >= 1);
  std::ostringstream name;
  name << "Yao-" << sectors_;
  display_name_ = name.str();
}

std::vector<std::size_t> YaoProtocol::select(const ViewGraph& view) const {
  const std::size_t n = view.node_count();
  const geom::Vec2 origin = view.representative(0);
  // Cheapest certain cost per sector.
  constexpr CostKey kNoneYet{std::numeric_limits<double>::infinity(), 0, 0};
  std::vector<CostKey> sector_best(static_cast<std::size_t>(sectors_),
                                   kNoneYet);
  std::vector<std::size_t> sector_of(n, 0);
  for (std::size_t v = 1; v < n; ++v) {
    sector_of[v] = static_cast<std::size_t>(
        geom::yao_sector(origin, view.representative(v), sectors_));
    sector_best[sector_of[v]] =
        std::min(sector_best[sector_of[v]], view.cost_max(0, v));
  }
  // Keep every neighbor that might be its sector's cheapest: cost_min not
  // above the sector's smallest certain cost. Point intervals keep exactly
  // one neighbor per nonempty sector (the classic Yao graph).
  std::vector<std::size_t> logical;
  for (std::size_t v = 1; v < n; ++v) {
    if (view.cost_min(0, v) <= sector_best[sector_of[v]]) {
      logical.push_back(v);
    }
  }
  return logical;
}

KYaoProtocol::KYaoProtocol(int sectors, int per_sector)
    : sectors_(sectors), per_sector_(per_sector) {
  assert(sectors_ >= 1 && per_sector_ >= 1);
  std::ostringstream name;
  name << "Yao-" << sectors_ << "x" << per_sector_;
  display_name_ = name.str();
}

std::vector<std::size_t> KYaoProtocol::select(const ViewGraph& view) const {
  const std::size_t n = view.node_count();
  const geom::Vec2 origin = view.representative(0);
  // Bucket neighbors by sector, then keep the per_sector_ cheapest in each
  // (certain-cost ordering; under interval views a neighbor survives when
  // it could rank within the top per_sector_).
  std::vector<std::vector<std::size_t>> sector(
      static_cast<std::size_t>(sectors_));
  for (std::size_t v = 1; v < n; ++v) {
    sector[static_cast<std::size_t>(
               geom::yao_sector(origin, view.representative(v), sectors_))]
        .push_back(v);
  }
  std::vector<std::size_t> logical;
  for (auto& members : sector) {
    if (members.size() > static_cast<std::size_t>(per_sector_)) {
      // The per_sector_-th smallest certain cost is the cut; keep every
      // member whose optimistic cost could beat it.
      std::vector<CostKey> costs;
      costs.reserve(members.size());
      for (std::size_t v : members) costs.push_back(view.cost_max(0, v));
      std::nth_element(costs.begin(),
                       costs.begin() + (per_sector_ - 1), costs.end());
      const CostKey cut = costs[static_cast<std::size_t>(per_sector_ - 1)];
      for (std::size_t v : members) {
        if (view.cost_min(0, v) <= cut) logical.push_back(v);
      }
    } else {
      logical.insert(logical.end(), members.begin(), members.end());
    }
  }
  std::sort(logical.begin(), logical.end());
  return logical;
}

CbtcProtocol::CbtcProtocol(double rho) : rho_(rho) {
  assert(rho_ > 0.0 && rho_ <= 2.0 * std::numbers::pi);
}

std::vector<std::size_t> CbtcProtocol::select(const ViewGraph& view) const {
  const std::size_t n = view.node_count();
  const geom::Vec2 origin = view.representative(0);
  // Nearest-first growth until every cone of angle rho_ holds a neighbor.
  std::vector<std::size_t> order;
  for (std::size_t v = 1; v < n; ++v) order.push_back(v);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return view.cost_min(0, a) < view.cost_min(0, b);
  });
  // Basic CBTC: the neighbor set is everything inside the grown radius —
  // the minimal nearest-first prefix achieving cone coverage. (Interior
  // nodes are kept; only the radius shrinks back to the coverage minimum.)
  std::vector<std::size_t> selected;
  std::vector<geom::Vec2> directions;
  for (std::size_t v : order) {
    selected.push_back(v);
    directions.push_back(view.representative(v));
    if (geom::cone_coverage_complete(origin, directions.data(),
                                     static_cast<int>(directions.size()),
                                     rho_)) {
      break;
    }
  }
  // Not covered => boundary node: keep everything it saw (already true,
  // since the loop consumed every neighbor).
  std::sort(selected.begin(), selected.end());
  return selected;
}

}  // namespace mstc::topology
