// Yao-graph and cone-based (CBTC) protocols.
#include <algorithm>
#include <cassert>
#include <limits>
#include <numbers>
#include <sstream>

#include "geom/predicates.hpp"
#include "topology/protocol.hpp"

namespace mstc::topology {

YaoProtocol::YaoProtocol(int sectors) : sectors_(sectors) {
  assert(sectors_ >= 1);
  std::ostringstream name;
  name << "Yao-" << sectors_;
  display_name_ = name.str();
}

void YaoProtocol::select(const ViewGraph& view,
                         std::vector<std::size_t>& out) const {
  out.clear();
  const std::size_t n = view.node_count();
  const geom::Vec2 origin = view.representative(0);
  // Cheapest certain cost per sector.
  constexpr CostKey kNoneYet{std::numeric_limits<double>::infinity(), 0, 0};
  sector_best_.assign(static_cast<std::size_t>(sectors_), kNoneYet);
  sector_of_.assign(n, 0);
  for (std::size_t v = 1; v < n; ++v) {
    sector_of_[v] = static_cast<std::size_t>(
        geom::yao_sector(origin, view.representative(v), sectors_));
    sector_best_[sector_of_[v]] =
        std::min(sector_best_[sector_of_[v]], view.cost_max(0, v));
  }
  // Keep every neighbor that might be its sector's cheapest: cost_min not
  // above the sector's smallest certain cost. Point intervals keep exactly
  // one neighbor per nonempty sector (the classic Yao graph).
  for (std::size_t v = 1; v < n; ++v) {
    if (view.cost_min(0, v) <= sector_best_[sector_of_[v]]) {
      out.push_back(v);
    }
  }
}

KYaoProtocol::KYaoProtocol(int sectors, int per_sector)
    : sectors_(sectors), per_sector_(per_sector) {
  assert(sectors_ >= 1 && per_sector_ >= 1);
  std::ostringstream name;
  name << "Yao-" << sectors_ << "x" << per_sector_;
  display_name_ = name.str();
}

void KYaoProtocol::select(const ViewGraph& view,
                          std::vector<std::size_t>& out) const {
  out.clear();
  const std::size_t n = view.node_count();
  const geom::Vec2 origin = view.representative(0);
  // Bucket neighbors by sector, then keep the per_sector_ cheapest in each
  // (certain-cost ordering; under interval views a neighbor survives when
  // it could rank within the top per_sector_).
  sector_.resize(static_cast<std::size_t>(sectors_));
  for (auto& members : sector_) members.clear();
  for (std::size_t v = 1; v < n; ++v) {
    sector_[static_cast<std::size_t>(
                geom::yao_sector(origin, view.representative(v), sectors_))]
        .push_back(v);
  }
  for (auto& members : sector_) {
    if (members.size() > static_cast<std::size_t>(per_sector_)) {
      // The per_sector_-th smallest certain cost is the cut; keep every
      // member whose optimistic cost could beat it.
      costs_.clear();
      costs_.reserve(members.size());
      for (std::size_t v : members) costs_.push_back(view.cost_max(0, v));
      std::nth_element(costs_.begin(),
                       costs_.begin() + (per_sector_ - 1), costs_.end());
      const CostKey cut = costs_[static_cast<std::size_t>(per_sector_ - 1)];
      for (std::size_t v : members) {
        if (view.cost_min(0, v) <= cut) out.push_back(v);
      }
    } else {
      out.insert(out.end(), members.begin(), members.end());
    }
  }
  std::sort(out.begin(), out.end());
}

CbtcProtocol::CbtcProtocol(double rho) : rho_(rho) {
  assert(rho_ > 0.0 && rho_ <= 2.0 * std::numbers::pi);
}

void CbtcProtocol::select(const ViewGraph& view,
                          std::vector<std::size_t>& out) const {
  out.clear();
  const std::size_t n = view.node_count();
  const geom::Vec2 origin = view.representative(0);
  // Nearest-first growth until every cone of angle rho_ holds a neighbor.
  order_.clear();
  for (std::size_t v = 1; v < n; ++v) order_.push_back(v);
  std::sort(order_.begin(), order_.end(), [&](std::size_t a, std::size_t b) {
    return view.cost_min(0, a) < view.cost_min(0, b);
  });
  // Basic CBTC: the neighbor set is everything inside the grown radius —
  // the minimal nearest-first prefix achieving cone coverage. (Interior
  // nodes are kept; only the radius shrinks back to the coverage minimum.)
  directions_.clear();
  for (std::size_t v : order_) {
    out.push_back(v);
    directions_.push_back(view.representative(v));
    if (geom::cone_coverage_complete(origin, directions_.data(),
                                     static_cast<int>(directions_.size()),
                                     rho_)) {
      break;
    }
  }
  // Not covered => boundary node: keep everything it saw (already true,
  // since the loop consumed every neighbor).
  std::sort(out.begin(), out.end());
}

}  // namespace mstc::topology
