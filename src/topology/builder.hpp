// Whole-network topology construction from a position snapshot.
//
// Runs the per-node protocol over every node's (consistent) local view and
// assembles the paper's three topologies:
//   original  — links within the normal transmission range,
//   logical   — links kept by BOTH end nodes (Theorem 1's E' = E - ER,
//               where a link is removed if either end node removes it),
//   effective — logical links covered by both actual transmission ranges.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "topology/protocol.hpp"

namespace mstc::topology {

struct BuiltTopology {
  /// Per node: sorted global ids of the logical neighbors it selected.
  std::vector<std::vector<NodeId>> logical_neighbors;
  /// Per node: actual transmission range = distance to farthest logical
  /// neighbor (0 when a node selected none).
  std::vector<double> range;

  [[nodiscard]] bool selects(NodeId u, NodeId v) const;

  /// Average actual transmission range (Table 1's "transmission range").
  [[nodiscard]] double average_range() const;

  /// Average logical node degree under the both-ends rule (Table 1's
  /// "node degree").
  [[nodiscard]] double average_logical_degree() const;
};

/// Builds every node's selection from exact (consistent) views: node u's
/// view contains the nodes within `normal_range` of u. Positions index ==
/// global node id.
[[nodiscard]] BuiltTopology build_topology(std::span<const geom::Vec2> positions,
                                           double normal_range,
                                           const Protocol& protocol,
                                           const CostModel& cost);

/// The original topology: links no longer than `normal_range`, weighted by
/// distance.
[[nodiscard]] graph::Graph original_graph(std::span<const geom::Vec2> positions,
                                          double normal_range);

/// The logical topology E' (both-ends rule) over the same positions.
[[nodiscard]] graph::Graph logical_graph(const BuiltTopology& topo,
                                         std::span<const geom::Vec2> positions);

/// The effective topology at the given (possibly later) positions: logical
/// links (u, v) with current distance <= min(range_u + buffer, range_v +
/// buffer). `buffer` is the buffer-zone width l of Section 4.3.
[[nodiscard]] graph::Graph effective_graph(
    const BuiltTopology& topo, std::span<const geom::Vec2> current_positions,
    double buffer = 0.0);

}  // namespace mstc::topology
