// Local-MST protocol (link-removal condition 3).
//
// Remove (u, v) when the view contains a u-v path whose every link is
// cheaper than (u, v). By the cycle property this keeps exactly the edges
// incident to u in the MST of u's local view, i.e. Li-Hou-Sha LMST. The
// bottleneck formulation below handles interval costs directly: a path
// link counts as "certainly cheaper" when its cost_max is below the direct
// link's cost_min (enhanced condition 3).
#include "topology/protocol.hpp"

namespace mstc::topology {

std::vector<std::size_t> LmstProtocol::select(const ViewGraph& view) const {
  std::vector<std::size_t> logical;
  const std::size_t n = view.node_count();
  std::vector<char> reachable(n);
  std::vector<std::size_t> stack;
  for (std::size_t v = 1; v < n; ++v) {
    const CostKey direct = view.cost_min(0, v);
    // BFS from the owner over links with cost_max < direct. The direct
    // link itself never qualifies (cost_max >= cost_min), so paths found
    // are genuine multi-hop (or cheaper single-hop witness chains).
    std::fill(reachable.begin(), reachable.end(), 0);
    reachable[0] = 1;
    stack.assign(1, 0);
    bool removed = false;
    while (!stack.empty() && !removed) {
      const std::size_t a = stack.back();
      stack.pop_back();
      for (std::size_t b = 1; b < n; ++b) {
        if (reachable[b] || !view.has_link(a, b)) continue;
        if (view.cost_max(a, b) < direct) {
          if (b == v) {
            removed = true;
            break;
          }
          reachable[b] = 1;
          stack.push_back(b);
        }
      }
    }
    if (!removed) logical.push_back(v);
  }
  return logical;
}

}  // namespace mstc::topology
