// Local-MST protocol (link-removal condition 3).
//
// Remove (u, v) when the view contains a u-v path whose every link is
// cheaper than (u, v). By the cycle property this keeps exactly the edges
// incident to u in the MST of u's local view, i.e. Li-Hou-Sha LMST. The
// bottleneck formulation below handles interval costs directly: a path
// link counts as "certainly cheaper" when its cost_max is below the direct
// link's cost_min (enhanced condition 3).
#include <algorithm>

#include "topology/protocol.hpp"

namespace mstc::topology {

void LmstProtocol::select(const ViewGraph& view,
                          std::vector<std::size_t>& out) const {
  out.clear();
  const std::size_t n = view.node_count();
  reachable_.assign(n, 0);
  for (std::size_t v = 1; v < n; ++v) {
    const CostKey direct = view.cost_min(0, v);
    // BFS from the owner over links with cost_max < direct. The direct
    // link itself never qualifies (cost_max >= cost_min), so paths found
    // are genuine multi-hop (or cheaper single-hop witness chains).
    std::fill(reachable_.begin(), reachable_.end(), 0);
    reachable_[0] = 1;
    stack_.assign(1, 0);
    bool removed = false;
    while (!stack_.empty() && !removed) {
      const std::size_t a = stack_.back();
      stack_.pop_back();
      for (std::size_t b = 1; b < n; ++b) {
        if (reachable_[b] || !view.has_link(a, b)) continue;
        if (view.cost_max(a, b) < direct) {
          if (b == v) {
            removed = true;
            break;
          }
          reachable_[b] = 1;
          stack_.push_back(b);
        }
      }
    }
    if (!removed) out.push_back(v);
  }
}

}  // namespace mstc::topology
