// Weighted undirected graph with adjacency lists.
//
// Used for original / logical / effective topologies. Node ids are dense
// indices [0, node_count); edges carry a double weight (distance or energy
// cost depending on the protocol's cost model).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace mstc::graph {

using NodeId = std::size_t;

struct Edge {
  NodeId to = 0;
  double weight = 0.0;
};

struct EdgeRecord {
  NodeId u = 0;
  NodeId v = 0;
  double weight = 0.0;
};

class Graph {
 public:
  Graph() = default;
  explicit Graph(std::size_t node_count) : adjacency_(node_count) {}

  [[nodiscard]] std::size_t node_count() const noexcept {
    return adjacency_.size();
  }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edge_count_; }

  /// Adds an undirected edge. Duplicate edges are the caller's concern
  /// (topology builders never produce them).
  void add_edge(NodeId u, NodeId v, double weight = 1.0);

  /// Adds a directed arc u -> v (used for logical-neighbor digraphs before
  /// symmetrization).
  void add_arc(NodeId u, NodeId v, double weight = 1.0);

  [[nodiscard]] std::span<const Edge> neighbors(NodeId u) const noexcept {
    return adjacency_[u];
  }
  [[nodiscard]] std::size_t degree(NodeId u) const noexcept {
    return adjacency_[u].size();
  }

  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const noexcept;

  /// All edges with u < v (undirected view; a directed arc u->v without
  /// v->u is reported once with its endpoints ordered).
  [[nodiscard]] std::vector<EdgeRecord> edges() const;

  /// Average degree over all nodes (0 for the empty graph).
  [[nodiscard]] double average_degree() const noexcept;

 private:
  std::vector<std::vector<Edge>> adjacency_;
  std::size_t edge_count_ = 0;
};

}  // namespace mstc::graph
