// Uniform spatial hash grid for fixed-radius neighbor queries.
//
// The medium and topology builders repeatedly ask "which nodes are within
// range r of p?". A cell size equal to the query radius bounds the search
// to the 3x3 cell neighborhood, turning the O(n^2) scan into O(n + k).
//
// Ordering guarantee: query() emits indices in strictly ascending order.
// sim::Medium relies on this to produce receiver sets that are
// bit-identical to a brute-force ascending scan (see docs/PERFORMANCE.md),
// so it is a documented contract, not an implementation accident; the unit
// tests assert it without sorting the output first.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "geom/vec2.hpp"

namespace mstc::graph {

class SpatialGrid {
 public:
  /// Empty grid over no points; rebuild() before querying.
  SpatialGrid();

  /// Builds the grid over `positions` with cells of `cell_size` meters.
  /// cell_size should be >= the typical query radius for best performance
  /// (queries with larger radii are still correct, just slower).
  SpatialGrid(std::span<const geom::Vec2> positions, double cell_size);

  /// Rebuilds the grid over a new point set in place, reusing the CSR
  /// arrays' capacity. Repeated rebuilds over same-sized fleets allocate
  /// nothing once the buffers have grown to the fleet size — the medium
  /// rebuilds its index every time mobility slack exceeds its threshold,
  /// so this is a hot maintenance path.
  void rebuild(std::span<const geom::Vec2> positions, double cell_size);

  /// Indices of all points within `radius` of `center` (inclusive),
  /// appended to `out` (cleared first) in ascending index order.
  /// Self-inclusion is the caller's concern: a point at distance 0 is
  /// reported.
  void query(geom::Vec2 center, double radius,
             std::vector<std::size_t>& out) const;

  [[nodiscard]] std::size_t point_count() const noexcept {
    return positions_.size();
  }

 private:
  [[nodiscard]] std::size_t cell_index(long cx, long cy) const noexcept;

  std::vector<geom::Vec2> positions_;
  double cell_size_ = 1.0;
  long min_cx_ = 0;
  long min_cy_ = 0;
  long cols_ = 1;
  long rows_ = 1;
  // CSR layout: points of cell c are order_[start_[c] .. start_[c+1]).
  // Within a cell, order_ holds ascending indices (counting-sort fill in
  // index order); query() merges cells and restores global ascending order.
  std::vector<std::size_t> start_;
  std::vector<std::size_t> order_;
  // Rebuild scratch (per-point cell ids, per-cell write cursors), kept as
  // members so rebuild() is allocation-free at steady state.
  std::vector<std::size_t> cell_scratch_;
  std::vector<std::size_t> cursor_scratch_;
};

}  // namespace mstc::graph
