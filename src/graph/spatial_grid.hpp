// Uniform spatial hash grid for fixed-radius neighbor queries.
//
// The medium and topology builders repeatedly ask "which nodes are within
// range r of p?". A cell size equal to the query radius bounds the search
// to the 3x3 cell neighborhood, turning the O(n^2) scan into O(n + k).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "geom/vec2.hpp"

namespace mstc::graph {

class SpatialGrid {
 public:
  /// Builds the grid over `positions` with cells of `cell_size` meters.
  /// cell_size should be >= the typical query radius for best performance
  /// (queries with larger radii are still correct, just slower).
  SpatialGrid(std::span<const geom::Vec2> positions, double cell_size);

  /// Indices of all points within `radius` of `center` (inclusive),
  /// appended to `out` (cleared first). Self-inclusion is the caller's
  /// concern: a point at distance 0 is reported.
  void query(geom::Vec2 center, double radius,
             std::vector<std::size_t>& out) const;

  [[nodiscard]] std::size_t point_count() const noexcept {
    return positions_.size();
  }

 private:
  [[nodiscard]] std::size_t cell_index(long cx, long cy) const noexcept;

  std::vector<geom::Vec2> positions_;
  double cell_size_;
  long min_cx_ = 0;
  long min_cy_ = 0;
  long cols_ = 1;
  long rows_ = 1;
  // CSR layout: points of cell c are order_[start_[c] .. start_[c+1]).
  std::vector<std::size_t> start_;
  std::vector<std::size_t> order_;
};

}  // namespace mstc::graph
