#include "graph/spatial_grid.hpp"

#include <algorithm>
#include <cmath>

namespace mstc::graph {

SpatialGrid::SpatialGrid() { start_.assign(2, 0); }

SpatialGrid::SpatialGrid(std::span<const geom::Vec2> positions,
                         double cell_size) {
  rebuild(positions, cell_size);
}

void SpatialGrid::rebuild(std::span<const geom::Vec2> positions,
                          double cell_size) {
  positions_.assign(positions.begin(), positions.end());
  cell_size_ = cell_size > 0.0 ? cell_size : 1.0;
  min_cx_ = 0;
  min_cy_ = 0;
  cols_ = 1;
  rows_ = 1;
  order_.clear();
  if (positions_.empty()) {
    start_.assign(2, 0);
    return;
  }
  double min_x = positions_[0].x, max_x = positions_[0].x;
  double min_y = positions_[0].y, max_y = positions_[0].y;
  for (const auto& p : positions_) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  min_cx_ = static_cast<long>(std::floor(min_x / cell_size_));
  min_cy_ = static_cast<long>(std::floor(min_y / cell_size_));
  cols_ = static_cast<long>(std::floor(max_x / cell_size_)) - min_cx_ + 1;
  rows_ = static_cast<long>(std::floor(max_y / cell_size_)) - min_cy_ + 1;

  // Cap the table at O(n) cells: a cell size far below the mean node
  // spacing only multiplies the cells each query must walk (and, for a
  // degenerate cell size, the allocation below) without shrinking any
  // candidate set. Computed in double first — a tiny cell size over a
  // large span overflows the long product.
  const double requested =
      static_cast<double>(cols_) * static_cast<double>(rows_);
  const double cap = static_cast<double>(std::max<std::size_t>(
      4 * positions_.size(), std::size_t{64}));
  if (requested > cap) {
    cell_size_ *= std::sqrt(requested / cap);
    min_cx_ = static_cast<long>(std::floor(min_x / cell_size_));
    min_cy_ = static_cast<long>(std::floor(min_y / cell_size_));
    cols_ = static_cast<long>(std::floor(max_x / cell_size_)) - min_cx_ + 1;
    rows_ = static_cast<long>(std::floor(max_y / cell_size_)) - min_cy_ + 1;
  }

  const std::size_t cells = static_cast<std::size_t>(cols_ * rows_);
  cell_scratch_.resize(positions_.size());
  start_.assign(cells + 1, 0);
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    const long cx = static_cast<long>(std::floor(positions_[i].x / cell_size_));
    const long cy = static_cast<long>(std::floor(positions_[i].y / cell_size_));
    cell_scratch_[i] = cell_index(cx, cy);
    ++start_[cell_scratch_[i] + 1];
  }
  for (std::size_t c = 0; c < cells; ++c) start_[c + 1] += start_[c];
  order_.resize(positions_.size());
  cursor_scratch_.assign(start_.begin(), start_.end() - 1);
  // Filling in ascending i keeps every cell's slice of order_ ascending,
  // which query() relies on for its sorted-output guarantee.
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    order_[cursor_scratch_[cell_scratch_[i]]++] = i;
  }
}

std::size_t SpatialGrid::cell_index(long cx, long cy) const noexcept {
  const long col = std::clamp(cx - min_cx_, 0L, cols_ - 1);
  const long row = std::clamp(cy - min_cy_, 0L, rows_ - 1);
  return static_cast<std::size_t>(row * cols_ + col);
}

void SpatialGrid::query(geom::Vec2 center, double radius,
                        std::vector<std::size_t>& out) const {
  out.clear();
  if (positions_.empty()) return;
  const double r_sq = radius * radius;
  const long span = static_cast<long>(std::ceil(radius / cell_size_));
  const long ccx = static_cast<long>(std::floor(center.x / cell_size_));
  const long ccy = static_cast<long>(std::floor(center.y / cell_size_));
  const long lo_cx = std::max(ccx - span, min_cx_);
  const long hi_cx = std::min(ccx + span, min_cx_ + cols_ - 1);
  const long lo_cy = std::max(ccy - span, min_cy_);
  const long hi_cy = std::min(ccy + span, min_cy_ + rows_ - 1);
  for (long cy = lo_cy; cy <= hi_cy; ++cy) {
    for (long cx = lo_cx; cx <= hi_cx; ++cx) {
      const std::size_t cell = cell_index(cx, cy);
      for (std::size_t k = start_[cell]; k < start_[cell + 1]; ++k) {
        const std::size_t i = order_[k];
        if (geom::distance_sq(center, positions_[i]) <= r_sq) {
          out.push_back(i);
        }
      }
    }
  }
  // Hits arrive grouped by cell (ascending within each cell); restore the
  // documented global ascending-index order. The result set is small
  // (O(density * radius^2)), so this costs far less than the scan.
  std::sort(out.begin(), out.end());
}

}  // namespace mstc::graph
