// Graph algorithms shared by topology builders and metrics:
// connectivity, components, MST, shortest paths.
#pragma once

#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "graph/union_find.hpp"

namespace mstc::graph {

/// Component label per node (labels are dense, 0-based, in discovery order).
[[nodiscard]] std::vector<std::size_t> connected_components(const Graph& g);

/// True when the graph has exactly one connected component (the empty graph
/// and the single-node graph count as connected).
[[nodiscard]] bool is_connected(const Graph& g);

/// Fraction of ordered node pairs (u, v), u != v, that are connected;
/// 1.0 for a connected graph, and the paper's "strict connectivity ratio"
/// for a snapshot. Returns 1.0 for graphs with fewer than two nodes.
[[nodiscard]] double pair_connectivity_ratio(const Graph& g);

/// Same ratio over an explicit undirected link list, without materializing
/// a Graph: unites each link in `scratch` and sums s*(s-1) over component
/// sizes. The ratio is a pure function of the component partition, so this
/// returns the exact double pair_connectivity_ratio(Graph) would for the
/// graph those links induce — the snapshot fast path and routing::epidemic
/// rely on that bit-identity. `scratch` is reset to node_count sets.
[[nodiscard]] double pair_connectivity_ratio(
    std::size_t node_count, std::span<const std::pair<NodeId, NodeId>> links,
    UnionFind& scratch);

/// Set of nodes reachable from `source` (including the source).
[[nodiscard]] std::vector<NodeId> reachable_from(const Graph& g, NodeId source);

/// Vertex connectivity test for small k (supported: 1 <= k <= 3): the graph
/// stays connected after removing any k-1 vertices. Used by the
/// fault-tolerant topology-control extensions (Bahramgiri et al., FLSS).
/// Graphs with <= k vertices count as k-connected iff complete.
[[nodiscard]] bool is_k_connected(const Graph& g, std::size_t k);

/// Smallest node degree; an upper bound on vertex connectivity.
[[nodiscard]] std::size_t min_degree(const Graph& g);

/// Minimum spanning forest via Prim with a binary heap; returns parent[]
/// with parent[root] == root for each component root. Edge weights must be
/// the graph's weights.
[[nodiscard]] std::vector<NodeId> prim_mst_parents(const Graph& g,
                                                   NodeId root = 0);

/// Kruskal MST edge list over an explicit edge set (used by local MST
/// computations where the graph object is never materialized). Ties are
/// broken by (weight, u, v) so the result is unique for distinct weights.
[[nodiscard]] std::vector<EdgeRecord> kruskal_mst(std::size_t node_count,
                                                  std::vector<EdgeRecord> edges);

constexpr double kUnreachable = std::numeric_limits<double>::infinity();

struct ShortestPaths {
  std::vector<double> distance;  ///< kUnreachable when not reachable
  std::vector<NodeId> parent;    ///< parent[source] == source
};

/// Dijkstra from `source` with nonnegative weights.
[[nodiscard]] ShortestPaths dijkstra(const Graph& g, NodeId source);

}  // namespace mstc::graph
