// Disjoint-set forest with union by size and path halving.
#pragma once

#include <cstddef>
#include <numeric>
#include <vector>

namespace mstc::graph {

class UnionFind {
 public:
  /// Empty forest; reset() before use.
  UnionFind() = default;

  explicit UnionFind(std::size_t n) { reset(n); }

  /// Re-initializes to n singleton sets, reusing the arrays' capacity —
  /// allocation-free at steady state once the buffers have grown to the
  /// largest n seen (snapshot measurement resets one forest per tick).
  void reset(std::size_t n) {
    parent_.resize(n);
    size_.assign(n, 1);
    components_ = n;
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  [[nodiscard]] std::size_t find(std::size_t x) noexcept {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  /// Merges the sets of a and b; returns true if they were distinct.
  bool unite(std::size_t a, std::size_t b) noexcept {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    --components_;
    return true;
  }

  [[nodiscard]] bool connected(std::size_t a, std::size_t b) noexcept {
    return find(a) == find(b);
  }

  [[nodiscard]] std::size_t component_count() const noexcept {
    return components_;
  }

  [[nodiscard]] std::size_t component_size(std::size_t x) noexcept {
    return size_[find(x)];
  }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
  std::size_t components_ = 0;
};

}  // namespace mstc::graph
