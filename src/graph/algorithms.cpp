#include "graph/algorithms.hpp"

#include <algorithm>
#include <cassert>
#include <queue>

#include "graph/union_find.hpp"

namespace mstc::graph {

std::vector<std::size_t> connected_components(const Graph& g) {
  constexpr std::size_t kUnlabeled = static_cast<std::size_t>(-1);
  std::vector<std::size_t> label(g.node_count(), kUnlabeled);
  std::size_t next_label = 0;
  std::vector<NodeId> stack;
  for (NodeId start = 0; start < g.node_count(); ++start) {
    if (label[start] != kUnlabeled) continue;
    label[start] = next_label;
    stack.push_back(start);
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      for (const Edge& e : g.neighbors(u)) {
        if (label[e.to] == kUnlabeled) {
          label[e.to] = next_label;
          stack.push_back(e.to);
        }
      }
    }
    ++next_label;
  }
  return label;
}

bool is_connected(const Graph& g) {
  if (g.node_count() < 2) return true;
  const auto label = connected_components(g);
  return std::all_of(label.begin(), label.end(),
                     [](std::size_t l) { return l == 0; });
}

double pair_connectivity_ratio(const Graph& g) {
  const std::size_t n = g.node_count();
  if (n < 2) return 1.0;
  const auto label = connected_components(g);
  const std::size_t component_total =
      1 + *std::max_element(label.begin(), label.end());
  std::vector<std::size_t> size(component_total, 0);
  for (std::size_t l : label) ++size[l];
  std::size_t connected_pairs = 0;
  for (std::size_t s : size) connected_pairs += s * (s - 1);
  return static_cast<double>(connected_pairs) /
         static_cast<double>(n * (n - 1));
}

double pair_connectivity_ratio(
    std::size_t node_count, std::span<const std::pair<NodeId, NodeId>> links,
    UnionFind& scratch) {
  if (node_count < 2) return 1.0;
  scratch.reset(node_count);
  for (const auto& [u, v] : links) scratch.unite(u, v);
  std::size_t connected_pairs = 0;
  for (std::size_t u = 0; u < node_count; ++u) {
    if (scratch.find(u) == u) {  // component root: count its pairs once
      const std::size_t s = scratch.component_size(u);
      connected_pairs += s * (s - 1);
    }
  }
  return static_cast<double>(connected_pairs) /
         static_cast<double>(node_count * (node_count - 1));
}

std::vector<NodeId> reachable_from(const Graph& g, NodeId source) {
  std::vector<bool> seen(g.node_count(), false);
  std::vector<NodeId> order;
  seen[source] = true;
  order.push_back(source);
  for (std::size_t i = 0; i < order.size(); ++i) {
    for (const Edge& e : g.neighbors(order[i])) {
      if (!seen[e.to]) {
        seen[e.to] = true;
        order.push_back(e.to);
      }
    }
  }
  return order;
}

namespace {

/// Connectivity of g restricted to nodes where blocked[v] == 0.
bool connected_without(const Graph& g, const std::vector<char>& blocked) {
  const std::size_t n = g.node_count();
  NodeId start = n;
  std::size_t active = 0;
  for (NodeId u = 0; u < n; ++u) {
    if (!blocked[u]) {
      ++active;
      if (start == n) start = u;
    }
  }
  if (active <= 1) return true;
  std::vector<char> seen(n, 0);
  std::vector<NodeId> stack{start};
  seen[start] = 1;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    for (const Edge& e : g.neighbors(u)) {
      if (!seen[e.to] && !blocked[e.to]) {
        seen[e.to] = 1;
        ++visited;
        stack.push_back(e.to);
      }
    }
  }
  return visited == active;
}

}  // namespace

bool is_k_connected(const Graph& g, std::size_t k) {
  assert(k >= 1 && k <= 3 && "brute-force check supports k in 1..3");
  const std::size_t n = g.node_count();
  if (n <= k) {
    // Convention: tiny graphs are k-connected iff complete.
    for (NodeId u = 0; u < n; ++u) {
      if (g.degree(u) < n - 1) return false;
    }
    return true;
  }
  std::vector<char> blocked(n, 0);
  if (!connected_without(g, blocked)) return false;
  if (k == 1) return true;
  for (NodeId a = 0; a < n; ++a) {
    blocked[a] = 1;
    if (!connected_without(g, blocked)) return false;
    if (k == 3) {
      for (NodeId b = a + 1; b < n; ++b) {
        blocked[b] = 1;
        if (!connected_without(g, blocked)) return false;
        blocked[b] = 0;
      }
    }
    blocked[a] = 0;
  }
  return true;
}

std::size_t min_degree(const Graph& g) {
  std::size_t smallest = static_cast<std::size_t>(-1);
  for (NodeId u = 0; u < g.node_count(); ++u) {
    smallest = std::min(smallest, g.degree(u));
  }
  return g.node_count() == 0 ? 0 : smallest;
}

std::vector<NodeId> prim_mst_parents(const Graph& g, NodeId root) {
  const std::size_t n = g.node_count();
  std::vector<NodeId> parent(n);
  for (NodeId u = 0; u < n; ++u) parent[u] = u;
  if (n == 0) return parent;

  std::vector<double> best(n, kUnreachable);
  std::vector<bool> in_tree(n, false);
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  // Seed every component so a forest is produced on disconnected input.
  for (NodeId seed = 0; seed < n; ++seed) {
    const NodeId start = (seed == 0) ? root : seed;
    if (in_tree[start] || best[start] < kUnreachable) continue;
    best[start] = 0.0;
    heap.emplace(0.0, start);
    while (!heap.empty()) {
      const auto [cost, u] = heap.top();
      heap.pop();
      if (in_tree[u] || cost > best[u]) continue;
      in_tree[u] = true;
      for (const Edge& e : g.neighbors(u)) {
        if (!in_tree[e.to] && e.weight < best[e.to]) {
          best[e.to] = e.weight;
          parent[e.to] = u;
          heap.emplace(e.weight, e.to);
        }
      }
    }
  }
  return parent;
}

std::vector<EdgeRecord> kruskal_mst(std::size_t node_count,
                                    std::vector<EdgeRecord> edges) {
  std::sort(edges.begin(), edges.end(),
            [](const EdgeRecord& a, const EdgeRecord& b) {
              if (a.weight != b.weight) return a.weight < b.weight;
              if (a.u != b.u) return a.u < b.u;
              return a.v < b.v;
            });
  UnionFind forest(node_count);
  std::vector<EdgeRecord> tree;
  tree.reserve(node_count > 0 ? node_count - 1 : 0);
  for (const EdgeRecord& e : edges) {
    if (forest.unite(e.u, e.v)) tree.push_back(e);
  }
  return tree;
}

ShortestPaths dijkstra(const Graph& g, NodeId source) {
  const std::size_t n = g.node_count();
  ShortestPaths result{std::vector<double>(n, kUnreachable),
                       std::vector<NodeId>(n)};
  for (NodeId u = 0; u < n; ++u) result.parent[u] = u;
  result.distance[source] = 0.0;
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    const auto [dist, u] = heap.top();
    heap.pop();
    if (dist > result.distance[u]) continue;
    for (const Edge& e : g.neighbors(u)) {
      const double candidate = dist + e.weight;
      if (candidate < result.distance[e.to]) {
        result.distance[e.to] = candidate;
        result.parent[e.to] = u;
        heap.emplace(candidate, e.to);
      }
    }
  }
  return result;
}

}  // namespace mstc::graph
