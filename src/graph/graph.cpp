#include "graph/graph.hpp"

#include <algorithm>

namespace mstc::graph {

void Graph::add_edge(NodeId u, NodeId v, double weight) {
  adjacency_[u].push_back({v, weight});
  adjacency_[v].push_back({u, weight});
  ++edge_count_;
}

void Graph::add_arc(NodeId u, NodeId v, double weight) {
  adjacency_[u].push_back({v, weight});
}

bool Graph::has_edge(NodeId u, NodeId v) const noexcept {
  const auto& list = adjacency_[u];
  return std::any_of(list.begin(), list.end(),
                     [v](const Edge& e) { return e.to == v; });
}

std::vector<EdgeRecord> Graph::edges() const {
  std::vector<EdgeRecord> result;
  result.reserve(edge_count_);
  for (NodeId u = 0; u < adjacency_.size(); ++u) {
    for (const Edge& e : adjacency_[u]) {
      if (u < e.to) result.push_back({u, e.to, e.weight});
    }
  }
  return result;
}

double Graph::average_degree() const noexcept {
  if (adjacency_.empty()) return 0.0;
  std::size_t total = 0;
  for (const auto& list : adjacency_) total += list.size();
  return static_cast<double>(total) / static_cast<double>(adjacency_.size());
}

}  // namespace mstc::graph
