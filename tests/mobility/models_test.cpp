#include "mobility/models.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mstc::mobility {
namespace {

constexpr Area kArea{900.0, 900.0};

class ModelCase {
 public:
  ModelCase(std::string name, std::unique_ptr<MobilityModel> model,
            double expected_max_speed)
      : name_(std::move(name)),
        model_(std::move(model)),
        expected_max_speed_(expected_max_speed) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const MobilityModel& model() const { return *model_; }
  [[nodiscard]] double expected_max_speed() const {
    return expected_max_speed_;
  }

 private:
  std::string name_;
  std::unique_ptr<MobilityModel> model_;
  double expected_max_speed_;
};

std::shared_ptr<ModelCase> make_case(int index) {
  switch (index) {
    case 0:
      return std::make_shared<ModelCase>(
          "static", std::make_unique<StaticModel>(kArea), 0.0);
    case 1:
      return std::make_shared<ModelCase>(
          "waypoint", std::make_unique<RandomWaypoint>(kArea, 5.0, 15.0), 15.0);
    case 2:
      return std::make_shared<ModelCase>(
          "walk", std::make_unique<RandomWalk>(kArea, 10.0, 5.0), 10.0);
    case 3:
      // Gauss-Markov speed is unbounded in theory; allow generous slack.
      return std::make_shared<ModelCase>(
          "gauss_markov",
          std::make_unique<GaussMarkov>(kArea, 10.0, 0.8), 60.0);
    default:
      return nullptr;
  }
}

class MobilityModelTest : public ::testing::TestWithParam<int> {};

TEST_P(MobilityModelTest, TraceStaysInsideArea) {
  const auto test_case = make_case(GetParam());
  util::Xoshiro256 rng(101);
  for (int node = 0; node < 5; ++node) {
    const Trace trace = test_case->model().make_trace(rng, 60.0);
    for (double t = 0.0; t <= 60.0; t += 0.25) {
      const auto p = trace.position(t);
      EXPECT_GE(p.x, -1e-6) << test_case->name() << " t=" << t;
      EXPECT_LE(p.x, kArea.width + 1e-6) << test_case->name() << " t=" << t;
      EXPECT_GE(p.y, -1e-6) << test_case->name() << " t=" << t;
      EXPECT_LE(p.y, kArea.height + 1e-6) << test_case->name() << " t=" << t;
    }
  }
}

TEST_P(MobilityModelTest, MaxSpeedIsBounded) {
  const auto test_case = make_case(GetParam());
  util::Xoshiro256 rng(103);
  for (int node = 0; node < 5; ++node) {
    const Trace trace = test_case->model().make_trace(rng, 60.0);
    EXPECT_LE(trace.max_speed(), test_case->expected_max_speed() + 1e-9)
        << test_case->name();
  }
}

TEST_P(MobilityModelTest, PositionIsContinuous) {
  // No teleporting: displacement over dt never exceeds max_speed * dt.
  const auto test_case = make_case(GetParam());
  util::Xoshiro256 rng(107);
  const Trace trace = test_case->model().make_trace(rng, 60.0);
  constexpr double kDt = 0.1;
  for (double t = 0.0; t + kDt <= 60.0; t += kDt) {
    const double hop = geom::distance(trace.position(t), trace.position(t + kDt));
    EXPECT_LE(hop, trace.max_speed() * kDt + 1e-9)
        << test_case->name() << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, MobilityModelTest,
                         ::testing::Range(0, 4),
                         [](const auto& param_info) {
                           return make_case(param_info.param)->name();
                         });

TEST(RandomWaypoint, AverageSpeedNearConfigured) {
  // Time-weighted average speed of the paper config [0.5v, 1.5v] is the
  // harmonic mean over legs, somewhat below v; sanity check a broad band.
  util::Xoshiro256 rng(109);
  const auto model = make_paper_waypoint(kArea, 20.0);
  double distance_total = 0.0;
  const double duration = 500.0;
  for (int node = 0; node < 10; ++node) {
    const Trace trace = model->make_trace(rng, duration);
    for (double t = 0.0; t + 1.0 <= duration; t += 1.0) {
      distance_total +=
          geom::distance(trace.position(t), trace.position(t + 1.0));
    }
  }
  const double avg_speed = distance_total / (10.0 * (duration - 1.0));
  EXPECT_GT(avg_speed, 12.0);
  EXPECT_LT(avg_speed, 24.0);
}

TEST(RandomWaypoint, ZeroPauseNeverStops) {
  util::Xoshiro256 rng(113);
  const RandomWaypoint model(kArea, 10.0, 10.0, 0.0);
  const Trace trace = model.make_trace(rng, 120.0);
  for (const Leg& leg : trace.legs()) {
    EXPECT_GT(leg.velocity.norm(), 1e-9);
  }
}

TEST(RandomWaypoint, PauseInsertsZeroVelocityLegs) {
  util::Xoshiro256 rng(127);
  const RandomWaypoint model(kArea, 10.0, 10.0, 2.0);
  const Trace trace = model.make_trace(rng, 300.0);
  bool saw_pause = false;
  for (const Leg& leg : trace.legs()) {
    saw_pause |= (leg.velocity.norm() < 1e-12);
  }
  EXPECT_TRUE(saw_pause);
}

TEST(GenerateTraces, DeterministicAndPrefixStable) {
  const StaticModel model(kArea);
  const auto a = generate_traces(model, 10, 60.0, 42);
  const auto b = generate_traces(model, 10, 60.0, 42);
  const auto c = generate_traces(model, 20, 60.0, 42);
  const auto d = generate_traces(model, 10, 60.0, 43);
  ASSERT_EQ(a.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(a[i].position(0.0), b[i].position(0.0));
    // Trace i does not depend on the total node count.
    EXPECT_EQ(a[i].position(0.0), c[i].position(0.0));
  }
  // Different base seed yields different placements (with high probability).
  int moved = 0;
  for (std::size_t i = 0; i < 10; ++i) {
    moved += (a[i].position(0.0) == d[i].position(0.0)) ? 0 : 1;
  }
  EXPECT_GT(moved, 5);
}

}  // namespace
}  // namespace mstc::mobility
