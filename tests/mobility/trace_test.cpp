#include "mobility/trace.hpp"

#include <gtest/gtest.h>

namespace mstc::mobility {
namespace {

using geom::Vec2;

TEST(Trace, SingleStaticLeg) {
  const Trace trace({Leg{0.0, {5.0, 5.0}, {0.0, 0.0}}}, 10.0);
  EXPECT_EQ(trace.position(0.0), (Vec2{5.0, 5.0}));
  EXPECT_EQ(trace.position(7.3), (Vec2{5.0, 5.0}));
  EXPECT_DOUBLE_EQ(trace.max_speed(), 0.0);
}

TEST(Trace, LinearMotion) {
  const Trace trace({Leg{0.0, {0.0, 0.0}, {2.0, 1.0}}}, 10.0);
  EXPECT_EQ(trace.position(3.0), (Vec2{6.0, 3.0}));
  EXPECT_DOUBLE_EQ(trace.max_speed(), std::sqrt(5.0));
}

TEST(Trace, MultiLegSwitchesAtBoundaries) {
  const Trace trace(
      {
          Leg{0.0, {0.0, 0.0}, {1.0, 0.0}},   // reaches (5,0) at t=5
          Leg{5.0, {5.0, 0.0}, {0.0, 2.0}},   // reaches (5,6) at t=8
          Leg{8.0, {5.0, 6.0}, {0.0, 0.0}},
      },
      12.0);
  EXPECT_EQ(trace.position(2.0), (Vec2{2.0, 0.0}));
  EXPECT_EQ(trace.position(5.0), (Vec2{5.0, 0.0}));
  EXPECT_EQ(trace.position(6.5), (Vec2{5.0, 3.0}));
  EXPECT_EQ(trace.position(9.0), (Vec2{5.0, 6.0}));
}

TEST(Trace, ClampsOutsideDuration) {
  const Trace trace({Leg{0.0, {0.0, 0.0}, {1.0, 0.0}}}, 4.0);
  EXPECT_EQ(trace.position(-1.0), (Vec2{0.0, 0.0}));
  EXPECT_EQ(trace.position(100.0), (Vec2{4.0, 0.0}));
}

TEST(Trace, OutOfOrderQueriesAreCorrect) {
  // The internal cursor must not corrupt results when time goes backwards.
  const Trace trace(
      {Leg{0.0, {0.0, 0.0}, {1.0, 0.0}}, Leg{5.0, {5.0, 0.0}, {-1.0, 0.0}}},
      10.0);
  EXPECT_EQ(trace.position(7.0), (Vec2{3.0, 0.0}));
  EXPECT_EQ(trace.position(1.0), (Vec2{1.0, 0.0}));
  EXPECT_EQ(trace.position(9.0), (Vec2{1.0, 0.0}));
  EXPECT_EQ(trace.position(0.0), (Vec2{0.0, 0.0}));
}

TEST(Trace, DisplacementBound) {
  const Trace trace({Leg{0.0, {0.0, 0.0}, {3.0, 4.0}}}, 10.0);
  EXPECT_DOUBLE_EQ(trace.displacement_bound(2.0, 4.0), 10.0);
  // Actual displacement never exceeds the bound.
  const double actual =
      geom::distance(trace.position(2.0), trace.position(4.0));
  EXPECT_LE(actual, trace.displacement_bound(2.0, 4.0) + 1e-12);
}

TEST(Area, Contains) {
  const Area area{900.0, 600.0};
  EXPECT_TRUE(area.contains({0.0, 0.0}));
  EXPECT_TRUE(area.contains({900.0, 600.0}));
  EXPECT_FALSE(area.contains({-0.1, 10.0}));
  EXPECT_FALSE(area.contains({10.0, 600.1}));
}

}  // namespace
}  // namespace mstc::mobility
