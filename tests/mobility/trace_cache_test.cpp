#include "mobility/trace_cache.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>

#include "mobility/models.hpp"

namespace mstc::mobility {
namespace {

TraceKey key_for(std::uint64_t seed, std::size_t nodes = 10) {
  return TraceKey{.model = "waypoint",
                  .area_width = 900.0,
                  .area_height = 900.0,
                  .average_speed = 10.0,
                  .node_count = nodes,
                  .duration = 5.0,
                  .seed = seed};
}

TraceSet generate_for(const TraceKey& key) {
  const auto model = make_paper_waypoint(
      {key.area_width, key.area_height}, key.average_speed);
  return generate_traces(*model, key.node_count, key.duration, key.seed);
}

TEST(TraceCache, SecondGetForSameKeyReturnsSameSetWithoutGenerating) {
  TraceCache cache;
  const TraceKey key = key_for(1);
  bool generated = false;
  const auto first = cache.get(key, [&] { return generate_for(key); },
                               &generated);
  EXPECT_TRUE(generated);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->size(), key.node_count);

  const auto second = cache.get(
      key, [&]() -> TraceSet { ADD_FAILURE() << "generator re-ran on a hit";
                               return {}; },
      &generated);
  EXPECT_FALSE(generated);
  EXPECT_EQ(first, second) << "hit did not return the shared set";
  EXPECT_EQ(cache.size(), 1u);
}

TEST(TraceCache, DistinctKeysGetDistinctSets) {
  TraceCache cache;
  const TraceKey a = key_for(1);
  // Every field participates in the key; a one-field difference must miss.
  TraceKey b = a;
  b.duration = 6.0;
  const auto set_a = cache.get(a, [&] { return generate_for(a); });
  const auto set_b = cache.get(b, [&] { return generate_for(b); });
  EXPECT_NE(set_a, set_b);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(TraceCache, EvictionKeepsHandedOutSetsAlive) {
  TraceCache cache(2);
  const TraceKey first_key = key_for(1);
  const auto first = cache.get(first_key,
                               [&] { return generate_for(first_key); });
  for (std::uint64_t seed = 2; seed <= 4; ++seed) {
    const TraceKey key = key_for(seed);
    (void)cache.get(key, [&] { return generate_for(key); });
  }
  EXPECT_EQ(cache.size(), 2u) << "FIFO eviction did not bound the cache";
  // The evicted set stays valid for as long as we hold the shared_ptr.
  EXPECT_EQ(first->size(), first_key.node_count);

  // Re-getting the evicted key regenerates (a miss, not a stale hit).
  bool generated = false;
  const auto again = cache.get(first_key,
                               [&] { return generate_for(first_key); },
                               &generated);
  EXPECT_TRUE(generated);
  // Regeneration is pure in the key: same trajectories, new allocation.
  ASSERT_EQ(again->size(), first->size());
  for (std::size_t i = 0; i < first->size(); ++i) {
    const geom::Vec2 a = (*first)[i].position(3.25);
    const geom::Vec2 b = (*again)[i].position(3.25);
    EXPECT_EQ(a.x, b.x);
    EXPECT_EQ(a.y, b.y);
  }
}

TEST(TraceCache, ClearEmptiesTheCache) {
  TraceCache cache;
  const TraceKey key = key_for(1);
  const auto held = cache.get(key, [&] { return generate_for(key); });
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(held->size(), key.node_count);  // handed-out sets survive clear()

  bool generated = false;
  (void)cache.get(key, [&] { return generate_for(key); }, &generated);
  EXPECT_TRUE(generated);
}

TEST(TraceCache, GlobalIsASingleton) {
  EXPECT_EQ(&TraceCache::global(), &TraceCache::global());
}

}  // namespace
}  // namespace mstc::mobility
