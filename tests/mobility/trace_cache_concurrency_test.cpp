// Executable form of the "shared traces are safe" invariant (ctest label
// "concurrency", part of the TSan subset).
//
// PR 5 moved the Trace leg cursor into per-Medium state precisely so one
// generated TraceSet can back many concurrent replications. This test is
// the proof: N pool tasks race get() on one key (single-flight must elect
// exactly one generator), then every task drives its *own* Medium over the
// *same* shared TraceSet simultaneously. Under TSan this demonstrates that
// shared traces involve no mutation; the checksum compare demonstrates the
// shared-set results are byte-identical to a privately generated set.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "mobility/models.hpp"
#include "mobility/trace_cache.hpp"
#include "sim/medium.hpp"
#include "util/thread_pool.hpp"

namespace mstc::mobility {
namespace {

constexpr std::uint64_t kSeed = 19930824;
constexpr std::size_t kNodes = 60;
constexpr double kDuration = 10.0;
constexpr double kRange = 220.0;

TraceKey test_key() {
  return TraceKey{.model = "waypoint",
                  .area_width = 900.0,
                  .area_height = 900.0,
                  .average_speed = 20.0,
                  .node_count = kNodes,
                  .duration = kDuration,
                  .seed = kSeed};
}

TraceSet generate() {
  const auto model = make_paper_waypoint({900.0, 900.0}, 20.0);
  return generate_traces(*model, kNodes, kDuration, kSeed);
}

/// Order-sensitive FNV-1a checksum of every receiver set the medium
/// reports over a time sweep — the cursor fast path is exercised by the
/// increasing query times.
std::uint64_t medium_checksum(const TraceSet& traces) {
  const sim::Medium medium(traces, {.grid_min_nodes = 0});
  std::uint64_t hash = 1469598103934665603ull;
  const auto fold = [&hash](std::uint64_t value) {
    hash ^= value;
    hash *= 1099511628211ull;
  };
  std::vector<sim::NodeId> out;
  for (double t = 0.0; t <= kDuration; t += 0.25) {
    for (sim::NodeId u = 0; u < medium.node_count(); ++u) {
      medium.receivers(u, kRange, t, out);
      fold(out.size());
      for (const sim::NodeId v : out) fold(v);
    }
  }
  return hash;
}

TEST(TraceCacheConcurrency, SharedTraceSetIsRaceFreeAcrossMediums) {
  const std::uint64_t reference = medium_checksum(generate());

  TraceCache cache;
  constexpr std::size_t kTasks = 8;
  std::atomic<std::size_t> generations{0};
  std::vector<std::shared_ptr<const TraceSet>> sets(kTasks);
  std::vector<std::uint64_t> checksums(kTasks, 0);

  util::ThreadPool pool(4);
  util::parallel_for(pool, kTasks, [&](std::size_t i) {
    bool generated = false;
    sets[i] = cache.get(test_key(),
                        [&] {
                          generations.fetch_add(1);
                          return generate();
                        },
                        &generated);
    // Every task reads the shared legs concurrently through its own Medium
    // (and its own per-Medium cursors) — the TSan payload of this test.
    checksums[i] = medium_checksum(*sets[i]);
  });

  EXPECT_EQ(generations.load(), 1u)
      << "single-flight elected more than one generator";
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(sets[i], sets[0]) << "task " << i << " got a private set";
    EXPECT_EQ(checksums[i], reference)
        << "task " << i << " diverged from the privately generated set";
  }
}

}  // namespace
}  // namespace mstc::mobility
