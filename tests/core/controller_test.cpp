#include "core/controller.hpp"

#include <gtest/gtest.h>

#include "core/effective.hpp"

namespace mstc::core {
namespace {

using geom::Vec2;

HelloRecord hello(NodeId sender, Vec2 p, std::uint64_t version, double time) {
  return HelloRecord{sender, {p, version, time}};
}

class ControllerTest : public ::testing::Test {
 protected:
  topology::DistanceCost cost_;
  topology::LmstProtocol mst_;
};

TEST_F(ControllerTest, HelloSendRecordsOwnPositionAndSelects) {
  ControllerConfig config;
  NodeController node(0, mst_, cost_, config);
  node.on_hello_receive(hello(1, {5.0, 0.0}, 1, 0.1), 0.1);
  const auto sent = node.on_hello_send(0.5, {0.0, 0.0}, 1);
  EXPECT_EQ(sent.sender, 0u);
  EXPECT_EQ(sent.version(), 1u);
  EXPECT_EQ(node.logical_neighbors(), (std::vector<NodeId>{1}));
  EXPECT_TRUE(node.is_logical(1));
  EXPECT_FALSE(node.is_logical(2));
  EXPECT_NEAR(node.actual_range(), 5.0, 1e-6);
  EXPECT_EQ(node.hello_count(), 1u);
}

TEST_F(ControllerTest, ExtendedRangeAddsBufferWidth) {
  ControllerConfig config;
  config.normal_range = 250.0;
  config.buffer.width = 30.0;
  NodeController node(0, mst_, cost_, config);
  node.on_hello_receive(hello(1, {240.0, 0.0}, 1, 0.1), 0.1);
  node.on_hello_send(0.5, {0.0, 0.0}, 1);
  EXPECT_NEAR(node.actual_range(), 240.0, 1e-6);
  EXPECT_NEAR(node.extended_range(), 270.0, 1e-6)
      << "r + l may exceed the normal range (Theorem 5)";
  node.on_hello_receive(hello(1, {100.0, 0.0}, 2, 1.1), 1.1);
  node.on_hello_send(1.5, {0.0, 0.0}, 2);
  EXPECT_NEAR(node.extended_range(), 130.0, 1e-6);
}

TEST_F(ControllerTest, LogicalNeighborsAreSortedAscending) {
  // Documented contract of logical_neighbors(): sorted ascending, whatever
  // order Hellos arrive in and wherever the owner's id falls in the fleet.
  // is_logical() binary-searches the vector, so breaking sortedness makes
  // membership tests silently wrong rather than failing loudly.
  const topology::NoneProtocol keep_all;
  NodeController node(50, keep_all, cost_, ControllerConfig{});
  const std::vector<NodeId> arrival_order{90, 10, 70, 30, 60, 20};
  double t = 0.1;
  for (NodeId sender : arrival_order) {
    node.on_hello_receive(hello(sender, {1.0 + 0.1 * t, 2.0}, 1, t), t);
    t += 0.1;
  }
  node.on_hello_send(t, {0.0, 0.0}, 1);

  EXPECT_EQ(node.logical_neighbors(),
            (std::vector<NodeId>{10, 20, 30, 60, 70, 90}));
  for (NodeId sender : arrival_order) EXPECT_TRUE(node.is_logical(sender));
  EXPECT_FALSE(node.is_logical(50));  // the owner is never its own neighbor
  EXPECT_FALSE(node.is_logical(40));
}

TEST_F(ControllerTest, NoNeighborsMeansZeroRange) {
  NodeController node(0, mst_, cost_, ControllerConfig{});
  node.on_hello_send(0.5, {0.0, 0.0}, 1);
  EXPECT_TRUE(node.logical_neighbors().empty());
  EXPECT_DOUBLE_EQ(node.extended_range(), 0.0);
}

TEST_F(ControllerTest, StaleNeighborsExpireOutOfSelection) {
  ControllerConfig config;
  config.view_expiry = 2.0;
  NodeController node(0, mst_, cost_, config);
  node.on_hello_receive(hello(1, {5.0, 0.0}, 1, 0.1), 0.1);
  node.on_hello_send(0.5, {0.0, 0.0}, 1);
  EXPECT_FALSE(node.logical_neighbors().empty());
  node.on_hello_send(5.0, {0.0, 0.0}, 2);  // neighbor last heard 4.9 s ago
  EXPECT_TRUE(node.logical_neighbors().empty());
}

TEST_F(ControllerTest, VersionedRefreshKeepsPriorSelectionWhenMissing) {
  ControllerConfig config;
  config.mode = ConsistencyMode::kProactive;
  config.history_limit = 3;
  NodeController node(0, mst_, cost_, config);
  node.on_hello_receive(hello(1, {5.0, 0.0}, 0, 0.1), 0.1);
  node.on_hello_send(0.2, {0.0, 0.0}, 0);   // version 0: no v-1 to decide on
  node.on_hello_send(1.2, {0.0, 0.0}, 1);   // decides with version 0
  EXPECT_EQ(node.logical_neighbors(), (std::vector<NodeId>{1}));
  // A refresh pinned to a version nobody advertised is a no-op.
  node.refresh_selection_versioned(2.0, 77);
  EXPECT_EQ(node.logical_neighbors(), (std::vector<NodeId>{1}));
}

TEST_F(ControllerTest, WeakModeUsesIntervalRange) {
  // Under weak consistency the range covers every stored position of the
  // selected neighbor (conservative decision, Section 4.2).
  ControllerConfig config;
  config.mode = ConsistencyMode::kWeak;
  config.history_limit = 2;
  NodeController node(0, mst_, cost_, config);
  node.on_hello_receive(hello(1, {4.0, 0.0}, 1, 0.1), 0.1);
  node.on_hello_receive(hello(1, {6.0, 0.0}, 2, 1.1), 1.1);
  node.on_hello_send(1.5, {0.0, 0.0}, 1);
  EXPECT_EQ(node.logical_neighbors(), (std::vector<NodeId>{1}));
  EXPECT_NEAR(node.actual_range(), 6.0, 1e-6);
}

TEST(CanDeliver, RequiresRangeAndLogicalOrPn) {
  const topology::DistanceCost cost;
  const topology::NoneProtocol none;
  ControllerConfig plain;
  ControllerConfig pn;
  pn.accept_physical_neighbors = true;

  NodeController sender(0, none, cost, plain);
  sender.on_hello_receive({1, {{5.0, 0.0}, 1, 0.1}}, 0.1);
  sender.on_hello_send(0.5, {0.0, 0.0}, 1);  // logical = {1}, range 5

  NodeController receiver_plain(1, none, cost, plain);
  NodeController receiver_pn(2, none, cost, pn);

  EXPECT_TRUE(can_deliver(sender, receiver_plain, 4.0));
  EXPECT_FALSE(can_deliver(sender, receiver_plain, 6.0)) << "out of range";
  // Node 2 is not in the sender's logical set: dropped unless PN.
  EXPECT_TRUE(can_deliver(sender, receiver_pn, 4.0));
  NodeController receiver2_plain(2, none, cost, plain);
  EXPECT_FALSE(can_deliver(sender, receiver2_plain, 4.0));
}

TEST(EffectiveSnapshot, MutualLogicalLinksWithinRange) {
  const topology::DistanceCost cost;
  const topology::NoneProtocol none;
  ControllerConfig config;
  std::vector<NodeController> nodes;
  nodes.emplace_back(0, none, cost, config);
  nodes.emplace_back(1, none, cost, config);
  nodes.emplace_back(2, none, cost, config);
  const std::vector<Vec2> positions = {{0, 0}, {10, 0}, {300, 0}};
  // 0 and 1 hear each other; 2 is isolated (never heard, empty logical set).
  nodes[0].on_hello_receive({1, {{10, 0}, 1, 0.1}}, 0.1);
  nodes[1].on_hello_receive({0, {{0, 0}, 1, 0.1}}, 0.1);
  nodes[0].on_hello_send(0.5, positions[0], 1);
  nodes[1].on_hello_send(0.5, positions[1], 1);
  nodes[2].on_hello_send(0.5, positions[2], 1);
  const auto g = effective_snapshot(nodes, positions);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_EQ(g.edge_count(), 1u);
}

}  // namespace
}  // namespace mstc::core
