// Recompute-cache fingerprint suite.
//
// The controller skips the protocol run when the selection's exact inputs
// — member ids and raw position bits, post-expiry — match the previous
// refresh. These tests pin the invalidation contract: every event that can
// change the assembled view (a Hello advertising a moved position, a
// neighbor expiring, the history window rotating, the owner moving) must
// force a recompute, while a byte-identical store must skip. Counted via
// the topology_recomputes / topology_recompute_skips probe counters.
#include <gtest/gtest.h>

#include "core/controller.hpp"
#include "obs/probe.hpp"

namespace mstc::core {
namespace {

using geom::Vec2;

HelloRecord hello(NodeId sender, Vec2 p, std::uint64_t version, double time) {
  return HelloRecord{sender, {p, version, time}};
}

class RecomputeCacheTest : public ::testing::Test {
 protected:
  [[nodiscard]] std::uint64_t recomputes() const {
    return observation_.counters.total(obs::Counter::kTopologyRecomputes);
  }
  [[nodiscard]] std::uint64_t skips() const {
    return observation_.counters.total(obs::Counter::kTopologyRecomputeSkips);
  }

  topology::DistanceCost cost_;
  topology::RngProtocol rng_;
  obs::RunObservation observation_;
  obs::Probe probe_{&observation_};
};

TEST_F(RecomputeCacheTest, UnchangedStoreSkipsAndPreservesSelection) {
  NodeController node(0, rng_, cost_, ControllerConfig{});
  node.attach_probe(&probe_);
  node.on_hello_receive(hello(1, {5.0, 0.0}, 1, 0.1), 0.1);
  node.on_hello_send(0.2, {0.0, 0.0}, 1);
  ASSERT_EQ(recomputes(), 1u);
  ASSERT_EQ(skips(), 0u);
  const auto logical = node.logical_neighbors();
  const double range = node.actual_range();

  // Nothing recorded in between: both refreshes must hit the cache and
  // leave the published selection bit-identical.
  node.refresh_selection(0.3);
  node.refresh_selection(0.4);
  EXPECT_EQ(recomputes(), 1u);
  EXPECT_EQ(skips(), 2u);
  EXPECT_EQ(node.logical_neighbors(), logical);
  EXPECT_DOUBLE_EQ(node.actual_range(), range);
}

TEST_F(RecomputeCacheTest, NewVersionWithSamePositionBitsStillSkips) {
  // The fingerprint covers position bits, not versions: a static neighbor
  // re-advertising the same coordinates must not bust the cache (this is
  // what makes static fleets skip ~100% of refreshes).
  NodeController node(0, rng_, cost_, ControllerConfig{});
  node.attach_probe(&probe_);
  node.on_hello_receive(hello(1, {5.0, 0.0}, 1, 0.1), 0.1);
  node.on_hello_send(0.2, {0.0, 0.0}, 1);
  node.on_hello_receive(hello(1, {5.0, 0.0}, 2, 1.1), 1.1);
  node.on_hello_send(1.2, {0.0, 0.0}, 2);  // own bits unchanged too
  EXPECT_EQ(recomputes(), 1u);
  EXPECT_EQ(skips(), 1u);
}

TEST_F(RecomputeCacheTest, MovedNeighborForcesRecompute) {
  NodeController node(0, rng_, cost_, ControllerConfig{});
  node.attach_probe(&probe_);
  node.on_hello_receive(hello(1, {5.0, 0.0}, 1, 0.1), 0.1);
  node.on_hello_send(0.2, {0.0, 0.0}, 1);
  ASSERT_EQ(recomputes(), 1u);

  node.on_hello_receive(hello(1, {7.0, 0.0}, 2, 1.1), 1.1);
  node.refresh_selection(1.2);
  EXPECT_EQ(recomputes(), 2u);
  EXPECT_EQ(skips(), 0u);
  EXPECT_NEAR(node.actual_range(), 7.0, 1e-6);
}

TEST_F(RecomputeCacheTest, NeighborExpiryForcesRecompute) {
  ControllerConfig config;
  config.view_expiry = 2.0;
  NodeController node(0, rng_, cost_, config);
  node.attach_probe(&probe_);
  node.on_hello_receive(hello(1, {5.0, 0.0}, 1, 0.1), 0.1);
  node.on_hello_send(0.2, {0.0, 0.0}, 1);
  ASSERT_EQ(node.logical_neighbors(), (std::vector<NodeId>{1}));
  ASSERT_EQ(recomputes(), 1u);

  // The neighbor ages out; the key (member set) changes, so the refresh
  // must recompute and drop it — a skip here would publish a stale link.
  node.refresh_selection(5.0);
  EXPECT_EQ(recomputes(), 2u);
  EXPECT_EQ(skips(), 0u);
  EXPECT_TRUE(node.logical_neighbors().empty());
}

TEST_F(RecomputeCacheTest, HistoryRotationForcesRecomputeInWeakMode) {
  ControllerConfig config;
  config.mode = ConsistencyMode::kWeak;
  config.history_limit = 2;
  NodeController node(0, rng_, cost_, config);
  node.attach_probe(&probe_);
  node.on_hello_receive(hello(1, {4.0, 0.0}, 1, 0.1), 0.1);
  node.on_hello_receive(hello(1, {6.0, 0.0}, 2, 1.1), 1.1);
  node.on_hello_send(1.2, {0.0, 0.0}, 1);
  ASSERT_EQ(recomputes(), 1u);
  ASSERT_NEAR(node.actual_range(), 6.0, 1e-6);  // interval covers {4, 6}

  // A third record pushes {4.0, 0.0} out of the window: even though the
  // newest two positions include one already seen, the stored set — and
  // hence the interval view — changed, so the cache must miss.
  node.on_hello_receive(hello(1, {6.0, 0.0}, 3, 2.1), 2.1);
  node.on_hello_send(2.2, {0.0, 0.0}, 2);
  EXPECT_EQ(recomputes(), 2u);
  EXPECT_NEAR(node.actual_range(), 6.0, 1e-6);  // interval now {6, 6}
}

TEST_F(RecomputeCacheTest, OwnerPositionChangeForcesRecompute) {
  NodeController node(0, rng_, cost_, ControllerConfig{});
  node.attach_probe(&probe_);
  node.on_hello_receive(hello(1, {5.0, 0.0}, 1, 0.1), 0.1);
  node.on_hello_send(0.2, {0.0, 0.0}, 1);
  ASSERT_EQ(recomputes(), 1u);

  node.on_hello_send(1.2, {1.0, 0.0}, 2);  // the owner itself moved
  EXPECT_EQ(recomputes(), 2u);
  EXPECT_EQ(skips(), 0u);
  EXPECT_NEAR(node.actual_range(), 4.0, 1e-6);
}

TEST_F(RecomputeCacheTest, CacheOffRecomputesEveryRefresh) {
  ControllerConfig config;
  config.recompute_cache = false;
  NodeController node(0, rng_, cost_, config);
  node.attach_probe(&probe_);
  node.on_hello_receive(hello(1, {5.0, 0.0}, 1, 0.1), 0.1);
  node.on_hello_send(0.2, {0.0, 0.0}, 1);
  node.refresh_selection(0.3);
  node.refresh_selection(0.4);
  EXPECT_EQ(recomputes(), 3u);
  EXPECT_EQ(skips(), 0u);
  EXPECT_EQ(node.logical_neighbors(), (std::vector<NodeId>{1}));
}

TEST_F(RecomputeCacheTest, VersionedRefreshSkipsOnIdenticalPinnedInputs) {
  ControllerConfig config;
  config.mode = ConsistencyMode::kProactive;
  config.history_limit = 3;
  NodeController node(0, rng_, cost_, config);
  node.attach_probe(&probe_);
  node.on_hello_receive(hello(1, {5.0, 0.0}, 0, 0.1), 0.1);
  node.on_hello_send(0.2, {0.0, 0.0}, 0);  // version 0: nothing to decide
  node.on_hello_send(1.2, {0.0, 0.0}, 1);  // decides pinned to version 0
  ASSERT_EQ(recomputes(), 1u);

  // Same pinned version, unchanged store: skip. A missing version stays a
  // no-op and must not touch the counters or the cached key.
  node.refresh_selection_versioned(1.3, 0);
  EXPECT_EQ(recomputes(), 1u);
  EXPECT_EQ(skips(), 1u);
  node.refresh_selection_versioned(1.4, 77);
  EXPECT_EQ(recomputes(), 1u);
  EXPECT_EQ(skips(), 1u);
  node.refresh_selection_versioned(1.5, 0);
  EXPECT_EQ(skips(), 2u);
  EXPECT_EQ(node.logical_neighbors(), (std::vector<NodeId>{1}));
}

TEST_F(RecomputeCacheTest, LowSkipRateBypassesCacheAfterWarmup) {
  // Mobile-fleet shape: every refresh misses (the neighbor moves), so once
  // the warmup floor is reached the bypass must disengage the cache — a
  // subsequent byte-identical refresh recomputes instead of probing. The
  // decision is taken at every probe past the floor, not only when the
  // count hits it exactly, so short runs that overshoot still decide.
  ControllerConfig config;
  config.recompute_cache_min_skip_rate = 0.5;
  NodeController node(0, rng_, cost_, config);
  node.attach_probe(&probe_);
  double t = 0.1;
  std::uint64_t version = 1;
  node.on_hello_receive(hello(1, {5.0, 0.0}, version, t), t);
  node.on_hello_send(t + 0.05, {0.0, 0.0}, version);
  for (std::uint32_t i = 0; i < kRecomputeCacheWarmup + 5; ++i) {
    t += 1.0;
    ++version;
    node.on_hello_receive(
        hello(1, {5.0 + 0.001 * (i + 1), 0.0}, version, t), t);
    node.refresh_selection(t + 0.05);
  }
  ASSERT_EQ(skips(), 0u);
  const std::uint64_t before = recomputes();
  // Nothing changed in the store: a probing cache would skip both of
  // these; a bypassed cache recomputes.
  node.refresh_selection(t + 0.1);
  node.refresh_selection(t + 0.2);
  EXPECT_EQ(skips(), 0u);
  EXPECT_EQ(recomputes(), before + 2);
}

TEST_F(RecomputeCacheTest, HighSkipRateKeepsCacheEngagedPastWarmup) {
  // Static-fleet shape: everything after the first refresh skips, so the
  // cumulative skip rate stays far above any sane floor and the cache
  // keeps probing (and skipping) long past the warmup window.
  ControllerConfig config;
  config.recompute_cache_min_skip_rate = 0.02;
  NodeController node(0, rng_, cost_, config);
  node.attach_probe(&probe_);
  node.on_hello_receive(hello(1, {5.0, 0.0}, 1, 0.1), 0.1);
  node.on_hello_send(0.2, {0.0, 0.0}, 1);
  ASSERT_EQ(recomputes(), 1u);
  const std::uint32_t refreshes = kRecomputeCacheWarmup + 10;
  for (std::uint32_t i = 0; i < refreshes; ++i) {
    node.refresh_selection(0.3 + 0.01 * i);
  }
  EXPECT_EQ(recomputes(), 1u);
  EXPECT_EQ(skips(), refreshes);
}

}  // namespace
}  // namespace mstc::core
