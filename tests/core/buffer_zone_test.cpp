#include "core/buffer_zone.hpp"

#include <gtest/gtest.h>

#include "core/hello.hpp"

namespace mstc::core {
namespace {

TEST(BufferZone, FixedWidth) {
  const BufferZoneConfig config{.width = 10.0};
  EXPECT_DOUBLE_EQ(buffer_width(config), 10.0);
}

TEST(BufferZone, AdaptiveUsesTheorem5Formula) {
  BufferZoneConfig config;
  config.adaptive = true;
  config.delay_bound = 2.5;  // Delta''
  config.max_speed = 20.0;   // v
  EXPECT_DOUBLE_EQ(buffer_width(config), 100.0);  // 2 * 2.5 * 20
}

TEST(BufferZone, AdaptiveRespectsLowerBound) {
  BufferZoneConfig config;
  config.adaptive = true;
  config.width = 500.0;  // floor larger than the formula
  config.delay_bound = 1.0;
  config.max_speed = 10.0;
  EXPECT_DOUBLE_EQ(buffer_width(config), 500.0);
}

TEST(BufferZone, SafeWidthHelper) {
  EXPECT_DOUBLE_EQ(safe_buffer_width(2.0, 30.0), 120.0);
  EXPECT_DOUBLE_EQ(safe_buffer_width(0.0, 30.0), 0.0);
}

TEST(HelloRecordAccessors, ForwardToVersionedPosition) {
  const HelloRecord hello{7, {{1.0, 2.0}, 9, 3.5}};
  EXPECT_EQ(hello.sender, 7u);
  EXPECT_EQ(hello.position(), (geom::Vec2{1.0, 2.0}));
  EXPECT_EQ(hello.version(), 9u);
  EXPECT_DOUBLE_EQ(hello.send_time(), 3.5);
}

}  // namespace
}  // namespace mstc::core
