// Reproductions of the paper's motivating examples (Figs. 1, 2, 4) and of
// the Theorem 4/5 guarantees at the controller level.
#include <gtest/gtest.h>

#include <cmath>

#include "core/controller.hpp"
#include "core/effective.hpp"
#include "graph/algorithms.hpp"
#include "util/prng.hpp"

namespace mstc::core {
namespace {

using geom::Vec2;

HelloRecord hello(NodeId sender, Vec2 p, std::uint64_t version, double time) {
  return HelloRecord{sender, {p, version, time}};
}

/// Fig. 2 geometry: u = (0,0), v = (5,0); the mobile node w moves from W0
/// (6 from u, 4 from v) to W1 (4 from u, 6 from v).
const Vec2 kU{0.0, 0.0};
const Vec2 kV{5.0, 0.0};
const Vec2 kW0{4.5, std::sqrt(15.75)};
const Vec2 kW1{0.5, std::sqrt(15.75)};

/// Both-ends logical link: a selects b and b selects a.
bool mutual(const NodeController& a, const NodeController& b) {
  return a.is_logical(b.id()) && b.is_logical(a.id());
}

TEST(Fig2Scenario, InconsistentViewsPartitionTheLogicalTopology) {
  // Baseline (Latest): u decides before t1 with w@W0; v and w decide after
  // t1 with w@W1. Both remove their link to w -> w is isolated although
  // the original topology is connected the whole time.
  const topology::DistanceCost cost;
  const topology::LmstProtocol mst;
  ControllerConfig config;  // Latest mode, history 1

  NodeController u(0, mst, cost, config);
  NodeController v(1, mst, cost, config);
  NodeController w(2, mst, cost, config);

  // Round of Hellos before t1: everyone hears w@W0.
  u.on_hello_receive(hello(1, kV, 1, 0.1), 0.1);
  u.on_hello_receive(hello(2, kW0, 1, 0.2), 0.2);
  u.on_hello_send(0.9, kU, 1);  // u decides before t1 (uses W0)

  // w moves and advertises W1 at t1; v (and w) decide afterwards.
  v.on_hello_receive(hello(0, kU, 1, 0.1), 0.1);
  v.on_hello_receive(hello(2, kW0, 1, 0.2), 0.2);
  v.on_hello_receive(hello(2, kW1, 2, 1.0), 1.0);
  v.on_hello_send(1.1, kV, 1);  // v decides after t1 (uses W1)

  w.on_hello_receive(hello(0, kU, 1, 0.1), 0.1);
  w.on_hello_receive(hello(1, kV, 1, 0.1), 0.1);
  w.on_hello_send(1.0, kW1, 2);

  EXPECT_EQ(u.logical_neighbors(), (std::vector<NodeId>{1}))
      << "u removes (u,w): 6 > max(5,4)";
  EXPECT_EQ(v.logical_neighbors(), (std::vector<NodeId>{0}))
      << "v removes (v,w): 6 > max(5,4) in its view";
  EXPECT_TRUE(mutual(u, v));
  EXPECT_FALSE(mutual(u, w));
  EXPECT_FALSE(mutual(v, w));  // w is partitioned (Fig. 2d)
}

TEST(Fig2Scenario, VersionPinnedViewsKeepTheLogicalTopologyConnected) {
  // Strong consistency (Fig. 2e): all three nodes decide on version-1
  // records (w@W0). Only (u,w) is removed; (v,w) survives at both ends.
  const topology::DistanceCost cost;
  const topology::LmstProtocol mst;
  ControllerConfig config;
  config.mode = ConsistencyMode::kProactive;
  config.history_limit = 3;

  NodeController u(0, mst, cost, config);
  NodeController v(1, mst, cost, config);
  NodeController w(2, mst, cost, config);

  for (auto* node : {&u, &v, &w}) {
    node->on_hello_receive(hello(0, kU, 1, 0.1), 0.1);
    node->on_hello_receive(hello(1, kV, 1, 0.1), 0.1);
    node->on_hello_receive(hello(2, kW0, 1, 0.2), 0.2);
    node->on_hello_receive(hello(2, kW1, 2, 1.0), 1.0);
  }
  // Own advertisements (stored under own id by on_hello_receive above for
  // simplicity; send one more version so version 1 is decidable).
  u.refresh_selection_versioned(1.5, 1);
  v.refresh_selection_versioned(1.5, 1);
  w.refresh_selection_versioned(1.5, 1);

  EXPECT_EQ(u.logical_neighbors(), (std::vector<NodeId>{1}));
  EXPECT_EQ(v.logical_neighbors(), (std::vector<NodeId>{0, 2}));
  EXPECT_EQ(w.logical_neighbors(), (std::vector<NodeId>{1}));
  EXPECT_TRUE(mutual(u, v));
  EXPECT_TRUE(mutual(v, w));  // connected, matching Fig. 2e
}

TEST(Fig2Scenario, WeakConsistencyKeepsTheLogicalTopologyConnected) {
  // Section 4.2's walk-through: with two stored Hellos per node, enhanced
  // condition 3 preserves (v,w) because cMin(v,w)=4 is not above
  // cMax(u,w)=6, and preserves (w,u)/(w,v) at w.
  const topology::DistanceCost cost;
  const topology::LmstProtocol mst;
  ControllerConfig config;
  config.mode = ConsistencyMode::kWeak;
  config.history_limit = 2;

  NodeController u(0, mst, cost, config);
  NodeController v(1, mst, cost, config);
  NodeController w(2, mst, cost, config);

  // u decided before t1: it has only w@W0.
  u.on_hello_receive(hello(1, kV, 1, 0.1), 0.1);
  u.on_hello_receive(hello(2, kW0, 1, 0.2), 0.2);
  u.on_hello_send(0.9, kU, 1);

  // v and w decide after t1 with both w records stored.
  v.on_hello_receive(hello(0, kU, 1, 0.1), 0.1);
  v.on_hello_receive(hello(2, kW0, 1, 0.2), 0.2);
  v.on_hello_receive(hello(2, kW1, 2, 1.0), 1.0);
  v.on_hello_send(1.1, kV, 1);

  w.on_hello_receive(hello(0, kU, 1, 0.1), 0.1);
  w.on_hello_receive(hello(1, kV, 1, 0.1), 0.1);
  w.on_hello_receive(hello(2, kW0, 1, 0.2), 0.2);  // own old advertisement
  w.on_hello_send(1.0, kW1, 2);

  EXPECT_EQ(u.logical_neighbors(), (std::vector<NodeId>{1}))
      << "u still removes (u,w) from its single-version view";
  EXPECT_EQ(v.logical_neighbors(), (std::vector<NodeId>{0, 2}))
      << "enhanced condition keeps (v,w)";
  EXPECT_EQ(w.logical_neighbors(), (std::vector<NodeId>{0, 1}))
      << "w conservatively keeps both";
  EXPECT_TRUE(mutual(u, v));
  EXPECT_TRUE(mutual(v, w));  // connected
}

TEST(Fig1Scenario, OutdatedRangesDisconnectWithoutBufferZone) {
  // Fig. 1: u and v are 10 apart; w is 4 from u when u samples and 4 from
  // v when v samples, so both pick range 4 — but w is never within 4 of
  // both at the same time. A buffer zone of the Theorem 5 width repairs
  // the effective topology.
  const topology::DistanceCost cost;
  const topology::NoneProtocol keep_all;  // range = farthest viewed neighbor

  const Vec2 pu{0.0, 0.0};
  const Vec2 pv{10.0, 0.0};
  const Vec2 w_at_t{4.0, 0.0};        // when u samples
  const Vec2 w_at_t_plus{6.0, 0.0};   // when v samples (4 from v)
  // w ends up midway at the evaluation instant.
  const Vec2 w_now{5.0, 0.0};

  for (const double buffer : {0.0, 2.0}) {
    ControllerConfig config;
    config.normal_range = 4.5;  // the paper's initial range for u and v
    config.buffer.width = buffer;
    NodeController u(0, keep_all, cost, config);
    NodeController v(1, keep_all, cost, config);
    NodeController w(2, keep_all, cost, config);

    u.on_hello_receive(hello(2, w_at_t, 1, 0.0), 0.0);
    u.on_hello_send(0.1, pu, 1);
    v.on_hello_receive(hello(2, w_at_t_plus, 2, 1.0), 1.0);
    v.on_hello_send(1.1, pv, 1);
    w.on_hello_receive(hello(0, pu, 1, 0.1), 0.1);
    w.on_hello_receive(hello(1, pv, 1, 1.1), 1.1);
    w.on_hello_send(1.2, w_now, 2);

    const std::vector<NodeController> nodes = [&] {
      std::vector<NodeController> list;
      list.push_back(std::move(u));
      list.push_back(std::move(v));
      list.push_back(std::move(w));
      return list;
    }();
    const std::vector<Vec2> now = {pu, pv, w_now};
    const auto g = effective_snapshot(nodes, now);
    if (buffer == 0.0) {
      // u's and v's range 4 cannot reach w at distance 5: partitioned.
      EXPECT_FALSE(graph::is_connected(g)) << "buffer " << buffer;
    } else {
      EXPECT_TRUE(graph::is_connected(g)) << "buffer " << buffer;
    }
  }
}

TEST(Theorem5, BufferZoneKeepsLogicalLinksEffective) {
  // Randomized instance of Theorem 5: positions are advertised up to
  // Delta'' seconds ago, nodes drift at up to v m/s, and the buffer width
  // 2 * Delta'' * v keeps every mutual logical link within both extended
  // ranges at evaluation time.
  util::Xoshiro256 rng(505);
  const topology::DistanceCost cost;
  const topology::LmstProtocol mst;
  const double kDelay = 2.0;   // Delta''
  const double kSpeed = 10.0;  // v

  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 25;
    std::vector<Vec2> advertised(n), current(n);
    std::vector<double> age(n);
    for (std::size_t i = 0; i < n; ++i) {
      advertised[i] = {rng.uniform(0.0, 500.0), rng.uniform(0.0, 500.0)};
      age[i] = rng.uniform(0.0, kDelay);
      const double drift = rng.uniform(0.0, kSpeed * age[i]);
      const double heading = rng.uniform(0.0, 2.0 * M_PI);
      current[i] = advertised[i] +
                   Vec2{drift * std::cos(heading), drift * std::sin(heading)};
    }
    ControllerConfig config;
    config.normal_range = 250.0;
    config.buffer.adaptive = true;
    config.buffer.delay_bound = kDelay;
    config.buffer.max_speed = kSpeed;
    std::vector<NodeController> nodes;
    nodes.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      nodes.emplace_back(i, mst, cost, config);
    }
    const double now = kDelay;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        if (geom::distance(advertised[i], advertised[j]) <=
            config.normal_range) {
          nodes[i].on_hello_receive(
              hello(j, advertised[j], 1, now - age[j]), now);
        }
      }
      nodes[i].on_hello_receive(hello(i, advertised[i], 1, now - age[i]), now);
      nodes[i].refresh_selection(now);
    }
    for (std::size_t i = 0; i < n; ++i) {
      for (NodeId j : nodes[i].logical_neighbors()) {
        const double d = geom::distance(current[i], current[j]);
        // The viewed distance was <= the actual range and both nodes moved
        // at most kSpeed * age: Theorem 5's extended range covers it.
        EXPECT_LE(d, nodes[i].extended_range() + 1e-9) << "trial " << trial;
      }
    }
  }
}

TEST(Fig4Scenario, EnablingPhysicalNeighborsAloneCannotGuaranteeRepair) {
  // Fig. 4's point: when d(u,v) ~ d(u,w), u's range (set for v) barely
  // misses w, and covering w would need a dramatic range increase. The
  // physical-neighbor mechanism only helps when w is inside the chosen
  // range; here it is not.
  const topology::DistanceCost cost;
  const topology::LmstProtocol mst;
  ControllerConfig pn;
  pn.accept_physical_neighbors = true;

  NodeController u(0, mst, cost, pn);
  // u's view: v at 5, w believed at 4.8 (stale); w actually drifted to 7.
  u.on_hello_receive(hello(1, {5.0, 0.0}, 1, 0.1), 0.1);
  u.on_hello_receive(hello(2, {0.0, 4.8}, 1, 0.1), 0.1);
  u.on_hello_send(0.5, {0.0, 0.0}, 1);
  ASSERT_NEAR(u.actual_range(), 5.0, 1e-6);

  NodeController w(2, mst, cost, pn);
  const double actual_distance_to_w = 7.0;
  EXPECT_FALSE(can_deliver(u, w, actual_distance_to_w))
      << "PN cannot reach beyond the transmission range";
}

}  // namespace
}  // namespace mstc::core
