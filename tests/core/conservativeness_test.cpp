// Property test of the enhanced link-removal conditions (Section 4.2):
// a removal decided from interval costs must be CERTAIN — i.e. the same
// link is removed by the original condition under every combination of the
// stored position versions. (The converse need not hold; keeping extra
// links is the intended conservatism.)
#include <gtest/gtest.h>

#include "core/consistency.hpp"
#include "topology/protocol.hpp"
#include "util/prng.hpp"

namespace mstc::core {
namespace {

using geom::Vec2;

constexpr double kRange = 250.0;
constexpr std::size_t kNodes = 6;     // owner + 5 neighbors
constexpr std::size_t kVersions = 2;  // stored Hellos per node

struct Instance {
  // positions[node][version]
  std::array<std::array<Vec2, kVersions>, kNodes> positions;
};

Instance random_instance(util::Xoshiro256& rng) {
  Instance instance;
  for (auto& node : instance.positions) {
    // Base position within half the range of the origin so every pair is
    // within the normal range under every version (keeps membership equal
    // between the weak view and all pinned views).
    const Vec2 base{rng.uniform(-80.0, 80.0), rng.uniform(-80.0, 80.0)};
    for (auto& version : node) {
      version = base + Vec2{rng.uniform(-15.0, 15.0),
                            rng.uniform(-15.0, 15.0)};
    }
  }
  return instance;
}

/// Weak (interval) view over both stored versions of every node.
topology::ViewGraph weak_view(const Instance& instance,
                              const topology::CostModel& cost) {
  LocalViewStore store(0, kVersions, 1e9);
  for (std::size_t node = 0; node < kNodes; ++node) {
    for (std::size_t version = 0; version < kVersions; ++version) {
      store.record({node,
                    {instance.positions[node][version], version + 1,
                     static_cast<double>(version)}});
    }
  }
  return build_weak_view(store, kRange, cost);
}

/// Single-version view for one combination (choice[node] selects the
/// version each node's position is taken from).
topology::ViewGraph pinned_view(const Instance& instance,
                                const std::array<std::size_t, kNodes>& choice,
                                const topology::CostModel& cost) {
  std::vector<Vec2> positions;
  std::vector<topology::NodeId> ids;
  for (std::size_t node = 0; node < kNodes; ++node) {
    positions.push_back(instance.positions[node][choice[node]]);
    ids.push_back(node);
  }
  return topology::make_consistent_view(positions, ids, 0, kRange, cost);
}

std::vector<topology::NodeId> kept_ids(const topology::Protocol& protocol,
                                       const topology::ViewGraph& view) {
  std::vector<topology::NodeId> kept;
  for (std::size_t index : protocol.select(view)) {
    kept.push_back(view.id(index));
  }
  std::sort(kept.begin(), kept.end());
  return kept;
}

class ConservativenessTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(ConservativenessTest, WeakRemovalImpliesRemovalInEveryCombination) {
  const topology::ProtocolSuite suite = topology::make_protocol(GetParam());
  util::Xoshiro256 rng(0xC0);
  for (int trial = 0; trial < 40; ++trial) {
    const Instance instance = random_instance(rng);
    const auto weak_kept =
        kept_ids(*suite.protocol, weak_view(instance, *suite.cost));

    // Enumerate all version combinations.
    for (std::size_t mask = 0; mask < (1u << kNodes); ++mask) {
      std::array<std::size_t, kNodes> choice{};
      for (std::size_t node = 0; node < kNodes; ++node) {
        choice[node] = (mask >> node) & 1u;
      }
      const auto pinned_kept = kept_ids(
          *suite.protocol, pinned_view(instance, choice, *suite.cost));
      // Everything the pinned view keeps, the weak view must also keep
      // (equivalently: weak removals are unanimous removals).
      for (topology::NodeId id : pinned_kept) {
        EXPECT_TRUE(std::binary_search(weak_kept.begin(), weak_kept.end(),
                                       id))
            << GetParam() << " trial " << trial << " mask " << mask
            << " neighbor " << id;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(EnhancedConditions, ConservativenessTest,
                         ::testing::Values("RNG", "MST", "SPT-2", "SPT-4"),
                         [](const auto& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace mstc::core
