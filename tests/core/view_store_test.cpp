#include "core/view_store.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace mstc::core {
namespace {

HelloRecord hello(NodeId sender, double x, double y, std::uint64_t version,
                  double time) {
  return HelloRecord{sender, {{x, y}, version, time}};
}

TEST(LocalViewStore, RecordsAndRetrievesLatest) {
  LocalViewStore store(0, 2, 10.0);
  store.record(hello(1, 5.0, 0.0, 1, 1.0));
  store.record(hello(1, 6.0, 0.0, 2, 2.0));
  const auto latest = store.latest(1);
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->version, 2u);
  EXPECT_DOUBLE_EQ(latest->position.x, 6.0);
}

TEST(LocalViewStore, HistoryIsNewestFirstAndCapped) {
  LocalViewStore store(0, 2, 100.0);
  store.record(hello(1, 1.0, 0.0, 1, 1.0));
  store.record(hello(1, 2.0, 0.0, 2, 2.0));
  store.record(hello(1, 3.0, 0.0, 3, 3.0));
  const auto history = store.history(1);
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(history[0].version, 3u);
  EXPECT_EQ(history[1].version, 2u);
}

TEST(LocalViewStore, OutOfOrderReceptionIsSorted) {
  LocalViewStore store(0, 3, 100.0);
  store.record(hello(1, 2.0, 0.0, 2, 2.0));
  store.record(hello(1, 1.0, 0.0, 1, 1.0));  // late arrival of older version
  const auto history = store.history(1);
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(history[0].version, 2u);
  EXPECT_EQ(history[1].version, 1u);
}

TEST(LocalViewStore, DuplicateVersionRefreshesInPlace) {
  LocalViewStore store(0, 3, 100.0);
  store.record(hello(1, 1.0, 0.0, 1, 1.0));
  store.record(hello(1, 9.0, 9.0, 1, 1.5));
  const auto history = store.history(1);
  ASSERT_EQ(history.size(), 1u);
  EXPECT_DOUBLE_EQ(history[0].position.x, 9.0);
}

TEST(LocalViewStore, AtVersionLookup) {
  LocalViewStore store(0, 3, 100.0);
  store.record(hello(1, 1.0, 0.0, 7, 1.0));
  store.record(hello(1, 2.0, 0.0, 8, 2.0));
  EXPECT_TRUE(store.at_version(1, 7).has_value());
  EXPECT_TRUE(store.at_version(1, 8).has_value());
  EXPECT_FALSE(store.at_version(1, 9).has_value());
  EXPECT_FALSE(store.at_version(2, 7).has_value());
  EXPECT_DOUBLE_EQ(store.at_version(1, 7)->position.x, 1.0);
}

TEST(LocalViewStore, ExpireDropsStaleNeighborsButNotOwner) {
  LocalViewStore store(0, 2, 3.0);
  store.record(hello(0, 0.0, 0.0, 1, 0.5));  // own record
  store.record(hello(1, 5.0, 0.0, 1, 1.0));
  store.record(hello(2, 9.0, 0.0, 1, 9.5));
  store.expire(10.0);  // cutoff 7.0: neighbor 1 stale, neighbor 2 fresh
  EXPECT_FALSE(store.latest(1).has_value());
  EXPECT_TRUE(store.latest(2).has_value());
  EXPECT_TRUE(store.latest(0).has_value()) << "owner is never expired";
}

TEST(LocalViewStore, NeighborsExcludesOwner) {
  LocalViewStore store(7, 1, 100.0);
  store.record(hello(7, 0.0, 0.0, 1, 1.0));
  store.record(hello(1, 5.0, 0.0, 1, 1.0));
  store.record(hello(2, 6.0, 0.0, 1, 1.0));
  auto ids = store.neighbors();
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<NodeId>{1, 2}));
  EXPECT_EQ(store.neighbor_count(), 2u);
}

TEST(LocalViewStore, UnknownSenderYieldsEmpty) {
  const LocalViewStore store(0, 2, 10.0);
  EXPECT_TRUE(store.history(5).empty());
  EXPECT_FALSE(store.latest(5).has_value());
}

}  // namespace
}  // namespace mstc::core
