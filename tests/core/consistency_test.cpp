#include "core/consistency.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/prng.hpp"

namespace mstc::core {
namespace {

HelloRecord hello(NodeId sender, double x, double y, std::uint64_t version,
                  double time) {
  return HelloRecord{sender, {{x, y}, version, time}};
}

TEST(ConsistencyMode, StringRoundTrip) {
  for (const auto mode :
       {ConsistencyMode::kLatest, ConsistencyMode::kViewSync,
        ConsistencyMode::kProactive, ConsistencyMode::kReactive,
        ConsistencyMode::kWeak}) {
    EXPECT_EQ(consistency_mode_from(to_string(mode)), mode);
  }
  EXPECT_THROW((void)consistency_mode_from("nope"), std::invalid_argument);
}

TEST(BuildLatestView, UsesNewestRecordPerNeighbor) {
  const topology::DistanceCost cost;
  LocalViewStore store(0, 3, 100.0);
  store.record(hello(0, 0.0, 0.0, 2, 2.0));
  store.record(hello(1, 5.0, 0.0, 1, 1.0));
  store.record(hello(1, 7.0, 0.0, 2, 2.0));  // newest wins
  const auto view = build_latest_view(store, 250.0, cost);
  ASSERT_EQ(view.neighbor_count(), 1u);
  EXPECT_DOUBLE_EQ(view.distance_min(0, 1), 7.0);
  EXPECT_DOUBLE_EQ(view.distance_max(0, 1), 7.0);
  EXPECT_EQ(view.representative(1), (geom::Vec2{7.0, 0.0}));
}

TEST(BuildLatestView, OwnerNeighborLinkExistsEvenWhenStaleBeyondRange) {
  // A heard neighbor stays in the view even if its viewed distance now
  // exceeds the normal range (the Hello proves 1-hop adjacency).
  const topology::DistanceCost cost;
  LocalViewStore store(0, 1, 100.0);
  store.record(hello(0, 0.0, 0.0, 1, 1.0));
  store.record(hello(1, 300.0, 0.0, 1, 1.0));
  const auto view = build_latest_view(store, 250.0, cost);
  ASSERT_EQ(view.neighbor_count(), 1u);
  EXPECT_TRUE(view.has_link(0, 1));
}

TEST(BuildLatestView, NeighborNeighborLinkRequiresRange) {
  const topology::DistanceCost cost;
  LocalViewStore store(0, 1, 100.0);
  store.record(hello(0, 0.0, 0.0, 1, 1.0));
  store.record(hello(1, -200.0, 0.0, 1, 1.0));
  store.record(hello(2, 200.0, 0.0, 1, 1.0));
  const auto view = build_latest_view(store, 250.0, cost);
  ASSERT_EQ(view.neighbor_count(), 2u);
  EXPECT_TRUE(view.has_link(0, 1));
  EXPECT_TRUE(view.has_link(0, 2));
  EXPECT_FALSE(view.has_link(1, 2)) << "400 m apart in the view";
}

TEST(BuildVersionedView, PinsExactVersion) {
  const topology::DistanceCost cost;
  LocalViewStore store(0, 3, 100.0);
  store.record(hello(0, 0.0, 0.0, 1, 1.0));
  store.record(hello(0, 0.0, 1.0, 2, 2.0));
  store.record(hello(1, 5.0, 0.0, 1, 1.0));
  store.record(hello(1, 9.0, 0.0, 2, 2.0));
  store.record(hello(2, 8.0, 0.0, 2, 2.0));  // no version-1 record
  const auto view = build_versioned_view(store, 1, 250.0, cost);
  ASSERT_TRUE(view.has_value());
  ASSERT_EQ(view->neighbor_count(), 1u) << "node 2 lacks version 1";
  EXPECT_EQ(view->id(1), 1u);
  EXPECT_DOUBLE_EQ(view->distance_min(0, 1), 5.0);
}

TEST(BuildVersionedView, NulloptWithoutOwnVersion) {
  const topology::DistanceCost cost;
  LocalViewStore store(0, 3, 100.0);
  store.record(hello(0, 0.0, 0.0, 2, 2.0));
  store.record(hello(1, 5.0, 0.0, 1, 1.0));
  EXPECT_FALSE(build_versioned_view(store, 1, 250.0, cost).has_value());
}

TEST(BuildVersionedView, Theorem2SingleVersionEverywhereIsConsistent) {
  // Theorem 2: when all local views use the same Hello per node, every
  // link has the same cost in every view. Build the views of two observers
  // and compare the shared link's cost.
  const topology::DistanceCost cost;
  LocalViewStore store_a(0, 3, 100.0);
  LocalViewStore store_b(1, 3, 100.0);
  // The mobile node 2 advertises twice from different spots.
  const auto w_v1 = hello(2, 4.5, 3.969, 1, 1.0);
  const auto w_v2 = hello(2, 0.5, 3.969, 2, 2.0);
  for (auto* store : {&store_a, &store_b}) {
    store->record(hello(0, 0.0, 0.0, 1, 1.0));
    store->record(hello(1, 5.0, 0.0, 1, 1.0));
    store->record(w_v1);
    store->record(w_v2);
  }
  const auto view_a = build_versioned_view(store_a, 1, 250.0, cost);
  const auto view_b = build_versioned_view(store_b, 1, 250.0, cost);
  ASSERT_TRUE(view_a && view_b);
  // Link (0, 2) appears in both views with identical cost.
  const auto cost_in = [](const topology::ViewGraph& view, NodeId a, NodeId b) {
    for (std::size_t i = 0; i < view.node_count(); ++i) {
      for (std::size_t j = 0; j < view.node_count(); ++j) {
        if (view.id(i) == a && view.id(j) == b) return view.cost_min(i, j);
      }
    }
    return topology::CostKey{};
  };
  EXPECT_EQ(cost_in(*view_a, 0, 2), cost_in(*view_b, 0, 2));
  EXPECT_EQ(cost_in(*view_a, 1, 2), cost_in(*view_b, 1, 2));
}

TEST(BuildWeakView, IntervalSpansStoredVersions) {
  const topology::DistanceCost cost;
  LocalViewStore store(0, 2, 100.0);
  store.record(hello(0, 0.0, 0.0, 1, 1.0));
  store.record(hello(1, 4.0, 0.0, 1, 1.0));
  store.record(hello(1, 6.0, 0.0, 2, 2.0));
  const auto view = build_weak_view(store, 250.0, cost);
  ASSERT_EQ(view.neighbor_count(), 1u);
  EXPECT_DOUBLE_EQ(view.distance_min(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(view.distance_max(0, 1), 6.0);
  EXPECT_DOUBLE_EQ(view.cost_min(0, 1).value, 4.0);
  EXPECT_DOUBLE_EQ(view.cost_max(0, 1).value, 6.0);
  // Representative is the newest position.
  EXPECT_EQ(view.representative(1), (geom::Vec2{6.0, 0.0}));
}

TEST(BuildWeakView, IntervalOverBothEndpointHistories) {
  const topology::DistanceCost cost;
  LocalViewStore store(0, 2, 100.0);
  store.record(hello(0, 0.0, 0.0, 1, 1.0));
  store.record(hello(1, 10.0, 0.0, 1, 1.0));
  store.record(hello(1, 20.0, 0.0, 2, 2.0));
  store.record(hello(2, 30.0, 0.0, 1, 1.0));
  store.record(hello(2, 15.0, 0.0, 2, 2.0));
  const auto view = build_weak_view(store, 250.0, cost);
  ASSERT_EQ(view.neighbor_count(), 2u);
  // Combinations of node 1 {10, 20} x node 2 {30, 15}: distances
  // |10-30|=20, |10-15|=5, |20-30|=10, |20-15|=5 -> [5, 20].
  EXPECT_DOUBLE_EQ(view.distance_min(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(view.distance_max(1, 2), 20.0);
}

// --- Theorem 3: k = ceil(delta/Delta) + 1 stored Hellos preserve weak
// consistency (all observers share at least one version of every node).

/// Versions of the mobile node's Hellos (sent at phase + i*Delta) that an
/// observer sampling at `sample_time` retains with history depth k.
std::vector<std::uint64_t> retained_versions(double phase, double interval,
                                             double sample_time,
                                             std::size_t k) {
  std::vector<std::uint64_t> versions;
  // Latest version sent at or before the sample time.
  if (sample_time < phase) return versions;
  const auto newest =
      static_cast<std::uint64_t>((sample_time - phase) / interval);
  for (std::size_t i = 0; i < k && i <= newest; ++i) {
    versions.push_back(newest - i);
  }
  return versions;
}

TEST(Theorem3, SufficientHistoryGuaranteesCommonVersion) {
  util::Xoshiro256 rng(333);
  for (int trial = 0; trial < 500; ++trial) {
    const double interval = rng.uniform(0.5, 2.0);         // Delta
    const double delta = rng.uniform(0.1, 3.0 * interval);  // view skew bound
    const std::size_t k =
        static_cast<std::size_t>(std::ceil(delta / interval)) + 1;
    const double phase = rng.uniform(0.0, interval);
    // Sample times of several observers inside a window of length delta,
    // far enough in that k Hellos already exist.
    const double window_start = phase + 10.0 * interval + rng.uniform(0.0, 5.0);
    std::vector<std::vector<std::uint64_t>> views;
    for (int observer = 0; observer < 4; ++observer) {
      views.push_back(retained_versions(
          phase, interval, window_start + rng.uniform(0.0, delta), k));
    }
    // Intersection across observers must be nonempty.
    std::vector<std::uint64_t> common = views[0];
    for (std::size_t i = 1; i < views.size(); ++i) {
      std::vector<std::uint64_t> next;
      for (std::uint64_t v : common) {
        if (std::find(views[i].begin(), views[i].end(), v) !=
            views[i].end()) {
          next.push_back(v);
        }
      }
      common = std::move(next);
    }
    EXPECT_FALSE(common.empty())
        << "trial " << trial << " Delta=" << interval << " delta=" << delta
        << " k=" << k;
  }
}

TEST(Theorem3, SmallerHistoryCanFail) {
  // Counterexample with k = ceil(delta/Delta) (one less than the theorem):
  // Delta = 1, delta = 1.2, observers at 0.95 and 2.10 retain {0} and
  // {2, 1} — no common version.
  const auto a = retained_versions(0.0, 1.0, 0.95, 2);
  const auto b = retained_versions(0.0, 1.0, 2.10, 2);
  ASSERT_EQ(a, (std::vector<std::uint64_t>{0}));
  ASSERT_EQ(b, (std::vector<std::uint64_t>{2, 1}));
  for (std::uint64_t v : a) {
    EXPECT_TRUE(std::find(b.begin(), b.end(), v) == b.end());
  }
}

TEST(DelayBound, MatchesSection43) {
  EXPECT_DOUBLE_EQ(delay_bound(ConsistencyMode::kProactive, 1.0, 2), 2.0);
  EXPECT_DOUBLE_EQ(delay_bound(ConsistencyMode::kReactive, 1.0, 1, 0.05),
                   1.05);
  EXPECT_DOUBLE_EQ(delay_bound(ConsistencyMode::kWeak, 1.0, 3), 4.0);
  EXPECT_DOUBLE_EQ(delay_bound(ConsistencyMode::kLatest, 1.25, 1), 2.5);
  EXPECT_DOUBLE_EQ(delay_bound(ConsistencyMode::kViewSync, 1.0, 1), 2.0);
}

}  // namespace
}  // namespace mstc::core
