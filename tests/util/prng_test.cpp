#include "util/prng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace mstc::util {
namespace {

TEST(Splitmix64, ProducesKnownSequence) {
  // Reference values for splitmix64 seeded with 1234567.
  std::uint64_t x = 1234567;
  const std::uint64_t a = splitmix64(x);
  const std::uint64_t b = splitmix64(x);
  EXPECT_NE(a, b);
  // Re-running from the same state reproduces the sequence.
  std::uint64_t y = 1234567;
  EXPECT_EQ(splitmix64(y), a);
  EXPECT_EQ(splitmix64(y), b);
}

TEST(DeriveSeed, DistinctStreamsGetDistinctSeeds) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t stream = 0; stream < 1000; ++stream) {
    seeds.insert(derive_seed(42, stream));
  }
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(DeriveSeed, DependsOnBaseSeed) {
  EXPECT_NE(derive_seed(1, 0), derive_seed(2, 0));
}

TEST(DeriveSeed, NoCollisionsOverAdjacentBaseStreamGrid) {
  // Sweeps use adjacent bases (config seeds) x adjacent streams
  // (replication indices); a collision would hand two replications the
  // same generator. Smoke-check a dense grid around small values, the
  // region every sweep actually exercises.
  std::set<std::uint64_t> seeds;
  constexpr std::uint64_t kBases = 64;
  constexpr std::uint64_t kStreams = 64;
  for (std::uint64_t base = 0; base < kBases; ++base) {
    for (std::uint64_t stream = 0; stream < kStreams; ++stream) {
      seeds.insert(derive_seed(base, stream));
    }
  }
  EXPECT_EQ(seeds.size(), kBases * kStreams);
}

TEST(DeriveSeed, StreamZeroDiffersFromRawBase) {
  // Replication 0's stream must not degenerate to the base seed itself.
  for (std::uint64_t base : {0ULL, 1ULL, 42ULL, 0xFFFFFFFFFFFFFFFFULL}) {
    EXPECT_NE(derive_seed(base, 0), base);
  }
}

TEST(Xoshiro256, FirstEightOutputsArePinned) {
  // Golden regression values: xoshiro256** seeded (via splitmix64
  // expansion) with 0xDEADBEEFCAFEF00D. Pinning the exact bit patterns
  // means a sanitizer-mode or optimization-level build cannot silently
  // change RNG behavior — every (config, seed) result in the repo depends
  // on this sequence.
  Xoshiro256 rng(0xDEADBEEFCAFEF00DULL);
  const std::uint64_t expected[8] = {
      0x9e32cfb5bb93eebbULL, 0x16006bd9d4ac0014ULL, 0x8ada5d6d34b6538eULL,
      0x7c327ca32346a238ULL, 0xc43a6d6a3492ced2ULL, 0xdb639ecb036a9c04ULL,
      0xc5a4b301c52fcfa4ULL, 0xbcc5e0efaa8ded95ULL};
  for (const std::uint64_t value : expected) EXPECT_EQ(rng(), value);
}

TEST(Xoshiro256, DefaultSeedOutputsArePinned) {
  Xoshiro256 rng;
  const std::uint64_t expected[8] = {
      0x7d392394307d1852ULL, 0xd36a63a899a184a5ULL, 0x6d8cab58145b27a9ULL,
      0x4bac88382f65c6dcULL, 0x8bbd23a9d7dd081bULL, 0xab46d3b311a1ee71ULL,
      0xab8697997e27e1eaULL, 0x93aefa2889ff398bULL};
  for (const std::uint64_t value : expected) EXPECT_EQ(rng(), value);
}

TEST(Xoshiro256, IsDeterministic) {
  Xoshiro256 a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

TEST(Xoshiro256, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro256, UniformRangeRespectsBounds) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Xoshiro256, UniformMeanIsCentered) {
  Xoshiro256 rng(11);
  double sum = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(Xoshiro256, UniformBelowCoversAllValues) {
  Xoshiro256 rng(13);
  std::vector<int> histogram(7, 0);
  for (int i = 0; i < 7000; ++i) ++histogram[rng.uniform_below(7)];
  for (int count : histogram) EXPECT_GT(count, 800);
}

TEST(Xoshiro256, UniformBelowZeroIsZero) {
  Xoshiro256 rng(1);
  EXPECT_EQ(rng.uniform_below(0), 0u);
}

TEST(Xoshiro256, UniformIntInclusiveBounds) {
  Xoshiro256 rng(17);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Xoshiro256, BernoulliMatchesProbability) {
  Xoshiro256 rng(19);
  int hits = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.01);
}

TEST(Xoshiro256, ExponentialHasCorrectMean) {
  Xoshiro256 rng(23);
  double sum = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / kSamples, 0.5, 0.02);
}

TEST(Xoshiro256, NormalHasCorrectMoments) {
  Xoshiro256 rng(29);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kSamples;
  const double variance = sum_sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(variance, 4.0, 0.1);
}

}  // namespace
}  // namespace mstc::util
