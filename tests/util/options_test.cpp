#include "util/options.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace mstc::util {
namespace {

class OptionsTest : public ::testing::Test {
 protected:
  void SetEnv(const char* name, const char* value) {
    ::setenv(name, value, 1);
    set_.push_back(name);
  }
  void TearDown() override {
    for (const char* name : set_) ::unsetenv(name);
  }
  std::vector<const char*> set_;
};

TEST_F(OptionsTest, UnsetReturnsNullopt) {
  ::unsetenv("MSTC_TEST_UNSET");
  EXPECT_FALSE(env("MSTC_TEST_UNSET").has_value());
}

TEST_F(OptionsTest, EmptyCountsAsUnset) {
  SetEnv("MSTC_TEST_EMPTY", "");
  EXPECT_FALSE(env("MSTC_TEST_EMPTY").has_value());
  EXPECT_EQ(env_or("MSTC_TEST_EMPTY", std::int64_t{7}), 7);
}

TEST_F(OptionsTest, DoubleParsing) {
  SetEnv("MSTC_TEST_D", "2.5");
  EXPECT_DOUBLE_EQ(env_or("MSTC_TEST_D", 1.0), 2.5);
}

TEST_F(OptionsTest, MalformedDoubleFallsBack) {
  SetEnv("MSTC_TEST_D2", "2.5x");
  EXPECT_DOUBLE_EQ(env_or("MSTC_TEST_D2", 1.0), 1.0);
}

TEST_F(OptionsTest, IntParsing) {
  SetEnv("MSTC_TEST_I", "42");
  EXPECT_EQ(env_or("MSTC_TEST_I", std::int64_t{0}), 42);
  SetEnv("MSTC_TEST_I_BAD", "4.2");
  EXPECT_EQ(env_or("MSTC_TEST_I_BAD", std::int64_t{9}), 9);
}

TEST_F(OptionsTest, StringParsing) {
  SetEnv("MSTC_TEST_S", "hello");
  EXPECT_EQ(env_or("MSTC_TEST_S", std::string("x")), "hello");
  EXPECT_EQ(env_or("MSTC_TEST_S_UNSET", std::string("x")), "x");
}

TEST_F(OptionsTest, FlagParsing) {
  SetEnv("MSTC_TEST_F1", "1");
  SetEnv("MSTC_TEST_F2", "true");
  SetEnv("MSTC_TEST_F3", "0");
  EXPECT_TRUE(env_flag("MSTC_TEST_F1"));
  EXPECT_TRUE(env_flag("MSTC_TEST_F2"));
  EXPECT_FALSE(env_flag("MSTC_TEST_F3"));
  EXPECT_TRUE(env_flag("MSTC_TEST_F_UNSET", true));
  EXPECT_FALSE(env_flag("MSTC_TEST_F_UNSET", false));
}

TEST_F(OptionsTest, ListParsing) {
  SetEnv("MSTC_TEST_L", "1,2.5,3");
  const auto values = env_list("MSTC_TEST_L", {9.0});
  ASSERT_EQ(values.size(), 3u);
  EXPECT_DOUBLE_EQ(values[0], 1.0);
  EXPECT_DOUBLE_EQ(values[1], 2.5);
  EXPECT_DOUBLE_EQ(values[2], 3.0);
}

TEST_F(OptionsTest, ListFallsBackOnGarbage) {
  SetEnv("MSTC_TEST_L2", "1,dog,3");
  const auto values = env_list("MSTC_TEST_L2", {9.0});
  ASSERT_EQ(values.size(), 1u);
  EXPECT_DOUBLE_EQ(values[0], 9.0);
}

TEST_F(OptionsTest, ListUnsetUsesFallback) {
  const auto values = env_list("MSTC_TEST_L_UNSET", {4.0, 5.0});
  ASSERT_EQ(values.size(), 2u);
  EXPECT_DOUBLE_EQ(values[0], 4.0);
}

}  // namespace
}  // namespace mstc::util
