#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "util/prng.hpp"

namespace mstc::util {
namespace {

TEST(Summary, EmptyHasZeroCount) {
  const Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Summary, SingleSample) {
  Summary s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(Summary, KnownMeanAndVariance) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of the classic example: population var 4, n=8 => 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.total(), 40.0);
}

TEST(Summary, MergeMatchesSequentialAccumulation) {
  Xoshiro256 rng(5);
  Summary whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 7.0);
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Summary, MergeWithEmptyIsIdentity) {
  Summary a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean_before = a.mean();
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), mean_before);

  Summary b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), mean_before);
}

TEST(ConfidenceInterval, FewerThanTwoSamplesIsInfinite) {
  Summary s;
  s.add(1.0);
  EXPECT_TRUE(std::isinf(s.ci95().half_width));
}

TEST(ConfidenceInterval, MatchesHandComputedValue) {
  // Sample {1,2,3,4,5}: mean 3, sd sqrt(2.5), se sqrt(0.5), t(4)=2.776.
  Summary s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  const auto ci = s.ci95();
  EXPECT_DOUBLE_EQ(ci.mean, 3.0);
  EXPECT_NEAR(ci.half_width, 2.776 * std::sqrt(0.5), 1e-9);
  EXPECT_TRUE(ci.contains(3.0));
  EXPECT_FALSE(ci.contains(6.0));
}

TEST(ConfidenceInterval, CoversTrueMeanAbout95Percent) {
  // Property check of the CI construction: over many resamples of a known
  // distribution, the 95 % CI should contain the true mean ~95 % of the time.
  Xoshiro256 rng(31);
  int covered = 0;
  constexpr int kTrials = 2000;
  for (int trial = 0; trial < kTrials; ++trial) {
    Summary s;
    for (int i = 0; i < 20; ++i) s.add(rng.normal(0.0, 1.0));
    covered += s.ci95().contains(0.0);
  }
  const double coverage = static_cast<double>(covered) / kTrials;
  EXPECT_GT(coverage, 0.93);
  EXPECT_LT(coverage, 0.97);
}

TEST(TQuantile, KnownValues) {
  EXPECT_TRUE(std::isinf(t_quantile_975(0)));
  EXPECT_NEAR(t_quantile_975(1), 12.706, 1e-3);
  EXPECT_NEAR(t_quantile_975(19), 2.093, 1e-3);
  EXPECT_NEAR(t_quantile_975(1000), 1.96, 1e-3);
}

TEST(Summarize, SpanOverload) {
  const std::array<double, 4> sample = {1.0, 2.0, 3.0, 4.0};
  const Summary s = summarize(sample);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
}

TEST(Summary, EmptyCiHasInfiniteHalfWidth) {
  const Summary s;
  const ConfidenceInterval ci = s.ci95();
  EXPECT_EQ(ci.mean, 0.0);
  EXPECT_TRUE(std::isinf(ci.half_width));
  // An all-encompassing interval contains everything.
  EXPECT_TRUE(ci.contains(0.0));
  EXPECT_TRUE(ci.contains(1e300));
  // Extremes of an empty stream are the identity elements.
  EXPECT_TRUE(std::isinf(s.min()));
  EXPECT_GT(s.min(), 0.0);
  EXPECT_TRUE(std::isinf(s.max()));
  EXPECT_LT(s.max(), 0.0);
  EXPECT_EQ(s.total(), 0.0);
}

TEST(Summary, SingleSampleCiHasInfiniteHalfWidth) {
  Summary s;
  s.add(3.5);
  const ConfidenceInterval ci = s.ci95();
  EXPECT_DOUBLE_EQ(ci.mean, 3.5);
  EXPECT_TRUE(std::isinf(ci.half_width));
  EXPECT_TRUE(ci.contains(3.5));
  EXPECT_TRUE(ci.contains(-1e9));
}

TEST(Summary, ConstantStreamHasZeroSpread) {
  Summary s;
  for (int i = 0; i < 1000; ++i) s.add(2.25);  // exactly representable
  EXPECT_EQ(s.count(), 1000u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.25);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  const ConfidenceInterval ci = s.ci95();
  EXPECT_DOUBLE_EQ(ci.mean, 2.25);
  EXPECT_DOUBLE_EQ(ci.half_width, 0.0);
  EXPECT_TRUE(ci.contains(2.25));
  EXPECT_FALSE(ci.contains(2.2500001));
  EXPECT_DOUBLE_EQ(s.min(), 2.25);
  EXPECT_DOUBLE_EQ(s.max(), 2.25);
}

TEST(Summary, InfiniteSamplePropagatesToMeanAndExtremes) {
  const double inf = std::numeric_limits<double>::infinity();
  Summary s;
  s.add(1.0);
  s.add(inf);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_TRUE(std::isinf(s.mean()));
  EXPECT_GT(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_TRUE(std::isinf(s.max()));
  // Welford's m2 update multiplies inf by nan-producing differences: the
  // variance is no longer meaningful, but it must not be negative or trap.
  EXPECT_FALSE(s.variance() < 0.0);

  Summary negative;
  negative.add(-inf);
  EXPECT_TRUE(std::isinf(negative.min()));
  EXPECT_LT(negative.min(), 0.0);
  EXPECT_TRUE(std::isinf(negative.mean()));
  EXPECT_LT(negative.mean(), 0.0);
}

TEST(TQuantile, SmallDofExactAndAsymptoticTail) {
  // Exact table values for small degrees of freedom...
  EXPECT_NEAR(t_quantile_975(1), 12.706, 1e-3);
  EXPECT_NEAR(t_quantile_975(4), 2.776, 1e-3);
  EXPECT_NEAR(t_quantile_975(19), 2.093, 1e-3);
  // ... and the asymptotic normal multiplier far out.
  EXPECT_NEAR(t_quantile_975(10000), 1.96, 1e-2);
  // dof 0: nothing is known; the multiplier must make the CI infinite.
  EXPECT_TRUE(std::isinf(t_quantile_975(0)) || t_quantile_975(0) > 100.0);
}

TEST(Median, OddAndEvenSizes) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
  EXPECT_DOUBLE_EQ(median({7.0}), 7.0);
}

}  // namespace
}  // namespace mstc::util
