#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace mstc::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, DefaultSizeIsAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(1000);
  parallel_for(pool, visits.size(),
               [&visits](std::size_t i) { visits[i].fetch_add(1); });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelFor, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelFor, MatchesSerialResult) {
  // Deterministic slot-based output: parallel result equals serial result.
  ThreadPool pool(8);
  std::vector<double> parallel_out(500), serial_out(500);
  const auto body = [](std::size_t i) {
    double acc = 0.0;
    for (std::size_t k = 0; k <= i; ++k) acc += static_cast<double>(k * k);
    return acc;
  };
  parallel_for(pool, parallel_out.size(),
               [&](std::size_t i) { parallel_out[i] = body(i); });
  for (std::size_t i = 0; i < serial_out.size(); ++i) serial_out[i] = body(i);
  EXPECT_EQ(parallel_out, serial_out);
}

TEST(ParallelFor, ReusablePoolAcrossCalls) {
  ThreadPool pool(3);
  std::atomic<long> total{0};
  for (int round = 0; round < 5; ++round) {
    parallel_for(pool, 100, [&total](std::size_t i) {
      total.fetch_add(static_cast<long>(i));
    });
  }
  EXPECT_EQ(total.load(), 5 * (99 * 100 / 2));
}

TEST(ParallelForChunked, EveryChunkSizeVisitsEveryIndexOnce) {
  ThreadPool pool(4);
  // 1 = pre-chunking escape hatch, 3 = uneven tail chunk, 0 = default
  // heuristic, 1000 = single chunk larger than n.
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{3},
                                  std::size_t{0}, std::size_t{1000}}) {
    std::vector<std::atomic<int>> visits(257);  // prime-ish, uneven tail
    parallel_for_chunked(pool, visits.size(), chunk,
                         [&visits](std::size_t i) { visits[i].fetch_add(1); });
    for (std::size_t i = 0; i < visits.size(); ++i) {
      ASSERT_EQ(visits[i].load(), 1)
          << "index " << i << " with chunk size " << chunk;
    }
  }
}

TEST(ParallelForChunked, ChunkSizeDoesNotChangeSlotResults) {
  // The determinism contract: slot-based outputs are bit-identical to a
  // serial loop for *any* chunk size.
  ThreadPool pool(8);
  const auto body = [](std::size_t i) {
    double acc = 0.0;
    for (std::size_t k = 0; k <= i % 60; ++k) {
      acc += static_cast<double>(k) * 1e-3;
    }
    return acc;
  };
  std::vector<double> serial(400);
  for (std::size_t i = 0; i < serial.size(); ++i) serial[i] = body(i);
  for (const std::size_t chunk :
       {std::size_t{1}, std::size_t{7}, std::size_t{0}, std::size_t{400}}) {
    std::vector<double> out(serial.size(), -1.0);
    parallel_for_chunked(pool, out.size(), chunk,
                         [&](std::size_t i) { out[i] = body(i); });
    EXPECT_EQ(out, serial) << "chunk size " << chunk;
  }
}

TEST(ThreadPool, TryRunOneDrainsQueueFromCaller) {
  ThreadPool pool(2);
  // Park both workers so the tasks submitted next stay queued; wait until
  // the workers have actually claimed the parking tasks, or try_run_one
  // below could claim one itself and spin on a flag this thread sets later.
  std::atomic<bool> release{false};
  std::atomic<int> parked{0};
  for (int w = 0; w < 2; ++w) {
    pool.submit([&release, &parked] {
      parked.fetch_add(1);
      while (!release.load()) std::this_thread::yield();
    });
  }
  while (parked.load() < 2) std::this_thread::yield();
  std::atomic<int> counter{0};
  for (int i = 0; i < 5; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  // The calling thread runs the queued work itself.
  while (pool.try_run_one()) {
  }
  EXPECT_EQ(counter.load(), 5);
  release.store(true);
  pool.wait_idle();
  EXPECT_FALSE(pool.try_run_one());
}

TEST(ParallelForChunked, NestedSubmissionDoesNotDeadlock) {
  // Regression test for the sharded-kernel pattern: a replication task
  // running *on* the pool fans a parallel_for over the same pool. With the
  // old wait_idle()-based implementation every outer task counted itself
  // in the in-flight total, so any nested wait deadlocked; the
  // caller-participating rewrite must finish even when outer tasks occupy
  // every worker. TSan (the concurrency label) checks the completion
  // handshake while it runs.
  ThreadPool pool(4);
  constexpr std::size_t kOuter = 8;  // > workers: some outer tasks queue
  constexpr std::size_t kInner = 64;
  std::vector<std::array<std::atomic<int>, kInner>> visits(kOuter);
  std::atomic<int> outer_done{0};
  for (std::size_t o = 0; o < kOuter; ++o) {
    pool.submit([&pool, &visits, &outer_done, o] {
      parallel_for_chunked(pool, kInner, 1, [&visits, o](std::size_t i) {
        visits[o][i].fetch_add(1);
      });
      outer_done.fetch_add(1);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(outer_done.load(), static_cast<int>(kOuter));
  for (std::size_t o = 0; o < kOuter; ++o) {
    for (std::size_t i = 0; i < kInner; ++i) {
      ASSERT_EQ(visits[o][i].load(), 1) << "outer " << o << " inner " << i;
    }
  }
}

TEST(ParallelForChunked, NestedFromSingleWorkerRunsInline) {
  // Worst case: a one-worker pool whose only worker issues the nested
  // call. Nothing else can help, so the worker must run every index
  // itself and return.
  ThreadPool pool(1);
  std::atomic<int> count{0};
  pool.submit([&pool, &count] {
    parallel_for(pool, 100, [&count](std::size_t) { count.fetch_add(1); });
  });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(DefaultParallelChunk, HeuristicKeepsSmallSweepsMaximallyBalanced) {
  // n <= 8 * workers -> chunk 1 (a sweep of a few dozen replications
  // should never serialize two onto one grab).
  EXPECT_EQ(default_parallel_chunk(16, 4), 1u);
  EXPECT_EQ(default_parallel_chunk(32, 4), 1u);
  // Large index spaces amortize: ~8 grabs per worker.
  EXPECT_EQ(default_parallel_chunk(3200, 4), 100u);
  EXPECT_GE(default_parallel_chunk(0, 4), 1u);
  EXPECT_GE(default_parallel_chunk(100, 0), 1u);
}

TEST(GlobalPool, IsSingletonAndUsable) {
  ThreadPool& a = global_pool();
  ThreadPool& b = global_pool();
  EXPECT_EQ(&a, &b);
  std::atomic<int> counter{0};
  parallel_for(a, 10, [&counter](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 10);
}

}  // namespace
}  // namespace mstc::util
