#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace mstc::util {
namespace {

TEST(Table, CsvRoundTrip) {
  Table t({"protocol", "range", "degree"});
  t.add_row({std::string("MST"), 65.1, std::int64_t{2}});
  t.add_row({std::string("RNG"), 80.0, std::int64_t{3}});
  EXPECT_EQ(t.to_csv(),
            "protocol,range,degree\n"
            "MST,65.100,2\n"
            "RNG,80.000,3\n");
}

TEST(Table, PrecisionIsConfigurable) {
  Table t({"x"});
  t.set_precision(1);
  t.add_row({3.14159});
  EXPECT_EQ(t.to_csv(), "x\n3.1\n");
}

TEST(Table, PrintAlignsColumns) {
  Table t({"name", "v"});
  t.set_title("demo");
  t.add_row({std::string("a"), std::int64_t{1}});
  t.add_row({std::string("longer"), std::int64_t{22}});
  std::ostringstream out;
  t.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("demo"), std::string::npos);
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("longer"), std::string::npos);
  // Header separator row of dashes is present.
  EXPECT_NE(text.find("----"), std::string::npos);
}

TEST(Table, RowCountTracksRows) {
  Table t({"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({std::int64_t{1}});
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(Table, MaybeWriteCsvEmptyDirIsNoop) {
  Table t({"a"});
  t.add_row({std::int64_t{1}});
  t.maybe_write_csv("", "nope");  // must not crash or create files
  SUCCEED();
}

TEST(FormatCi, FormatsMeanAndHalfWidth) {
  EXPECT_EQ(format_ci(0.95, 0.012, 2), "0.95 ±0.01");
}

}  // namespace
}  // namespace mstc::util
