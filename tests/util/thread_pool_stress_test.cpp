// Concurrency stress tests for the thread pool, written to run under
// ThreadSanitizer (ctest label "concurrency"): multiple producers submit
// while other threads call wait_idle(), pools are torn down with work
// queued, and parallel_for is driven from several threads at once.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

namespace mstc::util {
namespace {

TEST(ThreadPoolStress, ManyProducersWithConcurrentWaitIdle) {
  constexpr int kProducers = 4;
  constexpr int kTasksPerProducer = 250;
  ThreadPool pool(3);
  std::atomic<int> executed{0};

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, &executed] {
      for (int i = 0; i < kTasksPerProducer; ++i) {
        pool.submit([&executed] { executed.fetch_add(1); });
        if (i % 50 == 0) pool.wait_idle();  // waiters interleave with submits
      }
    });
  }
  for (auto& producer : producers) producer.join();
  pool.wait_idle();
  EXPECT_EQ(executed.load(), kProducers * kTasksPerProducer);
}

TEST(ThreadPoolStress, WaitIdleFromMultipleThreadsSimultaneously) {
  ThreadPool pool(2);
  std::atomic<int> executed{0};
  for (int i = 0; i < 500; ++i) {
    pool.submit([&executed] { executed.fetch_add(1); });
  }
  std::vector<std::thread> waiters;
  waiters.reserve(3);
  for (int w = 0; w < 3; ++w) {
    waiters.emplace_back([&pool] { pool.wait_idle(); });
  }
  for (auto& waiter : waiters) waiter.join();
  pool.wait_idle();
  EXPECT_EQ(executed.load(), 500);
}

TEST(ThreadPoolStress, DestructorDrainsQueuedTasks) {
  // Teardown with a deep queue: every queued task must still run (workers
  // drain the queue after stopping_ is set) and join must not hang.
  std::atomic<int> executed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 300; ++i) {
      pool.submit([&executed] { executed.fetch_add(1); });
    }
  }  // ~ThreadPool
  EXPECT_EQ(executed.load(), 300);
}

TEST(ThreadPoolStress, ParallelForFromConcurrentCallers) {
  // Two threads drive parallel_for on the same pool; each must observe its
  // own full iteration space despite shared in_flight_ accounting.
  ThreadPool pool(4);
  std::atomic<long> sum_a{0}, sum_b{0};
  std::thread caller_a([&] {
    parallel_for(pool, 400, [&sum_a](std::size_t i) {
      sum_a.fetch_add(static_cast<long>(i));
    });
  });
  std::thread caller_b([&] {
    parallel_for(pool, 400, [&sum_b](std::size_t i) {
      sum_b.fetch_add(static_cast<long>(i));
    });
  });
  caller_a.join();
  caller_b.join();
  constexpr long kExpected = 399L * 400L / 2L;
  EXPECT_EQ(sum_a.load(), kExpected);
  EXPECT_EQ(sum_b.load(), kExpected);
}

TEST(ThreadPoolStress, RepeatedConstructDestroyCycles) {
  for (int cycle = 0; cycle < 20; ++cycle) {
    ThreadPool pool(2);
    std::atomic<int> executed{0};
    for (int i = 0; i < 20; ++i) {
      pool.submit([&executed] { executed.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(executed.load(), 20);
  }
}

}  // namespace
}  // namespace mstc::util
