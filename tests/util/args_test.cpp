#include "util/args.hpp"

#include <gtest/gtest.h>

namespace mstc::util {
namespace {

ArgParser parse(std::initializer_list<const char*> tokens) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), tokens.begin(), tokens.end());
  return ArgParser(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgParser, KeyValuePairs) {
  const auto args = parse({"--protocol", "RNG", "--speed=40"});
  EXPECT_EQ(args.get("protocol", std::string("x")), "RNG");
  EXPECT_DOUBLE_EQ(args.get("speed", 0.0), 40.0);
}

TEST(ArgParser, BareSwitch) {
  const auto args = parse({"--pn", "--buffer", "10"});
  EXPECT_TRUE(args.get_flag("pn"));
  EXPECT_FALSE(args.get_flag("adaptive"));
  EXPECT_DOUBLE_EQ(args.get("buffer", 0.0), 10.0);
}

TEST(ArgParser, SwitchFollowedByOption) {
  // "--pn --mode weak": --pn must not consume --mode as its value.
  const auto args = parse({"--pn", "--mode", "weak"});
  EXPECT_TRUE(args.get_flag("pn"));
  EXPECT_EQ(args.get("mode", std::string("latest")), "weak");
}

TEST(ArgParser, TypedFallbacks) {
  const auto args = parse({"--count", "7", "--bad", "x7"});
  EXPECT_EQ(args.get("count", 0L), 7);
  EXPECT_EQ(args.get("bad", 3L), 3) << "malformed value falls back";
  EXPECT_EQ(args.get("missing", 9L), 9);
  EXPECT_DOUBLE_EQ(args.get("missing", 2.5), 2.5);
}

TEST(ArgParser, PositionalArguments) {
  const auto args = parse({"alpha", "--k", "v", "beta"});
  EXPECT_EQ(args.positional(), (std::vector<std::string>{"alpha", "beta"}));
}

TEST(ArgParser, UnknownTracksUnqueriedOptions) {
  const auto args = parse({"--known", "1", "--typo", "2"});
  (void)args.get("known", 0L);
  const auto unknown = args.unknown();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

TEST(ArgParser, ValueOfBareSwitchIsNullopt) {
  const auto args = parse({"--flag"});
  EXPECT_TRUE(args.has("flag"));
  EXPECT_FALSE(args.value("flag").has_value());
}

}  // namespace
}  // namespace mstc::util
