// Executable determinism contract (ctest label "concurrency").
//
// The repo promises two invariants: (1) every run is a pure function of
// (config, seed), and (2) pool-backed sweeps are bit-identical to serial
// execution regardless of thread count. These tests byte-compare metric
// outputs — exact IEEE-754 bit patterns via bit_cast, not EXPECT_NEAR —
// across serial re-runs and 1-, 2- and N-thread pools, so any source of
// nondeterminism (unordered iteration, uninitialized reads, racing
// accumulation) fails the suite instead of silently skewing Figs. 6-10.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <thread>
#include <vector>

#include "metrics/aggregate.hpp"
#include "mobility/trace_cache.hpp"
#include "runner/scenario.hpp"
#include "runner/sweep.hpp"
#include "util/prng.hpp"
#include "util/thread_pool.hpp"

namespace mstc::runner {
namespace {

// Exact bit patterns of every metric in a RunStats — two results are
// "byte-identical" iff these vectors compare equal.
std::vector<std::uint64_t> bit_snapshot(const metrics::RunStats& stats) {
  return {std::bit_cast<std::uint64_t>(stats.delivery_ratio),
          std::bit_cast<std::uint64_t>(stats.strict_connectivity),
          std::bit_cast<std::uint64_t>(stats.mean_range),
          std::bit_cast<std::uint64_t>(stats.mean_logical_degree),
          std::bit_cast<std::uint64_t>(stats.mean_physical_degree),
          std::bit_cast<std::uint64_t>(stats.control_tx_rate),
          std::bit_cast<std::uint64_t>(stats.mac_collision_fraction)};
}

std::vector<std::uint64_t> bit_snapshot(
    const std::vector<metrics::RunStats>& runs) {
  std::vector<std::uint64_t> bits;
  bits.reserve(runs.size() * 7);
  for (const auto& run : runs) {
    const auto one = bit_snapshot(run);
    bits.insert(bits.end(), one.begin(), one.end());
  }
  return bits;
}

std::vector<ScenarioConfig> representative_configs() {
  ScenarioConfig baseline;
  baseline.protocol = "RNG";
  baseline.average_speed = 30.0;
  baseline.duration = 6.0;
  baseline.warmup = 1.5;
  baseline.seed = 987654321;

  ScenarioConfig consistent = baseline;
  consistent.protocol = "MST";
  consistent.mode = core::ConsistencyMode::kWeak;
  consistent.buffer_width = 50.0;

  ScenarioConfig contended = baseline;
  contended.protocol = "SPT-2";
  contended.mode = core::ConsistencyMode::kViewSync;
  contended.mac = "csma";

  return {baseline, consistent, contended};
}

constexpr std::size_t kRepeats = 2;

// Plain-loop reference: what run_batch_raw must reproduce exactly.
std::vector<metrics::RunStats> serial_reference(
    const std::vector<ScenarioConfig>& configs, std::size_t repeats) {
  std::vector<metrics::RunStats> results;
  results.reserve(configs.size() * repeats);
  for (const auto& config : configs) {
    for (std::size_t r = 0; r < repeats; ++r) {
      ScenarioConfig replica = config;
      replica.seed = util::derive_seed(config.seed, r + 1);
      results.push_back(run_scenario(replica));
    }
  }
  return results;
}

TEST(Determinism, SerialRerunIsByteIdentical) {
  const auto configs = representative_configs();
  const auto first = bit_snapshot(serial_reference(configs, kRepeats));
  const auto second = bit_snapshot(serial_reference(configs, kRepeats));
  ASSERT_EQ(first, second)
      << "run_scenario is not a pure function of (config, seed)";
}

TEST(Determinism, PoolSizesOneTwoAndNMatchSerialByteForByte) {
  const auto configs = representative_configs();
  const auto reference = bit_snapshot(serial_reference(configs, kRepeats));

  const std::size_t hardware = std::max<std::size_t>(
      2, std::thread::hardware_concurrency());
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, hardware}) {
    util::ThreadPool pool(threads);
    const auto parallel =
        bit_snapshot(run_batch_raw(configs, kRepeats, pool));
    ASSERT_EQ(parallel, reference)
        << "sweep through a " << threads
        << "-thread pool diverged from serial execution";
  }
}

TEST(Determinism, GlobalPoolBatchMatchesSerial) {
  const auto configs = representative_configs();
  const auto reference = serial_reference(configs, kRepeats);
  const auto aggregated = run_batch(configs, kRepeats);
  ASSERT_EQ(aggregated.size(), configs.size());

  metrics::RunAggregator manual;
  for (std::size_t r = 0; r < kRepeats; ++r) manual.add(reference[r]);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(aggregated[0].delivery().mean()),
            std::bit_cast<std::uint64_t>(manual.delivery().mean()));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(aggregated[0].strict().mean()),
            std::bit_cast<std::uint64_t>(manual.strict().mean()));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(aggregated[0].control_tx().mean()),
            std::bit_cast<std::uint64_t>(manual.control_tx().mean()));
}

TEST(Determinism, ObservationOnDoesNotChangeResults) {
  // The observability layer's core contract: attaching counters, tracing
  // and profiling to every replication must leave the simulation outputs
  // byte-identical — observation never feeds back into simulation state.
  const auto configs = representative_configs();
  util::ThreadPool pool(3);
  const auto plain = bit_snapshot(run_batch_raw(configs, kRepeats, pool));

  std::vector<obs::RunObservation> observations;
  SweepHooks hooks;
  hooks.observations = &observations;
  hooks.trace = true;
  hooks.profile = true;
  const auto observed =
      bit_snapshot(run_batch_raw(configs, kRepeats, pool, hooks));

  ASSERT_EQ(observed, plain)
      << "tracing/profiling changed simulation results";
  ASSERT_EQ(observations.size(), configs.size() * kRepeats);
  for (const auto& observation : observations) {
    EXPECT_GT(observation.counters.total(obs::Counter::kHelloTx), 0u);
    EXPECT_FALSE(observation.trace.empty());
  }
}

TEST(Determinism, LedgerAndExporterOnDoesNotChangeResults) {
  // PR 7's telemetry layer rides the same contract: resource ledgers,
  // flight recording, streaming metrics exposition and the straggler
  // watchdog all read finished runs and write their own files — none of
  // it may perturb simulation outputs.
  const auto configs = representative_configs();
  util::ThreadPool pool(3);
  const auto plain = bit_snapshot(run_batch_raw(configs, kRepeats, pool));

  obs::MetricsExporter exporter;
  obs::MetricsExporter::Options options;
  options.jsonl_path = testing::TempDir() + "det_metrics.jsonl";
  options.prom_path = testing::TempDir() + "det_metrics.prom";
  ASSERT_TRUE(exporter.open(options));
  obs::PostMortemWriter postmortem;
  ASSERT_TRUE(postmortem.open(testing::TempDir() + "det_postmortem.jsonl"));

  std::vector<obs::RunObservation> observations;
  SweepHooks hooks;
  hooks.observations = &observations;
  hooks.ledger = true;
  hooks.flight = true;
  hooks.flight_capacity = 64;
  hooks.exporter = &exporter;
  hooks.postmortem = &postmortem;
  // Generous deadline: the watchdog must arm without ever firing here.
  hooks.soft_deadline_seconds = 3600.0;
  const auto observed =
      bit_snapshot(run_batch_raw(configs, kRepeats, pool, hooks));
  exporter.close();

  ASSERT_EQ(observed, plain)
      << "ledger/flight/exporter/watchdog changed simulation results";
  ASSERT_EQ(observations.size(), configs.size() * kRepeats);
  EXPECT_EQ(exporter.completed(), configs.size() * kRepeats);
  EXPECT_EQ(postmortem.incidents(), 0u);
  for (const auto& observation : observations) {
    EXPECT_TRUE(observation.ledger.captured);
    EXPECT_GT(observation.ledger.events, 0u);
    EXPECT_GT(observation.ledger.total_wall_ns, 0u);
    EXPECT_GT(observation.flight.total_recorded(), 0u);
  }
}

TEST(Determinism, GridIndexedMediumMatchesBruteForceByteForByte) {
  // The medium's spatial index (PR 3) is an optimization with a
  // bit-identity contract: conservative-radius candidate filtering plus
  // exact checks must reproduce the brute-force receiver sets exactly, so
  // whole sweeps — metrics, event ordering, everything — byte-compare
  // across the two paths. Runs through the pool so the TSan job also
  // covers the index's mutable caches.
  auto configs = representative_configs();
  // Representative fleets sit below the grid_min_nodes crossover; force the
  // index on so this test compares genuinely different code paths.
  for (auto& config : configs) config.medium_grid_min_nodes = 0;
  util::ThreadPool pool(3);
  const auto grid = bit_snapshot(run_batch_raw(configs, kRepeats, pool));

  for (auto& config : configs) config.medium_brute_force = true;
  const auto brute = bit_snapshot(run_batch_raw(configs, kRepeats, pool));

  ASSERT_EQ(grid, brute)
      << "grid-backed medium diverged from the brute-force scan";
}

TEST(Determinism, RecomputeCacheOnMatchesOff) {
  // The recompute cache (PR 4) skips the protocol run when the assembled
  // view's fingerprint — member ids and raw position bits, post-expiry —
  // matches the previous refresh. Equal fingerprints imply a bit-identical
  // view, so cached runs must byte-compare against cache-off runs: any
  // divergence means the key misses an input the selection depends on.
  // Serial and pooled, per the suite's standing contract.
  const auto cached = representative_configs();
  auto uncached = cached;
  for (auto& config : uncached) config.recompute_cache = false;

  const auto serial_on = bit_snapshot(serial_reference(cached, kRepeats));
  const auto serial_off = bit_snapshot(serial_reference(uncached, kRepeats));
  ASSERT_EQ(serial_on, serial_off)
      << "recompute cache changed serial simulation results";

  util::ThreadPool pool(3);
  const auto pooled_on = bit_snapshot(run_batch_raw(cached, kRepeats, pool));
  const auto pooled_off =
      bit_snapshot(run_batch_raw(uncached, kRepeats, pool));
  ASSERT_EQ(pooled_on, serial_on);
  ASSERT_EQ(pooled_off, serial_on)
      << "recompute cache changed pooled simulation results";
}

TEST(Determinism, SnapshotGridMatchesBruteForceByteForByte) {
  // The snapshot fast path (PR 5) mirrors the medium's contract: padded
  // grid candidate sets + exact predicate confirmation + union-find
  // connectivity must reproduce the brute-force measurement exactly, for
  // whole sweeps, not just isolated fleets (the differential suite covers
  // those). grid_min_nodes = 0 forces the snapshot grid on representative
  // fleets that sit below the crossover.
  auto configs = representative_configs();
  for (auto& config : configs) config.medium_grid_min_nodes = 0;
  util::ThreadPool pool(3);
  const auto grid = bit_snapshot(run_batch_raw(configs, kRepeats, pool));

  for (auto& config : configs) config.snapshot_brute_force = true;
  const auto brute = bit_snapshot(run_batch_raw(configs, kRepeats, pool));

  ASSERT_EQ(grid, brute)
      << "grid-backed snapshots diverged from the brute-force measurement";
}

TEST(Determinism, TraceCacheSharedMatchesPerReplication) {
  // Replications of one sweep point share a mobility TraceSet through
  // mobility::TraceCache (PR 5). Generation is pure in the cache key, so
  // cache-on sweeps must byte-compare against sweeps that regenerate
  // per replication (the MSTC_NO_TRACE_CACHE=1 escape hatch) — any
  // divergence means the key misses an input trace generation reads, or a
  // shared consumer mutated the set.
  const auto configs = representative_configs();
  util::ThreadPool pool(3);
  mobility::TraceCache::global().clear();
  const auto shared = bit_snapshot(run_batch_raw(configs, kRepeats, pool));
  // The representative configs differ only in protocol / mode / MAC — none
  // of which the trace key reads — so all three share one set per
  // replication seed: exactly kRepeats generations for the whole batch.
  // This is the setup saving the bench's amortization row quantifies.
  EXPECT_EQ(mobility::TraceCache::global().size(), kRepeats);

  ASSERT_EQ(setenv("MSTC_NO_TRACE_CACHE", "1", 1), 0);
  const auto regenerated =
      bit_snapshot(run_batch_raw(configs, kRepeats, pool));
  ASSERT_EQ(unsetenv("MSTC_NO_TRACE_CACHE"), 0);

  ASSERT_EQ(shared, regenerated)
      << "trace-cache sharing changed simulation results";

  // Belt and braces: the config-level switch takes the same path.
  auto uncached = configs;
  for (auto& config : uncached) config.trace_cache = false;
  const auto config_off =
      bit_snapshot(run_batch_raw(uncached, kRepeats, pool));
  ASSERT_EQ(shared, config_off);
}

TEST(Determinism, ChunkSizeOneSweepMatchesDefaultChunking) {
  // parallel_for hands out contiguous index chunks (PR 5); chunk size is
  // pure scheduling, so MSTC_PARALLEL_CHUNK=1 — the pre-chunking one-index-
  // per-grab behavior — must byte-match the default heuristic.
  const auto configs = representative_configs();
  util::ThreadPool pool(3);
  const auto chunked = bit_snapshot(run_batch_raw(configs, kRepeats, pool));

  ASSERT_EQ(setenv("MSTC_PARALLEL_CHUNK", "1", 1), 0);
  const auto unchunked =
      bit_snapshot(run_batch_raw(configs, kRepeats, pool));
  ASSERT_EQ(unsetenv("MSTC_PARALLEL_CHUNK"), 0);

  ASSERT_EQ(chunked, unchunked)
      << "chunk granularity changed sweep results";
}

TEST(Determinism, ShardedKernelMatchesSerialByteForByte) {
  // The sharded event kernel (PR 8) partitions the fleet into x-axis
  // strips and drains node-local events shard-parallel between
  // conservative barriers. Sharding is pure scheduling: any shard count
  // must byte-match the serial kernel, for mobile and static fleets, per
  // replication. Divergence means an event was misclassified (a "local"
  // handler touched shared state) or a barrier fired too late.
  ScenarioConfig waypoint;
  waypoint.protocol = "RNG";
  waypoint.average_speed = 30.0;
  waypoint.duration = 6.0;
  waypoint.warmup = 1.5;
  waypoint.seed = 246813579;

  ScenarioConfig still = waypoint;
  still.mobility_model = "static";
  still.protocol = "MST";
  still.mode = core::ConsistencyMode::kWeak;

  for (const auto& base : {waypoint, still}) {
    const auto reference = bit_snapshot(serial_reference({base}, kRepeats));
    for (const std::size_t shards :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
      ScenarioConfig sharded = base;
      sharded.shards = shards;
      ASSERT_EQ(bit_snapshot(serial_reference({sharded}, kRepeats)),
                reference)
          << base.mobility_model << " fleet diverged at " << shards
          << " shards";
    }

    // Env path: MSTC_SHARDS is how sweeps and benches opt in.
    ASSERT_EQ(setenv("MSTC_SHARDS", "3", 1), 0);
    const ScenarioConfig env_sharded = apply_env_overrides(base);
    EXPECT_EQ(env_sharded.shards, 3u);
    const auto via_env =
        bit_snapshot(serial_reference({env_sharded}, kRepeats));
    // Escape hatch: MSTC_KERNEL_SERIAL=1 forces the serial kernel even
    // with a shard count configured.
    ASSERT_EQ(setenv("MSTC_KERNEL_SERIAL", "1", 1), 0);
    const auto hatched =
        bit_snapshot(serial_reference({env_sharded}, kRepeats));
    ASSERT_EQ(unsetenv("MSTC_KERNEL_SERIAL"), 0);
    ASSERT_EQ(unsetenv("MSTC_SHARDS"), 0);
    ASSERT_EQ(via_env, reference);
    ASSERT_EQ(hatched, reference);
  }
}

TEST(Determinism, CalendarQueueMatchesHeapByteForByte) {
  // The calendar event queue (see sim/event_queue.hpp) orders events by
  // the same strict (time, sequence) total order the heap reference does,
  // so every backend/shard combination must produce byte-identical stats.
  // Divergence means the calendar popped out of order somewhere — a
  // bucket-boundary, overflow-ladder or resize bug.
  ScenarioConfig waypoint;
  waypoint.protocol = "RNG";
  waypoint.average_speed = 30.0;
  waypoint.duration = 6.0;
  waypoint.warmup = 1.5;
  waypoint.seed = 975318642;

  ScenarioConfig still = waypoint;
  still.mobility_model = "static";
  still.protocol = "MST";
  still.mode = core::ConsistencyMode::kWeak;

  for (const auto& base : {waypoint, still}) {
    ScenarioConfig heap = base;
    heap.queue = "heap";
    const auto reference = bit_snapshot(serial_reference({heap}, kRepeats));
    for (const std::size_t shards :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
      ScenarioConfig calendar = base;
      calendar.queue = "calendar";
      calendar.shards = shards;
      ASSERT_EQ(bit_snapshot(serial_reference({calendar}, kRepeats)),
                reference)
          << base.mobility_model << " fleet diverged at " << shards
          << " shards on the calendar queue";
    }

    // Escape hatch: MSTC_EVENT_QUEUE=heap overrides the config default.
    ASSERT_EQ(setenv("MSTC_EVENT_QUEUE", "heap", 1), 0);
    const ScenarioConfig hatched = apply_env_overrides(base);
    EXPECT_EQ(hatched.queue, "heap");
    const auto via_env = bit_snapshot(serial_reference({hatched}, kRepeats));
    ASSERT_EQ(unsetenv("MSTC_EVENT_QUEUE"), 0);
    ASSERT_EQ(via_env, reference);
  }
}

TEST(Determinism, ShardedReplicationsShareThePoolWithSweeps) {
  // Shards and replications share one ThreadPool: a sweep task running a
  // sharded replication re-enters the pool at every barrier drain
  // (nested submission). The pool's caller-participates contract makes
  // that deadlock-free, and results must still byte-match serial.
  auto configs = representative_configs();
  for (auto& config : configs) config.shards = 4;
  const auto reference = bit_snapshot(serial_reference(configs, kRepeats));
  util::ThreadPool pool(3);
  const auto pooled = bit_snapshot(run_batch_raw(configs, kRepeats, pool));
  ASSERT_EQ(pooled, reference)
      << "sharded replications through a sweep pool diverged from serial";
}

TEST(Determinism, RepeatedParallelBatchesAreByteIdentical) {
  // Pool reuse across batches must not leak state between sweeps.
  const auto configs = representative_configs();
  util::ThreadPool pool(3);
  const auto first = bit_snapshot(run_batch_raw(configs, kRepeats, pool));
  const auto second = bit_snapshot(run_batch_raw(configs, kRepeats, pool));
  ASSERT_EQ(first, second);
}

TEST(Determinism, BatchedDeliveryMatchesUnbatchedByteForByte) {
  // Batched broadcast fan-out (this PR) turns one Hello into ONE queue
  // entry carrying the receiver span instead of one closure per receiver,
  // pre-assigning the exact (time, sequence) keys the per-receiver loop
  // would have drawn. Pure storage optimization: every (config, shard)
  // combination must byte-match the unbatched escape hatch.
  ScenarioConfig waypoint;
  waypoint.protocol = "RNG";
  waypoint.average_speed = 30.0;
  waypoint.duration = 6.0;
  waypoint.warmup = 1.5;
  waypoint.seed = 864213579;

  ScenarioConfig still = waypoint;
  still.mobility_model = "static";
  still.protocol = "MST";
  still.mode = core::ConsistencyMode::kWeak;

  for (const auto& base : {waypoint, still}) {
    for (const std::size_t shards :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
      ScenarioConfig config = base;
      config.shards = shards;
      const auto batched =
          bit_snapshot(serial_reference({config}, kRepeats));

      // Env hatch: MSTC_NO_BATCH_DELIVERY=1 restores the per-receiver
      // schedule_local loop.
      ASSERT_EQ(setenv("MSTC_NO_BATCH_DELIVERY", "1", 1), 0);
      const ScenarioConfig hatched = apply_env_overrides(config);
      EXPECT_FALSE(hatched.batch_delivery);
      const auto unbatched =
          bit_snapshot(serial_reference({hatched}, kRepeats));
      ASSERT_EQ(unsetenv("MSTC_NO_BATCH_DELIVERY"), 0);
      ASSERT_EQ(batched, unbatched)
          << base.mobility_model << " fleet diverged at " << shards
          << " shards with batched delivery";

      // Belt and braces: the config-level switch takes the same path.
      ScenarioConfig config_off = config;
      config_off.batch_delivery = false;
      ASSERT_EQ(bit_snapshot(serial_reference({config_off}, kRepeats)),
                batched);
    }
  }
}

TEST(Determinism, ScalarFilterMatchesWideByteForByte) {
  // The SIMD/SoA candidate filter (this PR) re-checks grid candidates
  // against the exact range in wide blocks; lane arithmetic is
  // operation-for-operation the scalar predicate, so the wide and scalar
  // builds must byte-match over whole runs. grid_min_nodes = 0 forces the
  // grid (and with it the batched filter) on representative fleets.
  auto configs = representative_configs();
  for (auto& config : configs) config.medium_grid_min_nodes = 0;
  const auto wide = bit_snapshot(serial_reference(configs, kRepeats));

  // Env hatch: MSTC_FILTER_SCALAR=1 routes medium and snapshot filtering
  // through the portable scalar loop.
  ASSERT_EQ(setenv("MSTC_FILTER_SCALAR", "1", 1), 0);
  auto hatched = configs;
  for (auto& config : hatched) config = apply_env_overrides(config);
  EXPECT_TRUE(hatched.front().scalar_filter);
  const auto scalar = bit_snapshot(serial_reference(hatched, kRepeats));
  ASSERT_EQ(unsetenv("MSTC_FILTER_SCALAR"), 0);
  ASSERT_EQ(wide, scalar)
      << "wide candidate filter diverged from the scalar reference";

  // Belt and braces: the config-level switch takes the same path.
  auto config_off = configs;
  for (auto& config : config_off) config.scalar_filter = true;
  ASSERT_EQ(bit_snapshot(serial_reference(config_off, kRepeats)), wide);
}

}  // namespace
}  // namespace mstc::runner
