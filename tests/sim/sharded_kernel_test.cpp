// Sharded-kernel differential suite (ctest label "concurrency").
//
// Simulator-level edge cases for the spatially sharded event kernel:
// every test runs a workload of interleaved serial / node-local events
// through the serial kernel and through sharded plans (rotating
// ownership, barrier-aligned events, infinite lookahead, one-node
// shards) and requires the recorded execution — per-node delivery logs,
// the serial-event log, and the processed-event count — to match exactly.
// The pool is always multi-threaded so the TSan job exercises real
// cross-thread batch drains even on single-core runners.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "obs/probe.hpp"
#include "sim/simulator.hpp"
#include "util/thread_pool.hpp"

namespace mstc::sim {
namespace {

// (time, tag) records; exact doubles, so comparisons are bit-strict.
using Recorded = std::pair<double, int>;

struct WorkloadResult {
  std::vector<std::vector<Recorded>> node_logs;  // per-node local deliveries
  std::vector<Recorded> serial_log;              // serial events, global order
  std::vector<double> remap_times;               // when ownership was mapped
  std::uint64_t processed = 0;
};

constexpr int kNodes = 8;
constexpr double kHorizon = 10.0;

// One node's beacon-like chain: a serial event that records itself,
// fans two node-local deliveries out to neighbors, and reschedules.
// Mirrors the scenario's shape (serial sender, deferred receivers).
void chain(Simulator& sim, std::uint32_t u, double period,
           WorkloadResult& result) {
  const double now = sim.now();
  result.serial_log.emplace_back(now, static_cast<int>(u));
  for (std::uint32_t k = 1; k <= 2; ++k) {
    const std::uint32_t v = (u + k) % kNodes;
    const double at = now + 0.01;
    auto& log = result.node_logs[v];
    sim.schedule_local(at, v, [&log, at, u] {
      log.emplace_back(at, static_cast<int>(u));
    });
  }
  if (now + period <= kHorizon) {
    sim.schedule_serial(now + period, u, [&sim, u, period, &result] {
      chain(sim, u, period, result);
    });
  }
}

struct PlanSpec {
  std::uint32_t shards = 1;
  double lookahead = 0.0;
  double epoch_interval = 0.0;
  util::ThreadPool* pool = nullptr;
  bool rotate_ownership = false;  // shift the node -> shard map per epoch
};

WorkloadResult run_workload(const PlanSpec& spec,
                            obs::RunObservation* observation = nullptr) {
  Simulator sim;
  const obs::Probe probe(observation);
  sim.set_probe(observation != nullptr ? &probe : nullptr);
  WorkloadResult result;
  result.node_logs.resize(kNodes);
  if (spec.shards > 1) {
    Simulator::ShardPlan plan;
    plan.shards = spec.shards;
    plan.lookahead = spec.lookahead;
    plan.epoch_interval = spec.epoch_interval;
    plan.pool = spec.pool;
    plan.remap = [&result, spec](double t, std::vector<std::uint32_t>& owner) {
      result.remap_times.push_back(t);
      owner.resize(kNodes);
      // Rotating the strip map at every epoch makes every node cross a
      // shard boundary mid-run; ownership is a load-balancing choice, so
      // results must not care.
      const auto shift =
          spec.rotate_ownership ? static_cast<std::uint32_t>(t) : 0u;
      for (std::uint32_t u = 0; u < kNodes; ++u) {
        owner[u] = (u + shift) % spec.shards;
      }
    };
    sim.configure_sharding(std::move(plan));
  }
  for (std::uint32_t u = 0; u < kNodes; ++u) {
    const double period = 0.4 + 0.05 * static_cast<double>(u);
    sim.schedule_serial(0.05 * static_cast<double>(u), u,
                        [&sim, u, period, &result] {
                          chain(sim, u, period, result);
                        });
  }
  sim.run_until(kHorizon);
  result.processed = sim.processed_events();
  return result;
}

void expect_matches(const WorkloadResult& sharded,
                    const WorkloadResult& serial, const char* what) {
  EXPECT_EQ(sharded.serial_log, serial.serial_log) << what;
  EXPECT_EQ(sharded.processed, serial.processed) << what;
  for (int v = 0; v < kNodes; ++v) {
    EXPECT_EQ(sharded.node_logs[static_cast<std::size_t>(v)],
              serial.node_logs[static_cast<std::size_t>(v)])
        << what << ": node " << v;
  }
}

TEST(ShardedKernel, MatchesSerialAcrossShardCounts) {
  const WorkloadResult serial = run_workload({});
  util::ThreadPool pool(4);
  for (const std::uint32_t shards : {2u, 3u, 8u}) {
    const WorkloadResult sharded = run_workload(
        {.shards = shards, .lookahead = 0.05, .epoch_interval = 1.0,
         .pool = &pool});
    expect_matches(sharded, serial, "fixed ownership");
  }
}

TEST(ShardedKernel, BoundaryCrossingMidEpochIsHarmless) {
  // Ownership rotates at every epoch: each node's deliveries land in a
  // different shard's batch after each remap. Per-node order and the
  // global schedule must be untouched.
  const WorkloadResult serial = run_workload({});
  util::ThreadPool pool(4);
  const WorkloadResult sharded = run_workload(
      {.shards = 3, .lookahead = 0.05, .epoch_interval = 0.5, .pool = &pool,
       .rotate_ownership = true});
  expect_matches(sharded, serial, "rotating ownership");
  // configure + one remap per epoch barrier actually reached.
  EXPECT_GT(sharded.remap_times.size(), 10u);
}

TEST(ShardedKernel, EventExactlyAtBarrierTimeDrainsFirst) {
  // An event timestamped exactly on an epoch boundary must observe the
  // flushed, remapped world: the barrier fires at time >= epoch, not >.
  util::ThreadPool pool(4);
  Simulator sim;
  std::vector<int> order;
  std::vector<double> remaps;
  Simulator::ShardPlan plan;
  plan.shards = 2;
  plan.epoch_interval = 1.0;
  plan.pool = &pool;
  plan.remap = [&remaps](double t, std::vector<std::uint32_t>& owner) {
    remaps.push_back(t);
    owner.assign(kNodes, 0);
    owner[1] = 1;
  };
  sim.configure_sharding(std::move(plan));
  sim.schedule_local(0.995, 1, [&order] { order.push_back(1); });
  // Keyed to node 0 — no pending conflict of its own, so only the epoch
  // barrier can force the drain before it runs.
  sim.schedule_serial(1.0, 0, [&order] { order.push_back(2); });
  sim.run_until(2.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  ASSERT_EQ(remaps.size(), 2u);  // configure time + the t = 1.0 epoch
  EXPECT_EQ(remaps[0], 0.0);
  EXPECT_EQ(remaps[1], 1.0);
}

TEST(ShardedKernel, ZeroSpeedFleetClampsToOneFinalBarrier) {
  // A zero-speed fleet maps to lookahead <= 0 (clamped to infinity) and
  // no remap epochs: with no conflicting serial events, every node-local
  // event defers to one batch drained at the end of the run.
  util::ThreadPool pool(4);
  obs::RunObservation observation;
  Simulator sim;
  const obs::Probe probe(&observation);
  sim.set_probe(&probe);
  Simulator::ShardPlan plan;
  plan.shards = 2;
  plan.lookahead = 0.0;       // <= 0 means unbounded
  plan.epoch_interval = 0.0;  // no epochs
  plan.pool = &pool;
  std::size_t remaps = 0;
  plan.remap = [&remaps](double, std::vector<std::uint32_t>& owner) {
    ++remaps;
    owner.assign(kNodes, 0);
    owner[1] = 1;
  };
  sim.configure_sharding(std::move(plan));
  std::vector<Recorded> log0;
  std::vector<Recorded> log1;
  for (int i = 0; i < 9; ++i) {
    const double at = 1.0 + static_cast<double>(i);
    sim.schedule_local(at, i % 2 == 0 ? 0u : 1u,
                       [&log0, &log1, at, i] {
                         (i % 2 == 0 ? log0 : log1).emplace_back(at, i);
                       });
  }
  sim.run_until(20.0);
  EXPECT_EQ(remaps, 1u);  // configure-time map only
  EXPECT_EQ(observation.counters.total(obs::Counter::kKernelBarriers), 1u);
  ASSERT_EQ(log0.size(), 5u);
  ASSERT_EQ(log1.size(), 4u);
  for (std::size_t i = 1; i < log0.size(); ++i) {
    EXPECT_LT(log0[i - 1].first, log0[i].first) << "per-node FIFO broken";
  }
  // The one batch spanned the whole deferred window.
  const auto& span =
      observation.counters.histogram(obs::Hist::kKernelBatchSpan);
  EXPECT_EQ(span.count(), 1u);
  EXPECT_DOUBLE_EQ(span.sum(), 8.0);
}

TEST(ShardedKernel, SingleNodeShardsMatchSerial) {
  // Degenerate partition: one node per shard. Every delivery with a
  // distinct target lands in a distinct batch.
  const WorkloadResult serial = run_workload({});
  util::ThreadPool pool(4);
  const WorkloadResult sharded = run_workload(
      {.shards = kNodes, .lookahead = 0.1, .epoch_interval = 2.0,
       .pool = &pool});
  expect_matches(sharded, serial, "one-node shards");
}

TEST(ShardedKernel, LookaheadCapBoundsBatchSpans) {
  // A finite lookahead must force intermediate barriers: batch spans stay
  // below the cap even with no conflicting serial events.
  util::ThreadPool pool(4);
  obs::RunObservation observation;
  const WorkloadResult serial = run_workload({});
  const WorkloadResult sharded = run_workload(
      {.shards = 4, .lookahead = 0.02, .epoch_interval = 0.0, .pool = &pool},
      &observation);
  expect_matches(sharded, serial, "tight lookahead");
  EXPECT_GT(observation.counters.total(obs::Counter::kKernelBarriers), 20u);
}

TEST(ShardedKernel, CrossShardSchedulingIsCounted) {
  util::ThreadPool pool(2);
  obs::RunObservation observation;
  Simulator sim;
  const obs::Probe probe(&observation);
  sim.set_probe(&probe);
  Simulator::ShardPlan plan;
  plan.shards = 2;
  plan.pool = &pool;
  plan.remap = [](double, std::vector<std::uint32_t>& owner) {
    owner.assign(2, 0);
    owner[1] = 1;
  };
  sim.configure_sharding(std::move(plan));
  bool own_shard = false;
  bool other_shard = false;
  sim.schedule_serial(1.0, 0, [&sim, &own_shard, &other_shard] {
    sim.schedule_local(1.1, 0, [&own_shard] { own_shard = true; });
    sim.schedule_local(1.1, 1, [&other_shard] { other_shard = true; });
  });
  sim.run_until(2.0);
  EXPECT_TRUE(own_shard);
  EXPECT_TRUE(other_shard);
  EXPECT_EQ(observation.counters.total(obs::Counter::kKernelCrossShardEvents),
            1u);
}

}  // namespace
}  // namespace mstc::sim
