#include "sim/medium.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace mstc::sim {
namespace {

using geom::Vec2;
using mobility::Leg;
using mobility::Trace;

std::vector<Trace> line_of_nodes(double spacing, std::size_t count) {
  std::vector<Trace> traces;
  traces.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    traces.push_back(
        Trace({Leg{0.0, {spacing * static_cast<double>(i), 0.0}, {0, 0}}}, 100.0));
  }
  return traces;
}

TEST(Medium, ReceiversWithinRange) {
  const auto traces = line_of_nodes(10.0, 5);  // x = 0,10,20,30,40
  const Medium medium(traces, {});
  std::vector<NodeId> out;
  medium.receivers(0, 25.0, 0.0, out);
  EXPECT_EQ(out, (std::vector<NodeId>{1, 2}));
  medium.receivers(2, 10.0, 0.0, out);  // inclusive boundary
  EXPECT_EQ(out, (std::vector<NodeId>{1, 3}));
}

TEST(Medium, SenderIsExcluded) {
  const auto traces = line_of_nodes(10.0, 3);
  const Medium medium(traces, {});
  std::vector<NodeId> out;
  medium.receivers(1, 1000.0, 0.0, out);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_TRUE(std::find(out.begin(), out.end(), NodeId{1}) == out.end());
}

TEST(Medium, ReceiversTrackMotion) {
  // Node 1 moves away from node 0 at 5 m/s starting 10 m apart.
  std::vector<Trace> traces;
  traces.push_back(Trace({Leg{0.0, {0.0, 0.0}, {0.0, 0.0}}}, 100.0));
  traces.push_back(Trace({Leg{0.0, {10.0, 0.0}, {5.0, 0.0}}}, 100.0));
  const Medium medium(traces, {});
  std::vector<NodeId> out;
  medium.receivers(0, 20.0, 0.0, out);
  EXPECT_EQ(out.size(), 1u);
  medium.receivers(0, 20.0, 2.0, out);  // distance exactly 20: inclusive
  EXPECT_EQ(out.size(), 1u);
  medium.receivers(0, 20.0, 3.0, out);  // distance 25: out of range
  EXPECT_TRUE(out.empty());
}

TEST(Medium, DistanceAndPositionAgree) {
  const auto traces = line_of_nodes(7.0, 3);
  const Medium medium(traces, {});
  EXPECT_DOUBLE_EQ(medium.distance(0, 2, 0.0), 14.0);
  EXPECT_EQ(medium.position(1, 50.0), (Vec2{7.0, 0.0}));
}

TEST(Medium, LinksWithinMatchesPairwiseDistances) {
  const auto traces = line_of_nodes(10.0, 4);  // x = 0,10,20,30
  const Medium medium(traces, {});
  const auto links = medium.links_within(10.0, 0.0);
  // Exactly the consecutive pairs.
  ASSERT_EQ(links.size(), 3u);
  for (const auto& [u, v] : links) EXPECT_EQ(v, u + 1);
}

TEST(Medium, PositionsSnapshot) {
  const auto traces = line_of_nodes(5.0, 3);
  const Medium medium(traces, {});
  std::vector<Vec2> snapshot;
  medium.positions(0.0, snapshot);
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[2], (Vec2{10.0, 0.0}));
}

TEST(Medium, ConfigAccessors) {
  const auto traces = line_of_nodes(5.0, 2);
  const Medium medium(traces, {.propagation_delay = 1e-4});
  EXPECT_DOUBLE_EQ(medium.propagation_delay(), 1e-4);
  EXPECT_EQ(medium.node_count(), 2u);
}

}  // namespace
}  // namespace mstc::sim
