#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

namespace mstc::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  const Simulator simulator;
  EXPECT_DOUBLE_EQ(simulator.now(), 0.0);
  EXPECT_EQ(simulator.pending_events(), 0u);
}

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator simulator;
  std::vector<int> order;
  simulator.schedule_at(3.0, [&] { order.push_back(3); });
  simulator.schedule_at(1.0, [&] { order.push_back(1); });
  simulator.schedule_at(2.0, [&] { order.push_back(2); });
  simulator.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(simulator.processed_events(), 3u);
}

TEST(Simulator, SimultaneousEventsAreFifo) {
  Simulator simulator;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    simulator.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  simulator.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, CurrentSequenceTracksExecutingEvent) {
  Simulator simulator;
  std::vector<std::uint64_t> sequences;
  // Three simultaneous events: sequence is the schedule-call order, and
  // current_sequence() must expose exactly the executing event's number.
  for (int i = 0; i < 3; ++i) {
    simulator.schedule_at(1.0, [&] {
      sequences.push_back(simulator.current_sequence());
    });
  }
  simulator.schedule_at(2.0, [&] {
    sequences.push_back(simulator.current_sequence());
  });
  simulator.run_all();
  ASSERT_EQ(sequences.size(), 4u);
  EXPECT_EQ(sequences, (std::vector<std::uint64_t>{0, 1, 2, 3}));
  // After the run, the accessor keeps the last executed sequence.
  EXPECT_EQ(simulator.current_sequence(), 3u);
}

TEST(Simulator, CurrentSequenceOrdersNestedSchedules) {
  Simulator simulator;
  std::vector<std::uint64_t> order;
  simulator.schedule_at(1.0, [&] {
    order.push_back(simulator.current_sequence());
    // Scheduled mid-run at an already-passed tie time: still FIFO after
    // every previously scheduled t=1 event.
    simulator.schedule_at(1.0, [&] {
      order.push_back(simulator.current_sequence());
    });
  });
  simulator.schedule_at(1.0, [&] {
    order.push_back(simulator.current_sequence());
  });
  simulator.run_all();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_LT(order[0], order[1]);
  EXPECT_LT(order[1], order[2]);
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator simulator;
  double observed = -1.0;
  simulator.schedule_at(2.5, [&] { observed = simulator.now(); });
  simulator.run_all();
  EXPECT_DOUBLE_EQ(observed, 2.5);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator simulator;
  int fired = 0;
  simulator.schedule_at(1.0, [&] { ++fired; });
  simulator.schedule_at(2.0, [&] { ++fired; });
  simulator.schedule_at(3.0, [&] { ++fired; });
  simulator.run_until(2.0);  // inclusive boundary
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(simulator.now(), 2.0);
  EXPECT_EQ(simulator.pending_events(), 1u);
  simulator.run_until(10.0);
  EXPECT_EQ(fired, 3);
  EXPECT_DOUBLE_EQ(simulator.now(), 10.0);
}

TEST(Simulator, HandlersCanScheduleMoreEvents) {
  Simulator simulator;
  int ticks = 0;
  std::function<void()> tick = [&] {
    ++ticks;
    if (ticks < 5) simulator.schedule_in(1.0, tick);
  };
  simulator.schedule_at(0.0, tick);
  simulator.run_all();
  EXPECT_EQ(ticks, 5);
  EXPECT_DOUBLE_EQ(simulator.now(), 4.0);
}

TEST(Simulator, ScheduleInUsesCurrentTime) {
  Simulator simulator;
  double fired_at = -1.0;
  simulator.schedule_at(2.0, [&] {
    simulator.schedule_in(1.5, [&] { fired_at = simulator.now(); });
  });
  simulator.run_all();
  EXPECT_DOUBLE_EQ(fired_at, 3.5);
}

TEST(Simulator, RunUntilWithEmptyQueueAdvancesClock) {
  Simulator simulator;
  simulator.run_until(42.0);
  EXPECT_DOUBLE_EQ(simulator.now(), 42.0);
}

TEST(Simulator, OversizedHandlersFallBackToHeapAndStillFire) {
  // Handler stores closures up to kInlineSize bytes inline; anything
  // larger takes the documented single-allocation fallback. The fallback
  // must behave identically — fire in order, survive the queue's moves,
  // destroy cleanly — it is only slower.
  struct Payload {
    std::array<double, 32> samples{};  // 256 bytes: well past kInlineSize
    std::vector<double>* sink = nullptr;
  };
  Simulator simulator;
  std::vector<double> fired;
  for (int i = 0; i < 8; ++i) {
    Payload payload;
    payload.samples[0] = static_cast<double>(i);
    payload.sink = &fired;
    auto handler = [payload] { payload.sink->push_back(payload.samples[0]); };
    static_assert(!Handler::fits_inline<decltype(handler)>);
    simulator.schedule_at(static_cast<double>(7 - i), std::move(handler));
  }
  simulator.run_all();
  EXPECT_EQ(fired, (std::vector<double>{7, 6, 5, 4, 3, 2, 1, 0}));
  EXPECT_EQ(simulator.processed_events(), 8u);
}

TEST(Simulator, ReserveEventsPreservesBehavior) {
  // reserve_events is a capacity hint: scheduling under, at, and past the
  // reservation must fire exactly the same events in the same order as an
  // unreserved kernel. (The allocation win itself is pinned by
  // bench_kernel's allocs/event column, which a unit test cannot see.)
  Simulator reserved;
  Simulator plain;
  reserved.reserve_events(16);
  std::vector<int> from_reserved;
  std::vector<int> from_plain;
  for (int i = 0; i < 40; ++i) {  // 40 pending > the 16 reserved slots
    const double time = static_cast<double>((i * 7) % 11);
    reserved.schedule_at(time, [&from_reserved, i] {
      from_reserved.push_back(i);
    });
    plain.schedule_at(time, [&from_plain, i] { from_plain.push_back(i); });
  }
  reserved.run_all();
  plain.run_all();
  EXPECT_EQ(from_reserved, from_plain);
  EXPECT_EQ(reserved.processed_events(), 40u);
  EXPECT_EQ(reserved.pending_events(), 0u);
}

TEST(Simulator, StressRandomScheduleIsMonotone) {
  // Thousands of events scheduled in random order, some from inside
  // handlers: observed firing times must be nondecreasing and complete.
  Simulator simulator;
  std::uint64_t x = 12345;
  auto next_rand = [&x] {  // splitmix-style inline generator
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    return z ^ (z >> 27);
  };
  std::vector<double> observed;
  int spawned = 0;
  std::function<void()> handler = [&] {
    observed.push_back(simulator.now());
    if (spawned < 2000) {
      ++spawned;
      const double delay =
          static_cast<double>(next_rand() % 1000) / 100.0;
      simulator.schedule_in(delay, handler);
    }
  };
  for (int i = 0; i < 500; ++i) {
    simulator.schedule_at(static_cast<double>(next_rand() % 10000) / 10.0,
                          handler);
  }
  simulator.run_all();
  EXPECT_EQ(observed.size(), 2500u);
  for (std::size_t i = 1; i < observed.size(); ++i) {
    ASSERT_LE(observed[i - 1], observed[i]) << "at event " << i;
  }
  EXPECT_EQ(simulator.processed_events(), 2500u);
  EXPECT_EQ(simulator.pending_events(), 0u);
}

}  // namespace
}  // namespace mstc::sim
