// Event-queue backends: the calendar queue must pop the exact stream the
// heap reference pops — (time, sequence) is a strict total order, so every
// test drives both backends (or a sorted reference model) and demands
// identical output, including across the calendar's structural edge cases
// (bucket boundaries, the overflow ladder, mid-run resizes).
#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "sim/simulator.hpp"

namespace mstc::sim {
namespace {

EventKey make_event(Time time, std::uint64_t sequence) {
  return EventKey{time, sequence, static_cast<std::uint32_t>(sequence), 0};
}

/// Pops everything and checks the stream against the reference order.
void expect_pops_sorted(EventQueue& queue, std::vector<EventKey> reference) {
  std::sort(reference.begin(), reference.end(), EarlierEvent{});
  ASSERT_EQ(queue.size(), reference.size());
  for (const EventKey& expected : reference) {
    ASSERT_FALSE(queue.empty());
    const EventKey& top = queue.peek();
    EXPECT_DOUBLE_EQ(top.time, expected.time);
    EXPECT_EQ(top.sequence, expected.sequence);
    const EventKey popped = queue.pop();
    EXPECT_DOUBLE_EQ(popped.time, expected.time);
    EXPECT_EQ(popped.sequence, expected.sequence);
    EXPECT_EQ(popped.slot, expected.slot);
  }
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, ParsesBackendNames) {
  EXPECT_EQ(parse_queue_backend("heap"), QueueBackend::kHeap);
  EXPECT_EQ(parse_queue_backend("calendar"), QueueBackend::kCalendar);
  EXPECT_FALSE(parse_queue_backend("splay").has_value());
  EXPECT_FALSE(parse_queue_backend("").has_value());
  EXPECT_STREQ(queue_backend_name(QueueBackend::kHeap), "heap");
  EXPECT_STREQ(queue_backend_name(QueueBackend::kCalendar), "calendar");
}

TEST(EventQueue, CalendarPopsRandomTimesInOrder) {
  EventQueue queue;
  queue.configure({.backend = QueueBackend::kCalendar, .bucket_width = 0.0});
  queue.reserve(512);
  std::mt19937_64 rng(12345);
  std::uniform_real_distribution<double> dist(0.0, 100.0);
  std::vector<EventKey> reference;
  for (std::uint64_t seq = 0; seq < 500; ++seq) {
    const EventKey event = make_event(dist(rng), seq);
    reference.push_back(event);
    queue.push(event);
  }
  expect_pops_sorted(queue, std::move(reference));
}

TEST(EventQueue, MassSameTimestampKeepsFifoAcrossBucketBoundaries) {
  // Two timestamps straddling a bucket boundary (width 0.5 puts 0.99 and
  // 1.01 in different buckets), interleaved at push time: pops must
  // deliver all of the earlier instant in sequence order, then all of the
  // later one in sequence order.
  EventQueue queue;
  queue.configure({.backend = QueueBackend::kCalendar, .bucket_width = 0.5});
  std::vector<EventKey> reference;
  for (std::uint64_t i = 0; i < 200; ++i) {
    const EventKey event = make_event(i % 2 == 0 ? 0.99 : 1.01, i);
    reference.push_back(event);
    queue.push(event);
  }
  expect_pops_sorted(queue, std::move(reference));
}

TEST(EventQueue, SameTimestampBurstWithinOneBucketIsFifo) {
  EventQueue queue;
  queue.configure({.backend = QueueBackend::kCalendar, .bucket_width = 1.0});
  std::vector<EventKey> reference;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const EventKey event = make_event(0.25, i);
    reference.push_back(event);
    queue.push(event);
  }
  expect_pops_sorted(queue, std::move(reference));
}

TEST(EventQueue, FarFutureEventsWaitInOverflowLadder) {
  // Window span with width 1e-3 and the default 1024-bucket window is
  // ~1 s; events at t=100/200/300 must sit in the ladder and re-enter as
  // the window drains — interleaved with near-term pops.
  EventQueue queue;
  queue.configure({.backend = QueueBackend::kCalendar, .bucket_width = 1e-3});
  std::vector<EventKey> reference;
  std::uint64_t seq = 0;
  for (double far : {300.0, 100.0, 200.0}) {
    const EventKey event = make_event(far, seq++);
    reference.push_back(event);
    queue.push(event);
  }
  for (int i = 0; i < 400; ++i) {
    const EventKey event = make_event(0.001 * i, seq++);
    reference.push_back(event);
    queue.push(event);
  }
  expect_pops_sorted(queue, std::move(reference));
}

TEST(EventQueue, PushDuringDrainStaysOrdered) {
  // Steady-state shape: pop one, push the next timer a bit ahead (always
  // >= the popped time, as the kernel clock guarantees). The stream must
  // stay sorted even as the window advances under the pushes.
  EventQueue queue;
  queue.configure({.backend = QueueBackend::kCalendar, .bucket_width = 1e-2});
  std::mt19937_64 rng(99);
  std::uniform_real_distribution<double> ahead(0.0, 0.3);
  std::uint64_t seq = 0;
  for (; seq < 64; ++seq) queue.push(make_event(ahead(rng), seq));
  double last = 0.0;
  std::uint64_t last_seq = 0;
  for (int step = 0; step < 20000; ++step) {
    const EventKey popped = queue.pop();
    if (popped.time == last) {
      EXPECT_GT(popped.sequence, last_seq);
    } else {
      EXPECT_GT(popped.time, last);
    }
    last = popped.time;
    last_seq = popped.sequence;
    queue.push(make_event(popped.time + ahead(rng), seq++));
  }
  EXPECT_EQ(queue.size(), 64u);
}

TEST(EventQueue, OversizedBucketsTriggerMidRunResize) {
  // A deliberately terrible width (one bucket swallows the whole run)
  // must trip the occupancy self-resize after a check interval without
  // perturbing the pop order.
  EventQueue queue;
  queue.configure({.backend = QueueBackend::kCalendar,
                   .bucket_width = EventQueue::kMaxBucketWidth});
  std::vector<EventKey> reference;
  const auto count = 2 * EventQueue::kResizeCheckInterval;
  for (std::uint64_t i = 0; i < count; ++i) {
    const EventKey event = make_event(1e-4 * static_cast<double>(i), i);
    reference.push_back(event);
    queue.push(event);
  }
  expect_pops_sorted(queue, std::move(reference));
  EXPECT_GT(queue.resizes(), 0u);
  EXPECT_LT(queue.bucket_width(), EventQueue::kMaxBucketWidth);
}

TEST(EventQueue, StagingDerivesWidthAtFirstPop) {
  EventQueue queue;
  queue.configure({.backend = QueueBackend::kCalendar, .bucket_width = 0.0});
  for (std::uint64_t i = 0; i < 100; ++i) {
    queue.push(make_event(0.01 * static_cast<double>(i), i));
  }
  // No width until something forces a search.
  EXPECT_DOUBLE_EQ(queue.bucket_width(), 0.0);
  EXPECT_DOUBLE_EQ(queue.peek().time, 0.0);
  const double width = queue.bucket_width();
  EXPECT_GE(width, EventQueue::kMinBucketWidth);
  EXPECT_LE(width, EventQueue::kMaxBucketWidth);
  double last = -1.0;
  while (!queue.empty()) {
    const EventKey popped = queue.pop();
    EXPECT_GT(popped.time, last);
    last = popped.time;
  }
}

TEST(EventQueue, HeapAndCalendarPopIdenticalStreams) {
  EventQueue heap;
  heap.configure({.backend = QueueBackend::kHeap, .bucket_width = 0.0});
  EventQueue calendar;
  calendar.configure(
      {.backend = QueueBackend::kCalendar, .bucket_width = 0.0});
  std::mt19937_64 rng(777);
  std::uniform_real_distribution<double> dist(0.0, 10.0);
  std::uniform_int_distribution<int> tie(0, 3);
  std::uint64_t seq = 0;
  // Clustered times (quantized to force ties) with interleaved pops.
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 40; ++i) {
      const double t = tie(rng) == 0 ? 5.0 : dist(rng);
      const EventKey event = make_event(t, seq++);
      heap.push(event);
      calendar.push(event);
    }
  }
  while (!heap.empty()) {
    const EventKey a = heap.pop();
    const EventKey b = calendar.pop();
    ASSERT_DOUBLE_EQ(a.time, b.time);
    ASSERT_EQ(a.sequence, b.sequence);
    ASSERT_EQ(a.slot, b.slot);
  }
  EXPECT_TRUE(calendar.empty());
}

/// Runs a self-rescheduling workload on a simulator and logs execution.
std::vector<std::uint64_t> drive_simulator(QueueBackend backend) {
  Simulator simulator;
  simulator.configure_queue({.backend = backend, .bucket_width = 0.0});
  simulator.reserve_events(256);
  std::vector<std::uint64_t> log;
  // Chains that re-schedule themselves at irregular steps, plus
  // simultaneous bursts — the kernel shape the byte-identity claim
  // rests on.
  for (int chain = 0; chain < 8; ++chain) {
    const double step = 0.01 + 0.003 * chain;
    auto tick = [&simulator, &log, step](auto&& self) -> void {
      log.push_back(simulator.current_sequence());
      const double next = simulator.now() + step;
      if (next <= 5.0) {
        // Copy the continuation into the new event: the executing event's
        // closure (where `self` lives) is destroyed before this one runs.
        simulator.schedule_at(next,
                              [next_self = self]() mutable {
                                next_self(next_self);
                              });
      }
    };
    simulator.schedule_at(0.005 * chain,
                          [tick]() mutable { tick(tick); });
  }
  for (int i = 0; i < 32; ++i) {
    simulator.schedule_at(2.5, [&log, &simulator] {
      log.push_back(simulator.current_sequence());
    });
  }
  simulator.run_until(5.0);
  return log;
}

TEST(SimulatorQueue, CalendarMatchesHeapExecutionOrder) {
  const std::vector<std::uint64_t> heap = drive_simulator(QueueBackend::kHeap);
  const std::vector<std::uint64_t> calendar =
      drive_simulator(QueueBackend::kCalendar);
  ASSERT_FALSE(heap.empty());
  EXPECT_EQ(heap, calendar);
}

TEST(SimulatorQueue, ReserveEventsPreSizesCalendarBackend) {
  Simulator simulator;
  simulator.configure_queue(
      {.backend = QueueBackend::kCalendar, .bucket_width = 0.0});
  simulator.reserve_events(10000);
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    simulator.schedule_at(0.01 * i, [&order, i] { order.push_back(i); });
  }
  simulator.run_all();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
  EXPECT_EQ(simulator.event_queue().backend(), QueueBackend::kCalendar);
}

}  // namespace
}  // namespace mstc::sim
