// Batched broadcast fan-out: one schedule_fanout call must present each
// delivery with exactly the (now, current_sequence, processed_events)
// triple an equivalent per-receiver schedule_local loop would have, and
// anything scheduled after the fan-out must order behind the whole span.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/simulator.hpp"

namespace mstc::sim {
namespace {

struct DeliveryObservation {
  std::uint32_t node = 0;
  double now = 0.0;
  std::uint64_t sequence = 0;
  std::uint64_t processed = 0;

  bool operator==(const DeliveryObservation&) const = default;
};

std::vector<DeliveryObservation> observe_unbatched(
    const std::vector<std::uint32_t>& receivers) {
  Simulator simulator;
  std::vector<DeliveryObservation> log;
  simulator.schedule_at(1.0, [&] {
    for (std::uint32_t v : receivers) {
      simulator.schedule_local(2.0, v, [&, v] {
        log.push_back({v, simulator.now(), simulator.current_sequence(),
                       simulator.processed_events()});
      });
    }
  });
  simulator.run_all();
  return log;
}

std::vector<DeliveryObservation> observe_batched(
    const std::vector<std::uint32_t>& receivers) {
  Simulator simulator;
  std::vector<DeliveryObservation> log;
  simulator.schedule_at(1.0, [&] {
    simulator.schedule_fanout(2.0, receivers, [&](std::uint32_t v) {
      log.push_back({v, simulator.now(), simulator.current_sequence(),
                     simulator.processed_events()});
    });
  });
  simulator.run_all();
  return log;
}

TEST(Fanout, TimeAndSequenceMatchPerReceiverLoop) {
  const std::vector<std::uint32_t> receivers{2, 5, 7, 11};
  const auto batched = observe_batched(receivers);
  const auto unbatched = observe_unbatched(receivers);
  ASSERT_EQ(batched.size(), receivers.size());
  EXPECT_EQ(batched, unbatched);
}

TEST(Fanout, LaterScheduleDrawsSequenceAfterWholeSpan) {
  // A same-time event scheduled *after* the fan-out must run after every
  // delivery in both worlds: the fan-out pre-assigns its whole sequence
  // span at schedule time.
  for (const bool batch : {false, true}) {
    Simulator simulator;
    const std::vector<std::uint32_t> receivers{0, 1, 2};
    std::vector<std::uint64_t> order;
    simulator.schedule_at(1.0, [&] {
      if (batch) {
        simulator.schedule_fanout(2.0, receivers, [&](std::uint32_t v) {
          order.push_back(v);
        });
      } else {
        for (std::uint32_t v : receivers) {
          simulator.schedule_local(2.0, v, [&, v] { order.push_back(v); });
        }
      }
      simulator.schedule_at(2.0, [&] { order.push_back(100); });
    });
    simulator.run_all();
    EXPECT_EQ(order, (std::vector<std::uint64_t>{0, 1, 2, 100}))
        << "batch=" << batch;
  }
}

TEST(Fanout, EmptySpanSchedulesNothing) {
  Simulator simulator;
  bool ran = false;
  simulator.schedule_at(1.0, [&] {
    simulator.schedule_fanout(2.0, {}, [&](std::uint32_t) { ran = true; });
  });
  simulator.run_all();
  EXPECT_FALSE(ran);
  EXPECT_EQ(simulator.processed_events(), 1u);
}

TEST(Fanout, ProcessedEventsCountsEachDelivery) {
  // Every delivery counts as one processed event — the batching is a
  // storage optimization, not an accounting change.
  const std::vector<std::uint32_t> receivers{3, 4, 5, 6, 7};
  Simulator simulator;
  simulator.schedule_at(1.0, [&] {
    simulator.schedule_fanout(1.5, receivers, [](std::uint32_t) {});
  });
  simulator.run_all();
  EXPECT_EQ(simulator.processed_events(), 1u + receivers.size());
}

}  // namespace
}  // namespace mstc::sim
