// Executable form of the "Medium is per-replication" invariant (ctest
// label "concurrency", part of the TSan subset).
//
// The medium's query path mutates internal caches — the spatial index,
// position scratch buffers, and the per-node trace-leg cursors — so a
// Medium must never be shared across threads (immutable traces may be:
// see trace_cache_concurrency_test). This test runs grid-backed sweeps on
// the thread pool the way sweeps are meant to: each task owns its Medium.
// Under TSan this proves the construction is race-free; the checksum
// compare proves the per-thread results are byte-identical to a serial
// run. (Debug builds additionally assert inside sim::Medium that no
// instance is queried from two threads.)
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "mobility/models.hpp"
#include "sim/medium.hpp"
#include "util/thread_pool.hpp"

namespace mstc::sim {
namespace {

constexpr std::uint64_t kSeed = 20040426;
constexpr std::size_t kNodes = 80;
constexpr double kDuration = 12.0;
constexpr double kRange = 200.0;

/// One full grid-backed sweep over freshly generated traces; returns an
/// order-sensitive FNV-1a checksum of every receiver set and link list.
std::uint64_t sweep_checksum() {
  const auto model = mobility::make_paper_waypoint({900.0, 900.0}, 25.0);
  // Same seed in every replication: identical traces, so identical
  // checksums — without sharing a single byte between threads.
  const auto traces =
      mobility::generate_traces(*model, kNodes, kDuration, kSeed);
  // Force the index (kNodes sits below grid_min_nodes) so TSan exercises
  // the grid's mutable caches, which is the point of this suite.
  const Medium medium(traces, {.grid_min_nodes = 0});

  std::uint64_t hash = 1469598103934665603ull;
  const auto fold = [&hash](std::uint64_t value) {
    hash ^= value;
    hash *= 1099511628211ull;
  };
  std::vector<NodeId> out;
  std::vector<std::pair<NodeId, NodeId>> links;
  for (double t = 0.0; t <= kDuration; t += 0.5) {
    for (NodeId u = 0; u < medium.node_count(); ++u) {
      medium.receivers(u, kRange, t, out);
      fold(out.size());
      for (const NodeId v : out) fold(v);
    }
  }
  for (double t = 0.0; t <= kDuration; t += 2.5) {
    medium.links_within(kRange, t, links);
    fold(links.size());
    for (const auto& [u, v] : links) fold(u * kNodes + v);
  }
  return hash;
}

TEST(MediumConcurrency, PerReplicationMediumsAreRaceFreeAndDeterministic) {
  const std::uint64_t reference = sweep_checksum();

  constexpr std::size_t kReplications = 12;
  std::vector<std::uint64_t> checksums(kReplications, 0);
  util::ThreadPool pool(4);
  util::parallel_for(pool, kReplications, [&checksums](std::size_t r) {
    checksums[r] = sweep_checksum();
  });

  for (std::size_t r = 0; r < kReplications; ++r) {
    EXPECT_EQ(checksums[r], reference)
        << "replication " << r << " diverged from the serial sweep";
  }
}

}  // namespace
}  // namespace mstc::sim
