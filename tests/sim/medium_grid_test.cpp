// Differential suite for the medium's spatial index.
//
// The index is an optimization with a bit-identity contract: grid-backed
// receivers()/links_within() must equal the brute-force scans
// element-for-element (same sets, same ascending order) for every config,
// query time and radius — including the boundary cases that tend to break
// conservative filters (distance exactly == range, nodes at area corners,
// zero-speed fleets, times past the trace duration, out-of-order queries).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "obs/probe.hpp"
#include "sim/medium.hpp"
#include "util/prng.hpp"

namespace mstc::sim {
namespace {

using geom::Vec2;
using mobility::Leg;
using mobility::Trace;

/// Random piecewise-linear trace: legs of 1-5 s with speed in
/// [0, max_speed], starting inside [0, extent]^2.
Trace random_trace(util::Xoshiro256& rng, double duration, double extent,
                   double max_speed) {
  std::vector<Leg> legs;
  Vec2 at{rng.uniform(0.0, extent), rng.uniform(0.0, extent)};
  double t = 0.0;
  while (t < duration) {
    const double angle = rng.uniform(0.0, 2.0 * 3.14159265358979323846);
    const double speed = rng.uniform(0.0, max_speed);
    const Vec2 velocity{speed * std::cos(angle), speed * std::sin(angle)};
    const double leg = rng.uniform(1.0, 5.0);
    legs.push_back({t, at, velocity});
    at = at + velocity * leg;
    t += leg;
  }
  return Trace(std::move(legs), duration);
}

std::vector<Trace> random_fleet(util::Xoshiro256& rng, std::size_t count,
                                double duration, double extent,
                                double max_speed) {
  std::vector<Trace> traces;
  traces.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    traces.push_back(random_trace(rng, duration, extent, max_speed));
  }
  return traces;
}

/// Asserts grid == brute for receivers (every node as sender) and
/// links_within at time t and radius r.
void expect_equal_queries(const Medium& grid, const Medium& brute, double r,
                          double t) {
  std::vector<NodeId> grid_out;
  std::vector<NodeId> brute_out;
  for (NodeId sender = 0; sender < grid.node_count(); ++sender) {
    grid.receivers(sender, r, t, grid_out);
    brute.receivers(sender, r, t, brute_out);
    ASSERT_EQ(grid_out, brute_out)
        << "receivers diverged: sender=" << sender << " r=" << r
        << " t=" << t;
    ASSERT_TRUE(std::is_sorted(grid_out.begin(), grid_out.end()));
  }
  ASSERT_EQ(grid.links_within(r, t), brute.links_within(r, t))
      << "links_within diverged: r=" << r << " t=" << t;
}

TEST(MediumGrid, RandomizedDifferentialAgainstBruteForce) {
  util::Xoshiro256 rng(0xD1FF);
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t n = 1 + rng.uniform_below(120);
    const double duration = rng.uniform(5.0, 40.0);
    const double extent = rng.uniform(100.0, 900.0);
    const double max_speed = trial % 4 == 0 ? 0.0 : rng.uniform(0.0, 40.0);
    const auto traces = random_fleet(rng, n, duration, extent, max_speed);
    const Medium grid(traces, {.grid_min_nodes = 0});
    const Medium brute(traces, {.brute_force = true});
    // Ascending times (the common case the cursor cache optimizes for),
    // then a few deliberately out-of-order and past-duration probes.
    for (double t = 0.0; t <= duration + 4.0; t += rng.uniform(0.3, 2.0)) {
      expect_equal_queries(grid, brute, rng.uniform(0.0, extent * 0.6), t);
    }
    expect_equal_queries(grid, brute, rng.uniform(10.0, extent), 0.0);
    expect_equal_queries(grid, brute, rng.uniform(10.0, extent),
                         duration * 0.5);
  }
}

TEST(MediumGrid, DistanceExactlyEqualToRangeIsInclusiveInBothPaths) {
  // Nodes on a 10 m line: boundaries land exactly on the range.
  std::vector<Trace> traces;
  for (int i = 0; i < 8; ++i) {
    traces.push_back(Trace({Leg{0.0, {10.0 * i, 0.0}, {0.0, 0.0}}}, 50.0));
  }
  const Medium grid(traces, {.grid_min_nodes = 0});
  const Medium brute(traces, {.brute_force = true});
  for (const double r : {10.0, 20.0, 30.0}) {
    expect_equal_queries(grid, brute, r, 0.0);
  }
  std::vector<NodeId> out;
  grid.receivers(3, 20.0, 0.0, out);
  EXPECT_EQ(out, (std::vector<NodeId>{1, 2, 4, 5}));
}

TEST(MediumGrid, NodesAtAreaCornersMatch) {
  const double side = 900.0;
  std::vector<Trace> traces;
  for (const Vec2 p : {Vec2{0.0, 0.0}, Vec2{side, 0.0}, Vec2{0.0, side},
                       Vec2{side, side}, Vec2{side / 2, side / 2}}) {
    traces.push_back(Trace({Leg{0.0, p, {0.0, 0.0}}}, 10.0));
  }
  const Medium grid(traces, {.grid_min_nodes = 0});
  const Medium brute(traces, {.brute_force = true});
  // Exactly the diagonal, exactly the side, just below each.
  for (const double r : {side * std::sqrt(2.0), side,
                         std::nextafter(side, 0.0), side / 2}) {
    expect_equal_queries(grid, brute, r, 0.0);
  }
}

TEST(MediumGrid, ZeroSpeedFleetNeverRebuilds) {
  util::Xoshiro256 rng(7);
  const auto traces = random_fleet(rng, 60, 20.0, 500.0, 0.0);
  obs::RunObservation observation;
  const obs::Probe probe(&observation);
  Medium medium(traces, {.grid_min_nodes = 0});
  medium.set_probe(&probe);
  std::vector<NodeId> out;
  // Static fleet: slack is always 0, so one build serves every time.
  for (const double t : {0.0, 5.0, 19.0, 2.0, 100.0}) {
    for (NodeId u = 0; u < medium.node_count(); ++u) {
      medium.receivers(u, 150.0, t, out);
    }
  }
  EXPECT_EQ(observation.counters.total(obs::Counter::kMediumGridRebuilds), 1u);
  EXPECT_GT(observation.counters.total(obs::Counter::kMediumCandidates), 0u);
}

TEST(MediumGrid, MovingFleetRebuildsWhenSlackExceedsThreshold) {
  util::Xoshiro256 rng(8);
  const auto traces = random_fleet(rng, 50, 60.0, 400.0, 20.0);
  obs::RunObservation observation;
  const obs::Probe probe(&observation);
  Medium medium(traces, {.grid_min_nodes = 0});
  medium.set_probe(&probe);
  std::vector<NodeId> out;
  for (double t = 0.0; t <= 60.0; t += 1.0) {
    for (NodeId u = 0; u < medium.node_count(); ++u) {
      medium.receivers(u, 150.0, t, out);
    }
  }
  // rebuild threshold: 2 * v_max * dt > 0.5 * 150 => dt ~ 1.9 s at
  // v_max >= 20, so a 60 s sweep must rebuild many times.
  EXPECT_GE(observation.counters.total(obs::Counter::kMediumGridRebuilds), 5u);

  // And the differential contract still holds across the whole horizon.
  const Medium brute(traces, {.brute_force = true});
  for (double t = 0.0; t <= 60.0; t += 7.5) {
    expect_equal_queries(medium, brute, 150.0, t);
  }
}

TEST(MediumGrid, TimePastTraceDurationClampsIdentically) {
  util::Xoshiro256 rng(9);
  const auto traces = random_fleet(rng, 40, 10.0, 300.0, 15.0);
  const Medium grid(traces, {.grid_min_nodes = 0});
  const Medium brute(traces, {.brute_force = true});
  // Positions clamp at duration; queries far past it must still agree
  // (and must not grow the conservative radius without bound).
  for (const double t : {10.0, 11.0, 50.0, 1000.0}) {
    expect_equal_queries(grid, brute, 120.0, t);
  }
}

TEST(MediumGrid, BruteForceConfigBypassesTheIndex) {
  util::Xoshiro256 rng(10);
  const auto traces = random_fleet(rng, 30, 10.0, 300.0, 10.0);
  obs::RunObservation observation;
  const obs::Probe probe(&observation);
  Medium medium(traces, {.brute_force = true});
  medium.set_probe(&probe);
  std::vector<NodeId> out;
  medium.receivers(0, 100.0, 0.0, out);
  EXPECT_EQ(observation.counters.total(obs::Counter::kMediumGridRebuilds), 0u);
  // Brute force exact-checks everyone but the sender.
  EXPECT_EQ(observation.counters.total(obs::Counter::kMediumCandidates),
            medium.node_count() - 1);
  EXPECT_EQ(observation.counters.total(obs::Counter::kMediumCandidatesAccepted),
            out.size());
}

TEST(MediumGrid, GridMinNodesRoutesSmallFleetsToBruteForce) {
  // Below the auto threshold the default config must take the brute path
  // (no grid rebuilds); forcing grid_min_nodes = 0 must engage the index;
  // and a fleet at/above the threshold must engage it by default. Both
  // paths stay bit-identical either way (covered by the differential
  // tests above), so the threshold is a pure performance knob.
  util::Xoshiro256 rng(12);
  const auto small = random_fleet(rng, 30, 10.0, 300.0, 10.0);
  {
    obs::RunObservation observation;
    const obs::Probe probe(&observation);
    Medium medium(small, {});
    medium.set_probe(&probe);
    std::vector<NodeId> out;
    medium.receivers(0, 100.0, 0.0, out);
    EXPECT_EQ(observation.counters.total(obs::Counter::kMediumGridRebuilds),
              0u);
  }
  {
    obs::RunObservation observation;
    const obs::Probe probe(&observation);
    Medium medium(small, {.grid_min_nodes = 0});
    medium.set_probe(&probe);
    std::vector<NodeId> out;
    medium.receivers(0, 100.0, 0.0, out);
    EXPECT_EQ(observation.counters.total(obs::Counter::kMediumGridRebuilds),
              1u);
  }
  {
    const auto large = random_fleet(rng, 160, 10.0, 600.0, 10.0);
    obs::RunObservation observation;
    const obs::Probe probe(&observation);
    Medium medium(large, {});
    medium.set_probe(&probe);
    std::vector<NodeId> out;
    medium.receivers(0, 100.0, 0.0, out);
    EXPECT_EQ(observation.counters.total(obs::Counter::kMediumGridRebuilds),
              1u);
  }
}

TEST(MediumGrid, GridExaminesFarFewerCandidatesOnDenseFleets) {
  util::Xoshiro256 rng(11);
  const auto traces = random_fleet(rng, 600, 10.0, 2000.0, 10.0);
  obs::RunObservation grid_obs;
  obs::RunObservation brute_obs;
  const obs::Probe grid_probe(&grid_obs);
  const obs::Probe brute_probe(&brute_obs);
  Medium grid(traces, {.grid_min_nodes = 0});
  Medium brute(traces, {.brute_force = true});
  grid.set_probe(&grid_probe);
  brute.set_probe(&brute_probe);
  std::vector<NodeId> out;
  for (double t = 0.0; t <= 10.0; t += 1.0) {
    for (NodeId u = 0; u < grid.node_count(); ++u) {
      grid.receivers(u, 150.0, t, out);
      brute.receivers(u, 150.0, t, out);
    }
  }
  const auto grid_checks =
      grid_obs.counters.total(obs::Counter::kMediumCandidates);
  const auto brute_checks =
      brute_obs.counters.total(obs::Counter::kMediumCandidates);
  EXPECT_LT(grid_checks * 5, brute_checks)
      << "spatial index no longer filters candidates (grid=" << grid_checks
      << ", brute=" << brute_checks << ")";
  // Both paths accepted the same receiver sets.
  EXPECT_EQ(grid_obs.counters.total(obs::Counter::kMediumCandidatesAccepted),
            brute_obs.counters.total(obs::Counter::kMediumCandidatesAccepted));
}

TEST(MediumGrid, ZeroRangeSenderNeverTouchesTheIndex) {
  // A sender whose selection is empty (actual range 0, no buffer) queries
  // with range <= 0. Sizing grid cells for that radius once poisoned the
  // epoch: the 1.0-unit fallback cells made every later full-range query
  // walk hundreds of thousands of cells. The degenerate radius must stay
  // on the brute scan and leave the index alone.
  util::Xoshiro256 rng(13);
  const auto traces = random_fleet(rng, 200, 10.0, 800.0, 5.0);
  obs::RunObservation observation;
  const obs::Probe probe(&observation);
  Medium medium(traces, {.grid_min_nodes = 0});
  medium.set_probe(&probe);
  std::vector<NodeId> out;
  medium.receivers(0, 0.0, 0.0, out);
  EXPECT_EQ(observation.counters.total(obs::Counter::kMediumGridRebuilds), 0u);
  // The full-range query that follows builds cells for ITS radius.
  medium.receivers(1, 150.0, 0.0, out);
  EXPECT_EQ(observation.counters.total(obs::Counter::kMediumGridRebuilds), 1u);
  // Interleaved degenerate queries neither rebuild nor diverge.
  medium.receivers(2, 0.0, 0.1, out);
  EXPECT_EQ(observation.counters.total(obs::Counter::kMediumGridRebuilds), 1u);
  const Medium brute(traces, {.brute_force = true});
  expect_equal_queries(medium, brute, 0.0, 0.2);
  expect_equal_queries(medium, brute, 150.0, 0.2);
}

TEST(MediumGrid, LargerRadiusRatchetsTheIndexInsteadOfScanningTinyCells) {
  // Per-node actual/extended ranges vary, so a grid built for a small
  // radius can face a much larger one inside the same epoch. The larger
  // request must rebuild (cells sized for it), smaller ones must keep
  // riding the existing build, and every answer must match brute force.
  util::Xoshiro256 rng(14);
  const auto traces = random_fleet(rng, 200, 10.0, 800.0, 0.0);
  obs::RunObservation observation;
  const obs::Probe probe(&observation);
  Medium medium(traces, {.grid_min_nodes = 0});
  medium.set_probe(&probe);
  std::vector<NodeId> out;
  medium.receivers(0, 30.0, 0.0, out);
  EXPECT_EQ(observation.counters.total(obs::Counter::kMediumGridRebuilds), 1u);
  medium.receivers(1, 200.0, 0.0, out);  // outgrows the 30-unit cells
  EXPECT_EQ(observation.counters.total(obs::Counter::kMediumGridRebuilds), 2u);
  medium.receivers(2, 80.0, 0.0, out);  // served by the 200-unit build
  EXPECT_EQ(observation.counters.total(obs::Counter::kMediumGridRebuilds), 2u);
  const Medium brute(traces, {.brute_force = true});
  for (const double r : {30.0, 80.0, 200.0}) {
    expect_equal_queries(medium, brute, r, 0.0);
  }
}

TEST(MediumGrid, SingleNodeAndEmptyRangeEdgeCases) {
  std::vector<Trace> traces;
  traces.push_back(Trace({Leg{0.0, {5.0, 5.0}, {1.0, 0.0}}}, 10.0));
  const Medium grid(traces, {.grid_min_nodes = 0});
  const Medium brute(traces, {.brute_force = true});
  std::vector<NodeId> out{99};
  grid.receivers(0, 100.0, 3.0, out);
  EXPECT_TRUE(out.empty());
  expect_equal_queries(grid, brute, 0.0, 1.0);
  EXPECT_TRUE(grid.links_within(100.0, 0.0).empty());
}

}  // namespace
}  // namespace mstc::sim
