#include "routing/greedy.hpp"

#include <gtest/gtest.h>

#include "topology/protocol.hpp"
#include "util/prng.hpp"

namespace mstc::routing {
namespace {

using geom::Vec2;
using topology::BuiltTopology;
using topology::NodeId;

BuiltTopology chain_topology(std::size_t n, double range) {
  BuiltTopology topo;
  topo.logical_neighbors.resize(n);
  topo.range.assign(n, range);
  for (NodeId u = 0; u < n; ++u) {
    if (u > 0) topo.logical_neighbors[u].push_back(u - 1);
    if (u + 1 < n) topo.logical_neighbors[u].push_back(u + 1);
  }
  return topo;
}

std::vector<Vec2> line(std::size_t n, double spacing) {
  std::vector<Vec2> positions;
  for (std::size_t i = 0; i < n; ++i) {
    positions.push_back({spacing * static_cast<double>(i), 0.0});
  }
  return positions;
}

TEST(GreedyRoute, DeliversAlongChain) {
  const auto topo = chain_topology(5, 10.0);
  const auto positions = line(5, 10.0);
  const auto outcome = greedy_route(topo, positions, positions, 0, 4);
  EXPECT_TRUE(outcome.delivered);
  EXPECT_EQ(outcome.hops, 4u);
  EXPECT_FALSE(outcome.stuck);
  EXPECT_FALSE(outcome.link_broken);
}

TEST(GreedyRoute, SourceEqualsDestination) {
  const auto topo = chain_topology(3, 10.0);
  const auto positions = line(3, 10.0);
  const auto outcome = greedy_route(topo, positions, positions, 1, 1);
  EXPECT_TRUE(outcome.delivered);
  EXPECT_EQ(outcome.hops, 0u);
}

TEST(GreedyRoute, StuckAtLocalMinimum) {
  // Node 1's only logical neighbor is 0 (behind it): greedy from 0 toward
  // 2 reaches 1 and finds no neighbor closer to the target.
  BuiltTopology topo;
  topo.logical_neighbors = {{1}, {0}, {}};
  topo.range = {10.0, 10.0, 0.0};
  const std::vector<Vec2> positions = {{0, 0}, {10, 0}, {30, 0}};
  const auto outcome = greedy_route(topo, positions, positions, 0, 2);
  EXPECT_FALSE(outcome.delivered);
  EXPECT_TRUE(outcome.stuck);
}

TEST(GreedyRoute, StaleBeliefBreaksLink) {
  // Node 1 drifted out of node 0's range; node 0 still believes it is at
  // 10 m and forwards — the transmission fails.
  const auto topo = chain_topology(3, 10.0);
  const auto believed = line(3, 10.0);
  std::vector<Vec2> actual = believed;
  actual[1] = {25.0, 0.0};
  const auto outcome = greedy_route(topo, believed, actual, 0, 2);
  EXPECT_FALSE(outcome.delivered);
  EXPECT_TRUE(outcome.link_broken);
}

TEST(GreedyRoute, BufferZoneRepairsStaleLink) {
  const auto topo = chain_topology(3, 10.0);
  const auto believed = line(3, 10.0);
  std::vector<Vec2> actual = believed;
  actual[1] = {18.0, 0.0};  // 8 m past the range
  EXPECT_TRUE(greedy_route(topo, believed, actual, 0, 2, /*buffer=*/10.0)
                  .delivered);
  EXPECT_FALSE(
      greedy_route(topo, believed, actual, 0, 2, /*buffer=*/0.0).delivered);
}

TEST(GreedyRoute, TtlGuardsAgainstLongRoutes) {
  const auto topo = chain_topology(10, 10.0);
  const auto positions = line(10, 10.0);
  const auto outcome =
      greedy_route(topo, positions, positions, 0, 9, 0.0, /*ttl=*/3);
  EXPECT_FALSE(outcome.delivered);
  EXPECT_EQ(outcome.hops, 3u);
}

TEST(GreedyRoute, HighDeliveryOnDenseStaticTopology) {
  // On a connected static SPT-2 topology, greedy delivers most pairs
  // (dense graphs rarely have local minima).
  util::Xoshiro256 rng(4004);
  std::vector<Vec2> positions;
  for (int i = 0; i < 100; ++i) {
    positions.push_back({rng.uniform(0.0, 900.0), rng.uniform(0.0, 900.0)});
  }
  const auto suite = topology::make_protocol("SPT-2");
  const auto topo =
      topology::build_topology(positions, 250.0, *suite.protocol, *suite.cost);
  int delivered = 0;
  constexpr int kPairs = 200;
  for (int trial = 0; trial < kPairs; ++trial) {
    const NodeId s = rng.uniform_below(100);
    const NodeId d = rng.uniform_below(100);
    delivered += greedy_route(topo, positions, positions, s, d).delivered;
  }
  EXPECT_GT(delivered, kPairs * 3 / 4);
}

}  // namespace
}  // namespace mstc::routing
