#include "routing/epidemic.hpp"

#include <gtest/gtest.h>

namespace mstc::routing {
namespace {

EpidemicConfig sparse_config() {
  EpidemicConfig cfg;
  cfg.node_count = 30;
  cfg.range = 100.0;
  cfg.average_speed = 15.0;
  cfg.duration = 80.0;
  cfg.message_count = 30;
  cfg.seed = 77;
  return cfg;
}

TEST(Epidemic, DeterministicForSameSeed) {
  const auto cfg = sparse_config();
  const auto a = run_epidemic(cfg);
  const auto b = run_epidemic(cfg);
  EXPECT_DOUBLE_EQ(a.delivery_ratio, b.delivery_ratio);
  EXPECT_DOUBLE_EQ(a.delay.mean(), b.delay.mean());
  EXPECT_DOUBLE_EQ(a.mean_copies_per_message, b.mean_copies_per_message);
}

TEST(Epidemic, DeliversAcrossPartitionsViaMovement) {
  // The substrate is heavily partitioned (snapshot connectivity well below
  // 1), yet store-carry-forward delivers most messages eventually — the
  // mobility-assisted model of Section 2.2.
  const auto result = run_epidemic(sparse_config());
  EXPECT_LT(result.snapshot_connectivity, 0.8);
  EXPECT_GT(result.delivery_ratio, 0.7);
  EXPECT_GT(result.delay.mean(), 0.0) << "delivery is not instantaneous";
}

TEST(Epidemic, StaticPartitionedNetworkCannotDeliverEverything) {
  // Without movement, copies can never cross a partition boundary.
  auto cfg = sparse_config();
  cfg.mobility_model = "static";
  const auto result = run_epidemic(cfg);
  EXPECT_LT(result.delivery_ratio, 0.9);
}

TEST(Epidemic, FasterMovementShortensDelay) {
  auto cfg = sparse_config();
  cfg.average_speed = 5.0;
  const auto slow = run_epidemic(cfg);
  cfg.average_speed = 30.0;
  const auto fast = run_epidemic(cfg);
  // Mobility is the transport: faster nodes deliver sooner (allow slack
  // for the stochastic workload by comparing means with margin).
  EXPECT_LT(fast.delay.mean(), slow.delay.mean() + 1.0);
  EXPECT_GE(fast.delivery_ratio, slow.delivery_ratio - 0.1);
}

TEST(Epidemic, DirectOnlyDeliversLessThanEpidemic) {
  auto cfg = sparse_config();
  cfg.max_relay_hops = 0;  // source must meet destination itself
  const auto direct = run_epidemic(cfg);
  cfg.max_relay_hops = 64;
  const auto epidemic = run_epidemic(cfg);
  EXPECT_LE(direct.delivery_ratio, epidemic.delivery_ratio);
  EXPECT_LT(direct.mean_copies_per_message,
            epidemic.mean_copies_per_message);
}

TEST(Epidemic, SingleRelayReducesOverhead) {
  // Grossglauser-Tse style one-relay forwarding trades delivery/delay for
  // far fewer copies.
  auto cfg = sparse_config();
  cfg.max_relay_hops = 1;
  const auto one_relay = run_epidemic(cfg);
  cfg.max_relay_hops = 64;
  const auto flood = run_epidemic(cfg);
  EXPECT_LT(one_relay.mean_copies_per_message,
            flood.mean_copies_per_message);
}

TEST(Epidemic, BufferLimitCapsStorage) {
  auto cfg = sparse_config();
  cfg.buffer_limit = 2;
  const auto limited = run_epidemic(cfg);
  cfg.buffer_limit = 0;
  const auto unlimited = run_epidemic(cfg);
  EXPECT_LE(limited.delivery_ratio, unlimited.delivery_ratio + 1e-12);
}

TEST(Epidemic, DenseNetworkDeliversFastAndFully) {
  auto cfg = sparse_config();
  cfg.range = 250.0;
  cfg.node_count = 60;
  const auto result = run_epidemic(cfg);
  EXPECT_GT(result.delivery_ratio, 0.95);
  EXPECT_LT(result.delay.mean(), 10.0);
}

TEST(Epidemic, UnknownMobilityModelThrows) {
  auto cfg = sparse_config();
  cfg.mobility_model = "hovercraft";
  EXPECT_THROW((void)run_epidemic(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace mstc::routing
