// Randomized property tests of the topology-control guarantees:
// Theorem 1 instances (consistent views => connected logical topology),
// protocol inclusion relations, degree bounds, and builder invariants.
#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "topology/builder.hpp"
#include "topology/protocol.hpp"
#include "util/prng.hpp"

namespace mstc::topology {
namespace {

using geom::Vec2;

constexpr double kNormalRange = 250.0;
constexpr double kArea = 900.0;

/// Random node placement whose original topology is connected under the
/// normal range (redraws until connected, like the paper's dense setting).
std::vector<Vec2> connected_placement(util::Xoshiro256& rng, std::size_t n) {
  for (int attempt = 0; attempt < 100; ++attempt) {
    std::vector<Vec2> positions;
    positions.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      positions.push_back({rng.uniform(0.0, kArea), rng.uniform(0.0, kArea)});
    }
    if (graph::is_connected(original_graph(positions, kNormalRange))) {
      return positions;
    }
  }
  ADD_FAILURE() << "could not generate a connected placement";
  return {};
}

struct ProtocolParam {
  const char* name;
  bool guarantees_connectivity;
};

class TopologyPropertyTest : public ::testing::TestWithParam<ProtocolParam> {};

TEST_P(TopologyPropertyTest, ConsistentViewsPreserveConnectivity) {
  // Theorem 1: with consistent local views, the logical topology of every
  // connectivity-preserving protocol is connected whenever the original is.
  if (!GetParam().guarantees_connectivity) {
    GTEST_SKIP() << "no connectivity guarantee for " << GetParam().name;
  }
  const ProtocolSuite suite = make_protocol(GetParam().name);
  util::Xoshiro256 rng(2024);
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t n = 30 + rng.uniform_below(70);
    const auto positions = connected_placement(rng, n);
    const BuiltTopology topo =
        build_topology(positions, kNormalRange, *suite.protocol, *suite.cost);
    EXPECT_TRUE(graph::is_connected(logical_graph(topo, positions)))
        << GetParam().name << " trial " << trial << " n=" << n;
  }
}

TEST_P(TopologyPropertyTest, LogicalTopologyIsSubgraphOfOriginal) {
  const ProtocolSuite suite = make_protocol(GetParam().name);
  util::Xoshiro256 rng(2025);
  const auto positions = connected_placement(rng, 60);
  const BuiltTopology topo =
      build_topology(positions, kNormalRange, *suite.protocol, *suite.cost);
  const auto original = original_graph(positions, kNormalRange);
  const auto logical = logical_graph(topo, positions);
  for (const auto& e : logical.edges()) {
    EXPECT_TRUE(original.has_edge(e.u, e.v)) << GetParam().name;
  }
  EXPECT_LE(logical.edge_count(), original.edge_count());
}

TEST_P(TopologyPropertyTest, RangeCoversFarthestLogicalNeighbor) {
  const ProtocolSuite suite = make_protocol(GetParam().name);
  util::Xoshiro256 rng(2026);
  const auto positions = connected_placement(rng, 60);
  const BuiltTopology topo =
      build_topology(positions, kNormalRange, *suite.protocol, *suite.cost);
  for (NodeId u = 0; u < positions.size(); ++u) {
    for (NodeId v : topo.logical_neighbors[u]) {
      EXPECT_LE(geom::distance(positions[u], positions[v]),
                topo.range[u] + 1e-9)
          << GetParam().name;
    }
    EXPECT_LE(topo.range[u], kNormalRange + 1e-9);
  }
}

TEST_P(TopologyPropertyTest, EffectiveEqualsLogicalWithoutMotion) {
  const ProtocolSuite suite = make_protocol(GetParam().name);
  util::Xoshiro256 rng(2027);
  const auto positions = connected_placement(rng, 50);
  const BuiltTopology topo =
      build_topology(positions, kNormalRange, *suite.protocol, *suite.cost);
  const auto logical = logical_graph(topo, positions);
  const auto effective = effective_graph(topo, positions, 0.0);
  EXPECT_EQ(logical.edge_count(), effective.edge_count()) << GetParam().name;
  for (const auto& e : logical.edges()) {
    EXPECT_TRUE(effective.has_edge(e.u, e.v)) << GetParam().name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, TopologyPropertyTest,
    ::testing::Values(ProtocolParam{"MST", true}, ProtocolParam{"RNG", true},
                      ProtocolParam{"SPT-2", true},
                      ProtocolParam{"SPT-4", true},
                      ProtocolParam{"SPT-R", true},
                      ProtocolParam{"Gabriel", true},
                      ProtocolParam{"Yao", true}, ProtocolParam{"CBTC", true},
                      ProtocolParam{"KNeigh", false},
                      ProtocolParam{"None", true}),
    [](const auto& param_info) {
      std::string name = param_info.param.name;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(ProtocolInclusion, MstSubsetOfRngSubsetOfGabriel) {
  // Condition 1 (RNG removal) implies condition 3 (MST removal), and a
  // Gabriel witness is an RNG witness, so as kept-link sets:
  // MST ⊆ RNG ⊆ Gabriel.
  const ProtocolSuite mst = make_protocol("MST");
  const ProtocolSuite rng_suite = make_protocol("RNG");
  const ProtocolSuite gabriel = make_protocol("Gabriel");
  util::Xoshiro256 rng(31337);
  for (int trial = 0; trial < 8; ++trial) {
    const auto positions =
        connected_placement(rng, static_cast<std::size_t>(50 + trial * 5));
    const auto mst_graph = logical_graph(
        build_topology(positions, kNormalRange, *mst.protocol, *mst.cost),
        positions);
    const auto rng_graph = logical_graph(
        build_topology(positions, kNormalRange, *rng_suite.protocol,
                       *rng_suite.cost),
        positions);
    const auto gabriel_graph = logical_graph(
        build_topology(positions, kNormalRange, *gabriel.protocol,
                       *gabriel.cost),
        positions);
    for (const auto& e : mst_graph.edges()) {
      EXPECT_TRUE(rng_graph.has_edge(e.u, e.v)) << "trial " << trial;
    }
    for (const auto& e : rng_graph.edges()) {
      EXPECT_TRUE(gabriel_graph.has_edge(e.u, e.v)) << "trial " << trial;
    }
  }
}

TEST(ProtocolInclusion, MstSubsetOfSpt) {
  // Condition 2 (sum) implies condition 3 (max), so every MST logical link
  // survives in SPT under the same cost model. SPT-2/SPT-4 use energy
  // costs, so the inclusion is checked against an MST run on those costs.
  util::Xoshiro256 rng(4242);
  for (const char* spt_name : {"SPT-2", "SPT-4"}) {
    const ProtocolSuite spt = make_protocol(spt_name);
    const LmstProtocol mst_protocol;
    const auto positions = connected_placement(rng, 60);
    const auto spt_graph = logical_graph(
        build_topology(positions, kNormalRange, *spt.protocol, *spt.cost),
        positions);
    const auto mst_graph = logical_graph(
        build_topology(positions, kNormalRange, mst_protocol, *spt.cost),
        positions);
    for (const auto& e : mst_graph.edges()) {
      EXPECT_TRUE(spt_graph.has_edge(e.u, e.v)) << spt_name;
    }
  }
}

TEST(DegreeBounds, LmstLogicalDegreeAtMostSix) {
  // Li-Hou-Sha: LMST node degree is bounded by 6.
  const ProtocolSuite mst = make_protocol("MST");
  util::Xoshiro256 rng(55555);
  for (int trial = 0; trial < 5; ++trial) {
    const auto positions = connected_placement(rng, 80);
    const auto g = logical_graph(
        build_topology(positions, kNormalRange, *mst.protocol, *mst.cost),
        positions);
    for (NodeId u = 0; u < positions.size(); ++u) {
      EXPECT_LE(g.degree(u), 6u) << "trial " << trial;
    }
  }
}

TEST(DegreeBounds, TopologyControlReducesDegreeAndRange) {
  // Table 1's qualitative content: every paper protocol cuts both average
  // range and average degree well below the no-control baseline.
  util::Xoshiro256 rng(7777);
  const auto positions = connected_placement(rng, 100);
  const ProtocolSuite none = make_protocol("None");
  const auto base =
      build_topology(positions, kNormalRange, *none.protocol, *none.cost);
  for (const char* name : {"MST", "RNG", "SPT-2", "SPT-4"}) {
    const ProtocolSuite suite = make_protocol(name);
    const auto topo =
        build_topology(positions, kNormalRange, *suite.protocol, *suite.cost);
    EXPECT_LT(topo.average_range(), 0.6 * base.average_range()) << name;
    EXPECT_LT(topo.average_logical_degree(),
              0.5 * base.average_logical_degree())
        << name;
  }
}

TEST(RemovalSymmetry, RngRemovalIsSymmetricUnderConsistentViews) {
  // For RNG the witness condition is symmetric in the two endpoints and
  // only involves their common neighborhood, so u selects v iff v selects u.
  const ProtocolSuite suite = make_protocol("RNG");
  util::Xoshiro256 rng(999);
  const auto positions = connected_placement(rng, 70);
  const auto topo =
      build_topology(positions, kNormalRange, *suite.protocol, *suite.cost);
  for (NodeId u = 0; u < positions.size(); ++u) {
    for (NodeId v : topo.logical_neighbors[u]) {
      EXPECT_TRUE(topo.selects(v, u)) << u << " -> " << v;
    }
  }
}

TEST(BuiltTopologyTest, AverageStatsOnTinyExample) {
  BuiltTopology topo;
  topo.logical_neighbors = {{1}, {0, 2}, {1}};
  topo.range = {5.0, 5.0, 4.0};
  EXPECT_TRUE(topo.selects(0, 1));
  EXPECT_FALSE(topo.selects(0, 2));
  EXPECT_NEAR(topo.average_range(), 14.0 / 3.0, 1e-12);
  // Mutual selections: (0,1) and (1,2) -> degrees 1,2,1 -> average 4/3.
  EXPECT_NEAR(topo.average_logical_degree(), 4.0 / 3.0, 1e-12);
}

TEST(EffectiveGraphTest, BufferZoneRestoresStretchedLinks) {
  // Two nodes drift 30 m apart after selecting ranges for 20 m: the
  // effective link dies with buffer 0 and survives with buffer >= 10.
  BuiltTopology topo;
  topo.logical_neighbors = {{1}, {0}};
  topo.range = {20.0, 20.0};
  const std::vector<Vec2> later = {{0, 0}, {30, 0}};
  EXPECT_EQ(effective_graph(topo, later, 0.0).edge_count(), 0u);
  EXPECT_EQ(effective_graph(topo, later, 10.0).edge_count(), 1u);
}

}  // namespace
}  // namespace mstc::topology
