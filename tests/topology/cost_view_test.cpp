#include <gtest/gtest.h>

#include "topology/cost.hpp"
#include "topology/view_graph.hpp"

namespace mstc::topology {
namespace {

using geom::Vec2;

TEST(CostModel, DistanceCostIsIdentity) {
  const DistanceCost cost;
  EXPECT_DOUBLE_EQ(cost.cost(7.5), 7.5);
  EXPECT_EQ(cost.name(), "distance");
}

TEST(CostModel, EnergyCostPowerLaw) {
  const EnergyCost free_space(2.0);
  EXPECT_DOUBLE_EQ(free_space.cost(3.0), 9.0);
  const EnergyCost two_ray(4.0, 5.0);
  EXPECT_DOUBLE_EQ(two_ray.cost(2.0), 21.0);
  EXPECT_DOUBLE_EQ(two_ray.alpha(), 4.0);
}

TEST(CostModel, EnergyCostIsMonotone) {
  const EnergyCost cost(4.0, 10.0);
  double previous = cost.cost(0.0);
  for (double d = 0.5; d <= 250.0; d += 0.5) {
    const double current = cost.cost(d);
    EXPECT_GT(current, previous);
    previous = current;
  }
}

TEST(CostKey, OrderedByValueFirst) {
  const CostKey a = CostKey::make(1.0, 5, 9);
  const CostKey b = CostKey::make(2.0, 0, 1);
  EXPECT_LT(a, b);
  EXPECT_GT(b, a);
}

TEST(CostKey, TiesBrokenByNodeIds) {
  const CostKey a = CostKey::make(1.0, 2, 3);
  const CostKey b = CostKey::make(1.0, 2, 4);
  const CostKey c = CostKey::make(1.0, 1, 9);
  EXPECT_LT(a, b);
  EXPECT_LT(c, a);  // lower lo id wins
}

TEST(CostKey, MakeNormalizesEndpointOrder) {
  EXPECT_EQ(CostKey::make(1.0, 7, 3), CostKey::make(1.0, 3, 7));
}

TEST(CostKey, DistinctLinksNeverEqual) {
  // Total order requirement of Theorem 1.
  const CostKey a = CostKey::make(4.0, 0, 1);
  const CostKey b = CostKey::make(4.0, 0, 2);
  EXPECT_NE(a, b);
  EXPECT_TRUE(a < b || b < a);
}

TEST(ViewGraph, OwnerIsIndexZero) {
  ViewGraph view(42, 2);
  EXPECT_EQ(view.owner(), 42u);
  EXPECT_EQ(view.node_count(), 3u);
  EXPECT_EQ(view.neighbor_count(), 2u);
}

TEST(ViewGraph, SetLinkIsSymmetric) {
  ViewGraph view(0, 2);
  view.set_id(1, 10);
  view.set_id(2, 20);
  const CostKey lo = CostKey::make(3.0, 0, 10);
  const CostKey hi = CostKey::make(5.0, 0, 10);
  view.set_link(0, 1, 3.0, 5.0, lo, hi);
  EXPECT_TRUE(view.has_link(0, 1));
  EXPECT_TRUE(view.has_link(1, 0));
  EXPECT_FALSE(view.has_link(0, 2));
  EXPECT_EQ(view.cost_min(1, 0), lo);
  EXPECT_EQ(view.cost_max(0, 1), hi);
  EXPECT_DOUBLE_EQ(view.distance_min(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(view.distance_max(0, 1), 5.0);
}

TEST(MakeConsistentView, SelectsNeighborsWithinRange) {
  const std::vector<Vec2> positions = {{0, 0}, {10, 0}, {30, 0}, {100, 0}};
  const std::vector<NodeId> ids = {0, 1, 2, 3};
  const DistanceCost cost;
  const ViewGraph view = make_consistent_view(positions, ids, 0, 35.0, cost);
  EXPECT_EQ(view.owner(), 0u);
  EXPECT_EQ(view.neighbor_count(), 2u);  // nodes 1 and 2; node 3 out of range
  EXPECT_EQ(view.id(1), 1u);
  EXPECT_EQ(view.id(2), 2u);
}

TEST(MakeConsistentView, NeighborNeighborLinksIncluded) {
  // Node 1 and node 2 are 20 apart: linked in node 0's view.
  const std::vector<Vec2> positions = {{0, 0}, {10, 0}, {30, 0}};
  const std::vector<NodeId> ids = {0, 1, 2};
  const DistanceCost cost;
  const ViewGraph view = make_consistent_view(positions, ids, 0, 35.0, cost);
  EXPECT_TRUE(view.has_link(1, 2));
  EXPECT_DOUBLE_EQ(view.distance_min(1, 2), 20.0);
  EXPECT_EQ(view.cost_min(1, 2), CostKey::make(20.0, 1, 2));
}

TEST(MakeConsistentView, NeighborLinksBeyondRangeExcluded) {
  // Nodes 1 and 2 are both within range of 0, but 40 apart (> 35).
  const std::vector<Vec2> positions = {{0, 0}, {-20, 0}, {20, 0}};
  const std::vector<NodeId> ids = {0, 1, 2};
  const DistanceCost cost;
  const ViewGraph view = make_consistent_view(positions, ids, 0, 35.0, cost);
  EXPECT_EQ(view.neighbor_count(), 2u);
  EXPECT_TRUE(view.has_link(0, 1));
  EXPECT_TRUE(view.has_link(0, 2));
  EXPECT_FALSE(view.has_link(1, 2));
}

TEST(MakeConsistentView, PointIntervals) {
  const std::vector<Vec2> positions = {{0, 0}, {10, 0}};
  const std::vector<NodeId> ids = {0, 1};
  const EnergyCost cost(2.0);
  const ViewGraph view = make_consistent_view(positions, ids, 0, 35.0, cost);
  EXPECT_EQ(view.cost_min(0, 1), view.cost_max(0, 1));
  EXPECT_DOUBLE_EQ(view.cost_min(0, 1).value, 100.0);
}

}  // namespace
}  // namespace mstc::topology
