// Equivalence anchors: the link-removal implementations must coincide with
// the classical constructions they encode.
//  * Condition 3 (bottleneck removal)  == edges at the owner in the MST of
//    its local view (cycle property).
//  * Condition 2 (sum removal)         == children of the owner in the
//    shortest-path tree of its local view.
//  * Condition 1 (witness removal)     == RNG membership computed purely
//    geometrically.
#include <gtest/gtest.h>

#include "geom/predicates.hpp"
#include "graph/algorithms.hpp"
#include "topology/protocol.hpp"
#include "util/prng.hpp"

namespace mstc::topology {
namespace {

using geom::Vec2;

constexpr double kRange = 250.0;

struct LocalView {
  std::vector<Vec2> positions;  // positions[0] = owner
  ViewGraph view;
};

LocalView random_view(util::Xoshiro256& rng, std::size_t neighbors,
                      const CostModel& cost) {
  std::vector<Vec2> positions{{0.0, 0.0}};
  while (positions.size() < neighbors + 1) {
    const Vec2 p{rng.uniform(-kRange, kRange), rng.uniform(-kRange, kRange)};
    if (p.norm() <= kRange) positions.push_back(p);
  }
  std::vector<NodeId> ids(positions.size());
  for (NodeId i = 0; i < ids.size(); ++i) ids[i] = i;
  return {positions,
          make_consistent_view(positions, ids, 0, kRange, cost)};
}

TEST(Equivalence, LmstSelectionMatchesLocalMstEdges) {
  const DistanceCost cost;
  const LmstProtocol protocol;
  util::Xoshiro256 rng(111);
  for (int trial = 0; trial < 30; ++trial) {
    const auto local = random_view(rng, 5 + rng.uniform_below(15), cost);
    // Kruskal MST over the view's links.
    std::vector<graph::EdgeRecord> edges;
    for (std::size_t i = 0; i < local.view.node_count(); ++i) {
      for (std::size_t j = i + 1; j < local.view.node_count(); ++j) {
        if (local.view.has_link(i, j)) {
          edges.push_back({i, j, local.view.cost_min(i, j).value});
        }
      }
    }
    const auto tree = graph::kruskal_mst(local.view.node_count(), edges);
    std::vector<std::size_t> mst_neighbors;
    for (const auto& e : tree) {
      if (e.u == 0) mst_neighbors.push_back(e.v);
      if (e.v == 0) mst_neighbors.push_back(e.u);
    }
    std::sort(mst_neighbors.begin(), mst_neighbors.end());
    auto selected = protocol.select(local.view);
    std::sort(selected.begin(), selected.end());
    EXPECT_EQ(selected, mst_neighbors) << "trial " << trial;
  }
}

TEST(Equivalence, SptSelectionMatchesShortestPathTreeChildren) {
  const EnergyCost cost(2.0);
  const SptProtocol protocol("SPT-2");
  util::Xoshiro256 rng(222);
  for (int trial = 0; trial < 30; ++trial) {
    const auto local = random_view(rng, 5 + rng.uniform_below(15), cost);
    // Dijkstra over the view from the owner.
    graph::Graph g(local.view.node_count());
    for (std::size_t i = 0; i < local.view.node_count(); ++i) {
      for (std::size_t j = i + 1; j < local.view.node_count(); ++j) {
        if (local.view.has_link(i, j)) {
          g.add_edge(i, j, local.view.cost_min(i, j).value);
        }
      }
    }
    const auto sp = graph::dijkstra(g, 0);
    // SPT children of the root: nodes whose shortest path uses the direct
    // link (parent chain leads straight to 0).
    std::vector<std::size_t> children;
    for (std::size_t v = 1; v < local.view.node_count(); ++v) {
      if (sp.parent[v] == 0) children.push_back(v);
    }
    auto selected = protocol.select(local.view);
    std::sort(selected.begin(), selected.end());
    EXPECT_EQ(selected, children) << "trial " << trial;
  }
}

TEST(Equivalence, RngSelectionMatchesGeometricRngMembership) {
  const DistanceCost cost;
  const RngProtocol protocol;
  util::Xoshiro256 rng(333);
  for (int trial = 0; trial < 30; ++trial) {
    const auto local = random_view(rng, 5 + rng.uniform_below(15), cost);
    // Geometric RNG: keep (0, v) iff no view node sits in the open lune.
    std::vector<std::size_t> geometric;
    for (std::size_t v = 1; v < local.view.node_count(); ++v) {
      bool witnessed = false;
      for (std::size_t w = 1; w < local.view.node_count() && !witnessed;
           ++w) {
        if (w == v) continue;
        witnessed = geom::in_rng_lune(local.positions[0],
                                      local.positions[v],
                                      local.positions[w]);
      }
      if (!witnessed) geometric.push_back(v);
    }
    auto selected = protocol.select(local.view);
    std::sort(selected.begin(), selected.end());
    EXPECT_EQ(selected, geometric) << "trial " << trial;
  }
}

}  // namespace
}  // namespace mstc::topology
