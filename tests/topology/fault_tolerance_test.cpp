// Fault-tolerant extensions: k-Yao and k-connectivity-oriented CBTC.
// Related-work claim exercised here (Section 2.2): k-connected topologies
// REDUCE but do not eliminate mobility-induced partitioning — verified in
// the ablation bench; these tests cover the structural guarantees.
#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "topology/builder.hpp"
#include "topology/protocol.hpp"
#include "util/prng.hpp"

namespace mstc::topology {
namespace {

using geom::Vec2;

constexpr double kNormalRange = 250.0;

std::vector<Vec2> dense_connected_placement(util::Xoshiro256& rng,
                                            std::size_t n,
                                            std::size_t required_k) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    std::vector<Vec2> positions;
    positions.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      positions.push_back({rng.uniform(0.0, 700.0), rng.uniform(0.0, 700.0)});
    }
    if (graph::is_k_connected(original_graph(positions, kNormalRange),
                              required_k)) {
      return positions;
    }
  }
  ADD_FAILURE() << "could not generate a " << required_k
                << "-connected placement";
  return {};
}

TEST(KYaoProtocolTest, KeepsUpToKPerSector) {
  const DistanceCost cost;
  const KYaoProtocol protocol(4, 2);
  // Five neighbors in the east sector at increasing distance, one north.
  std::vector<Vec2> positions = {{0, 0}};
  for (int i = 1; i <= 5; ++i) {
    positions.push_back({10.0 * i, 1.0});
  }
  positions.push_back({-5.0, 30.0});  // angle ~100 degrees: second sector
  std::vector<NodeId> ids(positions.size());
  for (NodeId i = 0; i < ids.size(); ++i) ids[i] = i;
  const auto view = make_consistent_view(positions, ids, 0, kNormalRange, cost);
  const auto kept = protocol.select(view);
  // Two cheapest easterners (ids 1, 2) + the single northerner (id 6).
  std::vector<NodeId> kept_ids;
  for (auto index : kept) kept_ids.push_back(view.id(index));
  EXPECT_EQ(kept_ids, (std::vector<NodeId>{1, 2, 6}));
}

TEST(KYaoProtocolTest, SupersetOfPlainYao) {
  const DistanceCost cost;
  const YaoProtocol yao(6);
  const KYaoProtocol kyao(6, 2);
  util::Xoshiro256 rng(808);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Vec2> positions = {{450.0, 450.0}};
    for (int i = 0; i < 20; ++i) {
      positions.push_back(
          {rng.uniform(250.0, 650.0), rng.uniform(250.0, 650.0)});
    }
    std::vector<NodeId> ids(positions.size());
    for (NodeId i = 0; i < ids.size(); ++i) ids[i] = i;
    const auto view =
        make_consistent_view(positions, ids, 0, kNormalRange, cost);
    const auto base = yao.select(view);
    const auto extended = kyao.select(view);
    for (std::size_t index : base) {
      EXPECT_TRUE(std::find(extended.begin(), extended.end(), index) !=
                  extended.end())
          << "trial " << trial;
    }
  }
}

TEST(FaultTolerantFactory, SmallerConesKeepMoreNeighbors) {
  // CBTC2/CBTC3 shrink the allowed gap, so their neighbor sets are
  // supersets of plain CBTC's on the same view.
  util::Xoshiro256 rng(909);
  const auto cbtc = make_protocol("CBTC");
  const auto cbtc2 = make_protocol("CBTC2");
  const auto cbtc3 = make_protocol("CBTC3");
  std::vector<Vec2> positions = {{450.0, 450.0}};
  for (int i = 0; i < 25; ++i) {
    positions.push_back({rng.uniform(250.0, 650.0), rng.uniform(250.0, 650.0)});
  }
  std::vector<NodeId> ids(positions.size());
  for (NodeId i = 0; i < ids.size(); ++i) ids[i] = i;
  const DistanceCost cost;
  const auto view = make_consistent_view(positions, ids, 0, kNormalRange, cost);
  const auto base = cbtc.protocol->select(view);
  const auto k2 = cbtc2.protocol->select(view);
  const auto k3 = cbtc3.protocol->select(view);
  EXPECT_LE(base.size(), k2.size());
  EXPECT_LE(k2.size(), k3.size());
}

TEST(FaultTolerantProtocols, PreserveConnectivity) {
  util::Xoshiro256 rng(1001);
  for (const char* name : {"Yao2", "Yao3", "CBTC2", "CBTC3"}) {
    const auto suite = make_protocol(name);
    const auto positions = dense_connected_placement(rng, 70, 1);
    const auto topo = build_topology(positions, kNormalRange, *suite.protocol,
                                     *suite.cost);
    EXPECT_TRUE(graph::is_connected(logical_graph(topo, positions))) << name;
  }
}

TEST(FaultTolerantProtocols, ImproveBiconnectivityOdds) {
  // On 2-connected originals, Yao-6x2 yields a 2-connected logical
  // topology far more often than plain Yao (the point of redundancy).
  util::Xoshiro256 rng(2002);
  int base_biconnected = 0;
  int redundant_biconnected = 0;
  constexpr int kTrials = 8;
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto positions = dense_connected_placement(rng, 60, 2);
    for (const bool redundant : {false, true}) {
      const auto suite = make_protocol(redundant ? "Yao2" : "Yao");
      const auto topo = build_topology(positions, kNormalRange,
                                       *suite.protocol, *suite.cost);
      const bool ok =
          graph::is_k_connected(logical_graph(topo, positions), 2);
      (redundant ? redundant_biconnected : base_biconnected) += ok;
    }
  }
  EXPECT_GE(redundant_biconnected, base_biconnected);
  EXPECT_GT(redundant_biconnected, kTrials / 2);
}

}  // namespace
}  // namespace mstc::topology
