#include "topology/analysis.hpp"

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "topology/protocol.hpp"
#include "util/prng.hpp"

namespace mstc::topology {
namespace {

using geom::Vec2;

TEST(StretchRatio, IdenticalGraphsHaveStretchOne) {
  graph::Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  const auto report = stretch_ratio(g, g);
  EXPECT_DOUBLE_EQ(report.max_stretch, 1.0);
  EXPECT_DOUBLE_EQ(report.mean_stretch, 1.0);
  EXPECT_EQ(report.broken_pairs, 0u);
}

TEST(StretchRatio, DetourIncreasesStretch) {
  // Original: triangle with a shortcut 0-2 of length 1.5; logical drops it,
  // forcing the 2-hop detour of length 2 -> stretch 2/1.5.
  graph::Graph original(3);
  original.add_edge(0, 1, 1.0);
  original.add_edge(1, 2, 1.0);
  original.add_edge(0, 2, 1.5);
  graph::Graph logical(3);
  logical.add_edge(0, 1, 1.0);
  logical.add_edge(1, 2, 1.0);
  const auto report = stretch_ratio(original, logical);
  EXPECT_NEAR(report.max_stretch, 2.0 / 1.5, 1e-12);
  EXPECT_EQ(report.broken_pairs, 0u);
}

TEST(StretchRatio, CountsBrokenPairs) {
  graph::Graph original(3);
  original.add_edge(0, 1, 1.0);
  original.add_edge(1, 2, 1.0);
  const graph::Graph logical(3);  // empty: everything broken
  const auto report = stretch_ratio(original, logical);
  EXPECT_EQ(report.broken_pairs, 3u);
}

TEST(LinkInterference, CountsNodesInBothDisks) {
  // Link (0, 1) of length 10; nodes at distance <= 10 from either end.
  const std::vector<Vec2> positions = {
      {0, 0}, {10, 0}, {5, 0}, {-9, 0}, {19, 0}, {30, 0}};
  EXPECT_EQ(link_interference(positions, 0, 1), 3u);  // nodes 2, 3, 4
}

TEST(Interference, ReportOverTopology) {
  const std::vector<Vec2> positions = {{0, 0}, {10, 0}, {20, 0}, {5, 1}};
  graph::Graph g(4);
  g.add_edge(0, 1, 10.0);
  g.add_edge(1, 2, 10.0);
  const auto report = interference(positions, g);
  // (0,1) disturbs {2? d(1,2)=10 <= 10 yes; 3 yes} = node 2 and 3 -> 2.
  // (1,2) disturbs {0 (d(1,0)=10), 3 (d(1,3)~5.1)} -> 2.
  EXPECT_EQ(report.max_interference, 2u);
  EXPECT_DOUBLE_EQ(report.mean_interference, 2.0);
}

TEST(Interference, TopologyControlReducesInterference) {
  // Burkhart et al.'s premise checked on random instances: the logical
  // topology's max interference never exceeds the original graph's.
  util::Xoshiro256 rng(313);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<Vec2> positions;
    for (int i = 0; i < 60; ++i) {
      positions.push_back({rng.uniform(0.0, 900.0), rng.uniform(0.0, 900.0)});
    }
    const auto original = original_graph(positions, 250.0);
    const auto suite = make_protocol("RNG");
    const auto topo =
        build_topology(positions, 250.0, *suite.protocol, *suite.cost);
    const auto logical = logical_graph(topo, positions);
    const auto base = interference(positions, original);
    const auto thin = interference(positions, logical);
    EXPECT_LE(thin.max_interference, base.max_interference) << trial;
    EXPECT_LE(thin.mean_interference, base.mean_interference + 1e-9) << trial;
  }
}

TEST(StretchRatio, SptBoundsEnergyStretchAtOne) {
  // The SPT protocol removes a link only when a cheaper energy path
  // exists, so the *energy-weighted* logical graph preserves all shortest
  // paths: energy stretch exactly 1 (Rodoplu-Meng's minimum-energy
  // property, restricted to 1-hop views it holds for the paths the view
  // can see; globally the mean stays very close to 1).
  util::Xoshiro256 rng(717);
  std::vector<Vec2> positions;
  for (int i = 0; i < 60; ++i) {
    positions.push_back({rng.uniform(0.0, 700.0), rng.uniform(0.0, 700.0)});
  }
  const auto suite = make_protocol("SPT-2");
  const auto topo =
      build_topology(positions, 250.0, *suite.protocol, *suite.cost);
  // Energy-weighted graphs: weight = d^2.
  const auto energy_graph = [&](const graph::Graph& distance_graph) {
    graph::Graph g(distance_graph.node_count());
    for (const auto& e : distance_graph.edges()) {
      g.add_edge(e.u, e.v, e.weight * e.weight);
    }
    return g;
  };
  const auto original = energy_graph(original_graph(positions, 250.0));
  const auto logical = energy_graph(logical_graph(topo, positions));
  const auto report = stretch_ratio(original, logical);
  EXPECT_EQ(report.broken_pairs, 0u);
  EXPECT_LT(report.mean_stretch, 1.05);
}

}  // namespace
}  // namespace mstc::topology
